/**
 * @file
 * Edge-case sweep across small utilities and rarely-hit branches that
 * the module-focused suites skip.
 */
#include <gtest/gtest.h>

#include "src/arch/catalog.h"
#include "src/common/strings.h"
#include "src/common/table.h"
#include "src/graph/graph.h"
#include "src/ici/topology.h"
#include "src/models/zoo.h"
#include "src/numerics/quantize.h"
#include "src/serving/latency_table.h"
#include "src/tco/tco.h"

namespace t4i {
namespace {

TEST(Edges, HumanFormattersHandleNegativesAndZero)
{
    EXPECT_EQ(HumanCount(0.0), "0.00");
    EXPECT_EQ(HumanCount(-2.5e9), "-2.50 G");
    EXPECT_EQ(HumanBytes(0.0), "0.0 B");
    EXPECT_EQ(HumanBytes(-3.0 * (1 << 20)), "-3.0 MiB");
    EXPECT_EQ(HumanSeconds(0.0), "0.00 ns");
    EXPECT_EQ(HumanSeconds(-2.0), "-2.00 s");
}

TEST(Edges, StrFormatLongString)
{
    const std::string big(5000, 'x');
    std::string out = StrFormat("<%s>", big.c_str());
    EXPECT_EQ(out.size(), big.size() + 2);
    EXPECT_EQ(out.front(), '<');
    EXPECT_EQ(out.back(), '>');
}

TEST(Edges, TableSingleColumnAndEmptyCells)
{
    TablePrinter t({"only"});
    t.AddRow({""});
    t.AddRow({"x"});
    std::string out = t.Render();
    EXPECT_NE(out.find("only"), std::string::npos);
    EXPECT_EQ(t.RenderCsv(), "only\n\nx\n");
}

TEST(Edges, GraphToStringCoversNewKinds)
{
    Graph g = BuildDecoderLm("lm", 1, 64, 2, 128, 8, 2, 100);
    std::string s = g.ToString();
    EXPECT_NE(s.find("DecoderBlock"), std::string::npos);
    Graph d = BuildDlrm("d", 2, 100, 8, 2, 4);
    EXPECT_NE(d.ToString().find("Concat"), std::string::npos);
}

TEST(Edges, QuantizeEmptyAndSingleValue)
{
    QuantParams p = ChooseQuantParams({}, QuantScheme::kSymmetric);
    EXPECT_EQ(p.scale, 1.0);
    auto rt = FakeQuantInt8({42.0f}, QuantScheme::kSymmetric);
    EXPECT_NEAR(rt[0], 42.0f, 42.0f / 127.0f);
    auto asym = FakeQuantInt8({-5.0f}, QuantScheme::kAsymmetric);
    EXPECT_NEAR(asym[0], -5.0f, 0.05f);
}

TEST(Edges, LatencyTableSinglePoint)
{
    LatencyTable t;
    t.AddPoint(4, 2e-3);
    EXPECT_EQ(t.Eval(1), 2e-3);
    EXPECT_EQ(t.Eval(100), 2e-3);
    EXPECT_EQ(t.MaxBatchUnderSlo(1e-3), 0);
    EXPECT_EQ(t.MaxBatchUnderSlo(3e-3), 4);
}

TEST(Edges, IciTwoChipDomainsDegenerate)
{
    IciDomain d;
    d.num_chips = 2;
    d.topology = IciTopology::kRing;
    d.link_bw_Bps = 10e9;
    d.links_per_chip = 2;
    EXPECT_EQ(d.Diameter(), 1);
    EXPECT_DOUBLE_EQ(d.PerNeighborBandwidth().value(), 20e9);
    EXPECT_FALSE(IciDomain{1}.PerNeighborBandwidth().ok());
}

TEST(Edges, TcoTinyDieStillCosts)
{
    TcoParams params;
    EXPECT_GT(GoodDiesPerWafer(10.0, params), 3000.0);
    ChipConfig chip = Tpu_v1();
    chip.die_mm2 = 10.0;
    auto r = ComputeTco(chip, params).value();
    EXPECT_GT(r.die_cost_usd, 0.0);
    EXPECT_LT(r.die_cost_usd, 10.0);
}

TEST(Edges, ZooAppsOfYearExtremes)
{
    // The earliest and latest supported years still build and
    // finalize (widths clamp at the 64-multiple floor).
    for (int year : {2016, 2022}) {
        auto apps = AppsOfYear(year);
        EXPECT_EQ(apps.size(), 8u);
        for (const auto& app : apps) {
            EXPECT_TRUE(app.graph.finalized())
                << year << " " << app.name;
        }
    }
}

TEST(Edges, DTypeHelpers)
{
    EXPECT_EQ(DTypeBytes(DType::kInt8), 1);
    EXPECT_EQ(DTypeBytes(DType::kBf16), 2);
    EXPECT_EQ(DTypeBytes(DType::kFp32), 4);
    EXPECT_STREQ(DTypeName(DType::kBf16), "bf16");
}

TEST(Edges, LayerKindNamesComplete)
{
    for (LayerKind kind :
         {LayerKind::kInput, LayerKind::kDense, LayerKind::kConv2d,
          LayerKind::kMaxPool, LayerKind::kGlobalPool, LayerKind::kLstm,
          LayerKind::kAttention, LayerKind::kFeedForward,
          LayerKind::kLayerNorm, LayerKind::kSoftmax,
          LayerKind::kEmbedding, LayerKind::kElementwise,
          LayerKind::kFlatten, LayerKind::kConcat,
          LayerKind::kDecoderBlock}) {
        EXPECT_STRNE(LayerKindName(kind), "?");
    }
}

}  // namespace
}  // namespace t4i
