/**
 * @file
 * Tests for the XLA-lite compiler: lowering correctness, the dtype
 * compatibility gates (Lesson 6), the optimization ladder (Lesson 2),
 * sharding, and program validation.
 */
#include <gtest/gtest.h>

#include "src/arch/catalog.h"
#include "src/compiler/compiler.h"
#include "src/models/zoo.h"

namespace t4i {
namespace {

Program
MustCompile(const Graph& g, const ChipConfig& chip, CompileOptions opts)
{
    auto p = Compile(g, chip, opts);
    T4I_CHECK(p.ok(), p.status().ToString().c_str());
    return std::move(p).ConsumeValue();
}

CompileOptions
Opts(int64_t batch, int opt_level = 3)
{
    CompileOptions o;
    o.batch = batch;
    o.opt_level = opt_level;
    return o;
}

TEST(Compiler, CompilesAllProductionAppsOnTpu4i)
{
    const ChipConfig chip = Tpu_v4i();
    for (const auto& app : ProductionApps()) {
        auto p = Compile(app.graph, chip, Opts(app.typical_batch));
        EXPECT_TRUE(p.ok()) << app.name << ": "
                            << p.status().ToString();
        if (p.ok()) {
            EXPECT_TRUE(p.value().Validate().ok()) << app.name;
            EXPECT_GT(p.value().instrs.size(), 0u) << app.name;
            EXPECT_GT(p.value().TotalMacs(), 0.0) << app.name;
        }
    }
}

TEST(Compiler, MacsMatchGraphCostForMatmulModels)
{
    // For a pure-dense model, instruction MACs must equal the analytic
    // model cost (FLOPs / 2), modulo the VPU epilogue.
    Graph g("d");
    int in = g.AddInput("x", {512});
    LayerParams p;
    p.in_features = 512;
    p.out_features = 384;
    g.AddLayer(LayerKind::kDense, "fc", {in}, p);
    ASSERT_TRUE(g.Finalize().ok());

    const ChipConfig chip = Tpu_v4i();
    Program prog = MustCompile(g, chip, Opts(32));
    auto cost = g.Cost(32, DType::kBf16, DType::kBf16).value();
    // Graph cost includes epilogue FLOPs; MACs are the matmul part.
    EXPECT_NEAR(prog.TotalMacs(), 32.0 * 512.0 * 384.0, 1.0);
    EXPECT_LE(2.0 * prog.TotalMacs(), cost.total_flops);
}

// --- Lesson 6: dtype gates --------------------------------------------------

TEST(Compiler, Bf16OnTpu1FailsWithQuantizeHint)
{
    auto app = BuildApp("MLP1").value();
    CompileOptions opts = Opts(8);
    opts.dtype = DType::kBf16;
    auto p = Compile(app.graph, Tpu_v1(), opts);
    ASSERT_FALSE(p.ok());
    EXPECT_EQ(p.status().code(), StatusCode::kFailedPrecondition);
    EXPECT_NE(p.status().message().find("quantized"),
              std::string::npos);
}

TEST(Compiler, Int8OnTpu1Succeeds)
{
    auto app = BuildApp("MLP1").value();
    CompileOptions opts = Opts(8);
    opts.dtype = DType::kInt8;
    EXPECT_TRUE(Compile(app.graph, Tpu_v1(), opts).ok());
}

TEST(Compiler, Int8OnTpu3Fails)
{
    auto app = BuildApp("CNN1").value();
    CompileOptions opts = Opts(8);
    opts.dtype = DType::kInt8;
    EXPECT_FALSE(Compile(app.graph, Tpu_v3(), opts).ok());
}

TEST(Compiler, BothDtypesWorkOnTpu4i)
{
    auto app = BuildApp("CNN1").value();
    for (DType dt : {DType::kInt8, DType::kBf16}) {
        CompileOptions opts = Opts(8);
        opts.dtype = dt;
        EXPECT_TRUE(Compile(app.graph, Tpu_v4i(), opts).ok());
    }
}

// --- Option validation --------------------------------------------------------

TEST(Compiler, RejectsBadOptions)
{
    auto app = BuildApp("CNN1").value();
    const ChipConfig chip = Tpu_v4i();
    EXPECT_FALSE(Compile(app.graph, chip, Opts(0)).ok());
    EXPECT_FALSE(Compile(app.graph, chip, Opts(8, 4)).ok());
    EXPECT_FALSE(Compile(app.graph, chip, Opts(8, -1)).ok());
    CompileOptions chips0 = Opts(8);
    chips0.num_chips = 0;
    EXPECT_FALSE(Compile(app.graph, chip, chips0).ok());
}

TEST(Compiler, RejectsUnfinalizedGraph)
{
    Graph g("raw");
    g.AddInput("x", {8});
    EXPECT_FALSE(Compile(g, Tpu_v4i(), Opts(1)).ok());
}

TEST(Compiler, MultiChipNeedsIci)
{
    auto app = BuildApp("BERT0").value();
    CompileOptions opts = Opts(8);
    opts.num_chips = 2;
    EXPECT_FALSE(Compile(app.graph, Tpu_v1(), opts).ok());  // no links
    EXPECT_TRUE(Compile(app.graph, Tpu_v4i(), opts).ok());
}

TEST(Compiler, OversizedModelIsRejected)
{
    // A model whose streamed weights exceed device DRAM must fail.
    Graph g("huge");
    int in = g.AddInput("x", {32768});
    LayerParams p;
    p.in_features = 32768;
    p.out_features = 200000;
    g.AddLayer(LayerKind::kDense, "fc", {in}, p);
    ASSERT_TRUE(g.Finalize().ok());
    auto result = Compile(g, Tpu_v4i(), Opts(1));
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

// --- Lesson 2: the optimization ladder ------------------------------------------

TEST(Compiler, HbmTrafficDropsUpTheLadder)
{
    auto app = BuildApp("CNN0").value();
    const ChipConfig chip = Tpu_v4i();
    int64_t prev = -1;
    for (int level = 0; level <= 3; ++level) {
        Program p = MustCompile(app.graph, chip, Opts(16, level));
        const int64_t traffic = p.HbmBytes();
        if (prev >= 0) {
            EXPECT_LE(traffic, prev) << "O" << level;
        }
        prev = traffic;
    }
}

TEST(Compiler, O0SpillsEverything)
{
    auto app = BuildApp("BERT0").value();
    Program p0 = MustCompile(app.graph, Tpu_v4i(), Opts(4, 0));
    Program p1 = MustCompile(app.graph, Tpu_v4i(), Opts(4, 1));
    EXPECT_GT(p0.memory.activation_bytes_hbm,
              p1.memory.activation_bytes_hbm);
}

TEST(Compiler, FusionRemovesPointwiseRoundTrips)
{
    auto app = BuildApp("BERT0").value();
    Program p1 = MustCompile(app.graph, Tpu_v4i(), Opts(4, 1));
    Program p2 = MustCompile(app.graph, Tpu_v4i(), Opts(4, 2));
    EXPECT_LE(p2.memory.activation_bytes_hbm,
              p1.memory.activation_bytes_hbm);
    EXPECT_LE(p2.instrs.size(), p1.instrs.size());
}

TEST(Compiler, CmemUseOnlyAtO3)
{
    // CNN0's CMEM goes to activation staging (each staged byte saves a
    // write and a read-back of HBM, outranking weight pinning).
    auto app = BuildApp("CNN0").value();
    Program p2 = MustCompile(app.graph, Tpu_v4i(), Opts(16, 2));
    Program p3 = MustCompile(app.graph, Tpu_v4i(), Opts(16, 3));
    EXPECT_EQ(p2.memory.weight_bytes_cmem, 0);
    EXPECT_EQ(p2.memory.activation_bytes_cmem, 0);
    EXPECT_GT(p3.memory.weight_bytes_cmem +
                  p3.memory.activation_bytes_cmem,
              0);

    // BERT0's activations fit VMEM at batch 4, so its CMEM goes to
    // weight pinning.
    auto bert = BuildApp("BERT0").value();
    Program pb = MustCompile(bert.graph, Tpu_v4i(), Opts(4, 3));
    EXPECT_GT(pb.memory.weight_bytes_cmem, 0);
}

TEST(Compiler, O3ChunksLargeWeightLoads)
{
    // A dense layer much bigger than the chunk target must be split
    // into multiple HBM loads at O3 when it cannot be pinned.
    Graph g("big_dense");
    int in = g.AddInput("x", {4096});
    LayerParams p;
    p.in_features = 4096;
    p.out_features = 8192;  // 64 MiB of bf16 weights
    g.AddLayer(LayerKind::kDense, "fc", {in}, p);
    ASSERT_TRUE(g.Finalize().ok());

    CompileOptions opts = Opts(8);
    opts.cmem_override_bytes = 0;  // force streaming
    Program prog = MustCompile(g, Tpu_v4i(), opts);
    int hbm_weight_loads = 0;
    for (const auto& i : prog.instrs) {
        if (i.engine == Engine::kHbm &&
            i.kind == InstrKind::kDmaIn &&
            i.label.find(".w") != std::string::npos) {
            ++hbm_weight_loads;
        }
    }
    EXPECT_GT(hbm_weight_loads, 1);
}

// --- Memory plan bookkeeping ------------------------------------------------------

TEST(Compiler, MemoryPlanIsConsistent)
{
    for (const char* name : {"MLP0", "CNN0", "RNN0", "BERT0"}) {
        auto app = BuildApp(name).value();
        Program p = MustCompile(app.graph, Tpu_v4i(), Opts(8));
        EXPECT_EQ(p.memory.weight_bytes_total,
                  p.memory.weight_bytes_cmem +
                      p.memory.weight_bytes_hbm)
            << name;
        EXPECT_LE(p.memory.weight_bytes_cmem, Tpu_v4i().cmem_bytes)
            << name;
    }
}

TEST(Compiler, CmemOverrideShrinksPinning)
{
    auto app = BuildApp("BERT0").value();
    CompileOptions small = Opts(8);
    small.cmem_override_bytes = 8 * kMiB;
    Program p_small = MustCompile(app.graph, Tpu_v4i(), small);
    Program p_full = MustCompile(app.graph, Tpu_v4i(), Opts(8));
    EXPECT_LE(p_small.memory.weight_bytes_cmem, 8 * kMiB);
    EXPECT_GT(p_full.memory.weight_bytes_cmem,
              p_small.memory.weight_bytes_cmem);
}

// --- Sharding ------------------------------------------------------------------

TEST(Compiler, ShardingEmitsIciAndDividesWeights)
{
    auto app = BuildApp("BERT1").value();
    Program p1 = MustCompile(app.graph, Tpu_v4i(), Opts(8));
    CompileOptions opts = Opts(8);
    opts.num_chips = 4;
    Program p4 = MustCompile(app.graph, Tpu_v4i(), opts);

    int ici_count = 0;
    for (const auto& i : p4.instrs) {
        if (i.engine == Engine::kIci) ++ici_count;
    }
    EXPECT_GT(ici_count, 0);
    // Per-chip MACs shrink close to 1/4.
    EXPECT_LT(p4.TotalMacs(), 0.35 * p1.TotalMacs());
    EXPECT_LT(p4.memory.weight_bytes_total,
              0.35 * p1.memory.weight_bytes_total);
}

TEST(Compiler, SingleChipHasNoIci)
{
    auto app = BuildApp("BERT0").value();
    Program p = MustCompile(app.graph, Tpu_v4i(), Opts(8));
    for (const auto& i : p.instrs) {
        EXPECT_NE(i.engine, Engine::kIci);
    }
}

// --- Host transfers ------------------------------------------------------------

TEST(Compiler, HostTransfersBracketTheProgram)
{
    auto app = BuildApp("CNN1").value();
    Program p = MustCompile(app.graph, Tpu_v4i(), Opts(4));
    int pcie = 0;
    for (const auto& i : p.instrs) {
        if (i.engine == Engine::kPcie ||
            i.engine == Engine::kPcieIn) {
            ++pcie;
        }
    }
    EXPECT_EQ(pcie, 2);  // h2d input + d2h output

    CompileOptions no_host = Opts(4);
    no_host.include_host_transfers = false;
    Program p2 = MustCompile(app.graph, Tpu_v4i(), no_host);
    for (const auto& i : p2.instrs) {
        EXPECT_NE(i.engine, Engine::kPcie);
        EXPECT_NE(i.engine, Engine::kPcieIn);
    }
}

// --- Program validation ----------------------------------------------------------

TEST(Program, ValidateCatchesBadDeps)
{
    Program p;
    Instr a;
    a.id = 0;
    a.engine = Engine::kVpu;
    a.elements = 10;
    a.deps = {0};  // self-dependency
    p.instrs.push_back(a);
    EXPECT_FALSE(p.Validate().ok());
}

TEST(Program, ValidateCatchesEmptyDescriptors)
{
    Program p;
    Instr a;
    a.id = 0;
    a.engine = Engine::kMxu;  // rows/k_tiles/n_tiles all zero
    p.instrs.push_back(a);
    EXPECT_FALSE(p.Validate().ok());
}

TEST(Program, SummaryMentionsModelAndChip)
{
    auto app = BuildApp("RNN1").value();
    Program p = MustCompile(app.graph, Tpu_v4i(), Opts(16));
    std::string s = p.Summary();
    EXPECT_NE(s.find("RNN1"), std::string::npos);
    EXPECT_NE(s.find("TPUv4i"), std::string::npos);
}

}  // namespace
}  // namespace t4i
