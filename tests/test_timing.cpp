/**
 * @file
 * Tests for the per-instruction timing model: systolic-array cycle
 * counts, VPU throughput, transfer durations.
 */
#include <gtest/gtest.h>

#include "src/arch/catalog.h"
#include <cmath>

#include "src/sim/timing.h"

namespace t4i {
namespace {

Instr
MxuInstr(int64_t rows, int64_t k_tiles, int64_t n_tiles,
         DType dtype = DType::kBf16)
{
    Instr i;
    i.engine = Engine::kMxu;
    i.kind = InstrKind::kMatmulTile;
    i.dtype = dtype;
    i.rows = rows;
    i.k_tiles = k_tiles;
    i.n_tiles = n_tiles;
    return i;
}

Instr
DmaInstr(Engine engine, int64_t bytes, double eff = 1.0)
{
    Instr i;
    i.engine = engine;
    i.kind = InstrKind::kDmaIn;
    i.bytes = bytes;
    i.bw_efficiency = eff;
    return i;
}

TEST(Timing, RateFactors)
{
    EXPECT_DOUBLE_EQ(MxuRateFactor(Tpu_v4i(), DType::kBf16), 1.0);
    EXPECT_DOUBLE_EQ(MxuRateFactor(Tpu_v4i(), DType::kFp32), 0.25);
    EXPECT_DOUBLE_EQ(MxuRateFactor(Tpu_v1(), DType::kBf16), 0.0);
    EXPECT_DOUBLE_EQ(MxuRateFactor(Tpu_v1(), DType::kInt8), 1.0);
    EXPECT_DOUBLE_EQ(MxuRateFactor(Tpu_v3(), DType::kInt8), 0.0);
    EXPECT_DOUBLE_EQ(MxuRateFactor(GpuT4(), DType::kInt8), 2.0);
}

TEST(Timing, MxuSinglePassFormula)
{
    // One (k,n) tile on TPUv4i: rows + 2*128 fill cycles, but the four
    // arrays can't split a single pass, so ceil(1/4) = 1 wave.
    const ChipConfig chip = Tpu_v4i();
    const double cycles = MxuCycles(chip, MxuInstr(128, 1, 1));
    EXPECT_DOUBLE_EQ(cycles, 128.0 + 256.0);
}

TEST(Timing, MxuPassesDivideAcrossArrays)
{
    const ChipConfig chip = Tpu_v4i();  // 4 arrays
    const double one = MxuCycles(chip, MxuInstr(1024, 1, 1));
    const double four = MxuCycles(chip, MxuInstr(1024, 2, 2));
    EXPECT_DOUBLE_EQ(four, one);  // 4 passes over 4 arrays = 1 wave
    const double five = MxuCycles(chip, MxuInstr(1024, 5, 1));
    EXPECT_DOUBLE_EQ(five, 2.0 * one);  // 5 passes -> 2 waves
}

TEST(Timing, SmallBatchIsFillDominated)
{
    // Lesson 10 mechanism: at rows=8 the fill overhead dwarfs the work.
    const ChipConfig chip = Tpu_v4i();
    const double tiny = MxuCycles(chip, MxuInstr(8, 1, 1));
    EXPECT_GT(tiny, 256.0);
    // Efficiency = useful rows / total cycles.
    EXPECT_LT(8.0 / tiny, 0.05);
    const double big = MxuCycles(chip, MxuInstr(8192, 1, 1));
    EXPECT_GT(8192.0 / big, 0.9);
}

TEST(Timing, Fp32QuadruplesStreamTime)
{
    const ChipConfig chip = Tpu_v4i();
    const double bf16 = MxuCycles(chip, MxuInstr(4096, 1, 1));
    const double fp32 =
        MxuCycles(chip, MxuInstr(4096, 1, 1, DType::kFp32));
    // Only the streaming part scales; fill is constant.
    EXPECT_NEAR(fp32 - 256.0, 4.0 * (bf16 - 256.0), 1.0);
}

TEST(Timing, VpuCyclesScaleWithWork)
{
    const ChipConfig chip = Tpu_v4i();
    Instr op;
    op.engine = Engine::kVpu;
    op.elements = 1 << 20;
    op.flops_per_element = 2.0;
    const double cycles = VpuCycles(chip, op);
    const double lanes = 128.0 * 8.0 * 2.0;  // lanes * ops/lane
    EXPECT_NEAR(cycles, (1 << 21) / lanes + 32.0, 1.0);
}

TEST(Timing, HbmDurationIsBytesOverBandwidthPlusLatency)
{
    const ChipConfig chip = Tpu_v4i();
    const double d = InstrDuration(chip, DmaInstr(Engine::kHbm,
                                                  614'000'000));
    EXPECT_NEAR(d, 1e-3 + chip.dram_latency_s, 1e-6);
}

TEST(Timing, GatherEfficiencyStretchesTransfers)
{
    const ChipConfig chip = Tpu_v4i();
    const double fast =
        InstrDuration(chip, DmaInstr(Engine::kHbm, 1 << 20, 1.0));
    const double slow =
        InstrDuration(chip, DmaInstr(Engine::kHbm, 1 << 20, 0.35));
    EXPECT_GT(slow, 2.0 * fast - chip.dram_latency_s);
}

TEST(Timing, CmemIsFasterThanHbm)
{
    const ChipConfig chip = Tpu_v4i();
    const double hbm =
        InstrDuration(chip, DmaInstr(Engine::kHbm, 8 << 20));
    const double cmem =
        InstrDuration(chip, DmaInstr(Engine::kCmem, 8 << 20));
    EXPECT_LT(cmem, hbm / 2.0);
}

TEST(Timing, IciAndPcieDurations)
{
    const ChipConfig chip = Tpu_v4i();  // 2 links x 50 GB/s
    const double ici =
        InstrDuration(chip, DmaInstr(Engine::kIci, 100'000'000));
    EXPECT_NEAR(ici, 1e-3 + 1e-6, 1e-6);
    const double pcie =
        InstrDuration(chip, DmaInstr(Engine::kPcie, 14'000'000));
    EXPECT_NEAR(pcie, 1e-3 + 2e-6, 1e-5);
}

TEST(Timing, IssueBandwidthFloorsManySmallArrays)
{
    // A hypothetical 64x 32x32 arrangement is limited by the
    // sequencer's descriptor stream, not the arrays.
    ChipConfig chip = Tpu_v4i();
    chip.mxu.rows = 32;
    chip.mxu.cols = 32;
    chip.mxu.count = 64;
    // 64 passes over 64 arrays: one wave of (rows + 64) cycles of
    // compute, but 64 x 64 = 4096 cycles of descriptor issue.
    const double cycles = MxuCycles(chip, MxuInstr(16, 8, 8));
    EXPECT_DOUBLE_EQ(cycles, 64.0 * 64.0);
}

TEST(Timing, IssueNeverBindsOnShippedConfigs)
{
    // On the real chips the per-pass fill already exceeds the issue
    // cost, so the floor must not change any timing.
    for (const auto& chip :
         {Tpu_v1(), Tpu_v2(), Tpu_v3(), Tpu_v4i(), Tpu_v4()}) {
        const DType dt =
            chip.supports_bf16 ? DType::kBf16 : DType::kInt8;
        for (int64_t rows : {1, 16, 512}) {
            Instr i = MxuInstr(rows, 4, 4, dt);
            const int arrays = chip.mxu.count * chip.num_cores;
            const double waves = std::ceil(
                16.0 / static_cast<double>(arrays));
            const double per_pass =
                static_cast<double>(rows) /
                    MxuRateFactor(chip, dt) +
                2.0 * chip.mxu.rows;
            EXPECT_DOUBLE_EQ(MxuCycles(chip, i), waves * per_pass)
                << chip.name << " rows " << rows;
        }
    }
}

TEST(Timing, MoreArraysMakeTpu4FasterThanTpu4i)
{
    // Same instruction, twice the arrays (TPUv4 has 2 cores).
    Instr big = MxuInstr(4096, 8, 8);
    const double v4i_cycles = MxuCycles(Tpu_v4i(), big);
    const double v4_cycles = MxuCycles(Tpu_v4(), big);
    EXPECT_NEAR(v4_cycles, v4i_cycles / 2.0, v4i_cycles * 0.01);
}

}  // namespace
}  // namespace t4i
