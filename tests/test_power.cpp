/**
 * @file
 * Tests for the power/energy model and TDP throttling (Lesson 5).
 */
#include <gtest/gtest.h>

#include "src/arch/catalog.h"
#include "src/compiler/compiler.h"
#include "src/models/zoo.h"
#include "src/power/power.h"
#include "src/sim/machine.h"

namespace t4i {
namespace {

struct AppRun {
    Program program;
    SimResult result;
};

AppRun
RunApp(const std::string& name, const ChipConfig& chip, int64_t batch,
       DType dtype = DType::kBf16)
{
    auto app = BuildApp(name).value();
    CompileOptions opts;
    opts.batch = batch;
    opts.dtype = dtype;
    auto p = Compile(app.graph, chip, opts);
    T4I_CHECK(p.ok(), p.status().ToString().c_str());
    auto r = Simulate(p.value(), chip);
    T4I_CHECK(r.ok(), r.status().ToString().c_str());
    return {std::move(p).ConsumeValue(), r.value()};
}

TEST(Power, ComponentsSumToTotal)
{
    const ChipConfig chip = Tpu_v4i();
    AppRun run = RunApp("BERT0", chip, 16);
    auto p = EstimatePower(run.program, run.result, chip).value();
    EXPECT_NEAR(p.total_energy_j,
                p.mxu_energy_j + p.vpu_energy_j + p.sram_energy_j +
                    p.dram_energy_j + p.link_energy_j +
                    p.static_energy_j,
                1e-9);
    EXPECT_GT(p.mxu_energy_j, 0.0);
    EXPECT_GT(p.static_energy_j, 0.0);
}

TEST(Power, AveragePowerAboveIdleBelowSanity)
{
    const ChipConfig chip = Tpu_v4i();
    AppRun run = RunApp("CNN0", chip, 16);
    auto p = EstimatePower(run.program, run.result, chip).value();
    EXPECT_GT(p.avg_power_w, chip.idle_w);
    EXPECT_LT(p.avg_power_w, 2.0 * chip.tdp_w);
}

TEST(Power, NoThrottleWithinTdp)
{
    const ChipConfig chip = Tpu_v4i();
    AppRun run = RunApp("RNN0", chip, 16);
    auto p = EstimatePower(run.program, run.result, chip).value();
    EXPECT_DOUBLE_EQ(p.throttle, 1.0);
    EXPECT_DOUBLE_EQ(p.throttled_latency_s, run.result.latency_s);
}

TEST(Power, ThrottlesWhenTdpIsTiny)
{
    // The same workload on a copy of the chip with an artificially low
    // TDP must stretch its runtime (the air-cooling ceiling in action).
    ChipConfig chip = Tpu_v4i();
    AppRun run = RunApp("CNN0", chip, 64);
    ChipConfig hot = chip;
    hot.tdp_w = chip.idle_w + 10.0;
    auto p = EstimatePower(run.program, run.result, hot).value();
    EXPECT_LT(p.throttle, 1.0);
    EXPECT_GT(p.throttled_latency_s, run.result.latency_s);
    EXPECT_LE(p.throttled_power_w, hot.tdp_w + 1e-9);
}

TEST(Power, Int8CheaperThanBf16PerInference)
{
    const ChipConfig chip = Tpu_v4i();
    AppRun bf = RunApp("CNN1", chip, 16, DType::kBf16);
    AppRun i8 = RunApp("CNN1", chip, 16, DType::kInt8);
    auto pb = EstimatePower(bf.program, bf.result, chip).value();
    auto pi = EstimatePower(i8.program, i8.result, chip).value();
    // Narrower MACs and half the bytes moved.
    EXPECT_LT(pi.mxu_energy_j, pb.mxu_energy_j);
    EXPECT_LE(pi.total_energy_j, pb.total_energy_j);
}

TEST(Power, NewerNodeIsMoreEfficient)
{
    // Same logical work on TPUv3 (16 nm) vs TPUv4i (7 nm): dynamic
    // energy per inference must drop generation over generation.
    AppRun v3 = RunApp("BERT0", Tpu_v3(), 16);
    AppRun v4i = RunApp("BERT0", Tpu_v4i(), 16);
    auto p3 =
        EstimatePower(v3.program, v3.result, Tpu_v3()).value();
    auto p4 =
        EstimatePower(v4i.program, v4i.result, Tpu_v4i()).value();
    const double dyn3 = p3.total_energy_j - p3.static_energy_j;
    const double dyn4 = p4.total_energy_j - p4.static_energy_j;
    EXPECT_LT(dyn4, dyn3);
}

TEST(Power, PerfPerTdpMatchesDefinition)
{
    const ChipConfig chip = Tpu_v4i();
    AppRun run = RunApp("CNN0", chip, 16);
    EXPECT_DOUBLE_EQ(PerfPerTdp(run.result, chip),
                     run.result.achieved_flops / chip.tdp_w);
}

TEST(Power, EnergyScalesWithBatch)
{
    const ChipConfig chip = Tpu_v4i();
    AppRun small = RunApp("BERT0", chip, 4);
    AppRun big = RunApp("BERT0", chip, 32);
    auto ps = EstimatePower(small.program, small.result, chip).value();
    auto pb = EstimatePower(big.program, big.result, chip).value();
    EXPECT_GT(pb.total_energy_j, ps.total_energy_j);
    // ...but energy *per sample* improves with batch (amortized static).
    EXPECT_LT(pb.total_energy_j / 32.0, ps.total_energy_j / 4.0);
}

}  // namespace
}  // namespace t4i
