/**
 * @file
 * Tests for chip configs (Table 1 values) and the technology model
 * (Lesson 1: unequal scaling).
 */
#include <gtest/gtest.h>

#include "src/arch/catalog.h"
#include "src/arch/tech.h"

namespace t4i {
namespace {

TEST(Catalog, ContainsAllGenerations)
{
    auto chips = ChipCatalog();
    ASSERT_EQ(chips.size(), 6u);
    EXPECT_EQ(chips[0].name, "TPUv1");
    EXPECT_EQ(chips[3].name, "TPUv4i");
    EXPECT_TRUE(ChipByName("T4").ok());
    EXPECT_FALSE(ChipByName("TPUv9").ok());
}

TEST(Catalog, Tpu1PeakMatchesPaper)
{
    // 256x256 MACs at 700 MHz: 92.2 TOPS int8, no floating point.
    ChipConfig v1 = Tpu_v1();
    EXPECT_NEAR(v1.PeakFlops(DType::kInt8) / 1e12, 92.2, 1.0);
    EXPECT_EQ(v1.PeakFlops(DType::kBf16), 0.0);
    EXPECT_EQ(v1.cooling, Cooling::kAir);
}

TEST(Catalog, Tpu2PeakMatchesPaper)
{
    // 2 cores x 1 MXU at 700 MHz: ~45.9 bf16 TFLOPS.
    EXPECT_NEAR(Tpu_v2().PeakFlops(DType::kBf16) / 1e12, 45.9, 1.0);
}

TEST(Catalog, Tpu3PeakMatchesPaper)
{
    // 2 cores x 2 MXUs at 940 MHz: ~123 bf16 TFLOPS, liquid cooled.
    ChipConfig v3 = Tpu_v3();
    EXPECT_NEAR(v3.PeakFlops(DType::kBf16) / 1e12, 123.2, 2.0);
    EXPECT_EQ(v3.cooling, Cooling::kLiquid);
}

TEST(Catalog, Tpu4iPeakMatchesPaper)
{
    // 4 MXUs at 1.05 GHz: ~137.6 bf16 TFLOPS, 128 MiB CMEM, air, 175 W.
    ChipConfig v4i = Tpu_v4i();
    EXPECT_NEAR(v4i.PeakFlops(DType::kBf16) / 1e12, 137.6, 2.0);
    EXPECT_EQ(v4i.cmem_bytes, 128ll * 1024 * 1024);
    EXPECT_EQ(v4i.cooling, Cooling::kAir);
    EXPECT_DOUBLE_EQ(v4i.tdp_w, 175.0);
    EXPECT_TRUE(v4i.supports_int8);
    EXPECT_TRUE(v4i.supports_bf16);
}

TEST(Catalog, Tpu4DoublesTpu4iCompute)
{
    EXPECT_NEAR(Tpu_v4().PeakFlops(DType::kBf16) /
                    Tpu_v4i().PeakFlops(DType::kBf16),
                2.0, 0.01);
}

TEST(Catalog, T4PeakRoughlyMatchesSpec)
{
    // ~65 TFLOPS fp16 tensor, 2x int8, 70 W.
    ChipConfig t4 = GpuT4();
    EXPECT_NEAR(t4.PeakFlops(DType::kBf16) / 1e12, 65.0, 8.0);
    EXPECT_NEAR(t4.PeakFlops(DType::kInt8) /
                    t4.PeakFlops(DType::kBf16),
                2.0, 0.01);
    EXPECT_DOUBLE_EQ(t4.tdp_w, 70.0);
}

TEST(Catalog, Fp32RunsAtQuarterRate)
{
    ChipConfig v4i = Tpu_v4i();
    EXPECT_NEAR(v4i.PeakFlops(DType::kFp32) /
                    v4i.PeakFlops(DType::kBf16),
                0.25, 1e-9);
}

TEST(Catalog, RidgePointsOrdering)
{
    // TPUv4i's ridge (FLOPs/byte where compute and bandwidth balance)
    // sits far right of TPUv1's int8 ridge ratio-wise to its era.
    ChipConfig v4i = Tpu_v4i();
    EXPECT_NEAR(v4i.RidgeOpsPerByte(DType::kBf16),
                v4i.PeakFlops(DType::kBf16) / v4i.dram_bw_Bps, 1e-6);
    EXPECT_GT(v4i.RidgeOpsPerByte(DType::kBf16), 100.0);
    EXPECT_LT(v4i.RidgeOpsPerByte(DType::kBf16), 400.0);
}

TEST(Catalog, PerfPerWattImprovesAcrossGenerations)
{
    // Peak FLOPS per TDP watt must improve v2 -> v3 -> v4i (Lesson 1/3).
    const double v2 = Tpu_v2().PeakFlops(DType::kBf16) / Tpu_v2().tdp_w;
    const double v3 = Tpu_v3().PeakFlops(DType::kBf16) / Tpu_v3().tdp_w;
    const double v4i =
        Tpu_v4i().PeakFlops(DType::kBf16) / Tpu_v4i().tdp_w;
    EXPECT_GT(v3, v2);
    EXPECT_GT(v4i, v3);
    EXPECT_GT(v4i / v3, 2.0);  // the paper's headline ~2.3x perf/W gain
}

TEST(Catalog, VectorPeaksArePositive)
{
    for (const auto& chip : ChipCatalog()) {
        EXPECT_GT(chip.PeakVectorFlops(), 0.0) << chip.name;
    }
}

// --- Tech ladder (Lesson 1) ----------------------------------------------------

TEST(Tech, LadderCoversTpuNodes)
{
    EXPECT_TRUE(TechNodeOf(28).ok());
    EXPECT_TRUE(TechNodeOf(16).ok());
    EXPECT_TRUE(TechNodeOf(7).ok());
    EXPECT_FALSE(TechNodeOf(3).ok());
}

TEST(Tech, LogicScalesFasterThanSramFasterThanWire)
{
    // The core of Lesson 1: per node step, logic density improves the
    // most, SRAM less, wires barely at all.
    const auto& ladder = TechLadder();
    for (size_t i = 1; i < ladder.size(); ++i) {
        const double logic_step =
            ladder[i].logic_density / ladder[i - 1].logic_density;
        const double sram_step =
            ladder[i].sram_density / ladder[i - 1].sram_density;
        const double wire_step =
            ladder[i - 1].wire_delay / ladder[i].wire_delay;
        EXPECT_GT(logic_step, sram_step) << ladder[i].nm;
        EXPECT_GT(sram_step, wire_step) << ladder[i].nm;
        EXPECT_GT(wire_step, 0.9) << ladder[i].nm;  // wires ~flat
    }
}

TEST(Tech, EnergyImprovesMonotonically)
{
    const auto& ladder = TechLadder();
    for (size_t i = 1; i < ladder.size(); ++i) {
        EXPECT_LT(ladder[i].logic_energy, ladder[i - 1].logic_energy);
        EXPECT_LT(ladder[i].sram_energy, ladder[i - 1].sram_energy);
        EXPECT_GE(DramEnergyPjPerByte(ladder[i - 1]),
                  DramEnergyPjPerByte(ladder[i]));
    }
}

TEST(Tech, MacEnergyOrderingByWidth)
{
    const TechNode node = TechNodeOf(7).value();
    const double e8 = MacEnergyPj(node, 8);
    const double e16 = MacEnergyPj(node, 16);
    const double e32 = MacEnergyPj(node, 32);
    EXPECT_LT(e8, e16);
    EXPECT_LT(e16, e32);
    // Superlinear: 32-bit costs more than 2x 16-bit.
    EXPECT_GT(e32, 2.0 * e16);
}

TEST(Tech, MacEnergyCheaperOnNewerNodes)
{
    const double old_node =
        MacEnergyPj(TechNodeOf(28).value(), 16);
    const double new_node = MacEnergyPj(TechNodeOf(7).value(), 16);
    EXPECT_LT(new_node, old_node / 2.0);
}

TEST(Tech, SramEnergyTracksNode)
{
    EXPECT_LT(SramEnergyPjPerByte(TechNodeOf(7).value()),
              SramEnergyPjPerByte(TechNodeOf(28).value()));
}

}  // namespace
}  // namespace t4i
