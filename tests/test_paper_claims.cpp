/**
 * @file
 * Reproduction guards: the paper's headline shapes, asserted as tests
 * so a future change that silently breaks a result fails CI instead of
 * shipping a wrong EXPERIMENTS.md. Bands are deliberately wide — they
 * encode "who wins by roughly what factor", not exact values.
 */
#include <gtest/gtest.h>

#include "src/tpu4sim.h"

namespace t4i {
namespace {

double
ThroughputOf(const App& app, const ChipConfig& chip, DType dtype)
{
    CompileOptions opts;
    opts.batch = app.typical_batch;
    opts.dtype = dtype;
    auto prog = Compile(app.graph, chip, opts).value();
    auto r = Simulate(prog, chip).value();
    return static_cast<double>(app.typical_batch) / r.latency_s;
}

TEST(PaperClaims, Headline_PerfPerTdpVsTpu3)
{
    // The paper's headline: TPUv4i delivers ~2.3x TPUv3's perf/TDP.
    std::vector<double> ratios;
    for (const auto& app : ProductionApps()) {
        const double v3 =
            ThroughputOf(app, Tpu_v3(), DType::kBf16) / Tpu_v3().tdp_w;
        const double v4i = ThroughputOf(app, Tpu_v4i(), DType::kBf16) /
                           Tpu_v4i().tdp_w;
        ratios.push_back(v4i / v3);
    }
    const double geomean = GeoMean(ratios);
    EXPECT_GT(geomean, 2.0);
    EXPECT_LT(geomean, 3.5);
}

TEST(PaperClaims, Headline_PerChipPerfVsT4)
{
    // TPUv4i clearly beats the T4 per chip (MLPerf-style comparison).
    std::vector<double> ratios;
    for (const auto& app : ProductionApps()) {
        ratios.push_back(ThroughputOf(app, Tpu_v4i(), DType::kBf16) /
                         ThroughputOf(app, GpuT4(), DType::kInt8));
    }
    const double geomean = GeoMean(ratios);
    EXPECT_GT(geomean, 1.5);
    EXPECT_LT(geomean, 3.5);
}

TEST(PaperClaims, Lesson1_UnequalScaling)
{
    const TechNode n28 = TechNodeOf(28).value();
    const TechNode n7 = TechNodeOf(7).value();
    const double logic = n7.logic_density / n28.logic_density;
    const double sram = n7.sram_density / n28.sram_density;
    EXPECT_GT(logic, 2.0 * sram);  // logic far outruns SRAM
}

TEST(PaperClaims, Lesson2_CompilerGainsBand)
{
    // ~20 months of compiler work: geomean well above 1.1x, some apps
    // near 2x, none hurt.
    std::vector<double> gains;
    const ChipConfig chip = Tpu_v4i();
    double best = 0.0;
    for (const auto& app : ProductionApps()) {
        CompileOptions o0;
        o0.batch = app.typical_batch;
        o0.opt_level = 0;
        CompileOptions o3 = o0;
        o3.opt_level = 3;
        const double t0 =
            Simulate(Compile(app.graph, chip, o0).value(), chip)
                .value().latency_s;
        const double t3 =
            Simulate(Compile(app.graph, chip, o3).value(), chip)
                .value().latency_s;
        gains.push_back(t0 / t3);
        best = std::max(best, t0 / t3);
        EXPECT_GE(t0 / t3, 0.999) << app.name;
    }
    const double geomean = GeoMean(gains);
    EXPECT_GT(geomean, 1.15);
    EXPECT_LT(geomean, 1.8);
    EXPECT_GT(best, 1.5);
}

TEST(PaperClaims, Lesson8_GrowthRateBand)
{
    auto weights_of = [](int year) {
        double sum = 0.0;
        for (const auto& app : AppsOfYear(year)) {
            sum += static_cast<double>(
                app.graph.Cost(1, DType::kBf16, DType::kBf16)
                    .value().weight_bytes);
        }
        return sum;
    };
    const double rate =
        std::pow(weights_of(2021) / weights_of(2016), 1.0 / 5.0);
    EXPECT_GT(rate, 1.35);
    EXPECT_LT(rate, 1.65);
}

TEST(PaperClaims, Lesson9_FixedFunctionStrands)
{
    // TPUv1's fleet-weighted throughput on the 2020 mix falls well
    // below its 2016 self; TPUv4i holds most of its value.
    auto fleet_ips = [](const ChipConfig& chip, DType dtype,
                        const FleetMix& mix) {
        std::map<AppDomain, double> ips;
        for (const char* name : {"MLP0", "CNN0", "RNN0", "BERT0"}) {
            auto app = BuildApp(name).value();
            ips[app.domain] = ThroughputOf(app, chip, dtype);
        }
        double time = mix.mlp_share / ips[AppDomain::kMlp] +
                      mix.cnn_share / ips[AppDomain::kCnn] +
                      mix.rnn_share / ips[AppDomain::kRnn];
        if (mix.bert_share > 0.0) {
            time += mix.bert_share / ips[AppDomain::kBert];
        }
        return 1.0 / time;
    };
    auto history = FleetMixHistory();
    const FleetMix& first = history.front();
    const FleetMix& last = history.back();
    const double v1_hold = fleet_ips(Tpu_v1(), DType::kInt8, last) /
                           fleet_ips(Tpu_v1(), DType::kInt8, first);
    const double v4i_hold =
        fleet_ips(Tpu_v4i(), DType::kBf16, last) /
        fleet_ips(Tpu_v4i(), DType::kBf16, first);
    EXPECT_LT(v1_hold, 0.5);
    EXPECT_GT(v4i_hold, 0.7);
}

TEST(PaperClaims, Lesson10_EveryAppBatchesInsideItsSlo)
{
    const ChipConfig chip = Tpu_v4i();
    for (const auto& app : ProductionApps()) {
        LatencyTable table;
        for (int64_t b = 1; b <= 64; b *= 2) {
            CompileOptions opts;
            opts.batch = b;
            table.AddPoint(
                b, Simulate(Compile(app.graph, chip, opts).value(),
                            chip).value().latency_s);
        }
        EXPECT_GE(table.MaxBatchUnderSlo(app.slo_ms * 1e-3), 8)
            << app.name;
    }
}

TEST(PaperClaims, FleetEconomics_Tpu4iCheapestPerServedQuery)
{
    auto demands = ReferenceTraffic(20).value();
    FleetParams params;
    const double v4i =
        PlanFleet(demands, Tpu_v4i(), params).value().tco_usd;
    const double v3 =
        PlanFleet(demands, Tpu_v3(), params).value().tco_usd;
    const double t4 =
        PlanFleet(demands, GpuT4(), params).value().tco_usd;
    EXPECT_LT(v4i, v3);
    EXPECT_LT(v4i, t4);
    EXPECT_GT(v3 / v4i, 1.5);
    EXPECT_GT(t4 / v4i, 2.5);
}

}  // namespace
}  // namespace t4i
