/**
 * @file
 * Tests for the per-layer profiler.
 */
#include <gtest/gtest.h>

#include "src/arch/catalog.h"
#include "src/compiler/compiler.h"
#include "src/models/zoo.h"
#include "src/sim/profile.h"

namespace t4i {
namespace {

struct Profiled {
    Program program;
    std::vector<ScheduleEntry> schedule;
    SimResult result;
};

Profiled
Make(const char* app_name, int64_t batch)
{
    auto app = BuildApp(app_name).value();
    const ChipConfig chip = Tpu_v4i();
    CompileOptions opts;
    opts.batch = batch;
    auto prog = Compile(app.graph, chip, opts).value();
    std::vector<ScheduleEntry> schedule;
    auto result = SimulateWithSchedule(prog, chip, &schedule).value();
    return {std::move(prog), std::move(schedule), result};
}

TEST(Profile, BusyTimesSumToEngineTotals)
{
    Profiled p = Make("CNN1", 8);
    auto profiles = ProfileByLayer(p.program, p.schedule).value();
    double mxu = 0.0;
    double vpu = 0.0;
    double mem = 0.0;
    for (const auto& layer : profiles) {
        mxu += layer.mxu_s;
        vpu += layer.vpu_s;
        mem += layer.mem_s;
    }
    EXPECT_NEAR(mxu, p.result.engine(Engine::kMxu).busy_s, 1e-9);
    EXPECT_NEAR(vpu, p.result.engine(Engine::kVpu).busy_s, 1e-9);
    EXPECT_NEAR(mem,
                p.result.engine(Engine::kHbm).busy_s +
                    p.result.engine(Engine::kCmem).busy_s,
                1e-9);
}

TEST(Profile, MacsSumToProgramTotal)
{
    Profiled p = Make("BERT0", 8);
    auto profiles = ProfileByLayer(p.program, p.schedule).value();
    double macs = 0.0;
    int64_t instrs = 0;
    for (const auto& layer : profiles) {
        macs += layer.macs;
        instrs += layer.instructions;
    }
    EXPECT_NEAR(macs, p.program.TotalMacs(), 1.0);
    EXPECT_EQ(instrs,
              static_cast<int64_t>(p.program.instrs.size()));
}

TEST(Profile, SortedByBusyTime)
{
    Profiled p = Make("CNN0", 8);
    auto profiles = ProfileByLayer(p.program, p.schedule).value();
    for (size_t i = 1; i < profiles.size(); ++i) {
        const double prev = profiles[i - 1].mxu_s +
                            profiles[i - 1].vpu_s +
                            profiles[i - 1].mem_s;
        const double cur = profiles[i].mxu_s + profiles[i].vpu_s +
                           profiles[i].mem_s;
        EXPECT_GE(prev, cur - 1e-15);
    }
}

TEST(Profile, SpansAreWithinRunLatency)
{
    Profiled p = Make("RNN1", 4);
    auto profiles = ProfileByLayer(p.program, p.schedule).value();
    for (const auto& layer : profiles) {
        EXPECT_GE(layer.span_s, 0.0);
        EXPECT_LE(layer.span_s, p.result.latency_s + 1e-12);
    }
}

TEST(Profile, RejectsMismatchedSchedule)
{
    Profiled p = Make("CNN1", 2);
    p.schedule.pop_back();
    EXPECT_FALSE(ProfileByLayer(p.program, p.schedule).ok());
}

TEST(Profile, RenderShowsTopLayersAndTruncates)
{
    Profiled p = Make("BERT0", 8);
    auto profiles = ProfileByLayer(p.program, p.schedule).value();
    std::string table = RenderProfile(profiles, 4);
    EXPECT_NE(table.find("GMACs"), std::string::npos);
    EXPECT_NE(table.find("more layers"), std::string::npos);
}

}  // namespace
}  // namespace t4i
