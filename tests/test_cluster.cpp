/**
 * @file
 * Tests for the cluster serving layer: routing policies in isolation,
 * the router's bit-identity guards against the single-cell simulator,
 * the single-cell-outage drill, N+k seeding, the burn-rate autoscaler,
 * and the canary rollout state machine.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "src/cluster/cluster.h"
#include "src/cluster/routing.h"
#include "src/serving/server.h"

namespace t4i {
namespace {

std::function<double(int64_t)>
AffineLatency(double fixed_s, double per_sample_s)
{
    return [=](int64_t batch) {
        return fixed_s + per_sample_s * static_cast<double>(batch);
    };
}

TenantConfig
Tenant(const std::string& name, double rate, double slo_s = 0.010)
{
    TenantConfig t;
    t.name = name;
    t.latency_s = AffineLatency(1e-3, 1e-4);
    t.max_batch = 32;
    t.slo_s = slo_s;
    t.arrival_rate = rate;
    return t;
}

/** Router-side conservation: every arrival ends exactly once. */
void
ExpectConservation(const ClusterResult& r)
{
    EXPECT_EQ(r.arrived, r.completed + r.dropped + r.shed);
    for (const ClusterTenantStats& t : r.tenants) {
        EXPECT_EQ(t.arrived, t.completed + t.dropped + t.shed);
    }
    // Each cell's own books balance too (a failed-over injection is
    // arrived+shed inside the refusing cell).
    for (const ServingResult& cell : r.cells) {
        for (const TenantStats& t : cell.tenants) {
            EXPECT_EQ(t.arrived, t.completed + t.dropped + t.shed);
        }
    }
}

// --- routing policies in isolation -----------------------------------

TEST(Routing, RoundRobinSkipsUnroutableCells)
{
    Rng rng(1);
    uint64_t cursor = 0;
    std::vector<CellView> cells(3);
    cells[1].healthy = false;
    EXPECT_EQ(PickCell(RoutingPolicy::kRoundRobin, cells, &cursor, rng),
              0);
    EXPECT_EQ(PickCell(RoutingPolicy::kRoundRobin, cells, &cursor, rng),
              2);
    EXPECT_EQ(PickCell(RoutingPolicy::kRoundRobin, cells, &cursor, rng),
              0);
}

TEST(Routing, LeastLoadedPicksShallowestRoutableQueue)
{
    Rng rng(1);
    uint64_t cursor = 0;
    std::vector<CellView> cells(3);
    cells[0].queue_depth = 5;
    cells[1].queue_depth = 1;
    cells[2].queue_depth = 9;
    EXPECT_EQ(
        PickCell(RoutingPolicy::kLeastLoaded, cells, &cursor, rng), 1);
    cells[1].accepting = false;
    EXPECT_EQ(
        PickCell(RoutingPolicy::kLeastLoaded, cells, &cursor, rng), 0);
}

TEST(Routing, PowerOfTwoPicksShorterOfTheSampledPair)
{
    Rng rng(7);
    uint64_t cursor = 0;
    // With exactly two routable cells both are always sampled, so the
    // shallower one must win every draw.
    std::vector<CellView> cells(2);
    cells[0].queue_depth = 10;
    cells[1].queue_depth = 2;
    for (int i = 0; i < 32; ++i) {
        EXPECT_EQ(
            PickCell(RoutingPolicy::kPowerOfTwo, cells, &cursor, rng),
            1);
    }
}

TEST(Routing, NoRoutableCellReturnsMinusOne)
{
    Rng rng(1);
    uint64_t cursor = 0;
    std::vector<CellView> cells(2);
    cells[0].healthy = false;
    cells[1].accepting = false;
    for (RoutingPolicy p :
         {RoutingPolicy::kRoundRobin, RoutingPolicy::kLeastLoaded,
          RoutingPolicy::kPowerOfTwo, RoutingPolicy::kTenantAffinity}) {
        EXPECT_EQ(PickCell(p, cells, &cursor, rng), -1);
    }
}

TEST(Routing, AffinityPrefersResidentCellAndFallsBack)
{
    Rng rng(1);
    uint64_t cursor = 0;
    std::vector<CellView> cells(3);
    cells[0].queue_depth = 0;
    cells[2].queue_depth = 4;
    cells[2].tenant_resident = true;
    // Resident wins even with the deeper queue (staying avoids the
    // CMEM re-staging penalty).
    EXPECT_EQ(
        PickCell(RoutingPolicy::kTenantAffinity, cells, &cursor, rng),
        2);
    // A dead resident cell falls back to least-loaded.
    cells[2].healthy = false;
    EXPECT_EQ(
        PickCell(RoutingPolicy::kTenantAffinity, cells, &cursor, rng),
        0);
}

TEST(Routing, ParseRoundTripsEveryPolicy)
{
    for (RoutingPolicy p :
         {RoutingPolicy::kRoundRobin, RoutingPolicy::kLeastLoaded,
          RoutingPolicy::kPowerOfTwo, RoutingPolicy::kTenantAffinity}) {
        auto parsed = ParseRoutingPolicy(RoutingPolicyName(p));
        ASSERT_TRUE(parsed.ok());
        EXPECT_EQ(parsed.value(), p);
    }
    EXPECT_FALSE(ParseRoutingPolicy("bogus").ok());
}

TEST(Routing, PowerOfTwoBeatsRoundRobinBacklogUnderSkew)
{
    // Synthetic queue model, no simulator: one crippled cell among
    // four (drains 1 request/tick vs 4). Round-robin keeps feeding it
    // blindly so its backlog grows without bound; two random probes
    // per request are enough to steer around it.
    auto max_backlog = [](RoutingPolicy policy) {
        Rng rng(123);
        uint64_t cursor = 0;
        std::vector<int64_t> depth(4, 0);
        const std::vector<int64_t> drain = {1, 4, 4, 4};
        int64_t worst = 0;
        for (int tick = 0; tick < 400; ++tick) {
            for (int r = 0; r < 8; ++r) {
                std::vector<CellView> views(4);
                for (size_t i = 0; i < views.size(); ++i) {
                    views[i].queue_depth = depth[i];
                }
                const int pick = PickCell(policy, views, &cursor, rng);
                EXPECT_GE(pick, 0);
                ++depth[static_cast<size_t>(pick)];
            }
            for (size_t i = 0; i < depth.size(); ++i) {
                depth[i] = std::max<int64_t>(0, depth[i] - drain[i]);
                worst = std::max(worst, depth[i]);
            }
        }
        return worst;
    };
    const int64_t rr = max_backlog(RoutingPolicy::kRoundRobin);
    const int64_t p2c = max_backlog(RoutingPolicy::kPowerOfTwo);
    EXPECT_GT(rr, 100);       // the slow cell's queue blew up
    EXPECT_LT(p2c * 5, rr);   // p2c kept the tail bounded
}

// --- bit-identity guards ---------------------------------------------

TEST(Cluster, PassthroughReproducesSingleCellBitForBit)
{
    const std::vector<TenantConfig> tenants = {Tenant("a", 300.0),
                                               Tenant("b", 120.0)};
    auto base_or = RunServingCell(tenants, 2, 1.5, 7);
    ASSERT_TRUE(base_or.ok());
    const ServingResult& base = base_or.value();

    ClusterConfig config;
    config.tenants = tenants;
    config.num_cells = 1;
    config.devices_per_cell = 2;
    config.duration_s = 1.5;
    config.seed = 7;
    config.passthrough = true;
    auto cluster_or = RunCluster(config);
    ASSERT_TRUE(cluster_or.ok());
    const ClusterResult& cluster = cluster_or.value();

    ASSERT_EQ(cluster.cells.size(), 1u);
    const ServingResult& cell = cluster.cells[0];
    EXPECT_EQ(cell.device_busy_fraction, base.device_busy_fraction);
    EXPECT_EQ(cell.switch_overhead_fraction,
              base.switch_overhead_fraction);
    EXPECT_EQ(cell.host_busy_fraction, base.host_busy_fraction);
    EXPECT_EQ(cell.availability, base.availability);
    ASSERT_EQ(cell.tenants.size(), base.tenants.size());
    for (size_t i = 0; i < base.tenants.size(); ++i) {
        const TenantStats& got = cell.tenants[i];
        const TenantStats& want = base.tenants[i];
        EXPECT_EQ(got.arrived, want.arrived);
        EXPECT_EQ(got.completed, want.completed);
        EXPECT_EQ(got.dropped, want.dropped);
        EXPECT_EQ(got.shed, want.shed);
        EXPECT_EQ(got.slo_misses, want.slo_misses);
        EXPECT_EQ(got.mean_latency_s, want.mean_latency_s);
        EXPECT_EQ(got.p50_latency_s, want.p50_latency_s);
        EXPECT_EQ(got.p95_latency_s, want.p95_latency_s);
        EXPECT_EQ(got.p99_latency_s, want.p99_latency_s);
        EXPECT_EQ(got.throughput_rps, want.throughput_rps);
        EXPECT_EQ(got.goodput_rps, want.goodput_rps);
        EXPECT_EQ(got.mean_batch, want.mean_batch);
        EXPECT_EQ(got.max_queue_depth, want.max_queue_depth);
    }
    ExpectConservation(cluster);
}

TEST(Cluster, SingleTenantRouterPathReproducesSingleCell)
{
    // With one tenant and one cell the router's arrival draws chain
    // exactly like the cell's internal process, so even the full
    // inject/advance path must reproduce the single-cell run bit for
    // bit (the least-loaded policy never consumes randomness).
    const std::vector<TenantConfig> tenants = {Tenant("solo", 400.0)};
    auto base_or = RunServingCell(tenants, 2, 1.0, 11);
    ASSERT_TRUE(base_or.ok());
    const TenantStats& want = base_or.value().tenants[0];

    ClusterConfig config;
    config.tenants = tenants;
    config.num_cells = 1;
    config.devices_per_cell = 2;
    config.duration_s = 1.0;
    config.seed = 11;
    config.policy = RoutingPolicy::kLeastLoaded;
    config.max_route_attempts = 1;
    auto cluster_or = RunCluster(config);
    ASSERT_TRUE(cluster_or.ok());
    const ClusterResult& cluster = cluster_or.value();

    ASSERT_EQ(cluster.cells.size(), 1u);
    const TenantStats& got = cluster.cells[0].tenants[0];
    EXPECT_EQ(got.arrived, want.arrived);
    EXPECT_EQ(got.completed, want.completed);
    EXPECT_EQ(got.dropped, want.dropped);
    EXPECT_EQ(got.shed, want.shed);
    EXPECT_EQ(got.mean_latency_s, want.mean_latency_s);
    EXPECT_EQ(got.p95_latency_s, want.p95_latency_s);
    EXPECT_EQ(got.p99_latency_s, want.p99_latency_s);
    EXPECT_EQ(got.mean_batch, want.mean_batch);
    EXPECT_EQ(got.max_queue_depth, want.max_queue_depth);
    EXPECT_EQ(cluster.cells[0].device_busy_fraction,
              base_or.value().device_busy_fraction);
    // Router books agree with the cell's books.
    EXPECT_EQ(cluster.arrived, want.arrived);
    EXPECT_EQ(cluster.completed, want.completed);
    ExpectConservation(cluster);
}

// --- outage drill ----------------------------------------------------

TEST(Cluster, SingleCellOutageFailsOverAndHoldsAvailabilityFloor)
{
    // Cell 1 of 3 dies at t=1.4 of 2.0 and never repairs: down for
    // 30% of the run, i.e. a per-cell availability of 0.7. The N+k
    // model then predicts the floor for needing 2 of 3 cells.
    ClusterConfig config;
    config.tenants = {Tenant("web", 600.0)};
    config.num_cells = 3;
    config.devices_per_cell = 2;
    config.duration_s = 2.0;
    config.seed = 21;
    config.policy = RoutingPolicy::kLeastLoaded;
    config.cell_faults.resize(3);
    config.cell_faults[1] = CellOutagePlan(2, 1.4);
    auto result_or = RunCluster(config);
    ASSERT_TRUE(result_or.ok());
    const ClusterResult& r = result_or.value();

    ExpectConservation(r);
    EXPECT_GT(r.arrived, 1000);
    // The dead cell's availability reflects the outage; the others
    // stayed up.
    EXPECT_LT(r.cells[1].availability, 0.75);
    EXPECT_EQ(r.cells[0].availability, 1.0);
    const double floor = PredictedAvailabilityFloor(2, 3, 0.7);
    EXPECT_GT(floor, 0.7);
    EXPECT_LT(floor, 1.0);
    EXPECT_GT(r.availability, floor);
}

TEST(Cluster, HealthCheckLagLandsRequestsOnTheDeadCell)
{
    // With a stale health belief the router keeps routing to the dead
    // cell until the next probe notices; those requests drop there.
    ClusterConfig base;
    base.tenants = {Tenant("web", 500.0)};
    base.num_cells = 2;
    base.devices_per_cell = 1;
    base.duration_s = 1.5;
    base.seed = 5;
    base.cell_faults.resize(2);
    base.cell_faults[1] = CellOutagePlan(1, 0.5);

    ClusterConfig lagged = base;
    lagged.health_check_interval_s = 0.3;
    auto fresh_or = RunCluster(base);
    auto lag_or = RunCluster(lagged);
    ASSERT_TRUE(fresh_or.ok());
    ASSERT_TRUE(lag_or.ok());
    ExpectConservation(fresh_or.value());
    ExpectConservation(lag_or.value());
    // The lagged router lost at least as many requests into cell 1.
    EXPECT_GE(lag_or.value().cells[1].tenants[0].dropped,
              fresh_or.value().cells[1].tenants[0].dropped);
    EXPECT_GT(lag_or.value().dropped, 0);
}

TEST(Cluster, AllCellsDownShedsEverythingAtTheRouter)
{
    ClusterConfig config;
    config.tenants = {Tenant("web", 200.0)};
    config.num_cells = 2;
    config.devices_per_cell = 1;
    config.duration_s = 0.5;
    config.seed = 3;
    config.cell_faults.resize(2);
    config.cell_faults[0] = CellOutagePlan(1, 0.0);
    config.cell_faults[1] = CellOutagePlan(1, 0.0);
    auto result_or = RunCluster(config);
    ASSERT_TRUE(result_or.ok());
    const ClusterResult& r = result_or.value();
    EXPECT_GT(r.arrived, 0);
    EXPECT_EQ(r.completed, 0);
    EXPECT_EQ(r.router_shed, r.arrived);
    EXPECT_EQ(r.availability, 0.0);
    ExpectConservation(r);
}

// --- N+k seeding -----------------------------------------------------

TEST(Cluster, NPlusKSeedingActivatesSpares)
{
    // Per-cell steady-state availability 0.9 (mtbf 9, mttr 1). For
    // N=2 and a 0.97 target the planner needs exactly one spare:
    // CellAvailability(2, 2, 0.9) = 0.81, (2, 3, 0.9) = 0.972.
    FaultPlan flaky;
    flaky.mtbf_s = 9.0;
    flaky.mttr_s = 1.0;
    ClusterConfig config;
    config.tenants = {Tenant("web", 100.0)};
    config.num_cells = 2;
    config.devices_per_cell = 1;
    config.duration_s = 0.5;
    config.standby_cells = 2;
    config.target_availability = 0.97;
    config.cell_faults = {flaky, flaky, flaky, flaky};
    for (size_t i = 0; i < config.cell_faults.size(); ++i) {
        config.cell_faults[i].seed = 0x1000 + i;
    }
    auto result_or = RunCluster(config);
    ASSERT_TRUE(result_or.ok());
    EXPECT_EQ(result_or.value().planned_spares, 1);
    EXPECT_EQ(result_or.value().initial_active_cells, 3);
    ExpectConservation(result_or.value());
}

// --- autoscaler ------------------------------------------------------

TEST(Cluster, AutoscalerUpscalesUnderBurn)
{
    // One active cell with a tight SLO under heavy load burns the
    // error budget immediately; the standby cell must come online.
    ClusterConfig config;
    config.tenants = {Tenant("web", 700.0, 0.002)};
    config.num_cells = 1;
    config.devices_per_cell = 1;
    config.duration_s = 1.5;
    config.seed = 9;
    config.standby_cells = 1;
    config.autoscaler.enabled = true;
    config.autoscaler.interval_s = 0.1;
    config.autoscaler.upscale_burn = 1.0;
    config.autoscaler.downscale_burn = 0.0;  // never park
    auto result_or = RunCluster(config);
    ASSERT_TRUE(result_or.ok());
    const ClusterResult& r = result_or.value();
    EXPECT_GE(r.upscales, 1);
    EXPECT_EQ(r.peak_active_cells, 2);
    ASSERT_FALSE(r.scale_events.empty());
    EXPECT_TRUE(r.scale_events[0].activated);
    EXPECT_GT(r.scale_events[0].burn_rate, 1.0);
    ExpectConservation(r);
}

TEST(Cluster, AutoscalerParksIdleCells)
{
    // Two active cells with almost no traffic: the burn rate sits at
    // zero, so the autoscaler parks down to min_cells.
    ClusterConfig config;
    config.tenants = {Tenant("web", 30.0, 0.050)};
    config.num_cells = 2;
    config.devices_per_cell = 1;
    config.duration_s = 1.0;
    config.seed = 13;
    config.autoscaler.enabled = true;
    config.autoscaler.interval_s = 0.1;
    config.autoscaler.upscale_burn = 1e9;
    config.autoscaler.downscale_burn = 0.25;
    config.autoscaler.min_cells = 1;
    auto result_or = RunCluster(config);
    ASSERT_TRUE(result_or.ok());
    const ClusterResult& r = result_or.value();
    EXPECT_GE(r.downscales, 1);
    ASSERT_FALSE(r.scale_events.empty());
    EXPECT_FALSE(r.scale_events[0].activated);
    ExpectConservation(r);
}

// --- canary rollout --------------------------------------------------

ClusterConfig
CanaryBase(double latency_scale)
{
    ClusterConfig config;
    config.tenants = {Tenant("web", 300.0, 0.050)};
    config.num_cells = 2;
    config.devices_per_cell = 1;
    config.duration_s = 4.0;
    config.seed = 17;
    // Round-robin keeps feeding the slow canary cell, so both sides
    // of the soak comparison always collect samples.
    config.policy = RoutingPolicy::kRoundRobin;
    config.canary.enabled = true;
    config.canary.latency_scale = latency_scale;
    config.canary.start_s = 0.5;
    config.canary.soak_s = 0.5;
    config.canary.abort_p95_ratio = 1.5;
    config.canary.min_samples = 10;
    return config;
}

TEST(Cluster, CanaryRolloutPromotesAnIdenticalVersion)
{
    auto result_or = RunCluster(CanaryBase(1.0));
    ASSERT_TRUE(result_or.ok());
    const ClusterResult& r = result_or.value();
    EXPECT_TRUE(r.rollout_complete);
    EXPECT_FALSE(r.rollout_aborted);
    ASSERT_EQ(r.rollout.size(), 2u);
    for (const RolloutStep& step : r.rollout) {
        EXPECT_TRUE(step.promoted);
        EXPECT_FALSE(step.aborted);
        EXPECT_GE(step.swap_s, step.drain_start_s);
        EXPECT_GT(step.verdict_s, step.swap_s);
        EXPECT_GT(step.canary_p95_s, 0.0);
        EXPECT_GT(step.baseline_p95_s, 0.0);
    }
    ExpectConservation(r);
}

TEST(Cluster, CanaryRolloutAbortsARegressedVersion)
{
    auto result_or = RunCluster(CanaryBase(10.0));
    ASSERT_TRUE(result_or.ok());
    const ClusterResult& r = result_or.value();
    EXPECT_TRUE(r.rollout_aborted);
    EXPECT_FALSE(r.rollout_complete);
    ASSERT_EQ(r.rollout.size(), 1u);
    EXPECT_TRUE(r.rollout[0].aborted);
    EXPECT_FALSE(r.rollout[0].promoted);
    EXPECT_GT(r.rollout[0].canary_p95_s,
              1.5 * r.rollout[0].baseline_p95_s);
    ExpectConservation(r);
}

// --- affinity vs switch overhead -------------------------------------

TEST(Cluster, AffinityRoutingCutsSwitchOverhead)
{
    // Two tenants with a heavy CMEM re-staging penalty on two
    // single-device cells. Round-robin interleaves the tenants on
    // both devices (a switch nearly every dispatch); affinity lets
    // each tenant settle on its own cell.
    auto run = [](RoutingPolicy policy) {
        ClusterConfig config;
        TenantConfig a = Tenant("a", 100.0, 0.100);
        TenantConfig b = Tenant("b", 100.0, 0.100);
        a.switch_penalty_s = 5e-3;
        b.switch_penalty_s = 5e-3;
        config.tenants = {a, b};
        config.num_cells = 2;
        config.devices_per_cell = 1;
        config.duration_s = 2.0;
        config.seed = 29;
        config.policy = policy;
        auto result_or = RunCluster(config);
        EXPECT_TRUE(result_or.ok());
        return result_or.value();
    };
    const ClusterResult rr = run(RoutingPolicy::kRoundRobin);
    const ClusterResult aff = run(RoutingPolicy::kTenantAffinity);
    const double rr_switch =
        (rr.cells[0].switch_overhead_fraction +
         rr.cells[1].switch_overhead_fraction) / 2.0;
    const double aff_switch =
        (aff.cells[0].switch_overhead_fraction +
         aff.cells[1].switch_overhead_fraction) / 2.0;
    EXPECT_GT(rr_switch, 0.0);
    EXPECT_LT(aff_switch, 0.5 * rr_switch);
    ExpectConservation(rr);
    ExpectConservation(aff);
}

// --- determinism and validation --------------------------------------

TEST(Cluster, DeterministicForSeed)
{
    ClusterConfig config;
    config.tenants = {Tenant("a", 300.0), Tenant("b", 100.0)};
    config.num_cells = 3;
    config.devices_per_cell = 2;
    config.duration_s = 1.0;
    config.seed = 99;
    config.policy = RoutingPolicy::kPowerOfTwo;
    config.cell_faults.resize(3);
    config.cell_faults[2] = CellOutagePlan(2, 0.6, 0.8);
    auto a_or = RunCluster(config);
    auto b_or = RunCluster(config);
    ASSERT_TRUE(a_or.ok());
    ASSERT_TRUE(b_or.ok());
    const ClusterResult& a = a_or.value();
    const ClusterResult& b = b_or.value();
    EXPECT_EQ(a.arrived, b.arrived);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.dropped, b.dropped);
    EXPECT_EQ(a.shed, b.shed);
    EXPECT_EQ(a.failovers, b.failovers);
    EXPECT_EQ(a.availability, b.availability);
    ASSERT_EQ(a.tenants.size(), b.tenants.size());
    for (size_t i = 0; i < a.tenants.size(); ++i) {
        EXPECT_EQ(a.tenants[i].p95_latency_s, b.tenants[i].p95_latency_s);
        EXPECT_EQ(a.tenants[i].mean_latency_s,
                  b.tenants[i].mean_latency_s);
    }
}

TEST(Cluster, RejectsBadConfig)
{
    ClusterConfig config;
    config.tenants = {Tenant("a", 10.0)};
    config.num_cells = 0;
    EXPECT_FALSE(RunCluster(config).ok());
    config.num_cells = 2;
    config.passthrough = true;
    EXPECT_FALSE(RunCluster(config).ok());
    config.passthrough = false;
    config.max_route_attempts = 0;
    EXPECT_FALSE(RunCluster(config).ok());
    config.max_route_attempts = 2;
    config.tenants.clear();
    EXPECT_FALSE(RunCluster(config).ok());
}

}  // namespace
}  // namespace t4i
