/**
 * @file
 * Tests for the extension workloads (decoder LM, DLRM, SSD) and the IR
 * kinds backing them (kConcat, kDecoderBlock).
 */
#include <gtest/gtest.h>

#include "src/arch/catalog.h"
#include "src/compiler/compiler.h"
#include "src/models/zoo.h"
#include "src/sim/machine.h"
#include "src/tensor/executor.h"

namespace t4i {
namespace {

StatusOr<SimResult>
RunOn(const Graph& graph, const ChipConfig& chip, int64_t batch,
      int num_chips = 1)
{
    CompileOptions opts;
    opts.batch = batch;
    opts.num_chips = num_chips;
    auto p = Compile(graph, chip, opts);
    T4I_RETURN_IF_ERROR(p.status());
    return Simulate(p.value(), chip);
}

// --- kConcat ----------------------------------------------------------------

TEST(Concat, SumsHeterogeneousInputs)
{
    Graph g("c");
    int a = g.AddInput("a", {4, 8});
    int b = g.AddInput("b", {5});
    g.AddLayer(LayerKind::kConcat, "cat", {a, b}, LayerParams{});
    ASSERT_TRUE(g.Finalize().ok());
    EXPECT_EQ(g.layer(2).out_shape, std::vector<int64_t>({37}));
}

TEST(Concat, CompilesAndRuns)
{
    Graph g("c");
    int a = g.AddInput("a", {64});
    LayerParams d1;
    d1.in_features = 64;
    d1.out_features = 32;
    int x = g.AddLayer(LayerKind::kDense, "fc", {a}, d1);
    int cat = g.AddLayer(LayerKind::kConcat, "cat", {x, a},
                         LayerParams{});
    LayerParams d2;
    d2.in_features = 96;
    d2.out_features = 8;
    g.AddLayer(LayerKind::kDense, "out", {cat}, d2);
    ASSERT_TRUE(g.Finalize().ok());
    auto r = RunOn(g, Tpu_v4i(), 4);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_GT(r.value().latency_s, 0.0);
}

// --- kDecoderBlock ------------------------------------------------------------

TEST(DecoderBlock, ShapeAndValidation)
{
    Layer l;
    l.kind = LayerKind::kDecoderBlock;
    l.params.seq_len = 16;
    l.params.kv_len = 256;
    l.params.d_model = 512;
    l.params.num_heads = 8;
    l.params.d_ff = 2048;
    EXPECT_EQ(InferShape(l, {16, 512}).value(),
              (std::vector<int64_t>{16, 512}));
    EXPECT_FALSE(InferShape(l, {8, 512}).ok());
    EXPECT_FALSE(InferShape(l, {16, 256}).ok());
}

TEST(DecoderBlock, CostGrowsWithContext)
{
    Layer l;
    l.kind = LayerKind::kDecoderBlock;
    l.params.seq_len = 16;
    l.params.d_model = 512;
    l.params.num_heads = 8;
    l.params.d_ff = 2048;
    l.params.kv_len = 128;
    auto short_ctx = ComputeLayerCost(l, {16, 512}, 1, DType::kBf16,
                                      DType::kBf16).value();
    l.params.kv_len = 2048;
    auto long_ctx = ComputeLayerCost(l, {16, 512}, 1, DType::kBf16,
                                     DType::kBf16).value();
    EXPECT_GT(long_ctx.flops, short_ctx.flops);
    // Weights do not depend on context length.
    EXPECT_EQ(long_ctx.weight_bytes, short_ctx.weight_bytes);
}

// --- Decoder LM ------------------------------------------------------------------

TEST(DecoderLm, BuildsAndRuns)
{
    Graph g = BuildDecoderLm("lm", 4, 512, 8, 2048, 256, 8, 32000);
    EXPECT_TRUE(g.finalized());
    auto r = RunOn(g, Tpu_v4i(), 4);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_GT(r.value().total_macs, 0.0);
}

TEST(DecoderLm, LatencyScalesWithGeneratedTokens)
{
    Graph g8 = BuildDecoderLm("lm8", 4, 512, 8, 2048, 256, 8, 32000);
    Graph g32 = BuildDecoderLm("lm32", 4, 512, 8, 2048, 256, 32, 32000);
    auto r8 = RunOn(g8, Tpu_v4i(), 4).value();
    auto r32 = RunOn(g32, Tpu_v4i(), 4).value();
    // Sequential decode: ~4x the tokens ~> 3-5x the latency.
    const double ratio = r32.latency_s / r8.latency_s;
    EXPECT_GT(ratio, 2.5);
    EXPECT_LT(ratio, 6.0);
}

TEST(DecoderLm, SmallBatchDecodeIsMemoryOrFillBound)
{
    // Single-request decode cannot use the MXUs well — one token's
    // matvecs and a KV stream (the LLM-serving pain point).
    Graph g = BuildDecoderLm("lm", 8, 1024, 16, 4096, 512, 16, 32000);
    auto r1 = RunOn(g, Tpu_v4i(), 1).value();
    EXPECT_LT(r1.mxu_utilization, 0.05);
    // Batching recovers efficiency.
    auto r32 = RunOn(g, Tpu_v4i(), 32).value();
    EXPECT_GT(r32.mxu_utilization, 3.0 * r1.mxu_utilization);
}

TEST(DecoderLm, ShardingHelpsButIciBinds)
{
    Graph g = BuildDecoderLm("lm", 8, 1024, 16, 4096, 512, 16, 32000);
    auto r1 = RunOn(g, Tpu_v4i(), 8, 1).value();
    auto r4 = RunOn(g, Tpu_v4i(), 8, 4).value();
    const double speedup = r1.latency_s / r4.latency_s;
    EXPECT_GT(speedup, 1.0);
    EXPECT_LT(speedup, 4.0);
    EXPECT_GT(r4.engine(Engine::kIci).busy_s, 0.0);
}

// --- DLRM -----------------------------------------------------------------------

TEST(Dlrm, BuildsWithExpectedFootprint)
{
    Graph g = BuildDlrm("dlrm", 8, 1'000'000, 64, 16, 13);
    EXPECT_TRUE(g.finalized());
    auto cost = g.Cost(1, DType::kBf16, DType::kBf16).value();
    // 8 tables x 1M x 64 x 2B = 1 GiB of embeddings dominate.
    EXPECT_GT(cost.weight_bytes, 1'000'000'000LL);
    EXPECT_LT(cost.ops_per_weight_byte, 1.0);
}

TEST(Dlrm, RunsAndIsGatherDominated)
{
    Graph g = BuildDlrm("dlrm", 4, 200'000, 64, 16, 13);
    const ChipConfig chip = Tpu_v4i();
    CompileOptions opts;
    opts.batch = 128;
    auto prog = Compile(g, chip, opts).value();
    auto r = Simulate(prog, chip).value();
    EXPECT_LT(r.mxu_utilization, 0.3);
    EXPECT_GT(r.latency_s, 0.0);
}

// --- SSD ------------------------------------------------------------------------

TEST(Ssd, BuildsAndRuns)
{
    Graph g = BuildSsdDetector("ssd");
    EXPECT_TRUE(g.finalized());
    auto cost = g.Cost(1, DType::kBf16, DType::kBf16).value();
    // Conv-dominated: high intensity like the CNNs.
    EXPECT_GT(cost.ops_per_weight_byte, 100.0);
    auto r = RunOn(g, Tpu_v4i(), 8);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_GT(r.value().mxu_utilization, 0.1);
}

TEST(Ssd, MultiScaleHeadsAllContribute)
{
    Graph g = BuildSsdDetector("ssd");
    // The concat consumes six heads (3 scales x cls+box).
    const Layer& cat = g.layer(g.num_layers() - 1);
    EXPECT_EQ(cat.kind, LayerKind::kConcat);
    EXPECT_EQ(cat.inputs.size(), 6u);
}

// --- Depthwise conv / MobileNet ---------------------------------------------

TEST(Depthwise, ShapeAndCost)
{
    Layer l;
    l.kind = LayerKind::kDepthwiseConv2d;
    l.params.kernel_h = 3;
    l.params.kernel_w = 3;
    l.params.stride = 2;
    l.params.pad = 1;
    auto out = InferShape(l, {32, 32, 16}).value();
    EXPECT_EQ(out, (std::vector<int64_t>{16, 16, 16}));
    auto c = ComputeLayerCost(l, {32, 32, 16}, 2, DType::kBf16,
                              DType::kBf16).value();
    // 2 * N * OH * OW * C * K * K
    EXPECT_DOUBLE_EQ(c.flops, 2.0 * 2 * 16 * 16 * 16 * 9);
    EXPECT_EQ(c.weight_bytes, (9 * 16 + 16) * 2);
}

TEST(Depthwise, SystolicUtilizationIsPoor)
{
    // The defining behavior: per-FLOP, depthwise runs far below a
    // dense conv of the same shape on the MXUs.
    Graph dw("dw");
    int a = dw.AddInput("x", {56, 56, 256});
    LayerParams p;
    p.kernel_h = 3;
    p.kernel_w = 3;
    p.stride = 1;
    p.pad = 1;
    dw.AddLayer(LayerKind::kDepthwiseConv2d, "d", {a}, p);
    ASSERT_TRUE(dw.Finalize().ok());

    Graph dense("dense");
    int b = dense.AddInput("x", {56, 56, 256});
    LayerParams q = p;
    q.out_channels = 256;
    dense.AddLayer(LayerKind::kConv2d, "c", {b}, q);
    ASSERT_TRUE(dense.Finalize().ok());

    const ChipConfig chip = Tpu_v4i();
    auto r_dw = RunOn(dw, chip, 8).value();
    auto r_dense = RunOn(dense, chip, 8).value();
    EXPECT_LT(r_dw.mxu_utilization,
              r_dense.mxu_utilization / 8.0);
}

TEST(Depthwise, ExecutorMatchesPerChannelSemantics)
{
    // A 1x1 depthwise conv is a per-channel scalar multiply; check
    // channels do not mix.
    Graph g("dw1");
    int in = g.AddInput("x", {2, 2, 3});
    LayerParams p;
    p.kernel_h = 1;
    p.kernel_w = 1;
    p.stride = 1;
    p.pad = 0;
    g.AddLayer(LayerKind::kDepthwiseConv2d, "dw", {in}, p);
    ASSERT_TRUE(g.Finalize().ok());
    ExecOptions opts;
    opts.batch = 1;
    Tensor x(Shape({1, 2, 2, 3}));
    for (int64_t i = 0; i < x.NumElements(); ++i) {
        x[i] = static_cast<float>(i + 1);
    }
    auto r = Execute(g, {x}, opts).value();
    const Tensor& y = r.final_output();
    // Per channel c: y[..., c] = w_c * x[..., c] for one scalar w_c.
    for (int64_t c = 0; c < 3; ++c) {
        const float w0 = y[c] / x[c];
        for (int64_t s = 1; s < 4; ++s) {
            EXPECT_NEAR(y[s * 3 + c] / x[s * 3 + c], w0, 1e-5);
        }
    }
}

TEST(Depthwise, MobileNetBuildsAndRuns)
{
    Graph g = BuildMobileNetish("mn");
    EXPECT_TRUE(g.finalized());
    auto cost = g.Cost(1, DType::kBf16, DType::kBf16).value();
    // ~0.5-1.2 GFLOPs and a few MiB of weights, MobileNet-class.
    EXPECT_GT(cost.total_flops / 1e9, 0.3);
    EXPECT_LT(cost.total_flops / 1e9, 2.0);
    auto r = RunOn(g, Tpu_v4i(), 8);
    ASSERT_TRUE(r.ok());
    // Depthwise layers drag whole-model MXU utilization down hard.
    EXPECT_LT(r.value().mxu_utilization, 0.15);
}

}  // namespace
}  // namespace t4i
