/**
 * @file
 * Tests for the CMEM weight-pinning planner.
 */
#include <gtest/gtest.h>

#include "src/common/units.h"
#include "src/compiler/memory_planner.h"
#include "src/models/zoo.h"

namespace t4i {
namespace {

Graph
TwoDenseModel()
{
    Graph g("two_dense");
    int in = g.AddInput("x", {1024});
    LayerParams a;
    a.in_features = 1024;
    a.out_features = 1024;
    int l1 = g.AddLayer(LayerKind::kDense, "fc0", {in}, a);
    LayerParams b;
    b.in_features = 1024;
    b.out_features = 512;
    g.AddLayer(LayerKind::kDense, "fc1", {l1}, b);
    T4I_CHECK(g.Finalize().ok(), "finalize");
    return g;
}

TEST(MemoryPlanner, ZeroBudgetPinsNothing)
{
    Graph g = TwoDenseModel();
    auto plan = PlanWeightPinning(g, 8, DType::kBf16, DType::kBf16, 0)
                    .value();
    EXPECT_EQ(plan.pinned_bytes, 0);
    EXPECT_GT(plan.total_weight_bytes, 0);
    for (double f : plan.fraction) EXPECT_EQ(f, 0.0);
}

TEST(MemoryPlanner, LargeBudgetPinsEverything)
{
    Graph g = TwoDenseModel();
    auto plan = PlanWeightPinning(g, 8, DType::kBf16, DType::kBf16,
                                  1 * kGiB)
                    .value();
    EXPECT_EQ(plan.pinned_bytes, plan.total_weight_bytes);
    EXPECT_EQ(plan.fraction[1], 1.0);
    EXPECT_EQ(plan.fraction[2], 1.0);
}

TEST(MemoryPlanner, BoundaryLayerPinnedFractionally)
{
    Graph g = TwoDenseModel();
    // fc0 weighs (1024*1024 + 1024) * 2 B ~ 2 MiB; give 1 MiB.
    auto plan = PlanWeightPinning(g, 8, DType::kBf16, DType::kBf16,
                                  1 * kMiB)
                    .value();
    EXPECT_EQ(plan.pinned_bytes, 1 * kMiB);
    int fractional = 0;
    for (double f : plan.fraction) {
        if (f > 0.0 && f < 1.0) ++fractional;
    }
    EXPECT_EQ(fractional, 1);
}

TEST(MemoryPlanner, NeverExceedsBudget)
{
    Graph g = TwoDenseModel();
    for (int64_t budget : {0L, 100'000L, 1'000'000L, 3'000'000L}) {
        auto plan = PlanWeightPinning(g, 8, DType::kBf16, DType::kBf16,
                                      budget)
                        .value();
        EXPECT_LE(plan.pinned_bytes, budget);
    }
}

TEST(MemoryPlanner, RequiresFinalizedGraph)
{
    Graph g("raw");
    g.AddInput("x", {8});
    EXPECT_FALSE(
        PlanWeightPinning(g, 1, DType::kBf16, DType::kBf16, kMiB).ok());
}

TEST(MemoryPlanner, StreamedWeightsBeatEmbeddingTables)
{
    // MLP0: the dense tower streams on every inference, the embedding
    // table is touched sparsely. With a budget below the table size,
    // the tower must be pinned fully before the table.
    auto app = BuildApp("MLP0").value();
    auto plan = PlanWeightPinning(app.graph, 128, DType::kBf16,
                                  DType::kBf16, 64 * kMiB)
                    .value();
    int embed_id = -1;
    double dense_min_fraction = 1.0;
    for (const auto& layer : app.graph.layers()) {
        if (layer.kind == LayerKind::kEmbedding) embed_id = layer.id;
        if (layer.kind == LayerKind::kDense) {
            dense_min_fraction = std::min(
                dense_min_fraction,
                plan.fraction[static_cast<size_t>(layer.id)]);
        }
    }
    ASSERT_GE(embed_id, 0);
    EXPECT_EQ(dense_min_fraction, 1.0);
    EXPECT_LT(plan.fraction[static_cast<size_t>(embed_id)], 1.0);
}

class BudgetSweep : public ::testing::TestWithParam<int64_t> {};

TEST_P(BudgetSweep, PinnedBytesMonotoneInBudget)
{
    auto app = BuildApp("BERT0").value();
    const int64_t budget = GetParam();
    auto plan_lo = PlanWeightPinning(app.graph, 16, DType::kBf16,
                                     DType::kBf16, budget)
                       .value();
    auto plan_hi = PlanWeightPinning(app.graph, 16, DType::kBf16,
                                     DType::kBf16, budget + 8 * kMiB)
                       .value();
    EXPECT_GE(plan_hi.pinned_bytes, plan_lo.pinned_bytes);
    EXPECT_LE(plan_lo.pinned_bytes, budget);
}

INSTANTIATE_TEST_SUITE_P(Budgets, BudgetSweep,
                         ::testing::Values(0, 8 * kMiB, 32 * kMiB,
                                           64 * kMiB, 128 * kMiB,
                                           256 * kMiB));

}  // namespace
}  // namespace t4i
