/**
 * @file
 * LLM autoregressive serving tests (src/llm): KV-cache residency
 * bookkeeping, token conservation per request, join/leave determinism,
 * TTFT/TPOT quantile math against hand-computed fixtures, preempt-and-
 * recompute accounting, span tiling, scenario grammar, and the
 * bit-identity of non-LLM compilation when the kv_cmem_fraction knob
 * stays at zero.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/arch/catalog.h"
#include "src/compiler/compiler.h"
#include "src/llm/kv_cache.h"
#include "src/llm/llm_scenario.h"
#include "src/llm/model.h"
#include "src/llm/serve_llm.h"
#include "src/load/scenario.h"
#include "src/models/zoo.h"
#include "src/obs/registry.h"
#include "src/obs/spans.h"

namespace t4i {
namespace llm {
namespace {

/** Deterministic arrival stream: the hand-built fixture source. */
class FixedSource : public load::ArrivalSource {
  public:
    explicit FixedSource(std::vector<load::LoadArrival> arrivals)
        : arrivals_(std::move(arrivals))
    {
        for (size_t i = 0; i < arrivals_.size(); ++i) {
            arrivals_[i].id = i + 1;
        }
    }

    bool
    Peek(load::LoadArrival* out) override
    {
        if (next_ >= arrivals_.size()) return false;
        *out = arrivals_[next_];
        return true;
    }

    load::LoadArrival
    Take() override
    {
        return arrivals_[next_++];
    }

    void
    OnRequestEnd(uint64_t id, double end_s, bool success) override
    {
        (void)id;
        (void)end_s;
        if (success) {
            ++successes_;
        } else {
            ++failures_;
        }
    }

    bool Exhausted() const override { return next_ >= arrivals_.size(); }

    int64_t successes() const { return successes_; }
    int64_t failures() const { return failures_; }

  private:
    std::vector<load::LoadArrival> arrivals_;
    size_t next_ = 0;
    int64_t successes_ = 0;
    int64_t failures_ = 0;
};

std::vector<load::LoadArrival>
ArrivalsAt(const std::vector<double>& times)
{
    std::vector<load::LoadArrival> out;
    for (double t : times) {
        load::LoadArrival a;
        a.t_s = t;
        a.tenant = 0;
        out.push_back(a);
    }
    return out;
}

LlmTenant
Tenant(double prompt_mean, double output_mean)
{
    LlmTenant t;
    t.name = "LLM0";
    t.rate = 20.0;
    t.prompt = {prompt_mean, 0.0, 4096};
    t.output = {output_mean, 0.0, 1024};
    return t;
}

LlmCellConfig
BaseConfig(LlmCostModel* cost)
{
    LlmCellConfig cfg;
    cfg.model = LlmModelByName("TINYLM").value();
    cfg.chip = Tpu_v4i();
    cfg.duration_s = 1.0;
    cfg.cost_model = cost;
    cfg.tenants.push_back(Tenant(64, 8));
    return cfg;
}

// ---------------------------------------------------------------------
// KV-cache manager bookkeeping
// ---------------------------------------------------------------------

TEST(KvCache, TwoTierBookkeeping)
{
    KvCacheConfig kc;
    kc.bytes_per_token = 8192;
    kc.cmem_budget_bytes = 128 * 8192;  // 128 tokens
    kc.hbm_budget_bytes = 256 * 8192;   // 256 tokens
    KvCacheManager kv(kc);
    EXPECT_EQ(kv.capacity_tokens(), 384);
    EXPECT_EQ(kv.cmem_capacity_tokens(), 128);
    EXPECT_DOUBLE_EQ(kv.CmemFraction(), 1.0);  // empty spills nothing

    ASSERT_TRUE(kv.Reserve(1, 100));
    EXPECT_EQ(kv.total_tokens(), 100);
    EXPECT_EQ(kv.cmem_tokens(), 100);
    EXPECT_EQ(kv.hbm_tokens(), 0);
    EXPECT_DOUBLE_EQ(kv.CmemFraction(), 1.0);

    ASSERT_TRUE(kv.Reserve(2, 200));
    EXPECT_EQ(kv.total_tokens(), 300);
    EXPECT_EQ(kv.cmem_tokens(), 128);
    EXPECT_EQ(kv.hbm_tokens(), 172);
    EXPECT_DOUBLE_EQ(kv.CmemFraction(), 128.0 / 300.0);

    EXPECT_TRUE(kv.CanReserve(84));
    EXPECT_FALSE(kv.CanReserve(85));
    EXPECT_FALSE(kv.Reserve(3, 85));
    EXPECT_EQ(kv.failed_allocs(), 1);
    EXPECT_EQ(kv.total_tokens(), 300);  // failed reserve changes nothing

    ASSERT_TRUE(kv.Reserve(3, 84));
    EXPECT_EQ(kv.total_tokens(), 384);
    EXPECT_FALSE(kv.Grow(1));  // at capacity
    EXPECT_EQ(kv.failed_allocs(), 2);
    EXPECT_EQ(kv.SeqTokens(1), 100);

    EXPECT_EQ(kv.Release(2), 200);
    EXPECT_EQ(kv.total_tokens(), 184);
    EXPECT_TRUE(kv.Grow(1));
    EXPECT_EQ(kv.SeqTokens(1), 101);
    EXPECT_EQ(kv.peak_tokens(), 384);

    kv.Release(1);
    kv.Release(3);
    EXPECT_EQ(kv.total_tokens(), 0);
    EXPECT_EQ(kv.resident_seqs(), 0);
    EXPECT_DOUBLE_EQ(kv.CmemFraction(), 1.0);
    EXPECT_EQ(kv.peak_tokens(), 384);  // high-water mark survives
}

TEST(KvCache, PlanningBudgetAndResidency)
{
    LlmModelConfig model = LlmModelByName("TINYLM").value();
    ChipConfig chip = Tpu_v4i();
    int64_t budget = KvCmemBudgetBytes(model, chip);
    EXPECT_GT(budget, 0);
    EXPECT_LT(budget, chip.cmem_bytes);

    // Small working sets fit entirely in CMEM; residency degrades
    // monotonically as batch grows past the budget.
    EXPECT_DOUBLE_EQ(PlanKvResidency(model, chip, 1, 16), 1.0);
    double prev = 1.0;
    bool spilled = false;
    for (int64_t batch = 1; batch <= 4096; batch *= 4) {
        double frac = PlanKvResidency(model, chip, batch, 2048);
        EXPECT_LE(frac, prev + 1e-12);
        prev = frac;
        if (frac < 1.0) spilled = true;
    }
    EXPECT_TRUE(spilled) << "batch sweep never exceeded the CMEM tier";
}

// ---------------------------------------------------------------------
// TTFT / TPOT quantile math vs hand-computed fixtures
// ---------------------------------------------------------------------

TEST(LlmCell, TtftTpotHandComputedFixture)
{
    // Non-overlapping arrivals, fixed lengths, fixed costs: every
    // quantile is exact. prompt=10 tokens at 1 ms/token -> TTFT 10 ms;
    // output=4 tokens -> 3 inter-token gaps of 0.1 ms each.
    FixedLlmCostModel cost(1e-3, 1e-4);
    FixedSource source(ArrivalsAt({0.0, 1.0, 2.0}));
    LlmCellConfig cfg = BaseConfig(&cost);
    cfg.tenants[0] = Tenant(10, 4);
    cfg.arrival_source = &source;

    auto result = RunLlmCell(cfg);
    ASSERT_TRUE(result.ok()) << result.status().message();
    const LlmResult& r = result.value();
    EXPECT_EQ(r.arrived, 3);
    EXPECT_EQ(r.completed, 3);
    EXPECT_EQ(r.dropped, 0);
    EXPECT_EQ(r.shed, 0);
    EXPECT_EQ(r.tokens_in, 30);
    EXPECT_EQ(r.tokens_out, 12);
    EXPECT_TRUE(r.conservation_ok) << r.conservation_error;

    // Quantiles of a constant sample set are that constant (up to the
    // float error of subtracting accumulated sim-clock times).
    EXPECT_NEAR(r.ttft_p95_s, 1e-2, 1e-9);
    EXPECT_NEAR(r.tpot_p99_s, 1e-4, 1e-9);
    ASSERT_EQ(r.tenants.size(), 1u);
    EXPECT_NEAR(r.tenants[0].ttft_p50_s, 1e-2, 1e-9);
    EXPECT_NEAR(r.tenants[0].ttft_p99_s, 1e-2, 1e-9);
    EXPECT_NEAR(r.tenants[0].tpot_p50_s, 1e-4, 1e-9);
    // TTFT 10 ms < 50 ms SLO, TPOT 0.1 ms < 5 ms SLO: no misses.
    EXPECT_EQ(r.tenants[0].ttft_slo_miss, 0);
    EXPECT_EQ(r.tenants[0].tpot_slo_miss, 0);
    EXPECT_EQ(source.successes(), 3);
    EXPECT_EQ(source.failures(), 0);
}

TEST(LlmCell, SloMissClassification)
{
    // 100 ms/token prefill makes TTFT 1 s >> the 50 ms SLO; a decode
    // step of 20 ms blows the 5 ms TPOT SLO.
    FixedLlmCostModel cost(1e-1, 2e-2);
    FixedSource source(ArrivalsAt({0.0}));
    LlmCellConfig cfg = BaseConfig(&cost);
    cfg.tenants[0] = Tenant(10, 4);
    cfg.arrival_source = &source;

    auto result = RunLlmCell(cfg);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result.value().tenants[0].ttft_slo_miss, 1);
    EXPECT_EQ(result.value().tenants[0].tpot_slo_miss, 1);
    EXPECT_TRUE(result.value().conservation_ok);
}

// ---------------------------------------------------------------------
// Conservation: shed at the door, deadline drops, token tiling
// ---------------------------------------------------------------------

TEST(LlmCell, ConservationWithShedAndQueueCap)
{
    // A queue cap of 2 with 12 simultaneous arrivals sheds most of
    // them; the books must still close per tenant and in total.
    FixedLlmCostModel cost(1e-3, 1e-4);
    FixedSource source(ArrivalsAt(std::vector<double>(12, 0.0)));
    LlmCellConfig cfg = BaseConfig(&cost);
    cfg.tenants[0] = Tenant(32, 4);
    cfg.arrival_source = &source;
    cfg.max_batch = 1;
    cfg.max_queue = 2;

    auto result = RunLlmCell(cfg);
    ASSERT_TRUE(result.ok());
    const LlmResult& r = result.value();
    EXPECT_EQ(r.arrived, 12);
    EXPECT_GT(r.shed, 0);
    EXPECT_EQ(r.arrived, r.completed + r.dropped + r.shed);
    EXPECT_TRUE(r.conservation_ok) << r.conservation_error;
    // Completed requests tile tokens_out exactly: 4 tokens each.
    EXPECT_EQ(r.tokens_out, r.completed * 4);
    EXPECT_EQ(source.failures(), r.shed + r.dropped);
}

TEST(LlmCell, DeadlineDropsPendingRequests)
{
    // Slow prefill (0.64 s per 64-token prompt) with a 10 ms queue
    // deadline: everything behind the head of line expires.
    FixedLlmCostModel cost(1e-2, 1e-3);
    FixedSource source(ArrivalsAt({0.0, 0.001, 0.002, 0.003}));
    LlmCellConfig cfg = BaseConfig(&cost);
    cfg.tenants[0] = Tenant(64, 4);
    cfg.tenants[0].deadline_s = 0.010;
    cfg.arrival_source = &source;
    cfg.max_batch = 1;

    auto result = RunLlmCell(cfg);
    ASSERT_TRUE(result.ok());
    const LlmResult& r = result.value();
    EXPECT_EQ(r.arrived, 4);
    EXPECT_GT(r.dropped, 0);
    EXPECT_EQ(r.arrived, r.completed + r.dropped + r.shed);
    EXPECT_TRUE(r.conservation_ok) << r.conservation_error;
}

// ---------------------------------------------------------------------
// KV admission, preempt-and-recompute, terminal overflow
// ---------------------------------------------------------------------

TEST(LlmCell, PreemptAndRecomputeConserves)
{
    // Budgets hold 256 tokens; six 64-token prompts each growing 64
    // output tokens cannot all stay resident, so decode growth must
    // preempt-and-recompute. Everything still completes and the token
    // books close.
    FixedLlmCostModel cost(1e-4, 1e-5);
    FixedSource source(ArrivalsAt(std::vector<double>(6, 0.0)));
    LlmCellConfig cfg = BaseConfig(&cost);
    cfg.tenants[0] = Tenant(64, 64);
    cfg.arrival_source = &source;
    cfg.max_batch = 4;
    cfg.kv_cmem_budget_bytes = 128 * 8192;
    cfg.kv_hbm_budget_bytes = 128 * 8192;

    auto result = RunLlmCell(cfg);
    ASSERT_TRUE(result.ok());
    const LlmResult& r = result.value();
    EXPECT_EQ(r.arrived, 6);
    EXPECT_EQ(r.completed, 6);
    EXPECT_GT(r.preemptions, 0);
    EXPECT_GT(r.recompute_tokens, 0);
    EXPECT_LE(r.kv_peak_tokens, 256);
    EXPECT_LT(r.kv_cmem_fraction_min, 1.0);
    EXPECT_TRUE(r.conservation_ok) << r.conservation_error;
    // Recomputed tokens never double-count as output.
    EXPECT_EQ(r.tokens_out, 6 * 64);
}

TEST(LlmCell, KvOverflowIsTerminalDrop)
{
    // Capacity (38 tokens) cannot hold even one 64-token prompt + 1:
    // admission must drop terminally rather than wait forever.
    FixedLlmCostModel cost(1e-4, 1e-5);
    FixedSource source(ArrivalsAt({0.0, 0.1}));
    LlmCellConfig cfg = BaseConfig(&cost);
    cfg.tenants[0] = Tenant(64, 4);
    cfg.arrival_source = &source;
    cfg.kv_cmem_budget_bytes = 19 * 8192;
    cfg.kv_hbm_budget_bytes = 19 * 8192;

    auto result = RunLlmCell(cfg);
    ASSERT_TRUE(result.ok());
    const LlmResult& r = result.value();
    EXPECT_EQ(r.arrived, 2);
    EXPECT_EQ(r.completed, 0);
    EXPECT_EQ(r.dropped, 2);
    EXPECT_EQ(r.tokens_out, 0);
    EXPECT_TRUE(r.conservation_ok) << r.conservation_error;
}

// ---------------------------------------------------------------------
// Join/leave determinism
// ---------------------------------------------------------------------

TEST(LlmCell, SameSeedBitIdenticalResult)
{
    FixedLlmCostModel cost(1e-4, 1e-5);
    LlmCellConfig cfg = BaseConfig(&cost);
    cfg.tenants[0] = Tenant(64, 16);
    cfg.tenants[0].rate = 200.0;
    cfg.tenants[0].prompt.sigma = 0.5;
    cfg.tenants[0].output.sigma = 0.5;
    cfg.duration_s = 0.5;
    cfg.max_batch = 4;
    cfg.seed = 1234;

    auto a = RunLlmCell(cfg);
    auto b = RunLlmCell(cfg);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_GT(a.value().arrived, 10);
    EXPECT_EQ(a.value().arrived, b.value().arrived);
    EXPECT_EQ(a.value().completed, b.value().completed);
    EXPECT_EQ(a.value().tokens_in, b.value().tokens_in);
    EXPECT_EQ(a.value().tokens_out, b.value().tokens_out);
    EXPECT_EQ(a.value().iterations, b.value().iterations);
    EXPECT_EQ(a.value().preemptions, b.value().preemptions);
    EXPECT_EQ(a.value().ttft_p95_s, b.value().ttft_p95_s);
    EXPECT_EQ(a.value().tpot_p99_s, b.value().tpot_p99_s);
    EXPECT_EQ(a.value().duration_s, b.value().duration_s);
    EXPECT_TRUE(a.value().conservation_ok);
}

TEST(LlmCell, RequestLengthsIndependentOfScheduling)
{
    // Per-request substreams mean tokens_in depends only on the
    // arrival set, not on how the scheduler interleaves work: the
    // same seed under a different batching mode draws the same
    // lengths.
    FixedLlmCostModel cost(1e-4, 1e-5);
    LlmCellConfig cfg = BaseConfig(&cost);
    cfg.tenants[0] = Tenant(64, 16);
    cfg.tenants[0].rate = 100.0;
    cfg.tenants[0].prompt.sigma = 0.5;
    cfg.duration_s = 0.5;
    cfg.seed = 7;

    cfg.mode = LlmMode::kContinuous;
    auto cont = RunLlmCell(cfg);
    cfg.mode = LlmMode::kStatic;
    auto stat = RunLlmCell(cfg);
    ASSERT_TRUE(cont.ok());
    ASSERT_TRUE(stat.ok());
    EXPECT_EQ(cont.value().arrived, stat.value().arrived);
    EXPECT_EQ(cont.value().tokens_in, stat.value().tokens_in);
    EXPECT_EQ(cont.value().tokens_out, stat.value().tokens_out);
}

// ---------------------------------------------------------------------
// Batching modes
// ---------------------------------------------------------------------

TEST(LlmCell, ContinuousBatchingDrainsNoLaterThanStatic)
{
    // Varied output lengths are where static batching wastes slots:
    // the batch holds until its longest member finishes. Continuous
    // batching refills at token boundaries, so the same work drains
    // no later and goodput is at least as high.
    FixedLlmCostModel cost(1e-4, 1e-4);
    LlmCellConfig cfg = BaseConfig(&cost);
    cfg.tenants[0] = Tenant(32, 32);
    cfg.tenants[0].rate = 400.0;
    cfg.tenants[0].output.sigma = 1.0;
    cfg.duration_s = 0.25;
    cfg.max_batch = 4;
    cfg.seed = 99;

    cfg.mode = LlmMode::kStatic;
    auto stat = RunLlmCell(cfg);
    cfg.mode = LlmMode::kContinuous;
    auto cont = RunLlmCell(cfg);
    ASSERT_TRUE(stat.ok());
    ASSERT_TRUE(cont.ok());
    EXPECT_EQ(cont.value().completed, stat.value().completed);
    EXPECT_LE(cont.value().duration_s, stat.value().duration_s + 1e-12);
    EXPECT_GE(cont.value().goodput_tokens_per_s,
              stat.value().goodput_tokens_per_s - 1e-9);
    EXPECT_TRUE(cont.value().conservation_ok);
    EXPECT_TRUE(stat.value().conservation_ok);
}

TEST(LlmCell, DisaggregatedPrefillKeepsDecodeIterationsClean)
{
    FixedLlmCostModel cost(1e-3, 1e-4);
    FixedSource source(ArrivalsAt({0.0, 0.001, 0.002, 0.003}));
    LlmCellConfig cfg = BaseConfig(&cost);
    cfg.tenants[0] = Tenant(128, 16);
    cfg.arrival_source = &source;
    cfg.mode = LlmMode::kDisaggregated;

    auto result = RunLlmCell(cfg);
    ASSERT_TRUE(result.ok());
    const LlmResult& r = result.value();
    EXPECT_EQ(r.completed, 4);
    EXPECT_TRUE(r.conservation_ok) << r.conservation_error;
    // The dedicated prefill pipeline serializes the four 128-token
    // prefills (0.128 s each): the tail TTFT reflects that queue
    // (p95 interpolates below the 0.512 s max sample).
    EXPECT_GE(r.ttft_p95_s, 3 * 0.128);

    // And prefill off the decode pipeline can never be worse for TTFT
    // than sharing iterations with decode.
    FixedSource source2(ArrivalsAt({0.0, 0.001, 0.002, 0.003}));
    cfg.arrival_source = &source2;
    cfg.mode = LlmMode::kContinuous;
    auto shared = RunLlmCell(cfg);
    ASSERT_TRUE(shared.ok());
    EXPECT_LE(r.ttft_p95_s, shared.value().ttft_p95_s + 1e-12);
}

TEST(LlmMode, ParseRoundTrip)
{
    EXPECT_EQ(ParseLlmMode("continuous").value(), LlmMode::kContinuous);
    EXPECT_EQ(ParseLlmMode("static").value(), LlmMode::kStatic);
    EXPECT_EQ(ParseLlmMode("disagg").value(), LlmMode::kDisaggregated);
    EXPECT_EQ(ParseLlmMode("disaggregated").value(),
              LlmMode::kDisaggregated);
    EXPECT_FALSE(ParseLlmMode("pipelined").ok());
    EXPECT_STREQ(LlmModeName(LlmMode::kContinuous), "continuous");
    EXPECT_STREQ(LlmModeName(LlmMode::kStatic), "static");
}

// ---------------------------------------------------------------------
// Shared-prefix correlation
// ---------------------------------------------------------------------

TEST(LlmCell, SharedPrefixSkipsPrefillCompute)
{
    FixedLlmCostModel cost(1e-3, 1e-4);
    auto run = [&](double frac, int64_t len) {
        FixedSource source(ArrivalsAt({0.0, 1.0}));
        LlmCellConfig cfg = BaseConfig(&cost);
        cfg.tenants[0] = Tenant(64, 4);
        cfg.tenants[0].shared_prefix_frac = frac;
        cfg.tenants[0].shared_prefix_len = len;
        cfg.arrival_source = &source;
        auto r = RunLlmCell(cfg);
        EXPECT_TRUE(r.ok());
        return r.value();
    };

    LlmResult cold = run(0.0, 0);
    LlmResult warm = run(1.0, 32);
    EXPECT_EQ(cold.tenants[0].prefix_hits, 0);
    EXPECT_EQ(warm.tenants[0].prefix_hits, 2);
    // Hit requests prefill 32 tokens instead of 64: TTFT halves.
    EXPECT_DOUBLE_EQ(cold.ttft_p95_s, 64 * 1e-3);
    EXPECT_DOUBLE_EQ(warm.ttft_p95_s, 32 * 1e-3);
    // tokens_in still counts the full prompt (it arrived either way).
    EXPECT_EQ(warm.tokens_in, cold.tokens_in);
    EXPECT_TRUE(warm.conservation_ok);
}

// ---------------------------------------------------------------------
// Span tiling: phase children cover the root bit for bit
// ---------------------------------------------------------------------

TEST(LlmCell, PhaseSpansTileRootBitForBit)
{
    // The preemption config exercises every phase: queue, kv_wait,
    // batch, prefill, decode, and the requeue back to queue.
    FixedLlmCostModel cost(1e-4, 1e-5);
    FixedSource source(ArrivalsAt(std::vector<double>(6, 0.0)));
    obs::SpanCollector spans;
    LlmCellConfig cfg = BaseConfig(&cost);
    cfg.tenants[0] = Tenant(64, 64);
    cfg.arrival_source = &source;
    cfg.max_batch = 4;
    cfg.kv_cmem_budget_bytes = 128 * 8192;
    cfg.kv_hbm_budget_bytes = 128 * 8192;
    cfg.spans = &spans;

    auto result = RunLlmCell(cfg);
    ASSERT_TRUE(result.ok());
    ASSERT_GT(result.value().preemptions, 0);
    ASSERT_TRUE(spans.CheckIntegrity().ok());

    int roots = 0;
    for (const obs::Span& root : spans.spans()) {
        if (root.parent_id != 0) continue;
        ++roots;
        EXPECT_EQ(root.name, "llm");
        std::vector<const obs::Span*> kids =
            spans.ChildrenOf(root.span_id);
        ASSERT_FALSE(kids.empty());
        std::sort(kids.begin(), kids.end(),
                  [](const obs::Span* a, const obs::Span* b) {
                      return a->start_s < b->start_s;
                  });
        EXPECT_EQ(kids.front()->start_s, root.start_s);
        EXPECT_EQ(kids.back()->end_s, root.end_s);
        for (size_t i = 1; i < kids.size(); ++i) {
            EXPECT_EQ(kids[i]->start_s, kids[i - 1]->end_s)
                << "gap between phase spans of trace "
                << root.trace_id;
        }
        for (const obs::Span* kid : kids) {
            EXPECT_TRUE(kid->name == "queue" || kid->name == "kv_wait" ||
                        kid->name == "batch" || kid->name == "prefill" ||
                        kid->name == "decode")
                << kid->name;
        }
    }
    EXPECT_EQ(roots, 6);
}

// ---------------------------------------------------------------------
// Scenario grammar + LLM scenario runner
// ---------------------------------------------------------------------

TEST(LlmScenario, ParsesLlmDirectives)
{
    auto scenario = load::ParseScenario(
        "scenario llm-parse\n"
        "duration 0.5\n"
        "seed 7\n"
        "cells 1\n"
        "tenant chat rate=40 deadline=0.5\n"
        "arrivals poisson\n"
        "llm model=TINYLM mode=disagg max-batch=16 max-queue=64 "
        "kv-cmem-mb=2 kv-hbm-mb=8 ttft-slo=0.1 tpot-slo=0.01\n"
        "prompt tenant=chat mean=128 sigma=0.5 max=2048\n"
        "output tenant=chat mean=16 max=256\n"
        "shared-prefix tenant=chat frac=0.5 len=32\n"
        "context-flood at=0.2 dur=0.1 mult=8 tenant=chat\n");
    ASSERT_TRUE(scenario.ok()) << scenario.status().message();
    const load::LlmProgram& llm = scenario.value().llm;
    EXPECT_TRUE(llm.enabled);
    EXPECT_EQ(llm.model, "TINYLM");
    EXPECT_EQ(llm.mode, "disagg");
    EXPECT_EQ(llm.max_batch, 16);
    EXPECT_EQ(llm.max_queue, 64);
    EXPECT_DOUBLE_EQ(llm.kv_cmem_mb, 2.0);
    EXPECT_DOUBLE_EQ(llm.kv_hbm_mb, 8.0);
    EXPECT_DOUBLE_EQ(llm.ttft_slo_s, 0.1);
    EXPECT_DOUBLE_EQ(llm.tpot_slo_s, 0.01);
    ASSERT_EQ(llm.tenants.size(), 1u);
    EXPECT_DOUBLE_EQ(llm.tenants[0].prompt_mean, 128);
    EXPECT_DOUBLE_EQ(llm.tenants[0].prompt_sigma, 0.5);
    EXPECT_DOUBLE_EQ(llm.tenants[0].output_mean, 16);
    EXPECT_DOUBLE_EQ(llm.tenants[0].shared_prefix_frac, 0.5);
    EXPECT_DOUBLE_EQ(llm.tenants[0].shared_prefix_len, 32);
    ASSERT_EQ(llm.floods.size(), 1u);
    EXPECT_DOUBLE_EQ(llm.floods[0].mult, 8.0);
    EXPECT_EQ(llm.floods[0].tenant, 0);
}

TEST(LlmScenario, RejectsBadLlmPrograms)
{
    // prompt without the llm directive
    EXPECT_FALSE(load::ParseScenario("scenario x\nduration 1\ncells 1\n"
                                     "tenant a rate=10\n"
                                     "prompt tenant=a mean=64\n")
                     .ok());
    // unknown mode
    EXPECT_FALSE(
        load::ParseScenario("scenario x\nduration 1\ncells 1\n"
                            "tenant a rate=10\n"
                            "llm model=TINYLM mode=warp\n")
            .ok());
    // llm needs absolute tenant rates (load= cannot resolve)
    EXPECT_FALSE(load::ParseScenario("scenario x\nduration 1\ncells 1\n"
                                     "tenant a load=0.5\n"
                                     "llm model=TINYLM\n")
                     .ok());
    // llm is a single-cell program
    EXPECT_FALSE(load::ParseScenario("scenario x\nduration 1\ncells 3\n"
                                     "tenant a rate=10\n"
                                     "llm model=TINYLM\n")
                     .ok());
    // prompt for an undeclared tenant
    EXPECT_FALSE(load::ParseScenario("scenario x\nduration 1\ncells 1\n"
                                     "tenant a rate=10\n"
                                     "llm model=TINYLM\n"
                                     "prompt tenant=b mean=64\n")
                     .ok());
}

TEST(LlmScenario, RunsAndGradesQuietScenario)
{
    auto scenario = load::ParseScenario(
        "scenario llm-quiet\n"
        "duration 0.25\n"
        "seed 11\n"
        "cells 1\n"
        "window 0.05\n"
        "tenant chat rate=40 deadline=1.0\n"
        "arrivals poisson\n"
        "llm model=TINYLM mode=continuous max-batch=8 "
        "ttft-slo=0.5 tpot-slo=0.05\n"
        "prompt tenant=chat mean=32\n"
        "output tenant=chat mean=4\n");
    ASSERT_TRUE(scenario.ok()) << scenario.status().message();

    obs::MetricsRegistry registry;
    ScenarioRunOptions options;
    options.registry = &registry;
    auto out = RunLlmScenario(scenario.value(), options);
    ASSERT_TRUE(out.ok()) << out.status().message();
    const LlmScenarioOutcome& o = out.value();
    EXPECT_GT(o.llm.arrived, 0);
    EXPECT_EQ(o.llm.arrived, o.llm.completed);
    EXPECT_TRUE(o.llm.conservation_ok) << o.llm.conservation_error;
    EXPECT_TRUE(o.outcome.alerts_pass);
    EXPECT_TRUE(o.outcome.conservation_ok);
    EXPECT_EQ(o.outcome.cluster.arrived, o.llm.arrived);
    EXPECT_EQ(o.outcome.cluster.completed, o.llm.completed);
    // Same scenario, same seed: the runner is deterministic.
    obs::MetricsRegistry registry2;
    ScenarioRunOptions options2;
    options2.registry = &registry2;
    auto out2 = RunLlmScenario(scenario.value(), options2);
    ASSERT_TRUE(out2.ok());
    EXPECT_EQ(out2.value().llm.tokens_out, o.llm.tokens_out);
    EXPECT_EQ(out2.value().llm.ttft_p95_s, o.llm.ttft_p95_s);
}

// ---------------------------------------------------------------------
// Compiled cost model + compiler-knob bit-identity
// ---------------------------------------------------------------------

TEST(CompiledCost, HbmSpillSlowsDecodeAndMemoizes)
{
    LlmModelConfig model = LlmModelByName("TINYLM").value();
    ChipConfig chip = Tpu_v4i();
    CompiledLlmCostModel cost(model, chip);

    double cmem = cost.DecodeStepSeconds(8, 2048, 1.0);
    double hbm = cost.DecodeStepSeconds(8, 2048, 0.0);
    EXPECT_GT(cmem, 0.0);
    EXPECT_GT(hbm, cmem)
        << "KV stream spilled to HBM must cost more than CMEM";

    // Prefill scales with prompt length.
    EXPECT_GT(cost.PrefillSeconds(1024), cost.PrefillSeconds(16));

    // Bucketed memoization: repeating a point adds no simulations.
    int64_t sims = cost.simulations();
    cost.DecodeStepSeconds(8, 2048, 0.0);
    cost.PrefillSeconds(1024);
    EXPECT_EQ(cost.simulations(), sims);
}

TEST(CompilerKnob, ZeroKvFractionIsBitIdentical)
{
    // The knob at its default (0) must emit exactly the stream the
    // compiler produced before the LLM work existed — non-LLM runs
    // are bit-identical.
    ChipConfig chip = Tpu_v4i();
    Graph step = BuildDecodeStep("step", 2, 256, 4, 1024, 512, 1000);

    CompileOptions defaults;
    CompileOptions zero;
    zero.kv_cmem_fraction = 0.0;
    auto a = Compile(step, chip, defaults);
    auto b = Compile(step, chip, zero);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ASSERT_EQ(a.value().instrs.size(), b.value().instrs.size());
    int64_t kv_hbm_bytes = 0;
    for (size_t i = 0; i < a.value().instrs.size(); ++i) {
        const Instr& x = a.value().instrs[i];
        const Instr& y = b.value().instrs[i];
        EXPECT_EQ(x.label, y.label);
        EXPECT_EQ(x.engine, y.engine);
        EXPECT_EQ(x.bytes, y.bytes);
        EXPECT_TRUE(x.label.find(".kvc") == std::string::npos)
            << "fraction 0 must not emit CMEM KV instructions";
        if (x.engine == Engine::kHbm &&
            x.label.find(".kv") != std::string::npos) {
            kv_hbm_bytes += x.bytes;
        }
    }
    ASSERT_GT(kv_hbm_bytes, 0);

    // A non-zero fraction splits the same KV bytes across the two
    // ports: CMEM instructions appear and HBM KV bytes shrink.
    CompileOptions half;
    half.kv_cmem_fraction = 0.5;
    auto c = Compile(step, chip, half);
    ASSERT_TRUE(c.ok());
    int64_t cmem_kv = 0, hbm_kv = 0;
    for (const Instr& x : c.value().instrs) {
        if (x.label.find(".kvc") != std::string::npos) {
            EXPECT_EQ(x.engine, Engine::kCmem);
            cmem_kv += x.bytes;
        } else if (x.engine == Engine::kHbm &&
                   x.label.find(".kv") != std::string::npos) {
            hbm_kv += x.bytes;
        }
    }
    EXPECT_GT(cmem_kv, 0);
    EXPECT_LT(hbm_kv, kv_hbm_bytes);
}

// ---------------------------------------------------------------------
// Context floods
// ---------------------------------------------------------------------

TEST(LlmCell, ContextFloodMultipliesPromptLengths)
{
    FixedLlmCostModel cost(1e-4, 1e-5);
    auto run = [&](double mult) {
        LlmCellConfig cfg = BaseConfig(&cost);
        cfg.tenants[0] = Tenant(64, 4);
        cfg.tenants[0].rate = 100.0;
        cfg.duration_s = 0.5;
        cfg.seed = 3;
        if (mult > 1.0) {
            ContextFlood flood;
            flood.at_s = 0.0;
            flood.dur_s = 0.5;
            flood.mult = mult;
            cfg.floods.push_back(flood);
        }
        auto r = RunLlmCell(cfg);
        EXPECT_TRUE(r.ok());
        return r.value();
    };
    LlmResult base = run(1.0);
    LlmResult flooded = run(4.0);
    ASSERT_EQ(base.arrived, flooded.arrived);
    EXPECT_EQ(flooded.tokens_in, base.tokens_in * 4);
    EXPECT_TRUE(flooded.conservation_ok);
}

}  // namespace
}  // namespace llm
}  // namespace t4i
