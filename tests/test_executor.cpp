/**
 * @file
 * Tests for the functional graph executor: semantics per layer kind,
 * determinism, and the end-to-end precision-loss measurement.
 */
#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/models/zoo.h"
#include "src/tensor/executor.h"

namespace t4i {
namespace {

Graph
TinyMlp()
{
    Graph g("tiny");
    int in = g.AddInput("x", {16});
    LayerParams d1;
    d1.in_features = 16;
    d1.out_features = 8;
    d1.activation = Activation::kRelu;
    int a = g.AddLayer(LayerKind::kDense, "fc0", {in}, d1);
    LayerParams d2;
    d2.in_features = 8;
    d2.out_features = 4;
    g.AddLayer(LayerKind::kDense, "fc1", {a}, d2);
    T4I_CHECK(g.Finalize().ok(), "finalize");
    return g;
}

Tensor
RandomInput(uint64_t seed, std::vector<int64_t> dims)
{
    Rng rng(seed);
    Tensor x{Shape(std::move(dims))};
    x.FillGaussian(rng, 1.0f);
    return x;
}

TEST(Executor, ValidatesInputs)
{
    Graph g = TinyMlp();
    ExecOptions opts;
    opts.batch = 2;
    // Missing input.
    EXPECT_FALSE(Execute(g, {}, opts).ok());
    // Wrong element count.
    EXPECT_FALSE(
        Execute(g, {RandomInput(1, {2, 15})}, opts).ok());
    // Extra input.
    EXPECT_FALSE(Execute(g,
                         {RandomInput(1, {2, 16}),
                          RandomInput(2, {2, 16})},
                         opts).ok());
    // Correct.
    EXPECT_TRUE(
        Execute(g, {RandomInput(1, {2, 16})}, opts).ok());
}

TEST(Executor, DeterministicAndSeedSensitive)
{
    Graph g = TinyMlp();
    ExecOptions opts;
    opts.batch = 2;
    Tensor x = RandomInput(7, {2, 16});
    auto a = Execute(g, {x}, opts).value();
    auto b = Execute(g, {x}, opts).value();
    for (int64_t i = 0; i < a.final_output().NumElements(); ++i) {
        EXPECT_EQ(a.final_output()[i], b.final_output()[i]);
    }
    ExecOptions other = opts;
    other.weight_seed = 99;
    auto c = Execute(g, {x}, other).value();
    bool differs = false;
    for (int64_t i = 0; i < a.final_output().NumElements(); ++i) {
        if (a.final_output()[i] != c.final_output()[i]) differs = true;
    }
    EXPECT_TRUE(differs);
}

TEST(Executor, ReluClampsInTheGraph)
{
    Graph g("relu");
    int in = g.AddInput("x", {4});
    LayerParams ew;
    ew.activation = Activation::kRelu;
    g.AddLayer(LayerKind::kElementwise, "relu", {in}, ew);
    ASSERT_TRUE(g.Finalize().ok());
    ExecOptions opts;
    opts.batch = 1;
    Tensor x(Shape({1, 4}), {-1.0f, 2.0f, -3.0f, 4.0f});
    auto r = Execute(g, {x}, opts).value();
    EXPECT_EQ(r.final_output()[0], 0.0f);
    EXPECT_EQ(r.final_output()[1], 2.0f);
    EXPECT_EQ(r.final_output()[2], 0.0f);
    EXPECT_EQ(r.final_output()[3], 4.0f);
}

TEST(Executor, ResidualAddsBothOperands)
{
    Graph g("res");
    int in = g.AddInput("x", {4});
    LayerParams add;
    add.arity = 2;
    g.AddLayer(LayerKind::kElementwise, "add", {in, in}, add);
    ASSERT_TRUE(g.Finalize().ok());
    ExecOptions opts;
    opts.batch = 1;
    Tensor x(Shape({1, 4}), {1.0f, 2.0f, 3.0f, 4.0f});
    auto r = Execute(g, {x}, opts).value();
    for (int64_t i = 0; i < 4; ++i) {
        EXPECT_EQ(r.final_output()[i], 2.0f * x[i]);
    }
}

TEST(Executor, EveryProductionAppExecutesAtSmallScale)
{
    // Semantic smoke over all IR kinds the zoo uses, with model-scale
    // graphs replaced by tiny stand-ins where needed for runtime.
    struct Case {
        Graph graph;
        std::vector<std::vector<int64_t>> in_dims;  // per input, no batch
    };
    std::vector<Case> cases;
    cases.push_back({BuildMlp("m", 1000, 16, 4, 64, {32, 1}),
                     {{4}}});
    cases.push_back({BuildSmallCnn("c"), {{224, 224, 3}}});
    cases.push_back(
        {BuildLstmStack("l", 1000, 64, 2, 64, 6), {{6}}});
    cases.push_back({BuildBert("b", 2, 64, 2, 128, 8, 500), {{8}}});
    cases.push_back({BuildDlrm("d", 2, 500, 16, 4, 13),
                     {{4}, {4}, {13}}});
    cases.push_back(
        {BuildDecoderLm("lm", 2, 64, 2, 128, 16, 4, 500), {{4}}});

    for (auto& c : cases) {
        ExecOptions opts;
        opts.batch = 2;
        std::vector<Tensor> inputs;
        uint64_t seed = 11;
        for (auto& dims : c.in_dims) {
            std::vector<int64_t> full = {2};
            for (int64_t d : dims) full.push_back(d);
            Tensor x = RandomInput(seed++, full);
            for (int64_t i = 0; i < x.NumElements(); ++i) {
                x[i] = std::fabs(x[i]) * 100.0f;  // embedding-safe
            }
            inputs.push_back(std::move(x));
        }
        auto r = Execute(c.graph, inputs, opts);
        ASSERT_TRUE(r.ok())
            << c.graph.name() << ": " << r.status().ToString();
        // Finite outputs.
        for (int64_t i = 0;
             i < r.value().final_output().NumElements(); ++i) {
            EXPECT_TRUE(std::isfinite(r.value().final_output()[i]))
                << c.graph.name();
        }
    }
}

TEST(Executor, PrecisionLossOrderingEndToEnd)
{
    // Lesson 6 at model level: int8 loses more than bf16 on the same
    // graph, and fp32 loses nothing.
    Graph g = BuildBert("b", 2, 64, 2, 128, 8, 500);
    auto fp32 =
        PrecisionLoss(g, MatmulPrecision::kFp32, 2, 5).value();
    auto bf16 =
        PrecisionLoss(g, MatmulPrecision::kBf16, 2, 5).value();
    auto int8 =
        PrecisionLoss(g, MatmulPrecision::kInt8, 2, 5).value();
    EXPECT_EQ(fp32.rms_error, 0.0);
    EXPECT_GT(bf16.sqnr_db, int8.sqnr_db);
    EXPECT_GT(bf16.sqnr_db, 25.0);
}

TEST(Executor, DecoderBlockIsCausal)
{
    // Changing a later token's input must not change earlier tokens'
    // outputs (causality of the decode loop).
    Graph g("dec");
    int in = g.AddInput("x", {4, 32});
    LayerParams block;
    block.seq_len = 4;
    block.kv_len = 8;
    block.d_model = 32;
    block.num_heads = 2;
    block.d_ff = 64;
    g.AddLayer(LayerKind::kDecoderBlock, "dec", {in}, block);
    ASSERT_TRUE(g.Finalize().ok());

    ExecOptions opts;
    opts.batch = 1;
    Tensor x = RandomInput(3, {1, 4, 32});
    auto base = Execute(g, {x}, opts).value();
    Tensor x2 = x;
    x2[3 * 32 + 5] += 10.0f;  // perturb the last token only
    auto perturbed = Execute(g, {x2}, opts).value();
    for (int64_t i = 0; i < 3 * 32; ++i) {
        EXPECT_EQ(base.final_output()[i], perturbed.final_output()[i])
            << i;
    }
    // ...and the last token's output does change.
    bool changed = false;
    for (int64_t i = 3 * 32; i < 4 * 32; ++i) {
        if (base.final_output()[i] != perturbed.final_output()[i]) {
            changed = true;
        }
    }
    EXPECT_TRUE(changed);
}

TEST(Executor, ConcatPreservesAllInputs)
{
    Graph g("cat");
    int a = g.AddInput("a", {2});
    int b = g.AddInput("b", {3});
    g.AddLayer(LayerKind::kConcat, "cat", {a, b}, LayerParams{});
    ASSERT_TRUE(g.Finalize().ok());
    ExecOptions opts;
    opts.batch = 1;
    Tensor ta(Shape({1, 2}), {1.0f, 2.0f});
    Tensor tb(Shape({1, 3}), {3.0f, 4.0f, 5.0f});
    auto r = Execute(g, {ta, tb}, opts).value();
    ASSERT_EQ(r.final_output().NumElements(), 5);
    for (int64_t i = 0; i < 5; ++i) {
        EXPECT_EQ(r.final_output()[i], static_cast<float>(i + 1));
    }
}

}  // namespace
}  // namespace t4i
