/**
 * @file
 * Systematic cross-product property suite: every (app x chip x dtype)
 * combination that compiles must satisfy the full invariant set, and
 * the cross-cutting monotonicity properties must hold for every app —
 * not just the handful the targeted tests pick.
 */
#include <gtest/gtest.h>

#include "src/arch/catalog.h"
#include "src/compiler/compiler.h"
#include "src/models/zoo.h"
#include "src/power/power.h"
#include "src/roofline/roofline.h"
#include "src/sim/machine.h"

namespace t4i {
namespace {

struct Combo {
    std::string app;
    std::string chip;
    DType dtype;
};

std::vector<Combo>
AllCombos()
{
    std::vector<Combo> combos;
    for (const auto& app : ProductionAppNames()) {
        for (const auto& chip : ChipCatalog()) {
            for (DType dt : {DType::kInt8, DType::kBf16}) {
                combos.push_back({app, chip.name, dt});
            }
        }
    }
    return combos;
}

std::string
ComboName(const ::testing::TestParamInfo<Combo>& info)
{
    return info.param.app + "_" + info.param.chip + "_" +
           DTypeName(info.param.dtype);
}

class ComboSweep : public ::testing::TestWithParam<Combo> {};

TEST_P(ComboSweep, FullInvariantSet)
{
    const Combo& combo = GetParam();
    auto app = BuildApp(combo.app).value();
    auto chip = ChipByName(combo.chip).value();
    CompileOptions opts;
    opts.batch = 8;
    opts.dtype = combo.dtype;
    auto prog = Compile(app.graph, chip, opts);
    if (!prog.ok()) {
        // Must be a clean, non-internal rejection (dtype gate or
        // capacity — e.g. MLP0 does not fit TPUv1's DDR3 8 GiB).
        EXPECT_NE(prog.status().code(), StatusCode::kInternal)
            << prog.status().ToString();
        return;
    }
    auto result = Simulate(prog.value(), chip);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    const SimResult& r = result.value();

    EXPECT_GT(r.latency_s, 0.0);
    EXPECT_GT(r.total_macs, 0.0);
    EXPECT_LE(r.mxu_utilization, 1.0 + 1e-9);
    for (const auto& e : r.engines) {
        EXPECT_LE(e.utilization, 1.0 + 1e-9);
        EXPECT_GE(e.busy_s, 0.0);
    }
    // Roofline bound against actual traffic.
    const double hbm =
        static_cast<double>(r.engine(Engine::kHbm).bytes);
    if (hbm > 0.0) {
        Roofline roof = BuildRoofline(chip, combo.dtype);
        EXPECT_LE(r.achieved_flops,
                  roof.Attainable(2.0 * r.total_macs / hbm) * 1.001);
    }
    // Power model sanity everywhere.
    auto power = EstimatePower(prog.value(), r, chip);
    ASSERT_TRUE(power.ok());
    EXPECT_GT(power.value().total_energy_j, 0.0);
    EXPECT_GE(power.value().avg_power_w, chip.idle_w - 1e-9);
    EXPECT_GT(power.value().throttle, 0.0);
    EXPECT_LE(power.value().throttle, 1.0);
    // Pipelined run never beats the analytic steady-state bound and
    // never loses to fully serial execution.
    auto pipe = SimulatePipelined(prog.value(), chip, 4).value();
    EXPECT_LE(pipe.total_s, 4.0 * r.latency_s + 1e-12);
    EXPECT_LE(pipe.steady_ips, r.steady_state_ips * 1.01);
}

INSTANTIATE_TEST_SUITE_P(Matrix, ComboSweep,
                         ::testing::ValuesIn(AllCombos()), ComboName);

// --- Per-app cross-cutting monotonicity -----------------------------------

class PerApp : public ::testing::TestWithParam<const char*> {};

TEST_P(PerApp, OptLadderMonotoneInBothDtypes)
{
    const ChipConfig chip = Tpu_v4i();
    auto app = BuildApp(GetParam()).value();
    for (DType dt : {DType::kInt8, DType::kBf16}) {
        double prev = 1e18;
        for (int level = 0; level <= 3; ++level) {
            CompileOptions opts;
            opts.batch = app.typical_batch;
            opts.dtype = dt;
            opts.opt_level = level;
            auto r = Simulate(
                Compile(app.graph, chip, opts).value(), chip).value();
            EXPECT_LE(r.latency_s, prev * 1.001)
                << GetParam() << " O" << level << " "
                << DTypeName(dt);
            prev = r.latency_s;
        }
    }
}

TEST_P(PerApp, ShardingSpeedupWithinPhysicalBounds)
{
    const ChipConfig chip = Tpu_v4i();
    auto app = BuildApp(GetParam()).value();
    CompileOptions one;
    one.batch = app.typical_batch;
    auto r1 = Simulate(Compile(app.graph, chip, one).value(), chip)
                  .value();
    for (int chips : {2, 4}) {
        CompileOptions opts = one;
        opts.num_chips = chips;
        auto prog = Compile(app.graph, chip, opts);
        ASSERT_TRUE(prog.ok()) << GetParam();
        auto r = Simulate(prog.value(), chip).value();
        const double speedup = r1.latency_s / r.latency_s;
        // Sharding can be a net LOSS (channel-sharded convs all-gather
        // big activation maps every layer — why nobody shards small
        // CNNs), but never by more than the added ICI serialization,
        // and never superlinear.
        EXPECT_GT(speedup, 0.25) << GetParam() << " x" << chips;
        EXPECT_LT(speedup, chips * 1.01) << GetParam() << " x"
                                         << chips;
    }
}

TEST_P(PerApp, CmemMonotoneLatencyImprovement)
{
    const ChipConfig chip = Tpu_v4i();
    auto app = BuildApp(GetParam()).value();
    double prev = 1e18;
    for (int64_t mib : {0, 32, 128}) {
        CompileOptions opts;
        opts.batch = app.typical_batch;
        opts.cmem_override_bytes = mib * kMiB;
        auto r = Simulate(Compile(app.graph, chip, opts).value(),
                          chip).value();
        EXPECT_LE(r.latency_s, prev * 1.001)
            << GetParam() << " cmem " << mib;
        prev = r.latency_s;
    }
}

TEST_P(PerApp, EnergyPerSampleImprovesWithBatchOnV4i)
{
    const ChipConfig chip = Tpu_v4i();
    auto app = BuildApp(GetParam()).value();
    auto energy_per_sample = [&](int64_t batch) {
        CompileOptions opts;
        opts.batch = batch;
        auto prog = Compile(app.graph, chip, opts).value();
        auto r = Simulate(prog, chip).value();
        return EstimatePower(prog, r, chip).value().total_energy_j /
               static_cast<double>(batch);
    };
    EXPECT_LT(energy_per_sample(32), energy_per_sample(1) * 1.001)
        << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Apps, PerApp,
                         ::testing::Values("MLP0", "MLP1", "CNN0",
                                           "CNN1", "RNN0", "RNN1",
                                           "BERT0", "BERT1"));

}  // namespace
}  // namespace t4i
