/**
 * @file
 * Property-based fuzzing: random-but-valid model graphs are compiled
 * for random chips/dtypes/options and simulated; the run must either
 * fail cleanly at compile time or satisfy every simulator invariant.
 */
#include <gtest/gtest.h>

#include "src/arch/catalog.h"
#include "src/common/rng.h"
#include "src/compiler/compiler.h"
#include "src/roofline/roofline.h"
#include "src/serving/server.h"
#include "src/sim/machine.h"

namespace t4i {
namespace {

/** Builds a random valid graph: a trunk of compatible layers with
 *  occasional residual branches. */
Graph
RandomGraph(Rng& rng)
{
    Graph g("fuzz");
    // A vector trunk ([features]), an image trunk ([H,W,C]), a
    // sequence trunk ([S,D]) or an autoregressive decoder trunk.
    const int flavor = static_cast<int>(rng.NextBounded(4));
    int x;
    int64_t features = 0;
    int64_t h = 0;
    int64_t c = 0;
    int64_t seq = 0;
    int64_t d = 0;

    switch (flavor) {
      case 0: {
        features = 32 + static_cast<int64_t>(rng.NextBounded(16)) * 32;
        x = g.AddInput("x", {features});
        break;
      }
      case 1: {
        h = 16 + static_cast<int64_t>(rng.NextBounded(4)) * 16;
        c = 3 + static_cast<int64_t>(rng.NextBounded(13));
        x = g.AddInput("x", {h, h, c});
        break;
      }
      case 2: {
        seq = 8 + static_cast<int64_t>(rng.NextBounded(8)) * 8;
        d = 64 + static_cast<int64_t>(rng.NextBounded(8)) * 64;
        x = g.AddInput("x", {seq, d});
        break;
      }
      default: {
        seq = 2 + static_cast<int64_t>(rng.NextBounded(6));
        d = 128 + static_cast<int64_t>(rng.NextBounded(4)) * 128;
        x = g.AddInput("x", {seq, d});
        break;
      }
    }

    const int depth = 1 + static_cast<int>(rng.NextBounded(6));
    for (int i = 0; i < depth; ++i) {
        const std::string tag = "l" + std::to_string(i);
        if (flavor == 0) {
            if (rng.NextBool(0.3)) {
                LayerParams add;
                add.arity = 2;
                x = g.AddLayer(LayerKind::kElementwise, tag + ".res",
                               {x, x}, add);
            }
            LayerParams p;
            p.in_features = features;
            features = 16 + static_cast<int64_t>(
                                rng.NextBounded(32)) * 16;
            p.out_features = features;
            p.activation = rng.NextBool(0.5) ? Activation::kRelu
                                             : Activation::kGelu;
            x = g.AddLayer(LayerKind::kDense, tag, {x}, p);
        } else if (flavor == 1) {
            LayerParams p;
            p.kernel_h = rng.NextBool(0.5) ? 3 : 1;
            p.kernel_w = p.kernel_h;
            p.stride = rng.NextBool(0.3) ? 2 : 1;
            p.pad = p.kernel_h / 2;
            c = 8 + static_cast<int64_t>(rng.NextBounded(8)) * 8;
            p.out_channels = c;
            x = g.AddLayer(LayerKind::kConv2d, tag, {x}, p);
            // Track spatial size to keep pooling legal.
            h = (h + 2 * p.pad - p.kernel_h) / p.stride + 1;
            if (h >= 4 && rng.NextBool(0.25)) {
                LayerParams pool;
                pool.kernel_h = 2;
                pool.kernel_w = 2;
                pool.stride = 2;
                x = g.AddLayer(LayerKind::kMaxPool, tag + ".pool",
                               {x}, pool);
                h = (h - 2) / 2 + 1;
            }
        } else if (flavor == 3) {
            LayerParams block;
            block.seq_len = seq;
            block.kv_len = 64 + static_cast<int64_t>(
                                    rng.NextBounded(8)) * 64;
            block.d_model = d;
            block.num_heads = 8;
            block.d_ff = d * 4;
            x = g.AddLayer(LayerKind::kDecoderBlock, tag + ".dec",
                           {x}, block);
        } else {
            if (rng.NextBool(0.5)) {
                LayerParams attn;
                attn.seq_len = seq;
                attn.d_model = d;
                attn.num_heads = 8;
                x = g.AddLayer(LayerKind::kAttention, tag + ".attn",
                               {x}, attn);
                x = g.AddLayer(LayerKind::kLayerNorm, tag + ".ln", {x},
                               LayerParams{});
            } else {
                LayerParams lstm;
                lstm.seq_len = seq;
                lstm.hidden_dim = d;
                x = g.AddLayer(LayerKind::kLstm, tag + ".lstm", {x},
                               lstm);
            }
        }
    }
    T4I_CHECK(g.Finalize().ok(), "fuzz graph must finalize");
    return g;
}

class FuzzSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzSweep, CompileSimulateInvariantsHold)
{
    Rng rng(GetParam());
    Graph g = RandomGraph(rng);

    auto chips = ChipCatalog();
    const ChipConfig chip =
        chips[rng.NextBounded(chips.size())];
    CompileOptions opts;
    opts.batch = 1 + static_cast<int64_t>(rng.NextBounded(64));
    opts.opt_level = static_cast<int>(rng.NextBounded(4));
    opts.dtype = rng.NextBool(0.5) ? DType::kBf16 : DType::kInt8;
    if (rng.NextBool(0.2) && chip.ici_links > 0) {
        opts.num_chips = 2 + static_cast<int>(rng.NextBounded(3));
    }
    opts.include_host_transfers = rng.NextBool(0.8);

    auto prog = Compile(g, chip, opts);
    if (!prog.ok()) {
        // Clean rejection is a valid outcome (dtype gate, capacity,
        // missing ICI); it must carry a real error code.
        EXPECT_NE(prog.status().code(), StatusCode::kOk);
        EXPECT_NE(prog.status().code(), StatusCode::kInternal)
            << prog.status().ToString();
        return;
    }
    ASSERT_TRUE(prog.value().Validate().ok());

    std::vector<ScheduleEntry> schedule;
    auto result =
        SimulateWithSchedule(prog.value(), chip, &schedule);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    const SimResult& r = result.value();

    // Core invariants.
    EXPECT_GT(r.latency_s, 0.0);
    EXPECT_LE(r.achieved_flops,
              chip.PeakFlops(opts.dtype) * (1.0 + 1e-9));
    for (const auto& e : r.engines) {
        EXPECT_LE(e.utilization, 1.0 + 1e-9);
    }
    // Causality in the schedule.
    std::vector<double> finish(prog.value().instrs.size());
    for (const auto& entry : schedule) {
        finish[static_cast<size_t>(entry.instr_id)] = entry.finish_s;
    }
    for (const auto& entry : schedule) {
        for (int dep :
             prog.value().instrs[static_cast<size_t>(entry.instr_id)]
                 .deps) {
            EXPECT_GE(entry.start_s,
                      finish[static_cast<size_t>(dep)] - 1e-12);
        }
    }
    // The roofline bound against actual HBM traffic.
    const double hbm =
        static_cast<double>(r.engine(Engine::kHbm).bytes);
    if (hbm > 0) {
        Roofline roof = BuildRoofline(chip, opts.dtype);
        const double intensity = 2.0 * r.total_macs / hbm;
        EXPECT_LE(r.achieved_flops,
                  roof.Attainable(intensity) * 1.001);
    }
    // Determinism.
    auto again = Simulate(prog.value(), chip).value();
    EXPECT_EQ(again.latency_s, r.latency_s);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSweep,
                         ::testing::Range<uint64_t>(1, 81));

/** Draws a random-but-valid fault plan: scripted failures (some
 *  permanent), MTBF/MTTR processes, transient errors, slowdowns. */
FaultPlan
RandomFaultPlan(Rng& rng, int num_devices, double duration_s)
{
    FaultPlan plan;
    plan.seed = rng.NextU64();
    if (rng.NextBool(0.5)) {
        plan.mtbf_s = 0.2 + 5.0 * rng.NextDouble();
        plan.mttr_s = 0.05 + 1.0 * rng.NextDouble();
    }
    if (rng.NextBool(0.4)) {
        plan.transient_failure_prob = rng.NextDouble();
    }
    const int scripted = static_cast<int>(rng.NextBounded(4));
    for (int i = 0; i < scripted; ++i) {
        ScriptedFault f;
        f.device = static_cast<int>(
            rng.NextBounded(static_cast<uint64_t>(num_devices)));
        f.fail_at_s = duration_s * rng.NextDouble();
        f.repair_at_s = rng.NextBool(0.3)
                            ? -1.0
                            : f.fail_at_s +
                                  0.01 + duration_s * rng.NextDouble();
        plan.scripted.push_back(f);
    }
    const int slow = static_cast<int>(rng.NextBounded(3));
    for (int i = 0; i < slow; ++i) {
        SlowdownEvent s;
        s.device = static_cast<int>(
            rng.NextBounded(static_cast<uint64_t>(num_devices)));
        s.start_s = duration_s * rng.NextDouble();
        s.end_s = s.start_s + 0.01 + duration_s * rng.NextDouble();
        s.speed_factor = 0.05 + 0.95 * rng.NextDouble();
        plan.slowdowns.push_back(s);
    }
    return plan;
}

class FaultFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FaultFuzz, RandomFaultPlansNeverBreakConservation)
{
    Rng rng(GetParam() * 0x9e3779b97f4a7c15ULL + 1);
    const int num_devices = 1 + static_cast<int>(rng.NextBounded(4));
    const double duration_s = 1.0 + 2.0 * rng.NextDouble();

    std::vector<TenantConfig> tenants;
    const int n_tenants = 1 + static_cast<int>(rng.NextBounded(3));
    for (int i = 0; i < n_tenants; ++i) {
        TenantConfig t;
        t.name = "t" + std::to_string(i);
        const double fixed = 1e-4 + 5e-3 * rng.NextDouble();
        const double per_sample = 1e-5 + 2e-4 * rng.NextDouble();
        t.latency_s = [fixed, per_sample](int64_t b) {
            return fixed + per_sample * static_cast<double>(b);
        };
        t.max_batch = 1 + static_cast<int64_t>(rng.NextBounded(32));
        t.slo_s = 0.002 + 0.02 * rng.NextDouble();
        t.arrival_rate = 50.0 + 1500.0 * rng.NextDouble();
        t.priority = static_cast<int>(rng.NextBounded(3));
        if (rng.NextBool(0.5)) t.deadline_s = 0.01 + 0.2 * rng.NextDouble();
        if (rng.NextBool(0.5)) {
            t.max_queue = 4 + static_cast<int64_t>(rng.NextBounded(128));
        }
        t.max_retries = static_cast<int>(rng.NextBounded(5));
        t.batch_wait_s = rng.NextBool(0.3) ? 1e-3 : 0.0;
        tenants.push_back(std::move(t));
    }

    ReliabilityConfig rel;
    rel.faults = RandomFaultPlan(rng, num_devices, duration_s);
    rel.hedge = rng.NextBool(0.3);
    if (rng.NextBool(0.3)) {
        rel.max_cell_queue =
            8 + static_cast<int64_t>(rng.NextBounded(256));
    }

    // The run must terminate (no deadlock), succeed, and account for
    // every request; availability is a fraction.
    auto result = RunServingCell(tenants, num_devices, duration_s,
                                 GetParam(), ServingTelemetry{}, rel);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    const ServingResult& r = result.value();
    EXPECT_GE(r.availability, 0.0);
    EXPECT_LE(r.availability, 1.0);
    EXPECT_GE(r.duration_s, duration_s);
    int64_t arrived = 0;
    for (const auto& t : r.tenants) {
        EXPECT_EQ(t.arrived, t.completed + t.dropped + t.shed)
            << t.name;
        EXPECT_GE(t.p99_latency_s, 0.0);
        arrived += t.arrived;
    }
    EXPECT_GT(arrived, 0);

    // Replaying the identical scenario is bit-identical.
    auto replay = RunServingCell(tenants, num_devices, duration_s,
                                 GetParam(), ServingTelemetry{}, rel)
                      .value();
    for (size_t i = 0; i < r.tenants.size(); ++i) {
        EXPECT_EQ(r.tenants[i].completed, replay.tenants[i].completed);
        EXPECT_EQ(r.tenants[i].dropped, replay.tenants[i].dropped);
        EXPECT_EQ(r.tenants[i].shed, replay.tenants[i].shed);
        EXPECT_EQ(r.tenants[i].p99_latency_s,
                  replay.tenants[i].p99_latency_s);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultFuzz,
                         ::testing::Range<uint64_t>(1, 61));

}  // namespace
}  // namespace t4i
