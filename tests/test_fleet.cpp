/**
 * @file
 * Tests for the fleet capacity planner.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "src/arch/catalog.h"
#include "src/fleet/deployment.h"
#include "src/fleet/planner.h"

namespace t4i {
namespace {

std::vector<AppDemand>
SmallDemand(double qps)
{
    std::vector<AppDemand> demands;
    AppDemand d;
    d.app = BuildApp("CNN1").value();
    d.qps = qps;
    demands.push_back(std::move(d));
    return demands;
}

TEST(Fleet, RejectsBadInput)
{
    FleetParams params;
    EXPECT_FALSE(PlanFleet({}, Tpu_v4i(), params).ok());
    EXPECT_FALSE(PlanFleet(SmallDemand(-5.0), Tpu_v4i(), params).ok());
    FleetParams bad = params;
    bad.utilization_headroom = 0.0;
    EXPECT_FALSE(PlanFleet(SmallDemand(100.0), Tpu_v4i(), bad).ok());
}

TEST(Fleet, ChipsScaleWithTraffic)
{
    FleetParams params;
    auto small = PlanFleet(SmallDemand(1000.0), Tpu_v4i(), params)
                     .value();
    auto big = PlanFleet(SmallDemand(100000.0), Tpu_v4i(), params)
                   .value();
    EXPECT_GE(small.total_chips, 1);
    EXPECT_GT(big.total_chips, 5 * small.total_chips);
    EXPECT_GT(big.tco_usd, big.capex_usd);
    EXPECT_NEAR(static_cast<double>(big.total_chips),
                100000.0 / big.apps[0].capacity_per_chip, 1.0);
}

TEST(Fleet, HeadroomInflatesTheFleet)
{
    FleetParams tight;
    tight.utilization_headroom = 0.9;
    FleetParams loose;
    loose.utilization_headroom = 0.45;
    auto t = PlanFleet(SmallDemand(50000.0), Tpu_v4i(), tight).value();
    auto l = PlanFleet(SmallDemand(50000.0), Tpu_v4i(), loose).value();
    EXPECT_GT(l.total_chips, t.total_chips);
    EXPECT_NEAR(static_cast<double>(l.total_chips) / t.total_chips,
                2.0, 0.3);
}

TEST(Fleet, InfeasibleSloIsFlagged)
{
    FleetParams params;
    std::vector<AppDemand> demands = SmallDemand(100.0);
    demands[0].app.slo_ms = 0.0001;  // nothing meets 100 ns
    auto plan = PlanFleet(demands, Tpu_v4i(), params).value();
    EXPECT_FALSE(plan.feasible);
    EXPECT_TRUE(plan.apps[0].infeasible);
}

TEST(Fleet, ReferenceTrafficCoversAllApps)
{
    auto demands = ReferenceTraffic(100).value();
    EXPECT_EQ(demands.size(), 8u);
    for (const auto& d : demands) {
        EXPECT_GT(d.qps, 0.0) << d.app.name;
    }
}

TEST(Fleet, Tpu4iFleetCheaperThanT4FleetForSameTraffic)
{
    // The lesson-3 punchline at fleet scale: serving the same traffic
    // needs fewer TPUv4i chips than T4s, and costs less in TCO.
    auto demands = ReferenceTraffic(50).value();
    FleetParams params;
    auto v4i = PlanFleet(demands, Tpu_v4i(), params).value();
    auto t4 = PlanFleet(demands, GpuT4(), params).value();
    ASSERT_TRUE(v4i.feasible);
    ASSERT_TRUE(t4.feasible);
    EXPECT_LT(v4i.total_chips, t4.total_chips);
    EXPECT_LT(v4i.tco_usd, t4.tco_usd);
}

TEST(Fleet, ReferenceTrafficRoundTripsToBaselineFleetSize)
{
    // Planning the reference traffic back onto TPUv4i at the same
    // utilization must land near the baseline chip count.
    const int64_t baseline = 40;
    auto demands = ReferenceTraffic(baseline).value();
    FleetParams params;
    params.utilization_headroom = 0.6;
    auto plan = PlanFleet(demands, Tpu_v4i(), params).value();
    EXPECT_NEAR(static_cast<double>(plan.total_chips),
                static_cast<double>(baseline),
                0.3 * static_cast<double>(baseline) + 8.0);
}

}  // namespace
}  // namespace t4i

namespace t4i {
namespace {

TEST(Deployment, Bf16ChipShipsDirect)
{
    DeploymentParams params;
    auto app = BuildApp("BERT0").value();
    auto plan = PlanDeployment(app, Tpu_v4i(), params).value();
    EXPECT_FALSE(plan.needs_ptq);
    EXPECT_FALSE(plan.needs_qat);
    EXPECT_EQ(plan.deployed_dtype, DType::kBf16);
    EXPECT_LT(plan.days, 7.0);
}

TEST(Deployment, Int8OnlyChipPaysTheDetour)
{
    DeploymentParams params;
    auto mlp = BuildApp("MLP0").value();
    auto bert = BuildApp("BERT0").value();
    auto plan_mlp = PlanDeployment(mlp, Tpu_v1(), params).value();
    auto plan_bert = PlanDeployment(bert, Tpu_v1(), params).value();
    EXPECT_TRUE(plan_mlp.needs_ptq);
    EXPECT_TRUE(plan_bert.needs_ptq);
    // The attention proxy's fidelity misses the default bar.
    EXPECT_TRUE(plan_bert.needs_qat);
    EXPECT_GT(plan_bert.days, plan_mlp.days);
    EXPECT_GT(plan_bert.days, 25.0);
}

TEST(Deployment, BarPositionControlsQat)
{
    auto app = BuildApp("RNN0").value();
    DeploymentParams lenient;
    lenient.required_sqnr_db = 10.0;
    DeploymentParams strict;
    strict.required_sqnr_db = 60.0;
    auto easy = PlanDeployment(app, Tpu_v1(), lenient).value();
    auto hard = PlanDeployment(app, Tpu_v1(), strict).value();
    EXPECT_FALSE(easy.needs_qat);
    EXPECT_TRUE(hard.needs_qat);
    EXPECT_GT(hard.days, easy.days);
}

TEST(Deployment, ProxyGraphsCoverAllDomains)
{
    for (AppDomain domain : {AppDomain::kMlp, AppDomain::kCnn,
                             AppDomain::kRnn, AppDomain::kBert}) {
        Graph g = DomainProxyGraph(domain);
        EXPECT_TRUE(g.finalized()) << AppDomainName(domain);
    }
}

// --- N+k redundancy --------------------------------------------------------

TEST(Redundancy, CellAvailabilityBasics)
{
    // Degenerate cases.
    EXPECT_DOUBLE_EQ(CellAvailability(0, 0, 0.5), 1.0);
    EXPECT_DOUBLE_EQ(CellAvailability(4, 3, 0.99), 0.0);
    EXPECT_DOUBLE_EQ(CellAvailability(4, 4, 1.0), 1.0);
    // No spares: the cell needs every chip up simultaneously.
    EXPECT_NEAR(CellAvailability(4, 4, 0.9), std::pow(0.9, 4), 1e-12);
    // One spare strictly helps; more spares keep helping.
    EXPECT_GT(CellAvailability(4, 5, 0.9), CellAvailability(4, 4, 0.9));
    EXPECT_GT(CellAvailability(4, 6, 0.9), CellAvailability(4, 5, 0.9));
    // Exact binomial check for N=2, k=1, a=0.9:
    // P(>=2 of 3 up) = 3*0.81*0.1 + 0.729 = 0.972.
    EXPECT_NEAR(CellAvailability(2, 3, 0.9), 0.972, 1e-12);
}

TEST(Redundancy, NPlusKSparesMonotone)
{
    // Worse chips need more spares; a bigger cell never needs fewer
    // spares than a smaller one at the same availability.
    const int64_t k_good = NPlusKSpares(64, 0.999, 0.999);
    const int64_t k_bad = NPlusKSpares(64, 0.95, 0.999);
    EXPECT_GE(k_bad, k_good);
    EXPECT_GE(NPlusKSpares(1024, 0.99, 0.999),
              NPlusKSpares(64, 0.99, 0.999));
    // ...but sublinearly: 16x the chips needs far less than 16x k.
    EXPECT_LT(NPlusKSpares(1024, 0.99, 0.999),
              16 * NPlusKSpares(64, 0.99, 0.999));
    // Perfect chips need no spares.
    EXPECT_EQ(NPlusKSpares(64, 1.0, 0.999), 0);
    // An unreachable target reports max_spares + 1.
    EXPECT_EQ(NPlusKSpares(4, 0.5, 0.999999, 2), 3);
}

TEST(Redundancy, PlanRedundancyPricesSpares)
{
    FleetParams params;
    auto plan = PlanFleet(SmallDemand(20000.0), Tpu_v4i(), params)
                    .value();
    ASSERT_TRUE(plan.feasible);
    ASSERT_GT(plan.total_chips, 1);

    FaultPlan faults;
    faults.mtbf_s = 99.0;
    faults.mttr_s = 1.0;  // 99% chip availability
    RedundancyParams rparams;
    rparams.target_availability = 0.999;
    auto redundancy =
        PlanRedundancy(plan, Tpu_v4i(), faults, rparams).value();
    EXPECT_NEAR(redundancy.chip_availability, 0.99, 1e-12);
    ASSERT_EQ(redundancy.apps.size(), 1u);
    const auto& app = redundancy.apps[0];
    EXPECT_GT(app.spare_chips, 0);
    EXPECT_LT(app.availability_no_spares, 0.999);
    EXPECT_GE(app.availability_with_spares, 0.999);
    // Spares cost real money, but far less than the base fleet.
    EXPECT_GT(redundancy.spare_tco_usd, 0.0);
    EXPECT_GT(redundancy.tco_overhead_fraction, 0.0);
    EXPECT_LT(redundancy.tco_overhead_fraction, 1.0);
}

TEST(Redundancy, PlanRedundancyValidatesInput)
{
    FleetParams params;
    auto plan =
        PlanFleet(SmallDemand(1000.0), Tpu_v4i(), params).value();
    FaultPlan faults;
    RedundancyParams bad;
    bad.target_availability = 1.5;
    EXPECT_FALSE(PlanRedundancy(plan, Tpu_v4i(), faults, bad).ok());
    bad.target_availability = 0.0;
    EXPECT_FALSE(PlanRedundancy(plan, Tpu_v4i(), faults, bad).ok());

    // A target no spare count can reach is ResourceExhausted, not a
    // silent under-provision.
    FaultPlan flaky;
    flaky.mtbf_s = 1.0;
    flaky.mttr_s = 9.0;  // 10% chip availability
    RedundancyParams tight;
    tight.target_availability = 0.999999;
    tight.max_spares = 1;
    auto r = PlanRedundancy(plan, Tpu_v4i(), flaky, tight);
    EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace t4i
