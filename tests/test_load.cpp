// Tests for the adversarial load layer (src/load/): arrival-source
// contract, generators, trace replay, retry storms, the scenario
// grammar, and the conservation + determinism guarantees of
// source-driven cell and cluster runs.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/cluster/scenario_run.h"
#include "src/common/rng.h"
#include "src/load/arrivals.h"
#include "src/load/scenario.h"
#include "src/obs/registry.h"
#include "src/obs/report.h"
#include "src/serving/cell.h"
#include "src/serving/server.h"

namespace t4i {
namespace {

using load::ArrivalSource;
using load::LoadArrival;

TenantConfig
AffineTenant(const std::string& name, double rate)
{
    TenantConfig t;
    t.name = name;
    t.latency_s = [](int64_t batch) {
        return 1e-3 + 1e-4 * static_cast<double>(batch);
    };
    t.max_batch = 32;
    t.slo_s = 0.010;
    t.arrival_rate = rate;
    return t;
}

/** Drains @p source assuming every taken request completes
 *  @p service_s after it is taken (an ideal infinitely-wide server).
 *  Returns the arrivals in emission order. */
std::vector<LoadArrival>
DrainWithIdealServer(ArrivalSource& source, double service_s,
                     bool succeed = true)
{
    std::vector<LoadArrival> taken;
    LoadArrival peek;
    int guard = 0;
    while (guard++ < 2000000) {
        if (source.Peek(&peek)) {
            LoadArrival a = source.Take();
            if (a.id != 0) {
                source.OnRequestEnd(a.id, a.t_s + service_s, succeed);
            }
            taken.push_back(a);
            continue;
        }
        if (source.Exhausted()) break;
        // Waiting on feedback we already delivered synchronously:
        // nothing else can unblock it.
        ADD_FAILURE() << "source stalled (no peek, not exhausted)";
        break;
    }
    return taken;
}

// --- RNG substreams --------------------------------------------------

TEST(Substreams, NamedStreamsAreDeterministicAndDistinct)
{
    const uint64_t a1 = SubstreamSeed(42, "load.arrivals", 0);
    const uint64_t a2 = SubstreamSeed(42, "load.arrivals", 0);
    EXPECT_EQ(a1, a2);

    std::set<uint64_t> seeds;
    seeds.insert(SubstreamSeed(42, "load.arrivals", 0));
    seeds.insert(SubstreamSeed(42, "load.arrivals", 1));
    seeds.insert(SubstreamSeed(42, "load.sizes", 0));
    seeds.insert(SubstreamSeed(42, "load.retry_jitter", 0));
    seeds.insert(SubstreamSeed(43, "load.arrivals", 0));
    EXPECT_EQ(seeds.size(), 5u) << "substream seeds collided";
}

// --- GeneratorSource -------------------------------------------------

TEST(Generator, EmissionsAreOrderedAndBelowHorizon)
{
    std::vector<load::GeneratorTenant> tenants(2);
    tenants[0].rate = 800.0;
    tenants[1].rate = 300.0;
    load::GeneratorSource source(tenants, {}, {}, {}, 7,
                                 /*horizon_s=*/1.0);
    auto taken = DrainWithIdealServer(source, 0.0);
    ASSERT_GT(taken.size(), 500u);
    double prev = 0.0;
    for (const LoadArrival& a : taken) {
        EXPECT_GE(a.t_s, prev);
        EXPECT_LT(a.t_s, 1.0);
        EXPECT_LT(a.tenant, 2u);
        prev = a.t_s;
    }
}

TEST(Generator, FlashCrowdShapesTheRateFactor)
{
    load::FlashCrowd crowd;
    crowd.tenant = 0;
    crowd.start_s = 1.0;
    crowd.ramp_s = 0.5;
    crowd.hold_s = 1.0;
    crowd.mult = 5.0;
    std::vector<load::GeneratorTenant> tenants(2);
    tenants[0].rate = 100.0;
    tenants[1].rate = 100.0;
    load::GeneratorSource source(tenants, {crowd}, {}, {}, 7, 10.0);

    EXPECT_DOUBLE_EQ(source.RateFactor(0, 0.5), 1.0);   // before
    EXPECT_DOUBLE_EQ(source.RateFactor(0, 1.25), 3.0);  // mid-ramp
    EXPECT_DOUBLE_EQ(source.RateFactor(0, 2.0), 5.0);   // hold
    EXPECT_DOUBLE_EQ(source.RateFactor(0, 2.75), 3.0);  // ramp down
    EXPECT_DOUBLE_EQ(source.RateFactor(0, 4.0), 1.0);   // after
    // Other tenants are untouched by a targeted crowd.
    EXPECT_DOUBLE_EQ(source.RateFactor(1, 2.0), 1.0);
}

TEST(Generator, FlashCrowdMultipliesArrivalVolume)
{
    std::vector<load::GeneratorTenant> tenants(1);
    tenants[0].rate = 1000.0;
    load::FlashCrowd crowd;
    crowd.tenant = 0;
    crowd.start_s = 0.0;
    crowd.ramp_s = 0.0;
    crowd.hold_s = 2.0;
    crowd.mult = 4.0;
    load::GeneratorSource calm(tenants, {}, {}, {}, 7, 2.0);
    load::GeneratorSource crowded(tenants, {crowd}, {}, {}, 7, 2.0);
    const size_t calm_n = DrainWithIdealServer(calm, 0.0).size();
    const size_t crowd_n = DrainWithIdealServer(crowded, 0.0).size();
    // ~2000 vs ~8000; allow generous Poisson slack.
    EXPECT_GT(crowd_n, calm_n * 3);
    EXPECT_LT(crowd_n, calm_n * 5);
}

TEST(Generator, SharedShockHitsEveryTenantAtOnce)
{
    std::vector<load::GeneratorTenant> tenants(3);
    for (auto& t : tenants) t.rate = 100.0;
    load::BurstShock shock;
    shock.shock_rate = 1.0;
    shock.shock_mult = 3.0;
    shock.shock_dur_s = 0.5;
    load::GeneratorSource source(tenants, {}, shock, {}, 11, 20.0);
    // Wherever the factor is shocked for one tenant it is shocked
    // for all of them: the shock process is shared by construction.
    int shocked = 0;
    for (double t = 0.05; t < 20.0; t += 0.1) {
        const double f0 = source.RateFactor(0, t);
        EXPECT_DOUBLE_EQ(f0, source.RateFactor(1, t));
        EXPECT_DOUBLE_EQ(f0, source.RateFactor(2, t));
        if (f0 > 1.0) ++shocked;
    }
    EXPECT_GT(shocked, 0) << "no shock interval in 20 s at rate 1/s";
}

TEST(Generator, SizeDistributionsRespectBounds)
{
    Rng rng(SubstreamSeed(42, "load.sizes", 0));
    load::SizeDistribution pareto;
    pareto.kind = load::SizeDistribution::Kind::kPareto;
    pareto.alpha = 1.5;
    pareto.xm = 2.0;
    pareto.max = 16.0;
    bool saw_tail = false;
    for (int i = 0; i < 10000; ++i) {
        const double s = load::DrawSize(pareto, rng);
        ASSERT_GE(s, 2.0);
        ASSERT_LE(s, 16.0);
        if (s > 6.0) saw_tail = true;
    }
    EXPECT_TRUE(saw_tail) << "Pareto(1.5) never exceeded 3x xm";

    load::SizeDistribution logn;
    logn.kind = load::SizeDistribution::Kind::kLognormal;
    logn.sigma = 1.0;
    logn.max = 8.0;
    for (int i = 0; i < 1000; ++i) {
        const double s = load::DrawSize(logn, rng);
        ASSERT_GT(s, 0.0);
        ASSERT_LE(s, 8.0);
    }

    load::SizeDistribution constant;
    EXPECT_DOUBLE_EQ(load::DrawSize(constant, rng), 1.0);
}

// --- Trace parsing and replay ---------------------------------------

TEST(Trace, ParsesJsonlAndCsv)
{
    const std::string jsonl =
        "{\"t\": 0.5, \"tenant\": \"web\", \"size\": 2.0, "
        "\"deadline\": 0.05}\n"
        "{\"t\": 0.1, \"tenant\": 1}\n";
    auto recs_or = load::ParseTrace(jsonl, {"web", "batch"});
    ASSERT_TRUE(recs_or.ok()) << recs_or.status().message();
    const auto& recs = recs_or.value();
    ASSERT_EQ(recs.size(), 2u);
    // Sorted by time.
    EXPECT_DOUBLE_EQ(recs[0].t_s, 0.1);
    EXPECT_EQ(recs[0].tenant, 1u);
    EXPECT_DOUBLE_EQ(recs[1].t_s, 0.5);
    EXPECT_EQ(recs[1].tenant, 0u);
    EXPECT_DOUBLE_EQ(recs[1].size, 2.0);
    EXPECT_DOUBLE_EQ(recs[1].deadline_s, 0.05);

    const std::string csv =
        "t,tenant,size,deadline\n"
        "0.2,web,1.5,0.03\n"
        "0.3,batch\n";
    auto csv_or = load::ParseTrace(csv, {"web", "batch"});
    ASSERT_TRUE(csv_or.ok()) << csv_or.status().message();
    ASSERT_EQ(csv_or.value().size(), 2u);
    EXPECT_EQ(csv_or.value()[1].tenant, 1u);

    EXPECT_FALSE(load::ParseTrace("0.1,nosuch\n", {"web"}).ok());
}

TEST(Trace, OpenLoopReplayFollowsTimestamps)
{
    std::vector<load::TraceRecord> recs;
    for (int i = 0; i < 10; ++i) {
        load::TraceRecord r;
        r.t_s = 0.1 * (i + 1);
        r.tenant = 0;
        recs.push_back(r);
    }
    load::ReplayOptions opts;
    opts.time_scale = 0.5;  // double speed
    load::TraceSource source(recs, 1, opts, /*horizon_s=*/10.0);
    auto taken = DrainWithIdealServer(source, 0.001);
    ASSERT_EQ(taken.size(), 10u);
    EXPECT_NEAR(taken[0].t_s, 0.05, 1e-12);
    EXPECT_NEAR(taken[9].t_s, 0.5, 1e-12);
    EXPECT_TRUE(source.Exhausted());
}

TEST(Trace, ClosedLoopIsResponseGated)
{
    // One client, think 0: with a 0.2 s service time the client can
    // only issue a request every 0.2 s, regardless of trace spacing.
    std::vector<load::TraceRecord> recs;
    for (int i = 0; i < 5; ++i) {
        load::TraceRecord r;
        r.t_s = 0.001 * i;
        r.tenant = 0;
        recs.push_back(r);
    }
    load::ReplayOptions opts;
    opts.closed_loop = true;
    opts.clients = 1;
    opts.think_s = 0.0;
    load::TraceSource source(recs, 1, opts, /*horizon_s=*/10.0);
    auto taken = DrainWithIdealServer(source, 0.2);
    ASSERT_EQ(taken.size(), 5u);
    for (size_t i = 1; i < taken.size(); ++i) {
        EXPECT_NEAR(taken[i].t_s - taken[i - 1].t_s, 0.2, 1e-9)
            << "client issued before its previous response";
    }
}

TEST(Trace, ClosedLoopDropsReleasesPastHorizon)
{
    std::vector<load::TraceRecord> recs(20);
    for (size_t i = 0; i < recs.size(); ++i) {
        recs[i].t_s = 0.0;
        recs[i].tenant = 0;
    }
    load::ReplayOptions opts;
    opts.closed_loop = true;
    opts.clients = 1;
    load::TraceSource source(recs, 1, opts, /*horizon_s=*/1.0);
    // 0.3 s per response: only ~4 of 20 records fit under the horizon.
    auto taken = DrainWithIdealServer(source, 0.3);
    EXPECT_LT(taken.size(), 20u);
    EXPECT_EQ(static_cast<int64_t>(taken.size()) +
                  source.dropped_after_horizon(),
              20);
    EXPECT_TRUE(source.Exhausted());
}

// --- Retry storms ----------------------------------------------------

/** A scripted base source emitting one arrival per entry at fixed
 *  times (no feedback wanted). */
class ScriptedSource : public ArrivalSource {
  public:
    explicit ScriptedSource(std::vector<double> times)
        : times_(std::move(times))
    {
    }
    bool Peek(LoadArrival* out) override
    {
        if (next_ >= times_.size()) return false;
        out->t_s = times_[next_];
        out->tenant = 0;
        out->id = 0;
        return true;
    }
    LoadArrival Take() override
    {
        LoadArrival a;
        Peek(&a);
        ++next_;
        return a;
    }
    bool Exhausted() const override { return next_ >= times_.size(); }

  private:
    std::vector<double> times_;
    size_t next_ = 0;
};

TEST(RetryStorm, FailureRetriesWithFixedBackoff)
{
    load::RetryPolicy policy;
    policy.backoff = load::RetryPolicy::Backoff::kFixed;
    policy.base_s = 0.5;
    policy.max_retries = 2;
    load::RetryStormSource source(
        std::make_unique<ScriptedSource>(std::vector<double>{1.0}),
        policy, 42, /*horizon_s=*/100.0);

    // Fail every attempt: 1 original + 2 retries, then gives up.
    auto taken = DrainWithIdealServer(source, 0.1, /*succeed=*/false);
    ASSERT_EQ(taken.size(), 3u);
    EXPECT_FALSE(taken[0].client_retry);
    EXPECT_TRUE(taken[1].client_retry);
    EXPECT_TRUE(taken[2].client_retry);
    // Fixed backoff: each retry lands (response + base) later; the
    // ideal server responds 0.1 s after each take.
    EXPECT_NEAR(taken[1].t_s, 1.0 + 0.1 + 0.5, 1e-9);
    EXPECT_NEAR(taken[2].t_s, taken[1].t_s + 0.1 + 0.5, 1e-9);
    EXPECT_EQ(source.retries_emitted(), 2);
    EXPECT_TRUE(source.Exhausted());
}

TEST(RetryStorm, ExponentialBackoffDoublesTheDelay)
{
    load::RetryPolicy policy;
    policy.backoff = load::RetryPolicy::Backoff::kExponential;
    policy.base_s = 0.25;
    policy.max_retries = 3;
    load::RetryStormSource source(
        std::make_unique<ScriptedSource>(std::vector<double>{0.0}),
        policy, 42, 100.0);
    auto taken = DrainWithIdealServer(source, 0.0, false);
    ASSERT_EQ(taken.size(), 4u);
    // base * 2^prior_attempts: the first retry waits the bare base,
    // and every further retry doubles it.
    EXPECT_NEAR(taken[1].t_s - taken[0].t_s, 0.25, 1e-9);
    EXPECT_NEAR(taken[2].t_s - taken[1].t_s, 0.5, 1e-9);
    EXPECT_NEAR(taken[3].t_s - taken[2].t_s, 1.0, 1e-9);
}

TEST(RetryStorm, JitterStaysInsideTheExponentialEnvelope)
{
    load::RetryPolicy policy;
    policy.backoff = load::RetryPolicy::Backoff::kExpJitter;
    policy.base_s = 0.25;
    policy.max_retries = 1;
    std::set<double> delays;
    for (uint64_t seed = 0; seed < 32; ++seed) {
        load::RetryStormSource source(
            std::make_unique<ScriptedSource>(
                std::vector<double>{0.0}),
            policy, seed, 100.0);
        auto taken = DrainWithIdealServer(source, 0.0, false);
        ASSERT_EQ(taken.size(), 2u);
        const double delay = taken[1].t_s - taken[0].t_s;
        // Full jitter: uniform in (0, base * 2^prior_attempts], and
        // the first retry has no prior retries behind it.
        EXPECT_GT(delay, 0.0);
        EXPECT_LE(delay, 0.25);
        delays.insert(delay);
    }
    EXPECT_GT(delays.size(), 16u) << "jitter is not jittering";
}

TEST(RetryStorm, SlowSuccessCountsAsClientTimeout)
{
    load::RetryPolicy policy;
    policy.timeout_s = 0.05;
    policy.backoff = load::RetryPolicy::Backoff::kFixed;
    policy.base_s = 0.1;
    policy.max_retries = 5;
    load::RetryStormSource source(
        std::make_unique<ScriptedSource>(std::vector<double>{0.0}),
        policy, 42, 100.0);

    // First response succeeds but takes 0.2 s > timeout -> retried;
    // the retry's response is fast -> stream ends.
    LoadArrival a;
    ASSERT_TRUE(source.Peek(&a));
    a = source.Take();
    source.OnRequestEnd(a.id, a.t_s + 0.2, /*success=*/true);
    ASSERT_TRUE(source.Peek(&a));
    a = source.Take();
    EXPECT_TRUE(a.client_retry);
    source.OnRequestEnd(a.id, a.t_s + 0.01, /*success=*/true);
    EXPECT_FALSE(source.Peek(&a));
    EXPECT_TRUE(source.Exhausted());
    EXPECT_EQ(source.retries_emitted(), 1);
}

TEST(RetryStorm, RetriesPastHorizonAreSuppressed)
{
    load::RetryPolicy policy;
    policy.backoff = load::RetryPolicy::Backoff::kFixed;
    policy.base_s = 10.0;  // way past the horizon
    policy.max_retries = 3;
    load::RetryStormSource source(
        std::make_unique<ScriptedSource>(std::vector<double>{0.5}),
        policy, 42, /*horizon_s=*/1.0);
    auto taken = DrainWithIdealServer(source, 0.0, false);
    EXPECT_EQ(taken.size(), 1u);
    EXPECT_EQ(source.retries_emitted(), 0);
    EXPECT_EQ(source.retries_suppressed(), 1);
    EXPECT_TRUE(source.Exhausted());
}

// --- Scenario grammar ------------------------------------------------

TEST(Scenario, ParsesTheFullGrammar)
{
    const std::string text = R"(
# comment
scenario kitchen-sink
duration 2.5
seed 9
cells 3
devices 2
policy p2c
window 0.1
tenant web load=0.4 deadline=0.05 max-queue=64 priority=1
tenant api rate=500 deadline=0.02
arrivals poisson
flash-crowd tenant=web at=0.5 ramp=0.1 hold=0.3 mult=4
burst shock-rate=0.5 shock-mult=2 shock-dur=0.2
sizes pareto alpha=1.3 xm=1 max=8
retry-storm timeout=0.02 backoff=exp-jitter base=0.05 max-retries=6
outage cell=1 at=1.0 repair=1.5
alert page slo.page > 0.5 for 0
slo web-avail tenant=web avail=0.99
expect page
)";
    auto s_or = load::ParseScenario(text);
    ASSERT_TRUE(s_or.ok()) << s_or.status().message();
    const load::Scenario& s = s_or.value();
    EXPECT_EQ(s.name, "kitchen-sink");
    EXPECT_DOUBLE_EQ(s.duration_s, 2.5);
    EXPECT_EQ(s.cells, 3);
    EXPECT_EQ(s.devices_per_cell, 2);
    ASSERT_EQ(s.tenants.size(), 2u);
    EXPECT_DOUBLE_EQ(s.tenants[0].load, 0.4);
    EXPECT_DOUBLE_EQ(s.tenants[1].rate, 500.0);
    ASSERT_EQ(s.program.crowds.size(), 1u);
    EXPECT_DOUBLE_EQ(s.program.crowds[0].mult, 4.0);
    EXPECT_TRUE(s.program.retry_storm);
    EXPECT_EQ(s.program.retry.max_retries, 6);
    ASSERT_EQ(s.outages.size(), 1u);
    EXPECT_DOUBLE_EQ(s.outages[0].repair_at_s, 1.5);
    ASSERT_EQ(s.expect.size(), 1u);
    EXPECT_EQ(s.expect[0], "page");
}

TEST(Scenario, RejectsBrokenInput)
{
    EXPECT_FALSE(load::ParseScenario("tenant\n").ok());
    EXPECT_FALSE(load::ParseScenario("outage cell=5 at=1\ncells 2\n")
                     .ok());
    EXPECT_FALSE(
        load::ParseScenario("expect x\nexpect-not x\n").ok());
    EXPECT_FALSE(load::ParseScenario("bogus-directive 1\n").ok());
}

// --- Source-driven cell ----------------------------------------------

TEST(CellSourceMode, ConservesRequestsAndFeedsBack)
{
    std::vector<load::GeneratorTenant> gts(1);
    gts[0].rate = 4000.0;
    auto source = std::make_unique<load::GeneratorSource>(
        gts, std::vector<load::FlashCrowd>{}, load::BurstShock{},
        load::SizeDistribution{}, 5, 1.0);
    load::GeneratorSource* raw = source.get();

    ServeCell::Options options;
    options.tenants = {AffineTenant("web", 4000.0)};
    options.num_devices = 1;
    options.duration_s = 1.0;
    options.seed = 5;
    options.arrival_source = raw;
    auto cell_or = ServeCell::Create(std::move(options));
    ASSERT_TRUE(cell_or.ok()) << cell_or.status().message();
    auto cell = std::move(cell_or).ConsumeValue();
    cell->AdvanceTo(std::numeric_limits<double>::infinity());
    ServingResult r = cell->Finish();
    ASSERT_EQ(r.tenants.size(), 1u);
    const TenantStats& t = r.tenants[0];
    EXPECT_GT(t.arrived, 3000);
    EXPECT_EQ(t.arrived, t.completed + t.dropped + t.shed);
    EXPECT_TRUE(raw->Exhausted());
}

TEST(CellSourceMode, PerRequestDeadlineOverridesTenantDefault)
{
    // Two scripted arrivals into a cell whose device takes ~1.1 ms:
    // one with a microscopic per-request deadline (must drop), one
    // with a comfortable deadline (must complete).
    ServeCell::Options options;
    TenantConfig cfg = AffineTenant("web", 100.0);
    cfg.deadline_s = 1.0;   // tenant default: generous
    cfg.max_batch = 1;      // serialize, so the second request waits
    options.tenants = {cfg};
    options.num_devices = 1;
    options.duration_s = 1.0;
    options.seed = 5;
    options.external_arrivals = true;
    auto cell_or = ServeCell::Create(std::move(options));
    ASSERT_TRUE(cell_or.ok());
    auto cell = std::move(cell_or).ConsumeValue();

    ServeCell::ExternalArrival loose;
    loose.tenant = 0;
    loose.arrival_s = 0.1;
    EXPECT_TRUE(cell->InjectArrival(loose).admitted);
    // Queued behind the loose request (~1.1 ms on device), the tight
    // per-request deadline expires long before its turn comes.
    ServeCell::ExternalArrival tight;
    tight.tenant = 0;
    tight.arrival_s = 0.1;
    tight.deadline_s = 1e-7;
    EXPECT_TRUE(cell->InjectArrival(tight).admitted);
    cell->CloseArrivals();
    cell->AdvanceTo(std::numeric_limits<double>::infinity());
    ServingResult r = cell->Finish();
    EXPECT_EQ(r.tenants[0].dropped, 1);
    EXPECT_EQ(r.tenants[0].completed, 1);
}

// --- Source-driven cluster -------------------------------------------

TEST(ClusterSourceMode, ClosedLoopRetryBooksBalance)
{
    // Closed-loop trace replay wrapped in a retry storm against an
    // undersized cluster: the books must balance with client retries
    // counted as distinct arrivals, and the cluster's client_retries
    // must equal the storm's re-enqueued count.
    std::vector<load::TraceRecord> recs;
    for (int i = 0; i < 400; ++i) {
        load::TraceRecord r;
        r.t_s = 0.001 * i;
        r.tenant = 0;
        recs.push_back(r);
    }
    load::ReplayOptions opts;
    opts.closed_loop = true;
    opts.clients = 16;
    opts.think_s = 0.0005;
    auto trace = std::make_unique<load::TraceSource>(
        recs, 1, opts, /*horizon_s=*/2.0);
    load::RetryPolicy policy;
    policy.timeout_s = 0.004;  // tighter than typical latency
    policy.backoff = load::RetryPolicy::Backoff::kExpJitter;
    policy.base_s = 0.01;
    policy.max_retries = 2;
    auto storm = std::make_unique<load::RetryStormSource>(
        std::move(trace), policy, 13, 2.0);
    load::RetryStormSource* raw = storm.get();

    ClusterConfig config;
    config.tenants = {AffineTenant("web", 1000.0)};
    config.num_cells = 2;
    config.devices_per_cell = 1;
    config.duration_s = 2.0;
    config.seed = 13;
    config.policy = RoutingPolicy::kLeastLoaded;
    config.arrival_source = raw;
    auto result_or = RunCluster(config);
    ASSERT_TRUE(result_or.ok()) << result_or.status().message();
    const ClusterResult& r = result_or.value();

    EXPECT_GT(r.arrived, 0);
    EXPECT_EQ(r.arrived, r.completed + r.dropped + r.shed);
    EXPECT_EQ(r.client_retries, raw->retries_emitted());
    ASSERT_EQ(r.tenants.size(), 1u);
    EXPECT_EQ(r.tenants[0].client_retries, r.client_retries);
    EXPECT_TRUE(raw->Exhausted());
}

TEST(ClusterSourceMode, SourceRejectedWithPassthroughRouter)
{
    std::vector<load::GeneratorTenant> gts(1);
    gts[0].rate = 100.0;
    load::GeneratorSource source(gts, {}, {}, {}, 1, 1.0);
    ClusterConfig config;
    config.tenants = {AffineTenant("web", 100.0)};
    config.num_cells = 1;
    config.duration_s = 1.0;
    config.passthrough = true;
    config.arrival_source = &source;
    EXPECT_FALSE(RunCluster(config).ok());
}

// --- Scenario runner: determinism ------------------------------------

TEST(ScenarioRun, IdenticalRunsProduceBitIdenticalReports)
{
    const std::string text = R"(
scenario determinism-probe
duration 1.0
seed 77
cells 2
devices 1
window 0.05
tenant web load=0.3 deadline=0.05
arrivals poisson
flash-crowd tenant=web at=0.3 ramp=0.05 hold=0.2 mult=6
retry-storm timeout=0.01 backoff=exp-jitter base=0.02 max-retries=4
alert page slo.page{slo=web-avail} > 0.5 for 0
slo web-avail tenant=web avail=0.97 horizon=1 fast=0.1 slow=0.5
)";
    auto scenario_or = load::ParseScenario(text);
    ASSERT_TRUE(scenario_or.ok()) << scenario_or.status().message();
    const load::Scenario& scenario = scenario_or.value();

    std::string first;
    for (int run = 0; run < 2; ++run) {
        obs::MetricsRegistry registry;
        ScenarioRunOptions options;
        options.registry = &registry;
        auto outcome_or = RunScenario(scenario, options);
        ASSERT_TRUE(outcome_or.ok())
            << outcome_or.status().message();
        const ScenarioOutcome& outcome = outcome_or.value();
        EXPECT_TRUE(outcome.conservation_ok);
        const std::string json =
            obs::RunReportToJson(outcome.report);
        ASSERT_FALSE(json.empty());
        if (run == 0) {
            first = json;
        } else {
            EXPECT_EQ(first, json)
                << "same scenario, same seed, different artifact";
        }
    }
}

TEST(ScenarioRun, SeedOverrideChangesTheRun)
{
    const std::string text = R"(
scenario seed-probe
duration 1.0
seed 77
cells 1
devices 1
tenant web load=0.3 deadline=0.05
arrivals poisson
)";
    auto scenario_or = load::ParseScenario(text);
    ASSERT_TRUE(scenario_or.ok());
    obs::MetricsRegistry r1;
    obs::MetricsRegistry r2;
    ScenarioRunOptions a;
    a.registry = &r1;
    ScenarioRunOptions b;
    b.registry = &r2;
    b.override_seed = true;
    b.seed = 78;
    auto out_a = RunScenario(scenario_or.value(), a);
    auto out_b = RunScenario(scenario_or.value(), b);
    ASSERT_TRUE(out_a.ok());
    ASSERT_TRUE(out_b.ok());
    EXPECT_NE(out_a.value().cluster.arrived,
              out_b.value().cluster.arrived);
}

}  // namespace
}  // namespace t4i
