/**
 * @file
 * Tests for tail-latency forensics: the tail-based trace sampler
 * (src/obs/sampling.h), critical-path extraction and aggregation
 * (src/obs/critical_path.h), histogram exemplars joined to kept
 * traces, and the offline span-JSONL round trip. The load-bearing
 * invariants:
 *
 *   - same seed => bit-identical kept-trace-id set (the reservoir is
 *     the only randomized rule, and it draws from a named substream);
 *   - every SLO-violating / non-completed trace is kept, always;
 *   - a kept path tiles its root span exactly (segment boundaries are
 *     the original span-time doubles — the same conservation bar
 *     tests/test_spans.cpp holds the serving spans to);
 *   - every exported exemplar resolves to a kept trace by
 *     construction (BuildForensics force-keeps referenced traces
 *     before the kept set is frozen).
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "src/obs/critical_path.h"
#include "src/obs/registry.h"
#include "src/obs/report.h"
#include "src/obs/sampling.h"
#include "src/obs/spans.h"

namespace t4i {
namespace {

// --- synthetic trace builders --------------------------------------------

/** Clean completion: queue then execute, each half the latency. */
uint64_t
BoringTrace(obs::SpanCollector* spans, double start, double latency,
            const std::string& tenant = "api")
{
    const uint64_t trace = spans->NewTrace();
    const obs::SpanId root =
        spans->StartSpan(trace, 0, "request", start);
    spans->SetAttribute(root, "tenant", tenant);
    spans->SetAttribute(root, "outcome", "completed");
    const double mid = start + latency * 0.5;
    const obs::SpanId queue =
        spans->StartSpan(trace, root, "queue", start);
    spans->EndSpan(queue, mid);
    const obs::SpanId exec =
        spans->StartSpan(trace, root, "execute", mid);
    spans->SetAttribute(exec, "outcome", "completed");
    spans->EndSpan(exec, start + latency);
    spans->EndSpan(root, start + latency);
    return trace;
}

const obs::Span*
RootOf(const obs::SpanCollector& spans, uint64_t trace_id)
{
    for (const obs::Span& span : spans.spans()) {
        if (span.trace_id == trace_id && span.parent_id == 0) {
            return &span;
        }
    }
    return nullptr;
}

// --- TailSampler classification ------------------------------------------

TEST(TailSampler, KeepsEveryInterestingTrace)
{
    obs::SpanCollector spans;

    // Aborted root: kept via kOutcome.
    const uint64_t aborted = spans.NewTrace();
    obs::SpanId root = spans.StartSpan(aborted, 0, "request", 0.0);
    spans.SetAttribute(root, "outcome", "aborted");
    spans.EndSpan(root, 0.001);

    // Completed but SLO-missing root: kSlo.
    const uint64_t slo = spans.NewTrace();
    root = spans.StartSpan(slo, 0, "request", 0.0);
    spans.SetAttribute(root, "outcome", "completed");
    spans.SetAttribute(root, "slo_miss", "1");
    spans.EndSpan(root, 0.002);

    // Completed after a failed attempt: kRetry.
    const uint64_t retry = spans.NewTrace();
    root = spans.StartSpan(retry, 0, "request", 0.0);
    spans.SetAttribute(root, "outcome", "completed");
    const obs::SpanId failed =
        spans.StartSpan(retry, root, "execute", 0.0);
    spans.SetAttribute(failed, "outcome", "transient_error");
    spans.EndSpan(failed, 0.001);
    const obs::SpanId winner =
        spans.StartSpan(retry, root, "execute", 0.001);
    spans.SetAttribute(winner, "outcome", "completed");
    spans.EndSpan(winner, 0.003);
    spans.EndSpan(root, 0.003);

    // Completed with a loser->winner link: kHedge.
    const uint64_t hedge = spans.NewTrace();
    root = spans.StartSpan(hedge, 0, "request", 0.0);
    spans.SetAttribute(root, "outcome", "completed");
    const obs::SpanId hedge_winner =
        spans.StartSpan(hedge, root, "execute", 0.0);
    spans.SetAttribute(hedge_winner, "outcome", "completed");
    spans.SetAttribute(hedge_winner, "won", "1");
    spans.EndSpan(hedge_winner, 0.002);
    const obs::SpanId loser =
        spans.StartSpan(hedge, root, "execute", 0.0);
    spans.Link(loser, hedge_winner);
    spans.EndSpan(loser, 0.002);
    spans.EndSpan(root, 0.002);

    obs::TailSampler sampler;
    sampler.Classify(spans);

    ASSERT_EQ(sampler.seen(), 4);
    EXPECT_EQ(sampler.Verdict(aborted)->reason,
              obs::KeepReason::kOutcome);
    EXPECT_EQ(sampler.Verdict(slo)->reason, obs::KeepReason::kSlo);
    EXPECT_EQ(sampler.Verdict(retry)->reason,
              obs::KeepReason::kRetry);
    EXPECT_EQ(sampler.Verdict(hedge)->reason,
              obs::KeepReason::kHedge);
    for (uint64_t id : {aborted, slo, retry, hedge}) {
        EXPECT_TRUE(sampler.IsKept(id));
    }
}

TEST(TailSampler, RollingLatencyRuleArmsAfterWarmup)
{
    obs::SpanCollector spans;
    obs::TailSamplerOptions options;
    options.warmup = 16;
    options.reservoir = 0;  // isolate the latency rule

    // Strictly decreasing fast latencies: each completion lands below
    // the rolling P95 of its predecessors, so only the straggler
    // trips the latency rule.
    for (int i = 0; i < 20; ++i) {
        BoringTrace(&spans, 0.01 * i, 0.002 - 0.00001 * i);
    }
    const uint64_t slow = BoringTrace(&spans, 0.5, 0.010);

    obs::TailSampler sampler(options);
    sampler.Classify(spans);

    EXPECT_EQ(sampler.Verdict(slow)->reason,
              obs::KeepReason::kLatency);
    EXPECT_GT(sampler.threshold_s(), 0.0);
    // The fast completions stay unkept: no reservoir, under threshold.
    EXPECT_EQ(sampler.kept(), 1);
}

TEST(TailSampler, AlertWindowOverlapKeeps)
{
    obs::SpanCollector spans;
    obs::TailSamplerOptions options;
    options.reservoir = 0;
    const uint64_t inside = BoringTrace(&spans, 0.100, 0.001);
    const uint64_t outside = BoringTrace(&spans, 0.300, 0.001);

    obs::TailSampler sampler(options);
    sampler.AddAlertWindow(0.050, 0.200);
    sampler.Classify(spans);

    EXPECT_EQ(sampler.Verdict(inside)->reason,
              obs::KeepReason::kAlert);
    EXPECT_FALSE(sampler.IsKept(outside));
}

TEST(TailSampler, ReservoirIsSeedReproducible)
{
    obs::SpanCollector spans;
    for (int i = 0; i < 64; ++i) {
        BoringTrace(&spans, 0.01 * i, 0.001);
    }

    obs::TailSamplerOptions options;
    options.warmup = 1000;  // latency rule never arms
    options.reservoir = 8;

    auto kept_for_seed = [&](uint64_t seed) {
        obs::TailSamplerOptions o = options;
        o.seed = seed;
        obs::TailSampler sampler(o);
        sampler.Classify(spans);
        return sampler.KeptTraceIds();
    };

    const std::vector<uint64_t> a1 = kept_for_seed(7);
    const std::vector<uint64_t> a2 = kept_for_seed(7);
    const std::vector<uint64_t> b = kept_for_seed(8);

    EXPECT_EQ(a1, a2) << "same seed must give the same kept set";
    EXPECT_EQ(a1.size(), 8u);
    EXPECT_EQ(b.size(), 8u);
    EXPECT_NE(a1, b) << "reservoir must actually depend on the seed";
}

TEST(TailSampler, ClassifyIsIdempotentAndForceKeepUpgrades)
{
    obs::SpanCollector spans;
    obs::TailSamplerOptions options;
    options.reservoir = 0;
    const uint64_t boring = BoringTrace(&spans, 0.0, 0.001);

    obs::TailSampler sampler(options);
    sampler.Classify(spans);
    sampler.Classify(spans);  // no-op
    EXPECT_EQ(sampler.seen(), 1);
    EXPECT_FALSE(sampler.IsKept(boring));

    EXPECT_TRUE(
        sampler.ForceKeep(boring, obs::KeepReason::kExemplar));
    EXPECT_TRUE(sampler.IsKept(boring));
    EXPECT_EQ(sampler.Verdict(boring)->reason,
              obs::KeepReason::kExemplar);
    EXPECT_FALSE(
        sampler.ForceKeep(999999, obs::KeepReason::kExemplar));
}

// --- critical-path extraction --------------------------------------------

TEST(CriticalPath, SimpleTreeTilesExactly)
{
    obs::SpanCollector spans;
    const uint64_t trace = spans.NewTrace();
    const obs::SpanId root =
        spans.StartSpan(trace, 0, "request", 0.10);
    spans.SetAttribute(root, "tenant", "api");
    spans.SetAttribute(root, "outcome", "completed");
    const obs::SpanId queue =
        spans.StartSpan(trace, root, "queue", 0.10);
    spans.EndSpan(queue, 0.13);
    const obs::SpanId batch =
        spans.StartSpan(trace, root, "batch", 0.13);
    spans.EndSpan(batch, 0.14);
    const obs::SpanId exec =
        spans.StartSpan(trace, root, "execute", 0.14);
    spans.SetAttribute(exec, "outcome", "completed");
    spans.EndSpan(exec, 0.17);
    spans.EndSpan(root, 0.17);

    const obs::TracePath path =
        obs::ExtractCriticalPath(spans, *RootOf(spans, trace));

    EXPECT_TRUE(path.tiled);
    ASSERT_EQ(path.segments.size(), 3u);
    EXPECT_EQ(path.segments[0].component, "queue");
    EXPECT_EQ(path.segments[1].component, "batch");
    EXPECT_EQ(path.segments[2].component, "execute");
    // Bit-for-bit boundaries, not approximate ones.
    EXPECT_EQ(path.segments.front().start_s, 0.10);
    EXPECT_EQ(path.segments[0].end_s, path.segments[1].start_s);
    EXPECT_EQ(path.segments[1].end_s, path.segments[2].start_s);
    EXPECT_EQ(path.segments.back().end_s, 0.17);
}

TEST(CriticalPath, RetryTreeAttributesFailedAttemptAndGap)
{
    obs::SpanCollector spans;
    const uint64_t trace = spans.NewTrace();
    const obs::SpanId root =
        spans.StartSpan(trace, 0, "request", 0.0);
    spans.SetAttribute(root, "outcome", "completed");
    // First attempt fails...
    const obs::SpanId failed =
        spans.StartSpan(trace, root, "execute", 0.0);
    spans.SetAttribute(failed, "outcome", "transient_error");
    spans.EndSpan(failed, 0.010);
    // ...an unaccounted backoff gap [0.010, 0.015)...
    const obs::SpanId queue =
        spans.StartSpan(trace, root, "queue", 0.015);
    spans.EndSpan(queue, 0.020);
    // ...then the retry wins.
    const obs::SpanId exec =
        spans.StartSpan(trace, root, "execute", 0.020);
    spans.SetAttribute(exec, "outcome", "completed");
    spans.EndSpan(exec, 0.030);
    spans.EndSpan(root, 0.030);

    const obs::TracePath path =
        obs::ExtractCriticalPath(spans, *RootOf(spans, trace));

    EXPECT_TRUE(path.tiled);
    ASSERT_EQ(path.segments.size(), 4u);
    EXPECT_EQ(path.segments[0].component, "retry");
    EXPECT_EQ(path.segments[1].component, "backoff");
    EXPECT_EQ(path.segments[2].component, "queue");
    EXPECT_EQ(path.segments[3].component, "execute");
}

TEST(CriticalPath, HedgeWinnerEngineSpansSplitExecute)
{
    obs::SpanCollector spans;
    const uint64_t trace = spans.NewTrace();
    const obs::SpanId root =
        spans.StartSpan(trace, 0, "request", 0.0);
    spans.SetAttribute(root, "outcome", "completed");
    // Loser overlaps the winner; winner's engine sub-spans take
    // priority over both attempts' plain execute intervals.
    const obs::SpanId winner =
        spans.StartSpan(trace, root, "execute", 0.0);
    spans.SetAttribute(winner, "outcome", "completed");
    spans.SetAttribute(winner, "won", "1");
    const obs::SpanId mxu =
        spans.StartSpan(trace, winner, "execute/mxu", 0.0);
    spans.EndSpan(mxu, 0.006);
    const obs::SpanId vpu =
        spans.StartSpan(trace, winner, "execute/vpu", 0.006);
    spans.EndSpan(vpu, 0.010);
    spans.EndSpan(winner, 0.010);
    const obs::SpanId loser =
        spans.StartSpan(trace, root, "execute", 0.0);
    spans.Link(loser, winner);
    spans.EndSpan(loser, 0.004);
    spans.EndSpan(root, 0.010);

    const obs::TracePath path =
        obs::ExtractCriticalPath(spans, *RootOf(spans, trace));

    EXPECT_TRUE(path.tiled);
    ASSERT_EQ(path.segments.size(), 2u);
    EXPECT_EQ(path.segments[0].component, "mxu");
    EXPECT_EQ(path.segments[1].component, "vpu");
    EXPECT_EQ(path.segments[0].end_s, path.segments[1].start_s);
}

TEST(CriticalPath, EscapedChildBreaksTiling)
{
    obs::SpanCollector spans;
    const uint64_t trace = spans.NewTrace();
    const obs::SpanId root =
        spans.StartSpan(trace, 0, "request", 0.010);
    spans.SetAttribute(root, "outcome", "completed");
    // Child starts before its root: structurally broken tree.
    const obs::SpanId queue =
        spans.StartSpan(trace, root, "queue", 0.005);
    spans.EndSpan(queue, 0.020);
    spans.EndSpan(root, 0.020);

    const obs::TracePath path =
        obs::ExtractCriticalPath(spans, *RootOf(spans, trace));
    EXPECT_FALSE(path.tiled);
}

// --- band aggregation / tail differential --------------------------------

TEST(Summarize, TailDifferentialMath)
{
    // 100 completed verdicts, latencies 1..100 ms: the 1 ms path is
    // <= P50, the 100 ms path is >= P99.
    std::vector<obs::TraceVerdict> verdicts;
    for (int i = 1; i <= 100; ++i) {
        obs::TraceVerdict v;
        v.trace_id = static_cast<uint64_t>(i);
        v.outcome = "completed";
        v.latency_s = 0.001 * i;
        verdicts.push_back(v);
    }

    auto make_path = [](uint64_t id, double latency,
                        double queue_fraction) {
        obs::TracePath p;
        p.trace_id = id;
        p.outcome = "completed";
        p.latency_s = latency;
        const double split = latency * queue_fraction;
        p.segments.push_back(
            obs::PathSegment{"queue", 0.0, split});
        p.segments.push_back(
            obs::PathSegment{"execute", split, latency});
        p.tiled = true;
        return p;
    };
    const std::vector<obs::TracePath> paths = {
        make_path(1, 0.001, 0.25),   // p50 band: queue 25%
        make_path(100, 0.100, 0.90)  // p99 band: queue 90%
    };

    const obs::ReportCriticalPath section =
        obs::SummarizeCriticalPaths(paths, verdicts);

    const obs::ReportPathBand* p50 = nullptr;
    const obs::ReportPathBand* p99 = nullptr;
    for (const obs::ReportPathBand& band : section.bands) {
        ASSERT_EQ(band.tenant, "");
        if (band.band == "p50") p50 = &band;
        if (band.band == "p99") p99 = &band;
    }
    ASSERT_NE(p50, nullptr);
    ASSERT_NE(p99, nullptr);
    EXPECT_EQ(p50->traces, 1);
    EXPECT_EQ(p99->traces, 1);

    const obs::ReportPathDifferential* queue_diff = nullptr;
    for (const obs::ReportPathDifferential& d :
         section.differential) {
        if (d.component == "queue") queue_diff = &d;
    }
    ASSERT_NE(queue_diff, nullptr);
    EXPECT_NEAR(queue_diff->p50_fraction, 0.25, 1e-12);
    EXPECT_NEAR(queue_diff->p99_fraction, 0.90, 1e-12);
    EXPECT_NEAR(queue_diff->delta, 0.65, 1e-12);

    // Dominant tail component of the aggregate: queue.
    ASSERT_EQ(section.dominant.size(), 1u);
    EXPECT_EQ(section.dominant[0].first, "");
    EXPECT_EQ(section.dominant[0].second, "queue");
}

TEST(Summarize, EmptyTenantCountsOnceInAggregate)
{
    std::vector<obs::TraceVerdict> verdicts;
    obs::TraceVerdict v;
    v.trace_id = 1;
    v.outcome = "completed";
    v.latency_s = 0.001;
    verdicts.push_back(v);

    obs::TracePath p;
    p.trace_id = 1;
    p.latency_s = 0.001;
    p.segments.push_back(obs::PathSegment{"queue", 0.0, 0.001});
    p.tiled = true;

    const obs::ReportCriticalPath section =
        obs::SummarizeCriticalPaths({p}, verdicts);
    int64_t total_traces = 0;
    for (const obs::ReportPathBand& band : section.bands) {
        total_traces += band.traces;
    }
    EXPECT_EQ(total_traces, 1) << "one tenant-less path must appear "
                                  "in exactly one aggregate band";
}

// --- exemplar join / BuildForensics --------------------------------------

TEST(BuildForensics, ExemplarsAlwaysResolveToKeptTraces)
{
    obs::SpanCollector spans;
    obs::TailSamplerOptions options;
    options.reservoir = 0;  // the boring trace would not be kept
    const uint64_t boring = BoringTrace(&spans, 0.0, 0.001);

    obs::MetricsRegistry source;
    obs::HistogramMetric* hist =
        source.GetHistogram("lat", {{"tenant", "api"}});
    hist->Observe(0.001);
    hist->AttachExemplar(0.001, boring, 0.001);

    obs::MetricsRegistry sink;
    obs::TailSampler sampler(options);
    const obs::ForensicsResult forensics =
        obs::BuildForensics(spans, sampler, &source, &sink);

    // The referenced trace was force-kept before the set froze.
    EXPECT_TRUE(sampler.IsKept(boring));
    ASSERT_EQ(forensics.exemplars.size(), 1u);
    EXPECT_EQ(forensics.exemplars[0].trace_id, boring);
    EXPECT_EQ(forensics.exemplars[0].reason, "exemplar");
    EXPECT_EQ(forensics.exemplars[0].metric, "lat{tenant=api}");
    const std::vector<uint64_t>& kept =
        forensics.critical_path.kept_trace_ids;
    for (const obs::ReportExemplar& e : forensics.exemplars) {
        EXPECT_TRUE(std::binary_search(kept.begin(), kept.end(),
                                       e.trace_id));
    }

    EXPECT_EQ(sink.GetCounter("obs.exemplar.attached")->value(), 1);
    EXPECT_EQ(sink.GetCounter("obs.exemplar.exported")->value(), 1);
    EXPECT_EQ(sink.GetCounter("obs.sample.seen")->value(), 1);
    EXPECT_EQ(sink.GetCounter("obs.sample.kept")->value(), 1);
}

TEST(BuildForensics, UnresolvableExemplarIsDroppedNotExported)
{
    obs::SpanCollector spans;
    BoringTrace(&spans, 0.0, 0.001);

    obs::MetricsRegistry source;
    obs::HistogramMetric* hist = source.GetHistogram("lat");
    hist->Observe(0.001);
    hist->AttachExemplar(0.001, /*trace_id=*/424242, 0.001);

    obs::MetricsRegistry sink;
    obs::TailSampler sampler;
    const obs::ForensicsResult forensics =
        obs::BuildForensics(spans, sampler, &source, &sink);

    EXPECT_TRUE(forensics.exemplars.empty());
    EXPECT_EQ(sink.GetCounter("obs.exemplar.attached")->value(), 1);
    EXPECT_EQ(sink.GetCounter("obs.exemplar.exported")->value(), 0);
}

TEST(BuildForensics, NullExportRegistryCreatesNoInstruments)
{
    obs::SpanCollector spans;
    BoringTrace(&spans, 0.0, 0.001);
    obs::TailSampler sampler;
    const obs::ForensicsResult forensics =
        obs::BuildForensics(spans, sampler, nullptr, nullptr);
    EXPECT_EQ(forensics.critical_path.traces, 1);
    EXPECT_FALSE(obs::ForensicsJson(forensics).empty());
}

// --- offline round trip ---------------------------------------------------

TEST(Forensics, JsonlRoundTripGivesIdenticalForensics)
{
    obs::SpanCollector spans;
    for (int i = 0; i < 40; ++i) {
        BoringTrace(&spans, 0.01 * i, 0.001 + 0.0001 * (i % 7));
    }
    // One slow straggler and one aborted request for variety.
    BoringTrace(&spans, 0.9, 0.050);
    const uint64_t aborted = spans.NewTrace();
    const obs::SpanId root =
        spans.StartSpan(aborted, 0, "request", 0.95);
    spans.SetAttribute(root, "outcome", "aborted");
    spans.EndSpan(root, 0.951);

    auto rebuilt = obs::SpanCollectorFromJsonl(spans.ToJsonl());
    ASSERT_TRUE(rebuilt.ok()) << rebuilt.status().message();

    obs::TailSamplerOptions options;
    options.seed = 1007;
    obs::TailSampler direct(options);
    obs::TailSampler offline(options);
    const obs::ForensicsResult a =
        obs::BuildForensics(spans, direct, nullptr, nullptr);
    const obs::ForensicsResult b =
        obs::BuildForensics(rebuilt.value(), offline, nullptr,
                            nullptr);

    EXPECT_EQ(direct.KeptTraceIds(), offline.KeptTraceIds());
    EXPECT_EQ(obs::ForensicsJson(a), obs::ForensicsJson(b))
        << "offline forensics must be bit-identical to inline";
}

TEST(Forensics, ReportSectionsSurviveWriteRead)
{
    obs::SpanCollector spans;
    for (int i = 0; i < 8; ++i) {
        BoringTrace(&spans, 0.01 * i, 0.001 * (i + 1));
    }
    obs::TailSampler sampler;
    const obs::ForensicsResult forensics =
        obs::BuildForensics(spans, sampler, nullptr, nullptr);

    obs::RunReport report;
    report.meta.command = "forensics-roundtrip";
    obs::AttachForensics(forensics, &report);
    ASSERT_EQ(report.schema_version, obs::kRunReportSchemaVersion);

    const std::string path =
        testing::TempDir() + "forensics_report.json";
    ASSERT_TRUE(obs::WriteRunReport(report, path).ok());
    auto read = obs::ReadRunReport(path);
    ASSERT_TRUE(read.ok()) << read.status().message();

    EXPECT_EQ(read.value().critical_path.kept_trace_ids,
              report.critical_path.kept_trace_ids);
    EXPECT_EQ(read.value().critical_path.traces,
              report.critical_path.traces);
    EXPECT_EQ(read.value().critical_path.bands.size(),
              report.critical_path.bands.size());
    EXPECT_EQ(read.value().exemplars.size(), report.exemplars.size());
    EXPECT_EQ(obs::RunReportToJson(read.value()),
              obs::RunReportToJson(report))
        << "forensic sections must re-serialize bit-identically";
}

}  // namespace
}  // namespace t4i
