/**
 * @file
 * Unit tests for src/common: status, strings, stats, rng, table, units.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/common/status.h"
#include "src/common/strings.h"
#include "src/common/table.h"
#include "src/common/units.h"

namespace t4i {
namespace {

// --- Status ---------------------------------------------------------------

TEST(Status, DefaultIsOk)
{
    Status s;
    EXPECT_TRUE(s.ok());
    EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, ErrorCarriesCodeAndMessage)
{
    Status s = Status::InvalidArgument("bad thing");
    EXPECT_FALSE(s.ok());
    EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
    EXPECT_EQ(s.message(), "bad thing");
    EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad thing");
}

TEST(Status, AllConstructorsProduceMatchingCodes)
{
    EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
    EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
    EXPECT_EQ(Status::FailedPrecondition("x").code(),
              StatusCode::kFailedPrecondition);
    EXPECT_EQ(Status::ResourceExhausted("x").code(),
              StatusCode::kResourceExhausted);
    EXPECT_EQ(Status::Unimplemented("x").code(),
              StatusCode::kUnimplemented);
    EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusOr, HoldsValue)
{
    StatusOr<int> v = 42;
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(v.value(), 42);
    EXPECT_TRUE(v.status().ok());
}

TEST(StatusOr, HoldsError)
{
    StatusOr<int> v = Status::NotFound("gone");
    ASSERT_FALSE(v.ok());
    EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOr, ConsumeValueMoves)
{
    StatusOr<std::string> v = std::string("payload");
    std::string out = std::move(v).ConsumeValue();
    EXPECT_EQ(out, "payload");
}

// --- Strings ----------------------------------------------------------------

TEST(Strings, StrFormatBasics)
{
    EXPECT_EQ(StrFormat("x=%d y=%.1f", 3, 2.5), "x=3 y=2.5");
    EXPECT_EQ(StrFormat("%s", ""), "");
}

TEST(Strings, StrJoin)
{
    EXPECT_EQ(StrJoin({"a", "b", "c"}, ", "), "a, b, c");
    EXPECT_EQ(StrJoin({}, ","), "");
    EXPECT_EQ(StrJoin({"solo"}, ","), "solo");
}

TEST(Strings, HumanCount)
{
    EXPECT_EQ(HumanCount(1.5e12), "1.50 T");
    EXPECT_EQ(HumanCount(2e9), "2.00 G");
    EXPECT_EQ(HumanCount(3.25e6), "3.25 M");
    EXPECT_EQ(HumanCount(999.0), "999.00");
}

TEST(Strings, HumanBytes)
{
    EXPECT_EQ(HumanBytes(1024.0), "1.0 KiB");
    EXPECT_EQ(HumanBytes(128.0 * (1 << 20)), "128.0 MiB");
    EXPECT_EQ(HumanBytes(8.0 * (1ull << 30)), "8.0 GiB");
    EXPECT_EQ(HumanBytes(12.0), "12.0 B");
}

TEST(Strings, HumanSeconds)
{
    EXPECT_EQ(HumanSeconds(2.0), "2.00 s");
    EXPECT_EQ(HumanSeconds(3.5e-3), "3.50 ms");
    EXPECT_EQ(HumanSeconds(7.2e-6), "7.20 us");
    EXPECT_EQ(HumanSeconds(30e-9), "30.00 ns");
}

// --- Units -----------------------------------------------------------------

TEST(Units, CeilDiv)
{
    EXPECT_EQ(CeilDiv(0, 4), 0);
    EXPECT_EQ(CeilDiv(1, 4), 1);
    EXPECT_EQ(CeilDiv(4, 4), 1);
    EXPECT_EQ(CeilDiv(5, 4), 2);
    EXPECT_EQ(CeilDiv(128, 128), 1);
    EXPECT_EQ(CeilDiv(129, 128), 2);
}

TEST(Units, RoundUp)
{
    EXPECT_EQ(RoundUp(0, 8), 0);
    EXPECT_EQ(RoundUp(1, 8), 8);
    EXPECT_EQ(RoundUp(8, 8), 8);
    EXPECT_EQ(RoundUp(9, 8), 16);
}

TEST(Units, Constants)
{
    EXPECT_EQ(kMiB, 1024 * 1024);
    EXPECT_EQ(kGiB, 1024 * kMiB);
    EXPECT_DOUBLE_EQ(kGHz, 1e9);
}

// --- RunningStat ------------------------------------------------------------

TEST(RunningStat, EmptyIsZero)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.Variance(), 0.0);
}

TEST(RunningStat, MeanMinMax)
{
    RunningStat s;
    for (double x : {3.0, 1.0, 4.0, 1.0, 5.0}) s.Add(x);
    EXPECT_EQ(s.count(), 5);
    EXPECT_DOUBLE_EQ(s.mean(), 2.8);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 5.0);
    EXPECT_DOUBLE_EQ(s.sum(), 14.0);
}

TEST(RunningStat, VarianceMatchesDirectFormula)
{
    RunningStat s;
    const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
    for (double x : xs) s.Add(x);
    // Direct two-pass sample variance.
    double mean = 0.0;
    for (double x : xs) mean += x;
    mean /= static_cast<double>(xs.size());
    double var = 0.0;
    for (double x : xs) var += (x - mean) * (x - mean);
    var /= static_cast<double>(xs.size() - 1);
    EXPECT_NEAR(s.Variance(), var, 1e-12);
    EXPECT_NEAR(s.StdDev(), std::sqrt(var), 1e-12);
}

// --- PercentileTracker --------------------------------------------------------

TEST(PercentileTracker, ExactPercentiles)
{
    PercentileTracker t;
    for (int i = 1; i <= 100; ++i) t.Add(static_cast<double>(i));
    EXPECT_NEAR(t.Percentile(0), 1.0, 1e-9);
    EXPECT_NEAR(t.Percentile(100), 100.0, 1e-9);
    EXPECT_NEAR(t.Percentile(50), 50.5, 1e-9);
    EXPECT_NEAR(t.Percentile(99), 99.01, 1e-9);
    EXPECT_NEAR(t.Mean(), 50.5, 1e-9);
}

TEST(PercentileTracker, InterleavedAddAndQuery)
{
    PercentileTracker t;
    t.Add(10.0);
    EXPECT_DOUBLE_EQ(t.Percentile(50), 10.0);
    t.Add(20.0);
    EXPECT_DOUBLE_EQ(t.Percentile(50), 15.0);
    t.Add(0.0);
    EXPECT_DOUBLE_EQ(t.Percentile(50), 10.0);
}

TEST(PercentileTracker, EmptyReturnsZero)
{
    PercentileTracker t;
    EXPECT_DOUBLE_EQ(t.Percentile(99), 0.0);
    EXPECT_DOUBLE_EQ(t.Mean(), 0.0);
}

// --- Histogram ----------------------------------------------------------------

TEST(Histogram, BucketsAndTails)
{
    Histogram h(0.0, 10.0, 5);
    h.Add(-1.0);   // underflow
    h.Add(0.0);    // bucket 0
    h.Add(1.9);    // bucket 0
    h.Add(2.0);    // bucket 1
    h.Add(9.99);   // bucket 4
    h.Add(10.0);   // overflow
    EXPECT_EQ(h.underflow(), 1);
    EXPECT_EQ(h.overflow(), 1);
    EXPECT_EQ(h.bucket_count(0), 2);
    EXPECT_EQ(h.bucket_count(1), 1);
    EXPECT_EQ(h.bucket_count(4), 1);
    EXPECT_EQ(h.total(), 6);
    EXPECT_DOUBLE_EQ(h.BucketLow(1), 2.0);
}

// --- GeoMean -------------------------------------------------------------------

TEST(GeoMean, Basics)
{
    EXPECT_DOUBLE_EQ(GeoMean({}), 0.0);
    EXPECT_DOUBLE_EQ(GeoMean({4.0}), 4.0);
    EXPECT_NEAR(GeoMean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(GeoMean({2.0, 8.0}), 4.0, 1e-12);
}

// --- Rng -------------------------------------------------------------------------

TEST(Rng, DeterministicForSeed)
{
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(a.NextU64(), b.NextU64());
    }
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.NextU64() == b.NextU64()) ++same;
    }
    EXPECT_LT(same, 2);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        double x = rng.NextDouble();
        EXPECT_GE(x, 0.0);
        EXPECT_LT(x, 1.0);
    }
}

TEST(Rng, UniformMeanConverges)
{
    Rng rng(11);
    RunningStat s;
    for (int i = 0; i < 50000; ++i) s.Add(rng.NextUniform(2.0, 4.0));
    EXPECT_NEAR(s.mean(), 3.0, 0.02);
    EXPECT_GE(s.min(), 2.0);
    EXPECT_LT(s.max(), 4.0);
}

TEST(Rng, ExponentialMeanIsInverseRate)
{
    Rng rng(13);
    RunningStat s;
    const double lambda = 50.0;
    for (int i = 0; i < 50000; ++i) s.Add(rng.NextExponential(lambda));
    EXPECT_NEAR(s.mean(), 1.0 / lambda, 0.001);
}

TEST(Rng, GaussianMoments)
{
    Rng rng(17);
    RunningStat s;
    for (int i = 0; i < 50000; ++i) s.Add(rng.NextGaussian());
    EXPECT_NEAR(s.mean(), 0.0, 0.02);
    EXPECT_NEAR(s.StdDev(), 1.0, 0.02);
}

TEST(Rng, BoundedStaysInBound)
{
    Rng rng(19);
    std::set<uint64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        uint64_t v = rng.NextBounded(10);
        EXPECT_LT(v, 10u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 10u);  // all values hit
}

TEST(Rng, ReseedRestartsStream)
{
    Rng rng(23);
    uint64_t first = rng.NextU64();
    rng.NextU64();
    rng.Reseed(23);
    EXPECT_EQ(rng.NextU64(), first);
}

// --- TablePrinter -------------------------------------------------------------

TEST(TablePrinter, RendersAlignedColumns)
{
    TablePrinter t({"name", "value"});
    t.AddRow({"x", "1"});
    t.AddRow({"longer", "22"});
    std::string out = t.Render();
    EXPECT_NE(out.find("name    value"), std::string::npos);
    EXPECT_NE(out.find("longer  22"), std::string::npos);
    EXPECT_NE(out.find("-----"), std::string::npos);
}

TEST(TablePrinter, RendersCsv)
{
    TablePrinter t({"a", "b"});
    t.AddRow({"1", "2"});
    EXPECT_EQ(t.RenderCsv(), "a,b\n1,2\n");
}

}  // namespace
}  // namespace t4i
