/**
 * @file
 * Tests for the chip-config text format.
 */
#include <gtest/gtest.h>

#include <cstdio>

#include "src/arch/catalog.h"
#include "src/arch/chip_io.h"

namespace t4i {
namespace {

TEST(ChipIo, RoundTripsEveryCatalogChip)
{
    for (const auto& chip : ChipCatalog()) {
        auto parsed = ChipFromText(ChipToText(chip));
        ASSERT_TRUE(parsed.ok())
            << chip.name << ": " << parsed.status().ToString();
        const ChipConfig& c = parsed.value();
        EXPECT_EQ(c.name, chip.name);
        EXPECT_EQ(c.tech_nm, chip.tech_nm);
        EXPECT_DOUBLE_EQ(c.clock_hz, chip.clock_hz);
        EXPECT_EQ(c.mxu.rows, chip.mxu.rows);
        EXPECT_EQ(c.mxu.count, chip.mxu.count);
        EXPECT_DOUBLE_EQ(c.mxu.int8_rate, chip.mxu.int8_rate);
        EXPECT_EQ(c.cmem_bytes, chip.cmem_bytes);
        EXPECT_DOUBLE_EQ(c.dram_bw_Bps, chip.dram_bw_Bps);
        EXPECT_DOUBLE_EQ(c.tdp_w, chip.tdp_w);
        EXPECT_EQ(c.cooling, chip.cooling);
        EXPECT_EQ(c.supports_bf16, chip.supports_bf16);
        EXPECT_EQ(c.flexible_vpu, chip.flexible_vpu);
        EXPECT_DOUBLE_EQ(c.PeakFlops(DType::kBf16),
                         chip.PeakFlops(DType::kBf16));
    }
}

TEST(ChipIo, DeltaFileKeepsTpu4iDefaults)
{
    auto chip = ChipFromText("# bigger CMEM variant\n"
                             "name = v4i-256\n"
                             "cmem_bytes = 268435456\n").value();
    EXPECT_EQ(chip.name, "v4i-256");
    EXPECT_EQ(chip.cmem_bytes, 268435456LL);
    // Everything else is TPUv4i.
    EXPECT_DOUBLE_EQ(chip.tdp_w, 175.0);
    EXPECT_EQ(chip.mxu.count, 4);
}

TEST(ChipIo, RejectsUnknownKey)
{
    auto result = ChipFromText("frobnication = 9\n");
    ASSERT_FALSE(result.ok());
    EXPECT_NE(result.status().message().find("unknown key"),
              std::string::npos);
}

TEST(ChipIo, RejectsBadValues)
{
    EXPECT_FALSE(ChipFromText("tdp_w = warm\n").ok());
    EXPECT_FALSE(ChipFromText("cooling = cryo\n").ok());
    EXPECT_FALSE(ChipFromText("supports_int8 = yes\n").ok());
    EXPECT_FALSE(ChipFromText("tdp_w\n").ok());
    EXPECT_FALSE(ChipFromText("clock_hz = 0\n").ok());
}

TEST(ChipIo, CommentsAndBlanksIgnored)
{
    auto chip = ChipFromText("\n  # comment\n\n  year = 2025 \n").value();
    EXPECT_EQ(chip.year, 2025);
}

TEST(ChipIo, FileRoundTrip)
{
    const std::string path = "/tmp/t4i_chip_io_test.cfg";
    ASSERT_TRUE(SaveChipFile(Tpu_v3(), path).ok());
    auto loaded = LoadChipFile(path);
    ASSERT_TRUE(loaded.ok());
    EXPECT_EQ(loaded.value().name, "TPUv3");
    EXPECT_DOUBLE_EQ(loaded.value().dram_bw_Bps, 900e9);
    std::remove(path.c_str());
    EXPECT_FALSE(LoadChipFile(path).ok());
}

}  // namespace
}  // namespace t4i
