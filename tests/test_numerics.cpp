/**
 * @file
 * Unit and property tests for bf16 conversion and int8 quantization —
 * the numerics behind Lessons 4 and 6.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "src/common/rng.h"
#include "src/numerics/bfloat16.h"
#include "src/numerics/quantize.h"

namespace t4i {
namespace {

// --- BFloat16 ----------------------------------------------------------------

TEST(BFloat16, ExactForRepresentableValues)
{
    // Values with <= 7 mantissa bits survive the round trip exactly.
    for (float v : {0.0f, 1.0f, -1.0f, 0.5f, 2.0f, -3.5f, 128.0f,
                    0.015625f, 65536.0f}) {
        EXPECT_EQ(Bf16Round(v), v) << v;
    }
}

TEST(BFloat16, RoundsToNearestEven)
{
    // 1 + 2^-8 is exactly between bf16(1.0) and the next value
    // 1 + 2^-7; round-to-even picks 1.0 (even mantissa).
    const float halfway = 1.0f + std::ldexp(1.0f, -8);
    EXPECT_EQ(Bf16Round(halfway), 1.0f);
    // Slightly above the midpoint rounds up.
    const float above = 1.0f + std::ldexp(1.0f, -8) * 1.001f;
    EXPECT_EQ(Bf16Round(above), 1.0f + std::ldexp(1.0f, -7));
}

TEST(BFloat16, PreservesSign)
{
    EXPECT_LT(Bf16Round(-0.3f), 0.0f);
    EXPECT_GT(Bf16Round(0.3f), 0.0f);
}

TEST(BFloat16, KeepsWideExponentRange)
{
    // The whole point of bf16 (vs fp16): fp32's exponent range survives.
    EXPECT_FALSE(std::isinf(Bf16Round(1e38f)));
    EXPECT_GT(Bf16Round(1e38f), 9e37f);
    EXPECT_GT(Bf16Round(1e-38f), 0.0f);
}

TEST(BFloat16, NanStaysNan)
{
    EXPECT_TRUE(std::isnan(
        Bf16Round(std::numeric_limits<float>::quiet_NaN())));
}

TEST(BFloat16, InfinityStaysInfinity)
{
    EXPECT_TRUE(std::isinf(
        Bf16Round(std::numeric_limits<float>::infinity())));
}

TEST(BFloat16, RelativeErrorBounded)
{
    // Max relative error of RNE to 8-bit significand is 2^-8.
    Rng rng(42);
    for (int i = 0; i < 10000; ++i) {
        const auto v = static_cast<float>(rng.NextUniform(-1e6, 1e6));
        if (v == 0.0f) continue;
        const float r = Bf16Round(v);
        EXPECT_LE(std::fabs(r - v) / std::fabs(v), 1.0f / 256.0f) << v;
    }
}

TEST(BFloat16, BitsRoundTrip)
{
    BFloat16 b(1.5f);
    EXPECT_EQ(BFloat16::FromBits(b.bits()), b);
    EXPECT_EQ(BFloat16::FromBits(b.bits()).ToFloat(), 1.5f);
}

// --- Quantization ----------------------------------------------------------------

TEST(Quantize, SymmetricZeroPointIsZero)
{
    QuantParams p = ChooseQuantParams({-2.0f, 0.5f, 1.0f},
                                      QuantScheme::kSymmetric);
    EXPECT_EQ(p.zero_point, 0);
    EXPECT_NEAR(p.scale, 2.0 / 127.0, 1e-9);
}

TEST(Quantize, AsymmetricCoversRange)
{
    std::vector<float> data = {0.0f, 10.0f};
    QuantParams p = ChooseQuantParams(data, QuantScheme::kAsymmetric);
    auto q = QuantizeInt8(data, p);
    auto d = DequantizeInt8(q, p);
    EXPECT_NEAR(d[0], 0.0f, 1e-6);   // zero must be exactly representable
    EXPECT_NEAR(d[1], 10.0f, p.scale);
}

TEST(Quantize, RoundTripErrorBoundedByHalfScale)
{
    Rng rng(7);
    std::vector<float> data(1000);
    for (auto& x : data) {
        x = static_cast<float>(rng.NextUniform(-3.0, 3.0));
    }
    QuantParams p = ChooseQuantParams(data, QuantScheme::kSymmetric);
    auto rt = DequantizeInt8(QuantizeInt8(data, p), p);
    for (size_t i = 0; i < data.size(); ++i) {
        EXPECT_LE(std::fabs(rt[i] - data[i]), p.scale * 0.5 + 1e-6);
    }
}

TEST(Quantize, SaturatesOutliers)
{
    QuantParams p{0.1, 0};
    auto q = QuantizeInt8({100.0f, -100.0f}, p);
    EXPECT_EQ(q[0], 127);
    EXPECT_EQ(q[1], -128);
}

TEST(Quantize, ConstantDataHasZeroError)
{
    std::vector<float> data(10, 0.0f);
    auto rt = FakeQuantInt8(data, QuantScheme::kSymmetric);
    for (float v : rt) EXPECT_EQ(v, 0.0f);
}

TEST(Quantize, PerChannelNoWorseThanPerTensor)
{
    // Two rows with very different ranges: per-channel scales must give
    // lower (or equal) RMS error than one shared scale.
    Rng rng(13);
    const int64_t rows = 2;
    const int64_t cols = 256;
    std::vector<float> data(static_cast<size_t>(rows * cols));
    for (int64_t c = 0; c < cols; ++c) {
        data[static_cast<size_t>(c)] =
            static_cast<float>(rng.NextUniform(-100.0, 100.0));
        data[static_cast<size_t>(cols + c)] =
            static_cast<float>(rng.NextUniform(-0.1, 0.1));
    }
    auto per_tensor = FakeQuantInt8(data, QuantScheme::kSymmetric);
    auto per_channel = FakeQuantInt8PerChannel(
        data, rows, cols, QuantScheme::kSymmetric);
    auto e_tensor = ComputeError(data, per_tensor).value();
    auto e_channel = ComputeError(data, per_channel).value();
    EXPECT_LT(e_channel.rms_error, e_tensor.rms_error);
}

TEST(ComputeError, RejectsMismatchedSizes)
{
    EXPECT_FALSE(ComputeError({1.0f}, {1.0f, 2.0f}).ok());
    EXPECT_FALSE(ComputeError({}, {}).ok());
}

TEST(ComputeError, ExactMatchHasHighSqnr)
{
    std::vector<float> x = {1.0f, 2.0f, 3.0f};
    auto e = ComputeError(x, x).value();
    EXPECT_EQ(e.max_abs_error, 0.0);
    EXPECT_EQ(e.rms_error, 0.0);
    EXPECT_GE(e.sqnr_db, 100.0);
}

TEST(ComputeError, KnownValues)
{
    auto e = ComputeError({1.0f, -1.0f}, {1.5f, -1.5f}).value();
    EXPECT_NEAR(e.max_abs_error, 0.5, 1e-9);
    EXPECT_NEAR(e.mean_abs_error, 0.5, 1e-9);
    EXPECT_NEAR(e.rms_error, 0.5, 1e-9);
    // SQNR = 10*log10(2 / 0.5) = 10*log10(4) ~ 6.02 dB
    EXPECT_NEAR(e.sqnr_db, 6.0206, 1e-3);
}

// --- Property sweep: bf16 beats int8 on wide-dynamic-range data (Lesson 6) ---

class DynamicRangeSweep : public ::testing::TestWithParam<double> {};

TEST_P(DynamicRangeSweep, Bf16SqnrExceedsInt8OnLogNormalData)
{
    const double sigma = GetParam();
    Rng rng(101);
    std::vector<float> data(4096);
    for (auto& x : data) {
        // Log-normal magnitudes: large dynamic range as sigma grows.
        const double mag = std::exp(rng.NextGaussian() * sigma);
        x = static_cast<float>(rng.NextBool(0.5) ? mag : -mag);
    }
    std::vector<float> bf(data.size());
    for (size_t i = 0; i < data.size(); ++i) bf[i] = Bf16Round(data[i]);
    auto int8 = FakeQuantInt8(data, QuantScheme::kSymmetric);

    const double bf_sqnr = ComputeError(data, bf).value().sqnr_db;
    const double i8_sqnr = ComputeError(data, int8).value().sqnr_db;

    // bf16 has per-value exponents, so its SQNR is flat (~40 dB)
    // regardless of dynamic range; int8's single scale collapses.
    EXPECT_GT(bf_sqnr, 35.0);
    if (sigma >= 1.0) {
        EXPECT_GT(bf_sqnr, i8_sqnr);
    }
}

INSTANTIATE_TEST_SUITE_P(Sigmas, DynamicRangeSweep,
                         ::testing::Values(0.5, 1.0, 2.0, 3.0, 4.0));

}  // namespace
}  // namespace t4i
