/**
 * @file
 * Tests for the serving simulator (Lessons 7 and 10) and the latency
 * table.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "src/serving/latency_table.h"
#include "src/serving/server.h"

namespace t4i {
namespace {

/** A simple affine device model: fixed cost + per-sample cost. */
std::function<double(int64_t)>
AffineLatency(double fixed_s, double per_sample_s)
{
    return [=](int64_t batch) {
        return fixed_s + per_sample_s * static_cast<double>(batch);
    };
}

TenantConfig
Tenant(const std::string& name, double rate, double slo_s = 0.010)
{
    TenantConfig t;
    t.name = name;
    t.latency_s = AffineLatency(1e-3, 1e-4);
    t.max_batch = 32;
    t.slo_s = slo_s;
    t.arrival_rate = rate;
    return t;
}

// --- LatencyTable ---------------------------------------------------------------

TEST(LatencyTable, InterpolatesBetweenPoints)
{
    LatencyTable t;
    t.AddPoint(1, 1.0);
    t.AddPoint(3, 3.0);
    EXPECT_DOUBLE_EQ(t.Eval(2), 2.0);
    EXPECT_DOUBLE_EQ(t.Eval(1), 1.0);
    EXPECT_DOUBLE_EQ(t.Eval(3), 3.0);
}

TEST(LatencyTable, ClampsOutsideRange)
{
    LatencyTable t;
    t.AddPoint(2, 5.0);
    t.AddPoint(4, 9.0);
    EXPECT_DOUBLE_EQ(t.Eval(1), 5.0);
    EXPECT_DOUBLE_EQ(t.Eval(100), 9.0);
    EXPECT_EQ(t.max_batch(), 4);
}

TEST(LatencyTable, MaxBatchUnderSlo)
{
    LatencyTable t;
    t.AddPoint(1, 1.0);
    t.AddPoint(100, 100.0);  // latency == batch
    EXPECT_EQ(t.MaxBatchUnderSlo(50.0), 50);
    EXPECT_EQ(t.MaxBatchUnderSlo(100.0), 100);
    EXPECT_EQ(t.MaxBatchUnderSlo(0.5), 0);
}

TEST(LatencyTable, ThroughputAt)
{
    LatencyTable t;
    t.AddPoint(1, 0.001);
    t.AddPoint(10, 0.002);
    EXPECT_NEAR(t.ThroughputAt(10), 5000.0, 1e-6);
    EXPECT_GT(t.ThroughputAt(10), t.ThroughputAt(1));
}

class SloSweep : public ::testing::TestWithParam<double> {};

TEST_P(SloSweep, MaxBatchRespectsSloExactly)
{
    LatencyTable t;
    // Convex-ish latency curve.
    for (int64_t b : {1, 2, 4, 8, 16, 32, 64}) {
        t.AddPoint(b, 0.5e-3 + 0.2e-3 * static_cast<double>(b));
    }
    const double slo = GetParam();
    const int64_t best = t.MaxBatchUnderSlo(slo);
    if (best > 0) {
        EXPECT_LE(t.Eval(best), slo + 1e-12);
    }
    if (best < t.max_batch()) {
        EXPECT_GT(t.Eval(best + 1), slo);
    }
}

INSTANTIATE_TEST_SUITE_P(Slos, SloSweep,
                         ::testing::Values(0.4e-3, 1e-3, 2e-3, 5e-3,
                                           10e-3, 20e-3));

// --- RunServing --------------------------------------------------------------------

TEST(Serving, RejectsBadConfig)
{
    EXPECT_FALSE(RunServing({}, 1.0, 1).ok());
    TenantConfig t = Tenant("x", 10.0);
    EXPECT_FALSE(RunServing({t}, -1.0, 1).ok());
    t.latency_s = nullptr;
    EXPECT_FALSE(RunServing({t}, 1.0, 1).ok());
}

TEST(Serving, ZeroDurationRunReportsZerosNotNaNs)
{
    // A zero-length arrival window is legal and sees zero arrivals;
    // every normalised statistic must come back as a finite zero, not
    // a 0/0 NaN from the duration division.
    auto result_or = RunServingCell({Tenant("x", 100.0)}, 2, 0.0, 42);
    ASSERT_TRUE(result_or.ok()) << result_or.status().ToString();
    const ServingResult& r = result_or.value();
    EXPECT_EQ(r.duration_s, 0.0);
    EXPECT_EQ(r.device_busy_fraction, 0.0);
    EXPECT_EQ(r.host_busy_fraction, 0.0);
    EXPECT_EQ(r.switch_overhead_fraction, 0.0);
    EXPECT_EQ(r.availability, 1.0);
    ASSERT_EQ(r.tenants.size(), 1u);
    const TenantStats& s = r.tenants[0];
    EXPECT_EQ(s.arrived, 0);
    EXPECT_EQ(s.completed, 0);
    EXPECT_EQ(s.throughput_rps, 0.0);
    EXPECT_EQ(s.goodput_rps, 0.0);
    EXPECT_TRUE(std::isfinite(s.mean_latency_s));
    EXPECT_TRUE(std::isfinite(s.slo_miss_fraction));
}

TEST(Serving, DeterministicForSeed)
{
    auto a = RunServing({Tenant("x", 200.0)}, 5.0, 42).value();
    auto b = RunServing({Tenant("x", 200.0)}, 5.0, 42).value();
    EXPECT_EQ(a.tenants[0].completed, b.tenants[0].completed);
    EXPECT_EQ(a.tenants[0].p99_latency_s, b.tenants[0].p99_latency_s);
}

TEST(Serving, CompletesAllArrivals)
{
    auto r = RunServing({Tenant("x", 300.0)}, 10.0, 7).value();
    // ~3000 expected arrivals, all must complete (queue drains).
    EXPECT_NEAR(static_cast<double>(r.tenants[0].completed), 3000.0,
                300.0);
    EXPECT_NEAR(r.tenants[0].throughput_rps, 300.0, 35.0);
}

TEST(Serving, LowLoadLatencyNearExecutionTime)
{
    // At 1 req/s vs ~1.1 ms service, queueing is negligible; mean
    // latency approaches exec(1).
    auto r = RunServing({Tenant("x", 1.0)}, 200.0, 11).value();
    EXPECT_NEAR(r.tenants[0].mean_latency_s, 1.1e-3, 0.4e-3);
    EXPECT_NEAR(r.tenants[0].mean_batch, 1.0, 0.1);
}

TEST(Serving, HighLoadGrowsBatchesNotJustLatency)
{
    // Lesson 10: under load the dynamic batcher grows the batch, so
    // throughput scales while latency stays bounded by batch growth.
    auto lo = RunServing({Tenant("x", 500.0)}, 20.0, 13).value();
    auto hi = RunServing({Tenant("x", 5000.0)}, 20.0, 13).value();
    EXPECT_GT(hi.tenants[0].mean_batch, 2.0 * lo.tenants[0].mean_batch);
    EXPECT_GT(hi.tenants[0].throughput_rps,
              5.0 * lo.tenants[0].throughput_rps);
    EXPECT_GT(hi.tenants[0].p99_latency_s, lo.tenants[0].p99_latency_s);
}

TEST(Serving, PercentilesAreOrdered)
{
    auto r = RunServing({Tenant("x", 2000.0)}, 10.0, 17).value();
    const auto& t = r.tenants[0];
    EXPECT_LE(t.p50_latency_s, t.p99_latency_s);
    EXPECT_GT(t.p50_latency_s, 0.0);
}

TEST(Serving, SloMissesDetected)
{
    // SLO below the minimum service time: every request misses.
    TenantConfig t = Tenant("x", 100.0, /*slo_s=*/0.5e-3);
    auto r = RunServing({t}, 5.0, 19).value();
    EXPECT_DOUBLE_EQ(r.tenants[0].slo_miss_fraction, 1.0);
    // Generous SLO: nearly everything meets it.
    TenantConfig ok = Tenant("y", 100.0, /*slo_s=*/1.0);
    auto r2 = RunServing({ok}, 5.0, 19).value();
    EXPECT_LT(r2.tenants[0].slo_miss_fraction, 0.01);
}

TEST(Serving, DeviceUtilizationBounded)
{
    auto r = RunServing({Tenant("x", 3000.0)}, 10.0, 23).value();
    EXPECT_GT(r.device_busy_fraction, 0.3);
    EXPECT_LE(r.device_busy_fraction, 1.0 + 1e-9);
}

// --- Multi-tenancy (Lesson 7) -----------------------------------------------------

TEST(Serving, TwoTenantsShareFairly)
{
    auto r = RunServing({Tenant("a", 400.0), Tenant("b", 400.0)}, 10.0,
                        29)
                 .value();
    ASSERT_EQ(r.tenants.size(), 2u);
    EXPECT_NEAR(r.tenants[0].throughput_rps,
                r.tenants[1].throughput_rps, 60.0);
}

TEST(Serving, CoTenancyRaisesTailLatency)
{
    TenantConfig solo = Tenant("a", 400.0);
    auto alone = RunServing({solo}, 10.0, 31).value();
    auto shared =
        RunServing({Tenant("a", 400.0), Tenant("b", 2000.0)}, 10.0, 31)
            .value();
    EXPECT_GT(shared.tenants[0].p99_latency_s,
              alone.tenants[0].p99_latency_s);
}

TEST(Serving, SwitchPenaltyHurtsUnpartitionedTenants)
{
    // Lesson 7: without CMEM partitioning, switching tenants re-stages
    // weights. The same two-tenant mix with a 1 ms switch penalty must
    // show worse p99 and visible switch overhead.
    std::vector<TenantConfig> partitioned = {Tenant("a", 400.0),
                                             Tenant("b", 400.0)};
    std::vector<TenantConfig> swapping = partitioned;
    for (auto& t : swapping) t.switch_penalty_s = 1e-3;

    auto part = RunServing(partitioned, 10.0, 37).value();
    auto swap = RunServing(swapping, 10.0, 37).value();
    EXPECT_GT(swap.switch_overhead_fraction, 0.01);
    EXPECT_DOUBLE_EQ(part.switch_overhead_fraction, 0.0);
    EXPECT_GT(swap.tenants[0].p99_latency_s,
              part.tenants[0].p99_latency_s);
}

// --- Host pipeline, priorities, multi-device cells ---------------------------

TEST(Serving, HostOverheadBoundsTinyModels)
{
    // Device exec 0.1 ms but host takes 1 ms per batch: throughput is
    // host-bound near 1000 batches/s regardless of device speed.
    TenantConfig t = Tenant("x", 5000.0, /*slo_s=*/1.0);
    t.latency_s = AffineLatency(0.1e-3, 0.0);
    t.host_overhead_s = 1e-3;
    t.max_batch = 1;
    auto r = RunServing({t}, 5.0, 3).value();
    EXPECT_LT(r.tenants[0].throughput_rps, 1100.0);
    EXPECT_GT(r.host_busy_fraction, 0.8);
}

TEST(Serving, HostPipelineOverlapsDevice)
{
    // Host and device stages of equal length pipeline: throughput is
    // set by one stage, not their sum.
    TenantConfig t = Tenant("x", 1500.0, /*slo_s=*/1.0);
    t.latency_s = AffineLatency(1e-3, 0.0);
    t.host_overhead_s = 1e-3;
    t.max_batch = 1;
    auto r = RunServing({t}, 5.0, 5).value();
    // ~1000/s if pipelined; ~500/s if serialized.
    EXPECT_GT(r.tenants[0].throughput_rps, 850.0);
}

TEST(Serving, PriorityProtectsInteractiveTenant)
{
    // A high-priority tenant co-located with a heavy batch tenant
    // keeps a far better p99 than at equal priority.
    auto make = [](int interactive_priority) {
        TenantConfig fg = Tenant("fg", 300.0, /*slo_s=*/0.005);
        fg.priority = interactive_priority;
        TenantConfig bg = Tenant("bg", 4000.0, /*slo_s=*/1.0);
        bg.latency_s = AffineLatency(2e-3, 1e-4);
        return RunServing({fg, bg}, 10.0, 7).value();
    };
    auto equal = make(0);
    auto prioritized = make(1);
    EXPECT_LT(prioritized.tenants[0].p99_latency_s,
              equal.tenants[0].p99_latency_s);
    EXPECT_LE(prioritized.tenants[0].slo_miss_fraction,
              equal.tenants[0].slo_miss_fraction);
}

TEST(Serving, TwoDevicesNearlyDoubleCapacity)
{
    TenantConfig t = Tenant("x", 1800.0, /*slo_s=*/1.0);
    t.latency_s = AffineLatency(1e-3, 0.0);
    t.max_batch = 1;
    // One device saturates at ~1000/s; arrivals at 1800/s overload it.
    auto one = RunServingCell({t}, 1, 10.0, 9).value();
    auto two = RunServingCell({t}, 2, 10.0, 9).value();
    EXPECT_GT(two.tenants[0].throughput_rps,
              1.5 * one.tenants[0].throughput_rps);
    EXPECT_LT(two.tenants[0].p99_latency_s,
              one.tenants[0].p99_latency_s);
}

TEST(Serving, BatchPatienceGrowsBatches)
{
    // With patience, the batcher waits for co-arrivals: mean batch
    // grows and per-request device work shrinks, at some latency cost.
    TenantConfig eager = Tenant("x", 2000.0, /*slo_s=*/1.0);
    eager.latency_s = AffineLatency(0.5e-3, 0.01e-3);
    TenantConfig patient = eager;
    patient.batch_wait_s = 5e-3;
    auto r_eager = RunServing({eager}, 10.0, 51).value();
    auto r_patient = RunServing({patient}, 10.0, 51).value();
    EXPECT_GT(r_patient.tenants[0].mean_batch,
              1.5 * r_eager.tenants[0].mean_batch);
    EXPECT_GT(r_patient.tenants[0].p50_latency_s,
              r_eager.tenants[0].p50_latency_s);
    // Everything still completes.
    EXPECT_NEAR(static_cast<double>(r_patient.tenants[0].completed),
                static_cast<double>(r_eager.tenants[0].completed),
                0.02 * static_cast<double>(
                           r_eager.tenants[0].completed) + 5.0);
}

TEST(Serving, PatienceBoundedByDeadline)
{
    // At trickle load the patience deadline, not the batch target,
    // releases batches: p50 ~ wait + exec.
    TenantConfig t = Tenant("x", 20.0, /*slo_s=*/1.0);
    t.latency_s = AffineLatency(1e-3, 0.0);
    t.batch_wait_s = 20e-3;
    auto r = RunServing({t}, 30.0, 53).value();
    EXPECT_GT(r.tenants[0].p50_latency_s, 15e-3);
    EXPECT_LT(r.tenants[0].p50_latency_s, 40e-3);
}

TEST(Serving, DiurnalRateModulatesArrivals)
{
    // A rate that is zero in the first half and full in the second
    // must deliver (almost) all arrivals in the second half, visible
    // as a completed-count close to half the constant-rate run.
    TenantConfig flat = Tenant("x", 1000.0, /*slo_s=*/1.0);
    TenantConfig half = flat;
    half.peak_rate_multiplier = 1.0;
    half.rate_multiplier = [](double t) {
        return t < 5.0 ? 0.0 : 1.0;
    };
    auto r_flat = RunServing({flat}, 10.0, 33).value();
    auto r_half = RunServing({half}, 10.0, 33).value();
    EXPECT_NEAR(static_cast<double>(r_half.tenants[0].completed),
                0.5 * static_cast<double>(r_flat.tenants[0].completed),
                0.1 * static_cast<double>(r_flat.tenants[0].completed));
}

TEST(Serving, DiurnalPeakStressesTail)
{
    // Same mean load, but concentrated in bursts: the tail gets worse.
    TenantConfig flat = Tenant("x", 1600.0, /*slo_s=*/1.0);
    flat.latency_s = AffineLatency(1e-3, 0.0);
    flat.max_batch = 2;
    TenantConfig bursty = flat;
    bursty.arrival_rate = 3200.0;  // x2 peak, x0.5 duty -> same mean
    bursty.peak_rate_multiplier = 1.0;
    bursty.rate_multiplier = [](double t) {
        return std::fmod(t, 2.0) < 1.0 ? 1.0 : 0.0;
    };
    auto r_flat = RunServing({flat}, 20.0, 35).value();
    auto r_bursty = RunServing({bursty}, 20.0, 35).value();
    EXPECT_GT(r_bursty.tenants[0].p99_latency_s,
              r_flat.tenants[0].p99_latency_s);
}

TEST(Serving, CellRejectsBadDeviceCount)
{
    TenantConfig t = Tenant("x", 10.0);
    EXPECT_FALSE(RunServingCell({t}, 0, 1.0, 1).ok());
}

TEST(Serving, ManyTenantsDegradeGracefully)
{
    // p99 grows with tenant count but the system keeps completing work.
    double prev_p99 = 0.0;
    for (int n : {1, 2, 4, 8}) {
        std::vector<TenantConfig> tenants;
        for (int i = 0; i < n; ++i) {
            tenants.push_back(
                Tenant("t" + std::to_string(i), 200.0));
            tenants.back().switch_penalty_s = 0.2e-3;
        }
        auto r = RunServing(tenants, 5.0, 41).value();
        double p99 = 0.0;
        for (const auto& t : r.tenants) {
            EXPECT_GT(t.completed, 0) << n;
            p99 = std::max(p99, t.p99_latency_s);
        }
        EXPECT_GE(p99, prev_p99 * 0.8) << n;
        prev_p99 = p99;
    }
}

// --- Fault injection and reliability ---------------------------------------

/** arrived must equal completed + dropped + shed once the cell drains. */
void
ExpectConservation(const ServingResult& r)
{
    for (const auto& t : r.tenants) {
        EXPECT_EQ(t.arrived, t.completed + t.dropped + t.shed)
            << t.name << ": arrived " << t.arrived << " completed "
            << t.completed << " dropped " << t.dropped << " shed "
            << t.shed;
    }
}

TEST(Faults, ValidatesPlan)
{
    FaultPlan bad_device;
    bad_device.scripted.push_back(ScriptedFault{7, 1.0, 2.0});
    EXPECT_EQ(BuildFaultTimeline(bad_device, 4, 10.0).status().code(),
              StatusCode::kInvalidArgument);

    FaultPlan negative_fail;
    negative_fail.scripted.push_back(ScriptedFault{0, -1.0, 2.0});
    EXPECT_FALSE(BuildFaultTimeline(negative_fail, 4, 10.0).ok());

    FaultPlan repair_before_fail;
    repair_before_fail.scripted.push_back(ScriptedFault{0, 5.0, 2.0});
    EXPECT_FALSE(BuildFaultTimeline(repair_before_fail, 4, 10.0).ok());

    FaultPlan bad_speed;
    bad_speed.slowdowns.push_back(SlowdownEvent{0, 1.0, 2.0, 0.0});
    EXPECT_FALSE(BuildFaultTimeline(bad_speed, 4, 10.0).ok());

    FaultPlan bad_prob;
    bad_prob.transient_failure_prob = 1.5;
    EXPECT_FALSE(BuildFaultTimeline(bad_prob, 4, 10.0).ok());

    FaultPlan mtbf_without_mttr;
    mtbf_without_mttr.mtbf_s = 10.0;
    EXPECT_FALSE(BuildFaultTimeline(mtbf_without_mttr, 4, 10.0).ok());
}

TEST(Faults, ScriptedTimelineQueries)
{
    FaultPlan plan;
    plan.scripted.push_back(ScriptedFault{0, 2.0, 5.0});
    plan.scripted.push_back(ScriptedFault{1, 3.0, -1.0});  // never fixed
    auto timeline = BuildFaultTimeline(plan, 2, 10.0).value();

    EXPECT_FALSE(timeline.IsDown(0, 1.9));
    EXPECT_TRUE(timeline.IsDown(0, 2.0));
    EXPECT_TRUE(timeline.IsDown(0, 4.9));
    EXPECT_FALSE(timeline.IsDown(0, 5.0));
    EXPECT_DOUBLE_EQ(timeline.NextUp(0, 3.0), 5.0);
    EXPECT_DOUBLE_EQ(timeline.NextUp(0, 6.0), 6.0);
    EXPECT_DOUBLE_EQ(timeline.NextFailure(0, 0.0), 2.0);
    EXPECT_TRUE(std::isinf(timeline.NextFailure(0, 6.0)));

    EXPECT_TRUE(timeline.IsDown(1, 100.0));
    EXPECT_TRUE(std::isinf(timeline.NextUp(1, 4.0)));

    // Device 0 is down 3 of 10 seconds, device 1 down 7 of 10.
    EXPECT_NEAR(timeline.UpFraction(0, 10.0), 0.7, 1e-12);
    EXPECT_NEAR(timeline.UpFraction(1, 10.0), 0.3, 1e-12);
    EXPECT_NEAR(timeline.Availability(10.0), 0.5, 1e-12);
}

TEST(Faults, DeterministicAcrossRebuilds)
{
    FaultPlan plan;
    plan.mtbf_s = 5.0;
    plan.mttr_s = 1.0;
    plan.seed = 123;
    auto a = BuildFaultTimeline(plan, 4, 100.0).value();
    auto b = BuildFaultTimeline(plan, 4, 100.0).value();
    for (int d = 0; d < 4; ++d) {
        ASSERT_EQ(a.down(d).size(), b.down(d).size());
        for (size_t i = 0; i < a.down(d).size(); ++i) {
            EXPECT_EQ(a.down(d)[i].start_s, b.down(d)[i].start_s);
            EXPECT_EQ(a.down(d)[i].end_s, b.down(d)[i].end_s);
        }
    }
    // A different seed draws a different failure history.
    plan.seed = 124;
    auto c = BuildFaultTimeline(plan, 4, 100.0).value();
    bool differs = false;
    for (int d = 0; d < 4 && !differs; ++d) {
        if (a.down(d).size() != c.down(d).size()) {
            differs = true;
        } else if (!a.down(d).empty() &&
                   a.down(d)[0].start_s != c.down(d)[0].start_s) {
            differs = true;
        }
    }
    EXPECT_TRUE(differs);
}

TEST(Faults, SteadyStateAvailabilityMatchesMtbfMttr)
{
    FaultPlan plan;
    EXPECT_DOUBLE_EQ(SteadyStateAvailability(plan), 1.0);
    plan.mtbf_s = 9.0;
    plan.mttr_s = 1.0;
    EXPECT_DOUBLE_EQ(SteadyStateAvailability(plan), 0.9);
}

TEST(Reliability, ValidationRejectsEachBadField)
{
    const TenantConfig good = Tenant("x", 100.0);
    {
        auto r = RunServingCell({good}, 0, 1.0, 1);
        EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
    }
    {
        auto r = RunServingCell({good}, 2, -1.0, 1);
        EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
    }
    {
        TenantConfig t = good;
        t.arrival_rate = -5.0;
        EXPECT_EQ(RunServingCell({t}, 2, 1.0, 1).status().code(),
                  StatusCode::kInvalidArgument);
    }
    {
        TenantConfig t = good;
        t.max_batch = 0;
        EXPECT_EQ(RunServingCell({t}, 2, 1.0, 1).status().code(),
                  StatusCode::kInvalidArgument);
    }
    {
        TenantConfig t = good;
        t.deadline_s = -0.1;
        EXPECT_EQ(RunServingCell({t}, 2, 1.0, 1).status().code(),
                  StatusCode::kInvalidArgument);
    }
    {
        TenantConfig t = good;
        t.max_queue = -1;
        EXPECT_EQ(RunServingCell({t}, 2, 1.0, 1).status().code(),
                  StatusCode::kInvalidArgument);
    }
    {
        TenantConfig t = good;
        t.max_retries = -1;
        EXPECT_EQ(RunServingCell({t}, 2, 1.0, 1).status().code(),
                  StatusCode::kInvalidArgument);
    }
    {
        ReliabilityConfig rel;
        rel.hedge_quantile = 1.5;
        EXPECT_EQ(RunServingCell({good}, 2, 1.0, 1, ServingTelemetry{},
                                 rel)
                      .status()
                      .code(),
                  StatusCode::kInvalidArgument);
    }
    {
        ReliabilityConfig rel;
        rel.max_cell_queue = -1;
        EXPECT_EQ(RunServingCell({good}, 2, 1.0, 1, ServingTelemetry{},
                                 rel)
                      .status()
                      .code(),
                  StatusCode::kInvalidArgument);
    }
    {
        ReliabilityConfig rel;
        rel.faults.scripted.push_back(ScriptedFault{5, 1.0, 2.0});
        EXPECT_EQ(RunServingCell({good}, 2, 1.0, 1, ServingTelemetry{},
                                 rel)
                      .status()
                      .code(),
                  StatusCode::kInvalidArgument);
    }
}

TEST(Reliability, DefaultConfigBitIdenticalToBaseline)
{
    // Regression guard: the reliability layer must be invisible when
    // nothing is configured — not approximately, bit-for-bit.
    std::vector<TenantConfig> tenants = {Tenant("a", 900.0),
                                         Tenant("b", 400.0, 0.005)};
    tenants[0].batch_wait_s = 2e-3;
    tenants[1].priority = 1;
    auto base = RunServingCell(tenants, 2, 5.0, 42).value();
    auto with_layer = RunServingCell(tenants, 2, 5.0, 42,
                                     ServingTelemetry{},
                                     ReliabilityConfig{})
                          .value();
    ASSERT_EQ(base.tenants.size(), with_layer.tenants.size());
    for (size_t i = 0; i < base.tenants.size(); ++i) {
        const TenantStats& x = base.tenants[i];
        const TenantStats& y = with_layer.tenants[i];
        EXPECT_EQ(x.arrived, y.arrived);
        EXPECT_EQ(x.completed, y.completed);
        EXPECT_EQ(x.slo_misses, y.slo_misses);
        EXPECT_EQ(x.dropped, y.dropped);
        EXPECT_EQ(x.shed, y.shed);
        EXPECT_EQ(x.retried, y.retried);
        EXPECT_EQ(x.mean_latency_s, y.mean_latency_s);
        EXPECT_EQ(x.p50_latency_s, y.p50_latency_s);
        EXPECT_EQ(x.p99_latency_s, y.p99_latency_s);
        EXPECT_EQ(x.mean_batch, y.mean_batch);
        EXPECT_EQ(x.throughput_rps, y.throughput_rps);
        EXPECT_EQ(x.max_queue_depth, y.max_queue_depth);
    }
    EXPECT_EQ(base.duration_s, with_layer.duration_s);
    EXPECT_EQ(base.device_busy_fraction,
              with_layer.device_busy_fraction);
    EXPECT_EQ(base.host_busy_fraction, with_layer.host_busy_fraction);
    EXPECT_EQ(with_layer.availability, 1.0);
}

TEST(Reliability, DeterministicReplayWithFaults)
{
    TenantConfig t = Tenant("x", 800.0);
    t.deadline_s = 0.1;
    t.max_queue = 64;
    ReliabilityConfig rel;
    rel.faults.mtbf_s = 2.0;
    rel.faults.mttr_s = 0.5;
    rel.faults.transient_failure_prob = 0.05;
    auto a = RunServingCell({t}, 3, 5.0, 42, ServingTelemetry{}, rel)
                 .value();
    auto b = RunServingCell({t}, 3, 5.0, 42, ServingTelemetry{}, rel)
                 .value();
    EXPECT_EQ(a.tenants[0].completed, b.tenants[0].completed);
    EXPECT_EQ(a.tenants[0].dropped, b.tenants[0].dropped);
    EXPECT_EQ(a.tenants[0].shed, b.tenants[0].shed);
    EXPECT_EQ(a.tenants[0].retried, b.tenants[0].retried);
    EXPECT_EQ(a.tenants[0].p99_latency_s, b.tenants[0].p99_latency_s);
    EXPECT_EQ(a.availability, b.availability);
}

TEST(Reliability, ScriptedSingleDeviceLossDrill)
{
    // The acceptance drill: one of four devices dies mid-run and is
    // repaired; the cell keeps serving and the books balance.
    TenantConfig t = Tenant("x", 2000.0);
    t.deadline_s = 0.1;
    t.max_queue = 512;
    ReliabilityConfig rel;
    rel.faults.scripted.push_back(ScriptedFault{0, 2.0, 5.0});
    auto healthy =
        RunServingCell({t}, 4, 10.0, 42).value();
    auto degraded =
        RunServingCell({t}, 4, 10.0, 42, ServingTelemetry{}, rel)
            .value();
    ExpectConservation(degraded);
    EXPECT_EQ(degraded.tenants[0].arrived, healthy.tenants[0].arrived);
    EXPECT_GT(degraded.tenants[0].completed, 0);
    // 3 of 4 devices at this load keep up: nothing is lost, but the
    // tail pays for the lost capacity.
    EXPECT_GE(degraded.tenants[0].p99_latency_s,
              healthy.tenants[0].p99_latency_s);
    // 1 of 4 devices down 3 of 10 seconds -> 92.5% availability.
    EXPECT_NEAR(degraded.availability, 0.925, 0.02);
    EXPECT_EQ(healthy.availability, 1.0);
}

TEST(Reliability, TransientFailuresRetryAndComplete)
{
    TenantConfig t = Tenant("x", 500.0);
    t.max_retries = 8;
    ReliabilityConfig rel;
    rel.faults.transient_failure_prob = 0.2;
    auto r = RunServingCell({t}, 2, 5.0, 42, ServingTelemetry{}, rel)
                 .value();
    ExpectConservation(r);
    EXPECT_GT(r.tenants[0].retried, 0);
    // With 8 retries at p=0.2, effectively everything completes.
    EXPECT_EQ(r.tenants[0].dropped, 0);
    EXPECT_EQ(r.tenants[0].completed, r.tenants[0].arrived);
}

TEST(Reliability, RetriesAreBoundedUnderTotalFailure)
{
    // Every batch fails: bounded retries must drop the work and
    // terminate rather than spin forever.
    TenantConfig t = Tenant("x", 200.0);
    t.max_retries = 2;
    ReliabilityConfig rel;
    rel.faults.transient_failure_prob = 1.0;
    auto r = RunServingCell({t}, 2, 2.0, 42, ServingTelemetry{}, rel)
                 .value();
    ExpectConservation(r);
    EXPECT_EQ(r.tenants[0].completed, 0);
    EXPECT_EQ(r.tenants[0].dropped, r.tenants[0].arrived);
    EXPECT_GT(r.tenants[0].retried, 0);
}

TEST(Reliability, DeadlineDropsDistinctFromSloMisses)
{
    // One slow device, overloaded: without a deadline requests wait
    // out the backlog (SLO misses); with one they are dropped instead.
    TenantConfig t = Tenant("x", 3000.0);
    t.latency_s = AffineLatency(5e-3, 2e-4);
    t.max_batch = 8;
    auto no_deadline = RunServingCell({t}, 1, 2.0, 42).value();
    EXPECT_EQ(no_deadline.tenants[0].dropped, 0);
    EXPECT_GT(no_deadline.tenants[0].slo_misses, 0);

    t.deadline_s = 0.05;
    auto with_deadline = RunServingCell({t}, 1, 2.0, 42,
                                        ServingTelemetry{},
                                        ReliabilityConfig{})
                             .value();
    ExpectConservation(with_deadline);
    EXPECT_GT(with_deadline.tenants[0].dropped, 0);
    // Whatever does complete waited at most ~deadline + service time.
    EXPECT_LT(with_deadline.tenants[0].p99_latency_s,
              no_deadline.tenants[0].p99_latency_s);
}

TEST(Reliability, BoundedQueueShedsOverload)
{
    TenantConfig t = Tenant("x", 5000.0);
    t.latency_s = AffineLatency(5e-3, 2e-4);
    t.max_batch = 8;
    t.max_queue = 32;
    auto r = RunServingCell({t}, 1, 2.0, 42).value();
    ExpectConservation(r);
    EXPECT_GT(r.tenants[0].shed, 0);
    EXPECT_LE(r.tenants[0].max_queue_depth, 32);
}

TEST(Reliability, CellQueueShedsLowestPriorityFirst)
{
    // Saturated cell with a shared queue bound: the batch tenant's
    // backlog is evicted to admit interactive traffic, not vice versa.
    TenantConfig interactive = Tenant("interactive", 2500.0);
    interactive.priority = 2;
    TenantConfig batch = Tenant("batch", 2500.0);
    batch.priority = 0;
    for (auto* t : {&interactive, &batch}) {
        t->latency_s = AffineLatency(5e-3, 2e-4);
        t->max_batch = 8;
    }
    ReliabilityConfig rel;
    rel.max_cell_queue = 64;
    auto r = RunServingCell({interactive, batch}, 1, 2.0, 42,
                            ServingTelemetry{}, rel)
                 .value();
    ExpectConservation(r);
    EXPECT_GT(r.tenants[1].shed, 0);
    EXPECT_GT(r.tenants[1].shed, r.tenants[0].shed);
}

TEST(Reliability, HedgingBeatsStraggler)
{
    // Device 0 runs at 5% speed for most of the run; hedged dispatch
    // re-issues its stragglers on a healthy device.
    TenantConfig t = Tenant("x", 1000.0);
    ReliabilityConfig slow;
    slow.faults.slowdowns.push_back(SlowdownEvent{0, 0.5, 5.0, 0.05});
    auto unhedged =
        RunServingCell({t}, 2, 5.0, 42, ServingTelemetry{}, slow)
            .value();
    ReliabilityConfig hedge = slow;
    hedge.hedge = true;
    hedge.hedge_quantile = 0.9;
    auto hedged =
        RunServingCell({t}, 2, 5.0, 42, ServingTelemetry{}, hedge)
            .value();
    ExpectConservation(hedged);
    EXPECT_GT(hedged.tenants[0].hedges, 0);
    EXPECT_GT(hedged.tenants[0].hedge_wins, 0);
    EXPECT_LT(hedged.tenants[0].p99_latency_s,
              unhedged.tenants[0].p99_latency_s);
}

TEST(Reliability, DeadCellTerminatesAndAccountsForEverything)
{
    // All devices fail permanently mid-run: the loop must terminate
    // and every request must be accounted for.
    TenantConfig t = Tenant("x", 500.0);
    ReliabilityConfig rel;
    rel.faults.scripted.push_back(ScriptedFault{0, 1.0, -1.0});
    rel.faults.scripted.push_back(ScriptedFault{1, 1.0, -1.0});
    auto r = RunServingCell({t}, 2, 5.0, 42, ServingTelemetry{}, rel)
                 .value();
    ExpectConservation(r);
    EXPECT_GT(r.tenants[0].completed, 0);
    EXPECT_GT(r.tenants[0].dropped, 0);
    EXPECT_LT(r.availability, 0.5);
}

TEST(Reliability, GoodputExcludesSloMisses)
{
    TenantConfig t = Tenant("x", 3000.0);
    t.latency_s = AffineLatency(5e-3, 2e-4);
    t.max_batch = 8;
    auto r = RunServingCell({t}, 1, 2.0, 42).value();
    EXPECT_GT(r.tenants[0].slo_misses, 0);
    EXPECT_LT(r.tenants[0].goodput_rps, r.tenants[0].throughput_rps);
    const double expected =
        static_cast<double>(r.tenants[0].completed -
                            r.tenants[0].slo_misses) /
        r.duration_s;
    EXPECT_NEAR(r.tenants[0].goodput_rps, expected, 1e-9);
}

}  // namespace
}  // namespace t4i
