/**
 * @file
 * Tests for the machine simulator: schedule correctness (causality,
 * in-order engines), roofline bounds, determinism, and the performance
 * properties the paper's lessons rely on.
 */
#include <gtest/gtest.h>

#include <map>

#include "src/arch/catalog.h"
#include "src/compiler/compiler.h"
#include "src/models/zoo.h"
#include "src/sim/machine.h"
#include "src/sim/timing.h"

namespace t4i {
namespace {

Program
CompileApp(const std::string& name, const ChipConfig& chip,
           int64_t batch, int opt_level = 3, DType dtype = DType::kBf16)
{
    auto app = BuildApp(name).value();
    CompileOptions opts;
    opts.batch = batch;
    opts.opt_level = opt_level;
    opts.dtype = dtype;
    auto p = Compile(app.graph, chip, opts);
    T4I_CHECK(p.ok(), p.status().ToString().c_str());
    return std::move(p).ConsumeValue();
}

TEST(Sim, RejectsChipMismatch)
{
    Program p = CompileApp("CNN1", Tpu_v4i(), 4);
    EXPECT_FALSE(Simulate(p, Tpu_v3()).ok());
}

TEST(Sim, DeterministicAcrossRuns)
{
    Program p = CompileApp("BERT0", Tpu_v4i(), 8);
    auto a = Simulate(p, Tpu_v4i()).value();
    auto b = Simulate(p, Tpu_v4i()).value();
    EXPECT_EQ(a.latency_s, b.latency_s);
    EXPECT_EQ(a.total_macs, b.total_macs);
}

TEST(Sim, ScheduleRespectsDependencies)
{
    const ChipConfig chip = Tpu_v4i();
    Program p = CompileApp("CNN0", chip, 8);
    std::vector<ScheduleEntry> schedule;
    auto result = SimulateWithSchedule(p, chip, &schedule).value();
    ASSERT_EQ(schedule.size(), p.instrs.size());

    std::vector<double> finish(p.instrs.size());
    for (const auto& entry : schedule) {
        finish[static_cast<size_t>(entry.instr_id)] = entry.finish_s;
    }
    for (const auto& entry : schedule) {
        const Instr& instr =
            p.instrs[static_cast<size_t>(entry.instr_id)];
        for (int dep : instr.deps) {
            EXPECT_GE(entry.start_s,
                      finish[static_cast<size_t>(dep)] - 1e-12)
                << "instr " << entry.instr_id << " dep " << dep;
        }
        EXPECT_GE(entry.finish_s, entry.start_s);
        EXPECT_LE(entry.finish_s, result.latency_s + 1e-12);
    }
}

TEST(Sim, EnginesExecuteInOrderWithoutOverlap)
{
    const ChipConfig chip = Tpu_v4i();
    Program p = CompileApp("BERT0", chip, 8);
    std::vector<ScheduleEntry> schedule;
    ASSERT_TRUE(SimulateWithSchedule(p, chip, &schedule).ok());

    std::map<Engine, double> last_finish;
    for (const auto& entry : schedule) {
        const Engine e =
            p.instrs[static_cast<size_t>(entry.instr_id)].engine;
        auto it = last_finish.find(e);
        if (it != last_finish.end()) {
            EXPECT_GE(entry.start_s, it->second - 1e-12)
                << EngineName(e);
        }
        last_finish[e] = entry.finish_s;
    }
}

TEST(Sim, LatencyAtLeastEveryLowerBound)
{
    const ChipConfig chip = Tpu_v4i();
    for (const char* name : {"MLP0", "CNN0", "RNN0", "BERT0"}) {
        Program p = CompileApp(name, chip, 16);
        auto r = Simulate(p, chip).value();
        // Compute bound: total MACs at peak rate.
        const double compute_bound =
            2.0 * r.total_macs / chip.PeakFlops(DType::kBf16);
        // Bandwidth bound: HBM bytes at full bandwidth.
        const double bw_bound =
            static_cast<double>(r.engine(Engine::kHbm).bytes) /
            chip.dram_bw_Bps;
        EXPECT_GE(r.latency_s, compute_bound) << name;
        EXPECT_GE(r.latency_s, bw_bound) << name;
        // And not absurdly above the sum of all busy times.
        double busy_sum = 0.0;
        for (const auto& e : r.engines) busy_sum += e.busy_s;
        EXPECT_LE(r.latency_s, busy_sum + 1e-9) << name;
    }
}

TEST(Sim, UtilizationNeverExceedsOne)
{
    const ChipConfig chip = Tpu_v4i();
    Program p = CompileApp("CNN0", chip, 32);
    auto r = Simulate(p, chip).value();
    for (const auto& e : r.engines) {
        EXPECT_LE(e.utilization, 1.0 + 1e-9);
        EXPECT_GE(e.utilization, 0.0);
    }
    EXPECT_LE(r.mxu_utilization, 1.0);
}

TEST(Sim, SteadyStateAtLeastReciprocalLatency)
{
    const ChipConfig chip = Tpu_v4i();
    Program p = CompileApp("BERT0", chip, 16);
    auto r = Simulate(p, chip).value();
    EXPECT_GE(r.steady_state_ips * r.latency_s,
              static_cast<double>(p.batch) - 1e-6);
}

class BatchSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(BatchSweep, LatencyMonotoneAndThroughputImproves)
{
    const ChipConfig chip = Tpu_v4i();
    const char* name = GetParam();
    double prev_latency = 0.0;
    double prev_tput = 0.0;
    for (int64_t batch : {1, 4, 16, 64}) {
        Program p = CompileApp(name, chip, batch);
        auto r = Simulate(p, chip).value();
        EXPECT_GT(r.latency_s, prev_latency * 0.999)
            << name << " batch " << batch;
        // Throughput generally rises with batch; mild dips are allowed
        // where a larger batch pushes activations past the VMEM
        // threshold and per-sample spill traffic appears.
        const double tput = static_cast<double>(batch) / r.latency_s;
        EXPECT_GT(tput, prev_tput * 0.80)
            << name << " batch " << batch;
        prev_latency = r.latency_s;
        prev_tput = tput;
    }
}

INSTANTIATE_TEST_SUITE_P(Apps, BatchSweep,
                         ::testing::Values("MLP0", "MLP1", "CNN0",
                                           "CNN1", "RNN0", "RNN1",
                                           "BERT0", "BERT1"));

TEST(Sim, OptimizationLadderNeverHurts)
{
    const ChipConfig chip = Tpu_v4i();
    for (const char* name : {"MLP0", "CNN0", "BERT0"}) {
        double prev = 1e9;
        for (int level = 0; level <= 3; ++level) {
            Program p = CompileApp(name, chip, 16, level);
            auto r = Simulate(p, chip).value();
            EXPECT_LE(r.latency_s, prev * 1.001)
                << name << " O" << level;
            prev = r.latency_s;
        }
    }
}

TEST(Sim, O3BeatsO0Substantially)
{
    const ChipConfig chip = Tpu_v4i();
    Program p0 = CompileApp("BERT0", chip, 16, 0);
    Program p3 = CompileApp("BERT0", chip, 16, 3);
    auto r0 = Simulate(p0, chip).value();
    auto r3 = Simulate(p3, chip).value();
    EXPECT_GT(r0.latency_s / r3.latency_s, 1.1);
}

TEST(Sim, Int8NoSlowerThanBf16OnTpu4i)
{
    const ChipConfig chip = Tpu_v4i();
    for (const char* name : {"MLP1", "CNN1"}) {
        Program pb = CompileApp(name, chip, 16, 3, DType::kBf16);
        Program pi = CompileApp(name, chip, 16, 3, DType::kInt8);
        auto rb = Simulate(pb, chip).value();
        auto ri = Simulate(pi, chip).value();
        EXPECT_LE(ri.latency_s, rb.latency_s * 1.01) << name;
    }
}

TEST(Sim, CnnIsComputeBoundMlpIsNot)
{
    // The roofline story behind E5: CNNs land compute-bound on TPUv4i,
    // MLPs land memory/latency-bound. CMEM pinning partially rescues
    // the MLPs (that is E8's point), so the clean contrast is with
    // CMEM disabled.
    const ChipConfig chip = Tpu_v4i();
    auto app_cnn = BuildApp("CNN0").value();
    auto app_mlp = BuildApp("MLP0").value();
    CompileOptions opts;
    opts.batch = 64;
    opts.cmem_override_bytes = 0;
    auto cnn = Simulate(Compile(app_cnn.graph, chip, opts).value(),
                        chip).value();
    auto mlp = Simulate(Compile(app_mlp.graph, chip, opts).value(),
                        chip).value();
    EXPECT_GT(cnn.mxu_utilization, 0.20);
    EXPECT_GT(cnn.mxu_utilization, 1.3 * mlp.mxu_utilization);

    // With the full 128 MiB CMEM, the MLP recovers (Lesson 1 / E8).
    auto mlp_cmem =
        Simulate(CompileApp("MLP0", chip, 64), chip).value();
    EXPECT_GT(mlp_cmem.mxu_utilization, mlp.mxu_utilization);
}

TEST(Sim, MultiChipShardingSpeedsUpBigModels)
{
    const ChipConfig chip = Tpu_v4i();
    auto app = BuildApp("BERT1").value();
    CompileOptions one;
    one.batch = 32;
    CompileOptions four = one;
    four.num_chips = 4;
    auto r1 =
        Simulate(Compile(app.graph, chip, one).value(), chip).value();
    auto r4 =
        Simulate(Compile(app.graph, chip, four).value(), chip).value();
    const double speedup = r1.latency_s / r4.latency_s;
    EXPECT_GT(speedup, 1.5);
    EXPECT_LT(speedup, 4.0);  // sublinear: ICI all-gathers cost time
}

TEST(Sim, SummaryMentionsEngines)
{
    const ChipConfig chip = Tpu_v4i();
    auto r = Simulate(CompileApp("CNN1", chip, 4), chip).value();
    std::string s = r.Summary();
    EXPECT_NE(s.find("MXU"), std::string::npos);
    EXPECT_NE(s.find("latency"), std::string::npos);
}

// --- Cross-chip sanity: v4i vs older generations --------------------------------

TEST(Sim, Tpu4iOutperformsTpu3PerWatt)
{
    // The headline: ~2x+ perf/TDP over TPUv3 on the production mix.
    const ChipConfig v3 = Tpu_v3();
    const ChipConfig v4i = Tpu_v4i();
    double v3_sum = 0.0;
    double v4i_sum = 0.0;
    for (const char* name : {"CNN0", "BERT0", "RNN0"}) {
        auto r3 = Simulate(CompileApp(name, v3, 16), v3).value();
        auto r4 = Simulate(CompileApp(name, v4i, 16), v4i).value();
        v3_sum += (1.0 / r3.latency_s) / v3.tdp_w;
        v4i_sum += (1.0 / r4.latency_s) / v4i.tdp_w;
    }
    EXPECT_GT(v4i_sum / v3_sum, 1.5);
}

}  // namespace
}  // namespace t4i
