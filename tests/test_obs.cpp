/**
 * @file
 * Tests for the observability subsystem: metrics registry, JSON
 * parser, exporters, trace builder, and the serving/sim telemetry
 * integration.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "src/arch/catalog.h"
#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/compiler/compiler.h"
#include "src/models/zoo.h"
#include "src/obs/export.h"
#include "src/obs/json.h"
#include "src/obs/registry.h"
#include "src/obs/trace_builder.h"
#include "src/serving/server.h"
#include "src/sim/machine.h"

namespace t4i {
namespace {

TEST(Registry, CounterGaugeHistogramBasics)
{
    obs::MetricsRegistry reg;
    obs::Counter* c = reg.GetCounter("reqs");
    ASSERT_NE(c, nullptr);
    c->Increment();
    c->Increment(4);
    EXPECT_EQ(c->value(), 5);

    obs::Gauge* g = reg.GetGauge("util");
    ASSERT_NE(g, nullptr);
    g->Set(0.25);
    g->Set(0.75);
    EXPECT_DOUBLE_EQ(g->value(), 0.75);

    obs::HistogramMetric* h = reg.GetHistogram("lat");
    ASSERT_NE(h, nullptr);
    h->Observe(1.0);
    h->Observe(3.0);
    EXPECT_EQ(h->count(), 2);
    EXPECT_DOUBLE_EQ(h->mean(), 2.0);
    EXPECT_DOUBLE_EQ(h->min(), 1.0);
    EXPECT_DOUBLE_EQ(h->max(), 3.0);
    EXPECT_DOUBLE_EQ(h->sum(), 4.0);
    EXPECT_EQ(reg.size(), 3u);
}

TEST(Registry, LabeledInstancesAreDistinctAndStable)
{
    obs::MetricsRegistry reg;
    obs::Counter* a = reg.GetCounter("done", {{"tenant", "BERT0"}});
    obs::Counter* b = reg.GetCounter("done", {{"tenant", "WSM1"}});
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    EXPECT_NE(a, b);
    a->Increment(7);
    EXPECT_EQ(b->value(), 0);

    // Same (name, labels) -> same instrument; label order must not
    // matter.
    EXPECT_EQ(reg.GetCounter("done", {{"tenant", "BERT0"}}), a);
    obs::Counter* x =
        reg.GetCounter("multi", {{"a", "1"}, {"b", "2"}});
    obs::Counter* y =
        reg.GetCounter("multi", {{"b", "2"}, {"a", "1"}});
    EXPECT_EQ(x, y);
}

TEST(Registry, NameBoundToOneType)
{
    obs::MetricsRegistry reg;
    ASSERT_NE(reg.GetCounter("thing"), nullptr);
    EXPECT_EQ(reg.GetGauge("thing"), nullptr);
    EXPECT_EQ(reg.GetHistogram("thing"), nullptr);
    // Even under a different label set the name keeps its type.
    EXPECT_EQ(reg.GetGauge("thing", {{"k", "v"}}), nullptr);
    EXPECT_NE(reg.GetCounter("thing", {{"k", "v"}}), nullptr);
}

TEST(Registry, PercentilesMatchStatsOracle)
{
    obs::MetricsRegistry reg;
    obs::HistogramMetric* h = reg.GetHistogram("lat");
    PercentileTracker oracle;
    Rng rng(99);
    for (int i = 0; i < 1000; ++i) {
        const double x = rng.NextUniform(0.0, 10.0);
        h->Observe(x);
        oracle.Add(x);
    }
    for (double q : {50.0, 90.0, 95.0, 99.0}) {
        EXPECT_DOUBLE_EQ(h->Percentile(q), oracle.Percentile(q));
    }
}

TEST(Registry, EmptyHistogramPercentilesAreZero)
{
    obs::MetricsRegistry reg;
    obs::HistogramMetric* h = reg.GetHistogram("never_observed");
    EXPECT_EQ(h->count(), 0);
    // Documented contract: percentiles of an empty distribution are 0
    // (not NaN, not a crash) so exporters can render them blindly.
    for (double q : {0.0, 50.0, 95.0, 99.0, 100.0}) {
        EXPECT_EQ(h->Percentile(q), 0.0) << "q=" << q;
    }
    EXPECT_EQ(h->sum(), 0.0);
    EXPECT_EQ(h->mean(), 0.0);
}

TEST(Registry, SingleSampleHistogramPercentilesCollapse)
{
    obs::MetricsRegistry reg;
    obs::HistogramMetric* h = reg.GetHistogram("one_shot");
    h->Observe(0.042);
    EXPECT_EQ(h->count(), 1);
    // With one sample every percentile — p50 through p99 — is that
    // sample; interpolation must not extrapolate past it.
    for (double q : {0.0, 50.0, 95.0, 99.0, 100.0}) {
        EXPECT_DOUBLE_EQ(h->Percentile(q), 0.042) << "q=" << q;
    }
    EXPECT_DOUBLE_EQ(h->min(), 0.042);
    EXPECT_DOUBLE_EQ(h->max(), 0.042);
    EXPECT_DOUBLE_EQ(h->mean(), 0.042);
}

TEST(Registry, SnapshotOrderOfLabeledInstancesIsDeterministic)
{
    // Creation order is deliberately shuffled; Snapshot must come back
    // sorted by (name, labels) regardless, and identically on a second
    // registry built in a different order.
    const std::vector<obs::Labels> label_sets = {
        {{"tenant", "c"}, {"dev", "1"}},
        {{"tenant", "a"}, {"dev", "2"}},
        {{"tenant", "b"}, {"dev", "0"}},
    };
    obs::MetricsRegistry forward;
    for (const auto& labels : label_sets) {
        forward.GetGauge("zz", labels);
        forward.GetGauge("aa", labels);
    }
    obs::MetricsRegistry backward;
    for (auto it = label_sets.rbegin(); it != label_sets.rend(); ++it) {
        backward.GetGauge("aa", *it);
        backward.GetGauge("zz", *it);
    }
    const auto fwd = forward.Snapshot();
    const auto bwd = backward.Snapshot();
    ASSERT_EQ(fwd.size(), bwd.size());
    for (size_t i = 0; i < fwd.size(); ++i) {
        EXPECT_EQ(fwd[i].name, bwd[i].name) << i;
        EXPECT_EQ(fwd[i].labels, bwd[i].labels) << i;
    }
    // Names ascend; within one name the label vectors ascend too.
    for (size_t i = 1; i < fwd.size(); ++i) {
        EXPECT_LE(fwd[i - 1].name, fwd[i].name);
        if (fwd[i - 1].name == fwd[i].name) {
            EXPECT_LT(fwd[i - 1].labels, fwd[i].labels);
        }
    }
}

TEST(Registry, ThreadSafeUnderConcurrentUse)
{
    obs::MetricsRegistry reg;
    constexpr int kThreads = 8;
    constexpr int kIters = 2000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&reg, t] {
            for (int i = 0; i < kIters; ++i) {
                reg.GetCounter("shared")->Increment();
                reg.GetHistogram("h")->Observe(static_cast<double>(i));
                reg.GetGauge("g", {{"t", std::to_string(t)}})
                    ->Set(static_cast<double>(i));
            }
        });
    }
    for (auto& t : threads) t.join();
    EXPECT_EQ(reg.GetCounter("shared")->value(), kThreads * kIters);
    EXPECT_EQ(reg.GetHistogram("h")->count(), kThreads * kIters);
    EXPECT_EQ(reg.size(), 2u + kThreads);
}

TEST(Registry, ScopedTimerObservesOnce)
{
    obs::MetricsRegistry reg;
    obs::HistogramMetric* h = reg.GetHistogram("t");
    {
        obs::ScopedTimer timer(h);
        const double elapsed = timer.Stop();
        EXPECT_GE(elapsed, 0.0);
    }  // destructor must not double-record after Stop()
    EXPECT_EQ(h->count(), 1);
    { obs::ScopedTimer noop(nullptr); }  // null histogram is a no-op
}

TEST(Json, ParsesDocumentsAndRejectsGarbage)
{
    auto doc = obs::ParseJson(
        R"({"a":[1,2.5,-3e2],"b":"x\n\"y\"","c":{"d":true,"e":null}})");
    ASSERT_TRUE(doc.ok());
    const obs::JsonValue& v = doc.value();
    ASSERT_TRUE(v.is_object());
    ASSERT_NE(v.Find("a"), nullptr);
    ASSERT_EQ(v.Find("a")->array.size(), 3u);
    EXPECT_DOUBLE_EQ(v.Find("a")->array[1].number_value, 2.5);
    EXPECT_DOUBLE_EQ(v.Find("a")->array[2].number_value, -300.0);
    EXPECT_EQ(v.Find("b")->string_value, "x\n\"y\"");
    EXPECT_TRUE(v.Find("c")->Find("d")->bool_value);
    EXPECT_TRUE(v.Find("c")->Find("e")->is_null());

    EXPECT_FALSE(obs::ParseJson("{\"a\":1} trailing").ok());
    EXPECT_FALSE(obs::ParseJson("{\"a\":}").ok());
    EXPECT_FALSE(obs::ParseJson("[1,2,").ok());
    EXPECT_FALSE(obs::ParseJson("").ok());
}

TEST(Export, EmptyRegistryStillParses)
{
    obs::MetricsRegistry reg;
    auto doc = obs::ParseJson(obs::MetricsToJson(reg));
    ASSERT_TRUE(doc.ok());
    ASSERT_NE(doc.value().Find("version"), nullptr);
    EXPECT_TRUE(doc.value().Find("counters")->array.empty());
    EXPECT_TRUE(doc.value().Find("gauges")->array.empty());
    EXPECT_TRUE(doc.value().Find("histograms")->array.empty());
}

TEST(Export, JsonRoundTripsValuesAndLabels)
{
    obs::MetricsRegistry reg;
    reg.GetCounter("done", {{"tenant", "BERT0"}})->Increment(11);
    reg.GetGauge("util")->Set(0.625);
    obs::HistogramMetric* h = reg.GetHistogram("lat");
    for (int i = 1; i <= 100; ++i) h->Observe(static_cast<double>(i));

    auto doc = obs::ParseJson(obs::MetricsToJson(reg));
    ASSERT_TRUE(doc.ok());
    const auto& counters = doc.value().Find("counters")->array;
    ASSERT_EQ(counters.size(), 1u);
    EXPECT_EQ(counters[0].Find("name")->string_value, "done");
    EXPECT_EQ(counters[0].Find("labels")->Find("tenant")->string_value,
              "BERT0");
    EXPECT_DOUBLE_EQ(counters[0].Find("value")->number_value, 11.0);
    const auto& gauges = doc.value().Find("gauges")->array;
    ASSERT_EQ(gauges.size(), 1u);
    EXPECT_DOUBLE_EQ(gauges[0].Find("value")->number_value, 0.625);
    const auto& hists = doc.value().Find("histograms")->array;
    ASSERT_EQ(hists.size(), 1u);
    EXPECT_DOUBLE_EQ(hists[0].Find("count")->number_value, 100.0);
    EXPECT_DOUBLE_EQ(hists[0].Find("p50")->number_value,
                     h->Percentile(50.0));
    EXPECT_DOUBLE_EQ(hists[0].Find("p99")->number_value,
                     h->Percentile(99.0));
}

TEST(Export, CsvAndBenchLineFormats)
{
    obs::MetricsRegistry reg;
    reg.GetCounter("c", {{"k", "v"}})->Increment(3);
    reg.GetGauge("g")->Set(1.5);

    const std::string csv = obs::MetricsToCsv(reg);
    EXPECT_EQ(csv.rfind("type,name,labels,value,count,mean,min,max,"
                        "p50,p95,p99",
                        0),
              0u);
    EXPECT_NE(csv.find("counter,c,k=v,3"), std::string::npos);

    const std::string line = obs::MetricsToBenchJsonLine("E7", reg);
    EXPECT_EQ(line.find('\n'), std::string::npos);
    auto doc = obs::ParseJson(line);
    ASSERT_TRUE(doc.ok());
    EXPECT_EQ(doc.value().Find("bench")->string_value, "E7");
    EXPECT_DOUBLE_EQ(
        doc.value().Find("counters")->Find("c{k=v}")->number_value,
        3.0);
    EXPECT_DOUBLE_EQ(doc.value().Find("gauges")->Find("g")->number_value,
                     1.5);
}

TEST(TraceBuilder, RendersStrictJsonWithAllPhases)
{
    obs::TraceBuilder builder;
    builder.SetProcessName(1, "device");
    builder.SetThreadName(1, 0, "MXU");
    builder.AddComplete(1, 0, "mm", "compute", 10.0, 5.0,
                        "{\"id\":1}");
    builder.AddCounter(1, "depth", 10.0, 3.0);
    builder.AddCounter(1, "depth", -5.0, 0.0);  // clamps to ts 0
    builder.AddInstant(1, 0, "arrive", 12.0);
    builder.AddFlowStart(1, 0, "req", 42, 10.0);
    builder.AddFlowStep(1, 0, "req", 42, 12.0);
    builder.AddFlowEnd(1, 0, "req", 42, 15.0);
    EXPECT_EQ(builder.event_count(), 9u);

    auto doc = obs::ParseJson(builder.Render());
    ASSERT_TRUE(doc.ok());
    ASSERT_TRUE(doc.value().is_array());
    ASSERT_EQ(doc.value().array.size(), 9u);
    int flow_end_bp = 0;
    for (const auto& event : doc.value().array) {
        const obs::JsonValue* ph = event.Find("ph");
        ASSERT_NE(ph, nullptr);
        const obs::JsonValue* ts = event.Find("ts");
        if (ts != nullptr) EXPECT_GE(ts->number_value, 0.0);
        if (ph->string_value == "f") {
            ASSERT_NE(event.Find("bp"), nullptr);
            EXPECT_EQ(event.Find("bp")->string_value, "e");
            ++flow_end_bp;
        }
    }
    EXPECT_EQ(flow_end_bp, 1);
}

TEST(Telemetry, SimMetricsCarryPerEngineUtilization)
{
    auto app = BuildApp("CNN0").value();
    const ChipConfig chip = Tpu_v4i();
    CompileOptions opts;
    opts.batch = 4;
    auto prog = Compile(app.graph, chip, opts).value();
    auto result = Simulate(prog, chip).value();

    obs::MetricsRegistry reg;
    RecordSimMetrics(result, &reg);
    EXPECT_EQ(reg.GetCounter("sim.runs")->value(), 1);
    EXPECT_DOUBLE_EQ(reg.GetGauge("sim.latency_seconds")->value(),
                     result.latency_s);
    obs::Gauge* mxu =
        reg.GetGauge("sim.engine.utilization", {{"engine", "MXU"}});
    ASSERT_NE(mxu, nullptr);
    EXPECT_GT(mxu->value(), 0.0);
    EXPECT_LE(mxu->value(), 1.0);
    // Dependency stalls are true engine-idle time, so they are
    // bounded by it; queue stalls overlap busy time (an instruction
    // waits behind a busy engine) so they are only sign-checked.
    const auto& mxu_stats =
        result.engines[static_cast<int>(Engine::kMxu)];
    EXPECT_LE(mxu_stats.dep_stall_s,
              result.latency_s - mxu_stats.busy_s + 1e-9);
    EXPECT_GE(mxu_stats.queue_stall_s, 0.0);
}

TEST(Telemetry, ServingRunRecordsHistogramsAndFlows)
{
    TenantConfig tenant;
    tenant.name = "T";
    tenant.latency_s = [](int64_t batch) {
        return 0.001 + 0.0001 * static_cast<double>(batch);
    };
    tenant.max_batch = 8;
    tenant.slo_s = 0.004;
    tenant.arrival_rate = 500.0;

    obs::MetricsRegistry reg;
    obs::TraceBuilder trace;
    ServingTelemetry telemetry;
    telemetry.registry = &reg;
    telemetry.trace = &trace;
    auto result = RunServingCell({tenant}, 2, 5.0, 7, telemetry);
    ASSERT_TRUE(result.ok());
    const TenantStats& stats = result.value().tenants[0];
    ASSERT_GT(stats.completed, 0);

    obs::HistogramMetric* lat =
        reg.GetHistogram("serving.latency_seconds", {{"tenant", "T"}});
    ASSERT_NE(lat, nullptr);
    EXPECT_EQ(lat->count(), stats.completed);
    EXPECT_DOUBLE_EQ(lat->Percentile(50.0), stats.p50_latency_s);
    EXPECT_DOUBLE_EQ(lat->Percentile(95.0), stats.p95_latency_s);
    EXPECT_DOUBLE_EQ(lat->Percentile(99.0), stats.p99_latency_s);
    EXPECT_EQ(
        reg.GetCounter("serving.completed", {{"tenant", "T"}})->value(),
        stats.completed);
    EXPECT_EQ(
        reg.GetCounter("serving.slo_miss", {{"tenant", "T"}})->value(),
        stats.slo_misses);
    EXPECT_GE(stats.max_queue_depth, 1);

    // The trace must parse and carry queue-depth counters and at
    // least one complete request flow.
    auto doc = obs::ParseJson(trace.Render());
    ASSERT_TRUE(doc.ok());
    int counters = 0;
    int flow_starts = 0;
    int flow_ends = 0;
    for (const auto& event : doc.value().array) {
        const std::string& ph = event.Find("ph")->string_value;
        if (ph == "C") ++counters;
        if (ph == "s") ++flow_starts;
        if (ph == "f") ++flow_ends;
    }
    EXPECT_GT(counters, 0);
    EXPECT_GT(flow_starts, 0);
    EXPECT_GT(flow_ends, 0);
    EXPECT_LE(flow_starts, 64);  // honors max_flows_per_tenant

    // Identical run without telemetry: results must be unchanged.
    auto plain = RunServingCell({tenant}, 2, 5.0, 7);
    ASSERT_TRUE(plain.ok());
    EXPECT_EQ(plain.value().tenants[0].completed, stats.completed);
    EXPECT_DOUBLE_EQ(plain.value().tenants[0].p99_latency_s,
                     stats.p99_latency_s);
}

}  // namespace
}  // namespace t4i
