/**
 * @file
 * Tests for the VLIW ISA layer: bundle formats, binary (in)compatibility
 * across generations (Lesson 2), and the bundle packer.
 */
#include <gtest/gtest.h>

#include "src/arch/catalog.h"
#include "src/compiler/compiler.h"
#include "src/models/zoo.h"
#include "src/vliw/bundle.h"
#include "src/vliw/isa.h"

namespace t4i {
namespace {

Program
CompileFor(const char* app, const ChipConfig& chip, int64_t batch,
           DType dtype = DType::kBf16)
{
    auto a = BuildApp(app).value();
    CompileOptions opts;
    opts.batch = batch;
    opts.dtype = dtype;
    auto p = Compile(a.graph, chip, opts);
    T4I_CHECK(p.ok(), p.status().ToString().c_str());
    return std::move(p).ConsumeValue();
}

// --- Formats -------------------------------------------------------------

TEST(Isa, EveryGenerationHasADistinctFormat)
{
    const char* gens[] = {"TPUv1", "TPUv2", "TPUv3", "TPUv4i"};
    for (size_t i = 0; i < std::size(gens); ++i) {
        for (size_t j = 0; j < std::size(gens); ++j) {
            auto a = BundleFormatOf(gens[i]);
            auto b = BundleFormatOf(gens[j]);
            if (i == j) {
                EXPECT_TRUE(CheckBinaryCompatible(a, b).ok());
            } else {
                EXPECT_FALSE(CheckBinaryCompatible(a, b).ok())
                    << gens[i] << " vs " << gens[j];
            }
        }
    }
}

TEST(Isa, Tpu4AndTpu4iShareTheCoreIsa)
{
    // The paper: TPUv4i and TPUv4 share a TensorCore design point.
    EXPECT_TRUE(CheckBinaryCompatible(BundleFormatOf("TPUv4i"),
                                      BundleFormatOf("TPUv4")).ok());
}

TEST(Isa, IncompatibilityMessageTeachesLesson2)
{
    auto status = CheckBinaryCompatible(BundleFormatOf("TPUv2"),
                                        BundleFormatOf("TPUv3"));
    ASSERT_FALSE(status.ok());
    EXPECT_NE(status.message().find("recompile"), std::string::npos);
}

TEST(Isa, SlotAccountingConsistent)
{
    BundleFormat f = BundleFormatOf("TPUv4i");
    int total = 0;
    for (SlotKind k :
         {SlotKind::kScalar, SlotKind::kVector, SlotKind::kMatrixPush,
          SlotKind::kMatrixPop, SlotKind::kMemory, SlotKind::kMisc}) {
        total += f.SlotsOf(k);
    }
    EXPECT_EQ(total, f.TotalSlots());
    EXPECT_GT(f.bundle_bits, BundleFormatOf("TPUv2").bundle_bits);
}

// --- Packer ---------------------------------------------------------------

TEST(Bundle, MicroOpsScaleWithWork)
{
    const ChipConfig chip = Tpu_v4i();
    Program small = CompileFor("CNN1", chip, 1);
    Program big = CompileFor("CNN1", chip, 32);
    auto c_small = CountMicroOps(small, chip.mxu.rows, chip.vpu_lanes);
    auto c_big = CountMicroOps(big, chip.mxu.rows, chip.vpu_lanes);
    EXPECT_GT(c_big.matrix_push, 4 * c_small.matrix_push);
    EXPECT_GT(c_big.vector, c_small.vector);
}

TEST(Bundle, PackRespectsSlotLimits)
{
    const ChipConfig chip = Tpu_v4i();
    Program p = CompileFor("BERT0", chip, 8);
    BundleFormat f = BundleFormatOf("TPUv4i");
    auto stats = PackBundles(p, f, chip.mxu.rows, chip.vpu_lanes)
                     .value();
    // The limiting class alone must need >= the reported bundles.
    EXPECT_GE(stats.bundles, 1);
    EXPECT_GT(stats.slot_occupancy, 0.0);
    EXPECT_LE(stats.slot_occupancy, 1.0);
    EXPECT_EQ(stats.code_bytes,
              stats.bundles * f.bundle_bits / 8);
}

TEST(Bundle, WiderFormatNeedsFewerBundles)
{
    const ChipConfig chip = Tpu_v4i();
    Program p = CompileFor("CNN0", chip, 8);
    auto v2 = PackBundles(p, BundleFormatOf("TPUv2"), chip.mxu.rows,
                          chip.vpu_lanes).value();
    auto v4i = PackBundles(p, BundleFormatOf("TPUv4i"), chip.mxu.rows,
                           chip.vpu_lanes).value();
    EXPECT_LT(v4i.bundles, v2.bundles);
}

TEST(Bundle, Tpu1CannotEncodeVectorPrograms)
{
    // TPUv1's format has no vector slots; a program with VPU work is
    // not encodable — the fixed-function-pipeline limit, ISA edition.
    const ChipConfig chip = Tpu_v4i();
    Program p = CompileFor("BERT0", chip, 8);
    auto packed = PackBundles(p, BundleFormatOf("TPUv1"),
                              chip.mxu.rows, chip.vpu_lanes);
    EXPECT_FALSE(packed.ok());
    EXPECT_EQ(packed.status().code(),
              StatusCode::kFailedPrecondition);
}

TEST(Bundle, RejectsNonVliwTarget)
{
    const ChipConfig chip = Tpu_v4i();
    Program p = CompileFor("CNN1", chip, 1);
    EXPECT_FALSE(PackBundles(p, BundleFormatOf("T4"), chip.mxu.rows,
                             chip.vpu_lanes).ok());
}

TEST(Bundle, RnnProgramsAreScalarOrMiscHeavy)
{
    // Recurrent programs issue many small macro-ops; their packing
    // efficiency is lower than a conv program's.
    const ChipConfig chip = Tpu_v4i();
    Program rnn = CompileFor("RNN0", chip, 16);
    Program cnn = CompileFor("CNN0", chip, 16);
    BundleFormat f = BundleFormatOf("TPUv4i");
    auto s_rnn =
        PackBundles(rnn, f, chip.mxu.rows, chip.vpu_lanes).value();
    auto s_cnn =
        PackBundles(cnn, f, chip.mxu.rows, chip.vpu_lanes).value();
    EXPECT_LT(s_rnn.slot_occupancy, s_cnn.slot_occupancy * 1.5);
    EXPECT_GT(s_rnn.micro_ops.misc, 0);
}

}  // namespace
}  // namespace t4i
