/**
 * @file
 * Functional-executor fuzzing: random small graphs execute under all
 * three precision contracts; outputs must be finite, deterministic,
 * and ordered (fp32 exact, bf16 >= int8 fidelity on average), plus
 * builder parameter sweeps for the zoo.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "src/common/rng.h"
#include "src/models/zoo.h"
#include "src/tensor/executor.h"

namespace t4i {
namespace {

/** Small random graph executable by the functional executor. */
Graph
RandomExecGraph(Rng& rng)
{
    Graph g("exec_fuzz");
    const int flavor = static_cast<int>(rng.NextBounded(4));
    int x;
    switch (flavor) {
      case 0: {  // dense chain with residuals
        int64_t f = 8 + static_cast<int64_t>(rng.NextBounded(4)) * 8;
        x = g.AddInput("x", {f});
        const int depth = 1 + static_cast<int>(rng.NextBounded(4));
        for (int i = 0; i < depth; ++i) {
            if (rng.NextBool(0.3)) {
                LayerParams add;
                add.arity = 2;
                add.activation = Activation::kRelu;
                x = g.AddLayer(LayerKind::kElementwise,
                               "res" + std::to_string(i), {x, x}, add);
            }
            LayerParams p;
            p.in_features = f;
            f = 8 + static_cast<int64_t>(rng.NextBounded(4)) * 8;
            p.out_features = f;
            p.activation = rng.NextBool(0.5) ? Activation::kGelu
                                             : Activation::kTanh;
            x = g.AddLayer(LayerKind::kDense, "fc" + std::to_string(i),
                           {x}, p);
        }
        break;
      }
      case 1: {  // tiny conv stack
        int64_t h = 8 + static_cast<int64_t>(rng.NextBounded(2)) * 4;
        x = g.AddInput("x", {h, h, 3});
        const int depth = 1 + static_cast<int>(rng.NextBounded(3));
        for (int i = 0; i < depth; ++i) {
            LayerParams p;
            p.kernel_h = 3;
            p.kernel_w = 3;
            p.stride = 1;
            p.pad = 1;
            p.out_channels =
                4 + static_cast<int64_t>(rng.NextBounded(3)) * 4;
            p.activation = Activation::kRelu;
            x = g.AddLayer(LayerKind::kConv2d,
                           "conv" + std::to_string(i), {x}, p);
        }
        x = g.AddLayer(LayerKind::kGlobalPool, "gap", {x},
                       LayerParams{});
        break;
      }
      case 2: {  // attention + ffn + norm
        const int64_t seq =
            4 + static_cast<int64_t>(rng.NextBounded(3)) * 4;
        const int64_t d =
            16 + static_cast<int64_t>(rng.NextBounded(3)) * 16;
        x = g.AddInput("x", {seq, d});
        LayerParams attn;
        attn.seq_len = seq;
        attn.d_model = d;
        attn.num_heads = 2;
        x = g.AddLayer(LayerKind::kAttention, "attn", {x}, attn);
        x = g.AddLayer(LayerKind::kLayerNorm, "ln", {x},
                       LayerParams{});
        LayerParams ffn;
        ffn.d_model = d;
        ffn.d_ff = d * 2;
        x = g.AddLayer(LayerKind::kFeedForward, "ffn", {x}, ffn);
        x = g.AddLayer(LayerKind::kSoftmax, "sm", {x}, LayerParams{});
        break;
      }
      default: {  // embedding -> lstm
        const int64_t seq =
            3 + static_cast<int64_t>(rng.NextBounded(4));
        x = g.AddInput("ids", {seq});
        LayerParams embed;
        embed.vocab = 100 + static_cast<int64_t>(rng.NextBounded(400));
        embed.embed_dim =
            8 + static_cast<int64_t>(rng.NextBounded(3)) * 8;
        embed.lookups_per_sample = seq;
        x = g.AddLayer(LayerKind::kEmbedding, "embed", {x}, embed);
        LayerParams lstm;
        lstm.seq_len = seq;
        lstm.hidden_dim =
            8 + static_cast<int64_t>(rng.NextBounded(3)) * 8;
        x = g.AddLayer(LayerKind::kLstm, "lstm", {x}, lstm);
        break;
      }
    }
    T4I_CHECK(g.Finalize().ok(), "exec fuzz graph must finalize");
    return g;
}

class ExecFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ExecFuzz, AllPrecisionsFiniteAndOrdered)
{
    Rng rng(GetParam() * 7919);
    Graph g = RandomExecGraph(rng);
    const int64_t batch =
        1 + static_cast<int64_t>(rng.NextBounded(3));

    auto fp32 = PrecisionLoss(g, MatmulPrecision::kFp32, batch,
                              GetParam());
    ASSERT_TRUE(fp32.ok()) << fp32.status().ToString();
    EXPECT_EQ(fp32.value().rms_error, 0.0);

    auto bf16 = PrecisionLoss(g, MatmulPrecision::kBf16, batch,
                              GetParam());
    ASSERT_TRUE(bf16.ok());
    auto int8 = PrecisionLoss(g, MatmulPrecision::kInt8, batch,
                              GetParam());
    ASSERT_TRUE(int8.ok());

    EXPECT_TRUE(std::isfinite(bf16.value().rms_error));
    EXPECT_TRUE(std::isfinite(int8.value().rms_error));
    // bf16 must carry real fidelity on every graph; int8 may be fine
    // or poor depending on the data, but never better than bf16 by a
    // wide margin.
    EXPECT_GT(bf16.value().sqnr_db, 20.0);
    EXPECT_LT(int8.value().sqnr_db, bf16.value().sqnr_db + 10.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExecFuzz,
                         ::testing::Range<uint64_t>(1, 25));

// --- Builder parameter sweeps ----------------------------------------------

class BertSweep
    : public ::testing::TestWithParam<std::tuple<int, int64_t>> {};

TEST_P(BertSweep, CostScalesWithDepthAndWidth)
{
    const auto [layers, d_model] = GetParam();
    Graph g = BuildBert("b", layers, d_model, 8, d_model * 4, 32,
                        1000);
    EXPECT_TRUE(g.finalized());
    auto c = g.Cost(1, DType::kBf16, DType::kBf16).value();
    // Parameter count ~ layers * 12 d^2 (+ embeddings).
    const double expected_params =
        static_cast<double>(layers) * 12.0 *
            static_cast<double>(d_model) * static_cast<double>(d_model) +
        1000.0 * static_cast<double>(d_model);
    EXPECT_NEAR(static_cast<double>(c.weight_bytes) / 2.0,
                expected_params, 0.25 * expected_params);
}

INSTANTIATE_TEST_SUITE_P(
    Dims, BertSweep,
    ::testing::Combine(::testing::Values(1, 2, 4),
                       ::testing::Values<int64_t>(64, 128, 256)));

class ResNetSweep : public ::testing::TestWithParam<int> {};

TEST_P(ResNetSweep, DeeperMeansMoreFlops)
{
    const int blocks = GetParam();
    Graph shallow = BuildResNetish("a", blocks, 32);
    Graph deep = BuildResNetish("b", blocks + 2, 32);
    auto cs = shallow.Cost(1, DType::kBf16, DType::kBf16).value();
    auto cd = deep.Cost(1, DType::kBf16, DType::kBf16).value();
    EXPECT_GT(cd.total_flops, cs.total_flops);
    EXPECT_GT(cd.weight_bytes, cs.weight_bytes);
}

INSTANTIATE_TEST_SUITE_P(Depths, ResNetSweep,
                         ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace t4i
