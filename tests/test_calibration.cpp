/**
 * @file
 * Tests for post-training quantization calibration (Lesson 6's
 * engineering tax, quantified).
 */
#include <gtest/gtest.h>

#include <cmath>

#include "src/common/rng.h"
#include "src/numerics/calibration.h"

namespace t4i {
namespace {

/** Gaussian data with a few large outliers mixed in. */
std::vector<float>
OutlierData(uint64_t seed, size_t n, double outlier_fraction,
            double outlier_scale)
{
    Rng rng(seed);
    std::vector<float> data(n);
    for (auto& x : data) {
        x = static_cast<float>(rng.NextGaussian());
        if (rng.NextBool(outlier_fraction)) {
            x *= static_cast<float>(outlier_scale);
        }
    }
    return data;
}

TEST(Calibration, RejectsEmptySamples)
{
    EXPECT_FALSE(Calibrate({}, CalibrationMethod::kMinMax).ok());
}

TEST(Calibration, MinMaxCoversFullRange)
{
    auto p = Calibrate({-4.0f, 1.0f, 2.0f},
                       CalibrationMethod::kMinMax).value();
    EXPECT_NEAR(p.scale, 4.0 / 127.0, 1e-9);
    EXPECT_EQ(p.zero_point, 0);
}

TEST(Calibration, PercentileClipsOutliers)
{
    auto data = OutlierData(7, 100000, 0.001, 1000.0);
    auto minmax =
        Calibrate(data, CalibrationMethod::kMinMax).value();
    auto p99 =
        Calibrate(data, CalibrationMethod::kPercentile99).value();
    EXPECT_LT(p99.scale, minmax.scale / 10.0);
}

TEST(Calibration, PercentileBeatsMinMaxOnBulkValues)
{
    // With rare huge outliers, min/max wastes almost the whole int8
    // range on them, crushing the resolution of the bulk values that
    // actually carry the model's information. Percentile clipping
    // sacrifices the outliers to keep the bulk accurate. Measure the
    // error on the non-outlier subset only.
    Rng rng(11);
    std::vector<float> data;
    std::vector<bool> is_outlier;
    for (int i = 0; i < 50000; ++i) {
        float x = static_cast<float>(rng.NextGaussian());
        const bool outlier = rng.NextBool(0.001);
        if (outlier) x *= 500.0f;
        data.push_back(x);
        is_outlier.push_back(outlier);
    }
    auto bulk_mae = [&](CalibrationMethod method) {
        auto params = Calibrate(data, method).value();
        auto rt = DequantizeInt8(QuantizeInt8(data, params), params);
        double sum = 0.0;
        int64_t n = 0;
        for (size_t i = 0; i < data.size(); ++i) {
            if (is_outlier[i]) continue;
            sum += std::fabs(rt[i] - data[i]);
            ++n;
        }
        return sum / static_cast<double>(n);
    };
    EXPECT_LT(bulk_mae(CalibrationMethod::kPercentile999),
              bulk_mae(CalibrationMethod::kMinMax) / 5.0);
}

TEST(Calibration, MseOptimalAtLeastAsGoodAsHeuristics)
{
    for (uint64_t seed : {3u, 5u, 9u}) {
        auto data = OutlierData(seed, 20000, 0.002, 200.0);
        const double mse_opt =
            CalibratedQuantError(data, data,
                                 CalibrationMethod::kMseOptimal)
                .value().rms_error;
        for (auto m : {CalibrationMethod::kMinMax,
                       CalibrationMethod::kPercentile999,
                       CalibrationMethod::kPercentile99}) {
            const double other =
                CalibratedQuantError(data, data, m).value().rms_error;
            EXPECT_LE(mse_opt, other * 1.05)
                << CalibrationMethodName(m) << " seed " << seed;
        }
    }
}

TEST(Calibration, CleanGaussianNeedsNoClipping)
{
    // Without outliers, min/max is already close to optimal: methods
    // should be within a couple of dB of each other.
    Rng rng(21);
    std::vector<float> data(20000);
    for (auto& x : data) {
        x = static_cast<float>(rng.NextGaussian());
    }
    const double minmax = CalibratedQuantError(
        data, data, CalibrationMethod::kMinMax).value().sqnr_db;
    const double mse = CalibratedQuantError(
        data, data, CalibrationMethod::kMseOptimal).value().sqnr_db;
    EXPECT_LT(mse - minmax, 12.0);
    EXPECT_GE(mse + 1e-9, minmax - 1.0);
}

TEST(Calibration, HoldoutGeneralizes)
{
    // Calibrate on one sample set, evaluate on another draw of the
    // same distribution: SQNR should be close to the in-sample value.
    auto calib = OutlierData(31, 20000, 0.001, 300.0);
    auto eval = OutlierData(32, 20000, 0.001, 300.0);
    const double in_sample = CalibratedQuantError(
        calib, calib, CalibrationMethod::kPercentile999)
        .value().sqnr_db;
    const double held_out = CalibratedQuantError(
        calib, eval, CalibrationMethod::kPercentile999)
        .value().sqnr_db;
    EXPECT_NEAR(held_out, in_sample, 3.0);
}

TEST(Calibration, MethodNames)
{
    EXPECT_STREQ(CalibrationMethodName(CalibrationMethod::kMinMax),
                 "min/max");
    EXPECT_STREQ(
        CalibrationMethodName(CalibrationMethod::kMseOptimal),
        "MSE-optimal");
}

}  // namespace
}  // namespace t4i
