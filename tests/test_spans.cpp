/**
 * @file
 * Tests for request-scoped tracing (src/obs/spans.h), the flight
 * recorder (src/obs/flight_recorder.h), and declarative alerts
 * (src/obs/alerts.h) — including the end-to-end invariants the
 * serving simulator guarantees: a root span's duration equals the
 * request latency exactly, child spans partition it, and enabling
 * spans leaves the serving results bit-identical.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "src/common/log.h"
#include "src/obs/alerts.h"
#include "src/obs/export.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/json.h"
#include "src/obs/registry.h"
#include "src/obs/spans.h"
#include "src/obs/trace_builder.h"
#include "src/serving/server.h"

namespace t4i {
namespace {

std::function<double(int64_t)>
AffineLatency(double fixed_s, double per_sample_s)
{
    return [=](int64_t batch) {
        return fixed_s + per_sample_s * static_cast<double>(batch);
    };
}

TenantConfig
Tenant(const std::string& name, double rate, double slo_s = 0.010)
{
    TenantConfig t;
    t.name = name;
    t.latency_s = AffineLatency(1e-3, 1e-4);
    t.max_batch = 32;
    t.slo_s = slo_s;
    t.arrival_rate = rate;
    return t;
}

std::string
TempPath(const std::string& name)
{
    return testing::TempDir() + name;
}

// --- SpanCollector basics -------------------------------------------------

TEST(SpanCollector, BuildsATree)
{
    obs::SpanCollector spans;
    const uint64_t trace = spans.NewTrace();
    const obs::SpanId root = spans.StartSpan(trace, 0, "request", 1.0);
    const obs::SpanId child = spans.StartSpan(trace, root, "queue", 1.0);
    spans.SetAttribute(root, "tenant", "A");
    spans.AddEvent(child, "woke", 1.5);
    spans.EndSpan(child, 2.0);
    spans.EndSpan(root, 3.0);

    ASSERT_EQ(spans.spans().size(), 2u);
    EXPECT_EQ(spans.open_count(), 0u);
    EXPECT_EQ(spans.errors(), 0);
    EXPECT_TRUE(spans.CheckIntegrity().ok());

    const obs::Span* r = spans.Find(root);
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(r->parent_id, 0u);
    EXPECT_DOUBLE_EQ(r->duration_s(), 2.0);
    EXPECT_EQ(r->Attribute("tenant"), "A");

    const auto children = spans.ChildrenOf(root);
    ASSERT_EQ(children.size(), 1u);
    EXPECT_EQ(children[0]->name, "queue");
    ASSERT_EQ(children[0]->events.size(), 1u);
    EXPECT_EQ(children[0]->events[0].name, "woke");
}

TEST(SpanCollector, CountsInvalidOperations)
{
    obs::SpanCollector spans;
    spans.EndSpan(42, 1.0);  // never opened
    const obs::SpanId s = spans.StartSpan(spans.NewTrace(), 0, "x", 0.0);
    spans.EndSpan(s, 1.0);
    spans.EndSpan(s, 2.0);  // double close
    EXPECT_EQ(spans.errors(), 2);
}

TEST(SpanCollector, IntegrityCatchesBadParent)
{
    obs::SpanCollector spans;
    const uint64_t a = spans.NewTrace();
    const uint64_t b = spans.NewTrace();
    const obs::SpanId root_a = spans.StartSpan(a, 0, "request", 0.0);
    // Parent from a different trace: structurally invalid.
    spans.StartSpan(b, root_a, "child", 0.0);
    EXPECT_FALSE(spans.CheckIntegrity().ok());
}

TEST(SpanCollector, RegistryInstrumentsAreEager)
{
    obs::MetricsRegistry reg;
    obs::SpanCollector spans;
    spans.BindRegistry(&reg);
    // Instruments exist before the first span (stable export shape).
    bool found = false;
    for (const auto& entry : reg.Snapshot()) {
        if (entry.name == "obs.span.started") found = true;
    }
    EXPECT_TRUE(found);

    const uint64_t t = spans.NewTrace();
    const obs::SpanId s = spans.StartSpan(t, 0, "x", 0.0);
    spans.EndSpan(s, 1.0);
    EXPECT_EQ(reg.GetCounter("obs.span.started")->value(), 1);
    EXPECT_EQ(reg.GetCounter("obs.span.closed")->value(), 1);
}

TEST(SpanCollector, JsonlParsesLineByLine)
{
    obs::SpanCollector spans;
    const uint64_t t = spans.NewTrace();
    const obs::SpanId root = spans.StartSpan(t, 0, "request", 0.5);
    spans.SetAttribute(root, "tenant", "quo\"ted");
    const obs::SpanId child = spans.StartSpan(t, root, "queue", 0.5);
    spans.AddEvent(child, "evt", 0.75);
    spans.EndSpan(child, 1.0);
    // Root left open on purpose: open spans must export too.

    const std::string jsonl = spans.ToJsonl();
    size_t lines = 0;
    size_t start = 0;
    while (start < jsonl.size()) {
        size_t end = jsonl.find('\n', start);
        if (end == std::string::npos) end = jsonl.size();
        auto doc = obs::ParseJson(jsonl.substr(start, end - start));
        ASSERT_TRUE(doc.ok()) << doc.status().ToString();
        EXPECT_TRUE(doc.value().Find("trace_id") != nullptr);
        ++lines;
        start = end + 1;
    }
    EXPECT_EQ(lines, 2u);

    auto open_doc = obs::ParseJson(spans.OpenSpansJson());
    ASSERT_TRUE(open_doc.ok());
    ASSERT_EQ(open_doc.value().array.size(), 1u);
}

TEST(SpanCollector, AppendToTraceRendersSlicesAndFlows)
{
    obs::SpanCollector spans;
    const uint64_t t = spans.NewTrace();
    const obs::SpanId root = spans.StartSpan(t, 0, "request", 0.0);
    const obs::SpanId lose = spans.StartSpan(t, root, "execute", 0.1);
    const obs::SpanId win = spans.StartSpan(t, root, "execute", 0.2);
    spans.EndSpan(lose, 0.4);
    spans.EndSpan(win, 0.3);
    spans.Link(lose, win);
    spans.EndSpan(root, 0.3);

    obs::TraceBuilder builder;
    ASSERT_TRUE(spans.AppendToTrace(&builder, 3).ok());
    auto doc = obs::ParseJson(builder.Render());
    ASSERT_TRUE(doc.ok()) << doc.status().ToString();
    ASSERT_TRUE(doc.value().is_array());
    int slices = 0;
    int flows = 0;
    for (const auto& e : doc.value().array) {
        const obs::JsonValue* ph = e.Find("ph");
        if (ph == nullptr) continue;
        if (ph->string_value == "X") ++slices;
        if (ph->string_value == "s" || ph->string_value == "f") ++flows;
    }
    EXPECT_EQ(slices, 3);
    EXPECT_EQ(flows, 2);  // one arrow: start + finish
}

// --- FlightRecorder -------------------------------------------------------

TEST(FlightRecorder, RingWrapsKeepingNewestOldestFirst)
{
    obs::FlightRecorderConfig config;
    config.capacity = 4;
    obs::FlightRecorder recorder(config);
    for (int i = 0; i < 10; ++i) {
        recorder.Record(obs::FlightEventKind::kNote,
                        static_cast<double>(i), "e", i);
    }
    EXPECT_EQ(recorder.size(), 4u);
    EXPECT_EQ(recorder.total_recorded(), 10);
    const auto events = recorder.Events();
    ASSERT_EQ(events.size(), 4u);
    for (size_t i = 0; i < events.size(); ++i) {
        EXPECT_DOUBLE_EQ(events[i].value, 6.0 + static_cast<double>(i));
    }
}

TEST(FlightRecorder, PartialRingReadsInOrder)
{
    obs::FlightRecorderConfig config;
    config.capacity = 8;
    obs::FlightRecorder recorder(config);
    recorder.Record(obs::FlightEventKind::kNote, 0.0, "a", 1);
    recorder.Record(obs::FlightEventKind::kNote, 0.1, "b", 2);
    const auto events = recorder.Events();
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0].message, "a");
    EXPECT_EQ(events[1].message, "b");
}

TEST(FlightRecorder, DumpsOncePerRun)
{
    const std::string path = TempPath("bb_once.json");
    obs::FlightRecorderConfig config;
    config.dump_path = path;
    obs::FlightRecorder recorder(config);
    recorder.Record(obs::FlightEventKind::kNote, 0.5, "before", 0);
    recorder.OnFault(1.0, "device 0 down");
    ASSERT_TRUE(recorder.dumped());
    const std::string first_reason = recorder.dump_reason();
    recorder.OnFault(2.0, "device 1 down");  // later trigger: no re-dump
    EXPECT_EQ(recorder.dump_reason(), first_reason);

    auto text = obs::ReadTextFile(path);
    ASSERT_TRUE(text.ok());
    auto doc = obs::ParseJson(text.value());
    ASSERT_TRUE(doc.ok()) << doc.status().ToString();
    const obs::JsonValue* events = doc.value().Find("events");
    ASSERT_NE(events, nullptr);
    // The dump reflects the state at the first trigger.
    EXPECT_EQ(events->array.size(), 2u);
    std::remove(path.c_str());
}

TEST(FlightRecorder, TriggerRespectsConfig)
{
    obs::FlightRecorderConfig config;
    config.dump_path = TempPath("bb_never.json");
    config.dump_on_fault = false;
    config.dump_on_deadline_drop = false;
    obs::FlightRecorder recorder(config);
    recorder.OnFault(1.0, "down");
    recorder.OnDeadlineDrop(1.0, "late");
    EXPECT_FALSE(recorder.dumped());
    // Events still recorded even when the trigger does not dump.
    EXPECT_EQ(recorder.size(), 2u);
}

TEST(FlightRecorder, DumpIncludesOpenSpansAndDeviceState)
{
    obs::SpanCollector spans;
    const uint64_t t = spans.NewTrace();
    spans.StartSpan(t, 0, "request", 0.25);  // left open

    obs::FlightRecorder recorder;
    recorder.BindSpans(&spans);
    recorder.SetDeviceStateProvider([](double) {
        return std::string("[{\"device\":0,\"down\":true}]");
    });
    auto doc = obs::ParseJson(recorder.DumpJson("test", 1.0));
    ASSERT_TRUE(doc.ok()) << doc.status().ToString();
    const obs::JsonValue* open = doc.value().Find("open_spans");
    ASSERT_NE(open, nullptr);
    ASSERT_EQ(open->array.size(), 1u);
    const obs::JsonValue* devices = doc.value().Find("devices");
    ASSERT_NE(devices, nullptr);
    ASSERT_EQ(devices->array.size(), 1u);
    EXPECT_TRUE(devices->array[0].Find("down")->bool_value);
}

TEST(FlightRecorder, LogSinkRoutesMessages)
{
    obs::FlightRecorder recorder;
    recorder.InstallLogSink();
    const LogLevel saved = GetLogLevel();
    SetLogLevel(LogLevel::kWarn);
    LogMessage(LogLevel::kInfo, "below threshold %d", 1);
    LogMessage(LogLevel::kWarn, "at threshold %d", 2);
    SetLogLevel(saved);
    recorder.UninstallLogSink();
    LogMessage(LogLevel::kError, "after uninstall");

    const auto events = recorder.Events();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].kind, obs::FlightEventKind::kLog);
    EXPECT_EQ(events[0].message, "WARN: at threshold 2");
}

// --- Alert rules ----------------------------------------------------------

TEST(AlertRules, ParsesGrammar)
{
    auto rules = obs::ParseAlertRules(
        "# comment\n"
        "alert burn serving.slo_burn_rate{tenant=A} > 1.0 for 0.5\n"
        "alert p99 serving.latency_seconds:p99 > 0.05\n"
        "alert floor serving.goodput_rps <= 100 for 1\n");
    ASSERT_TRUE(rules.ok()) << rules.status().ToString();
    ASSERT_EQ(rules.value().size(), 3u);
    EXPECT_EQ(rules.value()[0].name, "burn");
    EXPECT_EQ(rules.value()[0].metric, "serving.slo_burn_rate");
    ASSERT_EQ(rules.value()[0].label_filter.size(), 1u);
    EXPECT_EQ(rules.value()[0].label_filter[0].second, "A");
    EXPECT_DOUBLE_EQ(rules.value()[0].for_s, 0.5);
    EXPECT_EQ(rules.value()[1].field, "p99");
    EXPECT_DOUBLE_EQ(rules.value()[1].for_s, 0.0);
    EXPECT_EQ(rules.value()[2].cmp, obs::AlertComparator::kLe);
}

TEST(AlertRules, RejectsMalformedLinesWithLineNumber)
{
    auto missing = obs::ParseAlertRules("alert broken metric >\n");
    ASSERT_FALSE(missing.ok());
    EXPECT_NE(missing.status().ToString().find("line 1"),
              std::string::npos);

    EXPECT_FALSE(obs::ParseAlertRules("alarm x m > 1\n").ok());
    EXPECT_FALSE(obs::ParseAlertRules("alert x m >> 1\n").ok());
    EXPECT_FALSE(obs::ParseAlertRules("alert x m > NaNish\n").ok());
    EXPECT_FALSE(
        obs::ParseAlertRules("alert x m > 1 for -2\n").ok());
}

TEST(AlertEngine, HysteresisRequiresHoldDuration)
{
    obs::MetricsRegistry reg;
    obs::Gauge* g = reg.GetGauge("x");
    obs::AlertEngine engine;
    obs::AlertRule rule;
    rule.name = "hot";
    rule.metric = "x";
    rule.cmp = obs::AlertComparator::kGt;
    rule.threshold = 10.0;
    rule.for_s = 1.0;
    ASSERT_TRUE(engine.AddRule(rule).ok());

    g->Set(20.0);
    engine.Evaluate(reg, 0.0);
    EXPECT_EQ(engine.statuses()[0].state, obs::AlertState::kPending);
    engine.Evaluate(reg, 0.5);
    EXPECT_EQ(engine.statuses()[0].state, obs::AlertState::kPending);
    engine.Evaluate(reg, 1.0);  // held for 1.0 s: fires
    EXPECT_EQ(engine.statuses()[0].state, obs::AlertState::kFiring);
    EXPECT_TRUE(engine.AnyFiring());
    EXPECT_EQ(engine.statuses()[0].fire_count, 1);

    // One false evaluation resets the hold (hysteresis).
    g->Set(5.0);
    engine.Evaluate(reg, 1.5);
    EXPECT_EQ(engine.statuses()[0].state, obs::AlertState::kInactive);
    g->Set(20.0);
    engine.Evaluate(reg, 2.0);
    EXPECT_EQ(engine.statuses()[0].state, obs::AlertState::kPending);
    engine.Evaluate(reg, 2.9);
    EXPECT_EQ(engine.statuses()[0].state, obs::AlertState::kPending);
    engine.Evaluate(reg, 3.1);
    EXPECT_EQ(engine.statuses()[0].state, obs::AlertState::kFiring);
    EXPECT_EQ(engine.statuses()[0].fire_count, 2);
}

TEST(AlertEngine, MatchesHistogramFieldsAndLabels)
{
    obs::MetricsRegistry reg;
    obs::HistogramMetric* h =
        reg.GetHistogram("lat", {{"tenant", "A"}});
    for (int i = 1; i <= 100; ++i) h->Observe(i * 1e-3);
    reg.GetHistogram("lat", {{"tenant", "B"}})->Observe(1e-6);

    obs::AlertEngine engine;
    obs::AlertRule rule;
    rule.name = "p99";
    rule.metric = "lat";
    rule.label_filter = {{"tenant", "A"}};
    rule.field = "p99";
    rule.cmp = obs::AlertComparator::kGt;
    rule.threshold = 0.05;
    ASSERT_TRUE(engine.AddRule(rule).ok());
    engine.Evaluate(reg, 0.0);
    EXPECT_EQ(engine.statuses()[0].state, obs::AlertState::kFiring);
    // Worst-case over matches: tenant B's tiny sample is filtered out.
    EXPECT_GT(engine.statuses()[0].last_value, 0.05);
}

TEST(AlertEngine, FiringMirrorsIntoRecorderAndRegistry)
{
    obs::MetricsRegistry reg;
    reg.GetGauge("x")->Set(99.0);
    obs::FlightRecorderConfig config;
    config.dump_path = TempPath("bb_alert.json");
    config.dump_on_fault = false;
    config.dump_on_alert = true;
    obs::FlightRecorder recorder(config);

    obs::AlertEngine engine;
    engine.BindRegistry(&reg);
    engine.BindRecorder(&recorder);
    obs::AlertRule rule;
    rule.name = "hot";
    rule.metric = "x";
    rule.threshold = 10.0;
    ASSERT_TRUE(engine.AddRule(rule).ok());
    engine.Evaluate(reg, 1.0);
    EXPECT_TRUE(engine.AnyFiring());
    EXPECT_EQ(reg.GetCounter("obs.alert.firing")->value(), 1);
    EXPECT_DOUBLE_EQ(
        reg.GetGauge("obs.alert.active", {{"rule", "hot"}})->value(),
        1.0);
    EXPECT_TRUE(recorder.dumped());  // dump_on_alert
    std::remove(config.dump_path.c_str());

    // Resolve clears the active gauge.
    reg.GetGauge("x")->Set(0.0);
    engine.Evaluate(reg, 2.0);
    EXPECT_FALSE(engine.AnyFiring());
    EXPECT_DOUBLE_EQ(
        reg.GetGauge("obs.alert.active", {{"rule", "hot"}})->value(),
        0.0);
}

TEST(AlertEngine, RejectsDuplicateAndEmptyRules)
{
    obs::AlertEngine engine;
    obs::AlertRule rule;
    rule.name = "a";
    rule.metric = "m";
    ASSERT_TRUE(engine.AddRule(rule).ok());
    EXPECT_FALSE(engine.AddRule(rule).ok());
    obs::AlertRule empty;
    EXPECT_FALSE(engine.AddRule(empty).ok());
}

// --- Serving integration --------------------------------------------------

TEST(ServingSpans, RootDurationIsExactlyTheReportedLatency)
{
    obs::MetricsRegistry reg;
    obs::SpanCollector spans;
    ServingTelemetry telemetry;
    telemetry.registry = &reg;
    telemetry.spans = &spans;
    telemetry.max_traced_requests_per_tenant = 1 << 20;  // trace all

    TenantConfig t = Tenant("A", 400.0);
    auto result = RunServingCell({t}, 1, 2.0, 7, telemetry);
    ASSERT_TRUE(result.ok());
    const TenantStats& stats = result.value().tenants[0];
    ASSERT_GT(stats.completed, 0);
    ASSERT_TRUE(spans.CheckIntegrity().ok());
    EXPECT_EQ(spans.open_count(), 0u);

    // Every arrived request got a root span; completed ones closed
    // with outcome=completed and a duration equal to the latency the
    // registry histogram observed — the same doubles, bit for bit.
    const auto roots = spans.Roots();
    EXPECT_EQ(static_cast<int64_t>(roots.size()), stats.arrived);
    PercentileTracker durations;
    for (const obs::Span* root : roots) {
        ASSERT_FALSE(root->open);
        EXPECT_EQ(root->Attribute("outcome"), "completed");
        durations.Add(root->duration_s());
    }
    const obs::HistogramMetric* hist =
        reg.GetHistogram("serving.latency_seconds", {{"tenant", "A"}});
    ASSERT_NE(hist, nullptr);
    EXPECT_EQ(hist->count(), stats.completed);
    EXPECT_EQ(durations.Mean(), stats.mean_latency_s);
    EXPECT_EQ(durations.Percentile(50.0), stats.p50_latency_s);
    EXPECT_EQ(durations.Percentile(95.0), stats.p95_latency_s);
    EXPECT_EQ(durations.Percentile(99.0), stats.p99_latency_s);
}

TEST(ServingSpans, ChildrenPartitionTheRootExactly)
{
    obs::SpanCollector spans;
    ServingTelemetry telemetry;
    telemetry.spans = &spans;
    telemetry.max_traced_requests_per_tenant = 1 << 20;
    telemetry.batch_attribution = {
        {"mxu", 0.5}, {"vpu", 0.25}, {"memory", 0.25}};

    TenantConfig t = Tenant("A", 300.0);
    auto result = RunServingCell({t}, 1, 1.0, 11, telemetry);
    ASSERT_TRUE(result.ok());
    ASSERT_TRUE(spans.CheckIntegrity().ok());

    size_t checked = 0;
    for (const obs::Span* root : spans.Roots()) {
        const auto children = spans.ChildrenOf(root->span_id);
        // No faults: exactly queue + batch + execute.
        ASSERT_EQ(children.size(), 3u);
        const obs::Span* queue = children[0];
        const obs::Span* form = children[1];
        const obs::Span* exec = children[2];
        EXPECT_EQ(queue->name, "queue");
        EXPECT_EQ(form->name, "batch");
        EXPECT_EQ(exec->name, "execute");
        // Exact tiling: arrival -> ... -> completion with no gaps.
        EXPECT_EQ(queue->start_s, root->start_s);
        EXPECT_EQ(queue->end_s, form->start_s);
        EXPECT_EQ(form->end_s, exec->start_s);
        EXPECT_EQ(exec->end_s, root->end_s);

        // Engine-group sub-spans tile the winning execution.
        const auto engines = spans.ChildrenOf(exec->span_id);
        ASSERT_EQ(engines.size(), 3u);
        EXPECT_EQ(engines[0]->name, "execute/mxu");
        EXPECT_EQ(engines[0]->start_s, exec->start_s);
        EXPECT_EQ(engines[0]->end_s, engines[1]->start_s);
        EXPECT_EQ(engines[1]->end_s, engines[2]->start_s);
        // Fractions sum to 1: the last segment snaps to the exact end.
        EXPECT_EQ(engines[2]->end_s, exec->end_s);
        ++checked;
    }
    EXPECT_GT(checked, 0u);
}

TEST(ServingSpans, ResultsAreBitIdenticalWithSpansEnabled)
{
    TenantConfig t = Tenant("A", 500.0);
    t.max_queue = 64;
    t.deadline_s = 0.05;
    ReliabilityConfig reliability;
    reliability.faults.scripted.push_back(ScriptedFault{0, 0.3, 0.6});
    reliability.faults.transient_failure_prob = 0.05;

    auto plain = RunServingCell({t}, 2, 1.5, 3, ServingTelemetry{},
                                reliability);
    ASSERT_TRUE(plain.ok());

    obs::SpanCollector spans;
    obs::FlightRecorder recorder;
    ServingTelemetry telemetry;
    telemetry.spans = &spans;
    telemetry.recorder = &recorder;
    telemetry.max_traced_requests_per_tenant = 1 << 20;
    auto traced = RunServingCell({t}, 2, 1.5, 3, telemetry,
                                 reliability);
    ASSERT_TRUE(traced.ok());
    EXPECT_GT(spans.spans().size(), 0u);

    const TenantStats& a = plain.value().tenants[0];
    const TenantStats& b = traced.value().tenants[0];
    EXPECT_EQ(a.arrived, b.arrived);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.dropped, b.dropped);
    EXPECT_EQ(a.shed, b.shed);
    EXPECT_EQ(a.retried, b.retried);
    EXPECT_EQ(a.mean_latency_s, b.mean_latency_s);
    EXPECT_EQ(a.p99_latency_s, b.p99_latency_s);
    EXPECT_EQ(plain.value().device_busy_fraction,
              traced.value().device_busy_fraction);
    EXPECT_EQ(plain.value().availability,
              traced.value().availability);
}

TEST(ServingSpans, ConservationHoldsWithFaultsAndMidBatchAborts)
{
    // Satellite: arrived == completed + dropped + shed must survive
    // span recording through mid-batch aborts, retries, deadline
    // drops, and admission sheds.
    obs::MetricsRegistry reg;
    obs::SpanCollector spans;
    // Ring big enough that the mid-run fault is still buffered after
    // another second of span/queue-depth events.
    obs::FlightRecorderConfig recorder_config;
    recorder_config.capacity = 1 << 16;
    obs::FlightRecorder recorder(recorder_config);
    ServingTelemetry telemetry;
    telemetry.registry = &reg;
    telemetry.spans = &spans;
    telemetry.recorder = &recorder;
    telemetry.max_traced_requests_per_tenant = 1 << 20;

    TenantConfig t = Tenant("A", 800.0);
    t.max_queue = 48;
    t.deadline_s = 0.03;
    t.max_retries = 1;
    ReliabilityConfig reliability;
    // Device 0 dies mid-run (aborting whatever it was executing) and
    // never repairs; transient errors force retries throughout.
    reliability.faults.scripted.push_back(ScriptedFault{0, 0.4, -1.0});
    reliability.faults.transient_failure_prob = 0.1;

    auto result = RunServingCell({t}, 2, 1.5, 13, telemetry,
                                 reliability);
    ASSERT_TRUE(result.ok());
    const TenantStats& stats = result.value().tenants[0];
    EXPECT_EQ(stats.arrived,
              stats.completed + stats.dropped + stats.shed);
    EXPECT_GT(stats.retried, 0);
    ASSERT_TRUE(spans.CheckIntegrity().ok());
    // Every traced request's story ended: no span left open.
    EXPECT_EQ(spans.open_count(), 0u);

    // The mid-batch abort reached the recorder as a fault event.
    bool saw_fault = false;
    for (const auto& event : recorder.Events()) {
        if (event.kind == obs::FlightEventKind::kFault) {
            saw_fault = true;
        }
    }
    EXPECT_TRUE(saw_fault);
}

TEST(ServingSpans, FaultTriggeredDumpIsCompleteAndParses)
{
    const std::string path = TempPath("bb_serving.json");
    obs::MetricsRegistry reg;
    obs::SpanCollector spans;
    spans.BindRegistry(&reg);
    obs::FlightRecorderConfig config;
    config.dump_path = path;
    obs::FlightRecorder recorder(config);

    ServingTelemetry telemetry;
    telemetry.registry = &reg;
    telemetry.spans = &spans;
    telemetry.recorder = &recorder;
    telemetry.max_traced_requests_per_tenant = 1 << 20;

    // Saturating load: with both devices continuously busy, a batch is
    // guaranteed to be mid-flight on device 0 at the fault instant,
    // regardless of how the arrival stream is seeded.
    TenantConfig t = Tenant("A", 16000.0);
    ReliabilityConfig reliability;
    reliability.faults.scripted.push_back(ScriptedFault{0, 0.5, 0.9});

    auto result = RunServingCell({t}, 2, 1.5, 21, telemetry,
                                 reliability);
    ASSERT_TRUE(result.ok());
    ASSERT_TRUE(recorder.dumped());

    auto text = obs::ReadTextFile(path);
    ASSERT_TRUE(text.ok());
    auto doc = obs::ParseJson(text.value());
    ASSERT_TRUE(doc.ok()) << doc.status().ToString();
    const obs::JsonValue& dump = doc.value();
    EXPECT_NE(dump.Find("reason")->string_value.find("fault"),
              std::string::npos);
    // Events include the fault transition itself.
    bool saw_fault_event = false;
    for (const auto& event : dump.Find("events")->array) {
        if (event.Find("kind")->string_value == "fault") {
            saw_fault_event = true;
        }
    }
    EXPECT_TRUE(saw_fault_event);
    // Per-device fault state at dump time: device 0 is down.
    const obs::JsonValue* devices = dump.Find("devices");
    ASSERT_NE(devices, nullptr);
    ASSERT_EQ(devices->array.size(), 2u);
    EXPECT_TRUE(devices->array[0].Find("down")->bool_value);
    EXPECT_FALSE(devices->array[1].Find("down")->bool_value);
    // Registry snapshot spliced in as a JSON object.
    ASSERT_NE(dump.Find("metrics"), nullptr);
    EXPECT_TRUE(dump.Find("metrics")->is_object());
    // In-flight spans at dump time render as an array.
    ASSERT_NE(dump.Find("open_spans"), nullptr);
    EXPECT_TRUE(dump.Find("open_spans")->is_array());
    std::remove(path.c_str());
}

TEST(ServingSpans, RetriesBecomeSiblingAttemptsLinkedToWinner)
{
    obs::SpanCollector spans;
    ServingTelemetry telemetry;
    telemetry.spans = &spans;
    telemetry.max_traced_requests_per_tenant = 1 << 20;

    TenantConfig t = Tenant("A", 200.0);
    t.retry_backoff_s = 1e-4;
    ReliabilityConfig reliability;
    reliability.faults.transient_failure_prob = 0.2;

    auto result = RunServingCell({t}, 1, 1.0, 5, telemetry,
                                 reliability);
    ASSERT_TRUE(result.ok());
    ASSERT_GT(result.value().tenants[0].retried, 0);
    ASSERT_TRUE(spans.CheckIntegrity().ok());

    // Find a trace with a failed execute attempt followed by a
    // successful one; the retry shows up as a second queue + execute
    // pair under the same root.
    bool saw_retry_trace = false;
    for (const obs::Span* root : spans.Roots()) {
        int executes = 0;
        int failed = 0;
        for (const obs::Span* child :
             spans.ChildrenOf(root->span_id)) {
            if (child->name != "execute") continue;
            ++executes;
            if (child->Attribute("outcome") == "transient_error") {
                ++failed;
            }
        }
        if (executes >= 2 && failed >= 1 &&
            root->Attribute("outcome") == "completed") {
            saw_retry_trace = true;
            break;
        }
    }
    EXPECT_TRUE(saw_retry_trace);
}

TEST(ServingSpans, AlertsEvaluateDuringTheRun)
{
    obs::MetricsRegistry reg;
    obs::AlertEngine alerts;
    alerts.BindRegistry(&reg);
    // Completed-counter rule with a for-duration: can only fire if
    // the engine is evaluated repeatedly *during* the run while the
    // counter grows (a run-end evaluation alone can never satisfy
    // the hold).
    ASSERT_TRUE(alerts
                    .AddRulesFromText("alert work serving.completed > "
                                      "10 for 0.3\n")
                    .ok());

    ServingTelemetry telemetry;
    telemetry.registry = &reg;
    telemetry.alerts = &alerts;
    telemetry.alert_eval_interval_s = 0.05;

    TenantConfig t = Tenant("A", 400.0);
    auto result = RunServingCell({t}, 1, 2.0, 7, telemetry);
    ASSERT_TRUE(result.ok());
    EXPECT_GT(alerts.evaluations(), 10);
    EXPECT_TRUE(alerts.AnyFiring());
    EXPECT_EQ(alerts.statuses()[0].fire_count, 1);
    EXPECT_GT(alerts.statuses()[0].fired_at_s, 0.0);
    EXPECT_LT(alerts.statuses()[0].fired_at_s, 1.0);
}

}  // namespace
}  // namespace t4i
