/**
 * @file
 * Tests for the model IR: builder, validation, shape inference, cost
 * accounting.
 */
#include <gtest/gtest.h>

#include "src/graph/graph.h"

namespace t4i {
namespace {

LayerParams
DenseParams(int64_t in, int64_t out)
{
    LayerParams p;
    p.in_features = in;
    p.out_features = out;
    return p;
}

TEST(Graph, BuildAndFinalizeLinearChain)
{
    Graph g("toy");
    int in = g.AddInput("x", {64});
    int fc = g.AddLayer(LayerKind::kDense, "fc", {in},
                        DenseParams(64, 32));
    ASSERT_TRUE(g.Finalize().ok());
    EXPECT_EQ(g.num_layers(), 2);
    EXPECT_EQ(g.layer(fc).out_shape, std::vector<int64_t>({32}));
    EXPECT_TRUE(g.finalized());
}

TEST(Graph, RejectsForwardReference)
{
    Graph g("bad");
    g.AddInput("x", {8});
    g.AddLayer(LayerKind::kDense, "fc", {5}, DenseParams(8, 8));
    EXPECT_FALSE(g.Finalize().ok());
}

TEST(Graph, RejectsMissingInputs)
{
    Graph g("bad");
    g.AddInput("x", {8});
    g.AddLayer(LayerKind::kDense, "fc", {}, DenseParams(8, 8));
    EXPECT_FALSE(g.Finalize().ok());
}

TEST(Graph, RejectsShapeMismatch)
{
    Graph g("bad");
    int in = g.AddInput("x", {16});
    g.AddLayer(LayerKind::kDense, "fc", {in}, DenseParams(64, 32));
    EXPECT_FALSE(g.Finalize().ok());
}

TEST(Graph, RejectsMismatchedResidualInputs)
{
    Graph g("bad");
    int in = g.AddInput("x", {16});
    int a = g.AddLayer(LayerKind::kDense, "a", {in}, DenseParams(16, 16));
    int b = g.AddLayer(LayerKind::kDense, "b", {in}, DenseParams(16, 8));
    LayerParams add;
    add.arity = 2;
    g.AddLayer(LayerKind::kElementwise, "add", {a, b}, add);
    EXPECT_FALSE(g.Finalize().ok());
}

TEST(Graph, InputNeedsShape)
{
    Graph g("bad");
    g.AddInput("x", {});
    EXPECT_FALSE(g.Finalize().ok());
}

TEST(Graph, CostRequiresFinalize)
{
    Graph g("toy");
    int in = g.AddInput("x", {8});
    g.AddLayer(LayerKind::kDense, "fc", {in}, DenseParams(8, 8));
    EXPECT_FALSE(g.Cost(1, DType::kBf16, DType::kBf16).ok());
}

// --- Shape inference per kind ---------------------------------------------------

TEST(InferShape, DenseKeepsLeadingDims)
{
    Layer l;
    l.kind = LayerKind::kDense;
    l.params = DenseParams(64, 32);
    auto out = InferShape(l, {10, 64}).value();
    EXPECT_EQ(out, std::vector<int64_t>({10, 32}));
}

TEST(InferShape, Conv2dGeometry)
{
    Layer l;
    l.kind = LayerKind::kConv2d;
    l.params.kernel_h = 3;
    l.params.kernel_w = 3;
    l.params.stride = 2;
    l.params.pad = 1;
    l.params.out_channels = 64;
    auto out = InferShape(l, {224, 224, 3}).value();
    EXPECT_EQ(out, std::vector<int64_t>({112, 112, 64}));
}

TEST(InferShape, MaxPoolGeometry)
{
    Layer l;
    l.kind = LayerKind::kMaxPool;
    l.params.kernel_h = 3;
    l.params.kernel_w = 3;
    l.params.stride = 2;
    auto out = InferShape(l, {112, 112, 64}).value();
    EXPECT_EQ(out, std::vector<int64_t>({55, 55, 64}));
}

TEST(InferShape, GlobalPoolDropsSpatial)
{
    Layer l;
    l.kind = LayerKind::kGlobalPool;
    auto out = InferShape(l, {7, 7, 2048}).value();
    EXPECT_EQ(out, std::vector<int64_t>({2048}));
}

TEST(InferShape, LstmKeepsSeqChangesWidth)
{
    Layer l;
    l.kind = LayerKind::kLstm;
    l.params.seq_len = 80;
    l.params.hidden_dim = 1024;
    auto out = InferShape(l, {80, 512}).value();
    EXPECT_EQ(out, std::vector<int64_t>({80, 1024}));
}

TEST(InferShape, AttentionAndFfnPreserveShape)
{
    Layer attn;
    attn.kind = LayerKind::kAttention;
    attn.params.d_model = 768;
    EXPECT_EQ(InferShape(attn, {128, 768}).value(),
              (std::vector<int64_t>{128, 768}));

    Layer ffn;
    ffn.kind = LayerKind::kFeedForward;
    ffn.params.d_model = 768;
    ffn.params.d_ff = 3072;
    EXPECT_EQ(InferShape(ffn, {128, 768}).value(),
              (std::vector<int64_t>{128, 768}));
}

TEST(InferShape, EmbeddingProducesLookupRows)
{
    Layer l;
    l.kind = LayerKind::kEmbedding;
    l.params.vocab = 1000;
    l.params.embed_dim = 64;
    l.params.lookups_per_sample = 8;
    EXPECT_EQ(InferShape(l, {8}).value(),
              (std::vector<int64_t>{8, 64}));
}

TEST(InferShape, FlattenCollapses)
{
    Layer l;
    l.kind = LayerKind::kFlatten;
    EXPECT_EQ(InferShape(l, {8, 64}).value(),
              (std::vector<int64_t>{512}));
}

TEST(InferShape, RejectsWrongRanks)
{
    Layer conv;
    conv.kind = LayerKind::kConv2d;
    conv.params.kernel_h = 3;
    conv.params.kernel_w = 3;
    conv.params.out_channels = 8;
    EXPECT_FALSE(InferShape(conv, {224, 224}).ok());

    Layer lstm;
    lstm.kind = LayerKind::kLstm;
    lstm.params.seq_len = 10;
    lstm.params.hidden_dim = 4;
    EXPECT_FALSE(InferShape(lstm, {11, 4}).ok());
}

// --- Cost accounting ----------------------------------------------------------

TEST(LayerCost, DenseFlopsAndWeights)
{
    Layer l;
    l.kind = LayerKind::kDense;
    l.params = DenseParams(64, 32);
    auto c = ComputeLayerCost(l, {64}, 4, DType::kBf16,
                              DType::kBf16).value();
    EXPECT_DOUBLE_EQ(c.flops, 2.0 * 4 * 64 * 32);
    EXPECT_EQ(c.weight_bytes, (64 * 32 + 32) * 2);
    EXPECT_EQ(c.in_bytes, 4 * 64 * 2);
    EXPECT_EQ(c.out_bytes, 4 * 32 * 2);
}

TEST(LayerCost, DenseWithLeadingSequenceDim)
{
    Layer l;
    l.kind = LayerKind::kDense;
    l.params = DenseParams(64, 32);
    auto c = ComputeLayerCost(l, {10, 64}, 4, DType::kBf16,
                              DType::kBf16).value();
    // rows = batch * seq = 40
    EXPECT_DOUBLE_EQ(c.flops, 2.0 * 40 * 64 * 32);
}

TEST(LayerCost, ConvFlops)
{
    Layer l;
    l.kind = LayerKind::kConv2d;
    l.params.kernel_h = 3;
    l.params.kernel_w = 3;
    l.params.stride = 1;
    l.params.pad = 1;
    l.params.out_channels = 16;
    auto c = ComputeLayerCost(l, {8, 8, 4}, 2, DType::kBf16,
                              DType::kBf16).value();
    // 2 * N * OH * OW * Cout * KH * KW * Cin
    EXPECT_DOUBLE_EQ(c.flops, 2.0 * 2 * 8 * 8 * 16 * 3 * 3 * 4);
    EXPECT_EQ(c.weight_bytes, (3 * 3 * 4 * 16 + 16) * 2);
}

TEST(LayerCost, Int8WeightsHalveBf16)
{
    Layer l;
    l.kind = LayerKind::kDense;
    l.params = DenseParams(128, 128);
    auto bf = ComputeLayerCost(l, {128}, 1, DType::kBf16,
                               DType::kBf16).value();
    auto i8 = ComputeLayerCost(l, {128}, 1, DType::kInt8,
                               DType::kInt8).value();
    EXPECT_EQ(bf.weight_bytes, 2 * i8.weight_bytes);
    EXPECT_DOUBLE_EQ(bf.flops, i8.flops);
}

TEST(LayerCost, EmbeddingIsPureTraffic)
{
    Layer l;
    l.kind = LayerKind::kEmbedding;
    l.params.vocab = 1000;
    l.params.embed_dim = 64;
    l.params.lookups_per_sample = 8;
    auto c = ComputeLayerCost(l, {8}, 4, DType::kBf16,
                              DType::kBf16).value();
    EXPECT_DOUBLE_EQ(c.flops, 0.0);
    EXPECT_EQ(c.weight_bytes, 1000 * 64 * 2);
    EXPECT_EQ(c.out_bytes, 4 * 8 * 64 * 2);
}

TEST(LayerCost, LstmQuadraticInWidth)
{
    Layer narrow;
    narrow.kind = LayerKind::kLstm;
    narrow.params.seq_len = 10;
    narrow.params.hidden_dim = 128;
    Layer wide = narrow;
    wide.params.hidden_dim = 256;
    auto cn = ComputeLayerCost(narrow, {10, 128}, 1, DType::kBf16,
                               DType::kBf16).value();
    auto cw = ComputeLayerCost(wide, {10, 128}, 1, DType::kBf16,
                               DType::kBf16).value();
    EXPECT_GT(cw.flops, 2.0 * cn.flops);
    EXPECT_GT(cw.weight_bytes, cn.weight_bytes);
}

TEST(ModelCost, AggregatesAndIntensity)
{
    Graph g("toy");
    int in = g.AddInput("x", {256});
    int a = g.AddLayer(LayerKind::kDense, "a", {in},
                       DenseParams(256, 256));
    g.AddLayer(LayerKind::kDense, "b", {a}, DenseParams(256, 256));
    ASSERT_TRUE(g.Finalize().ok());
    auto c = g.Cost(8, DType::kBf16, DType::kBf16).value();
    EXPECT_DOUBLE_EQ(c.total_flops, 2.0 * (2.0 * 8 * 256 * 256));
    EXPECT_EQ(c.weight_bytes, 2 * (256 * 256 + 256) * 2);
    EXPECT_GT(c.ops_per_byte, 0.0);
    EXPECT_GT(c.ops_per_weight_byte, c.ops_per_byte);
}

TEST(ModelCost, IntensityGrowsWithBatch)
{
    Graph g("toy");
    int in = g.AddInput("x", {256});
    g.AddLayer(LayerKind::kDense, "a", {in}, DenseParams(256, 256));
    ASSERT_TRUE(g.Finalize().ok());
    auto c1 = g.Cost(1, DType::kBf16, DType::kBf16).value();
    auto c64 = g.Cost(64, DType::kBf16, DType::kBf16).value();
    // Weight reuse across the batch raises FLOPs per weight byte.
    EXPECT_GT(c64.ops_per_byte, c1.ops_per_byte);
}

TEST(Graph, ToStringListsLayers)
{
    Graph g("toy");
    int in = g.AddInput("x", {4});
    g.AddLayer(LayerKind::kDense, "fc", {in}, DenseParams(4, 2));
    ASSERT_TRUE(g.Finalize().ok());
    std::string s = g.ToString();
    EXPECT_NE(s.find("Dense"), std::string::npos);
    EXPECT_NE(s.find("fc"), std::string::npos);
}

}  // namespace
}  // namespace t4i
