/**
 * @file
 * Tests for the tensor substrate and reference operators (the functional
 * oracle used by the numerics experiments).
 */
#include <gtest/gtest.h>

#include <cmath>

#include "src/common/rng.h"
#include "src/numerics/quantize.h"
#include "src/tensor/ops.h"
#include "src/tensor/tensor.h"

namespace t4i {
namespace {

Tensor
MakeTensor(Shape shape, std::vector<float> data)
{
    return Tensor(std::move(shape), std::move(data));
}

// --- Shape / Tensor -----------------------------------------------------------

TEST(Shape, NumElementsAndToString)
{
    Shape s({2, 3, 4});
    EXPECT_EQ(s.rank(), 3);
    EXPECT_EQ(s.NumElements(), 24);
    EXPECT_EQ(s.ToString(), "[2, 3, 4]");
    EXPECT_EQ(Shape{}.NumElements(), 1);
}

TEST(Tensor, ZeroInitialized)
{
    Tensor t(Shape({4, 4}));
    for (int64_t i = 0; i < t.NumElements(); ++i) {
        EXPECT_EQ(t[i], 0.0f);
    }
}

TEST(Tensor, At2RowMajor)
{
    Tensor t(Shape({2, 3}), {1, 2, 3, 4, 5, 6});
    EXPECT_EQ(t.At2(0, 0), 1.0f);
    EXPECT_EQ(t.At2(0, 2), 3.0f);
    EXPECT_EQ(t.At2(1, 0), 4.0f);
    EXPECT_EQ(t.At2(1, 2), 6.0f);
}

TEST(Tensor, FillsAreDeterministic)
{
    Rng a(5);
    Rng b(5);
    Tensor x(Shape({100}));
    Tensor y(Shape({100}));
    x.FillGaussian(a, 2.0f);
    y.FillGaussian(b, 2.0f);
    for (int64_t i = 0; i < 100; ++i) EXPECT_EQ(x[i], y[i]);
}

// --- Matmul ---------------------------------------------------------------------

TEST(Matmul, HandComputed2x2)
{
    Tensor a = MakeTensor(Shape({2, 2}), {1, 2, 3, 4});
    Tensor b = MakeTensor(Shape({2, 2}), {5, 6, 7, 8});
    auto c = Matmul(a, b);
    ASSERT_TRUE(c.ok());
    EXPECT_EQ(c.value().At2(0, 0), 19.0f);
    EXPECT_EQ(c.value().At2(0, 1), 22.0f);
    EXPECT_EQ(c.value().At2(1, 0), 43.0f);
    EXPECT_EQ(c.value().At2(1, 1), 50.0f);
}

TEST(Matmul, IdentityIsNoOp)
{
    Tensor a = MakeTensor(Shape({2, 2}), {1.5f, -2.0f, 0.25f, 3.0f});
    Tensor id = MakeTensor(Shape({2, 2}), {1, 0, 0, 1});
    auto c = Matmul(a, id);
    ASSERT_TRUE(c.ok());
    for (int64_t i = 0; i < 4; ++i) EXPECT_EQ(c.value()[i], a[i]);
}

TEST(Matmul, RejectsMismatchedInner)
{
    Tensor a(Shape({2, 3}));
    Tensor b(Shape({4, 2}));
    EXPECT_FALSE(Matmul(a, b).ok());
}

TEST(Matmul, RejectsNonRank2)
{
    Tensor a(Shape({2, 3, 4}));
    Tensor b(Shape({4, 2}));
    EXPECT_FALSE(Matmul(a, b).ok());
}

TEST(Matmul, PrecisionErrorOrdering)
{
    // fp32 is exact; bf16 loses mantissa; int8's single scale loses more
    // on Gaussian data. SQNR must be ordered accordingly.
    Rng rng(3);
    Tensor a(Shape({32, 64}));
    Tensor b(Shape({64, 32}));
    a.FillGaussian(rng, 1.0f);
    b.FillGaussian(rng, 1.0f);

    auto exact = Matmul(a, b, MatmulPrecision::kFp32).value();
    auto bf16 = Matmul(a, b, MatmulPrecision::kBf16).value();
    auto int8 = Matmul(a, b, MatmulPrecision::kInt8).value();

    auto e_bf = ComputeError(exact.data(), bf16.data()).value();
    auto e_i8 = ComputeError(exact.data(), int8.data()).value();
    EXPECT_GT(e_bf.sqnr_db, 30.0);
    EXPECT_GT(e_i8.sqnr_db, 10.0);
    EXPECT_GT(e_bf.sqnr_db, e_i8.sqnr_db);
}

// --- BiasAdd / elementwise ------------------------------------------------------

TEST(BiasAdd, AddsPerColumn)
{
    Tensor x = MakeTensor(Shape({2, 3}), {0, 0, 0, 1, 1, 1});
    Tensor bias = MakeTensor(Shape({3}), {10, 20, 30});
    auto y = BiasAdd(x, bias);
    ASSERT_TRUE(y.ok());
    EXPECT_EQ(y.value().At2(0, 1), 20.0f);
    EXPECT_EQ(y.value().At2(1, 2), 31.0f);
}

TEST(BiasAdd, RejectsBadShapes)
{
    EXPECT_FALSE(BiasAdd(Tensor(Shape({2, 3})),
                         Tensor(Shape({2}))).ok());
}

TEST(Elementwise, ReluClampsNegatives)
{
    Tensor x = MakeTensor(Shape({4}), {-1.0f, 0.0f, 2.0f, -0.5f});
    Tensor y = Relu(x);
    EXPECT_EQ(y[0], 0.0f);
    EXPECT_EQ(y[1], 0.0f);
    EXPECT_EQ(y[2], 2.0f);
    EXPECT_EQ(y[3], 0.0f);
}

TEST(Elementwise, SigmoidRangeAndMidpoint)
{
    Tensor x = MakeTensor(Shape({3}), {-100.0f, 0.0f, 100.0f});
    Tensor y = Sigmoid(x);
    EXPECT_NEAR(y[0], 0.0f, 1e-6);
    EXPECT_NEAR(y[1], 0.5f, 1e-6);
    EXPECT_NEAR(y[2], 1.0f, 1e-6);
}

TEST(Elementwise, GeluMatchesKnownPoints)
{
    Tensor x = MakeTensor(Shape({3}), {0.0f, 1.0f, -1.0f});
    Tensor y = Gelu(x);
    EXPECT_NEAR(y[0], 0.0f, 1e-6);
    EXPECT_NEAR(y[1], 0.8412f, 1e-3);
    EXPECT_NEAR(y[2], -0.1588f, 1e-3);
}

TEST(Elementwise, TanhOddFunction)
{
    Tensor x = MakeTensor(Shape({2}), {0.7f, -0.7f});
    Tensor y = Tanh(x);
    EXPECT_NEAR(y[0], -y[1], 1e-7);
}

TEST(Add, ElementwiseSum)
{
    Tensor a = MakeTensor(Shape({2}), {1, 2});
    Tensor b = MakeTensor(Shape({2}), {10, 20});
    auto c = Add(a, b);
    ASSERT_TRUE(c.ok());
    EXPECT_EQ(c.value()[0], 11.0f);
    EXPECT_EQ(c.value()[1], 22.0f);
    EXPECT_FALSE(Add(a, Tensor(Shape({3}))).ok());
}

// --- Softmax / LayerNorm ----------------------------------------------------------

TEST(Softmax, RowsSumToOne)
{
    Rng rng(9);
    Tensor x(Shape({8, 16}));
    x.FillGaussian(rng, 3.0f);
    auto y = Softmax(x).value();
    for (int64_t r = 0; r < 8; ++r) {
        float sum = 0.0f;
        for (int64_t c = 0; c < 16; ++c) sum += y.At2(r, c);
        EXPECT_NEAR(sum, 1.0f, 1e-5);
    }
}

TEST(Softmax, StableForLargeLogits)
{
    Tensor x = MakeTensor(Shape({1, 2}), {1000.0f, 1000.0f});
    auto y = Softmax(x).value();
    EXPECT_NEAR(y[0], 0.5f, 1e-6);
    EXPECT_FALSE(std::isnan(y[1]));
}

TEST(LayerNorm, NormalizesRows)
{
    Rng rng(21);
    Tensor x(Shape({4, 256}));
    x.FillUniform(rng, 5.0f, 9.0f);
    auto y = LayerNorm(x).value();
    for (int64_t r = 0; r < 4; ++r) {
        float mean = 0.0f;
        float var = 0.0f;
        for (int64_t c = 0; c < 256; ++c) mean += y.At2(r, c);
        mean /= 256.0f;
        for (int64_t c = 0; c < 256; ++c) {
            var += (y.At2(r, c) - mean) * (y.At2(r, c) - mean);
        }
        var /= 256.0f;
        EXPECT_NEAR(mean, 0.0f, 1e-4);
        EXPECT_NEAR(var, 1.0f, 1e-2);
    }
}

// --- Conv / pooling ------------------------------------------------------------

TEST(Conv2d, IdentityKernelPreservesInput)
{
    // 1x1 kernel with weight 1 on a single channel is identity.
    Rng rng(33);
    Tensor x(Shape({1, 5, 5, 1}));
    x.FillGaussian(rng, 1.0f);
    Tensor k = MakeTensor(Shape({1, 1, 1, 1}), {1.0f});
    auto y = Conv2d(x, k, 1, 0).value();
    ASSERT_TRUE(y.shape() == x.shape());
    for (int64_t i = 0; i < x.NumElements(); ++i) {
        EXPECT_NEAR(y[i], x[i], 1e-6);
    }
}

TEST(Conv2d, SumKernelComputesNeighborhood)
{
    // All-ones input, 3x3 all-ones kernel, no pad: every output is 9.
    Tensor x(Shape({1, 4, 4, 1}), std::vector<float>(16, 1.0f));
    Tensor k(Shape({3, 3, 1, 1}), std::vector<float>(9, 1.0f));
    auto y = Conv2d(x, k, 1, 0).value();
    EXPECT_EQ(y.shape().dim(1), 2);
    EXPECT_EQ(y.shape().dim(2), 2);
    for (int64_t i = 0; i < y.NumElements(); ++i) {
        EXPECT_NEAR(y[i], 9.0f, 1e-6);
    }
}

TEST(Conv2d, PaddingKeepsSpatialSize)
{
    Tensor x(Shape({1, 4, 4, 2}));
    Tensor k(Shape({3, 3, 2, 5}));
    auto y = Conv2d(x, k, 1, 1).value();
    EXPECT_EQ(y.shape().dim(1), 4);
    EXPECT_EQ(y.shape().dim(2), 4);
    EXPECT_EQ(y.shape().dim(3), 5);
}

TEST(Conv2d, StrideDownsamples)
{
    Tensor x(Shape({1, 8, 8, 1}));
    Tensor k(Shape({2, 2, 1, 1}));
    auto y = Conv2d(x, k, 2, 0).value();
    EXPECT_EQ(y.shape().dim(1), 4);
    EXPECT_EQ(y.shape().dim(2), 4);
}

TEST(Conv2d, RejectsChannelMismatch)
{
    EXPECT_FALSE(Conv2d(Tensor(Shape({1, 4, 4, 3})),
                        Tensor(Shape({3, 3, 2, 8})), 1, 1).ok());
}

TEST(MaxPool2d, TakesWindowMax)
{
    Tensor x = MakeTensor(Shape({1, 2, 2, 1}), {1, 5, 3, 2});
    auto y = MaxPool2d(x, 2, 2).value();
    EXPECT_EQ(y.NumElements(), 1);
    EXPECT_EQ(y[0], 5.0f);
}

TEST(GlobalAvgPool, AveragesSpatial)
{
    Tensor x = MakeTensor(Shape({1, 2, 2, 1}), {1, 2, 3, 6});
    auto y = GlobalAvgPool(x).value();
    EXPECT_EQ(y.shape().dim(1), 1);
    EXPECT_NEAR(y[0], 3.0f, 1e-6);
}

// --- LSTM cell ------------------------------------------------------------------

TEST(LstmCell, StateShapesAndBounds)
{
    const int64_t batch = 2;
    const int64_t input = 8;
    const int64_t hidden = 4;
    Rng rng(55);
    Tensor x(Shape({batch, input}));
    x.FillGaussian(rng, 1.0f);
    LstmState state{Tensor(Shape({batch, hidden})),
                    Tensor(Shape({batch, hidden}))};
    Tensor w_ih(Shape({input, 4 * hidden}));
    Tensor w_hh(Shape({hidden, 4 * hidden}));
    Tensor bias(Shape({4 * hidden}));
    w_ih.FillGaussian(rng, 0.5f);
    w_hh.FillGaussian(rng, 0.5f);

    auto next = LstmCell(x, state, w_ih, w_hh, bias).value();
    EXPECT_TRUE(next.h.shape() == Shape({batch, hidden}));
    // h = o * tanh(c) is always in (-1, 1).
    for (int64_t i = 0; i < next.h.NumElements(); ++i) {
        EXPECT_LT(std::fabs(next.h[i]), 1.0f);
    }
}

TEST(LstmCell, ZeroWeightsKeepZeroState)
{
    const int64_t batch = 1;
    const int64_t hidden = 3;
    Tensor x(Shape({batch, 2}), {1.0f, -1.0f});
    LstmState state{Tensor(Shape({batch, hidden})),
                    Tensor(Shape({batch, hidden}))};
    Tensor w_ih(Shape({2, 4 * hidden}));
    Tensor w_hh(Shape({hidden, 4 * hidden}));
    Tensor bias(Shape({4 * hidden}));
    auto next = LstmCell(x, state, w_ih, w_hh, bias).value();
    // All gates sigmoid(0)=0.5, g=tanh(0)=0 -> c=0, h=0.
    for (int64_t i = 0; i < next.h.NumElements(); ++i) {
        EXPECT_NEAR(next.h[i], 0.0f, 1e-7);
        EXPECT_NEAR(next.c[i], 0.0f, 1e-7);
    }
}

TEST(LstmCell, RejectsBadGateWidth)
{
    Tensor x(Shape({1, 2}));
    LstmState state{Tensor(Shape({1, 3})), Tensor(Shape({1, 3}))};
    EXPECT_FALSE(LstmCell(x, state, Tensor(Shape({2, 11})),
                          Tensor(Shape({3, 12})),
                          Tensor(Shape({12}))).ok());
}

// --- Attention -----------------------------------------------------------------

TEST(Attention, UniformScoresAverageValues)
{
    // q == 0 makes all scores equal, so output rows are the mean of v.
    const int64_t seq = 4;
    const int64_t dim = 8;
    Tensor q(Shape({seq, dim}));
    Rng rng(77);
    Tensor k(Shape({seq, dim}));
    Tensor v(Shape({seq, dim}));
    k.FillGaussian(rng, 1.0f);
    v.FillGaussian(rng, 1.0f);
    auto out = Attention(q, k, v).value();
    for (int64_t c = 0; c < dim; ++c) {
        float mean = 0.0f;
        for (int64_t r = 0; r < seq; ++r) mean += v.At2(r, c);
        mean /= static_cast<float>(seq);
        for (int64_t r = 0; r < seq; ++r) {
            EXPECT_NEAR(out.At2(r, c), mean, 1e-5);
        }
    }
}

TEST(Attention, PeakedScoresSelectValue)
{
    // Strongly matching q/k rows make attention nearly one-hot.
    const int64_t seq = 3;
    const int64_t dim = 4;
    Tensor q(Shape({seq, dim}));
    Tensor k(Shape({seq, dim}));
    Tensor v(Shape({seq, dim}));
    for (int64_t i = 0; i < seq; ++i) {
        q.At2(i, i) = 50.0f;
        k.At2(i, i) = 50.0f;
        v.At2(i, 0) = static_cast<float>(i + 1);
    }
    auto out = Attention(q, k, v).value();
    for (int64_t i = 0; i < seq; ++i) {
        EXPECT_NEAR(out.At2(i, 0), static_cast<float>(i + 1), 1e-3);
    }
}

TEST(Attention, RejectsMismatchedKv)
{
    EXPECT_FALSE(Attention(Tensor(Shape({2, 4})), Tensor(Shape({3, 4})),
                           Tensor(Shape({2, 4}))).ok());
}

// --- Property: matmul tiling equivalence (mirrors the compiler's tiling) -----

class TilingParam
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(TilingParam, BlockedMatmulMatchesDirect)
{
    const auto [m, k, n] = GetParam();
    Rng rng(static_cast<uint64_t>(m * 10000 + k * 100 + n));
    Tensor a(Shape({m, k}));
    Tensor b(Shape({k, n}));
    a.FillGaussian(rng, 1.0f);
    b.FillGaussian(rng, 1.0f);
    auto direct = Matmul(a, b).value();

    // Blocked accumulation over k in tiles of 3 (deliberately not a
    // divisor) must give the same result up to fp reassociation.
    Tensor acc(Shape({m, n}));
    for (int64_t k0 = 0; k0 < k; k0 += 3) {
        const int64_t kw = std::min<int64_t>(3, k - k0);
        Tensor at(Shape({m, kw}));
        Tensor bt(Shape({kw, n}));
        for (int64_t r = 0; r < m; ++r) {
            for (int64_t c = 0; c < kw; ++c) {
                at.At2(r, c) = a.At2(r, k0 + c);
            }
        }
        for (int64_t r = 0; r < kw; ++r) {
            for (int64_t c = 0; c < n; ++c) {
                bt.At2(r, c) = b.At2(k0 + r, c);
            }
        }
        auto part = Matmul(at, bt).value();
        acc = Add(acc, part).value();
    }
    auto err = ComputeError(direct.data(), acc.data()).value();
    EXPECT_LT(err.max_abs_error, 1e-3);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TilingParam,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(2, 3, 4),
                      std::make_tuple(5, 7, 3), std::make_tuple(8, 8, 8),
                      std::make_tuple(16, 5, 2),
                      std::make_tuple(3, 17, 9)));

}  // namespace
}  // namespace t4i
