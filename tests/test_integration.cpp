/**
 * @file
 * End-to-end integration tests: the whole pipeline (zoo -> compile ->
 * simulate -> power/serving) on every app and chip combination the
 * benches use, checking the cross-cutting properties the paper reports.
 */
#include <gtest/gtest.h>

#include "src/tpu4sim.h"

namespace t4i {
namespace {

StatusOr<SimResult>
RunOn(const Graph& graph, const ChipConfig& chip, int64_t batch,
      DType dtype = DType::kBf16, int num_chips = 1)
{
    CompileOptions opts;
    opts.batch = batch;
    opts.dtype = dtype;
    opts.num_chips = num_chips;
    auto p = Compile(graph, chip, opts);
    T4I_RETURN_IF_ERROR(p.status());
    return Simulate(p.value(), chip);
}

TEST(Integration, AllAppsMeetTheirSloOnTpu4iAtTypicalBatch)
{
    // The deployment requirement the chip was sized for (Lesson 10).
    const ChipConfig chip = Tpu_v4i();
    for (const auto& app : ProductionApps()) {
        auto r = RunOn(app.graph, chip, app.typical_batch);
        ASSERT_TRUE(r.ok()) << app.name;
        EXPECT_LE(r.value().latency_s * 1e3, app.slo_ms)
            << app.name << " missed its SLO";
    }
}

TEST(Integration, Tpu4iCompetitiveWithTpu3EverywhereFasterOverall)
{
    // Per app TPUv4i must be at least competitive (TPUv3's higher HBM
    // bandwidth can edge out spill-heavy CNNs by a few percent), and
    // clearly faster in geomean — at 39% of the TDP.
    const ChipConfig v3 = Tpu_v3();
    const ChipConfig v4i = Tpu_v4i();
    std::vector<double> speedups;
    for (const auto& app : ProductionApps()) {
        auto r3 = RunOn(app.graph, v3, app.typical_batch);
        auto r4 = RunOn(app.graph, v4i, app.typical_batch);
        ASSERT_TRUE(r3.ok() && r4.ok()) << app.name;
        const double speedup =
            r3.value().latency_s / r4.value().latency_s;
        EXPECT_GT(speedup, 0.85) << app.name;
        speedups.push_back(speedup);
    }
    EXPECT_GT(GeoMean(speedups), 1.0);
}

TEST(Integration, Tpu4iBeatsT4PerChip)
{
    // MLPerf-style comparison: TPUv4i's per-chip throughput exceeds a
    // T4-class GPU on the big models (the paper's Table of MLPerf 0.7).
    const ChipConfig t4 = GpuT4();
    const ChipConfig v4i = Tpu_v4i();
    Graph resnet = BuildResNet50();
    auto g = RunOn(resnet, t4, 32);
    auto t = RunOn(resnet, v4i, 32);
    ASSERT_TRUE(g.ok() && t.ok());
    EXPECT_GT(g.value().latency_s / t.value().latency_s, 1.2);
}

TEST(Integration, PowerStaysUnderTdpAcrossTheZoo)
{
    const ChipConfig chip = Tpu_v4i();
    for (const auto& app : ProductionApps()) {
        CompileOptions opts;
        opts.batch = app.typical_batch;
        auto p = Compile(app.graph, chip, opts).value();
        auto r = Simulate(p, chip).value();
        auto power = EstimatePower(p, r, chip).value();
        EXPECT_LE(power.avg_power_w, chip.tdp_w * 1.2) << app.name;
        EXPECT_GE(power.avg_power_w, chip.idle_w) << app.name;
    }
}

TEST(Integration, GrowthMakesSingleChipStruggleByLateYears)
{
    // Lesson 8: by 2021 the grown BERT1 either fails to fit/meet SLO on
    // one chip or runs much slower than the 2017 version.
    const ChipConfig chip = Tpu_v4i();
    auto now = AppsOfYear(2017);
    auto later = AppsOfYear(2021);
    const App* bert_now = &now[7];
    const App* bert_later = &later[7];
    ASSERT_EQ(bert_now->name, "BERT1");

    auto r_now = RunOn(bert_now->graph, chip, bert_now->typical_batch);
    ASSERT_TRUE(r_now.ok());
    auto r_later =
        RunOn(bert_later->graph, chip, bert_later->typical_batch);
    if (r_later.ok()) {
        EXPECT_GT(r_later.value().latency_s,
                  2.0 * r_now.value().latency_s);
    }
    // Four chips pull the grown model back down (the ICI case).
    auto r_sharded = RunOn(bert_later->graph, chip,
                           bert_later->typical_batch, DType::kBf16, 4);
    if (r_later.ok() && r_sharded.ok()) {
        EXPECT_LT(r_sharded.value().latency_s,
                  r_later.value().latency_s);
    }
}

TEST(Integration, ServingPipelineOnSimulatedLatencies)
{
    // Full stack: simulate a latency table for CNN1 on TPUv4i, then
    // serve Poisson traffic against it and check the SLO holds at a
    // sensible load.
    const ChipConfig chip = Tpu_v4i();
    auto app = BuildApp("CNN1").value();
    LatencyTable table;
    for (int64_t batch : {1, 2, 4, 8, 16, 32}) {
        auto r = RunOn(app.graph, chip, batch);
        ASSERT_TRUE(r.ok());
        table.AddPoint(batch, r.value().latency_s);
    }
    TenantConfig tenant;
    tenant.name = app.name;
    tenant.latency_s = [&table](int64_t b) { return table.Eval(b); };
    tenant.max_batch = table.MaxBatchUnderSlo(app.slo_ms * 1e-3);
    ASSERT_GT(tenant.max_batch, 0);
    tenant.slo_s = app.slo_ms * 1e-3;
    // Load at ~50% of the throughput the SLO-batch supports.
    tenant.arrival_rate =
        0.5 * table.ThroughputAt(tenant.max_batch);

    auto result = RunServing({tenant}, 5.0, 99).value();
    EXPECT_LT(result.tenants[0].slo_miss_fraction, 0.05);
    EXPECT_GT(result.tenants[0].completed, 100);
}

TEST(Integration, Int8DeploysEverywhereBf16OnlyOnFpChips)
{
    // Lesson 4/6 as a compatibility matrix across the catalog.
    auto app = BuildApp("CNN1").value();
    struct Case {
        const char* chip;
        DType dtype;
        bool expect_ok;
    };
    const Case cases[] = {
        {"TPUv1", DType::kInt8, true},
        {"TPUv1", DType::kBf16, false},
        {"TPUv2", DType::kBf16, true},
        {"TPUv2", DType::kInt8, false},
        {"TPUv3", DType::kBf16, true},
        {"TPUv4i", DType::kBf16, true},
        {"TPUv4i", DType::kInt8, true},
        {"T4", DType::kInt8, true},
        {"T4", DType::kBf16, true},
    };
    for (const auto& c : cases) {
        CompileOptions opts;
        opts.batch = 8;
        opts.dtype = c.dtype;
        auto chip = ChipByName(c.chip).value();
        EXPECT_EQ(Compile(app.graph, chip, opts).ok(), c.expect_ok)
            << c.chip << " " << DTypeName(c.dtype);
    }
}

TEST(Integration, QuantizationErrorJustifiesBf16)
{
    // Lesson 6 end-to-end: run the reference BERT-ish attention block
    // in bf16 and int8 and verify bf16 keeps far more fidelity.
    Rng rng(4242);
    Tensor q(Shape({64, 64}));
    Tensor k(Shape({64, 64}));
    Tensor v(Shape({64, 64}));
    // Heavy-tailed activations, as attention logits are in practice.
    for (auto* t : {&q, &k, &v}) {
        for (int64_t i = 0; i < t->NumElements(); ++i) {
            (*t)[i] = static_cast<float>(rng.NextGaussian() *
                                         std::exp(rng.NextGaussian()));
        }
    }
    auto exact = Attention(q, k, v, MatmulPrecision::kFp32).value();
    auto bf16 = Attention(q, k, v, MatmulPrecision::kBf16).value();
    auto int8 = Attention(q, k, v, MatmulPrecision::kInt8).value();
    const double bf_sqnr =
        ComputeError(exact.data(), bf16.data()).value().sqnr_db;
    const double i8_sqnr =
        ComputeError(exact.data(), int8.data()).value().sqnr_db;
    EXPECT_GT(bf_sqnr, i8_sqnr + 6.0);  // >= 1 bit better
}

TEST(Integration, EveryChipInCatalogSimulatesSomething)
{
    // No chip config is a dead entry: each one can compile and run at
    // least one dtype of the small CNN.
    auto app = BuildApp("CNN1").value();
    for (const auto& chip : ChipCatalog()) {
        bool ran = false;
        for (DType dt : {DType::kInt8, DType::kBf16}) {
            CompileOptions opts;
            opts.batch = 4;
            opts.dtype = dt;
            auto p = Compile(app.graph, chip, opts);
            if (!p.ok()) continue;
            auto r = Simulate(p.value(), chip);
            ASSERT_TRUE(r.ok()) << chip.name;
            EXPECT_GT(r.value().latency_s, 0.0) << chip.name;
            ran = true;
        }
        EXPECT_TRUE(ran) << chip.name;
    }
}

}  // namespace
}  // namespace t4i
