/**
 * @file
 * Tests for the workload zoo: the eight production apps, the MLPerf
 * models, the Lesson-8 growth suite, and the Lesson-9 fleet mixes.
 */
#include <gtest/gtest.h>

#include "src/models/zoo.h"

namespace t4i {
namespace {

TEST(Zoo, EightProductionAppsInPaperOrder)
{
    auto apps = ProductionApps();
    ASSERT_EQ(apps.size(), 8u);
    auto names = ProductionAppNames();
    for (size_t i = 0; i < apps.size(); ++i) {
        EXPECT_EQ(apps[i].name, names[i]);
        EXPECT_TRUE(apps[i].graph.finalized()) << apps[i].name;
        EXPECT_GT(apps[i].slo_ms, 0.0);
        EXPECT_GE(apps[i].typical_batch, 1);
    }
}

TEST(Zoo, BuildAppByName)
{
    EXPECT_TRUE(BuildApp("CNN0").ok());
    EXPECT_TRUE(BuildApp("BERT1").ok());
    EXPECT_FALSE(BuildApp("GPT3").ok());
}

TEST(Zoo, DomainsAreTwoOfEach)
{
    auto apps = ProductionApps();
    int counts[4] = {};
    for (const auto& app : apps) {
        ++counts[static_cast<int>(app.domain)];
    }
    for (int c : counts) EXPECT_EQ(c, 2);
}

TEST(Zoo, FleetSharesRoughlySumToOne)
{
    double sum = 0.0;
    for (const auto& app : ProductionApps()) sum += app.fleet_share;
    EXPECT_NEAR(sum, 1.0, 0.05);
}

TEST(Zoo, WeightFootprintsLandInDomainBands)
{
    // The published characterization: MLPs have the biggest footprints
    // (embeddings), CNNs the smallest; everything is MiB-to-GiB scale.
    for (const auto& app : ProductionApps()) {
        auto cost =
            app.graph.Cost(1, DType::kBf16, DType::kBf16).value();
        const double mib =
            static_cast<double>(cost.weight_bytes) / (1 << 20);
        EXPECT_GT(mib, 4.0) << app.name;
        EXPECT_LT(mib, 4096.0) << app.name;
        if (app.domain == AppDomain::kCnn) {
            EXPECT_LT(mib, 128.0) << app.name;
        }
        if (app.domain == AppDomain::kMlp) {
            EXPECT_GT(mib, 128.0) << app.name;
        }
    }
}

TEST(Zoo, OperationalIntensityOrdering)
{
    // Per-sample (batch 1) FLOPs per weight byte: CNNs are the most
    // compute-intense; MLPs the least. (At production batch sizes the
    // batch dimension multiplies everyone's reuse equally.)
    auto intensity = [](const char* name) {
        auto app = BuildApp(name).value();
        return app.graph.Cost(1, DType::kBf16, DType::kBf16)
            .value()
            .ops_per_weight_byte;
    };
    EXPECT_GT(intensity("CNN0"), intensity("BERT0"));
    EXPECT_GT(intensity("BERT0"), intensity("RNN0"));
    EXPECT_GT(intensity("RNN0"), intensity("MLP0"));
}

TEST(Zoo, ResNet50HasCanonicalScale)
{
    Graph g = BuildResNet50();
    auto cost = g.Cost(1, DType::kBf16, DType::kBf16).value();
    // ~25.5M parameters and ~8.2 GFLOPs per 224x224 image (2*4.1 GMACs).
    const double params =
        static_cast<double>(cost.weight_bytes) / 2.0;
    EXPECT_NEAR(params / 1e6, 25.5, 3.0);
    EXPECT_NEAR(cost.total_flops / 1e9, 8.2, 1.5);
}

TEST(Zoo, BertLargeHasCanonicalScale)
{
    Graph g = BuildBertLarge();
    auto cost = g.Cost(1, DType::kBf16, DType::kBf16).value();
    const double params =
        static_cast<double>(cost.weight_bytes) / 2.0;
    // ~335M parameters.
    EXPECT_NEAR(params / 1e6, 335.0, 40.0);
}

TEST(Zoo, GrowthSuiteFollowsLesson8)
{
    // Total weight bytes must grow ~1.5x per year (within slack from
    // integer rounding of layer widths).
    auto total_weights = [](int year) {
        double sum = 0.0;
        for (const auto& app : AppsOfYear(year)) {
            sum += static_cast<double>(
                app.graph.Cost(1, DType::kBf16, DType::kBf16)
                    .value()
                    .weight_bytes);
        }
        return sum;
    };
    const double w2017 = total_weights(2017);
    const double w2019 = total_weights(2019);
    const double w2020 = total_weights(2020);
    EXPECT_GT(w2019 / w2017, 1.6);   // ~2.25 expected
    EXPECT_LT(w2019 / w2017, 3.2);
    EXPECT_GT(w2020 / w2019, 1.2);   // ~1.5 expected
    EXPECT_LT(w2020 / w2019, 1.9);
}

TEST(Zoo, FleetMixSharesSumToOne)
{
    for (const auto& mix : FleetMixHistory()) {
        const double sum = mix.mlp_share + mix.cnn_share +
                           mix.rnn_share + mix.bert_share;
        EXPECT_NEAR(sum, 1.0, 0.02) << mix.year;
    }
}

TEST(Zoo, FleetMixShiftsTowardBert)
{
    auto history = FleetMixHistory();
    ASSERT_GE(history.size(), 2u);
    EXPECT_EQ(history.front().year, 2016);
    EXPECT_DOUBLE_EQ(history.front().bert_share, 0.0);
    EXPECT_GT(history.back().bert_share, 0.2);
    EXPECT_LT(history.back().mlp_share, history.front().mlp_share);
}

TEST(Zoo, BuildersProduceFinalizedGraphs)
{
    EXPECT_TRUE(BuildResNet50().finalized());
    EXPECT_TRUE(BuildBertLarge().finalized());
    EXPECT_TRUE(BuildSmallCnn("c").finalized());
    EXPECT_TRUE(
        BuildLstmStack("l", 1000, 64, 2, 128, 16).finalized());
    EXPECT_TRUE(BuildBert("b", 2, 128, 2, 512, 32, 1000).finalized());
    EXPECT_TRUE(BuildMlp("m", 1000, 16, 4, 64, {32, 1}).finalized());
}

TEST(Zoo, AppDomainNames)
{
    EXPECT_STREQ(AppDomainName(AppDomain::kMlp), "MLP");
    EXPECT_STREQ(AppDomainName(AppDomain::kBert), "BERT");
}

}  // namespace
}  // namespace t4i
