/**
 * @file
 * Tests for the TCO model (Lesson 3: perf/TCO vs perf/CapEx).
 */
#include <gtest/gtest.h>

#include "src/arch/catalog.h"
#include "src/tco/tco.h"

namespace t4i {
namespace {

TEST(Tco, YieldDropsWithArea)
{
    TcoParams params;
    const double small = GoodDiesPerWafer(100.0, params);
    const double medium = GoodDiesPerWafer(400.0, params);
    const double large = GoodDiesPerWafer(700.0, params);
    EXPECT_GT(small, medium);
    EXPECT_GT(medium, large);
    // A 300 mm wafer holds roughly 600 good 100 mm^2 dies.
    EXPECT_NEAR(small, 600.0, 120.0);
}

TEST(Tco, BreakdownIsConsistent)
{
    TcoParams params;
    for (const auto& chip : ChipCatalog()) {
        auto r = ComputeTco(chip, params).value();
        EXPECT_GT(r.die_cost_usd, 0.0) << chip.name;
        EXPECT_GT(r.memory_cost_usd, 0.0) << chip.name;
        EXPECT_NEAR(r.capex_usd,
                    r.die_cost_usd + r.memory_cost_usd +
                        r.board_cost_usd + r.cooling_capex_usd,
                    1e-6)
            << chip.name;
        EXPECT_NEAR(r.tco_usd, r.capex_usd + r.opex_usd, 1e-6)
            << chip.name;
        EXPECT_GT(r.opex_usd, 0.0) << chip.name;
    }
}

TEST(Tco, LiquidCoolingAddsCapex)
{
    TcoParams params;
    auto v3 = ComputeTco(Tpu_v3(), params).value();   // liquid
    auto v4i = ComputeTco(Tpu_v4i(), params).value(); // air
    EXPECT_GT(v3.cooling_capex_usd, 0.0);
    EXPECT_DOUBLE_EQ(v4i.cooling_capex_usd, 0.0);
}

TEST(Tco, OpexTracksTdp)
{
    TcoParams params;
    auto v1 = ComputeTco(Tpu_v1(), params).value();   // 75 W
    auto v3 = ComputeTco(Tpu_v3(), params).value();   // 450 W
    EXPECT_GT(v3.opex_usd, 4.0 * v1.opex_usd);
}

TEST(Tco, OpexIsMaterialShareOfTco)
{
    // Lesson 3 only matters because 3-year power is not negligible.
    TcoParams params;
    auto v3 = ComputeTco(Tpu_v3(), params).value();
    EXPECT_GT(v3.opex_usd / v3.tco_usd, 0.10);
}

TEST(Tco, RankingInversionBetweenCapexAndTco)
{
    // The paper's point: chips can rank differently by perf/CapEx and
    // perf/TCO. Construct the comparison TPUv3 vs TPUv4i with peak
    // bf16 FLOPS as the "perf" numerator: TPUv4i must widen its lead
    // once power is included.
    TcoParams params;
    const ChipConfig v3 = Tpu_v3();
    const ChipConfig v4i = Tpu_v4i();
    auto t3 = ComputeTco(v3, params).value();
    auto t4 = ComputeTco(v4i, params).value();
    const double perf3 = v3.PeakFlops(DType::kBf16);
    const double perf4 = v4i.PeakFlops(DType::kBf16);
    const double capex_ratio =
        (perf4 / t4.capex_usd) / (perf3 / t3.capex_usd);
    const double tco_ratio =
        (perf4 / t4.tco_usd) / (perf3 / t3.tco_usd);
    EXPECT_GT(tco_ratio, capex_ratio);
    EXPECT_GT(tco_ratio, 1.0);
}

TEST(Tco, HugeDieIsRejected)
{
    ChipConfig chip = Tpu_v4i();
    chip.die_mm2 = 1e9;
    TcoParams params;
    // Either rejected or effectively infinite cost; the model must not
    // return a bargain.
    auto r = ComputeTco(chip, params);
    if (r.ok()) {
        EXPECT_GT(r.value().die_cost_usd, 1e5);
    }
}

TEST(Tco, ParamsFlowThrough)
{
    TcoParams cheap;
    cheap.electricity_usd_per_kwh = 0.01;
    TcoParams dear = cheap;
    dear.electricity_usd_per_kwh = 0.20;
    auto a = ComputeTco(Tpu_v4i(), cheap).value();
    auto b = ComputeTco(Tpu_v4i(), dear).value();
    EXPECT_NEAR(b.opex_usd / a.opex_usd, 20.0, 0.1);
    EXPECT_DOUBLE_EQ(a.capex_usd, b.capex_usd);
}

}  // namespace
}  // namespace t4i
