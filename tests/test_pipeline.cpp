/**
 * @file
 * Tests for the pipelined multi-batch simulation and the DOT export.
 */
#include <gtest/gtest.h>

#include "src/arch/catalog.h"
#include "src/compiler/compiler.h"
#include "src/models/zoo.h"
#include "src/sim/machine.h"

namespace t4i {
namespace {

Program
CompileApp(const char* name, const ChipConfig& chip, int64_t batch)
{
    auto app = BuildApp(name).value();
    CompileOptions opts;
    opts.batch = batch;
    auto p = Compile(app.graph, chip, opts);
    T4I_CHECK(p.ok(), p.status().ToString().c_str());
    return std::move(p).ConsumeValue();
}

TEST(Pipelined, RejectsBadInput)
{
    const ChipConfig chip = Tpu_v4i();
    Program p = CompileApp("CNN1", chip, 4);
    EXPECT_FALSE(SimulatePipelined(p, Tpu_v3(), 4).ok());
    EXPECT_FALSE(SimulatePipelined(p, chip, 0).ok());
}

TEST(Pipelined, OneIterationMatchesSingleRun)
{
    const ChipConfig chip = Tpu_v4i();
    Program p = CompileApp("BERT0", chip, 8);
    auto single = Simulate(p, chip).value();
    auto pipe = SimulatePipelined(p, chip, 1).value();
    EXPECT_NEAR(pipe.total_s, single.latency_s, 1e-12);
    EXPECT_NEAR(pipe.first_latency_s, single.latency_s, 1e-12);
}

TEST(Pipelined, OverlapBeatsSerialExecution)
{
    const ChipConfig chip = Tpu_v4i();
    Program p = CompileApp("CNN0", chip, 8);
    auto single = Simulate(p, chip).value();
    const int iters = 8;
    auto pipe = SimulatePipelined(p, chip, iters).value();
    // Pipelining must be no slower than serial and strictly overlap
    // (memory-heavy programs have DMA to hide under compute).
    EXPECT_LE(pipe.total_s, iters * single.latency_s + 1e-12);
    EXPECT_LT(pipe.total_s, iters * single.latency_s * 0.999);
    EXPECT_GE(pipe.first_latency_s, single.latency_s - 1e-12);
}

TEST(Pipelined, SteadyStateNearAnalyticBound)
{
    // The analytic steady_state_ips (batch / bottleneck-engine busy)
    // is an upper bound the pipelined ground truth approaches.
    const ChipConfig chip = Tpu_v4i();
    for (const char* name : {"MLP0", "CNN0", "BERT0"}) {
        Program p = CompileApp(name, chip, 16);
        auto single = Simulate(p, chip).value();
        auto pipe = SimulatePipelined(p, chip, 16).value();
        EXPECT_LE(pipe.steady_ips,
                  single.steady_state_ips * 1.01)
            << name;
        EXPECT_GT(pipe.steady_ips, 0.5 * single.steady_state_ips)
            << name;
    }
}

TEST(Pipelined, ThroughputExceedsReciprocalLatency)
{
    const ChipConfig chip = Tpu_v4i();
    Program p = CompileApp("BERT0", chip, 16);
    auto single = Simulate(p, chip).value();
    auto pipe = SimulatePipelined(p, chip, 12).value();
    EXPECT_GT(pipe.steady_ips,
              static_cast<double>(p.batch) / single.latency_s * 0.999);
}

TEST(Dot, RendersNodesAndEdges)
{
    auto app = BuildApp("CNN1").value();
    std::string dot = app.graph.ToDot();
    EXPECT_NE(dot.find("digraph"), std::string::npos);
    EXPECT_NE(dot.find("->"), std::string::npos);
    EXPECT_NE(dot.find("Conv2d"), std::string::npos);
    // One node line per layer.
    size_t nodes = 0;
    size_t pos = 0;
    while ((pos = dot.find("[label=", pos)) != std::string::npos) {
        ++nodes;
        ++pos;
    }
    EXPECT_EQ(nodes, static_cast<size_t>(app.graph.num_layers()));
}

}  // namespace
}  // namespace t4i
