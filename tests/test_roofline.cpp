/**
 * @file
 * Tests for the roofline helpers and the invariant that the simulator
 * never beats the analytic roof.
 */
#include <gtest/gtest.h>

#include "src/arch/catalog.h"
#include "src/compiler/compiler.h"
#include "src/models/zoo.h"
#include "src/roofline/roofline.h"
#include "src/sim/machine.h"

namespace t4i {
namespace {

TEST(Roofline, AttainableIsMinOfRoofAndSlope)
{
    Roofline roof = BuildRoofline(Tpu_v4i(), DType::kBf16);
    EXPECT_DOUBLE_EQ(roof.Attainable(1e9), roof.peak_flops);
    EXPECT_DOUBLE_EQ(roof.Attainable(1.0), roof.mem_bw_Bps);
    EXPECT_DOUBLE_EQ(roof.Attainable(roof.ridge_ops_per_byte),
                     roof.peak_flops);
}

TEST(Roofline, RidgeMatchesChipHelper)
{
    const ChipConfig chip = Tpu_v4i();
    Roofline roof = BuildRoofline(chip, DType::kBf16);
    EXPECT_DOUBLE_EQ(roof.ridge_ops_per_byte,
                     chip.RidgeOpsPerByte(DType::kBf16));
}

TEST(Roofline, Tpu4iRoofAboveTpu3)
{
    Roofline v3 = BuildRoofline(Tpu_v3(), DType::kBf16);
    Roofline v4i = BuildRoofline(Tpu_v4i(), DType::kBf16);
    EXPECT_GT(v4i.peak_flops, v3.peak_flops);
}

TEST(Roofline, SimulatorNeverBeatsTheRoof)
{
    // Fundamental model invariant tying E5 together: achieved FLOPS
    // must sit on or below min(peak, bw * intensity), where intensity
    // is computed from the HBM bytes the program actually moved.
    const ChipConfig chip = Tpu_v4i();
    Roofline roof = BuildRoofline(chip, DType::kBf16);
    for (const auto& app : ProductionApps()) {
        CompileOptions opts;
        opts.batch = app.typical_batch;
        auto prog = Compile(app.graph, chip, opts).value();
        auto result = Simulate(prog, chip).value();
        const double hbm_bytes = static_cast<double>(
            result.engine(Engine::kHbm).bytes);
        // Intensity vs HBM traffic. CMEM-pinned weights do not count,
        // which only raises intensity — the bound stays valid.
        const double intensity =
            hbm_bytes > 0.0
                ? 2.0 * result.total_macs / hbm_bytes
                : 1e12;
        EXPECT_LE(result.achieved_flops,
                  roof.Attainable(intensity) * 1.001)
            << app.name;
        EXPECT_LE(result.achieved_flops, roof.peak_flops) << app.name;
    }
}

TEST(Roofline, RenderContainsHeaderAndPoints)
{
    Roofline roof = BuildRoofline(Tpu_v4i(), DType::kBf16);
    std::string chart = RenderRoofline(
        roof, {{"CNN0", 300.0, 9e13}, {"MLP0", 20.0, 8e12}});
    EXPECT_NE(chart.find("TPUv4i"), std::string::npos);
    EXPECT_NE(chart.find("CNN0"), std::string::npos);
    EXPECT_NE(chart.find("MLP0"), std::string::npos);
    EXPECT_NE(chart.find('*'), std::string::npos);
}

}  // namespace
}  // namespace t4i
