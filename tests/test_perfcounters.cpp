/**
 * @file
 * Tests for the modeled performance counters (src/sim/perfcounters.h):
 * the conservation invariants between the counter file, the sampled
 * time series, the per-op profile, and the simulator's own
 * EngineStats; the roofline math; the registry export; and the trace
 * counter tracks.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "src/arch/catalog.h"
#include "src/compiler/compiler.h"
#include "src/models/zoo.h"
#include "src/obs/export.h"
#include "src/obs/registry.h"
#include "src/obs/trace_builder.h"
#include "src/sim/machine.h"
#include "src/sim/perfcounters.h"

namespace t4i {
namespace {

struct CompiledRun {
    Program program;
    SimResult result;
    std::vector<ScheduleEntry> schedule;
};

CompiledRun
RunApp(const std::string& name, const ChipConfig& chip, int64_t batch,
       int num_chips = 1)
{
    auto app = BuildApp(name).value();
    CompileOptions opts;
    opts.batch = batch;
    opts.num_chips = num_chips;
    auto p = Compile(app.graph, chip, opts);
    T4I_CHECK(p.ok(), p.status().ToString().c_str());
    CompiledRun run;
    run.program = std::move(p).ConsumeValue();
    auto r = SimulateWithSchedule(run.program, chip, &run.schedule);
    T4I_CHECK(r.ok(), r.status().ToString().c_str());
    run.result = std::move(r).ConsumeValue();
    return run;
}

TEST(PerfCounters, AggregatesMatchEngineStats)
{
    const ChipConfig chip = Tpu_v4i();
    CompiledRun run = RunApp("BERT0", chip, 16);
    auto file =
        CollectPerfCounters(run.program, chip, run.schedule).value();

    for (size_t e = 0; e < kNumEngines; ++e) {
        const auto& stats = run.result.engines[e];
        EXPECT_NEAR(file.busy_cycles[e], stats.busy_s * chip.clock_hz,
                    1e-3)
            << "engine " << e;
        EXPECT_EQ(file.issue_count[e], stats.instructions);
        EXPECT_EQ(file.bytes[e], stats.bytes);
        EXPECT_NEAR(file.dep_stall_cycles[e],
                    stats.dep_stall_s * chip.clock_hz, 1e-3);
        EXPECT_NEAR(file.queue_stall_cycles[e],
                    stats.queue_stall_s * chip.clock_hz, 1e-3);
    }

    // Instruction-class counts cover the whole program exactly once.
    int64_t classed = 0;
    for (size_t k = 0; k < kNumInstrKinds; ++k) {
        classed += file.kind_count[k];
    }
    EXPECT_EQ(classed,
              static_cast<int64_t>(run.program.instrs.size()));
}

TEST(PerfCounters, SampledSeriesIntegratesToAggregates)
{
    const ChipConfig chip = Tpu_v4i();
    CompiledRun run = RunApp("BERT0", chip, 16);
    auto file =
        CollectPerfCounters(run.program, chip, run.schedule).value();

    ASSERT_GT(file.samples.size(), 1u);
    for (size_t e = 0; e < kNumEngines; ++e) {
        const Engine engine = static_cast<Engine>(e);
        // Pro-rata window attribution preserves the integral: the
        // series must sum back to the aggregate registers to within
        // float rounding.
        EXPECT_NEAR(file.SampledBusyCycles(engine),
                    file.busy_cycles[e],
                    1e-6 * std::max(1.0, file.busy_cycles[e]));
        EXPECT_NEAR(
            file.SampledBytes(engine),
            static_cast<double>(file.bytes[e]),
            1e-6 * std::max<double>(1.0,
                                    static_cast<double>(file.bytes[e])));
    }
    int64_t sampled_issues = 0;
    for (const auto& s : file.samples) {
        for (size_t e = 0; e < kNumEngines; ++e) {
            sampled_issues += s.issues[e];
        }
    }
    EXPECT_EQ(sampled_issues,
              static_cast<int64_t>(run.program.instrs.size()));

    // Windows tile the run: contiguous and ending at the duration.
    for (size_t w = 1; w < file.samples.size(); ++w) {
        EXPECT_DOUBLE_EQ(file.samples[w].t0_s,
                         file.samples[w - 1].t1_s);
    }
    EXPECT_DOUBLE_EQ(file.samples.back().t1_s, file.duration_s);
}

TEST(PerfCounters, ExplicitSamplingIntervalIsHonored)
{
    const ChipConfig chip = Tpu_v4i();
    CompiledRun run = RunApp("CNN0", chip, 8);
    const double dt = 100e-6;
    auto file =
        CollectPerfCounters(run.program, chip, run.schedule, dt)
            .value();
    EXPECT_DOUBLE_EQ(file.sample_interval_s, dt);
    EXPECT_EQ(file.samples.size(),
              static_cast<size_t>(std::ceil(file.duration_s / dt)));
    // Conservation holds at any interval, not just the default.
    EXPECT_NEAR(file.SampledBusyCycles(Engine::kMxu),
                file.busy_cycles[static_cast<size_t>(Engine::kMxu)],
                1e-3);
}

TEST(PerfCounters, RejectsAbsurdSamplingInterval)
{
    const ChipConfig chip = Tpu_v4i();
    CompiledRun run = RunApp("CNN0", chip, 8);
    // Picoseconds per window on a millisecond run: > 16384 windows.
    EXPECT_FALSE(
        CollectPerfCounters(run.program, chip, run.schedule, 1e-12)
            .ok());
}

TEST(PerfCounters, PerOpCyclesSumToEngineBusyCycles)
{
    const ChipConfig chip = Tpu_v4i();
    CompiledRun run = RunApp("BERT0", chip, 16);
    auto file =
        CollectPerfCounters(run.program, chip, run.schedule).value();
    auto ops =
        ProfileByOp(run.program, chip, run.schedule).value();
    ASSERT_FALSE(ops.empty());

    // The conservation invariant the roofline footer prints: every
    // instruction lands in exactly one op, so per-op cycles sum to
    // the run's engine busy cycles.
    double op_busy = 0.0;
    int64_t op_instrs = 0;
    for (const auto& op : ops) {
        op_busy += op.busy_cycles;
        op_instrs += op.instructions;
        EXPECT_NEAR(op.busy_cycles,
                    op.mxu_cycles + op.vpu_cycles + op.mem_cycles +
                        op.link_cycles,
                    1e-6 * std::max(1.0, op.busy_cycles));
    }
    double engine_busy = 0.0;
    for (size_t e = 0; e < kNumEngines; ++e) {
        engine_busy += file.busy_cycles[e];
    }
    EXPECT_NEAR(op_busy, engine_busy,
                1e-6 * std::max(1.0, engine_busy));
    EXPECT_EQ(op_instrs,
              static_cast<int64_t>(run.program.instrs.size()));

    // Sorted by descending busy cycles, and every compiled op is
    // attributed (the compiler stamps every instruction).
    for (size_t i = 1; i < ops.size(); ++i) {
        EXPECT_GE(ops[i - 1].busy_cycles, ops[i].busy_cycles);
    }
    for (const auto& op : ops) {
        EXPECT_GE(op.hlo_op_id, 0) << op.name;
        EXPECT_NE(op.name, "(unattributed)");
    }
}

TEST(PerfCounters, RooflineCeilingsAreSane)
{
    const ChipConfig chip = Tpu_v4i();
    CompiledRun run = RunApp("BERT0", chip, 16);
    auto ops =
        ProfileByOp(run.program, chip, run.schedule).value();
    const double peak = chip.PeakFlops(run.program.dtype);
    for (const auto& op : ops) {
        EXPECT_LE(op.ceiling_flops, peak + 1.0) << op.name;
        if (op.hbm_bytes > 0 && op.macs > 0) {
            const double expected = std::min(
                peak, op.operational_intensity * chip.dram_bw_Bps);
            EXPECT_NEAR(op.ceiling_flops, expected,
                        1e-6 * expected)
                << op.name;
        }
    }
}

TEST(PerfCounters, UnstampedInstructionsLandInUnattributedOp)
{
    const ChipConfig chip = Tpu_v4i();
    // Hand-built program: no compiler, so no HLO op stamps.
    Program p;
    p.model_name = "hand";
    p.chip_name = chip.name;
    p.dtype = DType::kBf16;
    Instr instr;
    instr.id = 0;
    instr.kind = InstrKind::kMatmulTile;
    instr.engine = Engine::kMxu;
    instr.label = "m0";
    instr.rows = 128;
    instr.k_tiles = 4;
    instr.n_tiles = 4;
    instr.macs = 1 << 20;
    p.instrs.push_back(instr);
    ASSERT_TRUE(p.Validate().ok());

    std::vector<ScheduleEntry> schedule;
    auto result = SimulateWithSchedule(p, chip, &schedule);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    auto ops = ProfileByOp(p, chip, schedule).value();
    ASSERT_EQ(ops.size(), 1u);
    EXPECT_EQ(ops[0].name, "(unattributed)");
    EXPECT_EQ(ops[0].hlo_op_id, -1);
    EXPECT_EQ(ops[0].instructions, 1);
}

TEST(PerfCounters, CompilerStampsChunksOntoOneOp)
{
    const ChipConfig chip = Tpu_v4i();
    CompiledRun run = RunApp("BERT0", chip, 16);
    ASSERT_FALSE(run.program.hlo_ops.empty());
    // Canonical names have their chunk suffix digits stripped, so
    // "x.w0".."x.w7" collapse into one op with several instructions.
    bool some_op_has_many_instrs = false;
    std::vector<int64_t> per_op(run.program.hlo_ops.size(), 0);
    for (const auto& instr : run.program.instrs) {
        ASSERT_GE(instr.hlo_op_id, 0);
        ASSERT_LT(instr.hlo_op_id,
                  static_cast<int>(run.program.hlo_ops.size()));
        if (++per_op[static_cast<size_t>(instr.hlo_op_id)] > 1) {
            some_op_has_many_instrs = true;
        }
    }
    EXPECT_TRUE(some_op_has_many_instrs);
    // Ops are distinct by name.
    for (size_t a = 0; a < run.program.hlo_ops.size(); ++a) {
        for (size_t b = a + 1; b < run.program.hlo_ops.size(); ++b) {
            EXPECT_NE(run.program.hlo_ops[a].name,
                      run.program.hlo_ops[b].name);
        }
    }
}

TEST(PerfCounters, RegistryExportCarriesSeriesAndAggregates)
{
    const ChipConfig chip = Tpu_v4i();
    CompiledRun run = RunApp("BERT0", chip, 16);
    auto file =
        CollectPerfCounters(run.program, chip, run.schedule).value();

    obs::MetricsRegistry reg;
    RecordCounterMetrics(file, &reg, 16);

    const auto mxu = static_cast<size_t>(Engine::kMxu);
    auto* busy = reg.GetCounter(
        "sim.counter.busy_cycles", {{"engine", "MXU"}});
    EXPECT_EQ(busy->value(),
              static_cast<int64_t>(std::llround(file.busy_cycles[mxu])));

    // The sampled rows must themselves integrate to the aggregate:
    // re-bucketing down to max_sample_rows preserves the series'
    // integral.
    double series_total = 0.0;
    int series_rows = 0;
    for (const auto& entry : reg.Snapshot()) {
        if (entry.name != "sim.counter.sample.busy_cycles") continue;
        for (const auto& [k, v] : entry.labels) {
            if (k == "engine" && v == "MXU") {
                series_total += entry.gauge->value();
                ++series_rows;
            }
        }
    }
    EXPECT_GT(series_rows, 0);
    EXPECT_LE(series_rows, 16);
    EXPECT_NEAR(series_total, file.busy_cycles[mxu],
                1e-6 * std::max(1.0, file.busy_cycles[mxu]));

    // ici_flits is always exported so the schema is topology-stable.
    EXPECT_EQ(reg.GetCounter("sim.counter.ici_flits")->value(),
              file.ici_flits);
}

TEST(PerfCounters, TraceTracksRenderCounterEvents)
{
    const ChipConfig chip = Tpu_v4i();
    CompiledRun run = RunApp("BERT0", chip, 16);
    auto file =
        CollectPerfCounters(run.program, chip, run.schedule).value();

    obs::TraceBuilder builder;
    ASSERT_TRUE(AppendCounterTracks(file, &builder, 1).ok());
    const std::string json = builder.Render();
    EXPECT_NE(json.find("perfctr: MXU busy %"), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);

    EXPECT_FALSE(AppendCounterTracks(file, nullptr).ok());
}

TEST(PerfCounters, MultiChipRunCountsIciFlits)
{
    const ChipConfig chip = Tpu_v4i();
    CompiledRun run = RunApp("BERT0", chip, 16, /*num_chips=*/4);
    auto file =
        CollectPerfCounters(run.program, chip, run.schedule).value();
    EXPECT_GT(file.ici_flits, 0);

    // Flits quantize at 32 bytes: total flits >= total bytes / 32.
    const auto ici = static_cast<size_t>(Engine::kIci);
    EXPECT_GE(file.ici_flits, file.bytes[ici] / kIciFlitBytes);

    // Pro-rata flit attribution also integrates.
    double sampled = 0.0;
    for (const auto& s : file.samples) sampled += s.ici_flits;
    EXPECT_NEAR(sampled, static_cast<double>(file.ici_flits),
                1e-6 * std::max<double>(1.0,
                    static_cast<double>(file.ici_flits)));
}

TEST(PerfCounters, RenderedRooflineHasConservationFooter)
{
    const ChipConfig chip = Tpu_v4i();
    CompiledRun run = RunApp("MLP0", chip, 16);
    auto file =
        CollectPerfCounters(run.program, chip, run.schedule).value();
    auto ops =
        ProfileByOp(run.program, chip, run.schedule).value();
    const std::string table = RenderOpRoofline(ops, file, 8);
    EXPECT_NE(table.find("conservation:"), std::string::npos);
    EXPECT_NE(table.find("GFLOP/s"), std::string::npos);
}

}  // namespace
}  // namespace t4i
