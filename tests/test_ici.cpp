/**
 * @file
 * Tests for the ICI topology and collectives substrate.
 */
#include <gtest/gtest.h>

#include "src/arch/catalog.h"
#include "src/compiler/compiler.h"
#include "src/ici/collectives.h"
#include "src/ici/topology.h"
#include "src/models/zoo.h"
#include "src/sim/machine.h"

namespace t4i {
namespace {

IciDomain
Domain(int chips, IciTopology topology)
{
    IciDomain d;
    d.num_chips = chips;
    d.topology = topology;
    d.link_bw_Bps = 50e9;
    d.links_per_chip = 2;
    d.hop_latency_s = 1e-6;
    return d;
}

// --- Topology ---------------------------------------------------------------

TEST(IciTopology, MakeDomainValidation)
{
    EXPECT_TRUE(
        MakeDomain(Tpu_v4i(), 4, IciTopology::kRing).ok());
    EXPECT_FALSE(
        MakeDomain(Tpu_v1(), 4, IciTopology::kRing).ok());  // no links
    EXPECT_FALSE(
        MakeDomain(Tpu_v4i(), 1, IciTopology::kRing).ok());
}

TEST(IciTopology, RingPerNeighborBandwidth)
{
    // 2 links over 2 ring neighbors -> one link each.
    auto d = Domain(4, IciTopology::kRing);
    EXPECT_DOUBLE_EQ(d.PerNeighborBandwidth().value(), 50e9);
    // A 2-chip "ring" is a single neighbor with both links.
    auto pair = Domain(2, IciTopology::kRing);
    EXPECT_DOUBLE_EQ(pair.PerNeighborBandwidth().value(), 100e9);
}

TEST(IciTopology, FullyConnectedTimeShares)
{
    // 4 chips, 3 peers, 2 links: each peer sees 2/3 of a link.
    auto d = Domain(4, IciTopology::kFullyConnected);
    EXPECT_NEAR(d.PerNeighborBandwidth().value(), 50e9 * 2 / 3.0, 1.0);
    EXPECT_EQ(d.Diameter(), 1);
}

TEST(IciTopology, TorusNeedsFourLinks)
{
    auto d = Domain(16, IciTopology::kTorus2D);
    EXPECT_FALSE(d.PerNeighborBandwidth().ok());  // only 2 links
    d.links_per_chip = 4;
    EXPECT_TRUE(d.PerNeighborBandwidth().ok());
}

TEST(IciTopology, BisectionOrdering)
{
    auto ring = Domain(8, IciTopology::kRing);
    auto full = Domain(8, IciTopology::kFullyConnected);
    EXPECT_GT(full.BisectionBandwidth().value(),
              ring.BisectionBandwidth().value());
}

TEST(IciTopology, DiameterShrinksWithConnectivity)
{
    EXPECT_EQ(Domain(8, IciTopology::kRing).Diameter(), 4);
    EXPECT_EQ(Domain(8, IciTopology::kFullyConnected).Diameter(), 1);
}

// --- Collectives -------------------------------------------------------------

TEST(Collectives, RingAllGatherMatchesAlphaBeta)
{
    auto d = Domain(4, IciTopology::kRing);
    const int64_t bytes = 400 * 1000 * 1000;
    auto cost =
        CostCollective(Collective::kAllGather, bytes, d).value();
    // (N-1)/N * B at 50 GB/s + 3 hops.
    EXPECT_NEAR(cost.time_s, 0.75 * bytes / 50e9 + 3e-6, 1e-9);
    EXPECT_EQ(cost.steps, 3);
}

TEST(Collectives, AllReduceIsTwiceAllGather)
{
    auto d = Domain(4, IciTopology::kRing);
    auto ag =
        CostCollective(Collective::kAllGather, 1 << 20, d).value();
    auto ar =
        CostCollective(Collective::kAllReduce, 1 << 20, d).value();
    EXPECT_NEAR(ar.bytes_on_wire, 2.0 * ag.bytes_on_wire, 1.0);
    EXPECT_GT(ar.time_s, 1.9 * ag.time_s);
}

TEST(Collectives, ReduceScatterEqualsAllGatherWire)
{
    auto d = Domain(8, IciTopology::kRing);
    auto ag =
        CostCollective(Collective::kAllGather, 1 << 22, d).value();
    auto rs =
        CostCollective(Collective::kReduceScatter, 1 << 22, d).value();
    EXPECT_DOUBLE_EQ(ag.bytes_on_wire, rs.bytes_on_wire);
}

TEST(Collectives, FullyConnectedFewerSteps)
{
    auto ring = Domain(4, IciTopology::kRing);
    auto full = Domain(4, IciTopology::kFullyConnected);
    auto r = CostCollective(Collective::kAllGather, 1 << 26, ring)
                 .value();
    auto f = CostCollective(Collective::kAllGather, 1 << 26, full)
                 .value();
    EXPECT_LT(f.steps, r.steps);
    // Same wire volume; the fully-connected case pays time-shared
    // links, so total time is comparable (within 2x either way).
    EXPECT_NEAR(f.bytes_on_wire, r.bytes_on_wire, 1.0);
}

TEST(Collectives, CostScalesLinearlyInPayload)
{
    auto d = Domain(4, IciTopology::kRing);
    auto small =
        CostCollective(Collective::kAllGather, 1 << 20, d).value();
    auto big =
        CostCollective(Collective::kAllGather, 1 << 24, d).value();
    EXPECT_NEAR((big.time_s - 3e-6) / (small.time_s - 3e-6), 16.0,
                0.01);
}

TEST(Collectives, RejectsNegativePayload)
{
    auto d = Domain(4, IciTopology::kRing);
    EXPECT_FALSE(CostCollective(Collective::kAllGather, -1, d).ok());
}

// --- Compiler integration ------------------------------------------------------

TEST(IciIntegration, TopologyAffectsShardedLatency)
{
    auto app = BuildApp("BERT1").value();
    const ChipConfig chip = Tpu_v4i();
    CompileOptions ring;
    ring.batch = 16;
    ring.num_chips = 4;
    ring.ici_topology = IciTopology::kRing;
    CompileOptions full = ring;
    full.ici_topology = IciTopology::kFullyConnected;

    auto r_ring = Simulate(Compile(app.graph, chip, ring).value(),
                           chip).value();
    auto r_full = Simulate(Compile(app.graph, chip, full).value(),
                           chip).value();
    // Both work; latencies differ by less than 2x (same wire volume)
    // and both beat single-chip.
    auto single = Simulate(
        Compile(app.graph, chip, CompileOptions{.batch = 16}).value(),
        chip).value();
    EXPECT_LT(r_ring.latency_s, single.latency_s);
    EXPECT_LT(r_full.latency_s, single.latency_s);
    const double ratio = r_ring.latency_s / r_full.latency_s;
    EXPECT_GT(ratio, 0.5);
    EXPECT_LT(ratio, 2.0);
}

}  // namespace
}  // namespace t4i
