/**
 * @file
 * Tests for the Chrome-trace exporter.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <set>
#include <utility>

#include "src/arch/catalog.h"
#include "src/compiler/compiler.h"
#include "src/models/zoo.h"
#include "src/obs/json.h"
#include "src/obs/trace_builder.h"
#include "src/sim/trace.h"

namespace t4i {
namespace {

struct Traced {
    Program program;
    std::vector<ScheduleEntry> schedule;
};

Traced
MakeTraced()
{
    auto app = BuildApp("CNN1").value();
    const ChipConfig chip = Tpu_v4i();
    CompileOptions opts;
    opts.batch = 4;
    auto prog = Compile(app.graph, chip, opts).value();
    std::vector<ScheduleEntry> schedule;
    T4I_CHECK(SimulateWithSchedule(prog, chip, &schedule).ok(),
              "simulate");
    return {std::move(prog), std::move(schedule)};
}

TEST(Trace, RendersOneEventPerInstruction)
{
    Traced t = MakeTraced();
    auto json = RenderChromeTrace(t.program, t.schedule).value();
    size_t events = 0;
    size_t pos = 0;
    while ((pos = json.find("\"ph\":\"X\"", pos)) !=
           std::string::npos) {
        ++events;
        ++pos;
    }
    EXPECT_EQ(events, t.program.instrs.size());
    EXPECT_EQ(json.front(), '[');
    EXPECT_EQ(json[json.size() - 2], ']');
}

TEST(Trace, ContainsEngineTrackNames)
{
    Traced t = MakeTraced();
    auto json = RenderChromeTrace(t.program, t.schedule).value();
    EXPECT_NE(json.find("\"MXU\""), std::string::npos);
    EXPECT_NE(json.find("\"HBM\""), std::string::npos);
    EXPECT_NE(json.find("thread_name"), std::string::npos);
}

TEST(Trace, RejectsMismatchedSchedule)
{
    Traced t = MakeTraced();
    t.schedule.pop_back();
    EXPECT_FALSE(RenderChromeTrace(t.program, t.schedule).ok());
}

TEST(Trace, DurationsAreNonNegativeMicroseconds)
{
    Traced t = MakeTraced();
    auto json = RenderChromeTrace(t.program, t.schedule).value();
    EXPECT_EQ(json.find("\"dur\":-"), std::string::npos);
}

TEST(Trace, WritesFile)
{
    Traced t = MakeTraced();
    const std::string path = "/tmp/t4i_trace_test.json";
    ASSERT_TRUE(WriteChromeTrace(t.program, t.schedule, path).ok());
    std::FILE* f = std::fopen(path.c_str(), "r");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    EXPECT_GT(std::ftell(f), 1000);
    std::fclose(f);
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// Round-trip validation: parse what the exporters emit and check the
// Chrome-trace invariants that the viewers rely on.
// ---------------------------------------------------------------------

/** (pid, tid) pairs that have a thread_name metadata event. */
std::set<std::pair<double, double>>
NamedTracks(const obs::JsonValue& events)
{
    std::set<std::pair<double, double>> tracks;
    for (const auto& event : events.array) {
        if (event.Find("name") != nullptr &&
            event.Find("name")->string_value == "thread_name") {
            tracks.insert({event.Find("pid")->number_value,
                           event.Find("tid")->number_value});
        }
    }
    return tracks;
}

void
CheckTraceInvariants(const obs::JsonValue& doc)
{
    ASSERT_TRUE(doc.is_array());
    const auto named = NamedTracks(doc);
    // Per-track 'X' starts, in emission order, to check monotonicity.
    std::map<std::pair<double, double>, double> last_start;
    for (const auto& event : doc.array) {
        const obs::JsonValue* ph = event.Find("ph");
        ASSERT_NE(ph, nullptr);
        const obs::JsonValue* ts = event.Find("ts");
        if (ph->string_value != "M") {
            ASSERT_NE(ts, nullptr);
            EXPECT_GE(ts->number_value, 0.0);
        }
        if (ph->string_value != "X") continue;
        EXPECT_GE(event.Find("dur")->number_value, 0.0);
        const std::pair<double, double> track = {
            event.Find("pid")->number_value,
            event.Find("tid")->number_value};
        // Every slice lands on a named track...
        EXPECT_TRUE(named.count(track) == 1)
            << "X event on unnamed track pid="
            << track.first << " tid=" << track.second;
        // ...and per-track starts never go backwards (the scheduler
        // issues in order and the serving devices run batches
        // back-to-back).
        auto it = last_start.find(track);
        if (it != last_start.end()) {
            EXPECT_GE(ts->number_value, it->second);
        }
        last_start[track] = ts->number_value;
    }
}

TEST(Trace, LegacyExportRoundTripsThroughParser)
{
    Traced t = MakeTraced();
    auto json = RenderChromeTrace(t.program, t.schedule).value();
    auto doc = obs::ParseJson(json);
    ASSERT_TRUE(doc.ok()) << doc.status().ToString();
    CheckTraceInvariants(doc.value());
}

TEST(Trace, EnrichedExportRoundTripsWithCountersAndFlows)
{
    Traced t = MakeTraced();
    obs::TraceBuilder builder;
    ASSERT_TRUE(
        AppendScheduleTrace(t.program, t.schedule, &builder).ok());
    auto doc = obs::ParseJson(builder.Render());
    ASSERT_TRUE(doc.ok()) << doc.status().ToString();
    CheckTraceInvariants(doc.value());

    int x_events = 0;
    int counter_samples = 0;
    int flow_starts = 0;
    int flow_ends = 0;
    std::set<std::string> counter_names;
    for (const auto& event : doc.value().array) {
        const std::string& ph = event.Find("ph")->string_value;
        if (ph == "X") ++x_events;
        if (ph == "C") {
            ++counter_samples;
            counter_names.insert(event.Find("name")->string_value);
        }
        if (ph == "s") ++flow_starts;
        if (ph == "f") ++flow_ends;
    }
    // One slice per instruction, same as the legacy exporter.
    EXPECT_EQ(x_events,
              static_cast<int>(t.program.instrs.size()));
    EXPECT_GT(counter_samples, 0);
    // The CMEM-occupancy track is always present; bandwidth tracks
    // only exist for engines that moved bytes (CNN1's weights all fit
    // in CMEM, so it streams over CMEM rather than HBM), and queue
    // depth only when instructions actually queued.
    EXPECT_EQ(counter_names.count("CMEM pinned MiB"), 1u);
    EXPECT_TRUE(counter_names.count("HBM GB/s") == 1 ||
                counter_names.count("CMEM GB/s") == 1);
    // Flow arrows are paired and bounded by the cap.
    EXPECT_GT(flow_starts, 0);
    EXPECT_EQ(flow_starts, flow_ends);
    EXPECT_LE(flow_starts + flow_ends, 200);
}

}  // namespace
}  // namespace t4i
