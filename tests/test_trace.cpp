/**
 * @file
 * Tests for the Chrome-trace exporter.
 */
#include <gtest/gtest.h>

#include <cstdio>

#include "src/arch/catalog.h"
#include "src/compiler/compiler.h"
#include "src/models/zoo.h"
#include "src/sim/trace.h"

namespace t4i {
namespace {

struct Traced {
    Program program;
    std::vector<ScheduleEntry> schedule;
};

Traced
MakeTraced()
{
    auto app = BuildApp("CNN1").value();
    const ChipConfig chip = Tpu_v4i();
    CompileOptions opts;
    opts.batch = 4;
    auto prog = Compile(app.graph, chip, opts).value();
    std::vector<ScheduleEntry> schedule;
    T4I_CHECK(SimulateWithSchedule(prog, chip, &schedule).ok(),
              "simulate");
    return {std::move(prog), std::move(schedule)};
}

TEST(Trace, RendersOneEventPerInstruction)
{
    Traced t = MakeTraced();
    auto json = RenderChromeTrace(t.program, t.schedule).value();
    size_t events = 0;
    size_t pos = 0;
    while ((pos = json.find("\"ph\":\"X\"", pos)) !=
           std::string::npos) {
        ++events;
        ++pos;
    }
    EXPECT_EQ(events, t.program.instrs.size());
    EXPECT_EQ(json.front(), '[');
    EXPECT_EQ(json[json.size() - 2], ']');
}

TEST(Trace, ContainsEngineTrackNames)
{
    Traced t = MakeTraced();
    auto json = RenderChromeTrace(t.program, t.schedule).value();
    EXPECT_NE(json.find("\"MXU\""), std::string::npos);
    EXPECT_NE(json.find("\"HBM\""), std::string::npos);
    EXPECT_NE(json.find("thread_name"), std::string::npos);
}

TEST(Trace, RejectsMismatchedSchedule)
{
    Traced t = MakeTraced();
    t.schedule.pop_back();
    EXPECT_FALSE(RenderChromeTrace(t.program, t.schedule).ok());
}

TEST(Trace, DurationsAreNonNegativeMicroseconds)
{
    Traced t = MakeTraced();
    auto json = RenderChromeTrace(t.program, t.schedule).value();
    EXPECT_EQ(json.find("\"dur\":-"), std::string::npos);
}

TEST(Trace, WritesFile)
{
    Traced t = MakeTraced();
    const std::string path = "/tmp/t4i_trace_test.json";
    ASSERT_TRUE(WriteChromeTrace(t.program, t.schedule, path).ok());
    std::FILE* f = std::fopen(path.c_str(), "r");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    EXPECT_GT(std::ftell(f), 1000);
    std::fclose(f);
    std::remove(path.c_str());
}

}  // namespace
}  // namespace t4i
