/**
 * @file
 * Tests for windowed time-series telemetry, SLO error budgets, and
 * the run-report artifact + cross-run diff (src/obs/timeseries.h,
 * src/obs/slo.h, src/obs/report.h).
 */
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <string>
#include <vector>

#include "src/obs/alerts.h"
#include "src/obs/registry.h"
#include "src/obs/report.h"
#include "src/obs/slo.h"
#include "src/obs/timeseries.h"
#include "src/serving/server.h"

namespace t4i {
namespace {

obs::TimeSeriesOptions
Window(double window_s)
{
    obs::TimeSeriesOptions options;
    options.window_s = window_s;
    return options;
}

TenantConfig
Tenant(const std::string& name, double rate)
{
    TenantConfig t;
    t.name = name;
    t.latency_s = [](int64_t batch) {
        return 1e-3 + 1e-4 * static_cast<double>(batch);
    };
    t.max_batch = 32;
    t.slo_s = 0.010;
    t.arrival_rate = rate;
    return t;
}

// --- TimeSeriesCollector ---------------------------------------------------

TEST(Timeseries, CounterWindowsAlignAndConserve)
{
    obs::MetricsRegistry reg;
    obs::Counter* c = reg.GetCounter("reqs");
    obs::TimeSeriesCollector col(Window(1.0));
    col.BindRegistry(&reg);

    // Activity before the first boundary stays pending.
    c->Increment(5);
    col.Tick(0.5);
    EXPECT_EQ(col.windows_closed(), 0);

    // A tick that jumps two boundaries closes both windows; the gap
    // activity lands in the first one (sparse-tick semantics).
    c->Increment(5);
    col.Tick(2.5);
    EXPECT_EQ(col.windows_closed(), 2);

    // The trailing partial window picks up the rest.
    c->Increment(3);
    col.Finish(2.5);

    const obs::TimeSeries* s = col.Find("reqs");
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->kind, obs::SeriesKind::kCounter);
    ASSERT_EQ(s->points.size(), 3u);
    EXPECT_DOUBLE_EQ(s->points[0].t0_s, 0.0);
    EXPECT_DOUBLE_EQ(s->points[0].t1_s, 1.0);
    EXPECT_EQ(s->points[0].delta, 10);
    EXPECT_DOUBLE_EQ(s->points[0].rate_per_s, 10.0);
    EXPECT_DOUBLE_EQ(s->points[1].t0_s, 1.0);
    EXPECT_DOUBLE_EQ(s->points[1].t1_s, 2.0);
    EXPECT_EQ(s->points[1].delta, 0);
    EXPECT_DOUBLE_EQ(s->points[2].t0_s, 2.0);
    EXPECT_DOUBLE_EQ(s->points[2].t1_s, 2.5);
    EXPECT_EQ(s->points[2].delta, 3);

    // sum(deltas) == final register, bit for bit.
    EXPECT_TRUE(col.CheckConservation().ok());
    int64_t total = 0;
    for (const obs::WindowPoint& p : s->points) total += p.delta;
    EXPECT_EQ(total, c->value());

    // Frozen after Finish.
    c->Increment(1);
    col.Tick(10.0);
    EXPECT_EQ(col.windows_closed(), 3);
}

TEST(Timeseries, GaugeWindowsTrackLastMinMax)
{
    obs::MetricsRegistry reg;
    obs::Gauge* g = reg.GetGauge("util");
    obs::TimeSeriesCollector col(Window(1.0));
    col.BindRegistry(&reg);

    g->Set(5.0);
    col.Tick(0.2);
    g->Set(1.0);
    col.Tick(0.4);
    g->Set(3.0);
    col.Tick(1.0);  // boundary: the window closes with this reading

    const obs::TimeSeries* s = col.Find("util");
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->kind, obs::SeriesKind::kGauge);
    ASSERT_EQ(s->points.size(), 1u);
    EXPECT_DOUBLE_EQ(s->points[0].last, 3.0);
    EXPECT_DOUBLE_EQ(s->points[0].min, 1.0);
    EXPECT_DOUBLE_EQ(s->points[0].max, 5.0);
}

TEST(Timeseries, HistogramWindowsSliceSamplesWithExactQuantiles)
{
    obs::MetricsRegistry reg;
    obs::HistogramMetric* h = reg.GetHistogram("lat");
    obs::TimeSeriesCollector col(Window(1.0));
    col.BindRegistry(&reg);

    for (int i = 1; i <= 100; ++i) {
        h->Observe(static_cast<double>(i));
    }
    col.Tick(1.0);
    // Second window sees only its own samples, not the first 100.
    h->Observe(1000.0);
    col.Tick(2.0);
    col.Finish(2.0);

    const obs::TimeSeries* s = col.Find("lat");
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->kind, obs::SeriesKind::kHistogram);
    ASSERT_EQ(s->points.size(), 2u);

    const obs::WindowPoint& w0 = s->points[0];
    EXPECT_EQ(w0.count, 100);
    EXPECT_DOUBLE_EQ(w0.min, 1.0);
    EXPECT_DOUBLE_EQ(w0.max, 100.0);
    EXPECT_LE(w0.p50, w0.p95);
    EXPECT_LE(w0.p95, w0.p99);
    EXPECT_NEAR(w0.p50, 50.5, 1.0);
    EXPECT_NEAR(w0.p95, 95.0, 1.0);

    const obs::WindowPoint& w1 = s->points[1];
    EXPECT_EQ(w1.count, 1);
    EXPECT_DOUBLE_EQ(w1.p50, 1000.0);
    EXPECT_DOUBLE_EQ(w1.p95, 1000.0);
    EXPECT_DOUBLE_EQ(w1.p99, 1000.0);

    // Histogram count is conserved across the window slices too.
    EXPECT_EQ(w0.count + w1.count, h->count());
}

TEST(Timeseries, ServingRunConservesEveryCounter)
{
    obs::MetricsRegistry reg;
    obs::TimeSeriesCollector col(Window(0.05));
    col.BindRegistry(&reg);
    obs::SloTracker slo;
    slo.BindRegistry(&reg);
    obs::SloObjective obj;
    obj.name = "x-avail";
    obj.tenant = "x";
    obj.availability_target = 0.99;
    ASSERT_TRUE(slo.AddObjective(obj).ok());

    ServingTelemetry telemetry;
    telemetry.registry = &reg;
    telemetry.timeseries = &col;
    telemetry.slo = &slo;
    auto result = RunServingCell({Tenant("x", 400.0)}, 2, 1.0, 42,
                                 telemetry);
    ASSERT_TRUE(result.ok()) << result.status().message();

    slo.Finish(result.value().duration_s);
    col.Finish(result.value().duration_s);
    ASSERT_TRUE(col.CheckConservation().ok())
        << col.CheckConservation().message();
    EXPECT_GT(col.windows_closed(), 10);

    const obs::TimeSeries* s =
        col.Find("serving.completed", {{"tenant", "x"}});
    ASSERT_NE(s, nullptr);
    int64_t total = 0;
    for (const obs::WindowPoint& p : s->points) total += p.delta;
    EXPECT_EQ(total,
              reg.GetCounter("serving.completed", {{"tenant", "x"}})
                  ->value());
    EXPECT_GT(total, 0);
}

// --- SloTracker ------------------------------------------------------------

TEST(Slo, FastBurnCatchesCliffSlowBurnConfirms)
{
    obs::MetricsRegistry reg;
    obs::Counter* completed =
        reg.GetCounter("serving.completed", {{"tenant", "A"}});
    obs::Counter* miss =
        reg.GetCounter("serving.slo_miss", {{"tenant", "A"}});

    obs::SloTracker slo;
    slo.BindRegistry(&reg);
    obs::SloObjective obj;
    obj.name = "a-avail";
    obj.tenant = "A";
    obj.availability_target = 0.9;  // budget = 0.1
    obj.horizon_s = 1.0;
    obj.fast_window_s = 0.1;
    obj.slow_window_s = 0.5;
    obj.page_burn = 1.0;
    ASSERT_TRUE(slo.AddObjective(obj).ok());

    // Healthy for 0.5 s, then a 50%-bad cliff until 0.8 s.
    double cliff_fast = 0.0, cliff_slow = 0.0;
    for (double t = 0.05; t <= 0.8 + 1e-9; t += 0.05) {
        completed->Increment(10);
        if (t > 0.5) miss->Increment(5);
        slo.Tick(t);
        if (std::abs(t - 0.6) < 1e-9) {
            const obs::SloStatus* st = slo.Find("a-avail");
            ASSERT_NE(st, nullptr);
            cliff_fast = st->timeline.back().burn_fast;
            cliff_slow = st->timeline.back().burn_slow;
        }
    }
    slo.Finish(0.8);

    const obs::SloStatus* st = slo.Find("a-avail");
    ASSERT_NE(st, nullptr);
    // Event accounting: good == completed - miss.
    EXPECT_EQ(st->total, completed->value());
    EXPECT_EQ(st->bad, miss->value());
    EXPECT_EQ(st->good, completed->value() - miss->value());

    // Right after the cliff the fast window is saturated with bad
    // events while the slow window still averages in the healthy past.
    EXPECT_GT(cliff_fast, 1.0);
    EXPECT_GT(cliff_fast, cliff_slow);
    EXPECT_GT(cliff_slow, 0.0);

    // Sustained cliff: both windows cross page_burn -> a page.
    EXPECT_GE(st->pages, 1);
    EXPECT_GT(st->page_seconds, 0.0);
    // 30 bad of 160 events against a 0.1 budget exhausts the horizon
    // budget (burn > 1 -> remaining < 0).
    EXPECT_LT(st->min_budget_remaining, 0.0);

    // The gauges the alert grammar consumes are live in the registry.
    obs::Gauge* page = reg.GetGauge(
        "slo.page", {{"slo", "a-avail"}, {"tenant", "A"}});
    ASSERT_NE(page, nullptr);
    EXPECT_DOUBLE_EQ(page->value(), 1.0);
}

TEST(Slo, LatencyQuantileObjectiveBurnsOnSlowSamples)
{
    obs::MetricsRegistry reg;
    obs::Counter* completed =
        reg.GetCounter("serving.completed", {{"tenant", "A"}});
    obs::HistogramMetric* lat = reg.GetHistogram(
        "serving.latency_seconds", {{"tenant", "A"}});

    obs::SloTracker slo;
    slo.BindRegistry(&reg);
    obs::SloObjective obj;
    obj.name = "a-tail";
    obj.tenant = "A";
    obj.latency_target_s = 0.010;
    obj.latency_quantile = 95.0;
    obj.fast_window_s = 0.2;
    ASSERT_TRUE(slo.AddObjective(obj).ok());

    // Every request lands at 20 ms against a 10 ms p95 target.
    for (double t = 0.05; t <= 0.4 + 1e-9; t += 0.05) {
        completed->Increment(4);
        for (int i = 0; i < 4; ++i) lat->Observe(0.020);
        slo.Tick(t);
    }
    slo.Finish(0.4);

    const obs::SloStatus* st = slo.Find("a-tail");
    ASSERT_NE(st, nullptr);
    ASSERT_FALSE(st->timeline.empty());
    EXPECT_DOUBLE_EQ(st->timeline.back().latency_q_s, 0.020);
    // 100% of samples over target against a 5% budget: burn >> 1.
    EXPECT_GT(st->peak_burn_fast, 1.0);
}

TEST(Slo, ForDurationHysteresisThroughWindowedAlerts)
{
    obs::MetricsRegistry reg;
    obs::Counter* completed =
        reg.GetCounter("serving.completed", {{"tenant", "A"}});
    obs::Counter* miss =
        reg.GetCounter("serving.slo_miss", {{"tenant", "A"}});

    obs::SloTracker slo;
    slo.BindRegistry(&reg);
    obs::SloObjective obj;
    obj.name = "a-avail";
    obj.tenant = "A";
    obj.availability_target = 0.9;
    obj.fast_window_s = 0.1;
    obj.slow_window_s = 0.5;
    ASSERT_TRUE(slo.AddObjective(obj).ok());

    obs::AlertEngine alerts;
    alerts.BindRegistry(&reg);
    ASSERT_TRUE(alerts
                    .AddRulesFromText(
                        "alert burn slo.burn_rate_fast > 1 for 0.25\n")
                    .ok());

    obs::TimeSeriesCollector col(Window(0.1));
    col.BindRegistry(&reg);
    col.BindAlerts(&alerts);
    ASSERT_TRUE(col.routes_alerts());

    // Bad events from 0.3 s to 1.0 s, then recovery until 1.5 s.
    for (double t = 0.05; t <= 1.5 + 1e-9; t += 0.05) {
        completed->Increment(10);
        if (t > 0.3 && t <= 1.0) miss->Increment(5);
        slo.Tick(t);
        col.Tick(t);
    }
    slo.Finish(1.5);
    col.Finish(1.5);
    ASSERT_TRUE(col.CheckConservation().ok())
        << col.CheckConservation().message();

    ASSERT_EQ(alerts.statuses().size(), 1u);
    const obs::AlertStatus& status = alerts.statuses()[0];
    // The burn crosses 1 at the 0.3 s window close (closed by the
    // 0.35 s tick, so it sees that tick's gauge state), but `for
    // 0.25` means 0.25 *simulated seconds* of consecutive windows:
    // the fire lands at the 0.6 s close, not the first crossing.
    EXPECT_EQ(status.fire_count, 1);
    EXPECT_GE(status.fired_at_s, 0.55);
    EXPECT_LE(status.fired_at_s, 0.65);
    EXPECT_GE(status.fired_at_s - status.pending_since_s, 0.25);
    // Recovery drained the fast window: the alert resolved by the end.
    EXPECT_EQ(status.state, obs::AlertState::kInactive);
}

TEST(Slo, WindowedRoutingMatchesDirectEvaluationForInstantRules)
{
    // Regression pin: a `for 0` rule behaves identically whether the
    // engine is evaluated directly every tick (the old path) or once
    // per closed window (the routed path) on the same tick grid.
    const std::string rule = "alert done serving.completed > 50 for 0\n";
    auto drive = [&](bool routed) {
        obs::MetricsRegistry reg;
        obs::Counter* completed =
            reg.GetCounter("serving.completed", {{"tenant", "A"}});
        obs::AlertEngine alerts;
        alerts.BindRegistry(&reg);
        EXPECT_TRUE(alerts.AddRulesFromText(rule).ok());
        obs::TimeSeriesCollector col(Window(0.05));
        col.BindRegistry(&reg);
        if (routed) col.BindAlerts(&alerts);
        for (double t = 0.05; t <= 1.0 + 1e-9; t += 0.05) {
            completed->Increment(10);
            col.Tick(t);
            if (!routed) alerts.Evaluate(reg, t);
        }
        // The engines' "once more at run end" evaluation happens
        // before the collector freezes, so its own obs.alert.*
        // increments land in the trailing window (conservation).
        if (!routed) alerts.Evaluate(reg, 1.0);
        col.Finish(1.0);
        EXPECT_TRUE(col.CheckConservation().ok());
        return alerts.statuses()[0];
    };

    const obs::AlertStatus direct = drive(false);
    const obs::AlertStatus routed = drive(true);
    EXPECT_EQ(direct.state, obs::AlertState::kFiring);
    EXPECT_EQ(routed.state, obs::AlertState::kFiring);
    EXPECT_EQ(direct.fire_count, routed.fire_count);
    EXPECT_DOUBLE_EQ(direct.fired_at_s, routed.fired_at_s);
    EXPECT_DOUBLE_EQ(direct.last_value, routed.last_value);
}

// --- RunReport -------------------------------------------------------------

/** A small but fully-populated artifact: counters, gauges,
 *  histograms, windowed series, one SLO, one alert rule. */
obs::RunReport
BuildSampleReport(double perturb_completed = 0.0)
{
    obs::MetricsRegistry reg;
    obs::Counter* completed =
        reg.GetCounter("serving.completed", {{"tenant", "A"}});
    obs::Counter* miss =
        reg.GetCounter("serving.slo_miss", {{"tenant", "A"}});
    obs::HistogramMetric* lat = reg.GetHistogram(
        "serving.latency_seconds", {{"tenant", "A"}});
    obs::Gauge* util = reg.GetGauge("sim.mxu_utilization");

    obs::SloTracker slo;
    slo.BindRegistry(&reg);
    obs::SloObjective obj;
    obj.name = "a-avail";
    obj.tenant = "A";
    obj.availability_target = 0.99;
    EXPECT_TRUE(slo.AddObjective(obj).ok());

    obs::AlertEngine alerts;
    alerts.BindRegistry(&reg);
    EXPECT_TRUE(alerts
                    .AddRulesFromText(
                        "alert busy sim.mxu_utilization > 0.5 for 0\n")
                    .ok());

    obs::TimeSeriesCollector col(Window(0.1));
    col.BindRegistry(&reg);
    col.BindAlerts(&alerts);

    for (double t = 0.05; t <= 0.5 + 1e-9; t += 0.05) {
        completed->Increment(8);
        if (t > 0.4) miss->Increment(1);
        lat->Observe(0.002 + t / 100.0);
        util->Set(0.6);
        slo.Tick(t);
        col.Tick(t);
    }
    completed->Increment(static_cast<int64_t>(perturb_completed));
    slo.Finish(0.5);
    col.Finish(0.5);
    EXPECT_TRUE(col.CheckConservation().ok());

    obs::ReportMeta meta;
    meta.command = "test";
    meta.app = "SYNTH";
    meta.chip = "TPUv4i";
    meta.duration_s = 0.5;
    meta.seed = 7;
    return obs::BuildRunReport(meta, &reg, &col, &slo, &alerts);
}

TEST(Report, JsonRoundTripPreservesEverySection)
{
    const obs::RunReport report = BuildSampleReport();
    const std::string path =
        testing::TempDir() + "/t4i_report_roundtrip.json";
    ASSERT_TRUE(obs::WriteRunReport(report, path).ok());

    auto parsed = obs::ReadRunReport(path);
    ASSERT_TRUE(parsed.ok()) << parsed.status().message();
    EXPECT_EQ(parsed.value().schema_version,
              obs::kRunReportSchemaVersion);
    EXPECT_EQ(parsed.value().meta.app, "SYNTH");
    EXPECT_EQ(parsed.value().meta.seed, 7);
    EXPECT_EQ(parsed.value().series.size(), report.series.size());
    EXPECT_EQ(parsed.value().slos.size(), report.slos.size());
    EXPECT_EQ(parsed.value().alerts.size(), report.alerts.size());
    EXPECT_EQ(parsed.value().metrics.size(), report.metrics.size());

    // Parsed-vs-parsed (both sides went through the same %.9g
    // formatting) must be identical under the default exact bands.
    auto again = obs::ReadRunReport(path);
    ASSERT_TRUE(again.ok());
    const obs::ReportDiffResult diff =
        obs::DiffRunReports(parsed.value(), again.value());
    EXPECT_TRUE(diff.ok()) << obs::RenderReportDiff(diff);
    EXPECT_GT(diff.compared, 50);
    EXPECT_TRUE(diff.missing.empty());
    EXPECT_TRUE(diff.added.empty());

    // Both renders produce non-trivial output.
    EXPECT_NE(obs::RenderRunReportMarkdown(parsed.value()).find(
                  "SYNTH"),
              std::string::npos);
    EXPECT_NE(obs::RenderRunReportCsv(parsed.value()).find("metric"),
              std::string::npos);
}

TEST(Report, ReadRejectsUnknownSchemaVersion)
{
    obs::RunReport report = BuildSampleReport();
    report.schema_version = 99;
    const std::string path =
        testing::TempDir() + "/t4i_report_badversion.json";
    ASSERT_TRUE(obs::WriteRunReport(report, path).ok());
    EXPECT_FALSE(obs::ReadRunReport(path).ok());
}

TEST(Report, DiffFlagsPerturbationHonorsTolerancesAndMissing)
{
    const obs::RunReport base = BuildSampleReport();
    const obs::RunReport perturbed = BuildSampleReport(5.0);

    // Exact bands: the nudged counter (and everything downstream of
    // it) must be flagged.
    const obs::ReportDiffResult strict =
        obs::DiffRunReports(base, perturbed);
    EXPECT_FALSE(strict.ok());
    ASSERT_FALSE(strict.regressions.empty());
    bool found = false;
    for (const obs::ReportDiffEntry& r : strict.regressions) {
        if (r.key.find("serving.completed") != std::string::npos) {
            found = true;
            EXPECT_NEAR(r.current - r.base, 5.0, 1e-9);
        }
    }
    EXPECT_TRUE(found) << obs::RenderReportDiff(strict);

    // A prefix tolerance wide enough to cover the nudge (and the slo
    // ratios derived from it) makes the same diff pass.
    obs::ReportDiffOptions loose;
    loose.default_tolerance = {0.5, 10.0};
    const obs::ReportDiffResult tolerant =
        obs::DiffRunReports(base, perturbed, loose);
    EXPECT_TRUE(tolerant.ok()) << obs::RenderReportDiff(tolerant);

    // A metric present in base but gone from current is a failure
    // even when every surviving value matches.
    obs::RunReport gutted = base;
    ASSERT_FALSE(gutted.metrics.empty());
    gutted.metrics.pop_back();
    const obs::ReportDiffResult missing =
        obs::DiffRunReports(base, gutted);
    EXPECT_FALSE(missing.ok());
    EXPECT_FALSE(missing.missing.empty());

    // The reverse direction is informational only.
    const obs::ReportDiffResult added =
        obs::DiffRunReports(gutted, base);
    EXPECT_TRUE(added.ok());
    EXPECT_FALSE(added.added.empty());
}

}  // namespace
}  // namespace t4i
