/**
 * @file
 * t4sim — command-line driver for the whole library.
 *
 * Subcommands:
 *   t4sim_cli list
 *       catalog of chips and workloads
 *   t4sim_cli run --app BERT0 --chip TPUv4i --batch 16 [options]
 *       compile + simulate + report (optionally profile/trace/power)
 *   t4sim_cli exec --app CNN1 --batch 2
 *       run the functional executor and report bf16/int8 end-to-end
 *       output fidelity vs fp32 (Lesson 6 on your own model)
 *   t4sim_cli profile --app BERT0 --chip TPUv4i --batch 16
 *       per-op roofline from the modeled performance counters:
 *       achieved vs ceiling FLOP/s, operational intensity, stall
 *       breakdown per HLO op, plus the counter-file register dump
 *       (accepts run options below plus --sample-us / --top N)
 *   t4sim_cli check --app BERT0 --alerts RULES [run options]
 *       same as run, but --alerts is required and the exit code is
 *       nonzero when any alert rule is firing at the end of the run
 *       (SLO gate for CI; see docs/OBSERVABILITY.md)
 *   t4sim_cli check --scenario FILE [--seed N] [--policy NAME]
 *              [--report-out FILE] [--spans-out FILE]
 *              [--blackbox-out FILE] [--blackbox-capacity N]
 *       adversarial load scenario gate (docs/SCENARIOS.md): replays
 *       the scenario's arrival program (trace replay, flash crowds,
 *       retry storms) against a cluster and exits 0 iff exactly the
 *       scenario's expected alerts fire, request conservation holds,
 *       and any `expect-dominant` tail contract matches;
 *       --seed/--policy override the file for matrix sweeps;
 *       --spans-out captures the traced span trees as JSONL and
 *       --blackbox-out writes a flight-recorder snapshot (with the
 *       kept-trace forensics summary) at run end
 *   t4sim_cli explain --scenario FILE [--seed N] [--policy NAME]
 *              [--top K] [--report-out FILE] [--spans-out FILE]
 *   t4sim_cli explain --spans FILE [--report FILE] [--seed N]
 *              [--top K]
 *       tail-latency forensics (docs/OBSERVABILITY.md): run a
 *       scenario inline (or reload a --spans-out JSONL and optionally
 *       its report.json), classify every trace through the tail
 *       sampler, and print the top-K slowest / violating kept traces
 *       with critical-path breakdowns and histogram-exemplar joins.
 *       Exit 0 when the forensic invariants hold, 1 when a kept path
 *       fails the tiling bar or an exported exemplar does not resolve
 *       to a kept trace, 2 on usage/IO errors
 *   t4sim_cli report FILE [--format markdown|csv] [--out FILE]
 *       render a --report-out run artifact (report.json) for humans
 *       (markdown) or spreadsheets/pandas (CSV)
 *   t4sim_cli diff BASE CURRENT [--rel R] [--abs A]
 *              [--tol "prefix=rel[:abs],..."] [--ignore "prefix,..."]
 *       compare two run artifacts with per-metric-prefix tolerances
 *       (longest prefix wins, default exact since the sim is
 *       deterministic; compiler.pass.* ignored). Exit 0 when within
 *       band, 1 on any out-of-band value or missing key, 2 on usage/
 *       IO errors — the cross-run regression gate for CI.
 *   t4sim_cli serve-cluster --app BERT0 --cells 3 [options]
 *       multi-cell cluster serving drill (docs/SERVING.md): the SLO
 *       batch's capacity offered across N cells behind the router.
 *       Options (plus --chip/--batch/--dtype/--load/--deadline-ms/
 *       --max-queue/--alerts/--metrics-json/--trace-out/--spans-out):
 *         --cells N --devices N     fleet shape (default 3 x 1)
 *         --duration S --seed N --policy round-robin|least-loaded|
 *                                          p2c|affinity
 *         --route-attempts N        failover attempts (default 2)
 *         --health-interval S       stale router health belief
 *         --fail-cell I --fail-at S --repair-at S   outage drill;
 *             with --require-floor, exit nonzero when availability
 *             falls to the N+k-predicted floor
 *         --standby N --target-availability F       N+k seeding
 *         --canary-scale F --canary-start S --canary-soak S
 *         --autoscale --scale-interval S --burn-up F --burn-down F
 *             --min-cells N
 *         --check-alerts            nonzero exit if any rule fires
 *   t4sim_cli serve-llm [options]
 *       autoregressive LLM serving on one TPUv4i cell
 *       (docs/LLM_SERVING.md): continuous batching, prefill/decode
 *       split, KV-cache residency. Options:
 *         --model TINYLM|GPT2L --mode continuous|static|disagg
 *         --duration S --seed N --rate RPS
 *         --prompt-mean N --prompt-sigma F --prompt-max N
 *         --output-mean N --output-sigma F --output-max N
 *         --max-batch N --max-queue N
 *         --kv-cmem-mb F --kv-hbm-mb F    (KV tier budget overrides)
 *         --ttft-slo-ms MS --tpot-slo-ms MS
 *         --window S --alerts FILE        (nonzero exit on firing)
 *         --metrics-json FILE --spans-out FILE --report-out FILE
 *
 * Run options:
 *   --app NAME | --model resnet50|mobilenet|bert-large|ssd|dlrm|decoder
 *   --chip NAME            (default TPUv4i)
 *   --chip-file FILE       (custom chip config; see src/arch/chip_io.h)
 *   --batch N              (default 16)
 *   --dtype bf16|int8|fp32 (default bf16)
 *   --opt 0..3             (default 3)
 *   --chips N              (default 1)
 *   --topology ring|full   (default ring)
 *   --cmem MIB             (override CMEM capacity)
 *   --profile              (per-layer breakdown)
 *   --power                (energy report)
 *   --trace FILE           (Chrome trace JSON, device schedule only)
 *   --stats                (machine-readable key/value dump)
 *   --metrics-json=FILE    (metrics registry snapshot as JSON: per-
 *                           engine utilization, sampled sim.counter.*
 *                           time series, per-tenant latency
 *                           percentiles, SLO misses, compiler pass
 *                           times — runs a short serving sim too)
 *   --trace-out=FILE       (enriched Chrome trace: device schedule,
 *                           perf-counter tracks, serving flow events)
 *   --sample-us=N          (perf-counter sampling interval in us;
 *                           default auto, ~64 windows per run)
 *
 * Observability options (serving phase; see docs/OBSERVABILITY.md):
 *   --spans-out=FILE       (request span tree as JSONL, one span per
 *                           line; spans also land on --trace-out as
 *                           per-trace slice tracks)
 *   --blackbox-out=FILE    (flight-recorder post-mortem JSON, written
 *                           on the first trigger)
 *   --blackbox-capacity=N  (ring-buffer capacity in events; def 4096)
 *   --blackbox-trigger=LST (csv of fault|deadline|alert; def fault)
 *   --alerts=FILE          (declarative alert rules, evaluated against
 *                           the registry during and after the run)
 *   --alert-interval=S     (sim-time evaluation period; default 0.05)
 *   --load=F               (offered load as a fraction of the SLO
 *                           batch's capacity; default 0.7)
 *   --window=S             (time-series window width on the sim
 *                           clock; default 0.05 — counters become
 *                           per-window deltas/rates, gauges
 *                           last/min/max, histograms exact per-window
 *                           quantiles; with --alerts, rules are
 *                           evaluated once per closed window so
 *                           `for X` means X seconds of consecutive
 *                           windows)
 *   --slo-file=FILE        (declarative SLO objectives, see
 *                           src/obs/slo.h; default: one availability +
 *                           latency-p95 objective per tenant)
 *   --report-out=FILE      (versioned report.json run artifact:
 *                           windowed series, SLO budget timelines,
 *                           alert outcomes, final metrics — consumed
 *                           by `t4sim_cli report` / `t4sim_cli diff`)
 *
 * Reliability options (shape the serving phase of --metrics-json /
 * --trace-out runs; see docs/RELIABILITY.md):
 *   --devices N            (serving-cell size, default 1)
 *   --fault-mtbf S         (random failures: mean time between, s)
 *   --fault-mttr S         (mean time to repair, s; required w/ mtbf)
 *   --fail-at S            (script device 0 failing at S seconds)
 *   --repair-at S          (repair time for --fail-at; omit = never)
 *   --fault-p P            (transient batch failure probability)
 *   --fault-seed N         (fault stream seed, default 0x6661756c74)
 *   --deadline-ms MS       (per-request deadline; expired = dropped)
 *   --max-queue N          (per-tenant queue bound; beyond = shed)
 *   --hedge                (hedged dispatch on straggler batches)
 */
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/cluster/scenario_run.h"
#include "src/llm/llm_scenario.h"
#include "src/load/scenario.h"
#include "src/obs/alerts.h"
#include "src/obs/critical_path.h"
#include "src/obs/export.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/report.h"
#include "src/obs/sampling.h"
#include "src/obs/spans.h"
#include "src/sim/profile.h"
#include "src/sim/trace.h"
#include "src/tpu4sim.h"

namespace {

using namespace t4i;

/** Tiny flag parser: --key value and boolean --key. */
class Args {
  public:
    Args(int argc, char** argv)
    {
        for (int i = 0; i < argc; ++i) {
            std::string arg = argv[i];
            if (arg.rfind("--", 0) != 0) continue;
            arg = arg.substr(2);
            const size_t eq = arg.find('=');
            if (eq != std::string::npos) {
                values_[arg.substr(0, eq)] = arg.substr(eq + 1);
                continue;
            }
            if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
                values_[arg] = argv[i + 1];
                ++i;
            } else {
                values_[arg] = "";
            }
        }
    }

    bool Has(const std::string& key) const
    {
        return values_.count(key) > 0;
    }

    std::string
    Get(const std::string& key, const std::string& fallback) const
    {
        auto it = values_.find(key);
        return it == values_.end() ? fallback : it->second;
    }

    int64_t
    GetInt(const std::string& key, int64_t fallback) const
    {
        auto it = values_.find(key);
        return it == values_.end() ? fallback
                                   : std::atoll(it->second.c_str());
    }

    double
    GetDouble(const std::string& key, double fallback) const
    {
        auto it = values_.find(key);
        return it == values_.end() ? fallback
                                   : std::atof(it->second.c_str());
    }

  private:
    std::map<std::string, std::string> values_;
};

int
CmdList()
{
    TablePrinter chips({"Chip", "Year", "Peak TFLOPS", "Memory",
                        "TDP W"});
    for (const auto& chip : ChipCatalog()) {
        chips.AddRow({
            chip.name,
            StrFormat("%d", chip.year),
            StrFormat("%.1f",
                      std::max(chip.PeakFlops(DType::kBf16),
                               chip.PeakFlops(DType::kInt8)) / 1e12),
            HumanBytes(static_cast<double>(chip.dram_bytes), 0),
            StrFormat("%.0f", chip.tdp_w),
        });
    }
    chips.Print("Chips");

    TablePrinter apps({"App", "Domain", "Weights", "SLO ms"});
    for (const auto& app : ProductionApps()) {
        auto c = app.graph.Cost(1, DType::kBf16, DType::kBf16).value();
        apps.AddRow({
            app.name,
            AppDomainName(app.domain),
            HumanBytes(static_cast<double>(c.weight_bytes)),
            StrFormat("%.0f", app.slo_ms),
        });
    }
    apps.Print("Production apps (also: --model "
               "resnet50|mobilenet|bert-large|ssd|dlrm|decoder)");
    return 0;
}

/** A model plus the serving contract the telemetry path needs. */
struct ResolvedModel {
    Graph graph;
    std::string name;
    double slo_ms = 10.0;
};

StatusOr<ResolvedModel>
ResolveModel(const Args& args)
{
    if (args.Has("app")) {
        auto app = BuildApp(args.Get("app", ""));
        T4I_RETURN_IF_ERROR(app.status());
        return ResolvedModel{std::move(app.value().graph),
                             app.value().name, app.value().slo_ms};
    }
    const std::string model = args.Get("model", "");
    StatusOr<Graph> graph = Status::InvalidArgument(
        "pass --app NAME (see `list`) or --model "
        "resnet50|mobilenet|bert-large|ssd|dlrm|decoder");
    if (model == "resnet50") graph = BuildResNet50();
    if (model == "mobilenet") graph = BuildMobileNetish("MobileNet");
    if (model == "bert-large") graph = BuildBertLarge();
    if (model == "ssd") graph = BuildSsdDetector("SSD");
    if (model == "dlrm") {
        graph = BuildDlrm("DLRM", 8, 1'000'000, 64, 16, 13);
    }
    if (model == "decoder") {
        graph = BuildDecoderLm("DecoderLM", 24, 1024, 16, 4096, 512,
                               32, 50000);
    }
    T4I_RETURN_IF_ERROR(graph.status());
    return ResolvedModel{std::move(graph.value()), model, 10.0};
}

int
CmdExec(const Args& args)
{
    auto graph = ResolveModel(args);
    if (!graph.ok()) {
        std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
        return 1;
    }
    const int64_t batch = args.GetInt("batch", 2);
    TablePrinter table({"Precision", "SQNR dB", "max |err|",
                        "RMS err"});
    for (auto precision : {MatmulPrecision::kBf16,
                           MatmulPrecision::kInt8}) {
        auto loss = PrecisionLoss(graph.value().graph, precision, batch,
                                  args.GetInt("seed", 7));
        if (!loss.ok()) {
            std::fprintf(stderr, "exec: %s\n",
                         loss.status().ToString().c_str());
            return 1;
        }
        table.AddRow({
            precision == MatmulPrecision::kBf16 ? "bf16" : "int8",
            StrFormat("%.1f", loss.value().sqnr_db),
            StrFormat("%.4g", loss.value().max_abs_error),
            StrFormat("%.4g", loss.value().rms_error),
        });
    }
    table.Print("End-to-end output fidelity vs fp32 (functional "
                "executor)");
    return 0;
}

/** Shared by run/profile: compile options from the common flags. */
bool
ParseCompileOptions(const Args& args, CompileOptions* opts)
{
    opts->batch = args.GetInt("batch", 16);
    opts->opt_level = static_cast<int>(args.GetInt("opt", 3));
    opts->num_chips = static_cast<int>(args.GetInt("chips", 1));
    const std::string dtype = args.Get("dtype", "bf16");
    if (dtype == "int8") {
        opts->dtype = DType::kInt8;
    } else if (dtype == "fp32") {
        opts->dtype = DType::kFp32;
    } else if (dtype == "bf16") {
        opts->dtype = DType::kBf16;
    } else {
        std::fprintf(stderr, "unknown dtype '%s'\n", dtype.c_str());
        return false;
    }
    if (args.Get("topology", "ring") == "full") {
        opts->ici_topology = IciTopology::kFullyConnected;
    }
    if (args.Has("cmem")) {
        opts->cmem_override_bytes = args.GetInt("cmem", 128) * kMiB;
    }
    return true;
}

/**
 * Engine-group shares of the device's busy cycles, from the counter
 * file — feeds ServingTelemetry::batch_attribution so the serving sim
 * can split each batch's device time into mxu/vpu/memory/link.
 */
std::vector<AttributionShare>
AttributionFromCounters(const PerfCounterFile& file)
{
    auto cyc = [&](Engine e) {
        return file.busy_cycles[static_cast<size_t>(e)];
    };
    const double mxu = cyc(Engine::kMxu);
    const double vpu = cyc(Engine::kVpu);
    const double mem = cyc(Engine::kHbm) + cyc(Engine::kCmem);
    const double link = cyc(Engine::kIci) + cyc(Engine::kPcie) +
                        cyc(Engine::kPcieIn);
    const double total = mxu + vpu + mem + link;
    if (total <= 0.0) return {};
    return {{"mxu", mxu / total},
            {"vpu", vpu / total},
            {"memory", mem / total},
            {"link", link / total}};
}

/**
 * Joins the modeled power report with the TCO amortization to price
 * attributed device time. Per-component watts split the device's
 * sustained power by the power model's energy fractions, re-normalized
 * by the attribution shares, so integrating share x watts over busy
 * time recovers the device's average power (static power rides along
 * proportionally).
 */
obs::SloCostModel
BuildSloCostModel(const PowerReport& power, const TcoReport& tco,
                  const TcoParams& params,
                  const std::vector<AttributionShare>& attribution)
{
    obs::SloCostModel model;
    model.usd_per_joule =
        params.electricity_usd_per_kwh * params.pue_air / 3.6e6;
    const double service_s =
        params.service_years * 365.0 * 24.0 * 3600.0;
    model.usd_per_device_second =
        service_s > 0.0 ? tco.tco_usd / service_s : 0.0;
    if (power.total_energy_j <= 0.0) return model;
    const double watts = power.throttled_power_w > 0.0
                             ? power.throttled_power_w
                             : power.avg_power_w;
    const double static_frac =
        power.static_energy_j / power.total_energy_j;
    auto dynamic_fraction = [&](const std::string& component) {
        if (component == "mxu") {
            return power.mxu_energy_j / power.total_energy_j;
        }
        if (component == "vpu") {
            return power.vpu_energy_j / power.total_energy_j;
        }
        if (component == "memory") {
            return (power.sram_energy_j + power.dram_energy_j) /
                   power.total_energy_j;
        }
        if (component == "link") {
            return power.link_energy_j / power.total_energy_j;
        }
        return 0.0;
    };
    for (const AttributionShare& share : attribution) {
        if (share.fraction <= 0.0) continue;
        model.component_watts.emplace_back(
            share.component,
            watts * (dynamic_fraction(share.component) /
                         share.fraction +
                     static_frac));
    }
    return model;
}

/**
 * Default per-tenant SLO: the availability budget is the serving
 * layer's slo_error_budget (so `slo.*` and `serving.slo_burn_rate`
 * agree on what a "budget" is), plus the tenant's latency SLO at p95.
 */
obs::SloObjective
MakeDefaultObjective(const TenantConfig& tenant, double error_budget,
                     double duration_s, double window_s)
{
    obs::SloObjective objective;
    objective.name = tenant.name;
    objective.tenant = tenant.name;
    objective.availability_target =
        1.0 - std::min(std::max(error_budget, 1e-6), 0.5);
    objective.latency_target_s = tenant.slo_s;
    objective.latency_quantile = 95.0;
    objective.horizon_s = std::max(duration_s, window_s);
    objective.fast_window_s = std::max(2.0 * window_s, 0.1);
    objective.slow_window_s = std::max(10.0 * window_s, 0.5);
    return objective;
}

/** Loads --slo-file objectives, or the per-tenant defaults. */
bool
LoadSloObjectives(const Args& args,
                  const std::vector<TenantConfig>& tenants,
                  double error_budget, double duration_s,
                  double window_s, obs::SloTracker* tracker)
{
    if (args.Has("slo-file")) {
        auto text = obs::ReadTextFile(args.Get("slo-file", ""));
        auto loaded =
            text.ok() ? tracker->AddObjectivesFromText(text.value())
                      : text.status();
        if (!loaded.ok()) {
            std::fprintf(stderr, "slo-file: %s\n",
                         loaded.ToString().c_str());
            return false;
        }
        return true;
    }
    for (const TenantConfig& tenant : tenants) {
        auto added = tracker->AddObjective(MakeDefaultObjective(
            tenant, error_budget, duration_s, window_s));
        if (!added.ok()) {
            std::fprintf(stderr, "slo: %s\n",
                         added.ToString().c_str());
            return false;
        }
    }
    return true;
}

/** Writes the run artifact and reports the outcome; false on error. */
bool
WriteReportArtifact(const Args& args, const std::string& command,
                    const std::string& app, const std::string& chip,
                    double duration_s, int64_t seed,
                    const obs::MetricsRegistry& registry,
                    const obs::TimeSeriesCollector* timeseries,
                    const obs::SloTracker* slo,
                    const obs::AlertEngine* alerts,
                    const obs::ForensicsResult* forensics = nullptr)
{
    if (!args.Has("report-out")) return true;
    obs::ReportMeta meta;
    meta.command = command;
    meta.app = app;
    meta.chip = chip;
    meta.duration_s = duration_s;
    meta.seed = seed;
    obs::RunReport report =
        obs::BuildRunReport(meta, &registry, timeseries, slo, alerts);
    if (forensics != nullptr) {
        obs::AttachForensics(*forensics, &report);
    }
    const std::string path = args.Get("report-out", "report.json");
    auto status = obs::WriteRunReport(report, path);
    std::printf("report-out: %s\n",
                status.ok() ? path.c_str()
                            : status.ToString().c_str());
    return status.ok();
}

/**
 * Tail-forensics pass shared by run / check / serve-cluster /
 * explain: classify the collected traces, join exemplars from
 * @p registry, and print the one-line summary. Alert windows come
 * from @p alerts (rules that ever fired stay interesting through run
 * end). Pass export_registry null for a read-only pass.
 */
obs::ForensicsResult
RunForensicsPass(const obs::SpanCollector& spans, uint64_t seed,
                 double duration_s, const obs::AlertEngine* alerts,
                 const obs::MetricsRegistry* registry,
                 obs::MetricsRegistry* export_registry)
{
    obs::TailSamplerOptions sampler_options;
    sampler_options.seed = seed;
    obs::TailSampler sampler(sampler_options);
    if (alerts != nullptr) {
        for (const obs::AlertStatus& status : alerts->statuses()) {
            if (status.fire_count > 0) {
                sampler.AddAlertWindow(status.fired_at_s,
                                       duration_s);
            }
        }
    }
    return obs::BuildForensics(spans, sampler, registry,
                               export_registry);
}

void
PrintForensicsSummary(const obs::ForensicsResult& forensics)
{
    const obs::ReportCriticalPath& cp = forensics.critical_path;
    std::printf("forensics: kept %lld of %lld traces | paths %lld "
                "tiled, %lld untiled | %zu exemplars\n",
                static_cast<long long>(cp.kept),
                static_cast<long long>(cp.traces),
                static_cast<long long>(cp.tiled),
                static_cast<long long>(cp.untiled),
                forensics.exemplars.size());
}

/** Renders one path as `queue 61.2% -> execute 30.1% (12.34 ms)`. */
std::string
RenderPathBreakdown(const obs::TracePath& path)
{
    // Merge per-component seconds in first-appearance order so long
    // paths stay one readable line.
    std::vector<std::pair<std::string, double>> shares;
    double total = 0.0;
    for (const obs::PathSegment& seg : path.segments) {
        total += seg.duration_s();
        bool merged = false;
        for (auto& [component, seconds] : shares) {
            if (component == seg.component) {
                seconds += seg.duration_s();
                merged = true;
                break;
            }
        }
        if (!merged) {
            shares.emplace_back(seg.component, seg.duration_s());
        }
    }
    std::string out;
    for (const auto& [component, seconds] : shares) {
        if (!out.empty()) out += " -> ";
        out += StrFormat("%s %.1f%%", component.c_str(),
                         total > 0.0 ? 100.0 * seconds / total : 0.0);
    }
    if (out.empty()) out = "(empty path)";
    return out;
}

/**
 * Prints the top-K kept traces (SLO violations and non-completions
 * first, then by latency) with critical-path breakdowns and exemplar
 * joins. Returns the number of untiled paths among everything kept.
 */
int64_t
PrintTopTraces(const obs::ForensicsResult& forensics, int64_t top)
{
    std::map<uint64_t, obs::KeepReason> reasons;
    for (const obs::TraceVerdict& v : forensics.verdicts) {
        if (v.kept) reasons[v.trace_id] = v.reason;
    }
    std::map<uint64_t, std::vector<const obs::ReportExemplar*>> joins;
    for (const obs::ReportExemplar& e : forensics.exemplars) {
        joins[e.trace_id].push_back(&e);
    }
    std::vector<const obs::TracePath*> ranked;
    ranked.reserve(forensics.paths.size());
    for (const obs::TracePath& path : forensics.paths) {
        ranked.push_back(&path);
    }
    std::sort(ranked.begin(), ranked.end(),
              [](const obs::TracePath* a, const obs::TracePath* b) {
                  const bool a_bad =
                      a->slo_miss || a->outcome != "completed";
                  const bool b_bad =
                      b->slo_miss || b->outcome != "completed";
                  if (a_bad != b_bad) return a_bad;
                  if (a->latency_s != b->latency_s) {
                      return a->latency_s > b->latency_s;
                  }
                  return a->trace_id < b->trace_id;
              });
    int64_t untiled = 0;
    for (const obs::TracePath* path : ranked) {
        if (!path->tiled) ++untiled;
    }
    const size_t n = std::min(ranked.size(),
                              static_cast<size_t>(
                                  std::max<int64_t>(top, 0)));
    for (size_t i = 0; i < n; ++i) {
        const obs::TracePath& path = *ranked[i];
        auto reason = reasons.find(path.trace_id);
        std::printf(
            "  #%zu trace %llu%s%s | %.3f ms | %s%s | kept: %s%s\n",
            i + 1,
            static_cast<unsigned long long>(path.trace_id),
            path.tenant.empty() ? "" : " tenant=",
            path.tenant.c_str(), path.latency_s * 1e3,
            path.outcome.empty() ? "?" : path.outcome.c_str(),
            path.slo_miss ? " SLO-MISS" : "",
            reason != reasons.end()
                ? obs::KeepReasonName(reason->second)
                : "?",
            path.tiled ? "" : " | UNTILED");
        std::printf("      %s\n",
                    RenderPathBreakdown(path).c_str());
        auto join = joins.find(path.trace_id);
        if (join != joins.end()) {
            for (const obs::ReportExemplar* e : join->second) {
                std::printf("      exemplar: %s[%d] = %.6g s\n",
                            e->metric.c_str(), e->bucket, e->value);
            }
        }
    }
    return untiled;
}

/** Parses `prefix=rel[:abs],...` into diff tolerances. */
bool
ParseDiffTolerances(const std::string& spec,
                    obs::ReportDiffOptions* options)
{
    for (const std::string& item : SplitString(spec, ',')) {
        if (item.empty()) continue;
        const size_t eq = item.find('=');
        if (eq == std::string::npos || eq == 0) {
            std::fprintf(stderr,
                         "diff: bad --tol entry '%s' (want "
                         "prefix=rel[:abs])\n",
                         item.c_str());
            return false;
        }
        obs::ReportTolerance tol;
        const std::string value = item.substr(eq + 1);
        const size_t colon = value.find(':');
        tol.rel = std::atof(value.substr(0, colon).c_str());
        if (colon != std::string::npos) {
            tol.abs = std::atof(value.substr(colon + 1).c_str());
        }
        options->tolerances.emplace_back(item.substr(0, eq), tol);
    }
    return true;
}

int
CmdReport(const std::string& path, const Args& args)
{
    auto report = obs::ReadRunReport(path);
    if (!report.ok()) {
        std::fprintf(stderr, "report: %s\n",
                     report.status().ToString().c_str());
        return 2;
    }
    const std::string format = args.Get("format", "markdown");
    std::string rendered;
    if (format == "markdown" || format == "md") {
        rendered = obs::RenderRunReportMarkdown(report.value());
    } else if (format == "csv") {
        rendered = obs::RenderRunReportCsv(report.value());
    } else {
        std::fprintf(stderr,
                     "report: unknown --format '%s' (markdown|csv)\n",
                     format.c_str());
        return 2;
    }
    if (args.Has("out")) {
        const std::string out = args.Get("out", "");
        auto status = obs::WriteTextFile(rendered, out);
        if (!status.ok()) {
            std::fprintf(stderr, "report: %s\n",
                         status.ToString().c_str());
            return 2;
        }
        std::printf("report: %s\n", out.c_str());
    } else {
        std::fputs(rendered.c_str(), stdout);
    }
    return 0;
}

int
CmdDiff(const std::string& base_path, const std::string& current_path,
        const Args& args)
{
    auto base = obs::ReadRunReport(base_path);
    if (!base.ok()) {
        std::fprintf(stderr, "diff: %s\n",
                     base.status().ToString().c_str());
        return 2;
    }
    auto current = obs::ReadRunReport(current_path);
    if (!current.ok()) {
        std::fprintf(stderr, "diff: %s\n",
                     current.status().ToString().c_str());
        return 2;
    }
    obs::ReportDiffOptions options;
    options.default_tolerance.rel = args.GetDouble("rel", 0.0);
    options.default_tolerance.abs = args.GetDouble("abs", 1e-12);
    if (args.Has("tol") &&
        !ParseDiffTolerances(args.Get("tol", ""), &options)) {
        return 2;
    }
    for (const std::string& prefix :
         SplitString(args.Get("ignore", ""), ',')) {
        if (!prefix.empty()) {
            options.ignore_prefixes.push_back(prefix);
        }
    }
    auto result =
        obs::DiffRunReports(base.value(), current.value(), options);
    std::fputs(obs::RenderReportDiff(result).c_str(), stdout);
    return result.ok() ? 0 : 1;
}

int
CmdProfile(const Args& args)
{
    auto graph = ResolveModel(args);
    if (!graph.ok()) {
        std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
        return 1;
    }
    StatusOr<ChipConfig> chip =
        args.Has("chip-file")
            ? LoadChipFile(args.Get("chip-file", ""))
            : ChipByName(args.Get("chip", "TPUv4i"));
    if (!chip.ok()) {
        std::fprintf(stderr, "%s\n", chip.status().ToString().c_str());
        return 1;
    }
    CompileOptions opts;
    if (!ParseCompileOptions(args, &opts)) return 1;

    auto prog = Compile(graph.value().graph, chip.value(), opts);
    if (!prog.ok()) {
        std::fprintf(stderr, "compile: %s\n",
                     prog.status().ToString().c_str());
        return 1;
    }
    std::vector<ScheduleEntry> schedule;
    auto result =
        SimulateWithSchedule(prog.value(), chip.value(), &schedule);
    if (!result.ok()) {
        std::fprintf(stderr, "simulate: %s\n",
                     result.status().ToString().c_str());
        return 1;
    }

    auto counters = CollectPerfCounters(
        prog.value(), chip.value(), schedule,
        args.GetDouble("sample-us", 0.0) * 1e-6);
    if (!counters.ok()) {
        std::fprintf(stderr, "counters: %s\n",
                     counters.status().ToString().c_str());
        return 1;
    }
    auto ops = ProfileByOp(prog.value(), chip.value(), schedule);
    if (!ops.ok()) {
        std::fprintf(stderr, "profile: %s\n",
                     ops.status().ToString().c_str());
        return 1;
    }
    std::printf("%s", RenderOpRoofline(
                          ops.value(), counters.value(),
                          static_cast<size_t>(args.GetInt("top", 24)))
                          .c_str());
    std::printf("\n%s", counters.value().Summary().c_str());

    if (args.Has("metrics-json")) {
        obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
        RecordSimMetrics(result.value(), &reg);
        RecordCounterMetrics(counters.value(), &reg);
        const std::string path =
            args.Get("metrics-json", "metrics.json");
        auto status = obs::WriteMetricsJson(reg, path);
        std::printf("\nmetrics-json: %s\n",
                    status.ok() ? path.c_str()
                                : status.ToString().c_str());
        if (!status.ok()) return 1;
    }
    if (args.Has("trace-out")) {
        obs::TraceBuilder builder;
        auto appended =
            AppendScheduleTrace(prog.value(), schedule, &builder, 1);
        if (appended.ok()) {
            appended =
                AppendCounterTracks(counters.value(), &builder, 1);
        }
        const std::string path =
            args.Get("trace-out", "trace_profile.json");
        auto status = appended.ok()
                          ? obs::WriteTextFile(builder.Render(), path)
                          : appended;
        std::printf("\ntrace-out: %s\n",
                    status.ok() ? path.c_str()
                                : status.ToString().c_str());
        if (!status.ok()) return 1;
    }
    return 0;
}

/**
 * Splits a --blackbox-trigger csv into a recorder config. Unknown
 * trigger names are an error (a misspelled trigger silently never
 * dumping would defeat the point of a black box).
 */
bool
ParseBlackboxTriggers(const std::string& csv,
                      obs::FlightRecorderConfig* config)
{
    config->dump_on_fault = false;
    config->dump_on_deadline_drop = false;
    config->dump_on_alert = false;
    for (const std::string& name : SplitString(csv, ',')) {
        if (name == "fault") {
            config->dump_on_fault = true;
        } else if (name == "deadline") {
            config->dump_on_deadline_drop = true;
        } else if (name == "alert") {
            config->dump_on_alert = true;
        } else {
            std::fprintf(stderr,
                         "unknown --blackbox-trigger '%s' (want csv "
                         "of fault|deadline|alert)\n",
                         name.c_str());
            return false;
        }
    }
    return true;
}

/** Device latency vs batch size from a compile+simulate ladder. */
LatencyTable
BuildLatencyTable(const Graph& graph, const ChipConfig& chip,
                  const CompileOptions& opts)
{
    LatencyTable table;
    for (int64_t batch = 1; batch <= 64; batch *= 2) {
        CompileOptions ladder = opts;
        ladder.batch = batch;
        auto ladder_prog = Compile(graph, chip, ladder);
        if (!ladder_prog.ok()) break;
        auto ladder_result = Simulate(ladder_prog.value(), chip);
        if (!ladder_result.ok()) break;
        table.AddPoint(batch, ladder_result.value().latency_s);
    }
    return table;
}

/**
 * serve-cluster: the model's serving contract (the SLO batch from the
 * latency ladder) offered to a multi-cell cluster behind the router —
 * routing policies, cell outage + failover, canary rollout, and the
 * burn-rate autoscaler on one shared clock.
 */
int
CmdServeCluster(const Args& args)
{
    auto graph = ResolveModel(args);
    if (!graph.ok()) {
        std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
        return 1;
    }
    StatusOr<ChipConfig> chip =
        args.Has("chip-file")
            ? LoadChipFile(args.Get("chip-file", ""))
            : ChipByName(args.Get("chip", "TPUv4i"));
    if (!chip.ok()) {
        std::fprintf(stderr, "%s\n", chip.status().ToString().c_str());
        return 1;
    }
    CompileOptions opts;
    if (!ParseCompileOptions(args, &opts)) return 1;
    LatencyTable table =
        BuildLatencyTable(graph.value().graph, chip.value(), opts);
    if (table.empty()) {
        std::fprintf(stderr, "serve-cluster: batch ladder failed\n");
        return 1;
    }

    const double slo_s = graph.value().slo_ms * 1e-3;
    int64_t slo_batch = table.MaxBatchUnderSlo(slo_s);
    if (slo_batch <= 0) slo_batch = 1;
    const int cells = static_cast<int>(args.GetInt("cells", 3));
    const int devices = static_cast<int>(args.GetInt("devices", 1));
    const double load = std::max(0.01, args.GetDouble("load", 0.7));

    TenantConfig tenant;
    tenant.name = graph.value().name;
    tenant.latency_s = [table](int64_t batch) {
        return table.Eval(batch);
    };
    tenant.max_batch = slo_batch;
    tenant.slo_s = slo_s;
    // Cluster-wide offered load against the whole fleet's capacity.
    tenant.arrival_rate = std::max(
        1.0, load * table.ThroughputAt(slo_batch) *
                 std::max(devices, 1) * std::max(cells, 1));
    tenant.deadline_s = args.GetDouble("deadline-ms", 0.0) * 1e-3;
    tenant.max_queue = args.GetInt("max-queue", 0);

    ClusterConfig config;
    config.tenants = {tenant};
    config.num_cells = cells;
    config.devices_per_cell = devices;
    config.duration_s = args.GetDouble("duration", 2.0);
    config.seed = static_cast<uint64_t>(args.GetInt("seed", 42));
    auto policy =
        ParseRoutingPolicy(args.Get("policy", "least-loaded"));
    if (!policy.ok()) {
        std::fprintf(stderr, "%s\n",
                     policy.status().ToString().c_str());
        return 1;
    }
    config.policy = policy.value();
    config.max_route_attempts =
        static_cast<int>(args.GetInt("route-attempts", 2));
    config.health_check_interval_s =
        args.GetDouble("health-interval", 0.0);
    config.standby_cells =
        static_cast<int>(args.GetInt("standby", 0));
    config.target_availability =
        args.GetDouble("target-availability", 0.0);
    if (args.Has("canary-scale")) {
        config.canary.enabled = true;
        config.canary.latency_scale =
            args.GetDouble("canary-scale", 1.0);
        config.canary.start_s = args.GetDouble("canary-start", 0.5);
        config.canary.soak_s = args.GetDouble("canary-soak", 0.5);
    }
    if (args.Has("autoscale")) {
        config.autoscaler.enabled = true;
        config.autoscaler.interval_s =
            args.GetDouble("scale-interval", 0.25);
        config.autoscaler.upscale_burn =
            args.GetDouble("burn-up", 1.0);
        config.autoscaler.downscale_burn =
            args.GetDouble("burn-down", 0.25);
        config.autoscaler.min_cells =
            static_cast<int>(args.GetInt("min-cells", 1));
    }
    // Scripted whole-cell outage for failover drills.
    double down_fraction = 0.0;
    if (args.Has("fail-cell")) {
        const int victim =
            static_cast<int>(args.GetInt("fail-cell", 0));
        if (victim < 0 || victim >= cells + config.standby_cells) {
            std::fprintf(stderr, "--fail-cell out of range\n");
            return 1;
        }
        const double fail_at = args.GetDouble("fail-at", 0.5);
        const double repair_at = args.GetDouble("repair-at", -1.0);
        config.cell_faults.resize(
            static_cast<size_t>(cells + config.standby_cells));
        config.cell_faults[static_cast<size_t>(victim)] =
            CellOutagePlan(devices, fail_at, repair_at);
        const double down_until =
            repair_at < 0.0
                ? config.duration_s
                : std::min(repair_at, config.duration_s);
        if (config.duration_s > 0.0) {
            down_fraction =
                std::max(0.0, down_until - fail_at) /
                config.duration_s;
        }
    }

    obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
    obs::TraceBuilder builder;
    obs::SpanCollector span_collector;
    span_collector.BindRegistry(&reg);
    obs::AlertEngine alerts;
    alerts.BindRegistry(&reg);
    alerts.BindTrace(&builder, 2);
    if (args.Has("alerts")) {
        auto text = obs::ReadTextFile(args.Get("alerts", ""));
        auto loaded = text.ok()
                          ? alerts.AddRulesFromText(text.value())
                          : text.status();
        if (!loaded.ok()) {
            std::fprintf(stderr, "alerts: %s\n",
                         loaded.ToString().c_str());
            return 1;
        }
    }
    config.registry = &reg;
    config.trace = &builder;
    config.spans = &span_collector;
    if (alerts.rule_count() > 0) config.alerts = &alerts;

    // Windowed series + SLO budgets are always on for serving paths
    // (stable obs.ts.* / slo.* export shape); with rules loaded the
    // collector routes alert evaluation through window closes, so
    // `for X` hysteresis means X seconds of consecutive windows.
    obs::TimeSeriesOptions ts_options;
    ts_options.window_s =
        std::max(1e-4, args.GetDouble("window", 0.05));
    obs::TimeSeriesCollector collector(ts_options);
    collector.BindRegistry(&reg);
    if (alerts.rule_count() > 0) collector.BindAlerts(&alerts);
    obs::SloTracker slo_tracker;
    slo_tracker.BindRegistry(&reg);
    if (!LoadSloObjectives(args, config.tenants,
                           config.slo_error_budget, config.duration_s,
                           ts_options.window_s, &slo_tracker)) {
        return 1;
    }
    // Cost model: compile the SLO batch once for the modeled power
    // and per-component attribution, and amortize the chip's TCO over
    // its service life — this is what prices slo.energy_per_request_j
    // and slo.cost_per_request_usd.
    opts.batch = slo_batch;
    auto prog = Compile(graph.value().graph, chip.value(), opts);
    if (prog.ok()) {
        std::vector<ScheduleEntry> schedule;
        auto sim = SimulateWithSchedule(prog.value(), chip.value(),
                                        &schedule);
        if (sim.ok()) {
            auto counters = CollectPerfCounters(
                prog.value(), chip.value(), schedule, 0.0);
            if (counters.ok()) {
                config.batch_attribution =
                    AttributionFromCounters(counters.value());
            }
            auto power = EstimatePower(prog.value(), sim.value(),
                                       chip.value());
            auto tco = ComputeTco(chip.value(), TcoParams{});
            if (power.ok() && tco.ok()) {
                slo_tracker.SetCostModel(BuildSloCostModel(
                    power.value(), tco.value(), TcoParams{},
                    config.batch_attribution));
            }
        }
    }
    config.timeseries = &collector;
    config.slo = &slo_tracker;

    auto result_or = RunCluster(config);
    if (!result_or.ok()) {
        std::fprintf(stderr, "serve-cluster: %s\n",
                     result_or.status().ToString().c_str());
        return 1;
    }
    const ClusterResult& r = result_or.value();
    // Freeze budgets, close the trailing window (which also runs the
    // final routed alert evaluation), and enforce conservation before
    // reporting anything.
    slo_tracker.Finish(r.duration_s);
    collector.Finish(r.duration_s);
    auto conserved = collector.CheckConservation();
    if (!conserved.ok()) {
        std::fprintf(stderr, "serve-cluster: %s\n",
                     conserved.ToString().c_str());
        return 2;
    }
    std::printf("cluster: %d cell%s x %d device%s | policy %s | "
                "%.1f s | SLO batch %lld | %.0f rps offered\n",
                cells, cells == 1 ? "" : "s", devices,
                devices == 1 ? "" : "s",
                RoutingPolicyName(config.policy), config.duration_s,
                static_cast<long long>(slo_batch),
                tenant.arrival_rate);
    const ClusterTenantStats& ts = r.tenants[0];
    std::printf("requests: %lld arrived, %lld completed, %lld "
                "dropped, %lld shed (%lld at the router) | %lld "
                "failovers\n",
                static_cast<long long>(r.arrived),
                static_cast<long long>(r.completed),
                static_cast<long long>(r.dropped),
                static_cast<long long>(r.shed),
                static_cast<long long>(r.router_shed),
                static_cast<long long>(r.failovers));
    std::printf("latency: p50 %.2f ms p95 %.2f ms p99 %.2f ms | "
                "goodput %.0f rps | slo-miss %.4f\n",
                ts.p50_latency_s * 1e3, ts.p95_latency_s * 1e3,
                ts.p99_latency_s * 1e3, ts.goodput_rps,
                ts.slo_miss_fraction);
    std::printf("availability: %.4f | active cells %d -> peak %d "
                "(%d planned spare%s)\n",
                r.availability, r.initial_active_cells,
                r.peak_active_cells, r.planned_spares,
                r.planned_spares == 1 ? "" : "s");
    std::printf("windows: %lld x %.3g s (%zu series)\n%s",
                static_cast<long long>(collector.windows_closed()),
                collector.window_s(), collector.series().size(),
                slo_tracker.Summary().c_str());
    if (config.canary.enabled) {
        std::printf("rollout: %zu step%s | %s\n", r.rollout.size(),
                    r.rollout.size() == 1 ? "" : "s",
                    r.rollout_aborted
                        ? "ABORTED"
                        : (r.rollout_complete ? "complete"
                                              : "incomplete"));
        for (const RolloutStep& step : r.rollout) {
            std::printf(
                "  cell %d: drain %.2fs swap %.2fs verdict %.2fs "
                "p95 %.2f/%.2f ms -> %s\n",
                step.cell, step.drain_start_s, step.swap_s,
                step.verdict_s, step.canary_p95_s * 1e3,
                step.baseline_p95_s * 1e3,
                step.aborted ? "abort" : "promote");
        }
    }
    if (config.autoscaler.enabled) {
        std::printf("autoscaler: %lld up, %lld down\n",
                    static_cast<long long>(r.upscales),
                    static_cast<long long>(r.downscales));
    }
    // Conservation is the cluster's bedrock invariant; refuse to
    // report numbers that do not add up.
    if (r.arrived != r.completed + r.dropped + r.shed) {
        std::fprintf(stderr,
                     "serve-cluster: conservation violated "
                     "(%lld != %lld + %lld + %lld)\n",
                     static_cast<long long>(r.arrived),
                     static_cast<long long>(r.completed),
                     static_cast<long long>(r.dropped),
                     static_cast<long long>(r.shed));
        return 2;
    }
    if (args.Has("fail-cell") && down_fraction > 0.0) {
        const double floor = PredictedAvailabilityFloor(
            cells - 1, cells, 1.0 - down_fraction);
        std::printf("outage drill: cell down %.0f%% of run | "
                    "predicted floor %.4f | measured %.4f\n",
                    100.0 * down_fraction, floor, r.availability);
        if (args.Has("require-floor") && r.availability <= floor) {
            std::fprintf(stderr,
                         "serve-cluster: availability %.4f fell to "
                         "the N+k floor %.4f\n",
                         r.availability, floor);
            return 2;
        }
    }

    if (!span_collector.spans().empty()) {
        auto integrity = span_collector.CheckIntegrity();
        if (!integrity.ok()) {
            std::fprintf(stderr, "span integrity: %s\n",
                         integrity.ToString().c_str());
            return 1;
        }
        std::printf("spans: %zu recorded (%zu traces), %zu open\n",
                    span_collector.spans().size(),
                    span_collector.Roots().size(),
                    span_collector.open_count());
    }
    if (args.Has("spans-out")) {
        const std::string path = args.Get("spans-out", "spans.jsonl");
        auto status =
            obs::WriteTextFile(span_collector.ToJsonl(), path);
        std::printf("spans-out: %s\n",
                    status.ok() ? path.c_str()
                                : status.ToString().c_str());
        if (!status.ok()) return 1;
    }
    // Tail forensics post-conservation; instruments appear only now.
    const obs::ForensicsResult forensics = RunForensicsPass(
        span_collector, config.seed, r.duration_s,
        alerts.rule_count() > 0 ? &alerts : nullptr, &reg, &reg);
    if (!span_collector.spans().empty()) {
        PrintForensicsSummary(forensics);
    }
    if (alerts.rule_count() > 0) {
        std::printf("alerts (%lld evaluations):\n%s",
                    static_cast<long long>(alerts.evaluations()),
                    alerts.Summary().c_str());
        if (args.Has("check-alerts") && alerts.AnyFiring()) {
            std::fprintf(stderr,
                         "serve-cluster: %zu alert rule(s) firing\n",
                         alerts.firing_count());
            return 2;
        }
    }
    if (args.Has("metrics-json")) {
        const std::string path =
            args.Get("metrics-json", "metrics.json");
        auto status = obs::WriteMetricsJson(reg, path);
        std::printf("metrics-json: %s\n",
                    status.ok() ? path.c_str()
                                : status.ToString().c_str());
        if (!status.ok()) return 1;
    }
    if (args.Has("trace-out")) {
        auto appended = span_collector.AppendToTrace(&builder, 3);
        if (!appended.ok()) {
            std::fprintf(stderr, "span tracks: %s\n",
                         appended.ToString().c_str());
        }
        const std::string path =
            args.Get("trace-out", "cluster_trace.json");
        auto status = obs::WriteTextFile(builder.Render(), path);
        std::printf("trace-out: %s (%lld events)\n",
                    status.ok() ? path.c_str()
                                : status.ToString().c_str(),
                    static_cast<long long>(builder.event_count()));
        if (!status.ok()) return 1;
    }
    if (!WriteReportArtifact(
            args, "serve-cluster", graph.value().name,
            chip.value().name, r.duration_s,
            static_cast<int64_t>(config.seed), reg, &collector,
            &slo_tracker,
            alerts.rule_count() > 0 ? &alerts : nullptr,
            &forensics)) {
        return 1;
    }
    return 0;
}

int
CmdRun(const Args& args, bool check_mode)
{
    auto graph = ResolveModel(args);
    if (!graph.ok()) {
        std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
        return 1;
    }
    StatusOr<ChipConfig> chip =
        args.Has("chip-file")
            ? LoadChipFile(args.Get("chip-file", ""))
            : ChipByName(args.Get("chip", "TPUv4i"));
    if (!chip.ok()) {
        std::fprintf(stderr, "%s\n", chip.status().ToString().c_str());
        return 1;
    }

    CompileOptions opts;
    if (!ParseCompileOptions(args, &opts)) return 1;

    auto prog = Compile(graph.value().graph, chip.value(), opts);
    if (!prog.ok()) {
        std::fprintf(stderr, "compile: %s\n",
                     prog.status().ToString().c_str());
        return 1;
    }
    std::printf("%s\n", prog.value().Summary().c_str());

    std::vector<ScheduleEntry> schedule;
    auto result =
        SimulateWithSchedule(prog.value(), chip.value(), &schedule);
    if (!result.ok()) {
        std::fprintf(stderr, "simulate: %s\n",
                     result.status().ToString().c_str());
        return 1;
    }
    std::printf("\n%s", result.value().Summary().c_str());

    if (args.Has("power")) {
        auto power =
            EstimatePower(prog.value(), result.value(), chip.value());
        if (power.ok()) {
            const auto& p = power.value();
            std::printf("\npower: %.1f W avg | MXU %.1f%% VPU %.1f%% "
                        "SRAM %.1f%% DRAM %.1f%% link %.1f%% static "
                        "%.1f%% | throttle x%.2f\n",
                        p.avg_power_w,
                        100.0 * p.mxu_energy_j / p.total_energy_j,
                        100.0 * p.vpu_energy_j / p.total_energy_j,
                        100.0 * p.sram_energy_j / p.total_energy_j,
                        100.0 * p.dram_energy_j / p.total_energy_j,
                        100.0 * p.link_energy_j / p.total_energy_j,
                        100.0 * p.static_energy_j / p.total_energy_j,
                        p.throttle);
        }
    }
    if (args.Has("profile")) {
        auto profiles = ProfileByLayer(prog.value(), schedule);
        if (profiles.ok()) {
            std::printf("\n%s",
                        RenderProfile(profiles.value()).c_str());
        }
    }
    if (args.Has("stats")) {
        std::printf("\n%s", result.value().DumpStats().c_str());
    }
    if (args.Has("trace")) {
        const std::string path = args.Get("trace", "trace.json");
        auto status =
            WriteChromeTrace(prog.value(), schedule, path);
        std::printf("\ntrace: %s\n",
                    status.ok() ? path.c_str()
                                : status.ToString().c_str());
    }

    const bool serving_requested =
        args.Has("devices") || args.Has("deadline-ms") ||
        args.Has("max-queue") || args.Has("fault-mtbf") ||
        args.Has("fault-mttr") || args.Has("fault-p") ||
        args.Has("fault-seed") || args.Has("fail-at") ||
        args.Has("repair-at") || args.Has("hedge") ||
        args.Has("spans-out") || args.Has("blackbox-out") ||
        args.Has("alerts") || args.Has("load") ||
        args.Has("report-out") || args.Has("window") ||
        args.Has("slo-file") || check_mode;
    if (args.Has("metrics-json") || args.Has("trace-out") ||
        serving_requested) {
        obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
        RecordSimMetrics(result.value(), &reg);

        obs::TraceBuilder builder;
        auto appended =
            AppendScheduleTrace(prog.value(), schedule, &builder, 1);
        if (!appended.ok()) {
            std::fprintf(stderr, "trace-out: %s\n",
                         appended.ToString().c_str());
        }

        // Modeled performance counters: aggregate registers plus the
        // sampled time series land in the registry, the busy%/flit
        // curves on the trace, and the engine-group shares feed the
        // serving sim's per-batch attribution below.
        std::vector<AttributionShare> attribution;
        auto counters = CollectPerfCounters(
            prog.value(), chip.value(), schedule,
            args.GetDouble("sample-us", 0.0) * 1e-6);
        if (counters.ok()) {
            RecordCounterMetrics(counters.value(), &reg);
            auto tracks =
                AppendCounterTracks(counters.value(), &builder, 1);
            if (!tracks.ok()) {
                std::fprintf(stderr, "counter tracks: %s\n",
                             tracks.ToString().c_str());
            }
            attribution = AttributionFromCounters(counters.value());
        } else {
            std::fprintf(stderr, "counters: %s\n",
                         counters.status().ToString().c_str());
        }

        // Observability sinks: request spans, the always-on flight
        // recorder (with the log bridge installed for the serving
        // phase), and the alert engine. All three bind the registry
        // eagerly so `obs.span.*` / `obs.alert.*` appear in every
        // --metrics-json snapshot.
        obs::SpanCollector span_collector;
        span_collector.BindRegistry(&reg);
        obs::FlightRecorderConfig recorder_config;
        recorder_config.capacity = static_cast<size_t>(std::max(
            int64_t{16}, args.GetInt("blackbox-capacity", 4096)));
        recorder_config.dump_path = args.Get("blackbox-out", "");
        if (args.Has("blackbox-trigger") &&
            !ParseBlackboxTriggers(args.Get("blackbox-trigger", ""),
                                   &recorder_config)) {
            return 1;
        }
        obs::FlightRecorder recorder(recorder_config);
        recorder.InstallLogSink();
        recorder.BindRegistry(&reg);
        recorder.BindSpans(&span_collector);
        // Black-box dumps carry a read-only forensics snapshot: the
        // kept-trace id set and exemplar refs as of the incident.
        recorder.SetForensicsProvider([&span_collector, &reg]() {
            obs::TailSamplerOptions sampler_options;
            sampler_options.seed = 42;  // the serving phase's seed
            obs::TailSampler sampler(sampler_options);
            return obs::ForensicsJson(obs::BuildForensics(
                span_collector, sampler, &reg, nullptr));
        });
        obs::AlertEngine alerts;
        alerts.BindRegistry(&reg);
        alerts.BindTrace(&builder, 2);
        alerts.BindRecorder(&recorder);
        if (check_mode && !args.Has("alerts")) {
            std::fprintf(stderr,
                         "check: --alerts RULES_FILE is required\n");
            return 1;
        }
        if (args.Has("alerts")) {
            auto text = obs::ReadTextFile(args.Get("alerts", ""));
            auto loaded = text.ok()
                              ? alerts.AddRulesFromText(text.value())
                              : text.status();
            if (!loaded.ok()) {
                std::fprintf(stderr, "alerts: %s\n",
                             loaded.ToString().c_str());
                return 1;
            }
        }

        // Windowed series + SLO budgets are always on for serving
        // paths (stable obs.ts.* / slo.* export shape); with rules
        // loaded the collector routes alert evaluation through window
        // closes, so `for X` means X seconds of consecutive windows.
        obs::TimeSeriesOptions ts_options;
        ts_options.window_s =
            std::max(1e-4, args.GetDouble("window", 0.05));
        obs::TimeSeriesCollector collector(ts_options);
        collector.BindRegistry(&reg);
        if (alerts.rule_count() > 0) collector.BindAlerts(&alerts);
        obs::SloTracker slo_tracker;
        slo_tracker.BindRegistry(&reg);
        double serving_end_s = 0.0;

        // Short serving run so the snapshot carries per-tenant
        // latency percentiles and SLO misses, not just device
        // utilization: profile a batch ladder, pick the largest batch
        // under the SLO, and offer --load (default 70%) of that
        // capacity.
        LatencyTable table = BuildLatencyTable(
            graph.value().graph, chip.value(), opts);
        if (!table.empty()) {
            const double slo_s = graph.value().slo_ms * 1e-3;
            int64_t slo_batch = table.MaxBatchUnderSlo(slo_s);
            if (slo_batch <= 0) slo_batch = 1;
            TenantConfig tenant;
            tenant.name = graph.value().name;
            tenant.latency_s = [table](int64_t batch) {
                return table.Eval(batch);
            };
            tenant.max_batch = slo_batch;
            tenant.slo_s = slo_s;
            const int num_devices =
                static_cast<int>(args.GetInt("devices", 1));
            const double load =
                std::max(0.01, args.GetDouble("load", 0.7));
            tenant.arrival_rate =
                std::max(1.0, load * table.ThroughputAt(slo_batch) *
                                  std::max(num_devices, 1));
            tenant.deadline_s =
                args.GetDouble("deadline-ms", 0.0) * 1e-3;
            tenant.max_queue = args.GetInt("max-queue", 0);

            ReliabilityConfig reliability;
            reliability.faults.mtbf_s =
                args.GetDouble("fault-mtbf", 0.0);
            reliability.faults.mttr_s =
                args.GetDouble("fault-mttr", 0.0);
            reliability.faults.transient_failure_prob =
                args.GetDouble("fault-p", 0.0);
            if (args.Has("fault-seed")) {
                reliability.faults.seed = static_cast<uint64_t>(
                    args.GetInt("fault-seed", 0));
            }
            if (args.Has("fail-at")) {
                ScriptedFault fault;
                fault.device = 0;
                fault.fail_at_s = args.GetDouble("fail-at", 0.0);
                fault.repair_at_s =
                    args.GetDouble("repair-at", -1.0);
                reliability.faults.scripted.push_back(fault);
            }
            reliability.hedge = args.Has("hedge");

            ServingTelemetry telemetry;
            telemetry.registry = &reg;
            telemetry.trace = &builder;
            telemetry.trace_pid = 2;
            telemetry.batch_attribution = attribution;
            telemetry.spans = &span_collector;
            telemetry.recorder = &recorder;
            telemetry.alerts = &alerts;
            telemetry.alert_eval_interval_s =
                std::max(1e-4, args.GetDouble("alert-interval", 0.05));
            telemetry.timeseries = &collector;
            telemetry.slo = &slo_tracker;
            if (!LoadSloObjectives(args, {tenant},
                                   telemetry.slo_error_budget, 2.0,
                                   ts_options.window_s,
                                   &slo_tracker)) {
                return 1;
            }
            // Price attributed device time: modeled power x TCO
            // amortization -> slo.energy_per_request_j / _cost gauges.
            {
                auto power = EstimatePower(prog.value(),
                                           result.value(),
                                           chip.value());
                auto tco = ComputeTco(chip.value(), TcoParams{});
                if (power.ok() && tco.ok()) {
                    slo_tracker.SetCostModel(BuildSloCostModel(
                        power.value(), tco.value(), TcoParams{},
                        attribution));
                }
            }
            auto serving = RunServingCell({tenant}, num_devices, 2.0,
                                          42, telemetry, reliability);
            if (serving.ok()) {
                serving_end_s = serving.value().duration_s;
            }
            if (serving.ok() && !serving.value().tenants.empty()) {
                const auto& sr = serving.value();
                const auto& tstats = sr.tenants[0];
                std::printf("\nserving (2 s, %d device%s, SLO batch "
                            "%lld): p50 %.2f ms p95 %.2f ms p99 %.2f "
                            "ms | %lld done, %lld SLO misses\n",
                            num_devices, num_devices == 1 ? "" : "s",
                            static_cast<long long>(slo_batch),
                            tstats.p50_latency_s * 1e3,
                            tstats.p95_latency_s * 1e3,
                            tstats.p99_latency_s * 1e3,
                            static_cast<long long>(tstats.completed),
                            static_cast<long long>(tstats.slo_misses));
                if (reliability.faults.enabled() ||
                    reliability.hedge || tenant.max_queue > 0 ||
                    tenant.deadline_s > 0.0) {
                    std::printf(
                        "reliability: availability %.4f | goodput "
                        "%.0f rps | %lld dropped, %lld shed, %lld "
                        "retries, %lld hedge wins\n",
                        sr.availability, tstats.goodput_rps,
                        static_cast<long long>(tstats.dropped),
                        static_cast<long long>(tstats.shed),
                        static_cast<long long>(tstats.retried),
                        static_cast<long long>(tstats.hedge_wins));
                }
            } else if (!serving.ok()) {
                std::fprintf(stderr, "serving: %s\n",
                             serving.status().ToString().c_str());
                return 1;
            }
        }

        // Freeze budgets, close the trailing window (running the
        // final routed alert evaluation), and enforce conservation —
        // a violation is a collector bug, never noise.
        slo_tracker.Finish(serving_end_s);
        collector.Finish(serving_end_s);
        auto conserved = collector.CheckConservation();
        if (!conserved.ok()) {
            std::fprintf(stderr, "%s: %s\n",
                         check_mode ? "check" : "run",
                         conserved.ToString().c_str());
            return 2;
        }
        std::printf("windows: %lld x %.3g s (%zu series)\n%s",
                    static_cast<long long>(collector.windows_closed()),
                    collector.window_s(), collector.series().size(),
                    slo_tracker.Summary().c_str());

        // Span exports: JSONL for offline analysis, per-trace slice
        // tracks on the enriched Chrome trace. Integrity is checked
        // here so a structural bug surfaces in every telemetry run,
        // not only under the unit tests.
        if (!span_collector.spans().empty()) {
            auto integrity = span_collector.CheckIntegrity();
            if (!integrity.ok()) {
                std::fprintf(stderr, "span integrity: %s\n",
                             integrity.ToString().c_str());
                return 1;
            }
            std::printf("spans: %zu recorded (%zu traces), "
                        "%zu still open\n",
                        span_collector.spans().size(),
                        span_collector.Roots().size(),
                        span_collector.open_count());
            if (args.Has("trace-out")) {
                auto status =
                    span_collector.AppendToTrace(&builder, 3);
                if (!status.ok()) {
                    std::fprintf(stderr, "span tracks: %s\n",
                                 status.ToString().c_str());
                }
            }
        }
        if (args.Has("spans-out")) {
            const std::string path =
                args.Get("spans-out", "spans.jsonl");
            auto status =
                obs::WriteTextFile(span_collector.ToJsonl(), path);
            std::printf("spans-out: %s\n",
                        status.ok() ? path.c_str()
                                    : status.ToString().c_str());
            if (!status.ok()) return 1;
        }
        // Tail forensics after the conservation check: the sampler's
        // obs.sample.* / obs.exemplar.* instruments appear post-run,
        // so windowed collection never sees them mid-flight.
        const obs::ForensicsResult forensics = RunForensicsPass(
            span_collector, 42, serving_end_s,
            alerts.rule_count() > 0 ? &alerts : nullptr, &reg, &reg);
        if (!span_collector.spans().empty()) {
            PrintForensicsSummary(forensics);
        }
        if (recorder.dumped()) {
            std::printf("blackbox: dumped to %s (%s)\n",
                        recorder.config().dump_path.c_str(),
                        recorder.dump_reason().c_str());
        }
        if (alerts.rule_count() > 0) {
            std::printf("\nalerts (%lld evaluations):\n%s",
                        static_cast<long long>(alerts.evaluations()),
                        alerts.Summary().c_str());
        }

        if (args.Has("metrics-json")) {
            const std::string path =
                args.Get("metrics-json", "metrics.json");
            auto status = obs::WriteMetricsJson(reg, path);
            std::printf("metrics-json: %s\n",
                        status.ok() ? path.c_str()
                                    : status.ToString().c_str());
            if (!status.ok()) return 1;
        }
        if (args.Has("trace-out")) {
            const std::string path =
                args.Get("trace-out", "trace_enriched.json");
            auto status = obs::WriteTextFile(builder.Render(), path);
            std::printf("trace-out: %s (%lld events)\n",
                        status.ok() ? path.c_str()
                                    : status.ToString().c_str(),
                        static_cast<long long>(builder.event_count()));
            if (!status.ok()) return 1;
        }
        if (!WriteReportArtifact(
                args, check_mode ? "check" : "run",
                graph.value().name, chip.value().name, serving_end_s,
                42, reg, &collector, &slo_tracker,
                alerts.rule_count() > 0 ? &alerts : nullptr,
                &forensics)) {
            return 1;
        }
        if (check_mode && alerts.AnyFiring()) {
            std::fprintf(stderr,
                         "check: %zu alert rule(s) firing\n",
                         alerts.firing_count());
            return 2;
        }
    }
    return 0;
}

/**
 * check --scenario FILE: run one declarative load scenario
 * (scenarios/*.scn, grammar in src/load/scenario.h) and grade it. Exit
 * 0 iff the fired alert set equals the scenario's `expect` set exactly
 * and request conservation holds; 1 on a failed grade, 2 on errors.
 * --seed and --policy override the scenario file (the chaos-matrix
 * sweep axes); --report-out writes the run artifact.
 */
int
CmdCheckScenario(const Args& args)
{
    auto scenario =
        load::ParseScenarioFile(args.Get("scenario", ""));
    if (!scenario.ok()) {
        std::fprintf(stderr, "scenario: %s\n",
                     scenario.status().ToString().c_str());
        return 2;
    }
    ScenarioRunOptions options;
    // A private registry: two runs of the same scenario + seed give
    // bit-identical report artifacts.
    obs::MetricsRegistry registry;
    options.registry = &registry;
    if (args.Has("seed")) {
        options.override_seed = true;
        options.seed =
            static_cast<uint64_t>(args.GetInt("seed", 42));
    }
    if (args.Has("policy")) {
        options.policy_override = args.Get("policy", "");
    }
    // Our own collector (instead of the runner's internal one) so
    // --spans-out / --blackbox-out can export what the sampler saw.
    obs::SpanCollector span_collector;
    span_collector.BindRegistry(&registry);
    options.spans = &span_collector;
    // `llm` scenarios run the continuous-batching LLM cell; everything
    // else runs the request-serving cluster. Grading and artifact
    // shape are shared.
    const bool is_llm = scenario.value().llm.enabled;
    ScenarioOutcome outcome;
    llm::LlmResult llm_result;
    if (is_llm) {
        auto out_or = llm::RunLlmScenario(scenario.value(), options);
        if (!out_or.ok()) {
            std::fprintf(stderr, "scenario: %s\n",
                         out_or.status().ToString().c_str());
            return 2;
        }
        llm_result = std::move(out_or.value().llm);
        outcome = std::move(out_or.value().outcome);
    } else {
        auto outcome_or = RunScenario(scenario.value(), options);
        if (!outcome_or.ok()) {
            std::fprintf(stderr, "scenario: %s\n",
                         outcome_or.status().ToString().c_str());
            return 2;
        }
        outcome = std::move(outcome_or).ConsumeValue();
    }
    const ClusterResult& r = outcome.cluster;

    std::printf("scenario: %s | policy %s | %.2f s | seed %llu\n",
                scenario.value().name.c_str(),
                outcome.policy.c_str(), r.duration_s,
                static_cast<unsigned long long>(
                    options.override_seed
                        ? options.seed
                        : scenario.value().seed));
    std::printf("requests: %lld arrived (%lld client retries), %lld "
                "completed, %lld dropped, %lld shed (%lld at the "
                "router)\n",
                static_cast<long long>(r.arrived),
                static_cast<long long>(outcome.client_retries),
                static_cast<long long>(r.completed),
                static_cast<long long>(r.dropped),
                static_cast<long long>(r.shed),
                static_cast<long long>(r.router_shed));
    std::printf("availability: %.4f | goodput trough %.0f rps | "
                "conservation %s\n",
                r.availability, outcome.goodput_trough_rps,
                outcome.conservation_ok ? "ok" : "VIOLATED");
    if (is_llm) {
        std::printf(
            "llm: %lld tokens out (%.0f tok/s goodput) | ttft p95 "
            "%.4f s | tpot p99 %.6f s | %lld preemptions (%lld "
            "recomputed tokens) | kv peak %lld tokens\n",
            static_cast<long long>(llm_result.tokens_out),
            llm_result.goodput_tokens_per_s, llm_result.ttft_p95_s,
            llm_result.tpot_p99_s,
            static_cast<long long>(llm_result.preemptions),
            static_cast<long long>(llm_result.recompute_tokens),
            static_cast<long long>(llm_result.kv_peak_tokens));
        if (!llm_result.conservation_ok) {
            std::fprintf(stderr, "llm conservation: %s\n",
                         llm_result.conservation_error.c_str());
        }
    }
    if (outcome.fired.empty()) {
        std::printf("alerts: quiet\n");
    } else {
        std::printf("alerts: first '%s' at %.3f s; firing:",
                    outcome.first_alert.c_str(),
                    outcome.time_to_first_alert_s);
        for (const std::string& name : outcome.fired) {
            std::printf(" %s", name.c_str());
        }
        std::printf("\n");
    }
    for (const std::string& name : outcome.missing) {
        std::fprintf(stderr,
                     "scenario: expected alert '%s' never fired\n",
                     name.c_str());
    }
    for (const std::string& name : outcome.unexpected) {
        std::fprintf(stderr,
                     "scenario: unexpected alert '%s' firing\n",
                     name.c_str());
    }
    PrintForensicsSummary(outcome.forensics);
    if (!scenario.value().expect_dominant.empty()) {
        const std::string& tenant =
            scenario.value().expect_dominant_tenant;
        std::printf("dominant: expected %s%s%s, measured %s -> %s\n",
                    scenario.value().expect_dominant.c_str(),
                    tenant.empty() ? "" : " for tenant ",
                    tenant.c_str(),
                    outcome.dominant_actual.empty()
                        ? "(none)"
                        : outcome.dominant_actual.c_str(),
                    outcome.dominant_pass ? "ok" : "MISMATCH");
        if (!outcome.dominant_pass) {
            // Show every tenant's measured dominant component, not
            // just the graded one — the mismatch is usually a wrong
            // tenant= as often as a wrong component.
            std::fprintf(stderr, "scenario: measured dominants:");
            for (const auto& [dom_tenant, component] :
                 outcome.forensics.critical_path.dominant) {
                std::fprintf(stderr, " %s=%s",
                             dom_tenant.empty() ? "(all)"
                                                : dom_tenant.c_str(),
                             component.c_str());
            }
            std::fprintf(stderr, "\n");
        }
    }
    if (args.Has("spans-out")) {
        const std::string path =
            args.Get("spans-out", "scenario_spans.jsonl");
        auto status =
            obs::WriteTextFile(span_collector.ToJsonl(), path);
        std::printf("spans-out: %s\n",
                    status.ok() ? path.c_str()
                                : status.ToString().c_str());
        if (!status.ok()) return 2;
    }
    if (args.Has("blackbox-out")) {
        obs::FlightRecorderConfig recorder_config;
        recorder_config.capacity = static_cast<size_t>(std::max(
            int64_t{16}, args.GetInt("blackbox-capacity", 4096)));
        recorder_config.dump_path =
            args.Get("blackbox-out", "scenario_blackbox.json");
        obs::FlightRecorder recorder(recorder_config);
        recorder.BindRegistry(&registry);
        recorder.BindSpans(&span_collector);
        recorder.SetForensicsProvider([&outcome]() {
            return obs::ForensicsJson(outcome.forensics);
        });
        auto status = recorder.Trigger("scenario end",
                                       r.duration_s);
        std::printf("blackbox-out: %s\n",
                    status.ok()
                        ? recorder_config.dump_path.c_str()
                        : status.ToString().c_str());
        if (!status.ok()) return 2;
    }
    if (args.Has("report-out")) {
        const std::string path =
            args.Get("report-out", "report.json");
        auto status = obs::WriteRunReport(outcome.report, path);
        std::printf("report-out: %s\n",
                    status.ok() ? path.c_str()
                                : status.ToString().c_str());
        if (!status.ok()) return 2;
    }
    if (!ScenarioPassed(outcome)) {
        std::fprintf(stderr, "scenario: FAILED (%s)\n",
                     !outcome.conservation_ok
                         ? "conservation"
                         : (!outcome.alerts_pass
                                ? "alert contract"
                                : "dominant-component contract"));
        return 1;
    }
    std::printf("scenario: PASS\n");
    return 0;
}

/**
 * serve-llm: autoregressive LLM serving on one Tpu_v4i cell —
 * continuous batching, prefill/decode split, KV-cache residency.
 * Poisson arrivals for one tenant; lengths are lognormal token
 * counts. Exit 0 on a clean run, 1 on a conservation violation,
 * 2 on config errors or (with --alerts) firing alert rules.
 *
 * Options: --model TINYLM|GPT2L --mode continuous|static|disagg
 * --duration S --seed N --rate RPS --prompt-mean N --prompt-sigma F
 * --output-mean N --output-sigma F --max-batch N --max-queue N
 * --kv-cmem-mb F --kv-hbm-mb F --ttft-slo-ms MS --tpot-slo-ms MS
 * --window S --alerts RULES_FILE --metrics-json FILE
 * --spans-out FILE --report-out FILE
 */
int
CmdServeLlm(const Args& args)
{
    auto model = llm::LlmModelByName(args.Get("model", "TINYLM"));
    if (!model.ok()) {
        std::fprintf(stderr, "serve-llm: %s\n",
                     model.status().ToString().c_str());
        return 2;
    }
    auto mode = llm::ParseLlmMode(args.Get("mode", "continuous"));
    if (!mode.ok()) {
        std::fprintf(stderr, "serve-llm: %s\n",
                     mode.status().ToString().c_str());
        return 2;
    }

    llm::LlmCellConfig config;
    config.model = model.value();
    config.chip = Tpu_v4i();
    config.mode = mode.value();
    config.max_batch = args.GetInt("max-batch", 8);
    config.max_queue = args.GetInt("max-queue", 256);
    config.duration_s = args.GetDouble("duration", 1.0);
    config.seed = static_cast<uint64_t>(args.GetInt("seed", 42));
    if (args.Has("kv-cmem-mb")) {
        config.kv_cmem_budget_bytes = static_cast<int64_t>(
            args.GetDouble("kv-cmem-mb", 0.0) * 1024.0 * 1024.0);
    }
    if (args.Has("kv-hbm-mb")) {
        config.kv_hbm_budget_bytes = static_cast<int64_t>(
            args.GetDouble("kv-hbm-mb", 0.0) * 1024.0 * 1024.0);
    }
    llm::LlmTenant tenant;
    tenant.name = args.Get("tenant", "LLM0");
    tenant.rate = args.GetDouble("rate", 20.0);
    tenant.prompt.mean = args.GetDouble("prompt-mean", 256.0);
    tenant.prompt.sigma = args.GetDouble("prompt-sigma", 0.0);
    tenant.prompt.max = args.GetInt("prompt-max", 4096);
    tenant.output.mean = args.GetDouble("output-mean", 32.0);
    tenant.output.sigma = args.GetDouble("output-sigma", 0.0);
    tenant.output.max = args.GetInt("output-max", 1024);
    tenant.ttft_slo_s = args.GetDouble("ttft-slo-ms", 50.0) * 1e-3;
    tenant.tpot_slo_s = args.GetDouble("tpot-slo-ms", 5.0) * 1e-3;
    config.tenants.push_back(tenant);

    obs::MetricsRegistry registry;
    config.registry = &registry;
    obs::SpanCollector span_collector;
    span_collector.BindRegistry(&registry);
    config.spans = &span_collector;
    obs::AlertEngine alerts;
    alerts.BindRegistry(&registry);
    if (args.Has("alerts")) {
        auto text = obs::ReadTextFile(args.Get("alerts", ""));
        auto loaded = text.ok()
                          ? alerts.AddRulesFromText(text.value())
                          : text.status();
        if (!loaded.ok()) {
            std::fprintf(stderr, "serve-llm: %s\n",
                         loaded.ToString().c_str());
            return 2;
        }
    }
    obs::TimeSeriesOptions ts_options;
    ts_options.window_s = args.GetDouble("window", 0.05);
    obs::TimeSeriesCollector collector(ts_options);
    collector.BindRegistry(&registry);
    if (alerts.rule_count() > 0) collector.BindAlerts(&alerts);
    config.timeseries = &collector;

    auto result_or = llm::RunLlmCell(config);
    if (!result_or.ok()) {
        std::fprintf(stderr, "serve-llm: %s\n",
                     result_or.status().ToString().c_str());
        return 2;
    }
    const llm::LlmResult& result = result_or.value();
    collector.Finish(result.duration_s);

    std::printf("serve-llm: %s on TPUv4i | mode %s | %.2f s | "
                "seed %llu\n",
                config.model.name.c_str(),
                llm::LlmModeName(config.mode), result.duration_s,
                static_cast<unsigned long long>(config.seed));
    std::printf("requests: %lld arrived, %lld completed, %lld "
                "dropped, %lld shed | %lld preemptions (%lld "
                "recomputed tokens)\n",
                static_cast<long long>(result.arrived),
                static_cast<long long>(result.completed),
                static_cast<long long>(result.dropped),
                static_cast<long long>(result.shed),
                static_cast<long long>(result.preemptions),
                static_cast<long long>(result.recompute_tokens));
    std::printf("tokens: %lld in, %lld out | goodput %.0f tok/s | "
                "%lld decode iterations\n",
                static_cast<long long>(result.tokens_in),
                static_cast<long long>(result.tokens_out),
                result.goodput_tokens_per_s,
                static_cast<long long>(result.iterations));
    std::printf("kv: peak %lld tokens | min cmem-resident fraction "
                "%.3f\n",
                static_cast<long long>(result.kv_peak_tokens),
                result.kv_cmem_fraction_min);
    for (const llm::LlmTenantStats& t : result.tenants) {
        std::printf("tenant %s: ttft p50/p95/p99 %.4f/%.4f/%.4f s "
                    "(%lld slo misses) | tpot p50/p99 %.6f/%.6f s "
                    "(%lld slo misses)\n",
                    t.name.c_str(), t.ttft_p50_s, t.ttft_p95_s,
                    t.ttft_p99_s,
                    static_cast<long long>(t.ttft_slo_miss),
                    t.tpot_p50_s, t.tpot_p99_s,
                    static_cast<long long>(t.tpot_slo_miss));
    }
    if (alerts.rule_count() > 0) {
        std::printf("alerts (%lld evaluations):\n%s",
                    static_cast<long long>(alerts.evaluations()),
                    alerts.Summary().c_str());
    }

    if (args.Has("metrics-json")) {
        const std::string path =
            args.Get("metrics-json", "llm_metrics.json");
        auto status = obs::WriteMetricsJson(registry, path);
        std::printf("metrics-json: %s\n",
                    status.ok() ? path.c_str()
                                : status.ToString().c_str());
        if (!status.ok()) return 2;
    }
    if (args.Has("spans-out")) {
        const std::string path =
            args.Get("spans-out", "llm_spans.jsonl");
        auto status =
            obs::WriteTextFile(span_collector.ToJsonl(), path);
        std::printf("spans-out: %s\n",
                    status.ok() ? path.c_str()
                                : status.ToString().c_str());
        if (!status.ok()) return 2;
    }
    if (!WriteReportArtifact(
            args, "serve-llm", config.model.name, "TPUv4i",
            result.duration_s, static_cast<int64_t>(config.seed),
            registry, &collector, nullptr,
            alerts.rule_count() > 0 ? &alerts : nullptr)) {
        return 2;
    }
    if (!result.conservation_ok) {
        std::fprintf(stderr, "serve-llm: conservation VIOLATED: %s\n",
                     result.conservation_error.c_str());
        return 1;
    }
    if (alerts.AnyFiring()) {
        std::fprintf(stderr, "serve-llm: %zu alert rule(s) firing\n",
                     alerts.firing_count());
        return 2;
    }
    std::printf("serve-llm: conservation ok\n");
    return 0;
}

/**
 * explain: tail-latency forensics over a run. Inline (--scenario)
 * runs the scenario and explains its kept traces; offline (--spans)
 * reloads a --spans-out JSONL (optionally joined with its
 * report.json) and re-derives the same verdicts — the sampler is a
 * pure function of (spans, seed, alert windows). Exit 0 when the
 * forensic invariants hold, 1 when a kept path fails the tiling bar
 * or an exemplar does not resolve to a kept trace, 2 on usage/IO.
 */
int
CmdExplain(const Args& args)
{
    const int64_t top = args.GetInt("top", 5);

    if (args.Has("spans")) {
        auto text = obs::ReadTextFile(args.Get("spans", ""));
        if (!text.ok()) {
            std::fprintf(stderr, "explain: %s\n",
                         text.status().ToString().c_str());
            return 2;
        }
        auto collector_or =
            obs::SpanCollectorFromJsonl(text.value());
        if (!collector_or.ok()) {
            std::fprintf(stderr, "explain: %s\n",
                         collector_or.status().ToString().c_str());
            return 2;
        }
        const obs::SpanCollector& spans = collector_or.value();

        obs::RunReport report;
        bool have_report = false;
        if (args.Has("report")) {
            auto report_or =
                obs::ReadRunReport(args.Get("report", ""));
            if (!report_or.ok()) {
                std::fprintf(stderr, "explain: %s\n",
                             report_or.status().ToString().c_str());
                return 2;
            }
            report = std::move(report_or).ConsumeValue();
            have_report = true;
        }

        obs::TailSamplerOptions sampler_options;
        sampler_options.seed =
            args.Has("seed")
                ? static_cast<uint64_t>(args.GetInt("seed", 42))
                : (have_report
                       ? static_cast<uint64_t>(report.meta.seed)
                       : 42);
        obs::TailSampler sampler(sampler_options);
        if (have_report) {
            for (const obs::ReportAlert& alert : report.alerts) {
                if (alert.fire_count > 0) {
                    sampler.AddAlertWindow(alert.fired_at_s,
                                           report.meta.duration_s);
                }
            }
        }
        sampler.Classify(spans);
        // The artifact's exemplars must resolve against this span
        // set; each resolvable one is force-kept exactly as the
        // original run's exemplar join did.
        int64_t unresolved = 0;
        if (have_report) {
            for (const obs::ReportExemplar& e : report.exemplars) {
                if (!sampler.ForceKeep(e.trace_id,
                                       obs::KeepReason::kExemplar)) {
                    std::fprintf(
                        stderr,
                        "explain: exemplar %s[%d] references "
                        "unknown trace %llu\n",
                        e.metric.c_str(), e.bucket,
                        static_cast<unsigned long long>(e.trace_id));
                    ++unresolved;
                }
            }
        }
        obs::ForensicsResult forensics =
            obs::BuildForensics(spans, sampler, nullptr, nullptr);
        if (have_report) forensics.exemplars = report.exemplars;
        PrintForensicsSummary(forensics);
        const int64_t untiled = PrintTopTraces(forensics, top);
        if (unresolved > 0 || untiled > 0) {
            std::fprintf(
                stderr,
                "explain: forensic invariants violated (%lld "
                "unresolved exemplars, %lld untiled paths)\n",
                static_cast<long long>(unresolved),
                static_cast<long long>(untiled));
            return 1;
        }
        return 0;
    }

    if (args.Has("scenario")) {
        auto scenario =
            load::ParseScenarioFile(args.Get("scenario", ""));
        if (!scenario.ok()) {
            std::fprintf(stderr, "explain: %s\n",
                         scenario.status().ToString().c_str());
            return 2;
        }
        obs::MetricsRegistry registry;
        obs::SpanCollector span_collector;
        span_collector.BindRegistry(&registry);
        ScenarioRunOptions options;
        options.registry = &registry;
        options.spans = &span_collector;
        if (args.Has("seed")) {
            options.override_seed = true;
            options.seed =
                static_cast<uint64_t>(args.GetInt("seed", 42));
        }
        if (args.Has("policy")) {
            options.policy_override = args.Get("policy", "");
        }
        auto outcome_or = RunScenario(scenario.value(), options);
        if (!outcome_or.ok()) {
            std::fprintf(stderr, "explain: %s\n",
                         outcome_or.status().ToString().c_str());
            return 2;
        }
        const ScenarioOutcome& outcome = outcome_or.value();
        std::printf("explain: scenario %s | policy %s | seed %llu\n",
                    scenario.value().name.c_str(),
                    outcome.policy.c_str(),
                    static_cast<unsigned long long>(
                        options.override_seed
                            ? options.seed
                            : scenario.value().seed));
        PrintForensicsSummary(outcome.forensics);
        const int64_t untiled =
            PrintTopTraces(outcome.forensics, top);
        // Exemplar resolution is guaranteed by construction (the
        // join force-keeps); verified anyway — that is the gate.
        const std::set<uint64_t> kept(
            outcome.forensics.critical_path.kept_trace_ids.begin(),
            outcome.forensics.critical_path.kept_trace_ids.end());
        int64_t unresolved = 0;
        for (const obs::ReportExemplar& e :
             outcome.forensics.exemplars) {
            if (kept.count(e.trace_id) == 0) {
                std::fprintf(
                    stderr,
                    "explain: exemplar %s[%d] -> trace %llu is "
                    "not kept\n",
                    e.metric.c_str(), e.bucket,
                    static_cast<unsigned long long>(e.trace_id));
                ++unresolved;
            }
        }
        if (args.Has("spans-out")) {
            const std::string path =
                args.Get("spans-out", "scenario_spans.jsonl");
            auto status =
                obs::WriteTextFile(span_collector.ToJsonl(), path);
            std::printf("spans-out: %s\n",
                        status.ok() ? path.c_str()
                                    : status.ToString().c_str());
            if (!status.ok()) return 2;
        }
        if (args.Has("report-out")) {
            const std::string path =
                args.Get("report-out", "report.json");
            auto status = obs::WriteRunReport(outcome.report, path);
            std::printf("report-out: %s\n",
                        status.ok() ? path.c_str()
                                    : status.ToString().c_str());
            if (!status.ok()) return 2;
        }
        if (unresolved > 0 || untiled > 0) {
            std::fprintf(
                stderr,
                "explain: forensic invariants violated (%lld "
                "unresolved exemplars, %lld untiled paths)\n",
                static_cast<long long>(unresolved),
                static_cast<long long>(untiled));
            return 1;
        }
        return 0;
    }

    std::fprintf(stderr,
                 "usage: explain --scenario FILE [--seed N] "
                 "[--policy NAME] [--top K] [--report-out FILE] "
                 "[--spans-out FILE] | explain --spans FILE "
                 "[--report FILE] [--seed N] [--top K]\n");
    return 2;
}

}  // namespace

int
main(int argc, char** argv)
{
    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: %s list | run --app NAME [options] | "
                     "profile --app NAME [options] | "
                     "check --app NAME --alerts RULES [options] | "
                     "serve-cluster --app NAME [options] | "
                     "serve-llm [options] | "
                     "explain --scenario FILE | "
                     "explain --spans FILE [--report FILE] | "
                     "report FILE [--format markdown|csv] | "
                     "diff BASE CURRENT [--rel R] [--abs A]\n"
                     "see the file header for all options\n",
                     argv[0]);
        return 1;
    }
    const std::string cmd = argv[1];
    // report/diff take leading positional file arguments before flags.
    std::vector<std::string> positional;
    int flag_start = 2;
    if (cmd == "report" || cmd == "diff") {
        while (flag_start < argc &&
               std::strncmp(argv[flag_start], "--", 2) != 0) {
            positional.emplace_back(argv[flag_start]);
            ++flag_start;
        }
    }
    Args args(argc - flag_start, argv + flag_start);
    if (cmd == "report") {
        if (positional.size() != 1) {
            std::fprintf(stderr,
                         "usage: %s report FILE [--format "
                         "markdown|csv] [--out FILE]\n",
                         argv[0]);
            return 2;
        }
        return CmdReport(positional[0], args);
    }
    if (cmd == "diff") {
        if (positional.size() != 2) {
            std::fprintf(stderr,
                         "usage: %s diff BASE CURRENT [--rel R] "
                         "[--abs A] [--tol \"prefix=rel[:abs],...\"] "
                         "[--ignore \"prefix,...\"]\n",
                         argv[0]);
            return 2;
        }
        return CmdDiff(positional[0], positional[1], args);
    }
    if (cmd == "list") return CmdList();
    if (cmd == "run") return CmdRun(args, /*check_mode=*/false);
    if (cmd == "check") {
        return args.Has("scenario")
                   ? CmdCheckScenario(args)
                   : CmdRun(args, /*check_mode=*/true);
    }
    if (cmd == "exec") return CmdExec(args);
    if (cmd == "explain") return CmdExplain(args);
    if (cmd == "profile") return CmdProfile(args);
    if (cmd == "serve-cluster") return CmdServeCluster(args);
    if (cmd == "serve-llm") return CmdServeLlm(args);
    std::fprintf(stderr, "unknown command '%s'\n", cmd.c_str());
    return 1;
}
