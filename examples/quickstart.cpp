/**
 * @file
 * Quickstart: compile one production app for TPUv4i, simulate it, and
 * print the latency/utilization/power picture the library is built
 * around.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart [app-name] [batch]
 */
#include <cstdio>
#include <cstdlib>

#include "src/tpu4sim.h"

int
main(int argc, char** argv)
{
    const std::string app_name = argc > 1 ? argv[1] : "BERT0";
    const int64_t batch = argc > 2 ? std::atoll(argv[2]) : 16;

    // 1. Pick a production app from the zoo.
    auto app = t4i::BuildApp(app_name);
    if (!app.ok()) {
        std::fprintf(stderr, "%s\n", app.status().ToString().c_str());
        std::fprintf(stderr, "apps: MLP0 MLP1 CNN0 CNN1 RNN0 RNN1 "
                             "BERT0 BERT1\n");
        return 1;
    }
    std::printf("%s", app.value().graph.ToString().c_str());

    auto cost = app.value().graph.Cost(batch, t4i::DType::kBf16,
                                       t4i::DType::kBf16);
    std::printf("\nmodel: %.2f GFLOPs/batch, weights %s, "
                "%.1f FLOPs/weight-byte\n",
                cost.value().total_flops / 1e9,
                t4i::HumanBytes(static_cast<double>(
                    cost.value().weight_bytes)).c_str(),
                cost.value().ops_per_weight_byte);

    // 2. Compile for TPUv4i.
    const t4i::ChipConfig chip = t4i::Tpu_v4i();
    t4i::CompileOptions opts;
    opts.batch = batch;
    opts.dtype = t4i::DType::kBf16;
    auto program = t4i::Compile(app.value().graph, chip, opts);
    if (!program.ok()) {
        std::fprintf(stderr, "compile: %s\n",
                     program.status().ToString().c_str());
        return 1;
    }
    std::printf("\n%s\n", program.value().Summary().c_str());

    // 3. Simulate.
    auto result = t4i::Simulate(program.value(), chip);
    if (!result.ok()) {
        std::fprintf(stderr, "simulate: %s\n",
                     result.status().ToString().c_str());
        return 1;
    }
    std::printf("\n%s", result.value().Summary().c_str());

    // 4. Power.
    auto power = t4i::EstimatePower(program.value(), result.value(), chip);
    if (power.ok()) {
        std::printf("\npower: %.1f W avg (TDP %.0f W), %.2f mJ/inference, "
                    "throttle x%.2f\n",
                    power.value().avg_power_w, chip.tdp_w,
                    power.value().total_energy_j * 1e3 /
                        static_cast<double>(batch),
                    power.value().throttle);
    }

    // 5. Does it meet the app's SLO?
    const double lat_ms = result.value().latency_s * 1e3;
    std::printf("\nSLO %.1f ms, latency at batch %lld: %.2f ms -> %s\n",
                app.value().slo_ms, static_cast<long long>(batch),
                lat_ms, lat_ms <= app.value().slo_ms ? "MEETS" : "MISSES");
    return 0;
}
