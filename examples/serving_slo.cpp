/**
 * @file
 * Serving under a latency SLO (Lesson 10 in action).
 *
 * Profiles CNN0 on TPUv4i, then drives Poisson traffic at increasing
 * load and reports p50/p99 latency, batch sizes the dynamic batcher
 * forms, and SLO compliance — the curve an SRE would look at to pick
 * the operating point of a serving cell.
 *
 * Usage: serving_slo [app-name] [qps...]
 */
#include <cstdio>
#include <cstdlib>

#include "src/tpu4sim.h"

int
main(int argc, char** argv)
{
    using namespace t4i;
    const std::string app_name = argc > 1 ? argv[1] : "CNN0";

    auto app = BuildApp(app_name);
    if (!app.ok()) {
        std::fprintf(stderr, "%s\n", app.status().ToString().c_str());
        return 1;
    }
    const ChipConfig chip = Tpu_v4i();
    const double slo_s = app.value().slo_ms * 1e-3;

    // 1. Profile device latency over a batch ladder.
    LatencyTable profile;
    for (int64_t b = 1; b <= 256; b *= 2) {
        CompileOptions opts;
        opts.batch = b;
        auto prog = Compile(app.value().graph, chip, opts);
        if (!prog.ok()) break;
        auto r = Simulate(prog.value(), chip).value();
        profile.AddPoint(b, r.latency_s);
    }
    const int64_t slo_batch = profile.MaxBatchUnderSlo(slo_s);
    const double capacity =
        slo_batch > 0 ? profile.ThroughputAt(slo_batch) : 0.0;
    std::printf("%s on %s: SLO %.1f ms -> max batch %lld, capacity "
                "%.0f inf/s\n\n",
                app.value().name.c_str(), chip.name.c_str(),
                app.value().slo_ms, static_cast<long long>(slo_batch),
                capacity);
    if (slo_batch == 0) return 1;

    // 2. Sweep offered load.
    std::vector<double> loads;
    if (argc > 2) {
        for (int i = 2; i < argc; ++i) {
            loads.push_back(std::atof(argv[i]));
        }
    } else {
        for (double frac : {0.1, 0.3, 0.5, 0.7, 0.85, 0.95}) {
            loads.push_back(frac * capacity);
        }
    }

    TablePrinter table({"Offered QPS", "Load %", "p50 ms", "p99 ms",
                        "Mean batch", "SLO miss %", "Device busy %"});
    for (double qps : loads) {
        TenantConfig tenant;
        tenant.name = app.value().name;
        tenant.latency_s = [&profile](int64_t b) {
            return profile.Eval(b);
        };
        tenant.max_batch = slo_batch;
        tenant.slo_s = slo_s;
        tenant.arrival_rate = qps;
        auto result = RunServing({tenant}, 20.0, 7).value();
        const auto& t = result.tenants[0];
        table.AddRow({
            StrFormat("%.0f", qps),
            StrFormat("%.0f", 100.0 * qps / capacity),
            StrFormat("%.2f", t.p50_latency_s * 1e3),
            StrFormat("%.2f", t.p99_latency_s * 1e3),
            StrFormat("%.1f", t.mean_batch),
            StrFormat("%.1f", 100.0 * t.slo_miss_fraction),
            StrFormat("%.0f", 100.0 * result.device_busy_fraction),
        });
    }
    table.Print("Serving " + app.value().name + " under its SLO");
    std::printf("\nNote how the batcher grows batches with load, keeping "
                "throughput scaling\nuntil queueing blows the p99 near "
                "saturation — latency, not batch size,\nis the limit "
                "(Lesson 10).\n");
    return 0;
}
