/**
 * @file
 * Architectural what-if: re-balance TPUv4i's die between MXUs and CMEM.
 *
 * The paper describes choosing 4 MXUs + 128 MiB CMEM under a ~400 mm^2
 * / 175 W envelope. This example sweeps alternative splits (more
 * matrix units vs more on-chip memory) at a constant die budget and
 * scores each variant on the production suite — the kind of study the
 * simulator exists for.
 *
 * Usage: design_space [batch_multiplier]
 */
#include <cstdio>
#include <cstdlib>

#include "src/tpu4sim.h"

namespace {

/** Rough area model: one 128x128 MXU ~ 12 mm^2 and CMEM ~ 0.45 mm^2
 *  per MiB at 7 nm — calibrated so the shipped config (4 MXUs, 128
 *  MiB) fills the budget. */
constexpr double kMxuMm2 = 12.0;
constexpr double kCmemMm2PerMib = 0.45;
constexpr double kBudgetMm2 = 4 * kMxuMm2 + 128 * kCmemMm2PerMib;

}  // namespace

int
main(int argc, char** argv)
{
    using namespace t4i;
    const double batch_mult = argc > 1 ? std::atof(argv[1]) : 1.0;

    TablePrinter table({"MXUs", "CMEM MiB", "Area mm^2",
                        "Geomean speedup", "Worst app", "Best app"});

    struct Variant {
        int mxus;
        int64_t cmem_mib;
    };
    std::vector<Variant> variants;
    for (int mxus : {2, 3, 4, 5, 6}) {
        const double left = kBudgetMm2 - mxus * kMxuMm2;
        if (left < 0) continue;
        variants.push_back(
            {mxus, static_cast<int64_t>(left / kCmemMm2PerMib)});
    }

    // Baseline: the shipped TPUv4i.
    std::vector<double> baseline;
    auto apps = ProductionApps();
    for (const auto& app : apps) {
        CompileOptions opts;
        opts.batch = std::max<int64_t>(
            1, static_cast<int64_t>(
                   static_cast<double>(app.typical_batch) *
                   batch_mult));
        auto prog = Compile(app.graph, Tpu_v4i(), opts).value();
        baseline.push_back(
            Simulate(prog, Tpu_v4i()).value().latency_s);
    }

    for (const auto& v : variants) {
        ChipConfig chip = Tpu_v4i();
        chip.mxu.count = v.mxus;
        chip.cmem_bytes = v.cmem_mib * kMiB;
        std::vector<double> speedups;
        std::string worst;
        std::string best;
        double worst_v = 1e9;
        double best_v = 0.0;
        for (size_t i = 0; i < apps.size(); ++i) {
            CompileOptions opts;
            opts.batch = std::max<int64_t>(
                1, static_cast<int64_t>(
                       static_cast<double>(apps[i].typical_batch) *
                       batch_mult));
            auto prog = Compile(apps[i].graph, chip, opts).value();
            const double lat =
                Simulate(prog, chip).value().latency_s;
            const double speedup = baseline[i] / lat;
            speedups.push_back(speedup);
            if (speedup < worst_v) {
                worst_v = speedup;
                worst = apps[i].name;
            }
            if (speedup > best_v) {
                best_v = speedup;
                best = apps[i].name;
            }
        }
        table.AddRow({
            StrFormat("%d", v.mxus),
            StrFormat("%lld", static_cast<long long>(v.cmem_mib)),
            StrFormat("%.0f", v.mxus * kMxuMm2 +
                                  static_cast<double>(v.cmem_mib) *
                                      kCmemMm2PerMib),
            StrFormat("%.3fx", GeoMean(speedups)),
            StrFormat("%s %.2fx", worst.c_str(), worst_v),
            StrFormat("%s %.2fx", best.c_str(), best_v),
        });
    }
    table.Print("Compute/memory die split at a fixed area budget "
                "(vs shipped TPUv4i)");
    std::printf("\nFewer MXUs clearly starve the suite. Above 4 MXUs "
                "this simulator still shows\ngains because its weight "
                "prefetch hides HBM well at production batches —\nbut "
                "the shipped design also had to fit a 175 W air-cooled "
                "envelope and SRAM\nyield limits that this pure-area "
                "model ignores, and E8/E11 show where the\nCMEM "
                "capacity is actually spent: traffic headroom and "
                "multi-tenant isolation\nrather than single-stream "
                "latency (Lesson 1's trade in miniature).\n");
    return 0;
}
