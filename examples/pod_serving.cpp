/**
 * @file
 * A serving cell under diurnal traffic: N TPUv4i devices behind one
 * batcher, load swinging sinusoidally between trough and peak over a
 * (scaled) day. Shows the provisioning dilemma inside Lesson 3: the
 * cell must be sized for the peak, but the TCO meter runs all day.
 *
 * Usage: pod_serving [devices] [peak_qps]
 */
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "src/tpu4sim.h"

int
main(int argc, char** argv)
{
    using namespace t4i;
    const int devices = argc > 1 ? std::atoi(argv[1]) : 4;
    const ChipConfig chip = Tpu_v4i();
    auto app = BuildApp("BERT0").value();

    // Profile the device.
    LatencyTable table;
    for (int64_t b = 1; b <= 64; b *= 2) {
        CompileOptions opts;
        opts.batch = b;
        auto prog = Compile(app.graph, chip, opts).value();
        table.AddPoint(b, Simulate(prog, chip).value().latency_s);
    }
    const double slo_s = app.slo_ms * 1e-3;
    const int64_t slo_batch = table.MaxBatchUnderSlo(slo_s);
    const double per_device = table.ThroughputAt(slo_batch);
    const double peak_qps =
        argc > 2 ? std::atof(argv[2])
                 : 0.8 * per_device * static_cast<double>(devices);

    std::printf("%d x %s serving %s | per-device capacity %.0f inf/s "
                "@SLO %.0f ms | peak load %.0f inf/s\n\n",
                devices, chip.name.c_str(), app.name.c_str(),
                per_device, app.slo_ms, peak_qps);

    // One simulated "day" compressed into 60 s: load swings between
    // 25% and 100% of peak.
    const double day_s = 60.0;
    TenantConfig tenant;
    tenant.name = app.name;
    tenant.latency_s = [&table](int64_t b) { return table.Eval(b); };
    tenant.max_batch = std::max<int64_t>(slo_batch, 1);
    tenant.slo_s = slo_s;
    tenant.arrival_rate = peak_qps;
    tenant.peak_rate_multiplier = 1.0;
    tenant.rate_multiplier = [day_s](double t) {
        return 0.625 - 0.375 * std::cos(2.0 * M_PI * t / day_s);
    };

    TablePrinter table_out({"Devices", "p50 ms", "p99 ms",
                            "SLO miss %", "Served inf/s",
                            "Mean device busy %",
                            "Provisioned W / served-k-inf/s"});
    for (int n : {devices / 2 > 0 ? devices / 2 : 1, devices,
                  devices * 2}) {
        auto result = RunServingCell({tenant}, n, day_s, 2024).value();
        const auto& t = result.tenants[0];
        table_out.AddRow({
            StrFormat("%d", n),
            StrFormat("%.2f", t.p50_latency_s * 1e3),
            StrFormat("%.2f", t.p99_latency_s * 1e3),
            StrFormat("%.1f", 100.0 * t.slo_miss_fraction),
            StrFormat("%.0f", t.throughput_rps),
            StrFormat("%.0f", 100.0 * result.device_busy_fraction),
            StrFormat("%.1f", static_cast<double>(n) * chip.tdp_w /
                                  (t.throughput_rps / 1e3)),
        });
    }
    table_out.Print("Diurnal day on the cell (load 25%..100% of peak)");
    std::printf("\nUnder-provisioning blows the p99 at the daily peak; "
                "over-provisioning wastes\nwatts per served inference "
                "across the trough. The middle row is the sizing\na "
                "capacity planner actually picks — then pays the TCO "
                "of idle troughs\n(Lesson 3).\n");
    return 0;
}
