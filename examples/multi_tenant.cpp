/**
 * @file
 * Two production models sharing one TPUv4i (Lesson 7).
 *
 * Compares CMEM policies for a CNN1 + BERT0 co-tenancy:
 *   - partitioned: each tenant pins into half the CMEM, switches free;
 *   - swap: each tenant uses the full CMEM but pays to re-stage its
 *     pinned working set (plus a program reload) on every switch.
 *
 * Usage: multi_tenant [qps_cnn] [qps_bert]
 */
#include <cstdio>
#include <cstdlib>

#include "src/tpu4sim.h"

namespace {

struct Tenant {
    t4i::App app;
    t4i::LatencyTable profile;
    int64_t pinned_bytes = 0;
};

Tenant
MakeTenant(const std::string& name, const t4i::ChipConfig& chip,
           int64_t cmem_bytes)
{
    using namespace t4i;
    Tenant t{BuildApp(name).value(), {}, 0};
    for (int64_t b = 1; b <= 64; b *= 2) {
        CompileOptions opts;
        opts.batch = b;
        opts.cmem_override_bytes = cmem_bytes;
        auto prog = Compile(t.app.graph, chip, opts).value();
        auto r = Simulate(prog, chip).value();
        t.profile.AddPoint(b, r.latency_s);
        t.pinned_bytes = prog.memory.weight_bytes_cmem +
                         prog.memory.activation_bytes_cmem;
    }
    return t;
}

}  // namespace

int
main(int argc, char** argv)
{
    using namespace t4i;
    const double qps_cnn = argc > 1 ? std::atof(argv[1]) : 4000.0;
    const double qps_bert = argc > 2 ? std::atof(argv[2]) : 800.0;
    const ChipConfig chip = Tpu_v4i();

    TablePrinter table({"Policy", "Tenant", "p50 ms", "p99 ms",
                        "SLO miss %", "Throughput", "Switch ovh %"});

    for (bool partitioned : {true, false}) {
        const int64_t cmem =
            partitioned ? chip.cmem_bytes / 2 : chip.cmem_bytes;
        Tenant cnn = MakeTenant("CNN1", chip, cmem);
        Tenant bert = MakeTenant("BERT0", chip, cmem);

        auto make_config = [&](Tenant& t, double qps) {
            TenantConfig cfg;
            cfg.name = t.app.name;
            LatencyTable* profile = &t.profile;
            cfg.latency_s = [profile](int64_t b) {
                return profile->Eval(b);
            };
            cfg.slo_s = t.app.slo_ms * 1e-3;
            cfg.max_batch = std::max<int64_t>(
                1, t.profile.MaxBatchUnderSlo(0.5 * cfg.slo_s));
            cfg.arrival_rate = qps;
            cfg.switch_penalty_s =
                partitioned
                    ? 0.0
                    : static_cast<double>(t.pinned_bytes) /
                              chip.dram_bw_Bps + 0.5e-3;
            return cfg;
        };

        auto result = RunServing(
            {make_config(cnn, qps_cnn), make_config(bert, qps_bert)},
            20.0, 11).value();
        for (const auto& t : result.tenants) {
            table.AddRow({
                partitioned ? "partitioned" : "swap",
                t.name,
                StrFormat("%.2f", t.p50_latency_s * 1e3),
                StrFormat("%.2f", t.p99_latency_s * 1e3),
                StrFormat("%.1f", 100.0 * t.slo_miss_fraction),
                StrFormat("%.0f", t.throughput_rps),
                StrFormat("%.1f",
                          100.0 * result.switch_overhead_fraction),
            });
        }
    }
    table.Print("CNN1 + BERT0 sharing one TPUv4i");
    std::printf("\nPartitioning the CMEM costs each tenant a little "
                "standalone speed but makes\ntenant switches free; "
                "swapping burns HBM bandwidth and device time on "
                "every\nswitch and shows up directly in the p99 "
                "(Lesson 7).\n");
    return 0;
}
