/**
 * @file
 * TCO what-if explorer (Lesson 3).
 *
 * Recomputes the perf/CapEx and perf/TCO rankings of the chip catalog
 * under user-supplied economic assumptions, showing how electricity
 * price and service life move the answer.
 *
 * Usage: tco_explorer [usd_per_kwh] [service_years]
 */
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "src/tpu4sim.h"

int
main(int argc, char** argv)
{
    using namespace t4i;
    TcoParams params;
    if (argc > 1) params.electricity_usd_per_kwh = std::atof(argv[1]);
    if (argc > 2) params.service_years = std::atof(argv[2]);

    std::printf("Assumptions: $%.3f/kWh, %.1f-year service life, PUE "
                "%.2f air / %.2f liquid\n",
                params.electricity_usd_per_kwh, params.service_years,
                params.pue_air, params.pue_liquid);

    struct Row {
        std::string name;
        double capex;
        double tco;
        double peak;
    };
    std::vector<Row> rows;
    for (const auto& chip : ChipCatalog()) {
        auto tco = ComputeTco(chip, params).value();
        rows.push_back({chip.name, tco.capex_usd, tco.tco_usd,
                        std::max(chip.PeakFlops(DType::kBf16),
                                 chip.PeakFlops(DType::kInt8))});
    }

    TablePrinter table({"Chip", "CapEx $", "TCO $", "OpEx share %",
                        "GFLOPS/$ CapEx", "GFLOPS/$ TCO",
                        "TCO rank", "CapEx rank"});
    auto rank_of = [&rows](const std::string& name, bool by_tco) {
        std::vector<Row> sorted = rows;
        std::sort(sorted.begin(), sorted.end(),
                  [by_tco](const Row& a, const Row& b) {
                      const double ea = a.peak / (by_tco ? a.tco
                                                         : a.capex);
                      const double eb = b.peak / (by_tco ? b.tco
                                                         : b.capex);
                      return ea > eb;
                  });
        for (size_t i = 0; i < sorted.size(); ++i) {
            if (sorted[i].name == name) return static_cast<int>(i + 1);
        }
        return 0;
    };
    for (const auto& r : rows) {
        table.AddRow({
            r.name,
            StrFormat("%.0f", r.capex),
            StrFormat("%.0f", r.tco),
            StrFormat("%.0f", 100.0 * (r.tco - r.capex) / r.tco),
            StrFormat("%.2f", r.peak / 1e9 / r.capex),
            StrFormat("%.2f", r.peak / 1e9 / r.tco),
            StrFormat("#%d", rank_of(r.name, true)),
            StrFormat("#%d", rank_of(r.name, false)),
        });
    }
    table.Print("Chip economics under these assumptions");
    std::printf("\nTry: tco_explorer 0.20 5   (expensive power, long "
                "life) — watch the hot,\nliquid-cooled chips sink in "
                "the TCO ranking while nothing changes in\nCapEx terms "
                "(Lesson 3).\n");
    return 0;
}
