/**
 * @file
 * The ten lessons, each demonstrated with one number from the library.
 * A guided tour of the whole reproduction in ~a minute of runtime:
 * every lesson prints the mechanism it names and the measurement that
 * backs it.
 */
#include <cstdio>

#include "src/arch/tech.h"
#include "src/tpu4sim.h"
#include "src/vliw/isa.h"

namespace {

using namespace t4i;

double
LatencyOf(const Graph& graph, const ChipConfig& chip, int64_t batch,
          DType dtype = DType::kBf16, int opt = 3,
          int64_t cmem_override = -1)
{
    CompileOptions opts;
    opts.batch = batch;
    opts.dtype = dtype;
    opts.opt_level = opt;
    opts.cmem_override_bytes = cmem_override;
    auto prog = Compile(graph, chip, opts);
    T4I_CHECK(prog.ok(), prog.status().ToString().c_str());
    auto result = Simulate(prog.value(), chip);
    T4I_CHECK(result.ok(), result.status().ToString().c_str());
    return result.value().latency_s;
}

}  // namespace

int
main()
{
    std::printf("Ten Lessons From Three Generations Shaped Google's "
                "TPUv4i\n— each lesson, one measurement from tpu4sim —"
                "\n\n");

    // 1. Logic, wires, SRAM & DRAM improve unequally.
    {
        const TechNode n16 = TechNodeOf(16).value();
        const TechNode n7 = TechNodeOf(7).value();
        std::printf(
            "1. Unequal scaling: 16->7 nm multiplied logic density by "
            "%.1fx but SRAM\n   by only %.1fx — die area went to "
            "128 MiB of CMEM, not more MXUs.\n\n",
            n7.logic_density / n16.logic_density,
            n7.sram_density / n16.sram_density);
    }

    // 2. Compiler compatibility trumps binary compatibility.
    {
        auto status = CheckBinaryCompatible(BundleFormatOf("TPUv3"),
                                            BundleFormatOf("TPUv4i"));
        auto app = BuildApp("BERT0").value();
        const double o0 = LatencyOf(app.graph, Tpu_v4i(), 16,
                                    DType::kBf16, 0);
        const double o3 = LatencyOf(app.graph, Tpu_v4i(), 16,
                                    DType::kBf16, 3);
        std::printf("2. Compiler > binary: TPUv3 binaries %s on "
                    "TPUv4i; recompiling BERT0 with\n   the full pass "
                    "pipeline is %.2fx faster than the baseline "
                    "lowering.\n\n",
                    status.ok() ? "run" : "do NOT run", o0 / o3);
    }

    // 3. Design for perf/TCO, not perf/CapEx.
    {
        TcoParams params;
        auto v3 = ComputeTco(Tpu_v3(), params).value();
        auto v4i = ComputeTco(Tpu_v4i(), params).value();
        std::printf("3. TCO, not CapEx: 3 years of power and cooling "
                    "add %.0f%% to TPUv3's price\n   but only %.0f%% "
                    "to air-cooled TPUv4i's.\n\n",
                    100.0 * v3.opex_usd / v3.capex_usd,
                    100.0 * v4i.opex_usd / v4i.capex_usd);
    }

    // 4. Backwards ML compatibility.
    {
        auto app = BuildApp("CNN1").value();
        CompileOptions opts;
        opts.batch = 8;
        opts.dtype = DType::kBf16;
        const bool v1 = Compile(app.graph, Tpu_v1(), opts).ok();
        const bool v4i = Compile(app.graph, Tpu_v4i(), opts).ok();
        std::printf("4. Backwards ML compatibility: the fp32-trained "
                    "model deploys unchanged on\n   TPUv4i (%s) but "
                    "not on int8-only TPUv1 (%s) — no retraining "
                    "detour.\n\n",
                    v4i ? "ok" : "fails", v1 ? "ok" : "fails");
    }

    // 5. Inference DSAs need air cooling.
    {
        ChipConfig hot = Tpu_v4i();
        hot.tdp_w = 65.0;  // what a passively-cooled slot would allow
        auto app = BuildApp("CNN0").value();
        CompileOptions opts;
        opts.batch = 64;
        auto prog = Compile(app.graph, Tpu_v4i(), opts).value();
        auto r = Simulate(prog, Tpu_v4i()).value();
        auto p = EstimatePower(prog, r, hot).value();
        std::printf("5. Air cooling: TPUv4i was sized to 175 W so "
                    "air racks hold it at full speed;\n   squeezed "
                    "into a 65 W envelope the same load would throttle "
                    "to %.0f%% speed,\n   and TPUv3's 450 W took the "
                    "liquid-cooling route instead.\n\n",
                    100.0 * p.throttle);
    }

    // 6. Some inference apps need floating point.
    {
        Rng rng(99);
        std::vector<float> logits(4096);
        for (auto& x : logits) {
            x = static_cast<float>(rng.NextGaussian() *
                                   std::exp(rng.NextGaussian()));
        }
        std::vector<float> bf(logits.size());
        for (size_t i = 0; i < logits.size(); ++i) {
            bf[i] = Bf16Round(logits[i]);
        }
        auto int8 = FakeQuantInt8(logits, QuantScheme::kSymmetric);
        std::printf("6. Floating point matters: on heavy-tailed "
                    "attention logits bf16 keeps %.0f dB\n   SQNR vs "
                    "%.0f dB for int8 — the accuracy cliff that cost "
                    "TPUv1 deployments.\n\n",
                    ComputeError(logits, bf).value().sqnr_db,
                    ComputeError(logits, int8).value().sqnr_db);
    }

    // 7. Production inference needs multi-tenancy.
    {
        auto app = BuildApp("CNN1").value();
        LatencyTable table;
        for (int64_t b = 1; b <= 32; b *= 2) {
            table.AddPoint(b, LatencyOf(app.graph, Tpu_v4i(), b));
        }
        TenantConfig a;
        a.name = "a";
        a.latency_s = [&table](int64_t b) { return table.Eval(b); };
        a.max_batch = 8;
        a.slo_s = 5e-3;
        a.arrival_rate = 2000.0;
        TenantConfig b = a;
        b.name = "b";
        std::vector<TenantConfig> swap = {a, b};
        for (auto& t : swap) t.switch_penalty_s = 0.7e-3;
        auto part = RunServing({a, b}, 5.0, 21).value();
        auto swapped = RunServing(swap, 5.0, 21).value();
        std::printf("7. Multi-tenancy: two co-tenants with partitioned "
                    "CMEM hold p99 at %.1f ms;\n   swapping weights on "
                    "every switch blows it to %.1f ms.\n\n",
                    1e3 * part.tenants[0].p99_latency_s,
                    1e3 * swapped.tenants[0].p99_latency_s);
    }

    // 8. DNNs grow ~1.5x/year.
    {
        double w2017 = 0.0;
        double w2021 = 0.0;
        for (const auto& app : AppsOfYear(2017)) {
            w2017 += static_cast<double>(
                app.graph.Cost(1, DType::kBf16, DType::kBf16)
                    .value().weight_bytes);
        }
        for (const auto& app : AppsOfYear(2021)) {
            w2021 += static_cast<double>(
                app.graph.Cost(1, DType::kBf16, DType::kBf16)
                    .value().weight_bytes);
        }
        std::printf("8. Growth: the production suite's weights grew "
                    "%.1fx from 2017 to 2021 —\n   the headroom the "
                    "4-chip ICI domains exist for.\n\n",
                    w2021 / w2017);
    }

    // 9. Workloads evolve with ML breakthroughs.
    {
        const auto history = FleetMixHistory();
        std::printf("9. Evolution: BERT went from %.0f%% of inference "
                    "cycles in %d to %.0f%% in %d —\n   fixed-function "
                    "hardware built for the 2016 mix strands its "
                    "silicon.\n\n",
                    100.0 * history.front().bert_share,
                    history.front().year,
                    100.0 * history.back().bert_share,
                    history.back().year);
    }

    // 10. The market limits latency, not batch size.
    {
        auto app = BuildApp("BERT0").value();
        LatencyTable table;
        for (int64_t b = 1; b <= 256; b *= 2) {
            table.AddPoint(b, LatencyOf(app.graph, Tpu_v4i(), b));
        }
        const int64_t best =
            table.MaxBatchUnderSlo(app.slo_ms * 1e-3);
        std::printf("10. Latency limits, not batch: BERT0 can batch "
                    "%lld-deep inside its %.0f ms SLO,\n    turning "
                    "%.0f inf/s at batch 1 into %.0f inf/s — batch was "
                    "never the enemy.\n",
                    static_cast<long long>(best), app.slo_ms,
                    table.ThroughputAt(1), table.ThroughputAt(best));
    }
    return 0;
}
