/**
 * @file
 * Cross-generation batch sweep for a BERT workload.
 *
 * For each chip that can run BERT0, sweeps the batch size and reports
 * latency, throughput, MXU utilization and energy per inference — the
 * numbers a capacity planner uses to choose hardware and batch.
 *
 * Usage: bert_batch_sweep [max_batch]
 */
#include <cstdio>
#include <cstdlib>

#include "src/tpu4sim.h"

int
main(int argc, char** argv)
{
    using namespace t4i;
    const int64_t max_batch = argc > 1 ? std::atoll(argv[1]) : 64;

    auto app = BuildApp("BERT0").value();
    TablePrinter table({"Chip", "Batch", "Latency ms", "inf/s",
                        "MXU util %", "mJ/inference", "Meets 15ms SLO"});

    for (const auto& chip : {Tpu_v3(), Tpu_v4i(), GpuT4()}) {
        const DType dtype =
            chip.supports_bf16 ? DType::kBf16 : DType::kInt8;
        for (int64_t batch = 1; batch <= max_batch; batch *= 4) {
            CompileOptions opts;
            opts.batch = batch;
            opts.dtype = dtype;
            auto prog = Compile(app.graph, chip, opts);
            if (!prog.ok()) {
                std::fprintf(stderr, "%s: %s\n", chip.name.c_str(),
                             prog.status().ToString().c_str());
                break;
            }
            auto result = Simulate(prog.value(), chip).value();
            auto power =
                EstimatePower(prog.value(), result, chip).value();
            const double lat_ms = result.latency_s * 1e3;
            table.AddRow({
                chip.name,
                StrFormat("%lld", static_cast<long long>(batch)),
                StrFormat("%.2f", lat_ms),
                StrFormat("%.0f",
                          static_cast<double>(batch) /
                              result.latency_s),
                StrFormat("%.0f", 100.0 * result.mxu_utilization),
                StrFormat("%.2f", power.total_energy_j * 1e3 /
                                      static_cast<double>(batch)),
                lat_ms <= app.slo_ms ? "yes" : "no",
            });
        }
    }
    table.Print("BERT0 batch sweep across chips");
    std::printf("\nLarger batches buy utilization and energy efficiency "
                "everywhere, until the\n%.0f ms SLO cuts the sweep off — "
                "each chip's best operating point is the\nlargest batch "
                "still marked 'yes'.\n",
                app.slo_ms);
    return 0;
}
