/**
 * @file
 * Exports a simulated schedule as enriched Chrome-trace JSON.
 *
 * Usage: dump_trace [app-name] [batch] [output.json]
 * Open the file at chrome://tracing or https://ui.perfetto.dev to see
 * the per-engine timeline (weight prefetch under compute, spill
 * traffic, ICI all-gathers) plus counter tracks (queue depth, HBM and
 * CMEM bandwidth, pinned CMEM) and cross-engine dependency flows.
 */
#include <cstdio>
#include <cstdlib>

#include "src/obs/export.h"
#include "src/sim/trace.h"
#include "src/tpu4sim.h"

int
main(int argc, char** argv)
{
    using namespace t4i;
    const std::string app_name = argc > 1 ? argv[1] : "BERT0";
    const int64_t batch = argc > 2 ? std::atoll(argv[2]) : 16;
    const std::string path =
        argc > 3 ? argv[3] : ("trace_" + app_name + ".json");

    auto app = BuildApp(app_name);
    if (!app.ok()) {
        std::fprintf(stderr, "%s\n", app.status().ToString().c_str());
        return 1;
    }
    const ChipConfig chip = Tpu_v4i();
    CompileOptions opts;
    opts.batch = batch;
    auto prog = Compile(app.value().graph, chip, opts);
    if (!prog.ok()) {
        std::fprintf(stderr, "%s\n", prog.status().ToString().c_str());
        return 1;
    }
    std::vector<ScheduleEntry> schedule;
    auto result = SimulateWithSchedule(prog.value(), chip, &schedule);
    if (!result.ok()) {
        std::fprintf(stderr, "%s\n",
                     result.status().ToString().c_str());
        return 1;
    }
    obs::TraceBuilder builder;
    auto status = AppendScheduleTrace(prog.value(), schedule, &builder);
    if (!status.ok()) {
        std::fprintf(stderr, "%s\n", status.ToString().c_str());
        return 1;
    }
    status = obs::WriteTextFile(builder.Render(), path);
    if (!status.ok()) {
        std::fprintf(stderr, "%s\n", status.ToString().c_str());
        return 1;
    }
    std::printf("wrote %lld events to %s (latency %s)\n",
                static_cast<long long>(builder.event_count()),
                path.c_str(),
                HumanSeconds(result.value().latency_s).c_str());
    std::printf("instruction slices come from the simulator schedule; "
                "counter tracks are derived from it (queue depth from "
                "ready/issue times, HBM/CMEM GB/s from bytes moved, "
                "pinned MiB from the memory plan); flow arrows follow "
                "cross-engine dependencies\n");
    std::printf("open in chrome://tracing or ui.perfetto.dev\n");
    return 0;
}
