/**
 * @file
 * Exports a simulated schedule as Chrome-trace JSON.
 *
 * Usage: dump_trace [app-name] [batch] [output.json]
 * Open the file at chrome://tracing or https://ui.perfetto.dev to see
 * the per-engine timeline (weight prefetch under compute, spill
 * traffic, ICI all-gathers).
 */
#include <cstdio>
#include <cstdlib>

#include "src/sim/trace.h"
#include "src/tpu4sim.h"

int
main(int argc, char** argv)
{
    using namespace t4i;
    const std::string app_name = argc > 1 ? argv[1] : "BERT0";
    const int64_t batch = argc > 2 ? std::atoll(argv[2]) : 16;
    const std::string path =
        argc > 3 ? argv[3] : ("trace_" + app_name + ".json");

    auto app = BuildApp(app_name);
    if (!app.ok()) {
        std::fprintf(stderr, "%s\n", app.status().ToString().c_str());
        return 1;
    }
    const ChipConfig chip = Tpu_v4i();
    CompileOptions opts;
    opts.batch = batch;
    auto prog = Compile(app.value().graph, chip, opts);
    if (!prog.ok()) {
        std::fprintf(stderr, "%s\n", prog.status().ToString().c_str());
        return 1;
    }
    std::vector<ScheduleEntry> schedule;
    auto result = SimulateWithSchedule(prog.value(), chip, &schedule);
    if (!result.ok()) {
        std::fprintf(stderr, "%s\n",
                     result.status().ToString().c_str());
        return 1;
    }
    auto status = WriteChromeTrace(prog.value(), schedule, path);
    if (!status.ok()) {
        std::fprintf(stderr, "%s\n", status.ToString().c_str());
        return 1;
    }
    std::printf("wrote %zu events to %s (latency %s)\n",
                schedule.size(), path.c_str(),
                HumanSeconds(result.value().latency_s).c_str());
    std::printf("open in chrome://tracing or ui.perfetto.dev\n");
    return 0;
}
