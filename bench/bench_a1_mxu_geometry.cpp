/**
 * @file
 * A1 (ablation) — MXU geometry: the paper recounts that TPUv1's single
 * 256x256 array had great peak but poor utilization, and TPUv2 onward
 * chose multiple 128x128 arrays. Re-run TPUv4i with the same total MAC
 * count arranged as 1x512x512* down to 16x64x64 and measure the
 * production suite. (*512x512 stands in for "one huge array".)
 */
#include "bench/bench_util.h"

int
main()
{
    using namespace t4i;
    bench::Banner("A1", "MXU geometry ablation at constant MAC count");

    struct Geometry {
        int dim;
        int count;
    };
    // All provide 65536 MACs, like 4x128x128.
    const Geometry geometries[] = {
        {256, 1}, {128, 4}, {64, 16}, {32, 64},
    };

    TablePrinter table({"Geometry", "Fill depth", "Geomean speedup",
                        "Worst app", "Best app"});

    auto apps = ProductionApps();
    std::vector<double> baseline;
    for (const auto& app : apps) {
        baseline.push_back(
            bench::Run(app.graph, Tpu_v4i(), app.typical_batch)
                .result.latency_s);
    }

    for (const auto& geo : geometries) {
        ChipConfig chip = Tpu_v4i();
        chip.mxu.rows = geo.dim;
        chip.mxu.cols = geo.dim;
        chip.mxu.count = geo.count;
        std::vector<double> speedups;
        std::string worst;
        std::string best;
        double worst_v = 1e18;
        double best_v = 0.0;
        for (size_t i = 0; i < apps.size(); ++i) {
            auto run = bench::Run(apps[i].graph, chip,
                                  apps[i].typical_batch);
            const double speedup =
                baseline[i] / run.result.latency_s;
            speedups.push_back(speedup);
            if (speedup < worst_v) {
                worst_v = speedup;
                worst = apps[i].name;
            }
            if (speedup > best_v) {
                best_v = speedup;
                best = apps[i].name;
            }
        }
        table.AddRow({
            StrFormat("%dx %dx%d", geo.count, geo.dim, geo.dim),
            StrFormat("%d", 2 * geo.dim),
            StrFormat("%.3fx", GeoMean(speedups)),
            StrFormat("%s %.2fx", worst.c_str(), worst_v),
            StrFormat("%s %.2fx", best.c_str(), best_v),
        });
    }
    table.Print("A1: per-app speedup vs the shipped 4x128x128");

    std::printf("\nShape to check: the big single array loses on "
                "fill/drain (its 512-cycle\npipeline swamps batch-sized "
                "row streams — exactly TPUv1's 256x256 lesson),\nwhile "
                "many tiny arrays starve on sequencer issue bandwidth. "
                "128x128 sits at\nthe sweet spot, which is why three "
                "generations kept it.\n");
    return 0;
}
