/**
 * @file
 * E13 — Lessons 4 and 6: what int8 quantization costs in fidelity
 * (versus bf16, which deploys trained models unchanged) and what bf16
 * costs in performance (versus int8 on the same chip).
 */
#include "bench/bench_util.h"

namespace {

using namespace t4i;

/** Generates activation-like data for a domain. */
Tensor
DomainData(AppDomain domain, Rng& rng, int64_t rows, int64_t cols)
{
    Tensor t(Shape({rows, cols}));
    switch (domain) {
      case AppDomain::kMlp:
        // Embedding outputs: mostly small, rare large spikes.
        for (int64_t i = 0; i < t.NumElements(); ++i) {
            const double mag =
                std::exp(rng.NextGaussian() * 2.0 - 1.0);
            t[i] = static_cast<float>(rng.NextBool(0.5) ? mag : -mag);
        }
        break;
      case AppDomain::kCnn:
        // Post-ReLU conv activations: half-normal.
        for (int64_t i = 0; i < t.NumElements(); ++i) {
            t[i] = static_cast<float>(
                std::fabs(rng.NextGaussian()));
        }
        break;
      case AppDomain::kRnn:
        // Gated LSTM state: bounded (-1, 1).
        for (int64_t i = 0; i < t.NumElements(); ++i) {
            t[i] = static_cast<float>(std::tanh(rng.NextGaussian()));
        }
        break;
      case AppDomain::kBert:
        // Attention logits: heavy-tailed.
        for (int64_t i = 0; i < t.NumElements(); ++i) {
            t[i] = static_cast<float>(rng.NextGaussian() *
                                      std::exp(rng.NextGaussian()));
        }
        break;
    }
    return t;
}

}  // namespace

int
main()
{
    bench::Banner("E13",
                  "int8 vs bf16: fidelity cost and performance cost");

    // E13a: matmul output SQNR per domain (reference: fp32).
    Rng rng(20210614);
    TablePrinter fidelity({"Domain", "bf16 SQNR dB",
                           "int8/tensor SQNR dB",
                           "int8/channel SQNR dB", "bf16 advantage"});
    for (AppDomain domain : {AppDomain::kMlp, AppDomain::kCnn,
                             AppDomain::kRnn, AppDomain::kBert}) {
        Tensor act = DomainData(domain, rng, 64, 256);
        Tensor w(Shape({256, 64}));
        w.FillGaussian(rng, 0.05f);

        auto exact = Matmul(act, w, MatmulPrecision::kFp32).value();
        auto bf = Matmul(act, w, MatmulPrecision::kBf16).value();
        auto i8 = Matmul(act, w, MatmulPrecision::kInt8).value();

        // Per-channel weights: quantize weight rows independently, then
        // run the fp32 matmul on the fake-quantized operands.
        Tensor wq(Shape({256, 64}),
                  FakeQuantInt8PerChannel(w.data(), 256, 64,
                                          QuantScheme::kSymmetric));
        Tensor aq(act.shape(),
                  FakeQuantInt8(act.data(), QuantScheme::kSymmetric));
        auto i8pc = Matmul(aq, wq, MatmulPrecision::kFp32).value();

        const double s_bf =
            ComputeError(exact.data(), bf.data()).value().sqnr_db;
        const double s_i8 =
            ComputeError(exact.data(), i8.data()).value().sqnr_db;
        const double s_pc =
            ComputeError(exact.data(), i8pc.data()).value().sqnr_db;
        fidelity.AddRow({
            AppDomainName(domain),
            StrFormat("%.1f", s_bf),
            StrFormat("%.1f", s_i8),
            StrFormat("%.1f", s_pc),
            StrFormat("%+.1f dB", s_bf - std::max(s_i8, s_pc)),
        });
    }
    fidelity.Print("E13a: matmul fidelity by activation distribution");

    // E13b: end-to-end model fidelity via the functional executor
    // (scaled-down graphs of each architecture class; the full graph —
    // embeddings, attention, recurrence — runs on real tensors).
    TablePrinter e2e({"Model class", "bf16 SQNR dB", "int8 SQNR dB",
                      "bf16 advantage"});
    struct E2eCase {
        const char* label;
        Graph graph;
    };
    std::vector<E2eCase> e2e_cases;
    // Towers end wide (not at 1 logit) so the error statistic has
    // enough output values to be meaningful at small batch.
    e2e_cases.push_back(
        {"MLP (embed+tower)",
         BuildMlp("m", 2000, 16, 8, 128, {64, 32})});
    e2e_cases.push_back({"CNN (conv stack)", BuildSmallCnn("c")});
    e2e_cases.push_back(
        {"RNN (LSTM stack)",
         BuildLstmStack("r", 1000, 64, 2, 64, 8)});
    e2e_cases.push_back(
        {"BERT (encoder)", BuildBert("b", 2, 64, 2, 128, 8, 500)});
    e2e_cases.push_back(
        {"Decoder (KV cache)",
         BuildDecoderLm("lm", 2, 64, 2, 128, 16, 4, 500)});
    for (auto& c : e2e_cases) {
        auto bf = PrecisionLoss(c.graph, MatmulPrecision::kBf16, 4,
                                77).value();
        auto i8 = PrecisionLoss(c.graph, MatmulPrecision::kInt8, 4,
                                77).value();
        e2e.AddRow({
            c.label,
            StrFormat("%.1f", bf.sqnr_db),
            StrFormat("%.1f", i8.sqnr_db),
            StrFormat("%+.1f dB", bf.sqnr_db - i8.sqnr_db),
        });
    }
    e2e.Print("E13b: end-to-end output fidelity (functional executor, "
              "small-scale graphs)");

    // E13c: the performance price of bf16 vs int8 on TPUv4i.
    const ChipConfig chip = Tpu_v4i();
    TablePrinter perf({"App", "bf16 ms", "int8 ms", "int8 speedup"});
    std::vector<double> speedups;
    for (const auto& app : ProductionApps()) {
        const double bf =
            bench::Run(app.graph, chip, app.typical_batch,
                       DType::kBf16).result.latency_s * 1e3;
        const double i8 =
            bench::Run(app.graph, chip, app.typical_batch,
                       DType::kInt8).result.latency_s * 1e3;
        speedups.push_back(bf / i8);
        perf.AddRow({app.name, StrFormat("%.2f", bf),
                     StrFormat("%.2f", i8),
                     StrFormat("%.2fx", bf / i8)});
    }
    perf.AddRow({"GEOMEAN", "", "",
                 StrFormat("%.2fx", GeoMean(speedups))});
    perf.Print("E13c: bf16 vs int8 latency on TPUv4i");

    std::printf("\nShape to check: bf16 keeps 15-25 dB more SQNR on "
                "heavy-tailed (BERT/MLP)\ndistributions — the accuracy "
                "cliff that forced quantization engineering on\nTPUv1 — "
                "while int8's speed advantage on TPUv4i is modest. That "
                "trade is\nLesson 6: supporting bf16 removes the "
                "deployment detour (Lesson 4).\n");
    return 0;
}
