/**
 * @file
 * A2 (ablation) — weight prefetch / double buffering: isolate the value
 * of overlapping the next layer's weight DMA with the current layer's
 * compute. O2 compiles without cross-layer prefetch; O3 with CMEM
 * forced off adds only the prefetch pipeline — the delta is the
 * overlap win, uncontaminated by pinning.
 */
#include "bench/bench_util.h"

int
main()
{
    using namespace t4i;
    bench::Banner("A2",
                  "Weight prefetch ablation (O3 minus pinning vs O2)");

    const ChipConfig chip = Tpu_v4i();
    TablePrinter table({"App", "No prefetch ms", "Prefetch ms",
                        "Speedup", "HBM busy % (no)",
                        "HBM busy % (with)"});
    std::vector<double> speedups;
    for (const auto& app : ProductionApps()) {
        auto no_prefetch = bench::Run(app.graph, chip,
                                      app.typical_batch, DType::kBf16,
                                      /*opt=*/2);
        auto with_prefetch =
            bench::Run(app.graph, chip, app.typical_batch,
                       DType::kBf16, /*opt=*/3, 1, /*cmem=*/0);
        const double speedup = no_prefetch.result.latency_s /
                               with_prefetch.result.latency_s;
        speedups.push_back(speedup);
        table.AddRow({
            app.name,
            StrFormat("%.2f", no_prefetch.result.latency_s * 1e3),
            StrFormat("%.2f", with_prefetch.result.latency_s * 1e3),
            StrFormat("%.2fx", speedup),
            StrFormat("%.0f", 100.0 * no_prefetch.result
                                          .engine(Engine::kHbm)
                                          .utilization),
            StrFormat("%.0f", 100.0 * with_prefetch.result
                                          .engine(Engine::kHbm)
                                          .utilization),
        });
    }
    table.AddRow({"GEOMEAN", "", "",
                  StrFormat("%.2fx", GeoMean(speedups)), "", ""});
    table.Print("A2: prefetch-only gains at typical batch");

    std::printf("\nShape to check: weight-heavy apps (MLPs, BERTs) gain "
                "the most — their DMA\nserializes behind compute without "
                "prefetch; conv/recurrent apps gain less.\nThis overlap "
                "is the software half of why CMEM's *latency* benefit "
                "in E8 looks\nmodest: prefetch already hides most "
                "streaming.\n");
    return 0;
}
