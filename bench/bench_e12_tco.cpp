/**
 * @file
 * E12 — Lessons 3 and 5: performance per CapEx vs performance per TCO
 * across the chip catalog, and the cost of liquid vs air cooling.
 * The paper's point is the *ranking* can invert once 3 years of power
 * and cooling are paid.
 */
#include "bench/bench_util.h"

#include "src/tco/tco.h"

int
main()
{
    using namespace t4i;
    bench::Banner("E12", "Perf/CapEx vs perf/TCO across the catalog");

    TcoParams params;
    TablePrinter table({"Chip", "Die $", "Mem $", "Cooling $",
                        "CapEx $", "3yr OpEx $", "TCO $",
                        "Peak TFLOPS", "GFLOPS/$ CapEx",
                        "GFLOPS/$ TCO"});

    struct Entry {
        std::string name;
        double per_capex;
        double per_tco;
    };
    std::vector<Entry> entries;

    for (const auto& chip : ChipCatalog()) {
        auto tco = ComputeTco(chip, params).value();
        const double peak =
            std::max(chip.PeakFlops(DType::kBf16),
                     chip.PeakFlops(DType::kInt8));
        const double per_capex = peak / 1e9 / tco.capex_usd;
        const double per_tco = peak / 1e9 / tco.tco_usd;
        entries.push_back({chip.name, per_capex, per_tco});
        bench::Metric("e12.gflops_per_capex_usd", per_capex,
                      {{"chip", chip.name}});
        bench::Metric("e12.gflops_per_tco_usd", per_tco,
                      {{"chip", chip.name}});
        table.AddRow({
            chip.name,
            StrFormat("%.0f", tco.die_cost_usd),
            StrFormat("%.0f", tco.memory_cost_usd),
            StrFormat("%.0f", tco.cooling_capex_usd),
            StrFormat("%.0f", tco.capex_usd),
            StrFormat("%.0f", tco.opex_usd),
            StrFormat("%.0f", tco.tco_usd),
            StrFormat("%.1f", peak / 1e12),
            StrFormat("%.2f", per_capex),
            StrFormat("%.2f", per_tco),
        });
    }
    table.Print("E12a: cost breakdown and efficiency, per chip");

    auto rank = [&entries](bool by_tco) {
        std::vector<Entry> sorted = entries;
        std::sort(sorted.begin(), sorted.end(),
                  [by_tco](const Entry& a, const Entry& b) {
                      return (by_tco ? a.per_tco : a.per_capex) >
                             (by_tco ? b.per_tco : b.per_capex);
                  });
        std::string out;
        for (size_t i = 0; i < sorted.size(); ++i) {
            if (i > 0) out += " > ";
            out += sorted[i].name;
        }
        return out;
    };
    std::printf("\nRanking by perf/CapEx: %s\n", rank(false).c_str());
    std::printf("Ranking by perf/TCO:   %s\n", rank(true).c_str());

    // Lesson 5 sidebar: what liquid cooling costs TPUv3 vs an air-cooled
    // variant of itself.
    ChipConfig v3_air = Tpu_v3();
    v3_air.cooling = Cooling::kAir;
    auto t_liquid = ComputeTco(Tpu_v3(), params).value();
    auto t_air = ComputeTco(v3_air, params).value();
    std::printf("\nE12b (Lesson 5): TPUv3 liquid-cooling premium: "
                "$%.0f capex (+%.0f%% TCO);\nTPUv4i avoided it by "
                "designing to a 175 W air-cooled envelope.\n",
                t_liquid.cooling_capex_usd,
                100.0 * (t_liquid.tco_usd - t_air.tco_usd) /
                    t_air.tco_usd);
    std::printf("\nShape to check: ranking by TCO punishes hot chips "
                "(TPUv3) relative to their\nCapEx ranking; TPUv4i leads "
                "perf/TCO among the TPUs (Lesson 3).\n");
    return 0;
}
