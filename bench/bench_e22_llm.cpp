/**
 * @file
 * E22 — LLM autoregressive serving: KV-cache residency and
 * continuous batching.
 *
 * Two tables:
 *
 *  a) KV residency vs decode batch — at a fixed 2K context, sweep the
 *     decode batch ladder. Each point plans the CMEM-resident KV
 *     fraction for that working set (what fits beside the pinned
 *     weights), compiles the real BuildDecodeStep graph at that
 *     fraction, and simulates it. Raising batch past the CMEM budget
 *     flips the KV stream from the CMEM port to HBM in the simulated
 *     engine byte counters: per-token time (the TPOT floor) degrades
 *     while batch throughput still improves — the accelerator-serving
 *     tradeoff the scenario pair demonstrates at the SLO level.
 *
 *  b) Continuous vs static vs disaggregated batching — the same
 *     offered load through RunLlmCell in each scheduler mode, on the
 *     compiled cost model. Iteration-level batching must drain the
 *     work no later than static batch formation, so goodput
 *     (tokens/s) is at least as high; disaggregated prefill must beat
 *     shared-pipeline TTFT.
 *
 * `e22.wall_*` metrics are host wall-clock (perf-gate ignore list);
 * everything else is deterministic simulated output and gated against
 * bench/baselines.json.
 */
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/arch/catalog.h"
#include "src/common/strings.h"
#include "src/common/table.h"
#include "src/llm/kv_cache.h"
#include "src/llm/model.h"
#include "src/llm/serve_llm.h"
#include "src/models/zoo.h"

namespace {

using namespace t4i;

double
WallSeconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** One point of the residency sweep. */
struct ResidencyPoint {
    int64_t batch = 0;
    double kv_frac = 1.0;      ///< planned CMEM-resident KV fraction
    double step_s = 0.0;       ///< one decode iteration (TPOT floor)
    double tokens_per_s = 0.0; ///< batch / step
    int64_t cmem_bytes = 0;    ///< CMEM engine traffic per step
    int64_t hbm_bytes = 0;     ///< HBM engine traffic per step
};

ResidencyPoint
SweepPoint(const llm::LlmModelConfig& model, const ChipConfig& chip,
           int64_t batch, int64_t ctx)
{
    ResidencyPoint p;
    p.batch = batch;
    p.kv_frac = llm::PlanKvResidency(model, chip, batch, ctx);
    Graph step = BuildDecodeStep(
        model.name + ".step", model.layers, model.d_model,
        model.num_heads, model.d_ff, ctx, model.vocab);
    CompileOptions opts;
    opts.batch = batch;
    opts.dtype = model.dtype;
    opts.kv_cmem_fraction = p.kv_frac;
    auto program = Compile(step, chip, opts);
    T4I_CHECK(program.ok(), program.status().ToString().c_str());
    auto sim = Simulate(program.value(), chip);
    T4I_CHECK(sim.ok(), sim.status().ToString().c_str());
    p.step_s = sim.value().latency_s;
    p.tokens_per_s = static_cast<double>(batch) / p.step_s;
    p.cmem_bytes = sim.value().engine(Engine::kCmem).bytes;
    p.hbm_bytes = sim.value().engine(Engine::kHbm).bytes;
    return p;
}

llm::LlmCellConfig
ServeConfig(const llm::LlmModelConfig& model, const ChipConfig& chip,
            llm::LlmCostModel* cost, llm::LlmMode mode)
{
    llm::LlmCellConfig cfg;
    cfg.model = model;
    cfg.chip = chip;
    cfg.mode = mode;
    cfg.cost_model = cost;
    cfg.max_batch = 8;
    cfg.duration_s = 1.0;
    cfg.seed = 42;
    llm::LlmTenant tenant;
    tenant.name = "chat";
    // Saturating load: the batch-slot discipline is what separates
    // the modes, and slots only matter when they are contended.
    tenant.rate = 2000.0;
    tenant.prompt = {256.0, 0.3, 2048};
    tenant.output = {32.0, 0.7, 256};
    cfg.tenants.push_back(tenant);
    return cfg;
}

}  // namespace

int
main()
{
    bench::Banner("E22",
                  "LLM serving: KV-cache residency and continuous "
                  "batching");
    const ChipConfig chip = Tpu_v4i();
    const llm::LlmModelConfig model =
        llm::LlmModelByName("TINYLM").value();
    const double wall0 = WallSeconds();

    // --- (a) KV residency vs decode batch ----------------------------
    const int64_t kCtx = 2048;
    std::vector<ResidencyPoint> sweep;
    TablePrinter residency({"batch", "kv cmem frac", "step (us)",
                            "tokens/s", "CMEM MB/step", "HBM MB/step"});
    for (int64_t batch = 1; batch <= 64; batch *= 2) {
        ResidencyPoint p = SweepPoint(model, chip, batch, kCtx);
        sweep.push_back(p);
        residency.AddRow(
            {StrFormat("%lld", (long long)p.batch),
             StrFormat("%.3f", p.kv_frac),
             StrFormat("%.1f", p.step_s * 1e6),
             StrFormat("%.0f", p.tokens_per_s),
             StrFormat("%.2f", (double)p.cmem_bytes / 1e6),
             StrFormat("%.2f", (double)p.hbm_bytes / 1e6)});
        const obs::Labels labels = {
            {"batch", StrFormat("%lld", (long long)batch)}};
        bench::Metric("e22.residency.kv_cmem_frac", p.kv_frac, labels);
        bench::Metric("e22.residency.step_seconds", p.step_s, labels);
        bench::Metric("e22.residency.tokens_per_s", p.tokens_per_s,
                      labels);
        bench::Metric("e22.residency.hbm_bytes",
                      (double)p.hbm_bytes, labels);
        bench::Metric("e22.residency.cmem_bytes",
                      (double)p.cmem_bytes, labels);
    }
    residency.Print(
        StrFormat("(a) decode step vs batch at %lld-token context "
                  "(TINYLM on TPUv4i): past the CMEM KV budget the "
                  "stream spills to HBM",
                  (long long)kCtx));

    // The acceptance claims: small batches are fully CMEM-resident;
    // large ones spill; the spill shows up as HBM bytes; per-token
    // time degrades while throughput still improves.
    const ResidencyPoint& lo = sweep.front();
    const ResidencyPoint& hi = sweep.back();
    T4I_CHECK(lo.kv_frac == 1.0, "batch 1 must be CMEM-resident");
    T4I_CHECK(hi.kv_frac < 1.0, "batch 64 must spill KV to HBM");
    T4I_CHECK(hi.hbm_bytes > lo.hbm_bytes,
              "the spill must appear in simulated HBM bytes");
    T4I_CHECK(hi.step_s > lo.step_s,
              "spilled decode steps must be slower (TPOT degrades)");
    T4I_CHECK(hi.tokens_per_s > lo.tokens_per_s,
              "batching must still win throughput");

    // --- (b) batching modes under the same load ----------------------
    llm::CompiledLlmCostModel cost(model, chip);
    TablePrinter modes({"mode", "completed", "goodput tok/s",
                        "ttft p95 (ms)", "tpot p99 (ms)", "drain (s)"});
    llm::LlmResult results[3];
    const llm::LlmMode order[3] = {llm::LlmMode::kStatic,
                                   llm::LlmMode::kContinuous,
                                   llm::LlmMode::kDisaggregated};
    for (int i = 0; i < 3; ++i) {
        auto run =
            llm::RunLlmCell(ServeConfig(model, chip, &cost, order[i]));
        T4I_CHECK(run.ok(), run.status().ToString().c_str());
        T4I_CHECK(run.value().conservation_ok,
                  run.value().conservation_error.c_str());
        results[i] = run.value();
        const llm::LlmResult& r = results[i];
        const std::string name = llm::LlmModeName(order[i]);
        modes.AddRow({name, StrFormat("%lld", (long long)r.completed),
                      StrFormat("%.0f", r.goodput_tokens_per_s),
                      StrFormat("%.2f", r.ttft_p95_s * 1e3),
                      StrFormat("%.3f", r.tpot_p99_s * 1e3),
                      StrFormat("%.3f", r.duration_s)});
        const obs::Labels labels = {{"mode", name}};
        bench::Metric("e22.serve.goodput_tokens_per_s",
                      r.goodput_tokens_per_s, labels);
        bench::Metric("e22.serve.ttft_p95_seconds", r.ttft_p95_s,
                      labels);
        bench::Metric("e22.serve.tpot_p99_seconds", r.tpot_p99_s,
                      labels);
        bench::Metric("e22.serve.drain_seconds", r.duration_s, labels);
        bench::Metric("e22.serve.completed", (double)r.completed,
                      labels);
    }
    modes.Print("(b) one second of 2000 req/s chat traffic per "
                "scheduler mode (compiled cost model)");

    const llm::LlmResult& statik = results[0];
    const llm::LlmResult& cont = results[1];
    const llm::LlmResult& disagg = results[2];
    T4I_CHECK(cont.arrived == statik.arrived,
              "both modes must see the same offered load");
    // Static batch formation drains slower at saturation, so its
    // admission queue overflows: continuous completes strictly more
    // of the same offered load, not just faster.
    T4I_CHECK(cont.completed >= statik.completed,
              "continuous batching must not complete less than static");
    T4I_CHECK(cont.goodput_tokens_per_s >=
                  statik.goodput_tokens_per_s,
              "continuous batching must not lose goodput to static");
    T4I_CHECK(disagg.ttft_p95_s <= cont.ttft_p95_s + 1e-12,
              "disaggregated prefill must not worsen TTFT");
    bench::Metric("e22.serve.continuous_goodput_gain",
                  cont.goodput_tokens_per_s /
                      statik.goodput_tokens_per_s);
    std::printf("continuous/static goodput: %.2fx | compiled cost "
                "model simulations: %lld\n",
                cont.goodput_tokens_per_s /
                    statik.goodput_tokens_per_s,
                (long long)cost.simulations());

    bench::Metric("e22.wall_seconds", WallSeconds() - wall0);
    return 0;
}
