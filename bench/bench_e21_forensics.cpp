/**
 * @file
 * E21 — tail-latency forensics: the sampler's keep discipline and its
 * cost. Two drills on the scenario harness with forensics enabled
 * (the same RunScenario path `t4sim_cli check --scenario` drives):
 *
 *  a) keep discipline under healthy load — a steady-state fleet where
 *     almost nothing is interesting: the tail sampler must keep a
 *     small fraction of traces (rolling-quantile tail + seeded
 *     reservoir baseline) while keeping *every* SLO violator and
 *     non-completed request, and every kept path must tile its root;
 *  b) keep discipline under a metastable retry storm — the opposite
 *     regime, where nearly every trace is interesting (sheds, SLO
 *     misses, retries) and the dominant tail component must be the
 *     queue, not the service.
 *
 * Wall-clock overhead of the forensics pass is reported as
 * `e21.wall_*` metrics, which sit on the perf-gate ignore list (host
 * time, not modeled time); the keep counts and fractions are
 * deterministic and gated.
 */
#include <chrono>
#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "src/cluster/scenario_run.h"
#include "src/common/strings.h"
#include "src/common/table.h"
#include "src/load/scenario.h"
#include "src/obs/critical_path.h"
#include "src/obs/registry.h"
#include "src/obs/sampling.h"

namespace {

using namespace t4i;

/** Healthy two-cell fleet (mirrors scenarios/steady_state.scn). */
constexpr const char* kSteadyText =
    "scenario steady-forensics\n"
    "duration 2.0\n"
    "seed 42\n"
    "cells 2\n"
    "devices 1\n"
    "policy least-loaded\n"
    "window 0.05\n"
    "tenant web load=0.4 deadline=0.05\n"
    "arrivals poisson\n"
    "slo web-avail tenant=web avail=0.99 horizon=2 fast=0.1 "
    "slow=0.5\n";

/** Metastable fixed-backoff storm (mirrors retry_storm_fixed.scn). */
constexpr const char* kStormText =
    "scenario storm-forensics\n"
    "duration 3.0\n"
    "seed 1007\n"
    "cells 2\n"
    "devices 1\n"
    "policy least-loaded\n"
    "window 0.05\n"
    "tenant api load=0.15 deadline=0.05 max-queue=128\n"
    "arrivals poisson\n"
    "flash-crowd tenant=api at=0.4 ramp=0.1 hold=0.4 mult=18\n"
    "retry-storm timeout=0.015 backoff=fixed base=0.04 "
    "max-retries=24\n"
    "alert page slo.page{slo=api-avail} > 0.5 for 0\n"
    "slo api-avail tenant=api avail=0.97 horizon=3 fast=0.1 "
    "slow=0.5 page=2\n";

double
WallSeconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

ScenarioOutcome
RunText(const std::string& text, bool forensics, double* wall_s)
{
    auto scenario = load::ParseScenario(text);
    T4I_CHECK(scenario.ok(), scenario.status().ToString().c_str());
    obs::MetricsRegistry registry;
    ScenarioRunOptions options;
    options.registry = &registry;
    options.build_report = false;
    options.forensics = forensics;
    const double t0 = WallSeconds();
    auto outcome = RunScenario(scenario.value(), options);
    if (wall_s != nullptr) *wall_s = WallSeconds() - t0;
    T4I_CHECK(outcome.ok(), outcome.status().ToString().c_str());
    T4I_CHECK(outcome.value().conservation_ok,
              "scenario books do not balance");
    return std::move(outcome).ConsumeValue();
}

/** Keep-discipline numbers for one scenario's forensics result. */
struct KeepStats {
    int64_t seen = 0;
    int64_t kept = 0;
    int64_t violators = 0;       ///< slo_miss or non-completed roots
    int64_t violators_kept = 0;  ///< of those, kept (must be all)
    int64_t tiled = 0;
    int64_t untiled = 0;
};

KeepStats
Stats(const obs::ForensicsResult& forensics)
{
    KeepStats s;
    s.seen = forensics.critical_path.traces;
    s.kept = forensics.critical_path.kept;
    s.tiled = forensics.critical_path.tiled;
    s.untiled = forensics.critical_path.untiled;
    for (const obs::TraceVerdict& v : forensics.verdicts) {
        if (v.slo_miss || v.outcome != "completed") {
            ++s.violators;
            if (v.kept) ++s.violators_kept;
        }
    }
    return s;
}

}  // namespace

int
main()
{
    bench::Banner("E21",
                  "Tail forensics: sampler keep discipline and cost");

    TablePrinter table({"Scenario", "Traces", "Kept", "Keep frac",
                        "Violators", "Viol. kept", "Untiled"});
    const struct {
        const char* key;
        const char* text;
    } drills[] = {{"e21a_steady", kSteadyText},
                  {"e21b_storm", kStormText}};

    for (const auto& drill : drills) {
        double wall_base = 0.0;
        double wall_forensics = 0.0;
        RunText(drill.text, /*forensics=*/false, &wall_base);
        const ScenarioOutcome o =
            RunText(drill.text, /*forensics=*/true, &wall_forensics);
        const KeepStats s = Stats(o.forensics);
        T4I_CHECK(s.violators_kept == s.violators,
                  "sampler dropped an SLO violator");
        T4I_CHECK(s.untiled == 0, "kept path failed to tile its root");

        const double keep_fraction =
            s.seen > 0
                ? static_cast<double>(s.kept) /
                      static_cast<double>(s.seen)
                : 0.0;
        table.AddRow({
            drill.key,
            StrFormat("%lld", static_cast<long long>(s.seen)),
            StrFormat("%lld", static_cast<long long>(s.kept)),
            StrFormat("%.4f", keep_fraction),
            StrFormat("%lld", static_cast<long long>(s.violators)),
            StrFormat("%lld",
                      static_cast<long long>(s.violators_kept)),
            StrFormat("%lld", static_cast<long long>(s.untiled)),
        });

        const obs::Labels labels = {{"drill", drill.key}};
        bench::Metric("e21.traces_seen",
                      static_cast<double>(s.seen), labels);
        bench::Metric("e21.traces_kept",
                      static_cast<double>(s.kept), labels);
        bench::Metric("e21.keep_fraction", keep_fraction, labels);
        bench::Metric("e21.violator_coverage",
                      s.violators > 0
                          ? static_cast<double>(s.violators_kept) /
                                static_cast<double>(s.violators)
                          : 1.0,
                      labels);
        bench::Metric("e21.untiled_paths",
                      static_cast<double>(s.untiled), labels);
        bench::Metric("e21.exemplars",
                      static_cast<double>(o.forensics.exemplars.size()),
                      labels);
        // Host wall-clock, not modeled time: perf-gate ignore list.
        bench::Metric("e21.wall_seconds_base", wall_base, labels);
        bench::Metric("e21.wall_seconds_forensics", wall_forensics,
                      labels);
    }

    table.Print(
        "E21: tail-sampler keep discipline per regime (forensics "
        "inline with the scenario run)");
    std::printf(
        "Healthy load keeps a sliver of traces (tail + reservoir) "
        "yet never drops a violator;\nthe storm keeps nearly "
        "everything because nearly everything is interesting — the\n"
        "sampler's job there is the critical-path verdict (queue "
        "dominates the tail), not\nvolume reduction.\n\n");
    return 0;
}
