/**
 * @file
 * E17 — availability under fault injection. A deployed inference cell
 * lives with device failures (the TPU v4 paper routes around failed
 * hardware; availability, not peak FLOPS, is the product metric).
 * Sweeps the per-device failure rate in a 4-device BERT0 cell and
 * reports availability vs p99 / goodput with the reliability policy
 * (bounded retries, deadlines, bounded queues) holding the cell
 * together, then prices N+k spare provisioning for the fleet.
 */
#include "bench/bench_util.h"

namespace {

using namespace t4i;

}  // namespace

int
main()
{
    bench::Banner("E17", "Availability: device failures vs p99/goodput");

    const ChipConfig chip = Tpu_v4i();
    auto app = BuildApp("BERT0").value();
    const LatencyTable table =
        bench::ProfileLatency(app.graph, chip, DType::kBf16, 64);
    const double slo_s = app.slo_ms * 1e-3;
    int64_t slo_batch = table.MaxBatchUnderSlo(slo_s);
    if (slo_batch <= 0) slo_batch = 1;

    constexpr int kDevices = 4;
    constexpr double kDurationS = 20.0;
    const LatencyTable* table_ptr = &table;
    TenantConfig tenant;
    tenant.name = app.name;
    tenant.latency_s = [table_ptr](int64_t b) {
        return table_ptr->Eval(b);
    };
    tenant.max_batch = slo_batch;
    tenant.slo_s = slo_s;
    // Offered load: 60% of the healthy 4-device cell's SLO capacity,
    // so single-device loss (-25% capacity) stresses but need not
    // break the cell.
    tenant.arrival_rate =
        0.6 * table.ThroughputAt(slo_batch) * kDevices;
    tenant.deadline_s = 10.0 * slo_s;
    tenant.max_queue = 512;

    TablePrinter sweep({"MTBF s", "Avail", "p99 ms", "Goodput rps",
                        "Dropped", "Shed", "Retries"});
    for (double mtbf : {0.0, 60.0, 20.0, 5.0, 2.0}) {
        ReliabilityConfig reliability;
        reliability.faults.mtbf_s = mtbf;
        reliability.faults.mttr_s = mtbf > 0.0 ? 1.0 : 0.0;
        reliability.faults.transient_failure_prob =
            mtbf > 0.0 ? 0.01 : 0.0;
        auto result = RunServingCell({tenant}, kDevices, kDurationS,
                                     4242, ServingTelemetry{},
                                     reliability);
        T4I_CHECK(result.ok(), result.status().ToString().c_str());
        const auto& r = result.value();
        const auto& t = r.tenants[0];
        sweep.AddRow({
            mtbf > 0.0 ? StrFormat("%.0f", mtbf) : "inf",
            StrFormat("%.4f", r.availability),
            StrFormat("%.2f", t.p99_latency_s * 1e3),
            StrFormat("%.0f", t.goodput_rps),
            StrFormat("%lld", static_cast<long long>(t.dropped)),
            StrFormat("%lld", static_cast<long long>(t.shed)),
            StrFormat("%lld", static_cast<long long>(t.retried)),
        });
        const obs::Labels labels = {
            {"mtbf", mtbf > 0.0 ? StrFormat("%.0f", mtbf) : "inf"}};
        bench::Metric("e17.availability", r.availability, labels);
        bench::Metric("e17.p99_ms", t.p99_latency_s * 1e3, labels);
        bench::Metric("e17.goodput_rps", t.goodput_rps, labels);
    }
    sweep.Print("E17a: failure rate vs tail latency and goodput "
                "(4x TPUv4i cell, MTTR 1 s, 1% transient)");

    // Scripted single-device loss: the acceptance drill — one of four
    // devices dies mid-run and comes back; bounded queues hold.
    {
        ReliabilityConfig reliability;
        reliability.faults.scripted.push_back(
            ScriptedFault{0, 5.0, 12.0});
        auto healthy = RunServingCell({tenant}, kDevices, kDurationS,
                                      4242, ServingTelemetry{})
                           .value();
        auto degraded = RunServingCell({tenant}, kDevices, kDurationS,
                                       4242, ServingTelemetry{},
                                       reliability)
                            .value();
        std::printf("\nE17b: scripted loss of device 0 during [5 s, "
                    "12 s):\n  healthy:  p99 %.2f ms, goodput %.0f "
                    "rps\n  degraded: p99 %.2f ms, goodput %.0f rps, "
                    "%lld dropped, %lld shed (max queue %lld)\n",
                    healthy.tenants[0].p99_latency_s * 1e3,
                    healthy.tenants[0].goodput_rps,
                    degraded.tenants[0].p99_latency_s * 1e3,
                    degraded.tenants[0].goodput_rps,
                    static_cast<long long>(degraded.tenants[0].dropped),
                    static_cast<long long>(degraded.tenants[0].shed),
                    static_cast<long long>(
                        degraded.tenants[0].max_queue_depth));
        bench::Metric("e17.scripted_p99_ms",
                      degraded.tenants[0].p99_latency_s * 1e3);
        bench::Metric("e17.scripted_goodput_rps",
                      degraded.tenants[0].goodput_rps);
    }

    // N+k fleet economics: spares needed to hold the availability
    // target as the per-chip failure rate worsens, priced via TCO.
    TablePrinter nk({"Chip avail", "N", "k spares", "Cell avail",
                     "TCO overhead %"});
    for (double avail : {0.9999, 0.999, 0.99, 0.95}) {
        for (int64_t n : {int64_t{4}, int64_t{64}, int64_t{1024}}) {
            const int64_t k = NPlusKSpares(n, avail, 0.999);
            nk.AddRow({
                StrFormat("%.4f", avail),
                StrFormat("%lld", static_cast<long long>(n)),
                StrFormat("%lld", static_cast<long long>(k)),
                StrFormat("%.6f",
                          CellAvailability(n, n + k, avail)),
                StrFormat("%.1f", 100.0 * static_cast<double>(k) /
                                      static_cast<double>(n)),
            });
            if (n == 1024) {
                bench::Metric(
                    "e17.spares_per_1024",
                    static_cast<double>(k),
                    {{"chip_avail", StrFormat("%.4f", avail)}});
            }
        }
    }
    nk.Print("E17c: N+k spares for a 0.999 cell-availability target");

    std::printf("\nShape to check: availability falls roughly as "
                "MTTR/(MTBF+MTTR) per device;\np99 and goodput degrade "
                "but bounded queues + deadlines keep the cell from\n"
                "collapsing, and the spare count k grows sublinearly "
                "in N (pooling) but\nsharply as chip availability "
                "drops — the fleet-economics face of Lesson 3.\n");
    return 0;
}
