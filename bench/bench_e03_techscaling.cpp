/**
 * @file
 * E3 — Lesson 1 figure: logic, SRAM, wires and DRAM improve unequally
 * across the nodes the TPUs were built in (45 -> 28 -> 16 -> 7 nm).
 */
#include "bench/bench_util.h"

#include "src/arch/tech.h"

int
main()
{
    using namespace t4i;
    bench::Banner("E3",
                  "Unequal technology scaling across process nodes");

    TablePrinter table({"Node", "Year", "Logic dens", "SRAM dens",
                        "Logic pJ/MAC16", "SRAM pJ/B", "DRAM pJ/B",
                        "Wire delay", "DRAM BW"});
    for (const auto& node : TechLadder()) {
        table.AddRow({
            StrFormat("%d nm", node.nm),
            StrFormat("%d", node.year),
            StrFormat("%.1fx", node.logic_density),
            StrFormat("%.1fx", node.sram_density),
            StrFormat("%.2f", MacEnergyPj(node, 16)),
            StrFormat("%.1f", SramEnergyPjPerByte(node)),
            StrFormat("%.0f", DramEnergyPjPerByte(node)),
            StrFormat("%.2fx", node.wire_delay),
            StrFormat("%.0fx", node.dram_bw),
        });
    }
    table.Print("E3: relative scaling vs 45 nm (density up, energy down)");

    // The divergence the lesson is about: cumulative gap between logic
    // and SRAM density at each step.
    const auto& ladder = TechLadder();
    std::printf("\nDivergence (logic density / SRAM density):\n");
    for (const auto& node : ladder) {
        std::printf("  %2d nm: %.1fx\n", node.nm,
                    node.logic_density / node.sram_density);
    }
    std::printf("\nConsequence: compute got ~10x denser from 28->7 nm but "
                "SRAM only ~2.5x,\nso TPUv4i spends die area on 128 MiB "
                "CMEM rather than more MXUs, and\nwire-dominated designs "
                "stop scaling with frequency (Lesson 1).\n");
    return 0;
}
