/**
 * @file
 * E2 — Table 2: the eight production inference applications: layer
 * counts, weight footprints, per-sample FLOPs, operational intensity,
 * production batch and latency SLO, and share of the inference fleet.
 */
#include "bench/bench_util.h"

int
main()
{
    using namespace t4i;
    bench::Banner("E2", "Production inference application suite");

    TablePrinter table({"App", "Domain", "Layers", "Weights",
                        "GFLOPs/sample", "FLOPs/w-byte", "Batch",
                        "SLO ms", "Fleet %"});
    for (const auto& app : ProductionApps()) {
        auto c1 = app.graph.Cost(1, DType::kBf16, DType::kBf16).value();
        table.AddRow({
            app.name,
            AppDomainName(app.domain),
            StrFormat("%d", app.graph.num_layers()),
            HumanBytes(static_cast<double>(c1.weight_bytes)),
            StrFormat("%.2f", c1.total_flops / 1e9),
            StrFormat("%.0f", c1.ops_per_weight_byte),
            StrFormat("%lld",
                      static_cast<long long>(app.typical_batch)),
            StrFormat("%.0f", app.slo_ms),
            StrFormat("%.0f", 100.0 * app.fleet_share),
        });
    }
    table.Print("E2 / Table 2: app characteristics (batch 1, bf16)");

    std::printf("\nShape to check: MLPs carry the biggest weights at the "
                "lowest intensity;\nCNNs the reverse; RNNs sit in between; "
                "BERTs are large AND intense.\n");
    return 0;
}
