/**
 * @file
 * A7 (analysis) — energy per inference and its breakdown on TPUv4i.
 * The activity-based power model attributes every joule to MACs, vector
 * work, SRAM traffic, HBM traffic, links or leakage/idle — the
 * energy-proportionality picture behind Lessons 3 and 5.
 */
#include "bench/bench_util.h"

int
main()
{
    using namespace t4i;
    bench::Banner("A7", "Energy per inference breakdown on TPUv4i");

    const ChipConfig chip = Tpu_v4i();
    TablePrinter table({"App", "mJ/inf", "inf/J", "MXU %", "VPU %",
                        "SRAM %", "DRAM %", "Link %", "Static %",
                        "int8 saves"});

    for (const auto& app : ProductionApps()) {
        auto bf = bench::Run(app.graph, chip, app.typical_batch);
        auto p =
            EstimatePower(bf.program, bf.result, chip).value();
        auto i8 = bench::Run(app.graph, chip, app.typical_batch,
                             DType::kInt8);
        auto p8 = EstimatePower(i8.program, i8.result, chip).value();

        const double per_inf =
            p.total_energy_j / static_cast<double>(app.typical_batch);
        auto pct = [&](double j) {
            return StrFormat("%.0f", 100.0 * j / p.total_energy_j);
        };
        table.AddRow({
            app.name,
            StrFormat("%.2f", per_inf * 1e3),
            StrFormat("%.0f", 1.0 / per_inf),
            pct(p.mxu_energy_j),
            pct(p.vpu_energy_j),
            pct(p.sram_energy_j),
            pct(p.dram_energy_j),
            pct(p.link_energy_j),
            pct(p.static_energy_j),
            StrFormat("%.0f%%",
                      100.0 * (1.0 - p8.total_energy_j /
                                         p.total_energy_j)),
        });
    }
    table.Print("A7: where the joules go (bf16 at typical batch)");

    std::printf("\nShape to check: static/idle power dominates the "
                "latency-bound apps (RNNs,\nsmall MLP batches) — the "
                "energy-proportionality gap — while the dense apps\n"
                "(CNN/BERT) spend their energy in the MXUs and SRAM. "
                "int8 saves most where\nMACs dominate, little where "
                "leakage does — the reason int8 alone could not\n"
                "carry Lesson 6.\n");
    return 0;
}
