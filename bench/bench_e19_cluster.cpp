/**
 * @file
 * E19 — cluster serving. Lesson 3 at fleet scale: a deployed DSA is a
 * cluster of serving cells behind a router, not one chip. Three
 * drills on the BERT0 serving contract:
 *
 *  a) routing-policy comparison under skewed + diurnal load — two
 *     tenants on opposite diurnal phases with a per-device weight-
 *     switch penalty, plus a straggler cell; spreading policies pay
 *     the switch tax on every alternation while tenant-affinity
 *     parks each tenant on resident cells, and queue-aware policies
 *     route around the slow cell where round-robin cannot;
 *  b) single-cell-outage drill — one of three cells dies for the last
 *     30% of the run behind a lagged health check; measured request
 *     availability must clear the N+k-predicted floor;
 *  c) canary rollout timeline — a mildly slower version rolls
 *     cell-by-cell to promotion; a badly regressed one is caught and
 *     aborted inside the first soak window.
 */
#include <algorithm>
#include <cmath>

#include "bench/bench_util.h"

namespace {

using namespace t4i;

constexpr double kPi = 3.14159265358979323846;

const char*
Verdict(const RolloutStep& step)
{
    return step.aborted ? "abort" : (step.promoted ? "promote" : "-");
}

}  // namespace

int
main()
{
    bench::Banner("E19",
                  "Cluster serving: routing, outage failover, canary");

    const ChipConfig chip = Tpu_v4i();
    auto app = BuildApp("BERT0").value();
    const LatencyTable table =
        bench::ProfileLatency(app.graph, chip, DType::kBf16, 64);
    const double slo_s = app.slo_ms * 1e-3;
    int64_t slo_batch = table.MaxBatchUnderSlo(slo_s);
    if (slo_batch <= 0) slo_batch = 1;
    const double cell_rps = table.ThroughputAt(slo_batch);
    const LatencyTable* table_ptr = &table;

    TenantConfig tenant;
    tenant.name = app.name;
    tenant.latency_s = [table_ptr](int64_t b) {
        return table_ptr->Eval(b);
    };
    tenant.max_batch = slo_batch;
    tenant.slo_s = slo_s;
    tenant.deadline_s = 10.0 * slo_s;
    tenant.max_queue = 512;

    // --- E19a: routing policies under skewed + diurnal load ----------
    // Four single-device cells, two tenants on opposite diurnal
    // phases (each swings 0.4x..1.6x around 90% of one cell's
    // capacity), a 2 ms weight-switch penalty whenever a device
    // alternates tenants, and cell 0's device at 40% speed for the
    // middle half of the run.
    {
        constexpr double kDuration = 10.0;
        TenantConfig day = tenant;
        day.name = "day";
        day.arrival_rate = 0.225 * 4.0 * cell_rps;
        day.switch_penalty_s = 2e-3;
        day.max_queue = 256;
        day.rate_multiplier = [](double t) {
            return 1.0 + 0.6 * std::sin(2.0 * kPi * t / kDuration);
        };
        day.peak_rate_multiplier = 1.6;
        TenantConfig night = day;
        night.name = "night";
        night.rate_multiplier = [](double t) {
            return 1.0 - 0.6 * std::sin(2.0 * kPi * t / kDuration);
        };

        FaultPlan straggler;
        straggler.slowdowns.push_back(
            SlowdownEvent{0, 0.25 * kDuration, 0.75 * kDuration, 0.4});

        TablePrinter policies({"Policy", "Avail", "p95 ms",
                               "Goodput rps", "Switch %", "Failovers",
                               "Shed"});
        for (RoutingPolicy policy :
             {RoutingPolicy::kRoundRobin, RoutingPolicy::kLeastLoaded,
              RoutingPolicy::kPowerOfTwo,
              RoutingPolicy::kTenantAffinity}) {
            ClusterConfig config;
            config.tenants = {day, night};
            config.num_cells = 4;
            config.devices_per_cell = 1;
            config.duration_s = kDuration;
            config.seed = 4242;
            config.policy = policy;
            config.cell_faults = {straggler};
            auto r = RunCluster(config).value();
            double worst_p95 = 0.0;
            double goodput = 0.0;
            for (const ClusterTenantStats& ts : r.tenants) {
                worst_p95 = std::max(worst_p95, ts.p95_latency_s);
                goodput += ts.goodput_rps;
            }
            double switch_frac = 0.0;
            for (const ServingResult& cell : r.cells) {
                switch_frac += cell.switch_overhead_fraction;
            }
            switch_frac /= static_cast<double>(r.cells.size());
            policies.AddRow({
                RoutingPolicyName(policy),
                StrFormat("%.4f", r.availability),
                StrFormat("%.2f", worst_p95 * 1e3),
                StrFormat("%.0f", goodput),
                StrFormat("%.1f", 100.0 * switch_frac),
                StrFormat("%lld",
                          static_cast<long long>(r.failovers)),
                StrFormat("%lld",
                          static_cast<long long>(r.shed +
                                                 r.router_shed)),
            });
            const obs::Labels labels = {
                {"policy", RoutingPolicyName(policy)}};
            bench::Metric("e19a.availability", r.availability, labels);
            bench::Metric("e19a.worst_p95_ms", worst_p95 * 1e3,
                          labels);
            bench::Metric("e19a.goodput_rps", goodput, labels);
            bench::Metric("e19a.switch_fraction", switch_frac, labels);
        }
        policies.Print(
            "E19a: policies, 2 anti-phase tenants + straggler cell "
            "(4 cells, 90% mean load)");
        std::printf(
            "\nSpreading policies (round-robin, least-loaded, p2c) "
            "alternate tenants on\nevery device and pay the 2 ms "
            "weight switch constantly; affinity parks each\ntenant "
            "on its resident cells and only spills when a queue "
            "fills. The\nstraggler cell punishes round-robin twice: "
            "it keeps feeding the slow cell\nblindly while also "
            "paying the switch tax.\n\n");
    }

    // --- E19b: single-cell-outage drill ------------------------------
    {
        constexpr double kDuration = 10.0;
        constexpr int kCells = 3;
        constexpr int kDevices = 2;
        TenantConfig web = tenant;
        web.arrival_rate = 0.6 * kCells * kDevices * cell_rps;

        ClusterConfig config;
        config.tenants = {web};
        config.num_cells = kCells;
        config.devices_per_cell = kDevices;
        config.duration_s = kDuration;
        config.seed = 4242;
        config.policy = RoutingPolicy::kLeastLoaded;
        config.health_check_interval_s = 0.1;
        config.cell_faults.resize(kCells);
        config.cell_faults[1] =
            CellOutagePlan(kDevices, 0.7 * kDuration);
        auto r = RunCluster(config).value();

        const double down_fraction = 0.3;
        const double floor = PredictedAvailabilityFloor(
            kCells - 1, kCells, 1.0 - down_fraction);
        TablePrinter drill({"Metric", "Value"});
        drill.AddRow({"arrived", StrFormat("%lld", static_cast<long long>(r.arrived))});
        drill.AddRow({"completed", StrFormat("%lld", static_cast<long long>(r.completed))});
        drill.AddRow({"dropped (dead cell + deadlines)",
                      StrFormat("%lld", static_cast<long long>(r.dropped))});
        drill.AddRow({"shed", StrFormat("%lld", static_cast<long long>(r.shed))});
        drill.AddRow({"conservation",
                      r.arrived == r.completed + r.dropped + r.shed
                          ? "holds" : "VIOLATED"});
        drill.AddRow({"measured availability",
                      StrFormat("%.4f", r.availability)});
        drill.AddRow({"N+k predicted floor (2 of 3 @ 0.7)",
                      StrFormat("%.4f", floor)});
        drill.AddRow({"floor cleared",
                      r.availability > floor ? "yes" : "NO"});
        drill.Print(
            "E19b: cell 1 of 3 dies at t=7.0s, health checks lag "
            "100 ms");
        bench::Metric("e19b.availability", r.availability);
        bench::Metric("e19b.floor", floor);
        bench::Metric("e19b.dropped", static_cast<double>(r.dropped));
        bench::Metric("e19b.conservation_ok",
                      r.arrived == r.completed + r.dropped + r.shed
                          ? 1.0 : 0.0);
        std::printf(
            "\nThe router's lagged health belief keeps landing "
            "requests on the dead cell\nfor up to one check interval "
            "— those drop there; the survivors absorb the\nrest and "
            "availability stays far above the iid N+k floor.\n\n");
    }

    // --- E19c: canary rollout timeline -------------------------------
    {
        constexpr double kDuration = 9.0;
        TenantConfig web = tenant;
        web.arrival_rate = 0.5 * 3.0 * cell_rps;

        auto rollout = [&](double latency_scale) {
            ClusterConfig config;
            config.tenants = {web};
            config.num_cells = 3;
            config.devices_per_cell = 1;
            config.duration_s = kDuration;
            config.seed = 4242;
            // Round-robin keeps both sides of the soak comparison fed.
            config.policy = RoutingPolicy::kRoundRobin;
            config.canary.enabled = true;
            config.canary.latency_scale = latency_scale;
            config.canary.start_s = 1.0;
            config.canary.soak_s = 0.8;
            return RunCluster(config).value();
        };
        const ClusterResult good = rollout(1.05);
        const ClusterResult bad = rollout(6.0);

        TablePrinter timeline({"Version", "Cell", "Drain s", "Swap s",
                               "Verdict s", "Canary p95 ms",
                               "Fleet p95 ms", "Verdict"});
        for (const RolloutStep& s : good.rollout) {
            timeline.AddRow({"1.05x", StrFormat("%d", s.cell),
                             StrFormat("%.2f", s.drain_start_s),
                             StrFormat("%.2f", s.swap_s),
                             StrFormat("%.2f", s.verdict_s),
                             StrFormat("%.2f", s.canary_p95_s * 1e3),
                             StrFormat("%.2f", s.baseline_p95_s * 1e3),
                             Verdict(s)});
        }
        for (const RolloutStep& s : bad.rollout) {
            timeline.AddRow({"6x", StrFormat("%d", s.cell),
                             StrFormat("%.2f", s.drain_start_s),
                             StrFormat("%.2f", s.swap_s),
                             StrFormat("%.2f", s.verdict_s),
                             StrFormat("%.2f", s.canary_p95_s * 1e3),
                             StrFormat("%.2f", s.baseline_p95_s * 1e3),
                             Verdict(s)});
        }
        timeline.Print(
            "E19c: cell-by-cell canary, soak 0.8 s, abort at 1.5x "
            "fleet p95");
        std::printf(
            "\n1.05x rollout: %s. 6x rollout: %s after %zu step%s.\n",
            good.rollout_complete ? "promoted fleet-wide"
                                  : "incomplete",
            bad.rollout_aborted ? "caught and aborted" : "NOT caught",
            bad.rollout.size(), bad.rollout.size() == 1 ? "" : "s");
        bench::Metric("e19c.good_promoted",
                      static_cast<double>(good.rollout.size()));
        bench::Metric("e19c.good_complete",
                      good.rollout_complete ? 1.0 : 0.0);
        bench::Metric("e19c.bad_aborted",
                      bad.rollout_aborted ? 1.0 : 0.0);
        bench::Metric("e19c.bad_steps",
                      static_cast<double>(bad.rollout.size()));
    }

    return 0;
}
