/**
 * @file
 * E8 — CMEM capacity sensitivity: per-app speedup vs a CMEM-less TPUv4i
 * as the on-chip common memory sweeps 0 -> 256 MiB. The paper sized
 * CMEM at 128 MiB; the knee of this curve is why.
 */
#include "bench/bench_util.h"

int
main()
{
    using namespace t4i;
    bench::Banner("E8", "Performance sensitivity to CMEM capacity");

    const ChipConfig chip = Tpu_v4i();
    const std::vector<int64_t> sizes_mib = {0, 16, 32, 64, 96, 128,
                                            192, 256};

    std::vector<std::string> header = {"App"};
    for (int64_t m : sizes_mib) {
        header.push_back(StrFormat("%lld MiB",
                                   static_cast<long long>(m)));
    }
    TablePrinter table(header);
    TablePrinter traffic(header);

    std::vector<std::vector<double>> speedups(
        sizes_mib.size());  // per size, across apps
    std::vector<std::vector<double>> traffic_cut(sizes_mib.size());

    for (const auto& app : ProductionApps()) {
        std::vector<std::string> row = {app.name};
        std::vector<std::string> trow = {app.name};
        double base = 0.0;
        for (size_t i = 0; i < sizes_mib.size(); ++i) {
            auto run = bench::Run(app.graph, chip, app.typical_batch,
                                  DType::kBf16, 3, 1,
                                  sizes_mib[i] * kMiB);
            const double hbm = static_cast<double>(
                run.result.engine(Engine::kHbm).bytes);
            if (i == 0) base = run.result.latency_s;
            const double speedup = base / run.result.latency_s;
            speedups[i].push_back(speedup);
            traffic_cut[i].push_back(hbm / (1 << 20));
            row.push_back(StrFormat("%.2fx", speedup));
            trow.push_back(StrFormat("%.0f", hbm / (1 << 20)));
        }
        table.AddRow(row);
        traffic.AddRow(trow);
    }
    std::vector<std::string> geo = {"GEOMEAN"};
    std::vector<std::string> tgeo = {"TOTAL"};
    for (size_t i = 0; i < sizes_mib.size(); ++i) {
        geo.push_back(StrFormat("%.2fx", GeoMean(speedups[i])));
        double total = 0.0;
        for (double mib : traffic_cut[i]) total += mib;
        tgeo.push_back(StrFormat("%.0f", total));
    }
    table.AddRow(geo);
    traffic.AddRow(tgeo);
    table.Print("E8a: speedup vs CMEM=0 at typical batch (bf16, O3)");
    traffic.Print("E8b: HBM traffic per batch (MiB) vs CMEM capacity");

    std::printf("\nShape to check: latency gains are modest-but-real for "
                "the bandwidth-sensitive\napps (MLPs, CNNs) and taper "
                "past ~128 MiB; the HBM *traffic* curve is the\nsizing "
                "driver — it collapses by multiples until each app's hot "
                "set (weights +\nspilled activations) fits, buying "
                "multi-tenant and model-growth headroom on a\nchip with "
                "2/3 of TPUv3's bandwidth. Both views flatten beyond "
                "128 MiB,\njustifying the paper's choice.\n");
    return 0;
}
