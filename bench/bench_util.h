/**
 * @file
 * Shared helpers for the experiment benches (E1..E16). Each bench binary
 * regenerates one table/figure of the paper; these helpers provide the
 * common compile-and-simulate plumbing so the benches stay declarative.
 */
#ifndef T4I_BENCH_BENCH_UTIL_H
#define T4I_BENCH_BENCH_UTIL_H

#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/obs/export.h"
#include "src/obs/registry.h"
#include "src/tpu4sim.h"

namespace t4i {
namespace bench {

namespace internal {

inline std::string&
BenchId()
{
    static std::string id;
    return id;
}

/** atexit hook: one `BENCH_JSON {...}` line with every metric the
 *  bench recorded, for tools/run_all.sh to collect. */
inline void
EmitBenchJson()
{
    std::printf("BENCH_JSON %s\n",
                obs::MetricsToBenchJsonLine(
                    BenchId(), obs::MetricsRegistry::Global())
                    .c_str());
    std::fflush(stdout);
}

}  // namespace internal

/** A compiled-and-simulated run. */
struct RunOutcome {
    Program program;
    SimResult result;
};

/** Compiles and simulates, aborting on error (benches use known-good
 *  combinations; failures are bugs). */
inline RunOutcome
Run(const Graph& graph, const ChipConfig& chip, int64_t batch,
    DType dtype = DType::kBf16, int opt_level = 3, int num_chips = 1,
    int64_t cmem_override = -1)
{
    CompileOptions opts;
    opts.batch = batch;
    opts.dtype = dtype;
    opts.opt_level = opt_level;
    opts.num_chips = num_chips;
    opts.cmem_override_bytes = cmem_override;
    auto p = Compile(graph, chip, opts);
    T4I_CHECK(p.ok(), p.status().ToString().c_str());
    auto r = Simulate(p.value(), chip);
    T4I_CHECK(r.ok(), r.status().ToString().c_str());
    RecordSimMetrics(r.value());
    return {std::move(p).ConsumeValue(),
            std::move(r).ConsumeValue()};
}

/** Records a bench-specific result value (a gauge) so it lands in the
 *  bench's BENCH_JSON summary line. */
inline void
Metric(const std::string& name, double value,
       const obs::Labels& labels = {})
{
    obs::MetricsRegistry::Global().GetGauge(name, labels)->Set(value);
}

/** Preferred dtype of a chip: bf16 when available, else int8. */
inline DType
NativeDtype(const ChipConfig& chip)
{
    return chip.supports_bf16 ? DType::kBf16 : DType::kInt8;
}

/** Builds a latency table over a power-of-two batch ladder. */
inline LatencyTable
ProfileLatency(const Graph& graph, const ChipConfig& chip, DType dtype,
               int64_t max_batch = 256)
{
    LatencyTable table;
    for (int64_t b = 1; b <= max_batch; b *= 2) {
        table.AddPoint(b, Run(graph, chip, b, dtype).result.latency_s);
    }
    return table;
}

/** Throughput (samples/s) at the largest batch meeting the SLO;
 *  zero when even batch 1 misses. */
inline double
ThroughputUnderSlo(const LatencyTable& table, double slo_s)
{
    const int64_t batch = table.MaxBatchUnderSlo(slo_s);
    return batch > 0 ? table.ThroughputAt(batch) : 0.0;
}

/** Prints the standard bench banner and arranges for a single
 *  machine-readable `BENCH_JSON {...}` summary line at exit. */
inline void
Banner(const std::string& id, const std::string& title)
{
    if (internal::BenchId().empty()) {
        internal::BenchId() = id;
        std::atexit(internal::EmitBenchJson);
    }
    std::printf("==============================================================="
                "=\n%s  %s\n(tpu4sim reproduction; see EXPERIMENTS.md "
                "for the paper-vs-model comparison)\n"
                "==============================================================="
                "=\n",
                id.c_str(), title.c_str());
}

}  // namespace bench
}  // namespace t4i

#endif  // T4I_BENCH_BENCH_UTIL_H
