/**
 * @file
 * E20 — adversarial load scenarios. Lesson 6's flip side: the fleet
 * must survive its clients, not just its chips. Two drills on the
 * scenario harness (src/load/ + RunScenario), the same runner the CI
 * chaos matrix drives through `t4sim_cli check --scenario`:
 *
 *  a) retry-storm backoff discipline — a flash crowd trips client
 *     timeouts on a lightly loaded two-cell fleet; with fixed backoff
 *     every timed-out client hammers back in lockstep and the storm
 *     is metastable (the pager stays lit long after the crowd is
 *     gone), while jittered exponential backoff de-correlates the
 *     herd and the fleet walks itself back under the page threshold;
 *  b) flash-crowd magnitude x routing policy — the same crowd at
 *     absorbable and overwhelming multipliers under each routing
 *     policy: sheds, availability, and the windowed goodput trough
 *     show which policy breaks first and how deep the hole gets.
 */
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/cluster/scenario_run.h"
#include "src/common/strings.h"
#include "src/common/table.h"
#include "src/load/scenario.h"
#include "src/obs/registry.h"

namespace {

using namespace t4i;

/** The tuned metastable retry-storm scenario (scenarios/retry_storm_
 *  *.scn keep the CI-asserted copies); only the backoff law varies. */
std::string
RetryStormText(const std::string& backoff)
{
    return "scenario retry-storm-" + backoff +
           "\n"
           "duration 3.0\n"
           "seed 1007\n"
           "cells 2\n"
           "devices 1\n"
           "policy least-loaded\n"
           "window 0.05\n"
           "tenant api load=0.15 deadline=0.05 max-queue=128\n"
           "arrivals poisson\n"
           "flash-crowd tenant=api at=0.4 ramp=0.1 hold=0.4 mult=18\n"
           "retry-storm timeout=0.015 backoff=" +
           backoff +
           " base=0.04 max-retries=24\n"
           "alert page slo.page{slo=api-avail} > 0.5 for 0\n"
           "slo api-avail tenant=api avail=0.97 horizon=3 fast=0.1 "
           "slow=0.5 page=2\n";
}

/** Flash crowd at a configurable multiplier (scenarios/flash_crowd
 *  *.scn hold the asserted 1.8x / 5x endpoints). */
std::string
FlashCrowdText(double mult)
{
    return "scenario flash-crowd\n"
           "duration 2.0\n"
           "seed 314\n"
           "cells 2\n"
           "devices 1\n"
           "policy least-loaded\n"
           "window 0.05\n"
           "tenant web load=0.5 deadline=0.05 max-queue=128\n"
           "arrivals poisson\n"
           "flash-crowd tenant=web at=0.6 ramp=0.1 hold=0.4 mult=" +
           StrFormat("%g", mult) +
           "\n"
           "alert crowd-shed cluster.shed > 500 for 0\n";
}

ScenarioOutcome
RunText(const std::string& text, const std::string& policy)
{
    auto scenario = load::ParseScenario(text);
    T4I_CHECK(scenario.ok(), scenario.status().ToString().c_str());
    obs::MetricsRegistry registry;
    ScenarioRunOptions options;
    options.registry = &registry;
    options.build_report = false;
    // Forensics would trace every request and shift E20's pinned
    // metric set; the sampler's own cost is E21's bench.
    options.forensics = false;
    options.policy_override = policy;
    auto outcome = RunScenario(scenario.value(), options);
    T4I_CHECK(outcome.ok(), outcome.status().ToString().c_str());
    T4I_CHECK(outcome.value().conservation_ok,
              "scenario books do not balance");
    return std::move(outcome).ConsumeValue();
}

double
WallSeconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

std::string
FiredOrQuiet(const ScenarioOutcome& o)
{
    if (o.fired.empty()) return "-";
    std::string joined;
    for (const std::string& name : o.fired) {
        if (!joined.empty()) joined += ",";
        joined += name;
    }
    return joined;
}

}  // namespace

int
main()
{
    bench::Banner("E20",
                  "Adversarial load: retry storms and flash crowds");
    const double t0 = WallSeconds();

    // --- E20a: retry-storm backoff discipline ------------------------
    {
        TablePrinter storms({"Backoff", "Avail", "Client retries",
                             "Paged at s", "End state",
                             "Goodput trough rps"});
        for (const char* backoff :
             {"fixed", "exponential", "exp-jitter"}) {
            const ScenarioOutcome o =
                RunText(RetryStormText(backoff), "");
            const ClusterResult& r = o.cluster;
            storms.AddRow({
                backoff,
                StrFormat("%.4f", r.availability),
                StrFormat("%lld",
                          static_cast<long long>(o.client_retries)),
                o.time_to_first_alert_s < 0.0
                    ? "-"
                    : StrFormat("%.3f", o.time_to_first_alert_s),
                o.fired.empty() ? "quiet" : "PAGING",
                StrFormat("%.0f", o.goodput_trough_rps),
            });
            const obs::Labels labels = {{"backoff", backoff}};
            bench::Metric("e20a.availability", r.availability,
                          labels);
            bench::Metric("e20a.client_retries",
                          static_cast<double>(o.client_retries),
                          labels);
            bench::Metric("e20a.paged_at_end",
                          o.fired.empty() ? 0.0 : 1.0, labels);
            bench::Metric("e20a.goodput_trough_rps",
                          o.goodput_trough_rps, labels);
        }
        storms.Print(
            "E20a: one flash crowd, three backoff laws (2 cells, "
            "7.5% base load, timeout 15 ms, 24 retries)");
        std::printf(
            "Fixed backoff re-synchronizes the timed-out herd: the "
            "offered rate stays pinned above\ncapacity until every "
            "client exhausts its retry budget, and the pager is "
            "still lit at the\nend of the run. Jitter spreads the "
            "same retry budget thin enough to drain.\n\n");
    }

    // --- E20b: flash-crowd magnitude x routing policy ----------------
    {
        TablePrinter crowds({"Mult", "Policy", "Avail", "Shed",
                             "Goodput trough rps", "Alerts"});
        for (const double mult : {1.8, 5.0}) {
            for (const char* policy :
                 {"least-loaded", "p2c", "round-robin"}) {
                const ScenarioOutcome o =
                    RunText(FlashCrowdText(mult), policy);
                const ClusterResult& r = o.cluster;
                crowds.AddRow({
                    StrFormat("%.1fx", mult),
                    policy,
                    StrFormat("%.4f", r.availability),
                    StrFormat("%lld", static_cast<long long>(
                                          r.shed + r.router_shed)),
                    StrFormat("%.0f", o.goodput_trough_rps),
                    FiredOrQuiet(o),
                });
                const obs::Labels labels = {
                    {"mult", StrFormat("%.1f", mult)},
                    {"policy", policy}};
                bench::Metric("e20b.availability", r.availability,
                              labels);
                bench::Metric(
                    "e20b.shed",
                    static_cast<double>(r.shed + r.router_shed),
                    labels);
                bench::Metric("e20b.goodput_trough_rps",
                              o.goodput_trough_rps, labels);
            }
        }
        crowds.Print(
            "E20b: flash crowd at absorbable (1.8x) and "
            "overwhelming (5x) multipliers per policy");
        std::printf(
            "At 1.8x every policy absorbs the crowd without "
            "shedding; at 5x the door sheds protect\nthe SLO and the "
            "goodput trough marks how deep the crowd bites per "
            "policy.\n\n");
    }

    // Host wall-clock, not modeled time: on the perf gate ignore list.
    bench::Metric("e20.wall_seconds", WallSeconds() - t0);
    return 0;
}
