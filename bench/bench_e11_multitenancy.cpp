/**
 * @file
 * E11 — Lesson 7 figure: multi-tenancy. One TPUv4i serves 1..8 tenants
 * drawn from the production mix, either with CMEM partitioned per
 * tenant (isolated, no switch cost) or with tenants swapping the full
 * CMEM on every switch (re-staging pinned weights from HBM).
 */
#include "bench/bench_util.h"

namespace {

using namespace t4i;

struct TenantSetup {
    std::string name;
    double exec_b1_ms;
    LatencyTable table;
    double slo_s;
    int64_t max_batch;
};

}  // namespace

int
main()
{
    bench::Banner("E11", "Multi-tenant serving on one TPUv4i");

    const ChipConfig chip = Tpu_v4i();
    // Representative co-locatable tenants: sub-millisecond models with
    // compatible SLOs. (Long-recurrence RNNs and the giant MLPs live on
    // dedicated fleets precisely because one 12 ms RNN batch would eat
    // a co-tenant CNN's whole 5 ms SLO.)
    const std::vector<std::string> pool = {"CNN1", "BERT0", "CNN0",
                                           "BERT0"};

    TablePrinter table({"Tenants", "Mode", "Agg inf/s", "Worst p99 ms",
                        "Worst SLO miss %", "Switch overhead %"});

    for (int n : {1, 2, 4, 8}) {
        for (bool partitioned : {true, false}) {
            std::vector<TenantConfig> tenants;
            std::vector<LatencyTable> tables(static_cast<size_t>(n));
            for (int i = 0; i < n; ++i) {
                auto app = BuildApp(pool[static_cast<size_t>(i) %
                                         pool.size()]).value();
                // Partitioned mode compiles each tenant against its
                // CMEM slice; swap mode uses the full CMEM but pays to
                // re-stage pinned bytes on a tenant switch.
                const int64_t cmem =
                    partitioned ? chip.cmem_bytes / n : chip.cmem_bytes;
                LatencyTable& lt = tables[static_cast<size_t>(i)];
                int64_t pinned = 0;
                for (int64_t b = 1; b <= 64; b *= 2) {
                    auto run = bench::Run(app.graph, chip, b,
                                          DType::kBf16, 3, 1, cmem);
                    lt.AddPoint(b, run.result.latency_s);
                    pinned = run.program.memory.weight_bytes_cmem;
                }
                TenantConfig t;
                t.name = app.name + "#" + std::to_string(i);
                LatencyTable* lt_ptr = &lt;
                t.latency_s = [lt_ptr](int64_t b) {
                    return lt_ptr->Eval(b);
                };
                t.slo_s = app.slo_ms * 1e-3;
                // Co-tenant batches are capped so one tenant's batch
                // cannot alone consume most of another's SLO (the
                // scheduler's co-tenancy policy).
                t.max_batch = std::max<int64_t>(
                    1, lt.MaxBatchUnderSlo(0.5 * t.slo_s));
                // Each tenant offers an equal slice of ~40% of one
                // solo tenant's capacity.
                t.arrival_rate = 0.4 *
                                 lt.ThroughputAt(t.max_batch) /
                                 static_cast<double>(n);
                // Swapping re-stages the pinned working set from HBM
                // and reloads the device program (fixed driver cost).
                t.switch_penalty_s =
                    partitioned ? 0.0
                                : static_cast<double>(pinned) /
                                          chip.dram_bw_Bps +
                                      0.5e-3;
                tenants.push_back(std::move(t));
            }
            auto result = RunServing(tenants, 10.0, 4242).value();
            double agg = 0.0;
            double worst_p99 = 0.0;
            double worst_miss = 0.0;
            for (const auto& t : result.tenants) {
                agg += t.throughput_rps;
                worst_p99 = std::max(worst_p99, t.p99_latency_s);
                worst_miss = std::max(worst_miss, t.slo_miss_fraction);
            }
            table.AddRow({
                StrFormat("%d", n),
                partitioned ? "partitioned CMEM" : "swap on switch",
                StrFormat("%.0f", agg),
                StrFormat("%.2f", worst_p99 * 1e3),
                StrFormat("%.1f", 100.0 * worst_miss),
                StrFormat("%.1f",
                          100.0 * result.switch_overhead_fraction),
            });
        }
    }
    table.Print("E11: tenants vs tail latency, by CMEM policy");

    std::printf("\nShape to check: with partitioning, p99 degrades "
                "gracefully as tenants share\nthe device; the swap policy "
                "burns bandwidth re-staging weights and its tail\nblows "
                "up first — why production multi-tenancy shaped the "
                "memory system\n(Lesson 7).\n");
    return 0;
}
