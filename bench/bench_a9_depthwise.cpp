/**
 * @file
 * A9 (extension/ablation) — depthwise convolutions on a systolic
 * array: MobileNet-class edge models execute their depthwise layers as
 * blocked-diagonal matmuls, wasting ~(channels)x of the array. Compare
 * a MobileNet-style model against a dense CNN of similar accuracy
 * class, per chip — the workload-evolution pressure (Lesson 9) from
 * the *efficient-models* direction.
 */
#include "bench/bench_util.h"

int
main()
{
    using namespace t4i;
    bench::Banner("A9", "Depthwise convolutions vs the systolic array");

    Graph mobilenet = BuildMobileNetish("MobileNet");
    Graph resnet = BuildResNet50();
    auto cost_m =
        mobilenet.Cost(1, DType::kBf16, DType::kBf16).value();
    auto cost_r = resnet.Cost(1, DType::kBf16, DType::kBf16).value();
    std::printf("MobileNet: %.2f GFLOPs/sample, %s weights | "
                "ResNet-50: %.2f GFLOPs, %s\n",
                cost_m.total_flops / 1e9,
                HumanBytes(static_cast<double>(
                    cost_m.weight_bytes)).c_str(),
                cost_r.total_flops / 1e9,
                HumanBytes(static_cast<double>(
                    cost_r.weight_bytes)).c_str());

    TablePrinter table({"Model", "Chip", "Latency ms", "inf/s",
                        "MXU util %", "GFLOPs/sample"});
    for (const auto& chip : {Tpu_v4i(), GpuT4()}) {
        const DType dtype = chip.name == "T4" ? DType::kInt8
                                              : DType::kBf16;
        const std::pair<const char*, Graph*> models[] = {
            {"MobileNet", &mobilenet}, {"ResNet-50", &resnet}};
        for (const auto& entry : models) {
            auto run = bench::Run(*entry.second, chip, 16, dtype);
            table.AddRow({
                entry.first,
                chip.name,
                StrFormat("%.2f", run.result.latency_s * 1e3),
                StrFormat("%.0f", 16.0 / run.result.latency_s),
                StrFormat("%.1f", 100.0 * run.result.mxu_utilization),
                StrFormat("%.2f", (entry.first[0] == 'M'
                                       ? cost_m.total_flops
                                       : cost_r.total_flops) / 1e9),
            });
        }
    }
    table.Print("A9: depthwise-separable vs dense CNN (batch 16)");

    std::printf("\nShape to check: MobileNet needs ~14x fewer FLOPs than "
                "ResNet-50 but recovers\nonly a fraction of that as "
                "speedup on the MXUs — its depthwise layers run\nat "
                "~1/channels array utilization. The op mix the edge "
                "world optimized for\nis exactly wrong for a systolic "
                "datacenter chip (Lesson 9's other face).\n");
    return 0;
}
