/**
 * @file
 * E18 — Span-based latency breakdown vs load (Lesson 10). The E07
 * latency knee says *when* latency explodes with load; the per-request
 * span trees say *where* the time goes: the queue / batch / execute
 * children tile each request's root span exactly, so aggregating the
 * first 256 traces at several load points turns "p95 is 2x p50" into
 * "the extra time is queue wait, not device time".
 */
#include "bench/bench_util.h"

#include <map>

#include "src/obs/spans.h"

int
main()
{
    using namespace t4i;
    bench::Banner("E18",
                  "Span-tree latency breakdown vs load (Lesson 10)");

    const ChipConfig chip = Tpu_v4i();
    const std::vector<App> apps = ProductionApps();
    const App* bert = nullptr;
    for (const auto& app : apps) {
        if (app.name == "BERT0") bert = &app;
    }
    T4I_CHECK(bert != nullptr, "BERT0 missing from the zoo");

    // Capacity profile: largest batch under the SLO on one device.
    LatencyTable table;
    for (int64_t b = 1; b <= 64; b *= 2) {
        table.AddPoint(
            b, bench::Run(bert->graph, chip, b).result.latency_s);
    }
    const double slo_s = bert->slo_ms * 1e-3;
    int64_t slo_batch = table.MaxBatchUnderSlo(slo_s);
    if (slo_batch <= 0) slo_batch = 1;
    const double capacity_rps = table.ThroughputAt(slo_batch);

    TablePrinter out({"Load", "Traced", "Mean ms", "Queue %",
                      "Batch %", "Execute %"});

    for (double load : {0.3, 0.9, 1.2}) {
        TenantConfig tenant;
        tenant.name = bert->name;
        tenant.latency_s = [table](int64_t batch) {
            return table.Eval(batch);
        };
        tenant.max_batch = slo_batch;
        tenant.slo_s = slo_s;
        tenant.arrival_rate = std::max(1.0, load * capacity_rps);

        obs::SpanCollector spans;
        ServingTelemetry telemetry;
        telemetry.spans = &spans;
        telemetry.max_traced_requests_per_tenant = 256;
        auto r = RunServingCell({tenant}, 1, 2.0, 42, telemetry);
        T4I_CHECK(r.ok(), r.status().ToString().c_str());
        T4I_CHECK(spans.CheckIntegrity().ok(),
                  spans.CheckIntegrity().message().c_str());

        // Aggregate the direct children of every closed root span:
        // they tile the root, so per-name sums over the root total
        // are the "where did the time go" shares.
        double root_total_s = 0.0;
        int64_t traced = 0;
        std::map<std::string, double> child_s;
        for (const obs::Span* root : spans.Roots()) {
            if (root->open) continue;
            ++traced;
            root_total_s += root->duration_s();
            for (const obs::Span* child :
                 spans.ChildrenOf(root->span_id)) {
                if (child->open) continue;
                child_s[child->name] += child->duration_s();
            }
        }
        T4I_CHECK(traced > 0, "no closed request traces");

        const double mean_ms =
            root_total_s / static_cast<double>(traced) * 1e3;
        auto share = [&](const char* name) {
            return root_total_s > 0.0 ? child_s[name] / root_total_s
                                      : 0.0;
        };
        const std::string label = StrFormat("%.1f", load);
        bench::Metric("e18.traced", static_cast<double>(traced),
                      {{"load", label}});
        bench::Metric("e18.mean_latency_ms", mean_ms,
                      {{"load", label}});
        bench::Metric("e18.queue_share", share("queue"),
                      {{"load", label}});
        bench::Metric("e18.batch_share", share("batch"),
                      {{"load", label}});
        bench::Metric("e18.execute_share", share("execute"),
                      {{"load", label}});
        out.AddRow({label,
                    StrFormat("%lld", static_cast<long long>(traced)),
                    StrFormat("%.2f", mean_ms),
                    StrFormat("%.1f", share("queue") * 100.0),
                    StrFormat("%.1f", share("batch") * 100.0),
                    StrFormat("%.1f", share("execute") * 100.0)});
    }
    out.Print(StrFormat(
        "E18: first-256-trace latency breakdown on a 1-device BERT0 "
        "cell (SLO batch %lld, capacity %.0f inf/s)",
        static_cast<long long>(slo_batch), capacity_rps));

    std::printf("\nShape to check: mean latency grows ~10x from 0.3 "
                "to 1.2 load while the\nexecute share barely moves — "
                "the E07 knee is queueing, not device time,\nand the "
                "span attribution shows it per request.\n");
    return 0;
}
