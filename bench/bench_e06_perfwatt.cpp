/**
 * @file
 * E6 — the headline figure: TPUv4i performance and performance/TDP vs
 * TPUv3 and the T4-class GPU on the production apps.
 */
#include "bench/bench_util.h"

int
main()
{
    using namespace t4i;
    bench::Banner("E6", "Perf and perf/TDP: TPUv4i vs TPUv3 vs T4");

    const ChipConfig v3 = Tpu_v3();
    const ChipConfig v4i = Tpu_v4i();
    const ChipConfig t4 = GpuT4();

    TablePrinter table({"App", "v3 inf/s", "v4i inf/s", "T4 inf/s",
                        "v4i/v3 perf", "v4i/T4 perf", "v4i/v3 perf/W",
                        "v4i/T4 perf/W"});
    std::vector<double> perf_v3;
    std::vector<double> perf_t4;
    std::vector<double> pw_v3;
    std::vector<double> pw_t4;

    for (const auto& app : ProductionApps()) {
        const int64_t batch = app.typical_batch;
        const double b = static_cast<double>(batch);
        const double ips_v3 =
            b / bench::Run(app.graph, v3, batch).result.latency_s;
        const double ips_v4i =
            b / bench::Run(app.graph, v4i, batch).result.latency_s;
        // The GPU runs its best datapath (int8 tensor cores).
        const double ips_t4 =
            b / bench::Run(app.graph, t4, batch, DType::kInt8)
                    .result.latency_s;

        const double r_perf_v3 = ips_v4i / ips_v3;
        const double r_perf_t4 = ips_v4i / ips_t4;
        const double r_pw_v3 =
            (ips_v4i / v4i.tdp_w) / (ips_v3 / v3.tdp_w);
        const double r_pw_t4 =
            (ips_v4i / v4i.tdp_w) / (ips_t4 / t4.tdp_w);
        perf_v3.push_back(r_perf_v3);
        perf_t4.push_back(r_perf_t4);
        pw_v3.push_back(r_pw_v3);
        pw_t4.push_back(r_pw_t4);

        table.AddRow({
            app.name,
            StrFormat("%.0f", ips_v3),
            StrFormat("%.0f", ips_v4i),
            StrFormat("%.0f", ips_t4),
            StrFormat("%.2fx", r_perf_v3),
            StrFormat("%.2fx", r_perf_t4),
            StrFormat("%.2fx", r_pw_v3),
            StrFormat("%.2fx", r_pw_t4),
        });
    }
    table.AddRow({
        "GEOMEAN", "", "", "",
        StrFormat("%.2fx", GeoMean(perf_v3)),
        StrFormat("%.2fx", GeoMean(perf_t4)),
        StrFormat("%.2fx", GeoMean(pw_v3)),
        StrFormat("%.2fx", GeoMean(pw_t4)),
    });
    table.Print("E6: throughput at typical batch; TDP-normalized ratios");

    std::printf("\nShape to check: TPUv4i roughly matches TPUv3's "
                "per-chip perf (one TensorCore\nvs two) but wins big on "
                "perf/TDP (175 W vs 450 W) — the paper's ~2.3x.\n"
                "Against the 70 W T4 it wins >2x on absolute per-chip "
                "perf at near-parity\nperf/TDP, which is what lets one "
                "host serve the same traffic with fewer\naccelerators "
                "(the perf/TCO argument of Lesson 3).\n");
    return 0;
}
