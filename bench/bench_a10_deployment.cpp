/**
 * @file
 * A10 (Lesson 4) — deployment velocity: calendar days from trained
 * checkpoint to full production rollout, per app, on the int8-only
 * TPUv1 vs the bf16-capable TPUv4i. The int8 detour (PTQ calibration,
 * and QAT retraining whenever the measured end-to-end PTQ fidelity
 * misses the sign-off bar) is where Lesson 4's weeks go.
 */
#include "bench/bench_util.h"

#include "src/fleet/deployment.h"

int
main()
{
    using namespace t4i;
    bench::Banner("A10",
                  "Deployment velocity: bf16 chip vs int8-only chip");

    DeploymentParams params;
    TablePrinter table({"App", "Domain", "v4i days", "v1 days",
                        "v1 path", "proxy int8 SQNR dB"});
    double total_v4i = 0.0;
    double total_v1 = 0.0;
    for (const auto& app : ProductionApps()) {
        auto v4i = PlanDeployment(app, Tpu_v4i(), params).value();
        auto v1 = PlanDeployment(app, Tpu_v1(), params).value();
        total_v4i += v4i.days;
        total_v1 += v1.days;
        table.AddRow({
            app.name,
            AppDomainName(app.domain),
            StrFormat("%.1f", v4i.days),
            StrFormat("%.1f", v1.days),
            v1.needs_qat ? "PTQ + QAT retrain"
                         : (v1.needs_ptq ? "PTQ only" : "direct"),
            StrFormat("%.1f", v1.measured_sqnr_db),
        });
    }
    table.AddRow({"TOTAL", "", StrFormat("%.1f", total_v4i),
                  StrFormat("%.1f", total_v1), "",
                  StrFormat("bar: %.0f", params.required_sqnr_db)});
    table.Print("A10: days from trained checkpoint to full rollout");

    std::printf("\nShape to check: every app ships in ~5 days on the "
                "bf16 chip; the int8-only\nchip adds a PTQ week "
                "everywhere and a three-week QAT retrain wherever "
                "the\nmeasured end-to-end PTQ fidelity misses the bar "
                "(the conv and attention\nclasses here) — %.1fx slower "
                "fleet-wide. That velocity gap is Lesson 4's\nargument "
                "for backwards ML compatibility.\n",
                total_v1 / total_v4i);
    return 0;
}
