/**
 * @file
 * A8 (ablation) — CMEM allocation policy: the default planner ranks
 * candidates by HBM bytes saved per CMEM byte; compare against naive
 * largest-first and program-order policies at a constrained budget
 * (32 MiB, where the choice matters most).
 */
#include "bench/bench_util.h"

#include <map>

int
main()
{
    using namespace t4i;
    bench::Banner("A8", "CMEM allocation policy ablation (32 MiB)");

    const ChipConfig chip = Tpu_v4i();
    const int64_t budget = 32 * kMiB;
    const CmemPolicy policies[] = {
        CmemPolicy::kByBandwidthSaved,
        CmemPolicy::kBySize,
        CmemPolicy::kByProgramOrder,
    };

    TablePrinter table({"App", "Policy", "Latency ms",
                        "HBM MiB/batch", "Pinned W MiB",
                        "Staged act MiB"});
    std::map<CmemPolicy, std::vector<double>> hbm_totals;
    for (const auto& app : ProductionApps()) {
        for (CmemPolicy policy : policies) {
            CompileOptions opts;
            opts.batch = app.typical_batch;
            opts.cmem_override_bytes = budget;
            opts.cmem_policy = policy;
            auto prog = Compile(app.graph, chip, opts).value();
            auto run = Simulate(prog, chip).value();
            const double hbm_mib =
                static_cast<double>(run.engine(Engine::kHbm).bytes) /
                (1 << 20);
            hbm_totals[policy].push_back(hbm_mib + 1.0);
            table.AddRow({
                app.name,
                CmemPolicyName(policy),
                StrFormat("%.2f", run.latency_s * 1e3),
                StrFormat("%.0f", hbm_mib),
                StrFormat("%.1f",
                          static_cast<double>(
                              prog.memory.weight_bytes_cmem) /
                              (1 << 20)),
                StrFormat("%.1f",
                          static_cast<double>(
                              prog.memory.activation_bytes_cmem) /
                              (1 << 20)),
            });
        }
    }
    table.Print("A8: per-app behavior by allocation policy");

    std::printf("\nGeomean HBM traffic (MiB+1) per batch:\n");
    for (CmemPolicy policy : policies) {
        std::printf("  %-16s %.1f\n", CmemPolicyName(policy),
                    GeoMean(hbm_totals[policy]));
    }
    std::printf("\nShape to check: bandwidth-saved allocation moves the "
                "least HBM traffic at\nthe same budget; largest-first "
                "wastes capacity on embedding tables that are\nbarely "
                "touched, and program-order pins whatever came first — "
                "the design\nchoice the planner encodes.\n");
    return 0;
}
