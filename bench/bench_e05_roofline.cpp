/**
 * @file
 * E5 — the roofline figure: TPUv3 and TPUv4i rooflines with the eight
 * production apps plotted at their model operational intensity
 * (FLOPs per byte of weights + activations touched, the paper's x-axis)
 * and their achieved (simulated) performance. For TPUv4i the table also
 * reports the *effective* intensity against HBM after CMEM pinning —
 * the mechanism that slides low-intensity apps up the roof.
 */
#include "bench/bench_util.h"

namespace {

void
PlotChip(const t4i::ChipConfig& chip)
{
    using namespace t4i;
    Roofline roof = BuildRoofline(chip, DType::kBf16);
    std::vector<RooflinePoint> points;
    TablePrinter table({"App", "Raw FLOPs/HBM-B", "Eff FLOPs/HBM-B",
                        "Achieved TFLOPS", "Roof @raw-I", "% of roof",
                        "Regime"});
    for (const auto& app : ProductionApps()) {
        auto run = bench::Run(app.graph, chip, app.typical_batch);
        // Placement intensity: FLOPs per byte of HBM traffic the app
        // would move *without* CMEM — the paper's x-axis. CMEM then
        // lifts achieved points above this roof.
        auto raw = bench::Run(app.graph, chip, app.typical_batch,
                              DType::kBf16, 3, 1, /*cmem=*/0);
        const double raw_hbm = static_cast<double>(
            raw.result.engine(Engine::kHbm).bytes);
        const double model_intensity =
            raw_hbm > 0 ? 2.0 * raw.result.total_macs / raw_hbm : 1e6;
        const double hbm = static_cast<double>(
            run.result.engine(Engine::kHbm).bytes);
        const double eff_intensity =
            hbm > 0 ? 2.0 * run.result.total_macs / hbm : 1e6;
        points.push_back(
            {app.name, model_intensity, run.result.achieved_flops});
        const double roof_here = roof.Attainable(model_intensity);
        table.AddRow({
            app.name,
            StrFormat("%.1f", model_intensity),
            eff_intensity < 1e6 ? StrFormat("%.0f", eff_intensity)
                                : std::string(">1e6"),
            StrFormat("%.2f", run.result.achieved_flops / 1e12),
            StrFormat("%.2f", roof_here / 1e12),
            StrFormat("%.0f%%",
                      100.0 * run.result.achieved_flops / roof_here),
            run.result.achieved_flops > roof_here * 1.001
                ? "CMEM-lifted"
                : (model_intensity < roof.ridge_ops_per_byte
                       ? "memory"
                       : "compute"),
        });
    }
    std::printf("\n%s\n", RenderRoofline(roof, points).c_str());
    table.Print(StrFormat("E5: %s roofline placement (typical batch)",
                          chip.name.c_str()));
}

}  // namespace

int
main()
{
    t4i::bench::Banner("E5",
                       "Rooflines of TPUv3 and TPUv4i with the 8 apps");
    PlotChip(t4i::Tpu_v3());
    PlotChip(t4i::Tpu_v4i());
    std::printf("\nShape to check: the MLPs sit left of the ridge (memory "
                "regime) on both chips;\nCNNs and BERTs sit past it. On "
                "TPUv4i the CMEM lifts the *effective*\nFLOPs-per-HBM-byte "
                "of pinned apps by orders of magnitude (compare columns\n"
                "2 and 3), which is how a chip with 2/3 of TPUv3's HBM "
                "bandwidth still\nmatches or beats it per chip. The gap "
                "between achieved and roof on the\ncompute side is the "
                "systolic fill/drain cost of small per-pass row counts\n"
                "(worst for the recurrent apps).\n");
    return 0;
}
