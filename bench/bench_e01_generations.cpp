/**
 * @file
 * E1 — Table 1: key characteristics of the TPU generations (TPUv1, v2,
 * v3, v4i, v4) plus the NVIDIA T4-class baseline.
 */
#include "bench/bench_util.h"

int
main()
{
    using namespace t4i;
    bench::Banner("E1", "Key characteristics of the TPU generations");

    TablePrinter table({"Chip", "Year", "Node", "Die mm^2", "MHz",
                        "bf16 TFLOPS", "int8 TOPS", "On-chip MiB",
                        "DRAM", "GB/s", "ICI", "TDP W", "Idle W",
                        "Cooling"});
    for (const auto& chip : ChipCatalog()) {
        const double bf16 = chip.PeakFlops(DType::kBf16) / 1e12;
        const double int8 = chip.PeakFlops(DType::kInt8) / 1e12;
        table.AddRow({
            chip.name,
            StrFormat("%d", chip.year),
            StrFormat("%d nm", chip.tech_nm),
            StrFormat("< %.0f", chip.die_mm2),
            StrFormat("%.0f", chip.clock_hz / 1e6),
            bf16 > 0 ? StrFormat("%.1f", bf16) : std::string("--"),
            int8 > 0 ? StrFormat("%.1f", int8) : std::string("--"),
            StrFormat("%.0f", static_cast<double>(chip.OnChipBytes()) /
                                  (1 << 20)),
            HumanBytes(static_cast<double>(chip.dram_bytes), 0),
            StrFormat("%.0f", chip.dram_bw_Bps / 1e9),
            chip.ici_links > 0
                ? StrFormat("%d x %.0f GB/s", chip.ici_links,
                            chip.ici_bw_Bps_per_link / 1e9)
                : std::string("--"),
            StrFormat("%.0f", chip.tdp_w),
            StrFormat("%.0f", chip.idle_w),
            CoolingName(chip.cooling),
        });
    }
    table.Print("E1 / Table 1: TPU generations and the T4 baseline");

    std::printf("\nLesson anchors: TPUv4i holds 1 TensorCore (not 2), adds "
                "128 MiB CMEM,\nstays at 175 W for air cooling (Lesson 5), "
                "and keeps bf16+int8 (Lessons 4/6).\n");
    return 0;
}
