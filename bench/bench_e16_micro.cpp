/**
 * @file
 * E16 — google-benchmark microbenchmarks of the simulator itself:
 * compile throughput, simulation throughput, and the timing-model hot
 * path. Not a paper figure; keeps the tooling honest about its own
 * cost.
 */
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace {

using namespace t4i;

void
BM_CompileBert0(benchmark::State& state)
{
    auto app = BuildApp("BERT0").value();
    const ChipConfig chip = Tpu_v4i();
    CompileOptions opts;
    opts.batch = 16;
    for (auto _ : state) {
        auto p = Compile(app.graph, chip, opts);
        benchmark::DoNotOptimize(p);
    }
}
BENCHMARK(BM_CompileBert0);

void
BM_SimulateBert0(benchmark::State& state)
{
    auto app = BuildApp("BERT0").value();
    const ChipConfig chip = Tpu_v4i();
    CompileOptions opts;
    opts.batch = 16;
    auto p = Compile(app.graph, chip, opts).value();
    int64_t instrs = 0;
    for (auto _ : state) {
        auto r = Simulate(p, chip);
        benchmark::DoNotOptimize(r);
        instrs += static_cast<int64_t>(p.instrs.size());
    }
    state.SetItemsProcessed(instrs);
}
BENCHMARK(BM_SimulateBert0);

void
BM_SimulateRnn0(benchmark::State& state)
{
    // The instruction-heavy program (sequential LSTM steps).
    auto app = BuildApp("RNN0").value();
    const ChipConfig chip = Tpu_v4i();
    CompileOptions opts;
    opts.batch = 16;
    auto p = Compile(app.graph, chip, opts).value();
    int64_t instrs = 0;
    for (auto _ : state) {
        auto r = Simulate(p, chip);
        benchmark::DoNotOptimize(r);
        instrs += static_cast<int64_t>(p.instrs.size());
    }
    state.SetItemsProcessed(instrs);
}
BENCHMARK(BM_SimulateRnn0);

void
BM_MxuCycles(benchmark::State& state)
{
    const ChipConfig chip = Tpu_v4i();
    Instr instr;
    instr.engine = Engine::kMxu;
    instr.dtype = DType::kBf16;
    instr.rows = 2048;
    instr.k_tiles = 6;
    instr.n_tiles = 8;
    for (auto _ : state) {
        benchmark::DoNotOptimize(MxuCycles(chip, instr));
    }
}
BENCHMARK(BM_MxuCycles);

void
BM_ServingSim(benchmark::State& state)
{
    TenantConfig t;
    t.name = "x";
    t.latency_s = [](int64_t b) {
        return 1e-3 + 1e-4 * static_cast<double>(b);
    };
    t.max_batch = 32;
    t.slo_s = 0.01;
    t.arrival_rate = 1000.0;
    for (auto _ : state) {
        auto r = RunServing({t}, 1.0, 7);
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_ServingSim);

void
BM_QuantizeRoundTrip(benchmark::State& state)
{
    Rng rng(5);
    std::vector<float> data(static_cast<size_t>(state.range(0)));
    for (auto& x : data) {
        x = static_cast<float>(rng.NextGaussian());
    }
    for (auto _ : state) {
        auto out = FakeQuantInt8(data, QuantScheme::kSymmetric);
        benchmark::DoNotOptimize(out);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_QuantizeRoundTrip)->Arg(1 << 10)->Arg(1 << 16);

void
BM_PipelinedSim(benchmark::State& state)
{
    auto app = BuildApp("CNN0").value();
    const ChipConfig chip = Tpu_v4i();
    CompileOptions opts;
    opts.batch = 8;
    auto p = Compile(app.graph, chip, opts).value();
    for (auto _ : state) {
        auto r = SimulatePipelined(p, chip, 8);
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_PipelinedSim);

void
BM_FunctionalExecutor(benchmark::State& state)
{
    // Tiny BERT on real tensors: the semantic path's cost.
    Graph g = BuildBert("b", 1, 64, 2, 128, 8, 500);
    for (auto _ : state) {
        auto r = PrecisionLoss(g, MatmulPrecision::kBf16, 1, 3);
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_FunctionalExecutor);

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): google-benchmark owns the
// iteration loop here, so the bench emits its BENCH_JSON summary line
// itself after the benchmarks run.
int
main(int argc, char** argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
    benchmark::RunSpecifiedBenchmarks();
    std::printf("BENCH_JSON %s\n",
                t4i::obs::MetricsToBenchJsonLine(
                    "E16", t4i::obs::MetricsRegistry::Global())
                    .c_str());
    return 0;
}
