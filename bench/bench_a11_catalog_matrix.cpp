/**
 * @file
 * A11 (reference) — the whole catalog in one table: every production
 * app on every chip at its best dtype, latency at typical batch and
 * perf/TDP, with infeasible combinations called out (capacity or
 * dtype gates). The one-page summary of three TPU generations.
 */
#include "bench/bench_util.h"

int
main()
{
    using namespace t4i;
    bench::Banner("A11", "Every app x every chip, best dtype");

    auto chips = ChipCatalog();
    std::vector<std::string> header = {"App"};
    for (const auto& chip : chips) header.push_back(chip.name);
    TablePrinter latency(header);
    TablePrinter perfwatt(header);

    for (const auto& app : ProductionApps()) {
        std::vector<std::string> lat_row = {app.name};
        std::vector<std::string> pw_row = {app.name};
        for (const auto& chip : chips) {
            const DType dtype = chip.supports_int8 && !chip.supports_bf16
                                    ? DType::kInt8
                                    : (chip.name == "T4" ? DType::kInt8
                                                         : DType::kBf16);
            CompileOptions opts;
            opts.batch = app.typical_batch;
            opts.dtype = dtype;
            auto prog = Compile(app.graph, chip, opts);
            if (!prog.ok()) {
                lat_row.push_back("--");
                pw_row.push_back("--");
                continue;
            }
            auto run = Simulate(prog.value(), chip).value();
            lat_row.push_back(
                StrFormat("%.2f", run.latency_s * 1e3));
            const double ips = static_cast<double>(app.typical_batch) /
                               run.latency_s;
            pw_row.push_back(StrFormat("%.1f", ips / chip.tdp_w));
        }
        latency.AddRow(lat_row);
        perfwatt.AddRow(pw_row);
    }
    latency.Print("A11a: latency (ms) at typical batch, best dtype "
                  "('--' = cannot run)");
    perfwatt.Print("A11b: inferences/s per TDP watt");

    std::printf("\nShape to check: TPUv1 only appears feasible because "
                "this table grants it the\nquantized model (A10's "
                "weeks-long detour), and its fixed-function pipeline\n"
                "still blows up on BERT (25x+ slower than TPUv4i). "
                "TPUv2 trades TPUv1's\nint8 perf/W for deployability; "
                "v3 and v4i then win both axes, with TPUv4i\nthe "
                "perf/W leader on the modern (BERT-heavy) half of the "
                "table.\n");
    return 0;
}
