/**
 * @file
 * E10 — the MLPerf Inference 0.7-style table: ResNet-50 and BERT-large
 * in the Offline scenario (max throughput, big batches) and the Server
 * scenario (max Poisson QPS with p99 latency under the MLPerf bound),
 * TPUv4i vs the T4-class GPU.
 */
#include "bench/bench_util.h"

namespace {

using namespace t4i;

/** MLPerf server scenario: bisect the max arrival rate whose p99
 *  latency meets the bound. */
double
MaxServerQps(const LatencyTable& table, int64_t max_batch, double p99_s)
{
    TenantConfig tenant;
    tenant.name = "w";
    tenant.latency_s = [&table](int64_t b) { return table.Eval(b); };
    tenant.max_batch = max_batch;
    tenant.slo_s = p99_s;

    auto p99_at = [&](double rate) {
        tenant.arrival_rate = rate;
        auto r = RunServing({tenant}, 20.0, 1234).value();
        return r.tenants[0].p99_latency_s;
    };

    if (p99_at(1.0) > p99_s) return 0.0;
    double lo = 1.0;
    double hi = 2.0;
    while (p99_at(hi) <= p99_s && hi < 1e7) hi *= 2.0;
    for (int iter = 0; iter < 20; ++iter) {
        const double mid = 0.5 * (lo + hi);
        (p99_at(mid) <= p99_s ? lo : hi) = mid;
    }
    return lo;
}

void
RunModel(const std::string& name, const Graph& graph, double p99_s,
         TablePrinter* table)
{
    struct Target {
        ChipConfig chip;
        DType dtype;
    };
    const Target targets[] = {
        {Tpu_v4i(), DType::kBf16},
        {GpuT4(), DType::kInt8},
    };
    std::vector<double> offline;
    std::vector<double> server;
    for (const auto& t : targets) {
        LatencyTable profile =
            bench::ProfileLatency(graph, t.chip, t.dtype, 128);
        // Offline: steady-state pipelined throughput at the best batch.
        double best_offline = 0.0;
        for (int64_t b = 1; b <= 128; b *= 2) {
            auto run = bench::Run(graph, t.chip, b, t.dtype);
            best_offline =
                std::max(best_offline, run.result.steady_state_ips);
        }
        const int64_t slo_batch = profile.MaxBatchUnderSlo(p99_s);
        const double qps = MaxServerQps(
            profile, std::max<int64_t>(slo_batch, 1), p99_s);
        offline.push_back(best_offline);
        server.push_back(qps);
        const obs::Labels labels = {{"chip", t.chip.name},
                                    {"model", name}};
        bench::Metric("e10.offline_ips", best_offline, labels);
        bench::Metric("e10.server_qps", qps, labels);
        table->AddRow({
            name,
            t.chip.name + std::string("/") + DTypeName(t.dtype),
            StrFormat("%.0f", best_offline),
            StrFormat("%.0f", qps),
            StrFormat("%.0f", p99_s * 1e3),
        });
    }
    table->AddRow({name, "v4i / T4 ratio",
                   StrFormat("%.2fx", offline[0] / offline[1]),
                   StrFormat("%.2fx",
                             server[1] > 0 ? server[0] / server[1]
                                           : 0.0),
                   ""});
}

}  // namespace

int
main()
{
    bench::Banner("E10", "MLPerf Inference-style results vs the T4");

    TablePrinter table({"Model", "Chip/dtype", "Offline inf/s",
                        "Server QPS @p99", "p99 bound ms"});
    // MLPerf Inference v0.7 server latency bounds.
    RunModel("ResNet-50", BuildResNet50(), 0.015, &table);
    RunModel("BERT-large", BuildBertLarge(), 0.130, &table);
    table.Print("E10: Offline and Server scenarios, per chip");

    std::printf("\nShape to check: TPUv4i clearly beats the T4 per chip "
                "on both models and both\nscenarios (the paper's MLPerf "
                "table), with the bigger margin on BERT where\nthe MXUs "
                "and CMEM matter most.\n");
    return 0;
}
