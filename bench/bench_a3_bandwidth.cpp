/**
 * @file
 * A3 (ablation) — HBM bandwidth sensitivity: TPUv4i shipped with
 * 614 GB/s, down from TPUv3's 900. How much bandwidth does the suite
 * actually need once CMEM absorbs the hot set? Sweep 0.25x..2x.
 */
#include "bench/bench_util.h"

int
main()
{
    using namespace t4i;
    bench::Banner("A3", "HBM bandwidth sensitivity of TPUv4i");

    const double factors[] = {0.25, 0.5, 0.75, 1.0, 1.5, 2.0};

    std::vector<std::string> header = {"App"};
    for (double f : factors) {
        header.push_back(StrFormat("%.0f GB/s", 614.0 * f));
    }
    TablePrinter with_cmem(header);
    TablePrinter without_cmem(header);

    for (const auto& app : ProductionApps()) {
        std::vector<std::string> row_with = {app.name};
        std::vector<std::string> row_without = {app.name};
        double base_with = 0.0;
        double base_without = 0.0;
        for (double f : factors) {
            ChipConfig chip = Tpu_v4i();
            chip.dram_bw_Bps *= f;
            auto r_with = bench::Run(app.graph, chip,
                                     app.typical_batch);
            auto r_without =
                bench::Run(app.graph, chip, app.typical_batch,
                           DType::kBf16, 3, 1, /*cmem=*/0);
            if (f == 1.0) {
                base_with = r_with.result.latency_s;
                base_without = r_without.result.latency_s;
            }
            row_with.push_back(StrFormat(
                "%.2f", r_with.result.latency_s * 1e3));
            row_without.push_back(StrFormat(
                "%.2f", r_without.result.latency_s * 1e3));
        }
        (void)base_with;
        (void)base_without;
        with_cmem.AddRow(row_with);
        without_cmem.AddRow(row_without);
    }
    with_cmem.Print("A3a: latency (ms) vs HBM bandwidth, 128 MiB CMEM");
    without_cmem.Print("A3b: latency (ms) vs HBM bandwidth, no CMEM");

    std::printf("\nShape to check: with CMEM, the suite tolerates even "
                "half of the shipped\nbandwidth with modest slowdowns — "
                "the architectural bet that let TPUv4i\ntake cheaper "
                "614 GB/s HBM than TPUv3's 900 (Lesson 1's SRAM-for-"
                "bandwidth\ntrade). Without CMEM, the bandwidth-"
                "sensitive apps degrade much faster.\n");
    return 0;
}
