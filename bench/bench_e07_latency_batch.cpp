/**
 * @file
 * E7 — Lesson 10 figure: latency vs batch size per app, and the largest
 * batch (and throughput) each app can run while meeting its latency SLO.
 * "The inference market limits latency, not batch size."
 */
#include "bench/bench_util.h"

int
main()
{
    using namespace t4i;
    bench::Banner("E7", "Latency vs batch size under the SLO (Lesson 10)");

    const ChipConfig chip = Tpu_v4i();
    const std::vector<int64_t> batches = {1, 2, 4, 8, 16, 32, 64, 128, 256};

    std::vector<std::string> header = {"App"};
    for (int64_t b : batches) {
        header.push_back(StrFormat("b=%lld", static_cast<long long>(b)));
    }
    TablePrinter lat_table(header);
    TablePrinter slo_table({"App", "SLO ms", "Max batch under SLO",
                            "Throughput @SLO (inf/s)",
                            "Throughput @b=1", "Batching gain"});

    for (const auto& app : ProductionApps()) {
        LatencyTable profile;
        std::vector<std::string> row = {app.name};
        for (int64_t b : batches) {
            auto run = bench::Run(app.graph, chip, b);
            profile.AddPoint(b, run.result.latency_s);
            row.push_back(
                StrFormat("%.2f", run.result.latency_s * 1e3));
        }
        lat_table.AddRow(row);

        const double slo_s = app.slo_ms * 1e-3;
        const int64_t max_batch = profile.MaxBatchUnderSlo(slo_s);
        const double tput_slo =
            max_batch > 0 ? profile.ThroughputAt(max_batch) : 0.0;
        const double tput_1 = profile.ThroughputAt(1);
        bench::Metric("e7.max_batch_under_slo",
                      static_cast<double>(max_batch),
                      {{"app", app.name}});
        bench::Metric("e7.throughput_at_slo", tput_slo,
                      {{"app", app.name}});
        slo_table.AddRow({
            app.name,
            StrFormat("%.0f", app.slo_ms),
            max_batch > 0
                ? StrFormat("%lld", static_cast<long long>(max_batch))
                : std::string("MISS"),
            StrFormat("%.0f", tput_slo),
            StrFormat("%.0f", tput_1),
            StrFormat("%.1fx", tput_1 > 0 ? tput_slo / tput_1 : 0.0),
        });
    }
    lat_table.Print("E7a: latency (ms) vs batch on TPUv4i");
    slo_table.Print("E7b: largest batch + throughput under each app's SLO");

    std::printf("\nShape to check: latency grows mildly with batch until "
                "the device saturates;\nevery app can afford a sizable "
                "batch *within* its SLO (so batch is not the\nlimiter — "
                "latency is), and batching buys large throughput "
                "multiples.\n");
    return 0;
}
