/**
 * @file
 * E14 — Lesson 8's mitigation: ICI scaling. Growing models (the 2021
 * zoo) are sharded across 1, 2 and 4 TPUv4i chips of one board-level
 * ICI domain; speedup saturates as all-gathers take over.
 */
#include "bench/bench_util.h"

int
main()
{
    using namespace t4i;
    bench::Banner("E14", "Multi-chip ICI scaling of the grown models");

    const ChipConfig chip = Tpu_v4i();
    TablePrinter table({"Model (year)", "Chips", "Latency ms",
                        "Speedup", "ICI busy %", "MXU busy %"});

    struct Case {
        std::string label;
        Graph graph;
        int64_t batch;
    };
    std::vector<Case> cases;
    cases.push_back({"BERT1 (2017)",
                     BuildApp("BERT1").value().graph, 16});
    auto grown = AppsOfYear(2021);
    cases.push_back({"BERT1 (2021)", std::move(grown[7].graph), 16});
    cases.push_back({"RNN0 (2021)", std::move(grown[4].graph), 16});

    for (auto& c : cases) {
        double base = 0.0;
        for (int chips : {1, 2, 4}) {
            auto run = bench::Run(c.graph, chip, c.batch,
                                  DType::kBf16, 3, chips);
            if (chips == 1) base = run.result.latency_s;
            table.AddRow({
                c.label,
                StrFormat("%d", chips),
                StrFormat("%.2f", run.result.latency_s * 1e3),
                StrFormat("%.2fx", base / run.result.latency_s),
                StrFormat("%.0f",
                          100.0 * run.result.engine(Engine::kIci)
                              .utilization),
                StrFormat("%.0f",
                          100.0 * run.result.engine(Engine::kMxu)
                              .utilization),
            });
        }
    }
    table.Print("E14: weight-sharded execution across an ICI domain");

    // Topology sidebar: the same 4-chip domain wired as a ring vs
    // fully connected, on the collective-heaviest model.
    TablePrinter topo({"Topology", "Latency ms", "ICI busy %",
                       "Bisection GB/s", "Diameter"});
    // BERT1 (2021) again — already grown and parked in cases[1], no
    // need to rebuild the whole 2021 zoo for one graph.
    const Graph& bert_2021 = cases[1].graph;
    for (IciTopology t : {IciTopology::kRing,
                          IciTopology::kFullyConnected}) {
        CompileOptions opts;
        opts.batch = 16;
        opts.num_chips = 4;
        opts.ici_topology = t;
        auto prog = Compile(bert_2021, chip, opts).value();
        auto run = Simulate(prog, chip).value();
        auto domain = MakeDomain(chip, 4, t).value();
        topo.AddRow({
            IciTopologyName(t),
            StrFormat("%.2f", run.latency_s * 1e3),
            StrFormat("%.0f",
                      100.0 * run.engine(Engine::kIci).utilization),
            StrFormat("%.0f",
                      domain.BisectionBandwidth().value() / 1e9),
            StrFormat("%d", domain.Diameter()),
        });
    }
    topo.Print("E14b: 4-chip domain wiring for BERT1 (2021)");
    std::printf("\nWith 2 links per chip, the ring wins bandwidth-bound "
                "all-gathers (full links\nto each neighbor) even though "
                "fully-connected has the better diameter —\nthe reason "
                "TPU fabrics are rings/tori, not crossbars.\n");

    std::printf("\nShape to check: the grown models gain clearly from 2 "
                "and 4 chips (weights\nand matmuls shard) but sublinearly "
                "— ICI all-gathers and the unsharded\nrecurrence steps "
                "bound the speedup. TPUv4i boards carry 4 chips for "
                "exactly\nthis headroom (Lesson 8).\n");
    return 0;
}
