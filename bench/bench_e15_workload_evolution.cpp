/**
 * @file
 * E15 — Lesson 9: DNN workloads evolve with ML breakthroughs. The fleet
 * mix shifts from MLP/LSTM (2016) toward CNN and then BERT (2020); a
 * programmable DSA keeps its fleet-weighted performance through the
 * shift, while a chip specialized to the 2016 mix loses ground.
 */
#include "bench/bench_util.h"

#include <map>

int
main()
{
    using namespace t4i;
    bench::Banner("E15", "Fleet mix evolution, 2016-2020 (Lesson 9)");

    // Per-domain throughput of each chip on the representative app of
    // that domain (first of the pair), at its typical batch.
    const std::map<AppDomain, std::string> representative = {
        {AppDomain::kMlp, "MLP0"},
        {AppDomain::kCnn, "CNN0"},
        {AppDomain::kRnn, "RNN0"},
        {AppDomain::kBert, "BERT0"},
    };

    struct ChipPerf {
        std::string name;
        std::map<AppDomain, double> ips;  // inferences/s per domain
    };
    std::vector<ChipPerf> chips;
    for (const auto& spec :
         {std::make_pair(Tpu_v1(), DType::kInt8),
          std::make_pair(Tpu_v4i(), DType::kBf16)}) {
        ChipPerf perf;
        perf.name = spec.first.name;
        for (const auto& [domain, app_name] : representative) {
            auto app = BuildApp(app_name).value();
            auto run = bench::Run(app.graph, spec.first,
                                  app.typical_batch, spec.second);
            perf.ips[domain] =
                static_cast<double>(app.typical_batch) /
                run.result.latency_s;
        }
        chips.push_back(std::move(perf));
    }

    TablePrinter mix_table({"Year", "MLP %", "CNN %", "RNN %",
                            "BERT %"});
    TablePrinter perf_table({"Year", "TPUv1 rel perf",
                             "TPUv4i rel perf", "v4i advantage"});

    double v1_2016 = 0.0;
    double v4i_2016 = 0.0;
    for (const auto& mix : FleetMixHistory()) {
        mix_table.AddRow({
            StrFormat("%d", mix.year),
            StrFormat("%.0f", 100.0 * mix.mlp_share),
            StrFormat("%.0f", 100.0 * mix.cnn_share),
            StrFormat("%.0f", 100.0 * mix.rnn_share),
            StrFormat("%.0f", 100.0 * mix.bert_share),
        });
        // Fleet-weighted harmonic-mean throughput: time to serve the
        // mix is the share-weighted sum of per-domain times.
        auto fleet_ips = [&](const ChipPerf& chip) {
            double time = 0.0;
            time += mix.mlp_share / chip.ips.at(AppDomain::kMlp);
            time += mix.cnn_share / chip.ips.at(AppDomain::kCnn);
            time += mix.rnn_share / chip.ips.at(AppDomain::kRnn);
            time += mix.bert_share / chip.ips.at(AppDomain::kBert);
            return 1.0 / time;
        };
        const double v1 = fleet_ips(chips[0]);
        const double v4i = fleet_ips(chips[1]);
        if (mix.year == 2016) {
            v1_2016 = v1;
            v4i_2016 = v4i;
        }
        perf_table.AddRow({
            StrFormat("%d", mix.year),
            StrFormat("%.2f", v1 / v1_2016),
            StrFormat("%.2f", v4i / v4i_2016),
            StrFormat("%.1fx", v4i / v1),
        });
    }
    mix_table.Print("E15a: share of inference cycles by domain");
    perf_table.Print(
        "E15b: fleet-weighted throughput, normalized to each chip's "
        "2016 value");

    std::printf("\nShape to check: as BERT displaces MLP/LSTM cycles, the "
                "2015-era int8 chip\nslides on its own normalized curve "
                "while TPUv4i holds up, and the v4i/v1\ngap widens — "
                "flexibility beats over-specialization when workloads "
                "evolve\n(Lesson 9).\n");
    return 0;
}
