/**
 * @file
 * A6 (fleet-level Lesson 3) — the bill for serving one reference
 * traffic load (what 1000 TPUv4i at 60% utilization carry, split by
 * the production fleet shares) on each chip generation. Nobody buys
 * one chip: the deployment decision is fleet chips x TCO.
 */
#include "bench/bench_util.h"

#include "src/fleet/planner.h"

int
main()
{
    using namespace t4i;
    bench::Banner("A6", "Fleet sizing and cost for fixed traffic");

    auto demands = ReferenceTraffic(1000);
    if (!demands.ok()) {
        std::fprintf(stderr, "%s\n",
                     demands.status().ToString().c_str());
        return 1;
    }
    double total_qps = 0.0;
    for (const auto& d : demands.value()) total_qps += d.qps;
    std::printf("Reference traffic: %.1f M inferences/s across the 8 "
                "production apps\n(= a 1000-chip TPUv4i fleet at 60%% "
                "utilization, split by fleet share).\n",
                total_qps / 1e6);

    FleetParams params;
    TablePrinter table({"Chip", "Fleet chips", "Power MW", "CapEx $M",
                        "3yr TCO $M", "TCO vs v4i", "Infeasible apps"});
    const double v4i_tco =
        PlanFleet(demands.value(), Tpu_v4i(), params).value().tco_usd;
    for (const auto& chip : {Tpu_v3(), Tpu_v4i(), GpuT4()}) {
        auto plan = PlanFleet(demands.value(), chip, params);
        if (!plan.ok()) {
            std::fprintf(stderr, "%s: %s\n", chip.name.c_str(),
                         plan.status().ToString().c_str());
            continue;
        }
        int infeasible = 0;
        for (const auto& a : plan.value().apps) {
            if (a.infeasible) ++infeasible;
        }
        bench::Metric("a6.fleet_chips",
                      static_cast<double>(plan.value().total_chips),
                      {{"chip", chip.name}});
        bench::Metric("a6.fleet_tco_usd", plan.value().tco_usd,
                      {{"chip", chip.name}});
        table.AddRow({
            chip.name,
            StrFormat("%lld", static_cast<long long>(
                                  plan.value().total_chips)),
            StrFormat("%.2f", plan.value().fleet_power_w / 1e6),
            StrFormat("%.1f", plan.value().capex_usd / 1e6),
            StrFormat("%.1f", plan.value().tco_usd / 1e6),
            StrFormat("%.2fx", plan.value().tco_usd / v4i_tco),
            StrFormat("%d", infeasible),
        });
    }
    table.Print("A6: fleet bill by chip generation");

    // Per-app detail on TPUv4i.
    auto detail = PlanFleet(demands.value(), Tpu_v4i(), params).value();
    TablePrinter apps({"App", "QPS", "Capacity/chip", "Chips"});
    for (const auto& a : detail.apps) {
        apps.AddRow({
            a.app_name,
            HumanCount(a.qps, 1),
            HumanCount(a.capacity_per_chip, 1),
            StrFormat("%lld", static_cast<long long>(a.chips)),
        });
    }
    apps.Print("A6b: per-app sub-fleets on TPUv4i");

    std::printf("\nShape to check: TPUv4i serves the load with the "
                "fewest chips and lowest TCO;\nTPUv3 needs similar chip "
                "counts but its 450 W liquid-cooled TCO balloons "
                "the\nbill; the T4 needs >2x the chips. Power "
                "provisioning (MW) follows the same\nordering — the "
                "datacenter-capacity argument inside Lesson 3.\n");
    return 0;
}
