/**
 * @file
 * A5 (ablation/illustration) — the VLIW compatibility story behind
 * Lesson 2: binary compatibility across TPU generations is impossible
 * (every bundle format differs), so the deployable contract is the XLA
 * graph + compiler. Also reports bundle counts, packing occupancy and
 * code size per app on TPUv4i's format.
 */
#include "bench/bench_util.h"

#include "src/vliw/bundle.h"
#include "src/vliw/isa.h"

int
main()
{
    using namespace t4i;
    bench::Banner("A5", "VLIW bundles and binary (in)compatibility");

    // Compatibility matrix.
    const char* gens[] = {"TPUv1", "TPUv2", "TPUv3", "TPUv4i", "TPUv4"};
    TablePrinter compat({"built \\ runs on", "TPUv1", "TPUv2", "TPUv3",
                         "TPUv4i", "TPUv4"});
    for (const char* from : gens) {
        std::vector<std::string> row = {from};
        for (const char* to : gens) {
            row.push_back(CheckBinaryCompatible(BundleFormatOf(from),
                                                BundleFormatOf(to))
                                  .ok()
                              ? "ok"
                              : "X");
        }
        compat.AddRow(row);
    }
    compat.Print("A5a: can a binary built for row run on column?");

    // Bundle statistics of the production programs on TPUv4i.
    const ChipConfig chip = Tpu_v4i();
    const BundleFormat format = BundleFormatOf("TPUv4i");
    TablePrinter table({"App", "Bundles", "Code size", "Occupancy %",
                        "Limiting slot"});
    for (const auto& app : ProductionApps()) {
        auto run = bench::Run(app.graph, chip, app.typical_batch);
        auto stats = PackBundles(run.program, format, chip.mxu.rows,
                                 chip.vpu_lanes).value();
        table.AddRow({
            app.name,
            HumanCount(static_cast<double>(stats.bundles), 1),
            HumanBytes(static_cast<double>(stats.code_bytes)),
            StrFormat("%.0f", 100.0 * stats.slot_occupancy),
            SlotKindName(stats.limiting_slot),
        });
    }
    table.Print("A5b: bundle packing of the production apps (TPUv4i)");

    std::printf("\nShape to check: only the diagonal (and the v4i/v4 "
                "pair, which share the\nTensorCore) is binary-"
                "compatible — exactly why the paper argues compiler\n"
                "compatibility is the contract to preserve. Occupancy "
                "well below 100%%\nis normal for VLIW: empty slots are "
                "the price of static scheduling.\n");
    return 0;
}
