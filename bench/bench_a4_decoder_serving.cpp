/**
 * @file
 * A4 (extension) — autoregressive decoder serving on TPUv4i: the
 * workload class that arrived right after the paper (Lesson 9, one
 * step further). Latency and per-chip token throughput vs batch and
 * context, single-chip and 4-chip sharded.
 */
#include "bench/bench_util.h"

int
main()
{
    using namespace t4i;
    bench::Banner("A4", "Autoregressive decoder LM serving (extension)");

    // GPT-2-large-class decoder: 24 layers, d=1024 (wider would not
    // fit the single-chip HBM comfortably alongside the KV cache).
    const int64_t gen = 32;
    Graph lm = BuildDecoderLm("LM", 24, 1024, 16, 4096, 512, gen,
                              50000);
    const ChipConfig chip = Tpu_v4i();

    TablePrinter table({"Chips", "Batch", "Latency ms", "ms/token",
                        "tokens/s/chip", "MXU util %", "HBM busy %"});
    for (int chips : {1, 4}) {
        for (int64_t batch : {1, 8, 32}) {
            auto run = bench::Run(lm, chip, batch, DType::kBf16, 3,
                                  chips);
            const double tokens =
                static_cast<double>(batch) * static_cast<double>(gen);
            table.AddRow({
                StrFormat("%d", chips),
                StrFormat("%lld", static_cast<long long>(batch)),
                StrFormat("%.2f", run.result.latency_s * 1e3),
                StrFormat("%.2f", run.result.latency_s * 1e3 /
                                      static_cast<double>(gen)),
                StrFormat("%.0f", tokens / run.result.latency_s /
                                      static_cast<double>(chips)),
                StrFormat("%.0f", 100.0 * run.result.mxu_utilization),
                StrFormat("%.0f",
                          100.0 * run.result.engine(Engine::kHbm)
                              .utilization),
            });
        }
    }
    table.Print("A4a: decode latency/throughput (prompt 512, gen 32)");

    // Context-length scaling at batch 8.
    TablePrinter ctx_table({"Prompt", "Latency ms", "ms/token",
                            "HBM busy %"});
    for (int64_t prompt : {128, 512, 2048}) {
        Graph g = BuildDecoderLm("LMc", 24, 1024, 16, 4096, prompt,
                                 gen, 50000);
        auto run = bench::Run(g, chip, 8);
        ctx_table.AddRow({
            StrFormat("%lld", static_cast<long long>(prompt)),
            StrFormat("%.2f", run.result.latency_s * 1e3),
            StrFormat("%.2f", run.result.latency_s * 1e3 /
                                  static_cast<double>(gen)),
            StrFormat("%.0f", 100.0 * run.result.engine(Engine::kHbm)
                                          .utilization),
        });
    }
    ctx_table.Print("A4b: context-length scaling at batch 8");

    std::printf("\nShape to check: single-request decode runs at a few "
                "percent MXU utilization\n(matvecs + KV streaming); "
                "batching multiplies tokens/s almost for free "
                "until\nthe KV stream saturates HBM; longer contexts "
                "shift the bottleneck to memory\n— the LLM-serving "
                "regime TPUv4i's successors were built around.\n");
    return 0;
}
