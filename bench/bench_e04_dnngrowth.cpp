/**
 * @file
 * E4 — Lesson 8 figure: production DNNs grow ~1.5x per year. The zoo is
 * re-instantiated for each deployment year and its aggregate weight
 * footprint and compute demand are measured.
 */
#include "bench/bench_util.h"

int
main()
{
    using namespace t4i;
    bench::Banner("E4", "Production DNN growth, 2016-2022 (Lesson 8)");

    TablePrinter table({"Year", "Suite weights", "Suite GFLOPs/sample",
                        "Weights y/y", "FLOPs y/y",
                        "Fits 128MiB CMEM?", "Fits 8GiB HBM?"});
    double prev_w = 0.0;
    double prev_f = 0.0;
    std::vector<double> w_growth;
    std::vector<double> f_growth;
    for (int year = 2016; year <= 2022; ++year) {
        double weights = 0.0;
        double flops = 0.0;
        for (const auto& app : AppsOfYear(year)) {
            auto c =
                app.graph.Cost(1, DType::kBf16, DType::kBf16).value();
            weights += static_cast<double>(c.weight_bytes);
            flops += c.total_flops;
        }
        table.AddRow({
            StrFormat("%d", year),
            HumanBytes(weights),
            StrFormat("%.1f", flops / 1e9),
            prev_w > 0 ? StrFormat("%.2fx", weights / prev_w)
                       : std::string("--"),
            prev_f > 0 ? StrFormat("%.2fx", flops / prev_f)
                       : std::string("--"),
            weights < 128.0 * (1 << 20) ? "yes" : "no",
            weights < 8.0 * (1ull << 30) ? "yes" : "no",
        });
        if (prev_w > 0) {
            w_growth.push_back(weights / prev_w);
            f_growth.push_back(flops / prev_f);
        }
        prev_w = weights;
        prev_f = flops;
    }
    table.Print("E4: the zoo re-instantiated per deployment year");

    std::printf("\nGeomean growth per year: weights %.2fx, FLOPs %.2fx "
                "(paper: ~1.5x).\n",
                GeoMean(w_growth), GeoMean(f_growth));
    std::printf("Consequence: a chip provisioned for year Y is ~2.3x "
                "short two years later —\nwhy TPUv4i ships 4-chip ICI "
                "domains and 8 GiB of HBM headroom.\n");
    return 0;
}
