/**
 * @file
 * E9 — Lesson 2 figure: performance gained purely from compiler
 * improvements on unchanged hardware. The O0..O3 ladder stands in for
 * ~20 months of XLA releases (see compiler.h for what each level adds).
 */
#include "bench/bench_util.h"

int
main()
{
    using namespace t4i;
    bench::Banner("E9",
                  "Compiler-only performance gains (the XLA ladder)");

    const ChipConfig chip = Tpu_v4i();
    TablePrinter table({"App", "O0 ms", "O1 ms", "O2 ms", "O3 ms",
                        "O1/O0", "O2/O0", "O3/O0"});
    std::vector<double> total_gain;

    for (const auto& app : ProductionApps()) {
        double ms[4];
        for (int level = 0; level <= 3; ++level) {
            ms[level] = bench::Run(app.graph, chip, app.typical_batch,
                                   DType::kBf16, level)
                            .result.latency_s * 1e3;
        }
        total_gain.push_back(ms[0] / ms[3]);
        table.AddRow({
            app.name,
            StrFormat("%.2f", ms[0]),
            StrFormat("%.2f", ms[1]),
            StrFormat("%.2f", ms[2]),
            StrFormat("%.2f", ms[3]),
            StrFormat("%.2fx", ms[0] / ms[1]),
            StrFormat("%.2fx", ms[0] / ms[2]),
            StrFormat("%.2fx", ms[0] / ms[3]),
        });
    }
    table.AddRow({"GEOMEAN", "", "", "", "", "", "",
                  StrFormat("%.2fx", GeoMean(total_gain))});
    table.Print("E9: latency by compiler level on fixed TPUv4i hardware");

    std::printf("\nShape to check: every app gains, some by >2x, geomean "
                "well above 1.2x —\nthe paper's argument that compiler "
                "compatibility (keep improving XLA for\ndeployed chips) "
                "beats binary compatibility (Lesson 2).\n");
    return 0;
}
