#include "src/tco/tco.h"

#include <cmath>

#include "src/common/strings.h"

namespace t4i {

double
GoodDiesPerWafer(double die_mm2, const TcoParams& params)
{
    const double r = params.wafer_diameter_mm / 2.0;
    // Standard dies-per-wafer approximation with edge loss.
    const double gross =
        M_PI * r * r / die_mm2 -
        M_PI * params.wafer_diameter_mm / std::sqrt(2.0 * die_mm2);
    // Murphy yield.
    const double a = die_mm2 * params.defect_density_per_mm2;
    const double murphy = std::pow((1.0 - std::exp(-a)) / a, 2.0);
    return std::max(gross, 1.0) * murphy;
}

StatusOr<TcoReport>
ComputeTco(const ChipConfig& chip, const TcoParams& params)
{
    double wafer_cost = 0.0;
    if (chip.tech_nm >= 28) {
        wafer_cost = params.wafer_cost_usd_28nm;
    } else if (chip.tech_nm >= 12) {
        wafer_cost = params.wafer_cost_usd_16nm;
    } else {
        wafer_cost = params.wafer_cost_usd_7nm;
    }

    TcoReport report;
    const double good_dies = GoodDiesPerWafer(chip.die_mm2, params);
    if (good_dies <= 0.0) {
        return Status::InvalidArgument(
            StrFormat("die of %.0f mm^2 yields no good dies",
                      chip.die_mm2));
    }
    report.die_cost_usd =
        wafer_cost / good_dies * params.package_test_multiplier;

    // HBM-class memory if bandwidth says so, DDR otherwise.
    const double gib =
        static_cast<double>(chip.dram_bytes) / (1ull << 30);
    const bool hbm = chip.dram_bw_Bps > 100e9;
    report.memory_cost_usd =
        gib * (hbm ? params.hbm_usd_per_gib : params.ddr_usd_per_gib);

    report.board_cost_usd = params.board_usd;
    if (chip.cooling == Cooling::kLiquid) {
        report.cooling_capex_usd =
            params.liquid_capex_usd_per_w * chip.tdp_w;
    }
    report.capex_usd = report.die_cost_usd + report.memory_cost_usd +
                       report.board_cost_usd + report.cooling_capex_usd;

    const double pue = chip.cooling == Cooling::kLiquid
                           ? params.pue_liquid
                           : params.pue_air;
    const double avg_w = chip.tdp_w * params.avg_power_fraction_of_tdp;
    report.energy_kwh = avg_w * pue * params.service_years * 365.0 *
                        24.0 / 1000.0;
    report.opex_usd = report.energy_kwh * params.electricity_usd_per_kwh;
    report.tco_usd = report.capex_usd + report.opex_usd;
    return report;
}

}  // namespace t4i
