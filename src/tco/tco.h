/**
 * @file
 * Total-cost-of-ownership model (Lesson 3: design for perf/TCO, not
 * perf/CapEx).
 *
 * CapEx: die cost from wafer price, die area and a Murphy yield model,
 * plus memory (HBM/DDR), packaging/test and board amortization.
 * OpEx: electricity for the chip at a utilization-weighted power draw,
 * multiplied by the datacenter PUE, over the service life; liquid
 * cooling adds capex per watt and reduces PUE (Lesson 5's trade).
 *
 * The paper's point is a *ranking* one: a bigger, hotter chip can win
 * perf/CapEx yet lose perf/TCO once 3 years of power and cooling are
 * paid. The parameters below are public-ballpark numbers; E12 prints
 * the resulting ranking both ways.
 */
#ifndef T4I_TCO_TCO_H
#define T4I_TCO_TCO_H

#include "src/arch/chip.h"
#include "src/common/status.h"

namespace t4i {

/** Economic assumptions (defaults are public-ballpark 2020 values). */
struct TcoParams {
    double wafer_cost_usd_28nm = 3000.0;
    double wafer_cost_usd_16nm = 6000.0;
    double wafer_cost_usd_7nm = 9500.0;
    double wafer_diameter_mm = 300.0;
    /** Defects per mm^2 for the Murphy yield model. */
    double defect_density_per_mm2 = 0.001;
    /** Packaging/test multiplier on good-die cost. */
    double package_test_multiplier = 1.6;
    /** HBM cost per GiB (GDDR/DDR scaled by the bandwidth class). */
    double hbm_usd_per_gib = 20.0;
    double ddr_usd_per_gib = 5.0;
    /** Board, host share, NIC amortized per accelerator. */
    double board_usd = 1500.0;
    /** Electricity, US industrial average. */
    double electricity_usd_per_kwh = 0.07;
    /** Power usage effectiveness of the datacenter. */
    double pue_air = 1.10;
    double pue_liquid = 1.07;
    /** Liquid-cooling loop capex per watt of TDP (Lesson 5). */
    double liquid_capex_usd_per_w = 2.0;
    /** Service life over which opex accrues. */
    double service_years = 3.0;
    /** Average utilization-weighted power as a fraction of TDP. */
    double avg_power_fraction_of_tdp = 0.6;
};

/** Cost breakdown for one deployed accelerator. */
struct TcoReport {
    double die_cost_usd = 0.0;
    double memory_cost_usd = 0.0;
    double board_cost_usd = 0.0;
    double cooling_capex_usd = 0.0;
    double capex_usd = 0.0;
    double energy_kwh = 0.0;
    double opex_usd = 0.0;
    double tco_usd = 0.0;
};

/** Good dies per wafer after Murphy yield at the given area. */
double GoodDiesPerWafer(double die_mm2, const TcoParams& params);

/** Computes the TCO breakdown for a chip. */
StatusOr<TcoReport> ComputeTco(const ChipConfig& chip,
                               const TcoParams& params);

}  // namespace t4i

#endif  // T4I_TCO_TCO_H
