/**
 * @file
 * Front-end routing policies for the cluster serving layer.
 *
 * The router sits above N serving cells (src/serving/cell.h) and picks
 * one per request. Policies are pure functions over per-cell snapshots
 * so they can be unit-tested in isolation (tests/test_cluster.cpp) and
 * compared head-to-head in bench_e19_cluster:
 *
 *  - round-robin: spread blindly; baseline everyone beats;
 *  - least-loaded: global-minimum queue depth — the best possible
 *    snapshot decision, but needs fresh depth from every cell;
 *  - power-of-two-choices: sample two random cells, take the shorter
 *    queue. Classic result: ~all of least-loaded's tail benefit at two
 *    probes instead of N, and far better than round-robin under skew;
 *  - tenant-affinity: prefer cells where the tenant's weights are
 *    already resident (a device there ran it last), so the request
 *    avoids the CMEM re-staging penalty (`switch_penalty_s`); falls
 *    back to least-loaded when no resident cell is eligible.
 */
#ifndef T4I_CLUSTER_ROUTING_H
#define T4I_CLUSTER_ROUTING_H

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/status.h"

namespace t4i {

enum class RoutingPolicy {
    kRoundRobin,
    kLeastLoaded,
    kPowerOfTwo,
    kTenantAffinity,
};

/** Canonical CLI/bench name ("round-robin", "least-loaded", "p2c",
 *  "affinity"). */
const char* RoutingPolicyName(RoutingPolicy policy);

/** Inverse of RoutingPolicyName; rejects unknown names. */
StatusOr<RoutingPolicy> ParseRoutingPolicy(const std::string& name);

/**
 * The router's snapshot of one cell at a routing decision. `healthy`
 * is the router's *belief* (possibly stale under a health-check
 * interval), not ground truth; `accepting` is the control-plane state
 * (false while draining for a canary swap or parked by the
 * autoscaler).
 */
struct CellView {
    bool healthy = true;
    bool accepting = true;
    int64_t queue_depth = 0;
    /** Some device in the cell ran this request's tenant last. */
    bool tenant_resident = false;
};

/** A cell is routable when believed healthy and accepting traffic. */
inline bool
Routable(const CellView& view)
{
    return view.healthy && view.accepting;
}

/**
 * Picks a cell for one request, or -1 when no cell is routable.
 * @p rr_cursor is the router's round-robin state (advanced by the
 * round-robin policy, read-only for the rest); @p rng drives the
 * power-of-two sampling. Deterministic given (cells, cursor, rng
 * state).
 */
int PickCell(RoutingPolicy policy, const std::vector<CellView>& cells,
             uint64_t* rr_cursor, Rng& rng);

}  // namespace t4i

#endif  // T4I_CLUSTER_ROUTING_H
