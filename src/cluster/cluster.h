/**
 * @file
 * Cluster serving layer: N serving cells behind a front-end router on
 * one shared simulated clock.
 *
 * The paper's Lesson 3 is that DSAs live or die at fleet scale — a
 * deployed accelerator serves global traffic routed across many cells,
 * keeps serving while whole cells fail, and rolls new model versions
 * without an outage. This layer composes the existing single-cell
 * machinery (src/serving/cell.h) into that fleet story:
 *
 *  - the router draws cluster-wide Poisson arrivals per tenant and
 *    places each on a cell via a pluggable policy (src/cluster/
 *    routing.h), failing over to another cell when admission control
 *    sheds the request at the door;
 *  - cell-scoped FaultPlans can take whole cells down; the router
 *    detects it through health signals (optionally on a lagged
 *    health-check interval) and routes around the outage;
 *  - a scripted canary rollout drains cells one at a time, swaps the
 *    model version (a device-latency scale), and promotes or aborts on
 *    the soak-window p95 versus the rest of the fleet;
 *  - a burn-rate autoscaler activates/parks cells from a pre-built
 *    standby pool against the windowed `serving.slo_burn_rate`; the
 *    N+k planner (src/fleet/planner.h) seeds the initial active count.
 *
 * Request accounting is conservative at the router's books:
 * `arrived == completed + dropped + shed` across the cluster, where a
 * failed-over injection counts as arrived+shed inside the cell that
 * refused it but only once at the router.
 */
#ifndef T4I_CLUSTER_CLUSTER_H
#define T4I_CLUSTER_CLUSTER_H

#include <cstdint>
#include <string>
#include <vector>

#include "src/cluster/routing.h"
#include "src/common/status.h"
#include "src/load/arrivals.h"
#include "src/serving/cell.h"
#include "src/serving/server.h"

namespace t4i {

/** Scripted cell-by-cell rollout of a new model version. */
struct CanaryConfig {
    bool enabled = false;
    /**
     * The new version's device latency relative to the old (1.0 =
     * identical; > 1 = a regressed candidate the rollout must catch).
     */
    double latency_scale = 1.0;
    /** When the rollout begins (sim seconds). */
    double start_s = 0.0;
    /** Soak time per cell after the swap before the promote/abort
     *  verdict. */
    double soak_s = 0.5;
    /**
     * Abort when the canary cell's soak-window p95 exceeds this ratio
     * times the p95 of the not-yet-rolled cells over the same window.
     */
    double abort_p95_ratio = 1.5;
    /** Minimum completions on both sides before a verdict counts. */
    int64_t min_samples = 20;
};

/** Burn-rate driven cell autoscaling. */
struct AutoscalerConfig {
    bool enabled = false;
    /** Evaluation cadence (sim seconds). */
    double interval_s = 0.25;
    /**
     * Activate a standby cell when the windowed cluster burn rate
     * (SLO-miss fraction of the last window's completions divided by
     * the error budget) exceeds this; park the most recently activated
     * cell when it falls below `downscale_burn`.
     */
    double upscale_burn = 1.0;
    double downscale_burn = 0.25;
    /** Never park below this many active cells. */
    int min_cells = 1;
};

/** One per-cell rollout step in the canary timeline. */
struct RolloutStep {
    int cell = -1;
    double drain_start_s = 0.0;
    double swap_s = 0.0;     ///< drain complete, version swapped
    double verdict_s = 0.0;  ///< soak complete
    bool promoted = false;
    bool aborted = false;
    double canary_p95_s = 0.0;
    double baseline_p95_s = 0.0;
};

/** One autoscaler action in the timeline. */
struct ScaleEvent {
    double t_s = 0.0;
    int cell = -1;
    bool activated = false;  ///< false = parked
    double burn_rate = 0.0;  ///< windowed burn that triggered it
};

/** Cluster run configuration. */
struct ClusterConfig {
    /** Tenant contracts; arrival rates are *cluster-wide* (the router
     *  owns the Poisson processes, cells receive injections). */
    std::vector<TenantConfig> tenants;
    /**
     * Pluggable arrival program (src/load/arrivals.h). When set, the
     * router pulls arrivals from this source instead of drawing its
     * own Poisson processes: trace replay, flash crowds, retry storms.
     * The source's feedback hooks fire at each request's terminal
     * event (completion = success; drop/shed/router-shed = failure),
     * which is what closes closed-loop replay and client-retry loops.
     * Not owned; must outlive RunCluster. Incompatible with
     * passthrough.
     */
    load::ArrivalSource* arrival_source = nullptr;
    /** Cells active at t=0 before N+k seeding (the load-sized N). */
    int num_cells = 1;
    int devices_per_cell = 1;
    double duration_s = 1.0;
    uint64_t seed = 42;
    RoutingPolicy policy = RoutingPolicy::kLeastLoaded;
    /**
     * Per-cell fault plans, index-aligned with the cell pool; cells
     * beyond the vector get no faults. A plan whose scripted faults
     * cover every device takes the whole cell out (CellOutagePlan).
     */
    std::vector<FaultPlan> cell_faults;
    /** Per-cell reliability policy (hedging, cell-wide queue cap),
     *  shared by every cell. Per-cell faults come from cell_faults. */
    ReliabilityConfig cell_reliability;
    /**
     * Router health-model staleness: 0 polls ground truth at every
     * routing decision; > 0 refreshes the health belief only every
     * interval, so requests keep landing on a dead cell until the next
     * check notices (they drop there — the realistic cost of lag).
     */
    double health_check_interval_s = 0.0;
    /**
     * Door-shed failover: how many distinct cells one request may try
     * before the router sheds it. 1 disables cross-cell retries.
     */
    int max_route_attempts = 2;
    /**
     * N+k seeding: when > 0, activate NPlusKSpares(num_cells,
     * steady-state cell availability, this target) extra cells at t=0
     * (bounded by the standby pool).
     */
    double target_availability = 0.0;
    /** Extra cells built but parked at t=0; the autoscaler's (and N+k
     *  seeding's) headroom. Parked cells cost nothing while idle. */
    int standby_cells = 0;
    CanaryConfig canary;
    AutoscalerConfig autoscaler;
    /** Control-plane cadence: health refresh, canary steps, autoscaler
     *  windows, live availability gauge, and alert evaluation. */
    double control_interval_s = 0.05;

    // --- observability (all optional) --------------------------------
    /** Shared registry; cells label their instruments {cell="i"} and
     *  the router writes `cluster.*`. */
    obs::MetricsRegistry* registry = nullptr;
    /** Shared timeline: router arrivals/sheds on its own pid, each
     *  cell's device/queue tracks on pid trace_pid_base + 1 + i. */
    obs::TraceBuilder* trace = nullptr;
    int trace_pid_base = 10;
    /**
     * Request tracing: the first max_traced_requests arrivals get a
     * router "request" root span with one "route" child per attempt
     * (failed-over attempts linked to the winning one) parenting the
     * cell-side span tree.
     */
    obs::SpanCollector* spans = nullptr;
    int64_t max_traced_requests = 256;
    /** Evaluated against `registry` every control tick and at the end
     *  — alert on `cluster.availability` and friends. */
    obs::AlertEngine* alerts = nullptr;
    double slo_error_budget = 0.01;
    /**
     * Windowed time-series collection (requires registry), ticked on
     * the control cadence by the router loop — cells advance
     * interleaved, so only the control plane sees monotonic time. When
     * the collector routes alerts, window closes replace the per-tick
     * evaluation (the run-end evaluation stays). The caller
     * Finish()es the collector after RunCluster returns.
     */
    obs::TimeSeriesCollector* timeseries = nullptr;
    /** Rolling SLO error budgets (requires registry), ticked on the
     *  control cadence before the collector. */
    obs::SloTracker* slo = nullptr;
    /**
     * Per-batch attribution shares handed to every cell (see
     * ServingTelemetry::batch_attribution): enables per-tenant
     * `serving.attribution.seconds{...,cell=}` histograms, which the
     * SLO tracker's cost model joins into energy/cost per request.
     */
    std::vector<AttributionShare> batch_attribution;
    /**
     * Routing disabled: run the single cell with its *internal*
     * arrival process (the router never touches a request), which
     * reproduces RunServingCell for the same seed bit for bit.
     * Requires num_cells == 1 and no cluster features (failover,
     * canary, autoscaler, standby pool).
     */
    bool passthrough = false;
};

/** Per-tenant cluster-wide stats (router's books). */
struct ClusterTenantStats {
    std::string name;
    int64_t arrived = 0;
    int64_t completed = 0;
    int64_t dropped = 0;
    int64_t shed = 0;        ///< in-cell evictions + router sheds
    int64_t router_shed = 0; ///< no routable cell / every attempt shed
    int64_t failovers = 0;   ///< door-sheds retried on another cell
    /** Arrivals that were client-side retries of timed-out requests
     *  (counted as distinct arrivals; a retry-storm signature). */
    int64_t client_retries = 0;
    int64_t slo_misses = 0;
    double mean_latency_s = 0.0;
    double p50_latency_s = 0.0;
    double p95_latency_s = 0.0;
    double p99_latency_s = 0.0;
    double slo_miss_fraction = 0.0;  ///< of completed
    double throughput_rps = 0.0;
    double goodput_rps = 0.0;
};

/** Whole-cluster results. */
struct ClusterResult {
    /** Router-side per-tenant accounting (conservation holds here). */
    std::vector<ClusterTenantStats> tenants;
    /** Per-cell drained results, index-aligned with the pool. */
    std::vector<ServingResult> cells;
    int64_t arrived = 0;
    int64_t completed = 0;
    int64_t dropped = 0;
    int64_t shed = 0;
    int64_t router_shed = 0;
    int64_t failovers = 0;
    int64_t client_retries = 0;
    /** Request availability: completed / arrived (1.0 on no traffic). */
    double availability = 1.0;
    double duration_s = 0.0;
    int initial_active_cells = 0;
    int peak_active_cells = 0;
    /** Spares the N+k planner added at t=0 (target_availability). */
    int planned_spares = 0;
    std::vector<RolloutStep> rollout;
    bool rollout_complete = false;
    bool rollout_aborted = false;
    std::vector<ScaleEvent> scale_events;
    int64_t upscales = 0;
    int64_t downscales = 0;
};

/**
 * A fault plan that takes a whole @p num_devices cell out at
 * @p fail_at_s (repaired at @p repair_at_s; negative = never).
 */
FaultPlan CellOutagePlan(int num_devices, double fail_at_s,
                         double repair_at_s = -1.0);

/**
 * The availability floor the N+k model predicts for a cluster that
 * needs @p needed of @p total cells, each independently up with
 * probability @p cell_availability — the bar the outage drills hold
 * the measured request availability against.
 */
double PredictedAvailabilityFloor(int needed, int total,
                                  double cell_availability);

/** Runs the cluster to full drain. Deterministic in config.seed. */
StatusOr<ClusterResult> RunCluster(const ClusterConfig& config);

}  // namespace t4i

#endif  // T4I_CLUSTER_CLUSTER_H
