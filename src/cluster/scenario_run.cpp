#include "src/cluster/scenario_run.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <set>
#include <utility>

#include "src/cluster/routing.h"
#include "src/obs/alerts.h"
#include "src/obs/sampling.h"
#include "src/obs/slo.h"
#include "src/obs/spans.h"
#include "src/obs/timeseries.h"

namespace t4i {
namespace {

/** Default device model when the caller brings no compiled ladder:
 *  affine latency, the same shape the serving tests use. */
TenantConfig
DefaultTenant(const load::ScenarioTenant& st)
{
    TenantConfig t;
    t.name = st.name;
    t.latency_s = [](int64_t batch) {
        return 1e-3 + 1e-4 * static_cast<double>(batch);
    };
    t.max_batch = 32;
    t.slo_s = 0.010;
    return t;
}

/** One cell's SLO-batch throughput for this tenant: the largest batch
 *  whose device latency fits the SLO, at that batch's rate. */
double
CellCapacityRps(const TenantConfig& t, int devices)
{
    int64_t best = 1;
    for (int64_t b = 1; b <= t.max_batch; b *= 2) {
        if (t.latency_s(b) <= t.slo_s) best = b;
    }
    const double latency = t.latency_s(best);
    if (latency <= 0.0) return 0.0;
    return static_cast<double>(best) / latency *
           static_cast<double>(std::max(devices, 1));
}

}  // namespace

StatusOr<ScenarioOutcome>
RunScenario(const load::Scenario& scenario,
            const ScenarioRunOptions& options)
{
    if (options.registry == nullptr) {
        return Status::InvalidArgument(
            "RunScenario needs a metrics registry");
    }
    const std::string policy_name = options.policy_override.empty()
                                        ? scenario.policy
                                        : options.policy_override;
    auto policy = ParseRoutingPolicy(policy_name);
    T4I_RETURN_IF_ERROR(policy.status());
    const uint64_t seed =
        options.override_seed ? options.seed : scenario.seed;

    // --- tenants: scenario contract onto the device model ------------
    std::vector<TenantConfig> tenants;
    std::vector<double> rates;
    std::vector<std::string> names;
    tenants.reserve(scenario.tenants.size());
    for (const load::ScenarioTenant& st : scenario.tenants) {
        TenantConfig t = options.make_tenant ? options.make_tenant(st)
                                             : DefaultTenant(st);
        t.name = st.name;
        const double rate =
            st.rate > 0.0
                ? st.rate
                : st.load *
                      CellCapacityRps(t, scenario.devices_per_cell);
        if (rate <= 0.0) {
            return Status::InvalidArgument(
                "tenant '" + st.name + "' resolves to a zero rate");
        }
        t.arrival_rate = rate;
        t.deadline_s = st.deadline_s;
        if (st.max_queue > 0) t.max_queue = st.max_queue;
        t.priority = st.priority;
        tenants.push_back(std::move(t));
        rates.push_back(rate);
        names.push_back(st.name);
    }

    // The effective seed must reach the arrival source too, not just
    // the cluster: a --seed override that only reseeded the servers
    // would replay identical arrivals and look spuriously stable.
    load::Scenario seeded = scenario;
    seeded.seed = seed;
    auto source_or =
        load::BuildArrivalSource(seeded, rates, names);
    T4I_RETURN_IF_ERROR(source_or.status());
    std::unique_ptr<load::ArrivalSource> source =
        std::move(source_or).ConsumeValue();

    // --- sinks --------------------------------------------------------
    obs::MetricsRegistry& reg = *options.registry;
    obs::AlertEngine alerts;
    alerts.BindRegistry(&reg);
    if (!scenario.alert_rules_text.empty()) {
        T4I_RETURN_IF_ERROR(
            alerts.AddRulesFromText(scenario.alert_rules_text));
    }
    obs::TimeSeriesOptions ts_options;
    ts_options.window_s = scenario.window_s;
    obs::TimeSeriesCollector collector(ts_options);
    collector.BindRegistry(&reg);
    if (alerts.rule_count() > 0) collector.BindAlerts(&alerts);
    obs::SloTracker slo_tracker;
    slo_tracker.BindRegistry(&reg);
    if (!scenario.slo_objectives_text.empty()) {
        T4I_RETURN_IF_ERROR(slo_tracker.AddObjectivesFromText(
            scenario.slo_objectives_text));
    }

    // --- cluster config -----------------------------------------------
    ClusterConfig config;
    config.tenants = tenants;
    config.num_cells = scenario.cells;
    config.devices_per_cell = scenario.devices_per_cell;
    config.duration_s = scenario.duration_s;
    config.seed = seed;
    config.policy = policy.value();
    config.control_interval_s = scenario.control_interval_s;
    config.health_check_interval_s = scenario.health_interval_s;
    config.slo_error_budget = scenario.error_budget;
    config.arrival_source = source.get();
    if (!scenario.outages.empty()) {
        config.cell_faults.resize(
            static_cast<size_t>(scenario.cells));
        for (const load::ScenarioOutage& outage : scenario.outages) {
            config.cell_faults[static_cast<size_t>(outage.cell)] =
                CellOutagePlan(scenario.devices_per_cell,
                               outage.fail_at_s, outage.repair_at_s);
        }
    }
    config.registry = &reg;
    config.timeseries = &collector;
    config.slo = &slo_tracker;
    if (alerts.rule_count() > 0) config.alerts = &alerts;
    config.trace = options.trace;
    config.spans = options.spans;
    obs::SpanCollector internal_spans;
    if (options.forensics) {
        if (config.spans == nullptr) {
            internal_spans.BindRegistry(&reg);
            config.spans = &internal_spans;
        }
        // The sampler must see every request to guarantee "100% of
        // SLO-violating traces kept"; the default trace cap would
        // silently censor the tail.
        config.max_traced_requests =
            std::numeric_limits<int64_t>::max();
    }

    auto result = RunCluster(config);
    T4I_RETURN_IF_ERROR(result.status());

    ScenarioOutcome outcome;
    outcome.cluster = std::move(result).ConsumeValue();
    outcome.policy = RoutingPolicyName(config.policy);

    slo_tracker.Finish(outcome.cluster.duration_s);
    collector.Finish(outcome.cluster.duration_s);

    // --- conservation -------------------------------------------------
    const ClusterResult& r = outcome.cluster;
    outcome.conservation_ok =
        r.arrived == r.completed + r.dropped + r.shed &&
        collector.CheckConservation().ok();
    outcome.client_retries = r.client_retries;

    // --- alert verdict: exact set equality ----------------------------
    outcome.time_to_first_alert_s = -1.0;
    for (const obs::AlertStatus& status : alerts.statuses()) {
        if (status.state != obs::AlertState::kFiring) continue;
        outcome.fired.push_back(status.rule.name);
        if (outcome.time_to_first_alert_s < 0.0 ||
            status.fired_at_s < outcome.time_to_first_alert_s) {
            outcome.time_to_first_alert_s = status.fired_at_s;
            outcome.first_alert = status.rule.name;
        }
    }
    const std::set<std::string> fired(outcome.fired.begin(),
                                      outcome.fired.end());
    const std::set<std::string> expected(scenario.expect.begin(),
                                         scenario.expect.end());
    for (const std::string& name : expected) {
        if (fired.find(name) == fired.end()) {
            outcome.missing.push_back(name);
        }
    }
    for (const std::string& name : outcome.fired) {
        if (expected.find(name) == expected.end()) {
            outcome.unexpected.push_back(name);
        }
    }
    outcome.alerts_pass =
        outcome.missing.empty() && outcome.unexpected.empty();

    // --- goodput trough over the windowed series ----------------------
    // Per window: cluster.completed rate minus serving.slo_miss rate,
    // summed across tenants/cells (window boundaries are shared, so
    // points align by index).
    std::vector<double> good;
    std::vector<double> bad;
    for (const obs::TimeSeries& series : collector.series()) {
        const bool completed = series.name == "cluster.completed";
        const bool miss = series.name == "serving.slo_miss";
        if (!completed && !miss) continue;
        std::vector<double>& sums = completed ? good : bad;
        if (sums.size() < series.points.size()) {
            sums.resize(series.points.size(), 0.0);
        }
        for (size_t i = 0; i < series.points.size(); ++i) {
            sums[i] += series.points[i].rate_per_s;
        }
    }
    // Bound the trough to the traffic span: ramp-in windows before the
    // first completion and drain windows after the last one are not
    // troughs, they are the run's edges.
    size_t first = good.size();
    size_t last = 0;
    for (size_t i = 0; i < good.size(); ++i) {
        if (good[i] <= 0.0) continue;
        if (first == good.size()) first = i;
        last = i;
    }
    double trough = std::numeric_limits<double>::infinity();
    for (size_t i = first; i < good.size() && i <= last; ++i) {
        const double miss_rate = i < bad.size() ? bad[i] : 0.0;
        trough = std::min(trough, good[i] - miss_rate);
    }
    // + 0.0 normalizes the -0.0 that falls out of an all-miss window.
    outcome.goodput_trough_rps =
        first < good.size() ? trough + 0.0 : 0.0;

    // --- tail forensics (after conservation: the sampler's metrics
    // --- appear post-run, so windowed collection never sees them) ----
    if (options.forensics && config.spans != nullptr) {
        obs::TailSamplerOptions sampler_options;
        sampler_options.seed = seed;
        obs::TailSampler sampler(sampler_options);
        for (const obs::AlertStatus& status : alerts.statuses()) {
            if (status.fire_count > 0) {
                sampler.AddAlertWindow(status.fired_at_s,
                                       outcome.cluster.duration_s);
            }
        }
        outcome.forensics =
            obs::BuildForensics(*config.spans, sampler, &reg, &reg);
        for (const auto& [tenant, component] :
             outcome.forensics.critical_path.dominant) {
            if (tenant == scenario.expect_dominant_tenant) {
                outcome.dominant_actual = component;
                break;
            }
        }
        if (!scenario.expect_dominant.empty()) {
            outcome.dominant_pass =
                outcome.dominant_actual == scenario.expect_dominant;
        }
    }

    if (options.build_report) {
        obs::ReportMeta meta;
        meta.command = "check-scenario";
        meta.app = scenario.name;
        meta.duration_s = outcome.cluster.duration_s;
        meta.seed = static_cast<int64_t>(seed);
        meta.window_s = collector.window_s();
        outcome.report = obs::BuildRunReport(
            meta, &reg, &collector, &slo_tracker,
            alerts.rule_count() > 0 ? &alerts : nullptr);
        obs::AttachForensics(outcome.forensics, &outcome.report);
    }
    return outcome;
}

}  // namespace t4i
