#include "src/cluster/routing.h"

namespace t4i {
namespace {

/** Routable cell with the shallowest queue; lowest index on ties so
 *  decisions are reproducible. Returns -1 when none is routable. */
int
LeastLoaded(const std::vector<CellView>& cells)
{
    int best = -1;
    for (size_t i = 0; i < cells.size(); ++i) {
        if (!Routable(cells[i])) continue;
        if (best < 0 ||
            cells[i].queue_depth <
                cells[static_cast<size_t>(best)].queue_depth) {
            best = static_cast<int>(i);
        }
    }
    return best;
}

}  // namespace

const char*
RoutingPolicyName(RoutingPolicy policy)
{
    switch (policy) {
        case RoutingPolicy::kRoundRobin: return "round-robin";
        case RoutingPolicy::kLeastLoaded: return "least-loaded";
        case RoutingPolicy::kPowerOfTwo: return "p2c";
        case RoutingPolicy::kTenantAffinity: return "affinity";
    }
    return "unknown";
}

StatusOr<RoutingPolicy>
ParseRoutingPolicy(const std::string& name)
{
    if (name == "round-robin") return RoutingPolicy::kRoundRobin;
    if (name == "least-loaded") return RoutingPolicy::kLeastLoaded;
    if (name == "p2c") return RoutingPolicy::kPowerOfTwo;
    if (name == "affinity") return RoutingPolicy::kTenantAffinity;
    return Status::InvalidArgument(
        "unknown routing policy '" + name +
        "' (want round-robin, least-loaded, p2c, or affinity)");
}

int
PickCell(RoutingPolicy policy, const std::vector<CellView>& cells,
         uint64_t* rr_cursor, Rng& rng)
{
    switch (policy) {
        case RoutingPolicy::kRoundRobin: {
            // Next routable cell after the cursor; the cursor advances
            // past the pick so failed cells are simply skipped.
            for (size_t k = 0; k < cells.size(); ++k) {
                const size_t i = (*rr_cursor + k) % cells.size();
                if (Routable(cells[i])) {
                    *rr_cursor = i + 1;
                    return static_cast<int>(i);
                }
            }
            return -1;
        }
        case RoutingPolicy::kLeastLoaded:
            return LeastLoaded(cells);
        case RoutingPolicy::kPowerOfTwo: {
            // Sample two distinct routable cells; take the shorter
            // queue (first sample on ties).
            std::vector<int> routable;
            routable.reserve(cells.size());
            for (size_t i = 0; i < cells.size(); ++i) {
                if (Routable(cells[i])) {
                    routable.push_back(static_cast<int>(i));
                }
            }
            if (routable.empty()) return -1;
            if (routable.size() == 1) return routable[0];
            const size_t n = routable.size();
            const size_t a = rng.NextBounded(n);
            size_t b = rng.NextBounded(n - 1);
            if (b >= a) ++b;
            const int ca = routable[a];
            const int cb = routable[b];
            return cells[static_cast<size_t>(cb)].queue_depth <
                           cells[static_cast<size_t>(ca)].queue_depth
                       ? cb
                       : ca;
        }
        case RoutingPolicy::kTenantAffinity: {
            // Least-loaded among cells with the tenant's weights
            // resident; least-loaded overall when none (the one
            // switch penalty paid there buys residency for the next
            // request).
            int best = -1;
            for (size_t i = 0; i < cells.size(); ++i) {
                if (!Routable(cells[i]) || !cells[i].tenant_resident) {
                    continue;
                }
                if (best < 0 ||
                    cells[i].queue_depth <
                        cells[static_cast<size_t>(best)].queue_depth) {
                    best = static_cast<int>(i);
                }
            }
            return best >= 0 ? best : LeastLoaded(cells);
        }
    }
    return -1;
}

}  // namespace t4i
