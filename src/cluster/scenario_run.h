/**
 * @file
 * Scenario execution: one call that turns a parsed load scenario
 * (src/load/scenario.h) into a full cluster run with its own alert
 * engine, windowed time series, and SLO tracker, then grades the run
 * against the scenario's expected-alert set.
 *
 * The grading contract is exact-set equality: the scenario passes iff
 * every `expect`ed rule is firing at run end AND no other rule fires.
 * That is what lets a scenarios/ directory act as a chaos matrix in
 * CI — each file pins which policy breaks first (and which survives)
 * as a checkable fact.
 */
#ifndef T4I_CLUSTER_SCENARIO_RUN_H
#define T4I_CLUSTER_SCENARIO_RUN_H

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/common/status.h"
#include "src/load/scenario.h"
#include "src/obs/critical_path.h"
#include "src/obs/report.h"

namespace t4i {

struct ScenarioRunOptions {
    /** Required. The runner registers all instruments here; use a
     *  fresh registry per run for reproducible artifacts. */
    obs::MetricsRegistry* registry = nullptr;
    /** Replaces the scenario's seed when set (chaos-matrix sweeps). */
    bool override_seed = false;
    uint64_t seed = 0;
    /** Replaces the scenario's routing policy when non-empty (the
     *  "which policy breaks first" axis). */
    std::string policy_override;
    /**
     * Optional tenant builder: maps a scenario tenant onto a full
     * TenantConfig (latency model, batch, SLO). The runner overwrites
     * arrival_rate/deadline/max_queue/priority with the scenario's
     * resolved values afterward. Default: an affine 1 ms + 0.1 ms per
     * sample device model with max_batch 32 and a 10 ms SLO.
     */
    std::function<TenantConfig(const load::ScenarioTenant&)>
        make_tenant;
    /** Assemble `report` in the outcome (skip to save the copy). */
    bool build_report = true;
    /**
     * Tail-forensics pass after the run: trace every request (into
     * `spans` when provided, else an internal collector), classify
     * through the tail sampler, extract critical paths, and grade the
     * scenario's `expect-dominant` contract. Off saves the tracing
     * cost and leaves the forensic sections empty (benches).
     */
    bool forensics = true;
    // Optional extra sinks, threaded straight into ClusterConfig.
    obs::TraceBuilder* trace = nullptr;
    obs::SpanCollector* spans = nullptr;
};

/** The graded result of one scenario run. */
struct ScenarioOutcome {
    ClusterResult cluster;
    std::string policy;  ///< routing policy actually used

    /** Rule names firing at run end (engine order). */
    std::vector<std::string> fired;
    /** Expected rules that stayed quiet. */
    std::vector<std::string> missing;
    /** Firing rules the scenario did not expect. */
    std::vector<std::string> unexpected;
    /** missing and unexpected both empty. */
    bool alerts_pass = false;

    /** Router books close AND the collector's window deltas match the
     *  live registers bit for bit. */
    bool conservation_ok = false;

    /** Earliest fired_at_s across firing rules; < 0 when quiet. */
    double time_to_first_alert_s = -1.0;
    std::string first_alert;

    /**
     * Worst windowed goodput (completions minus SLO misses, per
     * second, summed over tenants) across all windows from the first
     * completion onward — the depth of the metastable trough.
     */
    double goodput_trough_rps = 0.0;

    int64_t client_retries = 0;

    /** Tail-forensics result (empty when options.forensics is off):
     *  kept trace ids, critical paths, exemplar joins. */
    obs::ForensicsResult forensics;
    /** Component actually dominating the graded p99 band ("" when the
     *  band is empty or forensics is off). */
    std::string dominant_actual;
    /** `expect-dominant` verdict; vacuously true without the
     *  directive (or with forensics off). */
    bool dominant_pass = true;

    /** Full artifact (empty when build_report is false). Runs with
     *  identical scenario + seed produce bit-identical JSON. */
    obs::RunReport report;
};

/** True iff the run passed its alert contract, conserved requests,
 *  and honored any `expect-dominant` tail contract — the CI gate's
 *  single bit. */
inline bool
ScenarioPassed(const ScenarioOutcome& outcome)
{
    return outcome.alerts_pass && outcome.conservation_ok &&
           outcome.dominant_pass;
}

/** Runs @p scenario to full drain and grades it. */
StatusOr<ScenarioOutcome> RunScenario(
    const load::Scenario& scenario,
    const ScenarioRunOptions& options);

}  // namespace t4i

#endif  // T4I_CLUSTER_SCENARIO_RUN_H
