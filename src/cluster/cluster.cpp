#include "src/cluster/cluster.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <unordered_map>
#include <utility>

#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/common/strings.h"
#include "src/fleet/planner.h"

namespace t4i {
namespace {

constexpr double kUsPerSecond = 1e6;
constexpr double kInf = std::numeric_limits<double>::infinity();

/** Distinct deterministic per-cell seed stream. */
uint64_t
CellSeed(uint64_t seed, int cell)
{
    return SubstreamSeed(seed, "cluster.cell",
                         static_cast<uint64_t>(cell));
}

/** Per-tenant cluster-wide accounting at the router. */
struct TenantBooks {
    PercentileTracker latencies;
    int64_t arrived = 0;
    int64_t completed = 0;
    int64_t dropped = 0;
    int64_t shed = 0;
    int64_t router_shed = 0;
    int64_t failovers = 0;
    int64_t client_retries = 0;
    int64_t slo_misses = 0;

    obs::Counter* arrived_counter = nullptr;
    obs::Counter* completed_counter = nullptr;
    obs::Counter* dropped_counter = nullptr;
    obs::Counter* shed_counter = nullptr;
    obs::Counter* failover_counter = nullptr;
    obs::Counter* router_shed_counter = nullptr;
    obs::Counter* load_arrival_counter = nullptr;
    obs::Counter* client_retry_counter = nullptr;
    obs::HistogramMetric* latency_hist = nullptr;
};

/** One cell of the pool plus the router's control-plane state. */
struct CellRuntime {
    std::unique_ptr<ServeCell> cell;
    /** Accepting new traffic (autoscaler / canary drain gate). */
    bool active = false;
    bool draining = false;
    /** Router's health belief (may lag ground truth). */
    bool believed_healthy = true;
    /** 1 after the canary swap promoted this cell's version. */
    int version = 0;
};

/** Router-side span context of a traced in-flight request. */
struct TracedRequest {
    uint64_t trace_id = 0;
    obs::SpanId root = 0;
    obs::SpanId route = 0;
};

const char*
OutcomeName(RequestOutcome outcome)
{
    switch (outcome) {
        case RequestOutcome::kCompleted: return "completed";
        case RequestOutcome::kDeadlineDrop: return "deadline_drop";
        case RequestOutcome::kEvicted: return "evicted";
        case RequestOutcome::kRetriesExhausted:
            return "retries_exhausted";
        case RequestOutcome::kDeadCell: return "dead_cell";
    }
    return "unknown";
}

Status
ValidateClusterConfig(const ClusterConfig& config)
{
    if (config.tenants.empty()) {
        return Status::InvalidArgument("no tenants");
    }
    if (config.num_cells < 1) {
        return Status::InvalidArgument("num_cells must be >= 1");
    }
    if (config.devices_per_cell < 1) {
        return Status::InvalidArgument(
            "devices_per_cell must be >= 1");
    }
    if (config.duration_s < 0.0) {
        return Status::InvalidArgument("duration must be >= 0");
    }
    if (config.max_route_attempts < 1) {
        return Status::InvalidArgument(
            "max_route_attempts must be >= 1");
    }
    if (config.standby_cells < 0) {
        return Status::InvalidArgument("standby_cells must be >= 0");
    }
    if (config.control_interval_s <= 0.0) {
        return Status::InvalidArgument(
            "control_interval_s must be positive");
    }
    if (config.health_check_interval_s < 0.0) {
        return Status::InvalidArgument(
            "health_check_interval_s must be >= 0");
    }
    if (config.passthrough) {
        if (config.num_cells != 1 || config.standby_cells != 0 ||
            config.canary.enabled || config.autoscaler.enabled ||
            config.target_availability > 0.0) {
            return Status::InvalidArgument(
                "passthrough requires a single cell and no cluster "
                "features (routing is disabled)");
        }
        if (config.arrival_source != nullptr) {
            return Status::InvalidArgument(
                "arrival_source needs the router (no passthrough)");
        }
    }
    if (config.canary.enabled) {
        if (config.canary.latency_scale <= 0.0) {
            return Status::InvalidArgument(
                "canary latency_scale must be positive");
        }
        if (config.canary.soak_s <= 0.0 ||
            config.canary.abort_p95_ratio <= 0.0) {
            return Status::InvalidArgument(
                "canary soak and abort ratio must be positive");
        }
    }
    if (config.autoscaler.enabled) {
        if (config.autoscaler.interval_s <= 0.0) {
            return Status::InvalidArgument(
                "autoscaler interval must be positive");
        }
        if (config.autoscaler.min_cells < 1) {
            return Status::InvalidArgument(
                "autoscaler min_cells must be >= 1");
        }
    }
    return Status::Ok();
}

/** Builds the per-cell telemetry wiring for cell @p index. */
ServingTelemetry
CellTelemetry(const ClusterConfig& config, int index)
{
    ServingTelemetry telemetry;
    telemetry.registry = config.registry;
    telemetry.trace = config.trace;
    telemetry.trace_pid = config.trace_pid_base + 1 + index;
    telemetry.spans = config.spans;
    // Cells never open their own traces: request spans always descend
    // from the router's root (InjectArrival's trace context).
    telemetry.max_traced_requests_per_tenant = 0;
    telemetry.max_flows_per_tenant = 0;
    telemetry.slo_error_budget = config.slo_error_budget;
    telemetry.batch_attribution = config.batch_attribution;
    telemetry.extra_labels = {{"cell", StrFormat("%d", index)}};
    return telemetry;
}

/** Routing-disabled single-cell mode: the cell draws its own arrival
 *  process, reproducing RunServingCell bit for bit. */
StatusOr<ClusterResult>
RunPassthrough(const ClusterConfig& config)
{
    ServeCell::Options options;
    options.tenants = config.tenants;
    options.num_devices = config.devices_per_cell;
    options.duration_s = config.duration_s;
    options.seed = config.seed;
    options.reliability = config.cell_reliability;
    if (!config.cell_faults.empty()) {
        options.reliability.faults = config.cell_faults[0];
    }
    options.telemetry.registry = config.registry;
    options.telemetry.trace = config.trace;
    options.telemetry.trace_pid = config.trace_pid_base + 1;
    options.telemetry.spans = config.spans;
    options.telemetry.max_traced_requests_per_tenant =
        config.max_traced_requests;
    options.telemetry.slo_error_budget = config.slo_error_budget;
    options.telemetry.batch_attribution = config.batch_attribution;
    options.telemetry.timeseries = config.timeseries;
    options.telemetry.slo = config.slo;
    auto cell_or = ServeCell::Create(std::move(options));
    T4I_RETURN_IF_ERROR(cell_or.status());
    std::unique_ptr<ServeCell> cell = std::move(cell_or).ConsumeValue();
    cell->AdvanceTo(kInf);
    ServingResult cell_result = cell->Finish();

    ClusterResult result;
    result.duration_s = cell_result.duration_s;
    result.initial_active_cells = 1;
    result.peak_active_cells = 1;
    for (const TenantStats& s : cell_result.tenants) {
        ClusterTenantStats t;
        t.name = s.name;
        t.arrived = s.arrived;
        t.completed = s.completed;
        t.dropped = s.dropped;
        t.shed = s.shed;
        t.slo_misses = s.slo_misses;
        t.mean_latency_s = s.mean_latency_s;
        t.p50_latency_s = s.p50_latency_s;
        t.p95_latency_s = s.p95_latency_s;
        t.p99_latency_s = s.p99_latency_s;
        t.slo_miss_fraction = s.slo_miss_fraction;
        t.throughput_rps = s.throughput_rps;
        t.goodput_rps = s.goodput_rps;
        result.tenants.push_back(std::move(t));
        result.arrived += s.arrived;
        result.completed += s.completed;
        result.dropped += s.dropped;
        result.shed += s.shed;
    }
    result.availability =
        result.arrived > 0 ? static_cast<double>(result.completed) /
                                 static_cast<double>(result.arrived)
                           : 1.0;
    result.cells.push_back(std::move(cell_result));
    return result;
}

}  // namespace

FaultPlan
CellOutagePlan(int num_devices, double fail_at_s, double repair_at_s)
{
    FaultPlan plan;
    plan.scripted.reserve(static_cast<size_t>(num_devices));
    for (int d = 0; d < num_devices; ++d) {
        plan.scripted.push_back(
            ScriptedFault{d, fail_at_s, repair_at_s});
    }
    return plan;
}

double
PredictedAvailabilityFloor(int needed, int total,
                           double cell_availability)
{
    return CellAvailability(needed, total, cell_availability);
}

StatusOr<ClusterResult>
RunCluster(const ClusterConfig& config)
{
    T4I_RETURN_IF_ERROR(ValidateClusterConfig(config));
    if (config.passthrough) return RunPassthrough(config);

    const size_t num_tenants = config.tenants.size();
    const double duration = config.duration_s;

    // --- N+k seeding of the initial active set -----------------------
    // The pool is every cell ever built; parked cells cost nothing
    // while idle. Steady-state per-cell availability (the worst plan
    // in the pool) feeds the spare planner.
    const int pool_size = config.num_cells + config.standby_cells;
    double cell_availability = 1.0;
    for (const FaultPlan& plan : config.cell_faults) {
        cell_availability =
            std::min(cell_availability, SteadyStateAvailability(plan));
    }
    int planned_spares = 0;
    if (config.target_availability > 0.0 &&
        config.standby_cells > 0) {
        const int64_t k = NPlusKSpares(
            config.num_cells, cell_availability,
            config.target_availability, config.standby_cells);
        planned_spares = static_cast<int>(
            std::min<int64_t>(k, config.standby_cells));
    }
    const int initial_active = config.num_cells + planned_spares;

    // --- build the pool ---------------------------------------------
    std::vector<CellRuntime> pool(static_cast<size_t>(pool_size));
    for (int i = 0; i < pool_size; ++i) {
        ServeCell::Options options;
        options.tenants = config.tenants;
        options.num_devices = config.devices_per_cell;
        options.duration_s = duration;
        options.seed = CellSeed(config.seed, i);
        options.telemetry = CellTelemetry(config, i);
        options.reliability = config.cell_reliability;
        options.reliability.faults =
            static_cast<size_t>(i) < config.cell_faults.size()
                ? config.cell_faults[static_cast<size_t>(i)]
                : FaultPlan{};
        options.external_arrivals = true;
        options.request_span_name = "cell";
        auto cell_or = ServeCell::Create(std::move(options));
        T4I_RETURN_IF_ERROR(cell_or.status());
        pool[static_cast<size_t>(i)].cell =
            std::move(cell_or).ConsumeValue();
        pool[static_cast<size_t>(i)].active = i < initial_active;
        if (config.trace != nullptr) {
            config.trace->SetProcessName(
                config.trace_pid_base + 1 + i,
                StrFormat("cell %d", i));
        }
    }

    obs::TraceBuilder* trace = config.trace;
    const int router_pid = config.trace_pid_base;
    if (trace != nullptr) {
        trace->SetProcessName(router_pid, "cluster router");
        trace->SetThreadName(router_pid, 0, "router");
    }
    obs::SpanCollector* spans = config.spans;
    obs::AlertEngine* alerts =
        (config.alerts != nullptr && config.registry != nullptr)
            ? config.alerts
            : nullptr;
    obs::TimeSeriesCollector* timeseries =
        (config.timeseries != nullptr && config.registry != nullptr)
            ? config.timeseries
            : nullptr;
    obs::SloTracker* slo_tracker =
        (config.slo != nullptr && config.registry != nullptr)
            ? config.slo
            : nullptr;

    // --- cluster instruments (all exist even when idle, so exports
    // and the CI schema stay stable) ----------------------------------
    std::vector<TenantBooks> books(num_tenants);
    obs::Gauge* availability_gauge = nullptr;
    obs::Gauge* active_cells_gauge = nullptr;
    if (config.registry != nullptr) {
        obs::MetricsRegistry& reg = *config.registry;
        for (size_t t = 0; t < num_tenants; ++t) {
            const obs::Labels labels = {
                {"tenant", config.tenants[t].name}};
            books[t].arrived_counter =
                reg.GetCounter("cluster.arrived", labels);
            books[t].completed_counter =
                reg.GetCounter("cluster.completed", labels);
            books[t].dropped_counter =
                reg.GetCounter("cluster.dropped", labels);
            books[t].shed_counter =
                reg.GetCounter("cluster.shed", labels);
            books[t].failover_counter =
                reg.GetCounter("cluster.failovers", labels);
            books[t].router_shed_counter =
                reg.GetCounter("cluster.router_shed", labels);
            // load.* instruments exist even without an arrival source
            // so the export schema is stable across run modes.
            books[t].load_arrival_counter =
                reg.GetCounter("load.arrivals", labels);
            books[t].client_retry_counter =
                reg.GetCounter("load.client_retries", labels);
            books[t].latency_hist =
                reg.GetHistogram("cluster.latency_seconds", labels);
        }
        availability_gauge = reg.GetGauge("cluster.availability");
        active_cells_gauge = reg.GetGauge("cluster.active_cells");
        reg.GetGauge("cluster.cells_total")
            ->Set(static_cast<double>(pool_size));
        // Touched so the instruments exist at zero from the start.
        reg.GetCounter("cluster.upscales");
        reg.GetCounter("cluster.downscales");
        reg.GetGauge("cluster.rollout_promoted")->Set(0.0);
        reg.GetGauge("cluster.rollout_aborted")->Set(0.0);
    }

    ClusterResult result;
    result.initial_active_cells = initial_active;
    result.peak_active_cells = initial_active;
    result.planned_spares = planned_spares;

    int active_count = initial_active;
    auto emit_active_cells = [&](double t) {
        if (active_cells_gauge != nullptr) {
            active_cells_gauge->Set(
                static_cast<double>(active_count));
        }
        if (trace != nullptr) {
            trace->AddCounter(router_pid, "active cells",
                              t * kUsPerSecond,
                              static_cast<double>(active_count));
        }
    };
    emit_active_cells(0.0);

    // --- request-end plumbing ---------------------------------------
    // Hooks fire inside AdvanceTo as cells reach each admitted
    // request's terminal event; the router keeps cluster-wide books,
    // canary soak windows, the autoscaler burn window, and closes its
    // spans from here.
    std::unordered_map<uint64_t, TracedRequest> traced;
    uint64_t next_request_id = 1;
    int64_t window_completed = 0;
    int64_t window_misses = 0;
    // Canary soak state (valid while soaking_cell >= 0).
    int soaking_cell = -1;
    double soak_start = 0.0;
    PercentileTracker canary_lat;
    PercentileTracker baseline_lat;

    load::ArrivalSource* source = config.arrival_source;

    auto on_request_end = [&](int cell_index, const RequestEnd& e) {
        // Closed-loop / retry-storm feedback: the source learns the
        // terminal outcome of every arrival it emitted (completion
        // counts as success even on an SLO miss — the client got an
        // answer; only losses look like timeouts to it).
        if (source != nullptr && e.load_id != 0) {
            source->OnRequestEnd(
                e.load_id, e.end_s,
                e.outcome == RequestOutcome::kCompleted);
        }
        TenantBooks& b = books[e.tenant];
        switch (e.outcome) {
            case RequestOutcome::kCompleted: {
                const double latency = e.end_s - e.arrival_s;
                ++b.completed;
                b.latencies.Add(latency);
                if (e.slo_miss) ++b.slo_misses;
                if (b.completed_counter != nullptr) {
                    b.completed_counter->Increment();
                    b.latency_hist->Observe(latency);
                    if (e.tag != 0 && spans != nullptr) {
                        // The traced entry is erased further down in
                        // this callback, so the lookup still resolves.
                        auto it = traced.find(e.tag);
                        if (it != traced.end()) {
                            b.latency_hist->AttachExemplar(
                                latency, it->second.trace_id, e.end_s);
                        }
                    }
                }
                ++window_completed;
                if (e.slo_miss) ++window_misses;
                if (soaking_cell >= 0 && e.end_s >= soak_start) {
                    const CellRuntime& rt =
                        pool[static_cast<size_t>(cell_index)];
                    if (cell_index == soaking_cell) {
                        canary_lat.Add(latency);
                    } else if (rt.active && !rt.draining) {
                        baseline_lat.Add(latency);
                    }
                }
                break;
            }
            case RequestOutcome::kEvicted:
                ++b.shed;
                if (b.shed_counter != nullptr) {
                    b.shed_counter->Increment();
                }
                break;
            case RequestOutcome::kDeadlineDrop:
            case RequestOutcome::kRetriesExhausted:
            case RequestOutcome::kDeadCell:
                ++b.dropped;
                if (b.dropped_counter != nullptr) {
                    b.dropped_counter->Increment();
                }
                break;
        }
        if (e.tag != 0 && spans != nullptr) {
            auto it = traced.find(e.tag);
            if (it != traced.end()) {
                spans->SetAttribute(it->second.root, "outcome",
                                    OutcomeName(e.outcome));
                if (e.slo_miss) {
                    spans->SetAttribute(it->second.root, "slo_miss",
                                        "1");
                }
                spans->EndSpan(it->second.route, e.end_s);
                spans->EndSpan(it->second.root, e.end_s);
                traced.erase(it);
            }
        }
    };
    for (int i = 0; i < pool_size; ++i) {
        pool[static_cast<size_t>(i)].cell->set_request_end_hook(
            [&, i](const RequestEnd& e) { on_request_end(i, e); });
    }

    auto advance_all = [&](double t) {
        for (auto& rt : pool) rt.cell->AdvanceTo(t);
    };

    // --- health belief -----------------------------------------------
    // With a check interval the router acts on a stale snapshot and
    // keeps routing to a dead cell until the next probe notices.
    auto refresh_health = [&](double t) {
        for (int i = 0; i < pool_size; ++i) {
            CellRuntime& rt = pool[static_cast<size_t>(i)];
            const bool healthy = rt.cell->Healthy(t);
            if (healthy != rt.believed_healthy && trace != nullptr) {
                trace->AddInstant(
                    router_pid, 0,
                    StrFormat("cell %d %s", i,
                              healthy ? "healthy" : "unhealthy"),
                    t * kUsPerSecond);
            }
            rt.believed_healthy = healthy;
        }
    };
    double next_health_check = config.health_check_interval_s;

    auto build_views = [&](size_t tenant, double t) {
        std::vector<CellView> views(static_cast<size_t>(pool_size));
        for (int i = 0; i < pool_size; ++i) {
            const CellRuntime& rt = pool[static_cast<size_t>(i)];
            CellView& v = views[static_cast<size_t>(i)];
            v.healthy = config.health_check_interval_s > 0.0
                            ? rt.believed_healthy
                            : rt.cell->Healthy(t);
            v.accepting = rt.active && !rt.draining;
            v.queue_depth = rt.cell->QueueDepth();
            v.tenant_resident = rt.cell->TenantResident(tenant);
        }
        return views;
    };

    // --- the router --------------------------------------------------
    // The router owns the arrival processes a lone cell would draw
    // internally, so it uses the *same* named substream the cell's
    // arrival stream derives from — that is what keeps the
    // single-tenant single-cell router path bit-identical to
    // RunServingCell (the cells themselves run on CellSeed streams,
    // so there is no collision).
    Rng router_rng = Substream(config.seed, "serving.arrivals");
    uint64_t rr_cursor = 0;
    std::vector<double> next_arrival(num_tenants, kInf);
    if (source == nullptr) {
        for (size_t t = 0; t < num_tenants; ++t) {
            next_arrival[t] =
                DrawNextArrival(router_rng, config.tenants[t], 0.0);
        }
    }
    int router_shed_instants = 0;

    // @p emit carries the load-program descriptor (size, per-request
    // deadline, feedback id, retry flag); null for the router's own
    // Poisson draws.
    auto route_arrival = [&](size_t tenant, double t,
                             const load::LoadArrival* emit) {
        TenantBooks& b = books[tenant];
        ++b.arrived;
        if (b.arrived_counter != nullptr) {
            b.arrived_counter->Increment();
            b.load_arrival_counter->Increment();
        }
        if (emit != nullptr && emit->client_retry) {
            ++b.client_retries;
            if (b.client_retry_counter != nullptr) {
                b.client_retry_counter->Increment();
            }
        }
        uint64_t tag = 0;
        TracedRequest tr;
        if (spans != nullptr &&
            next_request_id <=
                static_cast<uint64_t>(config.max_traced_requests)) {
            tag = next_request_id;
            tr.trace_id = spans->NewTrace();
            tr.root = spans->StartSpan(tr.trace_id, 0, "request", t);
            spans->SetAttribute(tr.root, "tenant",
                                config.tenants[tenant].name);
            spans->SetAttribute(tr.root, "policy",
                                RoutingPolicyName(config.policy));
        }
        ++next_request_id;

        std::vector<CellView> views = build_views(tenant, t);
        std::vector<obs::SpanId> failed_routes;
        bool admitted = false;
        for (int attempt = 0; attempt < config.max_route_attempts;
             ++attempt) {
            const int pick = PickCell(config.policy, views,
                                      &rr_cursor, router_rng);
            if (pick < 0) break;
            obs::SpanId route = 0;
            if (tag != 0) {
                route = spans->StartSpan(tr.trace_id, tr.root,
                                         "route", t);
                spans->SetAttribute(route, "cell",
                                    StrFormat("%d", pick));
                spans->SetAttribute(route, "attempt",
                                    StrFormat("%d", attempt));
            }
            ServeCell::ExternalArrival ext;
            ext.tenant = tenant;
            ext.arrival_s = t;
            if (emit != nullptr) {
                ext.size = emit->size;
                ext.deadline_s = emit->deadline_s;
                ext.load_id = emit->id;
            }
            ext.trace_id = tr.trace_id;
            ext.parent_span = route;
            ext.tag = tag;
            const ServeCell::Injected injected =
                pool[static_cast<size_t>(pick)].cell->InjectArrival(
                    ext);
            if (injected.admitted) {
                admitted = true;
                if (attempt > 0) {
                    ++b.failovers;
                    if (b.failover_counter != nullptr) {
                        b.failover_counter->Increment();
                    }
                }
                if (tag != 0) {
                    tr.route = route;
                    // Shed attempts link to the attempt that won,
                    // like hedge losers to the winning copy.
                    for (obs::SpanId loser : failed_routes) {
                        spans->Link(loser, route);
                    }
                    traced[tag] = tr;
                }
                break;
            }
            // Door shed: the cell booked arrived+shed; the router
            // retries the remaining cells.
            if (tag != 0) {
                spans->SetAttribute(route, "outcome", "shed");
                spans->EndSpan(route, t);
                failed_routes.push_back(route);
            }
            views[static_cast<size_t>(pick)].accepting = false;
        }
        if (!admitted) {
            ++b.shed;
            ++b.router_shed;
            if (b.shed_counter != nullptr) {
                b.shed_counter->Increment();
                b.router_shed_counter->Increment();
            }
            // A router shed is terminal for the client immediately:
            // closed-loop sources free the slot, retry storms see a
            // fast failure.
            if (source != nullptr && emit != nullptr &&
                emit->id != 0) {
                source->OnRequestEnd(emit->id, t, false);
            }
            if (tag != 0) {
                spans->SetAttribute(tr.root, "outcome",
                                    "router_shed");
                spans->EndSpan(tr.root, t);
            }
            if (trace != nullptr && router_shed_instants < 256) {
                ++router_shed_instants;
                trace->AddInstant(router_pid, 0, "router shed",
                                  t * kUsPerSecond);
            }
        }
    };

    auto live_availability = [&]() {
        int64_t arrived = 0;
        int64_t completed = 0;
        for (const TenantBooks& b : books) {
            arrived += b.arrived;
            completed += b.completed;
        }
        return arrived > 0 ? static_cast<double>(completed) /
                                 static_cast<double>(arrived)
                           : 1.0;
    };

    // --- canary rollout state machine --------------------------------
    const CanaryConfig& canary = config.canary;
    enum class RolloutPhase { kIdle, kDraining, kSoaking, kDone };
    RolloutPhase rollout_phase =
        canary.enabled ? RolloutPhase::kIdle : RolloutPhase::kDone;
    int rollout_cursor = 0;  // next pool index to consider
    int rollout_cell = -1;
    RolloutStep current_step;

    auto rollout_tick = [&](double t) {
        if (rollout_phase == RolloutPhase::kIdle &&
            t >= canary.start_s) {
            // Next active cell in pool order; pool exhausted = done.
            while (rollout_cursor < pool_size &&
                   !pool[static_cast<size_t>(rollout_cursor)].active) {
                ++rollout_cursor;
            }
            if (rollout_cursor >= pool_size) {
                rollout_phase = RolloutPhase::kDone;
                result.rollout_complete = true;
                return;
            }
            rollout_cell = rollout_cursor;
            current_step = RolloutStep{};
            current_step.cell = rollout_cell;
            current_step.drain_start_s = t;
            pool[static_cast<size_t>(rollout_cell)].draining = true;
            rollout_phase = RolloutPhase::kDraining;
            if (trace != nullptr) {
                trace->AddInstant(
                    router_pid, 0,
                    StrFormat("canary drain: cell %d", rollout_cell),
                    t * kUsPerSecond);
            }
        }
        if (rollout_phase == RolloutPhase::kDraining &&
            pool[static_cast<size_t>(rollout_cell)].cell->Drained()) {
            CellRuntime& rt = pool[static_cast<size_t>(rollout_cell)];
            rt.cell->SetLatencyScale(canary.latency_scale);
            rt.version = 1;
            rt.draining = false;
            current_step.swap_s = t;
            soaking_cell = rollout_cell;
            soak_start = t;
            canary_lat = PercentileTracker{};
            baseline_lat = PercentileTracker{};
            rollout_phase = RolloutPhase::kSoaking;
            if (trace != nullptr) {
                trace->AddInstant(
                    router_pid, 0,
                    StrFormat("canary swap: cell %d", rollout_cell),
                    t * kUsPerSecond);
            }
        }
        if (rollout_phase == RolloutPhase::kSoaking &&
            t >= soak_start + canary.soak_s &&
            canary_lat.count() >= canary.min_samples &&
            baseline_lat.count() >= canary.min_samples) {
            current_step.verdict_s = t;
            current_step.canary_p95_s = canary_lat.Percentile(95.0);
            current_step.baseline_p95_s =
                baseline_lat.Percentile(95.0);
            const bool abort =
                current_step.canary_p95_s >
                canary.abort_p95_ratio * current_step.baseline_p95_s;
            CellRuntime& rt = pool[static_cast<size_t>(rollout_cell)];
            if (abort) {
                // Roll the cell back to the old version and stop the
                // rollout fleet-wide.
                rt.cell->SetLatencyScale(1.0);
                rt.version = 0;
                current_step.aborted = true;
                result.rollout_aborted = true;
                rollout_phase = RolloutPhase::kDone;
            } else {
                current_step.promoted = true;
                ++rollout_cursor;
                rollout_phase = RolloutPhase::kIdle;
            }
            if (trace != nullptr) {
                trace->AddInstant(
                    router_pid, 0,
                    StrFormat("canary %s: cell %d",
                              abort ? "abort" : "promote",
                              rollout_cell),
                    t * kUsPerSecond);
            }
            result.rollout.push_back(current_step);
            soaking_cell = -1;
            // An abort ends the run's rollout; a promote may find the
            // pool exhausted on the next idle tick.
        }
    };

    // --- burn-rate autoscaler ----------------------------------------
    const AutoscalerConfig& scaler = config.autoscaler;
    double next_autoscale =
        scaler.enabled ? scaler.interval_s : kInf;

    auto autoscale_tick = [&](double t) {
        const double burn =
            window_completed > 0
                ? (static_cast<double>(window_misses) /
                   static_cast<double>(window_completed)) /
                      std::max(config.slo_error_budget, 1e-12)
                : 0.0;
        if (burn > scaler.upscale_burn) {
            // Activate the lowest-index parked cell.
            for (int i = 0; i < pool_size; ++i) {
                CellRuntime& rt = pool[static_cast<size_t>(i)];
                if (rt.active) continue;
                rt.active = true;
                ++active_count;
                ++result.upscales;
                result.peak_active_cells =
                    std::max(result.peak_active_cells, active_count);
                result.scale_events.push_back(
                    ScaleEvent{t, i, true, burn});
                if (config.registry != nullptr) {
                    config.registry->GetCounter("cluster.upscales")
                        ->Increment();
                }
                if (trace != nullptr) {
                    trace->AddInstant(
                        router_pid, 0,
                        StrFormat("scale up: cell %d", i),
                        t * kUsPerSecond);
                }
                emit_active_cells(t);
                break;
            }
        } else if (burn < scaler.downscale_burn &&
                   active_count > scaler.min_cells) {
            // Park the highest-index active cell not involved in the
            // rollout; it finishes its queue and goes idle.
            for (int i = pool_size - 1; i >= 0; --i) {
                CellRuntime& rt = pool[static_cast<size_t>(i)];
                if (!rt.active || rt.draining || i == soaking_cell) {
                    continue;
                }
                rt.active = false;
                --active_count;
                ++result.downscales;
                result.scale_events.push_back(
                    ScaleEvent{t, i, false, burn});
                if (config.registry != nullptr) {
                    config.registry->GetCounter("cluster.downscales")
                        ->Increment();
                }
                if (trace != nullptr) {
                    trace->AddInstant(router_pid, 0,
                                      StrFormat("park: cell %d", i),
                                      t * kUsPerSecond);
                }
                emit_active_cells(t);
                break;
            }
        }
        window_completed = 0;
        window_misses = 0;
    };

    auto control_tick = [&](double t) {
        if (config.health_check_interval_s > 0.0) {
            while (next_health_check <= t) {
                refresh_health(next_health_check);
                next_health_check += config.health_check_interval_s;
            }
        }
        rollout_tick(t);
        while (next_autoscale <= t) {
            autoscale_tick(next_autoscale);
            next_autoscale += scaler.interval_s;
        }
        if (availability_gauge != nullptr) {
            availability_gauge->Set(live_availability());
        }
        // SLO budgets accrue before windows close so slo.* gauges land
        // in the window that describes them; a collector that routes
        // alerts evaluates them at each window close instead of here.
        if (slo_tracker != nullptr) slo_tracker->Tick(t);
        if (timeseries != nullptr) timeseries->Tick(t);
        if (alerts != nullptr &&
            (timeseries == nullptr || !timeseries->routes_alerts())) {
            alerts->Evaluate(*config.registry, t);
        }
    };

    // --- main event loop: arrivals + control cadence -----------------
    // Close the cells' arrival streams the moment every tenant's next
    // draw lands past the horizon: cells then waive batch patience for
    // the tail exactly like an internally-drawing cell whose next
    // arrival is past duration_s, which is what makes the single-
    // tenant router path reproduce RunServingCell bit for bit.
    bool arrivals_open = true;
    auto maybe_close_arrivals = [&]() {
        if (!arrivals_open || source != nullptr) return;
        for (size_t t = 0; t < num_tenants; ++t) {
            if (next_arrival[t] < duration) return;
        }
        arrivals_open = false;
        for (auto& rt : pool) rt.cell->CloseArrivals();
    };
    maybe_close_arrivals();
    double next_control = config.control_interval_s;
    if (source == nullptr) {
        while (true) {
            size_t arrival_tenant = 0;
            double arrival_t = kInf;
            for (size_t t = 0; t < num_tenants; ++t) {
                if (next_arrival[t] < duration &&
                    next_arrival[t] < arrival_t) {
                    arrival_t = next_arrival[t];
                    arrival_tenant = t;
                }
            }
            const bool have_arrival = arrival_t < kInf;
            const bool have_control = next_control <= duration;
            if (!have_arrival && !have_control) break;
            if (have_control &&
                (!have_arrival || next_control <= arrival_t)) {
                advance_all(next_control);
                control_tick(next_control);
                next_control += config.control_interval_s;
                continue;
            }
            advance_all(arrival_t);
            route_arrival(arrival_tenant, arrival_t, nullptr);
            next_arrival[arrival_tenant] = DrawNextArrival(
                router_rng, config.tenants[arrival_tenant],
                arrival_t);
            maybe_close_arrivals();
        }
    } else {
        // Source-driven arrivals. The source never emits at or past
        // the horizon, but feedback-gated programs (closed-loop
        // replay, retry storms) only schedule their next emission once
        // a cell reports a terminal outcome, which happens inside
        // advance_all — so after the control cadence runs out the loop
        // keeps stepping time until the source drains. The iteration
        // guard is a backstop against a source that never exhausts.
        double now = 0.0;
        int64_t guard = 0;
        constexpr int64_t kMaxIterations = 50000000;
        while (++guard < kMaxIterations) {
            load::LoadArrival peek;
            const bool have_arrival = source->Peek(&peek);
            const bool have_control = next_control <= duration;
            if (have_control &&
                (!have_arrival || next_control <= peek.t_s)) {
                now = next_control;
                advance_all(now);
                control_tick(now);
                next_control += config.control_interval_s;
                continue;
            }
            if (have_arrival) {
                now = std::max(now, peek.t_s);
                advance_all(now);
                // Feedback delivered during that advance may have
                // scheduled emissions at or before `now` (a retry with
                // a short backoff); drain everything due, clamped to
                // the clock — time cannot run backwards.
                load::LoadArrival due;
                while (source->Peek(&due) && due.t_s <= now) {
                    load::LoadArrival a = source->Take();
                    route_arrival(a.tenant, now, &a);
                }
                continue;
            }
            if (source->Exhausted()) break;
            // Nothing scheduled and the program is waiting on
            // feedback: step a control interval so in-flight requests
            // reach their terminal events.
            now += config.control_interval_s;
            advance_all(now);
        }
    }

    // --- drain -------------------------------------------------------
    if (arrivals_open) {
        for (auto& rt : pool) rt.cell->CloseArrivals();
    }
    for (auto& rt : pool) rt.cell->AdvanceTo(kInf);

    // --- aggregate ---------------------------------------------------
    result.duration_s = duration;
    result.cells.reserve(pool.size());
    for (auto& rt : pool) {
        ServingResult cell_result = rt.cell->Finish();
        result.duration_s =
            std::max(result.duration_s, cell_result.duration_s);
        result.cells.push_back(std::move(cell_result));
    }
    for (size_t t = 0; t < num_tenants; ++t) {
        TenantBooks& b = books[t];
        ClusterTenantStats s;
        s.name = config.tenants[t].name;
        s.arrived = b.arrived;
        s.completed = b.completed;
        s.dropped = b.dropped;
        s.shed = b.shed;
        s.router_shed = b.router_shed;
        s.failovers = b.failovers;
        s.client_retries = b.client_retries;
        s.slo_misses = b.slo_misses;
        s.mean_latency_s = b.latencies.Mean();
        s.p50_latency_s = b.latencies.Percentile(50.0);
        s.p95_latency_s = b.latencies.Percentile(95.0);
        s.p99_latency_s = b.latencies.Percentile(99.0);
        s.slo_miss_fraction =
            b.completed > 0 ? static_cast<double>(b.slo_misses) /
                                  static_cast<double>(b.completed)
                            : 0.0;
        s.throughput_rps =
            result.duration_s > 0.0
                ? static_cast<double>(b.completed) / result.duration_s
                : 0.0;
        s.goodput_rps =
            result.duration_s > 0.0
                ? static_cast<double>(b.completed - b.slo_misses) /
                      result.duration_s
                : 0.0;
        result.arrived += s.arrived;
        result.completed += s.completed;
        result.dropped += s.dropped;
        result.shed += s.shed;
        result.router_shed += s.router_shed;
        result.failovers += s.failovers;
        result.client_retries += s.client_retries;
        result.tenants.push_back(std::move(s));
    }
    result.availability =
        result.arrived > 0 ? static_cast<double>(result.completed) /
                                 static_cast<double>(result.arrived)
                           : 1.0;
    if (rollout_phase == RolloutPhase::kDone &&
        !result.rollout_aborted && canary.enabled &&
        rollout_cursor >= pool_size) {
        result.rollout_complete = true;
    }

    if (config.registry != nullptr) {
        obs::MetricsRegistry& reg = *config.registry;
        if (availability_gauge != nullptr) {
            availability_gauge->Set(result.availability);
        }
        reg.GetGauge("cluster.duration_seconds")
            ->Set(result.duration_s);
        reg.GetGauge("cluster.rollout_promoted")
            ->Set(static_cast<double>(std::count_if(
                result.rollout.begin(), result.rollout.end(),
                [](const RolloutStep& r) { return r.promoted; })));
        reg.GetGauge("cluster.rollout_aborted")
            ->Set(result.rollout_aborted ? 1.0 : 0.0);
        for (const ClusterTenantStats& s : result.tenants) {
            const obs::Labels labels = {{"tenant", s.name}};
            reg.GetGauge("cluster.p95_latency_seconds", labels)
                ->Set(s.p95_latency_s);
            reg.GetGauge("cluster.throughput_rps", labels)
                ->Set(s.throughput_rps);
            reg.GetGauge("cluster.goodput_rps", labels)
                ->Set(s.goodput_rps);
            reg.GetGauge("cluster.slo_miss_fraction", labels)
                ->Set(s.slo_miss_fraction);
        }
    }
    // Final alert verdict over the end-of-run cluster gauges.
    if (alerts != nullptr) {
        alerts->Evaluate(*config.registry, result.duration_s);
    }
    return result;
}

}  // namespace t4i
