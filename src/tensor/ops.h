/**
 * @file
 * Reference operator implementations (the functional oracle).
 *
 * Each operator has an fp32 version and, where the datapath differs, a
 * precision-emulating version (bf16 inputs with fp32 accumulation, the MXU
 * contract; int8 fake-quantized inputs, the TPUv1 contract). These power
 * experiment E13 and the compiler-correctness tests.
 */
#ifndef T4I_TENSOR_OPS_H
#define T4I_TENSOR_OPS_H

#include "src/common/status.h"
#include "src/tensor/tensor.h"

namespace t4i {

/** Matmul precision modes matching the hardware datapaths. */
enum class MatmulPrecision {
    kFp32,        ///< exact fp32 reference
    kBf16,        ///< bf16 inputs, fp32 accumulate (TPUv2+ MXU)
    kInt8,        ///< per-tensor fake-quantized int8 inputs (TPUv1 path)
};

/** C[M,N] = A[M,K] * B[K,N]. */
StatusOr<Tensor> Matmul(const Tensor& a, const Tensor& b,
                        MatmulPrecision precision = MatmulPrecision::kFp32);

/** Adds a length-N bias vector to each row of a [M,N] tensor. */
StatusOr<Tensor> BiasAdd(const Tensor& x, const Tensor& bias);

/** Elementwise max(x, 0). */
Tensor Relu(const Tensor& x);

/** Elementwise tanh. */
Tensor Tanh(const Tensor& x);

/** Elementwise logistic sigmoid. */
Tensor Sigmoid(const Tensor& x);

/** GELU (tanh approximation), used by BERT-style models. */
Tensor Gelu(const Tensor& x);

/** Row-wise softmax over the last dimension of a rank-2 tensor. */
StatusOr<Tensor> Softmax(const Tensor& x);

/** Row-wise layer normalization (eps 1e-5) of a rank-2 tensor. */
StatusOr<Tensor> LayerNorm(const Tensor& x);

/**
 * 2-D convolution, NHWC activations and HWIO weights, "SAME"-style
 * explicit padding, unit dilation.
 *
 * @param input  [N, H, W, Cin]
 * @param kernel [KH, KW, Cin, Cout]
 */
StatusOr<Tensor> Conv2d(const Tensor& input, const Tensor& kernel,
                        int stride, int pad,
                        MatmulPrecision precision = MatmulPrecision::kFp32);

/** Max pooling, NHWC, square window. */
StatusOr<Tensor> MaxPool2d(const Tensor& input, int window, int stride);

/** Global average pooling: [N,H,W,C] -> [N,C]. */
StatusOr<Tensor> GlobalAvgPool(const Tensor& input);

/** One LSTM cell step state bundle. */
struct LstmState {
    Tensor h;  ///< hidden state [batch, hidden]
    Tensor c;  ///< cell state   [batch, hidden]
};

/**
 * Single LSTM cell step.
 *
 * @param x        input [batch, input_dim]
 * @param state    previous state
 * @param w_ih     [input_dim, 4*hidden] (i, f, g, o gate order)
 * @param w_hh     [hidden, 4*hidden]
 * @param bias     [4*hidden]
 */
StatusOr<LstmState> LstmCell(const Tensor& x, const LstmState& state,
                             const Tensor& w_ih, const Tensor& w_hh,
                             const Tensor& bias,
                             MatmulPrecision precision =
                                 MatmulPrecision::kFp32);

/**
 * Single-head scaled dot-product attention over rank-2 [seq, dim]
 * q/k/v tensors (one batch element, one head).
 */
StatusOr<Tensor> Attention(const Tensor& q, const Tensor& k,
                           const Tensor& v,
                           MatmulPrecision precision =
                               MatmulPrecision::kFp32);

/** Elementwise sum of equal-shaped tensors (residual connections). */
StatusOr<Tensor> Add(const Tensor& a, const Tensor& b);

}  // namespace t4i

#endif  // T4I_TENSOR_OPS_H
