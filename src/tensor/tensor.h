/**
 * @file
 * Dense fp32 tensor used as the functional/numerics reference.
 *
 * The cycle-level simulator never moves real data; it reasons about shapes
 * and bytes. This tensor exists so that (a) the reference operators give a
 * numerics oracle for the bf16/int8 experiments (E13), and (b) compiler
 * tests can check that tiling/fusion transformations preserve semantics.
 */
#ifndef T4I_TENSOR_TENSOR_H
#define T4I_TENSOR_TENSOR_H

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/status.h"

namespace t4i {

/** Tensor shape: a small vector of dimensions, row-major layout. */
class Shape {
  public:
    Shape() = default;
    Shape(std::initializer_list<int64_t> dims) : dims_(dims) {}
    explicit Shape(std::vector<int64_t> dims) : dims_(std::move(dims)) {}

    int rank() const { return static_cast<int>(dims_.size()); }
    int64_t dim(int i) const { return dims_[static_cast<size_t>(i)]; }
    const std::vector<int64_t>& dims() const { return dims_; }

    /** Total element count (1 for rank-0). */
    int64_t NumElements() const;

    /** "[2, 128, 768]" style rendering. */
    std::string ToString() const;

    friend bool
    operator==(const Shape& a, const Shape& b)
    {
        return a.dims_ == b.dims_;
    }

  private:
    std::vector<int64_t> dims_;
};

/** Dense row-major fp32 tensor. */
class Tensor {
  public:
    Tensor() = default;

    /** Allocates a zero-filled tensor of the given shape. */
    explicit Tensor(Shape shape);

    /** Wraps existing data; size must match the shape. */
    Tensor(Shape shape, std::vector<float> data);

    const Shape& shape() const { return shape_; }
    int64_t NumElements() const { return shape_.NumElements(); }

    const std::vector<float>& data() const { return data_; }
    std::vector<float>& data() { return data_; }

    float operator[](int64_t i) const { return data_[static_cast<size_t>(i)]; }
    float& operator[](int64_t i) { return data_[static_cast<size_t>(i)]; }

    /** 2-D accessor (row-major); tensor must be rank 2. */
    float At2(int64_t r, int64_t c) const;
    float& At2(int64_t r, int64_t c);

    /** Fills with uniform values in [lo, hi) from @p rng. */
    void FillUniform(Rng& rng, float lo, float hi);

    /** Fills with zero-mean Gaussian of the given stddev. */
    void FillGaussian(Rng& rng, float stddev);

  private:
    Shape shape_;
    std::vector<float> data_;
};

}  // namespace t4i

#endif  // T4I_TENSOR_TENSOR_H
