/**
 * @file
 * Functional graph executor: runs a model Graph on real tensors using
 * the reference operators, under a chosen numeric precision.
 *
 * This is the semantic counterpart of the performance simulator. It
 * exists for two jobs:
 *  1. numerics at model scale — execute the same graph in fp32, bf16
 *     and int8 and measure end-to-end output divergence (Lesson 6 at
 *     the level users feel it, not per-op);
 *  2. validating the IR — every layer kind has executable semantics,
 *     so shape inference and graph construction are checked against
 *     real data, not just metadata.
 *
 * Weights are materialized deterministically from the layer id and a
 * user seed (Gaussian, fan-in scaled), so two executions of the same
 * graph agree bit-for-bit and precision is the only variable.
 */
#ifndef T4I_TENSOR_EXECUTOR_H
#define T4I_TENSOR_EXECUTOR_H

#include <map>
#include <vector>

#include "src/common/status.h"
#include "src/graph/graph.h"
#include "src/numerics/quantize.h"
#include "src/tensor/ops.h"

namespace t4i {

/** Execution-time numeric contract. */
struct ExecOptions {
    MatmulPrecision precision = MatmulPrecision::kFp32;
    /** Seed for the deterministic weight materialization. */
    uint64_t weight_seed = 1;
    /** Batch size: inputs and outputs carry a leading batch dim. */
    int64_t batch = 1;
};

/** Result: output tensor of every layer (indexed by layer id). */
struct ExecResult {
    std::vector<Tensor> outputs;

    const Tensor& of(int layer_id) const
    {
        return outputs[static_cast<size_t>(layer_id)];
    }

    /** The graph's final layer output. */
    const Tensor& final_output() const { return outputs.back(); }
};

/**
 * Executes @p graph on @p inputs (one tensor per kInput layer, in
 * input-layer order; each shaped [batch, <per-sample dims>]).
 * Embedding inputs are index tensors whose values are truncated to
 * [0, vocab).
 */
StatusOr<ExecResult> Execute(const Graph& graph,
                             const std::vector<Tensor>& inputs,
                             const ExecOptions& options);

/**
 * Convenience for numerics studies: executes @p graph on random
 * Gaussian inputs (seeded) under fp32 and under @p precision, and
 * returns the error of the final output vs the fp32 reference.
 */
StatusOr<ErrorMetrics> PrecisionLoss(const Graph& graph,
                                     MatmulPrecision precision,
                                     int64_t batch, uint64_t seed);

}  // namespace t4i

#endif  // T4I_TENSOR_EXECUTOR_H
