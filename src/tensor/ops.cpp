#include "src/tensor/ops.h"

#include <algorithm>
#include <cmath>

#include "src/numerics/bfloat16.h"
#include "src/numerics/quantize.h"

namespace t4i {
namespace {

/** Applies the precision contract to operand storage before compute. */
std::vector<float>
ApplyPrecision(const std::vector<float>& data, MatmulPrecision precision)
{
    switch (precision) {
      case MatmulPrecision::kFp32:
        return data;
      case MatmulPrecision::kBf16: {
        std::vector<float> out(data.size());
        for (size_t i = 0; i < data.size(); ++i) {
            out[i] = Bf16Round(data[i]);
        }
        return out;
      }
      case MatmulPrecision::kInt8:
        return FakeQuantInt8(data, QuantScheme::kSymmetric);
    }
    return data;
}

Tensor
ElementwiseUnary(const Tensor& x, float (*fn)(float))
{
    Tensor out(x.shape());
    for (int64_t i = 0; i < x.NumElements(); ++i) out[i] = fn(x[i]);
    return out;
}

}  // namespace

StatusOr<Tensor>
Matmul(const Tensor& a, const Tensor& b, MatmulPrecision precision)
{
    if (a.shape().rank() != 2 || b.shape().rank() != 2) {
        return Status::InvalidArgument("Matmul requires rank-2 operands");
    }
    const int64_t m = a.shape().dim(0);
    const int64_t k = a.shape().dim(1);
    const int64_t n = b.shape().dim(1);
    if (b.shape().dim(0) != k) {
        return Status::InvalidArgument(
            "Matmul inner dimensions do not match: " +
            a.shape().ToString() + " x " + b.shape().ToString());
    }

    std::vector<float> lhs = ApplyPrecision(a.data(), precision);
    std::vector<float> rhs = ApplyPrecision(b.data(), precision);

    Tensor c(Shape({m, n}));
    // fp32 accumulation in all modes: the MXU accumulates in fp32.
    for (int64_t i = 0; i < m; ++i) {
        for (int64_t j = 0; j < n; ++j) {
            float acc = 0.0f;
            for (int64_t p = 0; p < k; ++p) {
                acc += lhs[static_cast<size_t>(i * k + p)] *
                       rhs[static_cast<size_t>(p * n + j)];
            }
            c[i * n + j] = acc;
        }
    }
    return c;
}

StatusOr<Tensor>
BiasAdd(const Tensor& x, const Tensor& bias)
{
    if (x.shape().rank() != 2 || bias.shape().rank() != 1 ||
        bias.shape().dim(0) != x.shape().dim(1)) {
        return Status::InvalidArgument("BiasAdd shape mismatch");
    }
    Tensor out(x.shape());
    const int64_t rows = x.shape().dim(0);
    const int64_t cols = x.shape().dim(1);
    for (int64_t r = 0; r < rows; ++r) {
        for (int64_t c = 0; c < cols; ++c) {
            out[r * cols + c] = x[r * cols + c] + bias[c];
        }
    }
    return out;
}

Tensor
Relu(const Tensor& x)
{
    return ElementwiseUnary(x, +[](float v) { return std::max(v, 0.0f); });
}

Tensor
Tanh(const Tensor& x)
{
    return ElementwiseUnary(x, +[](float v) { return std::tanh(v); });
}

Tensor
Sigmoid(const Tensor& x)
{
    return ElementwiseUnary(
        x, +[](float v) { return 1.0f / (1.0f + std::exp(-v)); });
}

Tensor
Gelu(const Tensor& x)
{
    return ElementwiseUnary(x, +[](float v) {
        const float kC = 0.7978845608028654f;  // sqrt(2/pi)
        return 0.5f * v *
               (1.0f + std::tanh(kC * (v + 0.044715f * v * v * v)));
    });
}

StatusOr<Tensor>
Softmax(const Tensor& x)
{
    if (x.shape().rank() != 2) {
        return Status::InvalidArgument("Softmax requires rank-2 input");
    }
    Tensor out(x.shape());
    const int64_t rows = x.shape().dim(0);
    const int64_t cols = x.shape().dim(1);
    for (int64_t r = 0; r < rows; ++r) {
        float max_v = x[r * cols];
        for (int64_t c = 1; c < cols; ++c) {
            max_v = std::max(max_v, x[r * cols + c]);
        }
        float sum = 0.0f;
        for (int64_t c = 0; c < cols; ++c) {
            float e = std::exp(x[r * cols + c] - max_v);
            out[r * cols + c] = e;
            sum += e;
        }
        for (int64_t c = 0; c < cols; ++c) out[r * cols + c] /= sum;
    }
    return out;
}

StatusOr<Tensor>
LayerNorm(const Tensor& x)
{
    if (x.shape().rank() != 2) {
        return Status::InvalidArgument("LayerNorm requires rank-2 input");
    }
    constexpr float kEps = 1e-5f;
    Tensor out(x.shape());
    const int64_t rows = x.shape().dim(0);
    const int64_t cols = x.shape().dim(1);
    for (int64_t r = 0; r < rows; ++r) {
        float mean = 0.0f;
        for (int64_t c = 0; c < cols; ++c) mean += x[r * cols + c];
        mean /= static_cast<float>(cols);
        float var = 0.0f;
        for (int64_t c = 0; c < cols; ++c) {
            float d = x[r * cols + c] - mean;
            var += d * d;
        }
        var /= static_cast<float>(cols);
        const float inv = 1.0f / std::sqrt(var + kEps);
        for (int64_t c = 0; c < cols; ++c) {
            out[r * cols + c] = (x[r * cols + c] - mean) * inv;
        }
    }
    return out;
}

StatusOr<Tensor>
Conv2d(const Tensor& input, const Tensor& kernel, int stride, int pad,
       MatmulPrecision precision)
{
    if (input.shape().rank() != 4 || kernel.shape().rank() != 4) {
        return Status::InvalidArgument("Conv2d requires rank-4 operands");
    }
    if (stride < 1 || pad < 0) {
        return Status::InvalidArgument("Conv2d bad stride/pad");
    }
    const int64_t n = input.shape().dim(0);
    const int64_t h = input.shape().dim(1);
    const int64_t w = input.shape().dim(2);
    const int64_t cin = input.shape().dim(3);
    const int64_t kh = kernel.shape().dim(0);
    const int64_t kw = kernel.shape().dim(1);
    if (kernel.shape().dim(2) != cin) {
        return Status::InvalidArgument("Conv2d channel mismatch");
    }
    const int64_t cout = kernel.shape().dim(3);
    const int64_t oh = (h + 2 * pad - kh) / stride + 1;
    const int64_t ow = (w + 2 * pad - kw) / stride + 1;
    if (oh <= 0 || ow <= 0) {
        return Status::InvalidArgument("Conv2d output is empty");
    }

    std::vector<float> act = ApplyPrecision(input.data(), precision);
    std::vector<float> wt = ApplyPrecision(kernel.data(), precision);

    Tensor out(Shape({n, oh, ow, cout}));
    auto in_at = [&](int64_t b, int64_t y, int64_t x2,
                     int64_t c) -> float {
        if (y < 0 || y >= h || x2 < 0 || x2 >= w) return 0.0f;
        return act[static_cast<size_t>(((b * h + y) * w + x2) * cin + c)];
    };
    for (int64_t b = 0; b < n; ++b) {
        for (int64_t oy = 0; oy < oh; ++oy) {
            for (int64_t ox = 0; ox < ow; ++ox) {
                for (int64_t oc = 0; oc < cout; ++oc) {
                    float acc = 0.0f;
                    for (int64_t ky = 0; ky < kh; ++ky) {
                        for (int64_t kx = 0; kx < kw; ++kx) {
                            for (int64_t ic = 0; ic < cin; ++ic) {
                                acc += in_at(b, oy * stride + ky - pad,
                                             ox * stride + kx - pad, ic) *
                                       wt[static_cast<size_t>(
                                           ((ky * kw + kx) * cin + ic) *
                                               cout +
                                           oc)];
                            }
                        }
                    }
                    out[((b * oh + oy) * ow + ox) * cout + oc] = acc;
                }
            }
        }
    }
    return out;
}

StatusOr<Tensor>
MaxPool2d(const Tensor& input, int window, int stride)
{
    if (input.shape().rank() != 4) {
        return Status::InvalidArgument("MaxPool2d requires rank-4 input");
    }
    const int64_t n = input.shape().dim(0);
    const int64_t h = input.shape().dim(1);
    const int64_t w = input.shape().dim(2);
    const int64_t c = input.shape().dim(3);
    const int64_t oh = (h - window) / stride + 1;
    const int64_t ow = (w - window) / stride + 1;
    if (oh <= 0 || ow <= 0) {
        return Status::InvalidArgument("MaxPool2d output is empty");
    }
    Tensor out(Shape({n, oh, ow, c}));
    for (int64_t b = 0; b < n; ++b) {
        for (int64_t oy = 0; oy < oh; ++oy) {
            for (int64_t ox = 0; ox < ow; ++ox) {
                for (int64_t ch = 0; ch < c; ++ch) {
                    float best = -3.4e38f;
                    for (int64_t ky = 0; ky < window; ++ky) {
                        for (int64_t kx = 0; kx < window; ++kx) {
                            const int64_t y = oy * stride + ky;
                            const int64_t x = ox * stride + kx;
                            best = std::max(
                                best,
                                input[((b * h + y) * w + x) * c + ch]);
                        }
                    }
                    out[((b * oh + oy) * ow + ox) * c + ch] = best;
                }
            }
        }
    }
    return out;
}

StatusOr<Tensor>
GlobalAvgPool(const Tensor& input)
{
    if (input.shape().rank() != 4) {
        return Status::InvalidArgument(
            "GlobalAvgPool requires rank-4 input");
    }
    const int64_t n = input.shape().dim(0);
    const int64_t h = input.shape().dim(1);
    const int64_t w = input.shape().dim(2);
    const int64_t c = input.shape().dim(3);
    Tensor out(Shape({n, c}));
    for (int64_t b = 0; b < n; ++b) {
        for (int64_t ch = 0; ch < c; ++ch) {
            float sum = 0.0f;
            for (int64_t y = 0; y < h; ++y) {
                for (int64_t x = 0; x < w; ++x) {
                    sum += input[((b * h + y) * w + x) * c + ch];
                }
            }
            out[b * c + ch] = sum / static_cast<float>(h * w);
        }
    }
    return out;
}

StatusOr<LstmState>
LstmCell(const Tensor& x, const LstmState& state, const Tensor& w_ih,
         const Tensor& w_hh, const Tensor& bias,
         MatmulPrecision precision)
{
    const int64_t batch = x.shape().dim(0);
    if (w_ih.shape().rank() != 2 || w_hh.shape().rank() != 2) {
        return Status::InvalidArgument("LstmCell weights must be rank 2");
    }
    const int64_t hidden = w_hh.shape().dim(0);
    if (w_ih.shape().dim(1) != 4 * hidden ||
        w_hh.shape().dim(1) != 4 * hidden ||
        bias.shape().dim(0) != 4 * hidden) {
        return Status::InvalidArgument("LstmCell gate width mismatch");
    }

    auto xi = Matmul(x, w_ih, precision);
    T4I_RETURN_IF_ERROR(xi.status());
    auto hh = Matmul(state.h, w_hh, precision);
    T4I_RETURN_IF_ERROR(hh.status());

    LstmState next{Tensor(Shape({batch, hidden})),
                   Tensor(Shape({batch, hidden}))};
    for (int64_t b = 0; b < batch; ++b) {
        for (int64_t u = 0; u < hidden; ++u) {
            auto gate = [&](int64_t g) {
                const int64_t col = g * hidden + u;
                return xi.value()[b * 4 * hidden + col] +
                       hh.value()[b * 4 * hidden + col] + bias[col];
            };
            const float i = 1.0f / (1.0f + std::exp(-gate(0)));
            const float f = 1.0f / (1.0f + std::exp(-gate(1)));
            const float g = std::tanh(gate(2));
            const float o = 1.0f / (1.0f + std::exp(-gate(3)));
            const float c = f * state.c[b * hidden + u] + i * g;
            next.c[b * hidden + u] = c;
            next.h[b * hidden + u] = o * std::tanh(c);
        }
    }
    return next;
}

StatusOr<Tensor>
Attention(const Tensor& q, const Tensor& k, const Tensor& v,
          MatmulPrecision precision)
{
    if (q.shape().rank() != 2 || k.shape().rank() != 2 ||
        v.shape().rank() != 2) {
        return Status::InvalidArgument("Attention requires rank-2 q/k/v");
    }
    const int64_t dim = q.shape().dim(1);
    if (k.shape().dim(1) != dim || k.shape().dim(0) != v.shape().dim(0)) {
        return Status::InvalidArgument("Attention shape mismatch");
    }
    // scores = q * k^T / sqrt(dim)
    Tensor kt(Shape({k.shape().dim(1), k.shape().dim(0)}));
    for (int64_t r = 0; r < k.shape().dim(0); ++r) {
        for (int64_t c = 0; c < k.shape().dim(1); ++c) {
            kt.At2(c, r) = k.At2(r, c);
        }
    }
    auto scores = Matmul(q, kt, precision);
    T4I_RETURN_IF_ERROR(scores.status());
    const float inv = 1.0f / std::sqrt(static_cast<float>(dim));
    for (int64_t i = 0; i < scores.value().NumElements(); ++i) {
        scores.value()[i] *= inv;
    }
    auto probs = Softmax(scores.value());
    T4I_RETURN_IF_ERROR(probs.status());
    return Matmul(probs.value(), v, precision);
}

StatusOr<Tensor>
Add(const Tensor& a, const Tensor& b)
{
    if (!(a.shape() == b.shape())) {
        return Status::InvalidArgument("Add shape mismatch");
    }
    Tensor out(a.shape());
    for (int64_t i = 0; i < a.NumElements(); ++i) out[i] = a[i] + b[i];
    return out;
}

}  // namespace t4i
