#include "src/tensor/tensor.h"

#include "src/common/strings.h"

namespace t4i {

int64_t
Shape::NumElements() const
{
    int64_t n = 1;
    for (int64_t d : dims_) n *= d;
    return n;
}

std::string
Shape::ToString() const
{
    std::vector<std::string> parts;
    parts.reserve(dims_.size());
    for (int64_t d : dims_) {
        parts.push_back(StrFormat("%lld", static_cast<long long>(d)));
    }
    return "[" + StrJoin(parts, ", ") + "]";
}

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)),
      data_(static_cast<size_t>(shape_.NumElements()), 0.0f)
{
}

Tensor::Tensor(Shape shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data))
{
    T4I_CHECK(static_cast<int64_t>(data_.size()) == shape_.NumElements(),
              "tensor data size does not match shape");
}

float
Tensor::At2(int64_t r, int64_t c) const
{
    T4I_CHECK(shape_.rank() == 2, "At2 requires rank-2 tensor");
    return data_[static_cast<size_t>(r * shape_.dim(1) + c)];
}

float&
Tensor::At2(int64_t r, int64_t c)
{
    T4I_CHECK(shape_.rank() == 2, "At2 requires rank-2 tensor");
    return data_[static_cast<size_t>(r * shape_.dim(1) + c)];
}

void
Tensor::FillUniform(Rng& rng, float lo, float hi)
{
    for (auto& x : data_) {
        x = static_cast<float>(rng.NextUniform(lo, hi));
    }
}

void
Tensor::FillGaussian(Rng& rng, float stddev)
{
    for (auto& x : data_) {
        x = static_cast<float>(rng.NextGaussian() * stddev);
    }
}

}  // namespace t4i
