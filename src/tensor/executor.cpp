#include "src/tensor/executor.h"

#include <cmath>

#include "src/common/rng.h"
#include "src/common/strings.h"
#include "src/numerics/bfloat16.h"
#include "src/numerics/quantize.h"

namespace t4i {
namespace {

/** Mixes layer id + tag + user seed into an RNG stream. */
uint64_t
WeightStream(uint64_t seed, int layer_id, int tag)
{
    uint64_t h = seed;
    h ^= 0x9e3779b97f4a7c15ULL + static_cast<uint64_t>(layer_id) * 31;
    h *= 0xff51afd7ed558ccdULL;
    h ^= static_cast<uint64_t>(tag) * 0x2545f4914f6cdd1dULL;
    return h;
}

/** Deterministic fan-in-scaled Gaussian weight matrix. */
Tensor
MakeWeight(uint64_t seed, int layer_id, int tag, int64_t rows,
           int64_t cols)
{
    Rng rng(WeightStream(seed, layer_id, tag));
    Tensor w(Shape({rows, cols}));
    w.FillGaussian(rng, 1.0f / std::sqrt(static_cast<float>(rows)));
    return w;
}

/** One deterministic embedding row (no table materialization). */
void
EmbeddingRow(uint64_t seed, int layer_id, int64_t index, int64_t dim,
             float* out)
{
    Rng rng(WeightStream(seed, layer_id, 1000) ^
            (static_cast<uint64_t>(index) * 0x9e3779b97f4a7c15ULL + 1));
    for (int64_t i = 0; i < dim; ++i) {
        out[i] = static_cast<float>(rng.NextGaussian());
    }
}

/** Applies the dtype contract to a buffer (weights or activations). */
void
ApplyPrecisionInPlace(std::vector<float>* data,
                      MatmulPrecision precision)
{
    switch (precision) {
      case MatmulPrecision::kFp32:
        return;
      case MatmulPrecision::kBf16:
        for (auto& x : *data) x = Bf16Round(x);
        return;
      case MatmulPrecision::kInt8: {
        *data = FakeQuantInt8(*data, QuantScheme::kSymmetric);
        return;
      }
    }
}

Tensor
ApplyActivation(Tensor x, Activation act)
{
    switch (act) {
      case Activation::kNone: return x;
      case Activation::kRelu: return Relu(x);
      case Activation::kGelu: return Gelu(x);
      case Activation::kTanh: return Tanh(x);
      case Activation::kSigmoid: return Sigmoid(x);
    }
    return x;
}

/** Reshapes [batch, dims...] to rank-2 [batch*lead, last]. */
Tensor
FoldToRows(const Tensor& x, int64_t last)
{
    const int64_t rows = x.NumElements() / last;
    return Tensor(Shape({rows, last}), x.data());
}

class Executor {
  public:
    Executor(const Graph& graph, const std::vector<Tensor>& inputs,
             const ExecOptions& options)
        : g_(graph), inputs_(inputs), opts_(options)
    {
    }

    StatusOr<ExecResult> Run();

  private:
    const Tensor& in(const Layer& layer, size_t idx = 0)
    {
        return result_.outputs[static_cast<size_t>(
            layer.inputs[idx])];
    }

    /** Dense helper usable by several kinds. */
    StatusOr<Tensor>
    DenseOp(const Layer& layer, const Tensor& x, int tag, int64_t in_f,
            int64_t out_f, Activation act)
    {
        Tensor w = MakeWeight(opts_.weight_seed, layer.id, tag, in_f,
                              out_f);
        auto y = Matmul(FoldToRows(x, in_f), w, opts_.precision);
        T4I_RETURN_IF_ERROR(y.status());
        return ApplyActivation(std::move(y).ConsumeValue(), act);
    }

    StatusOr<Tensor> ExecLayer(const Layer& layer);

    const Graph& g_;
    const std::vector<Tensor>& inputs_;
    ExecOptions opts_;
    ExecResult result_;
};

StatusOr<Tensor>
Executor::ExecLayer(const Layer& layer)
{
    const LayerParams& p = layer.params;
    switch (layer.kind) {
      case LayerKind::kInput:
        return Status::Internal("inputs handled by Run()");

      case LayerKind::kDense: {
        auto y = DenseOp(layer, in(layer), 0, p.in_features,
                         p.out_features, p.activation);
        T4I_RETURN_IF_ERROR(y.status());
        return y;
      }

      case LayerKind::kConv2d: {
        // Fold batch into N; kernel from the deterministic stream.
        const Tensor& x = in(layer);
        const auto& shape = x.shape();
        if (shape.rank() != 4) {
            return Status::InvalidArgument(
                "Conv2d executor expects [batch, H, W, C]");
        }
        const int64_t cin = shape.dim(3);
        Rng rng(WeightStream(opts_.weight_seed, layer.id, 0));
        Tensor kernel(
            Shape({p.kernel_h, p.kernel_w, cin, p.out_channels}));
        kernel.FillGaussian(
            rng, 1.0f / std::sqrt(static_cast<float>(
                     p.kernel_h * p.kernel_w * cin)));
        auto y = Conv2d(x, kernel, static_cast<int>(p.stride),
                        static_cast<int>(p.pad), opts_.precision);
        T4I_RETURN_IF_ERROR(y.status());
        return ApplyActivation(std::move(y).ConsumeValue(),
                               p.activation);
      }

      case LayerKind::kDepthwiseConv2d: {
        // Per-channel 2-D convolution with a deterministic filter.
        const Tensor& x = in(layer);
        const int64_t batch = x.shape().dim(0);
        const int64_t h = x.shape().dim(1);
        const int64_t w = x.shape().dim(2);
        const int64_t c = x.shape().dim(3);
        Rng rng(WeightStream(opts_.weight_seed, layer.id, 0));
        Tensor out;
        for (int64_t ch = 0; ch < c; ++ch) {
            Tensor slice(Shape({batch, h, w, 1}));
            for (int64_t i = 0; i < batch * h * w; ++i) {
                slice[i] = x[i * c + ch];
            }
            Tensor kernel(Shape({p.kernel_h, p.kernel_w, 1, 1}));
            kernel.FillGaussian(
                rng, 1.0f / std::sqrt(static_cast<float>(
                         p.kernel_h * p.kernel_w)));
            auto y = Conv2d(slice, kernel, static_cast<int>(p.stride),
                            static_cast<int>(p.pad), opts_.precision);
            T4I_RETURN_IF_ERROR(y.status());
            if (ch == 0) {
                const auto& ys = y.value().shape();
                out = Tensor(Shape({batch, ys.dim(1), ys.dim(2), c}));
            }
            const int64_t spatial =
                y.value().NumElements();  // batch*oh*ow
            for (int64_t i = 0; i < spatial; ++i) {
                out[i * c + ch] = y.value()[i];
            }
        }
        return ApplyActivation(std::move(out), p.activation);
      }

      case LayerKind::kMaxPool:
        return MaxPool2d(in(layer), static_cast<int>(p.kernel_h),
                         static_cast<int>(p.stride));

      case LayerKind::kGlobalPool:
        return GlobalAvgPool(in(layer));

      case LayerKind::kLstm: {
        // Input [batch, seq, in_dim] -> output [batch, seq, hidden].
        const Tensor& x = in(layer);
        const int64_t batch = x.shape().dim(0);
        const int64_t seq = x.shape().dim(1);
        const int64_t in_dim = x.shape().dim(2);
        Tensor w_ih = MakeWeight(opts_.weight_seed, layer.id, 0,
                                 in_dim, 4 * p.hidden_dim);
        Tensor w_hh = MakeWeight(opts_.weight_seed, layer.id, 1,
                                 p.hidden_dim, 4 * p.hidden_dim);
        Tensor bias(Shape({4 * p.hidden_dim}));
        LstmState state{Tensor(Shape({batch, p.hidden_dim})),
                        Tensor(Shape({batch, p.hidden_dim}))};
        Tensor out(Shape({batch, seq, p.hidden_dim}));
        for (int64_t t = 0; t < seq; ++t) {
            Tensor xt(Shape({batch, in_dim}));
            for (int64_t b = 0; b < batch; ++b) {
                for (int64_t f = 0; f < in_dim; ++f) {
                    xt.At2(b, f) = x[(b * seq + t) * in_dim + f];
                }
            }
            auto next = LstmCell(xt, state, w_ih, w_hh, bias,
                                 opts_.precision);
            T4I_RETURN_IF_ERROR(next.status());
            state = std::move(next).ConsumeValue();
            for (int64_t b = 0; b < batch; ++b) {
                for (int64_t u = 0; u < p.hidden_dim; ++u) {
                    out[(b * seq + t) * p.hidden_dim + u] =
                        state.h[b * p.hidden_dim + u];
                }
            }
        }
        return out;
      }

      case LayerKind::kAttention: {
        // Single-head semantics per batch element (the perf model
        // accounts heads; functionally one head is representative).
        const Tensor& x = in(layer);
        const int64_t batch = x.shape().dim(0);
        const int64_t seq = x.shape().dim(1);
        const int64_t d = p.d_model;
        Tensor wq = MakeWeight(opts_.weight_seed, layer.id, 0, d, d);
        Tensor wk = MakeWeight(opts_.weight_seed, layer.id, 1, d, d);
        Tensor wv = MakeWeight(opts_.weight_seed, layer.id, 2, d, d);
        Tensor wo = MakeWeight(opts_.weight_seed, layer.id, 3, d, d);
        Tensor out(x.shape());
        for (int64_t b = 0; b < batch; ++b) {
            Tensor xi(Shape({seq, d}));
            std::copy(x.data().begin() + b * seq * d,
                      x.data().begin() + (b + 1) * seq * d,
                      xi.data().begin());
            auto q = Matmul(xi, wq, opts_.precision);
            T4I_RETURN_IF_ERROR(q.status());
            auto k = Matmul(xi, wk, opts_.precision);
            T4I_RETURN_IF_ERROR(k.status());
            auto v = Matmul(xi, wv, opts_.precision);
            T4I_RETURN_IF_ERROR(v.status());
            auto attn = Attention(q.value(), k.value(), v.value(),
                                  opts_.precision);
            T4I_RETURN_IF_ERROR(attn.status());
            auto proj = Matmul(attn.value(), wo, opts_.precision);
            T4I_RETURN_IF_ERROR(proj.status());
            std::copy(proj.value().data().begin(),
                      proj.value().data().end(),
                      out.data().begin() + b * seq * d);
        }
        return out;
      }

      case LayerKind::kFeedForward: {
        auto h = DenseOp(layer, in(layer), 0, p.d_model, p.d_ff,
                         Activation::kGelu);
        T4I_RETURN_IF_ERROR(h.status());
        auto y = DenseOp(layer, h.value(), 1, p.d_ff, p.d_model,
                         Activation::kNone);
        T4I_RETURN_IF_ERROR(y.status());
        return y;
      }

      case LayerKind::kLayerNorm: {
        const Tensor& x = in(layer);
        const int64_t last = x.shape().dim(x.shape().rank() - 1);
        return LayerNorm(FoldToRows(x, last));
      }

      case LayerKind::kSoftmax: {
        const Tensor& x = in(layer);
        const int64_t last = x.shape().dim(x.shape().rank() - 1);
        return Softmax(FoldToRows(x, last));
      }

      case LayerKind::kElementwise: {
        Tensor acc = in(layer, 0);
        for (size_t i = 1; i < layer.inputs.size(); ++i) {
            // Residual adds require matching element counts; shapes
            // may differ in fold only.
            const Tensor& other = in(layer, i);
            if (other.NumElements() != acc.NumElements()) {
                return Status::InvalidArgument(
                    "elementwise operand size mismatch");
            }
            for (int64_t j = 0; j < acc.NumElements(); ++j) {
                acc[j] += other[j];
            }
        }
        return ApplyActivation(std::move(acc), p.activation);
      }

      case LayerKind::kEmbedding: {
        const Tensor& ids = in(layer);
        const int64_t batch = ids.shape().dim(0);
        const int64_t lookups = p.lookups_per_sample;
        Tensor out(Shape({batch, lookups, p.embed_dim}));
        std::vector<float> row(static_cast<size_t>(p.embed_dim));
        for (int64_t b = 0; b < batch; ++b) {
            for (int64_t l = 0; l < lookups; ++l) {
                auto index = static_cast<int64_t>(
                    std::fabs(ids[b * lookups + l]));
                index %= std::max<int64_t>(p.vocab, 1);
                EmbeddingRow(opts_.weight_seed, layer.id, index,
                             p.embed_dim, row.data());
                ApplyPrecisionInPlace(&row, opts_.precision);
                std::copy(row.begin(), row.end(),
                          out.data().begin() +
                              (b * lookups + l) * p.embed_dim);
            }
        }
        return out;
      }

      case LayerKind::kFlatten: {
        const Tensor& x = in(layer);
        const int64_t batch = x.shape().dim(0);
        return Tensor(Shape({batch, x.NumElements() / batch}),
                      x.data());
      }

      case LayerKind::kConcat: {
        const int64_t batch = in(layer).shape().dim(0);
        int64_t total = 0;
        for (size_t i = 0; i < layer.inputs.size(); ++i) {
            total += in(layer, i).NumElements() / batch;
        }
        Tensor out(Shape({batch, total}));
        for (int64_t b = 0; b < batch; ++b) {
            int64_t offset = 0;
            for (size_t i = 0; i < layer.inputs.size(); ++i) {
                const Tensor& x = in(layer, i);
                const int64_t per = x.NumElements() / batch;
                std::copy(x.data().begin() + b * per,
                          x.data().begin() + (b + 1) * per,
                          out.data().begin() + b * total + offset);
                offset += per;
            }
        }
        return out;
      }

      case LayerKind::kDecoderBlock: {
        // Sequential single-token steps with a deterministic KV
        // "prompt cache" and causal attention over generated tokens.
        const Tensor& x = in(layer);
        const int64_t batch = x.shape().dim(0);
        const int64_t seq = x.shape().dim(1);
        const int64_t d = p.d_model;
        Tensor wq = MakeWeight(opts_.weight_seed, layer.id, 0, d, d);
        Tensor wk = MakeWeight(opts_.weight_seed, layer.id, 1, d, d);
        Tensor wv = MakeWeight(opts_.weight_seed, layer.id, 2, d, d);
        Tensor wo = MakeWeight(opts_.weight_seed, layer.id, 3, d, d);
        Tensor w1 = MakeWeight(opts_.weight_seed, layer.id, 4, d,
                               p.d_ff);
        Tensor w2 = MakeWeight(opts_.weight_seed, layer.id, 5, p.d_ff,
                               d);
        // Deterministic prompt KV rows shared across the batch.
        const int64_t kv = p.kv_len;
        Tensor prompt_k(Shape({kv, d}));
        Tensor prompt_v(Shape({kv, d}));
        for (int64_t r = 0; r < kv; ++r) {
            EmbeddingRow(opts_.weight_seed, layer.id, r, d,
                         prompt_k.data().data() + r * d);
            EmbeddingRow(opts_.weight_seed, layer.id, r + kv, d,
                         prompt_v.data().data() + r * d);
        }

        Tensor out(x.shape());
        for (int64_t b = 0; b < batch; ++b) {
            Tensor keys(Shape({kv + seq, d}));
            Tensor vals(Shape({kv + seq, d}));
            std::copy(prompt_k.data().begin(), prompt_k.data().end(),
                      keys.data().begin());
            std::copy(prompt_v.data().begin(), prompt_v.data().end(),
                      vals.data().begin());
            for (int64_t t = 0; t < seq; ++t) {
                Tensor xt(Shape({1, d}));
                std::copy(x.data().begin() + (b * seq + t) * d,
                          x.data().begin() + (b * seq + t + 1) * d,
                          xt.data().begin());
                auto q = Matmul(xt, wq, opts_.precision);
                T4I_RETURN_IF_ERROR(q.status());
                auto k = Matmul(xt, wk, opts_.precision);
                T4I_RETURN_IF_ERROR(k.status());
                auto v = Matmul(xt, wv, opts_.precision);
                T4I_RETURN_IF_ERROR(v.status());
                std::copy(k.value().data().begin(),
                          k.value().data().end(),
                          keys.data().begin() + (kv + t) * d);
                std::copy(v.value().data().begin(),
                          v.value().data().end(),
                          vals.data().begin() + (kv + t) * d);
                // Causal view: prompt + generated-so-far.
                Tensor kview(Shape({kv + t + 1, d}),
                             std::vector<float>(
                                 keys.data().begin(),
                                 keys.data().begin() +
                                     (kv + t + 1) * d));
                Tensor vview(Shape({kv + t + 1, d}),
                             std::vector<float>(
                                 vals.data().begin(),
                                 vals.data().begin() +
                                     (kv + t + 1) * d));
                auto attn = Attention(q.value(), kview, vview,
                                      opts_.precision);
                T4I_RETURN_IF_ERROR(attn.status());
                auto proj = Matmul(attn.value(), wo, opts_.precision);
                T4I_RETURN_IF_ERROR(proj.status());
                auto h = Matmul(proj.value(), w1, opts_.precision);
                T4I_RETURN_IF_ERROR(h.status());
                Tensor g = Gelu(h.value());
                auto y = Matmul(g, w2, opts_.precision);
                T4I_RETURN_IF_ERROR(y.status());
                // Residual.
                for (int64_t f = 0; f < d; ++f) {
                    out[(b * seq + t) * d + f] =
                        xt[f] + y.value()[f];
                }
            }
        }
        return out;
      }
    }
    return Status::Internal("unhandled layer kind in executor");
}

StatusOr<ExecResult>
Executor::Run()
{
    if (!g_.finalized()) {
        return Status::FailedPrecondition("graph not finalized");
    }
    result_.outputs.resize(static_cast<size_t>(g_.num_layers()));
    size_t next_input = 0;
    for (const auto& layer : g_.layers()) {
        if (layer.kind == LayerKind::kInput) {
            if (next_input >= inputs_.size()) {
                return Status::InvalidArgument(
                    "not enough input tensors");
            }
            const Tensor& provided = inputs_[next_input++];
            const int64_t expected =
                opts_.batch * FeatureElements(layer.out_shape);
            if (provided.NumElements() != expected) {
                return Status::InvalidArgument(StrFormat(
                    "input '%s': got %lld elements, want %lld",
                    layer.name.c_str(),
                    static_cast<long long>(provided.NumElements()),
                    static_cast<long long>(expected)));
            }
            result_.outputs[static_cast<size_t>(layer.id)] = provided;
            continue;
        }
        auto out = ExecLayer(layer);
        T4I_RETURN_IF_ERROR(out.status());
        // Canonicalize to [batch, <per-sample out_shape>] so every
        // consumer sees the logical structure regardless of how the
        // producing op folded dimensions internally.
        std::vector<int64_t> dims = {opts_.batch};
        for (int64_t d : layer.out_shape) dims.push_back(d);
        Tensor produced = std::move(out).ConsumeValue();
        Shape canonical(dims);
        if (produced.NumElements() != canonical.NumElements()) {
            return Status::Internal(StrFormat(
                "layer '%s' produced %lld elements, expected %lld",
                layer.name.c_str(),
                static_cast<long long>(produced.NumElements()),
                static_cast<long long>(canonical.NumElements())));
        }
        result_.outputs[static_cast<size_t>(layer.id)] =
            Tensor(canonical, std::move(produced.data()));
    }
    if (next_input != inputs_.size()) {
        return Status::InvalidArgument("too many input tensors");
    }
    return std::move(result_);
}

}  // namespace

StatusOr<ExecResult>
Execute(const Graph& graph, const std::vector<Tensor>& inputs,
        const ExecOptions& options)
{
    Executor executor(graph, inputs, options);
    return executor.Run();
}

StatusOr<ErrorMetrics>
PrecisionLoss(const Graph& graph, MatmulPrecision precision,
              int64_t batch, uint64_t seed)
{
    // Build deterministic inputs for every kInput layer. Inputs that
    // feed embeddings carry index-like values; the rest stay Gaussian.
    std::vector<bool> feeds_embedding(
        static_cast<size_t>(graph.num_layers()), false);
    for (const auto& layer : graph.layers()) {
        if (layer.kind != LayerKind::kEmbedding) continue;
        for (int in_id : layer.inputs) {
            feeds_embedding[static_cast<size_t>(in_id)] = true;
        }
    }
    std::vector<Tensor> inputs;
    Rng rng(seed);
    for (const auto& layer : graph.layers()) {
        if (layer.kind != LayerKind::kInput) continue;
        std::vector<int64_t> dims = {batch};
        for (int64_t d : layer.out_shape) dims.push_back(d);
        Tensor x{Shape(dims)};
        x.FillGaussian(rng, 1.0f);
        if (feeds_embedding[static_cast<size_t>(layer.id)]) {
            for (int64_t i = 0; i < x.NumElements(); ++i) {
                x[i] = std::fabs(x[i]) * 10000.0f;  // index-like
            }
        }
        inputs.push_back(std::move(x));
    }

    ExecOptions ref;
    ref.precision = MatmulPrecision::kFp32;
    ref.batch = batch;
    ref.weight_seed = seed;
    auto exact = Execute(graph, inputs, ref);
    T4I_RETURN_IF_ERROR(exact.status());

    ExecOptions approx = ref;
    approx.precision = precision;
    auto lossy = Execute(graph, inputs, approx);
    T4I_RETURN_IF_ERROR(lossy.status());

    return ComputeError(exact.value().final_output().data(),
                        lossy.value().final_output().data());
}

}  // namespace t4i
