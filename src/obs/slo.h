/**
 * @file
 * Declarative per-tenant SLOs with rolling error budgets and
 * multi-window burn rates (SRE-style), computed on the sim clock.
 *
 * The serving layer's `serving.slo_burn_rate` gauge is a single
 * instantaneous number; fleet operations reason about *budgets* —
 * "how much of this quarter's allowed unreliability is left" — and
 * page on burn measured over a fast and a slow window simultaneously
 * (fast catches a cliff, slow confirms it is not a blip). The paper's
 * Lesson 3/10 framing: a deployed accelerator is judged by sustained
 * SLO compliance per dollar, not by one end-of-run percentile.
 *
 * An SloObjective declares, per tenant:
 *   - an availability target (good events / total events), where an
 *     event is bad when it missed the SLO, expired its deadline, or
 *     was shed — read from the existing `serving.*` counters (summed
 *     across `{cell=}` label sets in cluster runs);
 *   - optionally a latency-quantile target ("q% of requests under X
 *     seconds"), judged over the fast window's exact samples;
 *   - a rolling budget horizon and the fast/slow burn windows.
 *
 * Each Tick() exports `slo.*` gauges into the registry, so the
 * existing alert-rule grammar and the `check` CLI gate consume budget
 * signals unchanged:
 *   slo.burn_rate_fast{slo=,tenant=}        fast-window burn
 *   slo.burn_rate_slow{slo=,tenant=}        slow-window burn
 *   slo.budget_remaining{slo=,tenant=}      fraction left (can go <0)
 *   slo.page{slo=,tenant=}                  1 when both burns page
 *   slo.latency_quantile_seconds{slo=,tenant=}
 *   slo.energy_per_request_j{slo=,tenant=}  attribution x power join
 *   slo.cost_per_request_usd{slo=,tenant=}  attribution x TCO join
 * plus `slo.good_events` / `slo.bad_events` counters and the
 * `slo.objectives` count gauge.
 *
 * Objective file grammar (one per line, '#' comments):
 *   slo NAME tenant=T [avail=0.999] [latency_pNN=SECONDS]
 *            [horizon=S] [fast=S] [slow=S] [page=BURN]
 * Example:
 *   slo bert-avail tenant=BERT0 avail=0.995 horizon=2 fast=0.1 slow=0.5
 *   slo bert-tail tenant=BERT0 latency_p99=0.012 fast=0.2
 */
#ifndef T4I_OBS_SLO_H
#define T4I_OBS_SLO_H

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/obs/registry.h"

namespace t4i {
namespace obs {

/** One declarative SLO. */
struct SloObjective {
    std::string name;    ///< unique id; exported as label {slo=name}
    std::string tenant;  ///< tenant label value the counters carry
    /** Good-events fraction target (budget = 1 - target). */
    double availability_target = 0.999;
    /** Latency objective: quantile% of requests under target seconds
     *  (0 target disables it; its budget = 1 - quantile/100). */
    double latency_target_s = 0.0;
    double latency_quantile = 95.0;
    /** Rolling error-budget horizon (sim seconds). */
    double horizon_s = 1.0;
    /** Multi-window burn-rate pair. */
    double fast_window_s = 0.1;
    double slow_window_s = 0.5;
    /** Page when *both* burns exceed this (classic two-window page). */
    double page_burn = 1.0;
};

/** Parses the objective-file grammar above. */
StatusOr<std::vector<SloObjective>> ParseSloObjectives(
    const std::string& text);

/** One Tick()'s budget accounting for one objective. */
struct SloBudgetPoint {
    double t_s = 0.0;
    int64_t good = 0;   ///< cumulative good events
    int64_t bad = 0;    ///< cumulative bad events
    int64_t total = 0;  ///< good + bad
    double burn_fast = 0.0;
    double burn_slow = 0.0;
    /** Fraction of the horizon's error budget left (can go < 0). */
    double budget_remaining = 1.0;
    /** Fast-window exact latency quantile (0 with no samples). */
    double latency_q_s = 0.0;
    /** Fast-window energy/cost per completed request (cost model). */
    double energy_per_request_j = 0.0;
    double cost_per_request_usd = 0.0;
    bool paging = false;
};

/** One objective's full run: config, timeline, and final numbers. */
struct SloStatus {
    SloObjective objective;
    std::vector<SloBudgetPoint> timeline;
    int64_t good = 0;
    int64_t bad = 0;
    int64_t total = 0;
    double peak_burn_fast = 0.0;
    double peak_burn_slow = 0.0;
    double min_budget_remaining = 1.0;
    int64_t pages = 0;         ///< not-paging -> paging transitions
    double page_seconds = 0.0; ///< sim time spent paging
    double total_energy_j = 0.0;
    double total_cost_usd = 0.0;
};

/**
 * Joins per-tenant attribution histograms with the power/TCO models:
 * component watts turn attributed device-seconds into joules, and the
 * TCO amortization prices the device time. Built by the CLI from
 * PowerReport + TcoReport (see BuildSloCostModel in the CLI).
 */
struct SloCostModel {
    /** Average power (W) per attribution component while busy, e.g.
     *  {"mxu", 92.0}. Components match batch_attribution shares. */
    std::vector<std::pair<std::string, double>> component_watts;
    /** Electricity price including PUE ($/J). */
    double usd_per_joule = 0.0;
    /** TCO amortized over service life ($/device-second). */
    double usd_per_device_second = 0.0;
};

/**
 * Tracks every objective against the registry as sim time advances.
 * Tick at the control cadence; Finish once after the run drains.
 * Single-threaded, like the loops that drive it.
 */
class SloTracker {
  public:
    /** Eagerly creates `slo.objectives` (and per-objective gauges for
     *  objectives added so far) so exports have a stable shape. */
    void BindRegistry(MetricsRegistry* registry);

    Status AddObjective(const SloObjective& objective);
    /** ParseSloObjectives + AddObjective for each. */
    Status AddObjectivesFromText(const std::string& text);

    void SetCostModel(const SloCostModel& model);

    /** Reads the counters, appends one SloBudgetPoint per objective,
     *  and refreshes the `slo.*` gauges. Monotonic in @p t_s. */
    void Tick(double t_s);

    /** Final Tick at @p end_s + freeze; later Ticks are no-ops. */
    void Finish(double end_s);

    size_t objective_count() const { return statuses_.size(); }
    const std::vector<SloStatus>& statuses() const
    {
        return statuses_;
    }
    /** Status for the named objective, or nullptr. */
    const SloStatus* Find(const std::string& name) const;

    /** One line per objective: budget left, peak burns, pages. */
    std::string Summary() const;

  private:
    struct Instruments {
        Gauge* burn_fast = nullptr;
        Gauge* burn_slow = nullptr;
        Gauge* budget = nullptr;
        Gauge* page = nullptr;
        Gauge* latency_q = nullptr;
        Gauge* energy = nullptr;
        Gauge* cost = nullptr;
        Counter* good = nullptr;
        Counter* bad = nullptr;
    };

    /** Cumulative event/attribution reading at one tick. */
    struct Cumulative {
        double t_s = 0.0;
        int64_t good = 0;
        int64_t bad = 0;
        int64_t total = 0;
        int64_t completed = 0;
        /** Attributed device-seconds per cost-model component. */
        std::vector<double> component_seconds;
    };

    struct ObjectiveState {
        Instruments instruments;
        std::deque<Cumulative> history;  ///< trimmed to max window
        /** (t, latency) samples, trimmed to the widest window. */
        std::deque<std::pair<double, double>> latency_samples;
        /** Consumed insertion-ordered samples per histogram key. */
        std::map<std::string, int64_t> consumed;
        bool paging = false;
        double last_t_s = 0.0;
    };

    void CreateInstruments(size_t index);
    Cumulative ReadCumulative(const SloObjective& objective,
                              ObjectiveState& state, double t_s);
    /** History entry at or before @p t_s (earliest as baseline). */
    const Cumulative* At(const std::deque<Cumulative>& history,
                         double t_s) const;

    MetricsRegistry* registry_ = nullptr;
    SloCostModel cost_model_;
    std::vector<SloStatus> statuses_;
    std::vector<ObjectiveState> states_;
    Gauge* objectives_gauge_ = nullptr;
    double last_tick_s_ = -1.0;
    bool finished_ = false;
};

}  // namespace obs
}  // namespace t4i

#endif  // T4I_OBS_SLO_H
