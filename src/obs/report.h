/**
 * @file
 * Versioned run artifact (`report.json`): one self-contained JSON file
 * per run carrying the windowed time series, SLO budget timelines,
 * alert outcomes, and the flat final metrics snapshot — the unit of
 * cross-run comparison. ROADMAP items 4/5 (adversarial load scenarios,
 * design-space search) consume these artifacts instead of re-running
 * sims, and `t4sim_cli diff` turns two of them into a CI verdict.
 *
 * Top-level schema (schema_version kRunReportSchemaVersion):
 *   {
 *     "schema_version": 2,
 *     "meta":    {tool, command, app, chip, duration_s, seed,
 *                 window_s},
 *     "series":  [{name, labels, kind, points:[...]}, ...],
 *     "slos":    [{objective:{...}, final:{...}, timeline:[...]}, ...],
 *     "alerts":  [{name, state, fire_count, last_value, fired_at_s}],
 *     "critical_path": {traces, kept, tiled, untiled,
 *                       kept_trace_ids:[...], bands:[...],
 *                       differential:[...], dominant:[...]},
 *     "exemplars": [{metric, bucket, value, trace_id, t_s, reason}],
 *     "metrics": {"name{k=v,...}": value, ... }   // perf_gate keys
 *   }
 * Version history: v1 had no critical_path / exemplars sections
 * (readers accept v1 artifacts; the new sections stay empty).
 *
 * DiffRunReports flattens both artifacts (metrics, every series
 * point, every SLO timeline point, alert outcomes) and compares with
 * per-name-prefix tolerances, longest prefix wins — the same lookup
 * contract as tools/perf_gate.py. The default tolerance is (rel 0,
 * abs 1e-12): the sim is deterministic, so two runs of the same
 * binary+flags must agree exactly; `compiler.pass.` (host wall clock)
 * is ignored by default for the same reason it is in perf_gate.
 */
#ifndef T4I_OBS_REPORT_H
#define T4I_OBS_REPORT_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/obs/alerts.h"
#include "src/obs/registry.h"
#include "src/obs/slo.h"
#include "src/obs/timeseries.h"

namespace t4i {
namespace obs {

/** Bump when the artifact layout changes incompatibly. */
inline constexpr int kRunReportSchemaVersion = 2;
/** Oldest artifact version ReadRunReport still accepts. */
inline constexpr int kMinRunReportSchemaVersion = 1;

/** Run identity stamped into the artifact. */
struct ReportMeta {
    std::string tool = "t4sim_cli";
    std::string command;  ///< run | check | serve-cluster | ...
    std::string app;
    std::string chip;
    double duration_s = 0.0;
    int64_t seed = 0;
    double window_s = 0.0;
};

/** One alert rule's final outcome. */
struct ReportAlert {
    std::string name;
    std::string state;  ///< inactive | pending | firing
    int64_t fire_count = 0;
    double last_value = 0.0;
    double fired_at_s = 0.0;
};

/** One exported histogram exemplar: metric cell -> kept trace. */
struct ReportExemplar {
    std::string metric;  ///< `name{k=v,...}` flat instrument key
    int bucket = 0;      ///< power-of-two bucket (ExemplarBucket)
    double value = 0.0;
    uint64_t trace_id = 0;
    double t_s = 0.0;
    std::string reason;  ///< sampler keep reason for the trace
};

/** One component's share of a band's critical-path seconds. */
struct ReportComponentShare {
    std::string component;
    double seconds = 0.0;
    double fraction = 0.0;
};

/** Critical-path component profile of one (tenant, latency band). */
struct ReportPathBand {
    std::string tenant;  ///< "" aggregates every tenant
    std::string band;    ///< p50 | mid | p99
    int64_t traces = 0;
    double total_s = 0.0;
    std::vector<ReportComponentShare> shares;
};

/** What grows in the tail: p50-band vs p99-band share per component. */
struct ReportPathDifferential {
    std::string tenant;
    std::string component;
    double p50_fraction = 0.0;
    double p99_fraction = 0.0;
    double delta = 0.0;  ///< p99 - p50
};

/** The `critical_path` report section. */
struct ReportCriticalPath {
    int64_t traces = 0;   ///< roots classified by the sampler
    int64_t kept = 0;     ///< traces the sampler kept
    int64_t tiled = 0;    ///< kept paths tiling their root exactly
    int64_t untiled = 0;  ///< kept paths violating the tiling bar
    std::vector<uint64_t> kept_trace_ids;  ///< ascending
    std::vector<ReportPathBand> bands;
    std::vector<ReportPathDifferential> differential;
    /** (tenant, component) dominating the tail band; tenant "" is the
     *  cross-tenant aggregate `expect-dominant` grades against. */
    std::vector<std::pair<std::string, std::string>> dominant;
};

/** The full artifact. */
struct RunReport {
    int schema_version = kRunReportSchemaVersion;
    ReportMeta meta;
    std::vector<TimeSeries> series;
    std::vector<SloStatus> slos;
    std::vector<ReportAlert> alerts;
    ReportCriticalPath critical_path;
    std::vector<ReportExemplar> exemplars;
    /** Flat final snapshot, `name{k=v,...}[.field]` -> value, in
     *  registry order (histograms expand to count/sum/mean/min/max/
     *  p50/p95/p99 fields — perf_gate's key shape). */
    std::vector<std::pair<std::string, double>> metrics;
};

/**
 * Assembles an artifact from whichever sinks the run had; any pointer
 * may be null (the matching section is empty).
 */
RunReport BuildRunReport(const ReportMeta& meta,
                         const MetricsRegistry* registry,
                         const TimeSeriesCollector* timeseries,
                         const SloTracker* slo,
                         const AlertEngine* alerts);

std::string RunReportToJson(const RunReport& report);
Status WriteRunReport(const RunReport& report,
                      const std::string& path);
/** Parses an artifact; fails on an unknown schema_version. */
StatusOr<RunReport> ReadRunReport(const std::string& path);

/** Renders the artifact as a human-readable markdown document. */
std::string RenderRunReportMarkdown(const RunReport& report);
/** Renders every section as one CSV (a `record` discriminator
 *  column: meta | metric | series | slo | alert | critical_path |
 *  exemplar). */
std::string RenderRunReportCsv(const RunReport& report);

struct ReportTolerance {
    double rel = 0.0;
    double abs = 0.0;
};

struct ReportDiffOptions {
    /** Deterministic sim: exact by default (tiny abs for round-trip
     *  formatting headroom). */
    ReportTolerance default_tolerance{0.0, 1e-12};
    /** (name prefix -> tolerance), longest matching prefix wins. */
    std::vector<std::pair<std::string, ReportTolerance>> tolerances;
    /** Name prefixes never compared (host wall clock by default). */
    std::vector<std::string> ignore_prefixes = {"compiler.pass."};
};

/** One out-of-band value. */
struct ReportDiffEntry {
    std::string key;
    double base = 0.0;
    double current = 0.0;
    double band = 0.0;  ///< abs + rel * |base|
};

struct ReportDiffResult {
    std::vector<ReportDiffEntry> regressions;
    /** Keys present in the base artifact but gone from current. */
    std::vector<std::string> missing;
    /** Keys new in current (informational, not a failure). */
    std::vector<std::string> added;
    int64_t compared = 0;
    bool ok() const
    {
        return regressions.empty() && missing.empty();
    }
};

/** Compares @p current against @p base. */
ReportDiffResult DiffRunReports(const RunReport& base,
                                const RunReport& current,
                                const ReportDiffOptions& options = {});

/** Human-readable verdict (one line per violation). */
std::string RenderReportDiff(const ReportDiffResult& result);

}  // namespace obs
}  // namespace t4i

#endif  // T4I_OBS_REPORT_H
