/**
 * @file
 * Process-wide metrics registry: the observability substrate every layer
 * (compiler, cycle simulator, serving simulator, fleet planner) records
 * into, and the exporters read from.
 *
 * Three instrument kinds, prometheus-style:
 *   - Counter: monotonically increasing int64 (thread-safe, lock-free);
 *   - Gauge: last-written double ("utilization of the most recent run");
 *   - HistogramMetric: distribution summary built on the exact
 *     percentile machinery from src/common/stats.h, because serving
 *     SLO analysis needs trustworthy tails (p95/p99) at modest counts.
 *
 * Instruments are identified by (name, labels). Labels distinguish
 * instances of the same metric — `serving.latency_seconds{tenant=BERT0}`
 * vs `{tenant=WSM1}` — and a name is bound to one instrument type for
 * its lifetime (a Get* call with the wrong type returns nullptr).
 * Pointers returned by Get* stay valid until Clear().
 */
#ifndef T4I_OBS_REGISTRY_H
#define T4I_OBS_REGISTRY_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/common/stats.h"

namespace t4i {
namespace obs {

/** Label set: (key, value) pairs; order-insensitive (sorted on use). */
using Labels = std::vector<std::pair<std::string, std::string>>;

/** Monotonically increasing counter; increments are lock-free. */
class Counter {
  public:
    void Increment(int64_t delta = 1)
    {
        value_.fetch_add(delta, std::memory_order_relaxed);
    }
    int64_t value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<int64_t> value_{0};
};

/** Last-written value (e.g. utilization of the most recent run). */
class Gauge {
  public:
    void Set(double v) { value_.store(v, std::memory_order_relaxed); }
    double value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<double> value_{0.0};
};

/**
 * One bucket's exemplar: a concrete trace behind a histogram cell.
 * `bucket` is the clamped floor(log2(value)) power-of-two bucket the
 * value falls in; the latest attachment per bucket wins, so each
 * bucket points at a recent representative trace.
 */
struct HistogramExemplar {
    int bucket = 0;
    double value = 0.0;
    uint64_t trace_id = 0;
    double t_s = 0.0;  ///< sim time the sample was observed
};

/** Power-of-two exemplar bucket for @p value (clamped to ±64). */
int ExemplarBucket(double value);

/**
 * Distribution summary: exact percentiles (all samples retained) plus a
 * running mean/min/max. Thread-safe.
 */
class HistogramMetric {
  public:
    void Observe(double x);

    /**
     * Records a traced sample as its bucket's exemplar (metrics ->
     * traces join). Pure annotation: never touches the distribution —
     * call Observe separately, so stats stay bit-identical whether or
     * not requests are traced.
     */
    void AttachExemplar(double value, uint64_t trace_id, double t_s);

    /** Bucket exemplars, ascending bucket order. */
    std::vector<HistogramExemplar> Exemplars() const;

    int64_t count() const;
    double mean() const;
    double min() const;
    double max() const;
    double sum() const;
    /** Exact q-th percentile (q in [0,100]); 0 when empty. */
    double Percentile(double q) const;

    /**
     * Copies retained samples [@p from, count()) in *insertion* order —
     * the slice an observer (src/obs/timeseries.h) has not consumed
     * yet. PercentileTracker sorts its retained vector in place, so the
     * insertion-ordered log is kept separately here.
     */
    std::vector<double> SamplesSince(int64_t from) const;

  private:
    mutable std::mutex mu_;
    PercentileTracker percentiles_;
    RunningStat stat_;
    std::vector<double> ordered_;  ///< samples in arrival order
    /** Keyed by bucket; kept sorted (a handful of buckets). */
    std::vector<HistogramExemplar> exemplars_;
};

enum class MetricType { kCounter, kGauge, kHistogram };

const char* MetricTypeName(MetricType type);

/** Registry of named, labeled instruments. */
class MetricsRegistry {
  public:
    /**
     * Finds or creates the counter (name, labels). Returns nullptr when
     * @p name is already registered as a different instrument type.
     */
    Counter* GetCounter(const std::string& name,
                        const Labels& labels = {});
    Gauge* GetGauge(const std::string& name, const Labels& labels = {});
    HistogramMetric* GetHistogram(const std::string& name,
                                  const Labels& labels = {});

    /** One instrument as seen by exporters. */
    struct Entry {
        std::string name;
        Labels labels;  ///< sorted by key
        MetricType type = MetricType::kCounter;
        const Counter* counter = nullptr;
        const Gauge* gauge = nullptr;
        const HistogramMetric* histogram = nullptr;
    };

    /** Stable-ordered (name, labels) listing of every instrument. */
    std::vector<Entry> Snapshot() const;

    size_t size() const;

    /** Drops every instrument (invalidates outstanding pointers). */
    void Clear();

    /** The process-wide registry library instrumentation records into. */
    static MetricsRegistry& Global();

  private:
    struct Instrument {
        std::string name;
        Labels labels;
        MetricType type;
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Gauge> gauge;
        std::unique_ptr<HistogramMetric> histogram;
    };

    Instrument* FindOrCreate(const std::string& name,
                             const Labels& labels, MetricType type);

    mutable std::mutex mu_;
    /** Keyed by name + unit-separator + sorted labels. */
    std::map<std::string, Instrument> instruments_;
    /** Enforces one type per metric name across label sets. */
    std::map<std::string, MetricType> name_types_;
};

/**
 * RAII wall-clock timer: observes the elapsed seconds into a histogram
 * on destruction (or explicit Stop()). Null histogram = no-op, so call
 * sites need no conditionals.
 */
class ScopedTimer {
  public:
    explicit ScopedTimer(HistogramMetric* histogram)
        : histogram_(histogram),
          start_(std::chrono::steady_clock::now())
    {
    }

    ScopedTimer(const ScopedTimer&) = delete;
    ScopedTimer& operator=(const ScopedTimer&) = delete;

    /** Records now; further Stop()/destruction is a no-op. Returns the
     *  elapsed seconds. */
    double Stop();

    ~ScopedTimer() { Stop(); }

  private:
    HistogramMetric* histogram_;
    std::chrono::steady_clock::time_point start_;
    bool stopped_ = false;
};

}  // namespace obs
}  // namespace t4i

#endif  // T4I_OBS_REGISTRY_H
