#include "src/obs/alerts.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <sstream>

#include "src/common/strings.h"
#include "src/obs/flight_recorder.h"

namespace t4i {
namespace obs {
namespace {

constexpr double kUsPerSecond = 1e6;

bool
Compare(AlertComparator cmp, double value, double threshold)
{
    switch (cmp) {
      case AlertComparator::kGt: return value > threshold;
      case AlertComparator::kGe: return value >= threshold;
      case AlertComparator::kLt: return value < threshold;
      case AlertComparator::kLe: return value <= threshold;
    }
    return false;
}

/** True when every filter pair appears in @p labels. */
bool
LabelsMatch(const Labels& filter, const Labels& labels)
{
    for (const auto& [k, v] : filter) {
        bool found = false;
        for (const auto& [lk, lv] : labels) {
            if (lk == k && lv == v) {
                found = true;
                break;
            }
        }
        if (!found) return false;
    }
    return true;
}

/** Extracts @p field from one instrument; false when inapplicable. */
bool
ExtractField(const MetricsRegistry::Entry& entry,
             const std::string& field, double* out)
{
    if (entry.type == MetricType::kCounter) {
        if (field != "value") return false;
        *out = static_cast<double>(entry.counter->value());
        return true;
    }
    if (entry.type == MetricType::kGauge) {
        if (field != "value") return false;
        *out = entry.gauge->value();
        return true;
    }
    const HistogramMetric& h = *entry.histogram;
    if (field == "count") {
        *out = static_cast<double>(h.count());
    } else if (field == "sum") {
        *out = h.sum();
    } else if (field == "mean") {
        *out = h.mean();
    } else if (field == "min") {
        *out = h.min();
    } else if (field == "max") {
        *out = h.max();
    } else if (field.size() > 1 && field[0] == 'p') {
        char* end = nullptr;
        const double q = std::strtod(field.c_str() + 1, &end);
        if (end == nullptr || *end != '\0' || q < 0.0 || q > 100.0) {
            return false;
        }
        *out = h.Percentile(q);
    } else {
        return false;
    }
    return true;
}

/** Splits "metric{k=v,...}:field" into rule fields. */
Status
ParseSelector(const std::string& selector, AlertRule* rule)
{
    std::string rest = selector;
    // Optional ':field' suffix (after the closing brace, if any).
    const size_t brace_close = rest.rfind('}');
    const size_t colon =
        rest.find(':', brace_close == std::string::npos
                            ? 0
                            : brace_close);
    if (colon != std::string::npos) {
        rule->field = rest.substr(colon + 1);
        rest = rest.substr(0, colon);
        if (rule->field.empty()) {
            return Status::InvalidArgument("empty field after ':'");
        }
    }
    const size_t brace = rest.find('{');
    if (brace == std::string::npos) {
        rule->metric = rest;
        return rule->metric.empty()
                   ? Status::InvalidArgument("empty metric name")
                   : Status::Ok();
    }
    if (rest.back() != '}') {
        return Status::InvalidArgument("unterminated label filter");
    }
    rule->metric = rest.substr(0, brace);
    if (rule->metric.empty()) {
        return Status::InvalidArgument("empty metric name");
    }
    std::string body = rest.substr(brace + 1,
                                   rest.size() - brace - 2);
    if (body.empty()) return Status::Ok();
    std::stringstream ss(body);
    std::string pair;
    while (std::getline(ss, pair, ',')) {
        const size_t eq = pair.find('=');
        if (eq == std::string::npos || eq == 0) {
            return Status::InvalidArgument(
                "label filter needs k=v pairs, got '" + pair + "'");
        }
        rule->label_filter.emplace_back(pair.substr(0, eq),
                                        pair.substr(eq + 1));
    }
    return Status::Ok();
}

}  // namespace

const char*
AlertComparatorName(AlertComparator cmp)
{
    switch (cmp) {
      case AlertComparator::kGt: return ">";
      case AlertComparator::kGe: return ">=";
      case AlertComparator::kLt: return "<";
      case AlertComparator::kLe: return "<=";
    }
    return "?";
}

const char*
AlertStateName(AlertState state)
{
    switch (state) {
      case AlertState::kInactive: return "inactive";
      case AlertState::kPending: return "pending";
      case AlertState::kFiring: return "firing";
    }
    return "?";
}

StatusOr<std::vector<AlertRule>>
ParseAlertRules(const std::string& text)
{
    std::vector<AlertRule> rules;
    std::stringstream lines(text);
    std::string line;
    int lineno = 0;
    while (std::getline(lines, line)) {
        ++lineno;
        std::stringstream ss(line);
        std::string word;
        std::vector<std::string> tokens;
        while (ss >> word) tokens.push_back(word);
        if (tokens.empty() || tokens[0][0] == '#') continue;
        auto fail = [&](const std::string& why) {
            return Status::InvalidArgument(StrFormat(
                "alert rules line %d: %s", lineno, why.c_str()));
        };
        if (tokens[0] != "alert") {
            return fail("expected 'alert NAME SELECTOR CMP THRESHOLD "
                        "[for SECONDS]', got '" + tokens[0] + "'");
        }
        if (tokens.size() != 5 && tokens.size() != 7) {
            return fail(StrFormat("expected 5 or 7 tokens, got %d",
                                  static_cast<int>(tokens.size())));
        }
        AlertRule rule;
        rule.name = tokens[1];
        Status sel = ParseSelector(tokens[2], &rule);
        if (!sel.ok()) return fail(sel.message());
        if (tokens[3] == ">") {
            rule.cmp = AlertComparator::kGt;
        } else if (tokens[3] == ">=") {
            rule.cmp = AlertComparator::kGe;
        } else if (tokens[3] == "<") {
            rule.cmp = AlertComparator::kLt;
        } else if (tokens[3] == "<=") {
            rule.cmp = AlertComparator::kLe;
        } else {
            return fail("unknown comparator '" + tokens[3] + "'");
        }
        char* end = nullptr;
        rule.threshold = std::strtod(tokens[4].c_str(), &end);
        if (end == nullptr || *end != '\0') {
            return fail("bad threshold '" + tokens[4] + "'");
        }
        if (tokens.size() == 7) {
            if (tokens[5] != "for") {
                return fail("expected 'for', got '" + tokens[5] + "'");
            }
            rule.for_s = std::strtod(tokens[6].c_str(), &end);
            if (end == nullptr || *end != '\0' || rule.for_s < 0.0) {
                return fail("bad for-duration '" + tokens[6] + "'");
            }
        }
        rules.push_back(std::move(rule));
    }
    return rules;
}

void
AlertEngine::BindRegistry(MetricsRegistry* registry)
{
    registry_ = registry;
    if (registry == nullptr) {
        eval_counter_ = firing_counter_ = nullptr;
        rules_gauge_ = nullptr;
        return;
    }
    rules_gauge_ = registry->GetGauge("obs.alert.rules");
    eval_counter_ = registry->GetCounter("obs.alert.evaluations");
    firing_counter_ = registry->GetCounter("obs.alert.firing");
    if (rules_gauge_ != nullptr) {
        rules_gauge_->Set(static_cast<double>(statuses_.size()));
    }
}

void
AlertEngine::BindTrace(TraceBuilder* trace, int pid)
{
    trace_ = trace;
    trace_pid_ = pid;
}

void
AlertEngine::BindRecorder(FlightRecorder* recorder)
{
    recorder_ = recorder;
}

Status
AlertEngine::AddRule(const AlertRule& rule)
{
    if (rule.name.empty() || rule.metric.empty()) {
        return Status::InvalidArgument(
            "alert rule needs a name and a metric");
    }
    if (rule.for_s < 0.0) {
        return Status::InvalidArgument(
            "alert rule '" + rule.name + "': for-duration must be >= 0");
    }
    for (const AlertStatus& existing : statuses_) {
        if (existing.rule.name == rule.name) {
            return Status::InvalidArgument(
                "duplicate alert rule '" + rule.name + "'");
        }
    }
    AlertStatus status;
    status.rule = rule;
    statuses_.push_back(std::move(status));
    if (rules_gauge_ != nullptr) {
        rules_gauge_->Set(static_cast<double>(statuses_.size()));
    }
    SetActiveGauge(statuses_.back());
    return Status::Ok();
}

Status
AlertEngine::AddRulesFromText(const std::string& text)
{
    auto rules = ParseAlertRules(text);
    T4I_RETURN_IF_ERROR(rules.status());
    for (const AlertRule& rule : rules.value()) {
        T4I_RETURN_IF_ERROR(AddRule(rule));
    }
    return Status::Ok();
}

void
AlertEngine::SetActiveGauge(const AlertStatus& status)
{
    if (registry_ == nullptr) return;
    Gauge* g = registry_->GetGauge("obs.alert.active",
                                   {{"rule", status.rule.name}});
    if (g != nullptr) {
        g->Set(status.state == AlertState::kFiring ? 1.0 : 0.0);
    }
}

void
AlertEngine::Evaluate(const MetricsRegistry& registry, double t_s)
{
    ++evaluations_;
    if (eval_counter_ != nullptr) eval_counter_->Increment();
    if (statuses_.empty()) return;
    const auto snapshot = registry.Snapshot();
    for (AlertStatus& status : statuses_) {
        const AlertRule& rule = status.rule;
        // Worst-case value over matching instruments: the maximum for
        // upper-bound rules, the minimum for lower-bound rules.
        bool have = false;
        double value = 0.0;
        const bool want_max = rule.cmp == AlertComparator::kGt ||
                              rule.cmp == AlertComparator::kGe;
        for (const auto& entry : snapshot) {
            if (entry.name != rule.metric) continue;
            if (!LabelsMatch(rule.label_filter, entry.labels)) {
                continue;
            }
            double v = 0.0;
            if (!ExtractField(entry, rule.field, &v)) continue;
            if (!have) {
                value = v;
                have = true;
            } else {
                value = want_max ? std::max(value, v)
                                 : std::min(value, v);
            }
        }
        status.have_value = have;
        if (have) status.last_value = value;
        const bool cond =
            have && Compare(rule.cmp, value, rule.threshold);
        if (!cond) {
            // Hysteresis: one false evaluation resets pending AND
            // resolves a firing alert.
            if (status.state == AlertState::kFiring) {
                if (recorder_ != nullptr) {
                    recorder_->Record(
                        FlightEventKind::kAlert, t_s,
                        "resolved: " + rule.name, value);
                }
                if (trace_ != nullptr) {
                    trace_->AddInstant(trace_pid_, 0,
                                       "alert resolved: " + rule.name,
                                       t_s * kUsPerSecond);
                }
            }
            status.state = AlertState::kInactive;
            SetActiveGauge(status);
            continue;
        }
        if (status.state == AlertState::kFiring) continue;
        if (status.state == AlertState::kInactive) {
            status.state = AlertState::kPending;
            status.pending_since_s = t_s;
        }
        if (t_s - status.pending_since_s >= rule.for_s) {
            status.state = AlertState::kFiring;
            status.fired_at_s = t_s;
            ++status.fire_count;
            if (firing_counter_ != nullptr) {
                firing_counter_->Increment();
            }
            SetActiveGauge(status);
            if (trace_ != nullptr) {
                trace_->AddInstant(trace_pid_, 0,
                                   "alert firing: " + rule.name,
                                   t_s * kUsPerSecond);
            }
            if (recorder_ != nullptr) {
                recorder_->OnAlert(t_s, rule.name, value);
            }
        }
    }
}

bool
AlertEngine::AnyFiring() const
{
    return firing_count() > 0;
}

size_t
AlertEngine::firing_count() const
{
    size_t n = 0;
    for (const AlertStatus& status : statuses_) {
        if (status.state == AlertState::kFiring) ++n;
    }
    return n;
}

std::string
AlertEngine::Summary() const
{
    std::string out;
    for (const AlertStatus& status : statuses_) {
        const AlertRule& rule = status.rule;
        std::string selector = rule.metric;
        if (!rule.label_filter.empty()) {
            selector += "{";
            for (size_t i = 0; i < rule.label_filter.size(); ++i) {
                if (i > 0) selector += ",";
                selector += rule.label_filter[i].first + "=" +
                            rule.label_filter[i].second;
            }
            selector += "}";
        }
        if (rule.field != "value") selector += ":" + rule.field;
        out += StrFormat(
            "%-10s %s: %s %s %g", AlertStateName(status.state),
            rule.name.c_str(), selector.c_str(),
            AlertComparatorName(rule.cmp), rule.threshold);
        if (status.have_value) {
            out += StrFormat(" (last %g)", status.last_value);
        } else {
            out += " (no matching instrument)";
        }
        if (status.fire_count > 0) {
            out += StrFormat(", fired %lld time%s",
                             static_cast<long long>(status.fire_count),
                             status.fire_count == 1 ? "" : "s");
        }
        out += "\n";
    }
    return out;
}

}  // namespace obs
}  // namespace t4i
