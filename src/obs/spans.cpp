#include "src/obs/spans.h"

#include <algorithm>

#include "src/common/strings.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/json.h"

namespace t4i {
namespace obs {
namespace {

constexpr double kUsPerSecond = 1e6;

std::string
LabelsJson(const Labels& labels)
{
    std::string out = "{";
    for (size_t i = 0; i < labels.size(); ++i) {
        if (i > 0) out += ",";
        out += JsonQuote(labels[i].first) + ":" +
               JsonQuote(labels[i].second);
    }
    return out + "}";
}

std::string
SpanJson(const Span& span)
{
    std::string out = StrFormat(
        "{\"trace_id\":%llu,\"span_id\":%llu,\"parent_id\":%llu,",
        static_cast<unsigned long long>(span.trace_id),
        static_cast<unsigned long long>(span.span_id),
        static_cast<unsigned long long>(span.parent_id));
    if (span.link_id != 0) {
        out += StrFormat("\"link_id\":%llu,",
                         static_cast<unsigned long long>(span.link_id));
    }
    out += "\"name\":" + JsonQuote(span.name) +
           StrFormat(",\"start_s\":%.12g,\"end_s\":%.12g,"
                     "\"open\":%s,\"attributes\":",
                     span.start_s, span.end_s,
                     span.open ? "true" : "false") +
           LabelsJson(span.attributes);
    if (!span.events.empty()) {
        out += ",\"events\":[";
        for (size_t i = 0; i < span.events.size(); ++i) {
            if (i > 0) out += ",";
            out += StrFormat("{\"t_s\":%.12g,\"name\":",
                             span.events[i].t_s) +
                   JsonQuote(span.events[i].name) + "}";
        }
        out += "]";
    }
    return out + "}";
}

}  // namespace

std::string
Span::Attribute(const std::string& key) const
{
    for (const auto& [k, v] : attributes) {
        if (k == key) return v;
    }
    return "";
}

void
SpanCollector::BindRegistry(MetricsRegistry* registry)
{
    registry_ = registry;
    if (registry == nullptr) {
        started_ = closed_ = event_counter_ = link_counter_ = nullptr;
        return;
    }
    started_ = registry->GetCounter("obs.span.started");
    closed_ = registry->GetCounter("obs.span.closed");
    event_counter_ = registry->GetCounter("obs.span.events");
    link_counter_ = registry->GetCounter("obs.span.links");
}

void
SpanCollector::BindRecorder(FlightRecorder* recorder)
{
    recorder_ = recorder;
}

uint64_t
SpanCollector::NewTrace()
{
    return next_trace_++;
}

SpanId
SpanCollector::StartSpan(uint64_t trace_id, SpanId parent,
                         const std::string& name, double start_s)
{
    Span span;
    span.trace_id = trace_id;
    span.span_id = static_cast<SpanId>(spans_.size() + 1);
    span.parent_id = parent;
    span.name = name;
    span.start_s = start_s;
    span.end_s = start_s;
    spans_.push_back(std::move(span));
    ++open_count_;
    if (started_ != nullptr) started_->Increment();
    if (recorder_ != nullptr) {
        recorder_->Record(FlightEventKind::kSpanOpen, start_s, name,
                          static_cast<double>(spans_.size()));
    }
    return spans_.back().span_id;
}

Span*
SpanCollector::Mutable(SpanId id)
{
    if (id == 0 || id > spans_.size()) {
        ++errors_;
        return nullptr;
    }
    return &spans_[static_cast<size_t>(id - 1)];
}

void
SpanCollector::EndSpan(SpanId id, double end_s)
{
    Span* span = Mutable(id);
    if (span == nullptr) return;
    if (!span->open) {
        ++errors_;
        return;
    }
    span->end_s = end_s;
    span->open = false;
    --open_count_;
    if (closed_ != nullptr) closed_->Increment();
    if (recorder_ != nullptr) {
        recorder_->Record(FlightEventKind::kSpanClose, end_s,
                          span->name, span->duration_s());
    }
}

void
SpanCollector::SetAttribute(SpanId id, const std::string& key,
                            const std::string& value)
{
    Span* span = Mutable(id);
    if (span == nullptr) return;
    for (auto& [k, v] : span->attributes) {
        if (k == key) {
            v = value;
            return;
        }
    }
    span->attributes.emplace_back(key, value);
}

void
SpanCollector::AddEvent(SpanId id, const std::string& name, double t_s)
{
    Span* span = Mutable(id);
    if (span == nullptr) return;
    span->events.push_back({t_s, name});
    if (event_counter_ != nullptr) event_counter_->Increment();
}

void
SpanCollector::Link(SpanId id, SpanId winner)
{
    Span* span = Mutable(id);
    if (span == nullptr) return;
    span->link_id = winner;
    if (link_counter_ != nullptr) link_counter_->Increment();
}

const Span*
SpanCollector::Find(SpanId id) const
{
    if (id == 0 || id > spans_.size()) return nullptr;
    return &spans_[static_cast<size_t>(id - 1)];
}

std::vector<const Span*>
SpanCollector::Roots() const
{
    std::vector<const Span*> out;
    for (const Span& span : spans_) {
        if (span.parent_id == 0) out.push_back(&span);
    }
    return out;
}

std::vector<const Span*>
SpanCollector::ChildrenOf(SpanId parent) const
{
    std::vector<const Span*> out;
    for (const Span& span : spans_) {
        if (span.parent_id == parent) out.push_back(&span);
    }
    return out;
}

std::vector<const Span*>
SpanCollector::OpenSpans() const
{
    std::vector<const Span*> out;
    for (const Span& span : spans_) {
        if (span.open) out.push_back(&span);
    }
    return out;
}

Status
SpanCollector::CheckIntegrity() const
{
    if (errors_ > 0) {
        return Status::Internal(StrFormat(
            "%lld invalid span operations",
            static_cast<long long>(errors_)));
    }
    for (const Span& span : spans_) {
        if (!span.open && span.end_s < span.start_s) {
            return Status::Internal(StrFormat(
                "span %llu ends before it starts",
                static_cast<unsigned long long>(span.span_id)));
        }
        if (span.parent_id == 0) continue;
        const Span* parent = Find(span.parent_id);
        if (parent == nullptr) {
            return Status::Internal(StrFormat(
                "span %llu has unknown parent %llu",
                static_cast<unsigned long long>(span.span_id),
                static_cast<unsigned long long>(span.parent_id)));
        }
        if (parent->trace_id != span.trace_id) {
            return Status::Internal(StrFormat(
                "span %llu crosses traces",
                static_cast<unsigned long long>(span.span_id)));
        }
        if (span.start_s < parent->start_s - 1e-12) {
            return Status::Internal(StrFormat(
                "span %llu starts before its parent",
                static_cast<unsigned long long>(span.span_id)));
        }
    }
    return Status::Ok();
}

std::string
SpanCollector::ToJsonl() const
{
    std::string out;
    for (const Span& span : spans_) {
        out += SpanJson(span);
        out += "\n";
    }
    return out;
}

std::string
SpanCollector::OpenSpansJson() const
{
    std::string out = "[";
    bool first = true;
    for (const Span& span : spans_) {
        if (!span.open) continue;
        if (!first) out += ",";
        first = false;
        out += SpanJson(span);
    }
    return out + "]";
}

StatusOr<SpanCollector>
SpanCollectorFromJsonl(const std::string& jsonl)
{
    SpanCollector collector;
    uint64_t traces_issued = 0;
    int line_no = 0;
    size_t start = 0;
    while (start < jsonl.size()) {
        size_t end = jsonl.find('\n', start);
        if (end == std::string::npos) end = jsonl.size();
        const std::string line = jsonl.substr(start, end - start);
        start = end + 1;
        ++line_no;
        if (line.empty()) continue;

        auto doc = ParseJson(line);
        if (!doc.ok()) {
            return Status::InvalidArgument(
                StrFormat("spans line %d: %s", line_no,
                          doc.status().ToString().c_str()));
        }
        const JsonValue& v = doc.value();
        auto u64 = [&v](const char* key) -> uint64_t {
            const JsonValue* f = v.Find(key);
            return f != nullptr && f->is_number()
                       ? static_cast<uint64_t>(f->number_value)
                       : 0;
        };
        auto num = [&v](const char* key) -> double {
            const JsonValue* f = v.Find(key);
            return f != nullptr && f->is_number() ? f->number_value
                                                  : 0.0;
        };
        const uint64_t trace_id = u64("trace_id");
        const uint64_t span_id = u64("span_id");
        if (trace_id == 0 || span_id == 0) {
            return Status::InvalidArgument(StrFormat(
                "spans line %d: missing trace_id/span_id", line_no));
        }
        // Trace ids are sequential; re-issue any we have not minted
        // yet so the collector's next-trace counter stays coherent.
        while (traces_issued < trace_id) {
            traces_issued = collector.NewTrace();
        }
        const JsonValue* name = v.Find("name");
        const SpanId id = collector.StartSpan(
            trace_id, u64("parent_id"),
            name != nullptr ? name->string_value : "", num("start_s"));
        if (id != span_id) {
            return Status::InvalidArgument(StrFormat(
                "spans line %d: span_id %llu out of order "
                "(expected %llu)",
                line_no, static_cast<unsigned long long>(span_id),
                static_cast<unsigned long long>(id)));
        }
        if (const JsonValue* attrs = v.Find("attributes")) {
            for (const auto& [k, av] : attrs->object) {
                collector.SetAttribute(
                    id, k, av.is_string() ? av.string_value : "");
            }
        }
        if (const JsonValue* events = v.Find("events")) {
            for (const JsonValue& ev : events->array) {
                const JsonValue* n = ev.Find("name");
                const JsonValue* t = ev.Find("t_s");
                collector.AddEvent(
                    id, n != nullptr ? n->string_value : "",
                    t != nullptr && t->is_number() ? t->number_value
                                                   : 0.0);
            }
        }
        // Link targets may postdate this line; Link only stamps the
        // loser's record, so forward references are safe here.
        const uint64_t link_id = u64("link_id");
        if (link_id != 0) collector.Link(id, link_id);
        const JsonValue* open = v.Find("open");
        if (open == nullptr || !open->bool_value) {
            collector.EndSpan(id, num("end_s"));
        }
    }
    return collector;
}

Status
SpanCollector::AppendToTrace(TraceBuilder* builder, int pid,
                             size_t max_traces) const
{
    if (builder == nullptr) {
        return Status::InvalidArgument("null trace builder");
    }
    builder->SetProcessName(pid, "request spans");
    // Traces get dense tids in first-seen order; spans of later
    // traces are skipped (the cap keeps huge runs loadable).
    std::vector<uint64_t> trace_tids;  // index = tid, value = trace_id
    auto tid_for = [&](uint64_t trace_id) -> int {
        for (size_t i = 0; i < trace_tids.size(); ++i) {
            if (trace_tids[i] == trace_id) {
                return static_cast<int>(i);
            }
        }
        if (trace_tids.size() >= max_traces) return -1;
        trace_tids.push_back(trace_id);
        const int tid = static_cast<int>(trace_tids.size() - 1);
        builder->SetThreadName(
            pid, tid,
            StrFormat("trace %llu",
                      static_cast<unsigned long long>(trace_id)));
        return tid;
    };
    for (const Span& span : spans_) {
        const int tid = tid_for(span.trace_id);
        if (tid < 0) continue;
        if (span.open) {
            builder->AddInstant(pid, tid, span.name + " (open)",
                                span.start_s * kUsPerSecond);
            continue;
        }
        std::string args = StrFormat(
            "{\"trace_id\":%llu,\"span_id\":%llu,\"parent_id\":%llu",
            static_cast<unsigned long long>(span.trace_id),
            static_cast<unsigned long long>(span.span_id),
            static_cast<unsigned long long>(span.parent_id));
        for (const auto& [k, v] : span.attributes) {
            args += "," + JsonQuote(k) + ":" + JsonQuote(v);
        }
        args += "}";
        builder->AddComplete(pid, tid, span.name, "span",
                             span.start_s * kUsPerSecond,
                             span.duration_s() * kUsPerSecond, args);
        if (span.link_id != 0) {
            const Span* winner = Find(span.link_id);
            if (winner != nullptr) {
                // Arrow from the losing attempt to the copy that won
                // the batch; flow ids reuse the loser's span id.
                builder->AddFlowStart(pid, tid, "attempt-link",
                                      span.span_id,
                                      span.end_s * kUsPerSecond);
                const int win_tid = tid_for(winner->trace_id);
                if (win_tid >= 0) {
                    builder->AddFlowEnd(pid, win_tid, "attempt-link",
                                        span.span_id,
                                        winner->end_s * kUsPerSecond);
                }
            }
        }
    }
    return Status::Ok();
}

}  // namespace obs
}  // namespace t4i
