#include "src/obs/registry.h"

#include <algorithm>
#include <cmath>

namespace t4i {
namespace obs {
namespace {

/** Canonical map key: name, then sorted labels, '\x1f'-separated. */
std::string
InstrumentKey(const std::string& name, const Labels& labels)
{
    std::string key = name;
    Labels sorted = labels;
    std::sort(sorted.begin(), sorted.end());
    for (const auto& [k, v] : sorted) {
        key += '\x1f';
        key += k;
        key += '=';
        key += v;
    }
    return key;
}

}  // namespace

void
HistogramMetric::Observe(double x)
{
    std::lock_guard<std::mutex> lock(mu_);
    percentiles_.Add(x);
    stat_.Add(x);
    ordered_.push_back(x);
}

int
ExemplarBucket(double value)
{
    if (!std::isfinite(value) || value <= 0.0) return -64;
    const int bucket =
        static_cast<int>(std::floor(std::log2(value)));
    return std::min(64, std::max(-64, bucket));
}

void
HistogramMetric::AttachExemplar(double value, uint64_t trace_id,
                                double t_s)
{
    std::lock_guard<std::mutex> lock(mu_);
    const int bucket = ExemplarBucket(value);
    auto it = std::lower_bound(
        exemplars_.begin(), exemplars_.end(), bucket,
        [](const HistogramExemplar& e, int b) { return e.bucket < b; });
    if (it != exemplars_.end() && it->bucket == bucket) {
        it->value = value;
        it->trace_id = trace_id;
        it->t_s = t_s;
    } else {
        exemplars_.insert(it,
                          HistogramExemplar{bucket, value, trace_id, t_s});
    }
}

std::vector<HistogramExemplar>
HistogramMetric::Exemplars() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return exemplars_;
}

std::vector<double>
HistogramMetric::SamplesSince(int64_t from) const
{
    std::lock_guard<std::mutex> lock(mu_);
    if (from < 0) from = 0;
    if (from >= static_cast<int64_t>(ordered_.size())) return {};
    return std::vector<double>(
        ordered_.begin() + static_cast<ptrdiff_t>(from),
        ordered_.end());
}

int64_t
HistogramMetric::count() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return stat_.count();
}

double
HistogramMetric::mean() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return stat_.mean();
}

double
HistogramMetric::min() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return stat_.min();
}

double
HistogramMetric::max() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return stat_.max();
}

double
HistogramMetric::sum() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return stat_.sum();
}

double
HistogramMetric::Percentile(double q) const
{
    std::lock_guard<std::mutex> lock(mu_);
    return percentiles_.Percentile(q);
}

const char*
MetricTypeName(MetricType type)
{
    switch (type) {
      case MetricType::kCounter: return "counter";
      case MetricType::kGauge: return "gauge";
      case MetricType::kHistogram: return "histogram";
    }
    return "?";
}

MetricsRegistry::Instrument*
MetricsRegistry::FindOrCreate(const std::string& name,
                              const Labels& labels, MetricType type)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto [type_it, inserted] = name_types_.emplace(name, type);
    if (!inserted && type_it->second != type) return nullptr;

    const std::string key = InstrumentKey(name, labels);
    auto it = instruments_.find(key);
    if (it == instruments_.end()) {
        Instrument instr;
        instr.name = name;
        instr.labels = labels;
        std::sort(instr.labels.begin(), instr.labels.end());
        instr.type = type;
        switch (type) {
          case MetricType::kCounter:
            instr.counter = std::make_unique<Counter>();
            break;
          case MetricType::kGauge:
            instr.gauge = std::make_unique<Gauge>();
            break;
          case MetricType::kHistogram:
            instr.histogram = std::make_unique<HistogramMetric>();
            break;
        }
        it = instruments_.emplace(key, std::move(instr)).first;
    }
    return &it->second;
}

Counter*
MetricsRegistry::GetCounter(const std::string& name, const Labels& labels)
{
    Instrument* instr = FindOrCreate(name, labels, MetricType::kCounter);
    return instr != nullptr ? instr->counter.get() : nullptr;
}

Gauge*
MetricsRegistry::GetGauge(const std::string& name, const Labels& labels)
{
    Instrument* instr = FindOrCreate(name, labels, MetricType::kGauge);
    return instr != nullptr ? instr->gauge.get() : nullptr;
}

HistogramMetric*
MetricsRegistry::GetHistogram(const std::string& name,
                              const Labels& labels)
{
    Instrument* instr =
        FindOrCreate(name, labels, MetricType::kHistogram);
    return instr != nullptr ? instr->histogram.get() : nullptr;
}

std::vector<MetricsRegistry::Entry>
MetricsRegistry::Snapshot() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<Entry> entries;
    entries.reserve(instruments_.size());
    // instruments_ is keyed by name + sorted labels, so iteration order
    // is already the stable export order.
    for (const auto& [key, instr] : instruments_) {
        Entry e;
        e.name = instr.name;
        e.labels = instr.labels;
        e.type = instr.type;
        e.counter = instr.counter.get();
        e.gauge = instr.gauge.get();
        e.histogram = instr.histogram.get();
        entries.push_back(std::move(e));
    }
    return entries;
}

size_t
MetricsRegistry::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return instruments_.size();
}

void
MetricsRegistry::Clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    instruments_.clear();
    name_types_.clear();
}

MetricsRegistry&
MetricsRegistry::Global()
{
    static MetricsRegistry* registry = new MetricsRegistry();
    return *registry;
}

double
ScopedTimer::Stop()
{
    if (stopped_) return 0.0;
    stopped_ = true;
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count();
    if (histogram_ != nullptr) histogram_->Observe(elapsed);
    return elapsed;
}

}  // namespace obs
}  // namespace t4i
