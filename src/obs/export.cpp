#include "src/obs/export.h"

#include <cstdio>

#include "src/common/strings.h"
#include "src/obs/json.h"

namespace t4i {
namespace obs {
namespace {

/** `{"k":"v",...}` for the JSON document form. */
std::string
LabelsToJsonObject(const Labels& labels)
{
    std::string out = "{";
    for (size_t i = 0; i < labels.size(); ++i) {
        if (i > 0) out += ",";
        out += JsonQuote(labels[i].first) + ":" +
               JsonQuote(labels[i].second);
    }
    out += "}";
    return out;
}

/** `name{k=v,...}` for compact single-line keys. */
std::string
FlatKey(const MetricsRegistry::Entry& entry)
{
    if (entry.labels.empty()) return entry.name;
    std::string out = entry.name + "{";
    for (size_t i = 0; i < entry.labels.size(); ++i) {
        if (i > 0) out += ",";
        out += entry.labels[i].first + "=" + entry.labels[i].second;
    }
    out += "}";
    return out;
}

/** Formats a double compactly but losslessly enough for metrics. */
std::string
Num(double v)
{
    std::string s = StrFormat("%.9g", v);
    // %g can emit "inf"/"nan"; JSON has no literal for those.
    if (s.find_first_not_of("+-.0123456789eE") != std::string::npos) {
        return "0";
    }
    return s;
}

std::string
HistogramJsonBody(const HistogramMetric& h)
{
    std::string body = StrFormat(
        "\"count\":%lld,\"mean\":%s,\"min\":%s,\"max\":%s,"
        "\"sum\":%s,\"p50\":%s,\"p95\":%s,\"p99\":%s",
        static_cast<long long>(h.count()), Num(h.mean()).c_str(),
        Num(h.min()).c_str(), Num(h.max()).c_str(),
        Num(h.sum()).c_str(), Num(h.Percentile(50.0)).c_str(),
        Num(h.Percentile(95.0)).c_str(),
        Num(h.Percentile(99.0)).c_str());
    // Exemplars link histogram cells to kept traces. Omitted when
    // empty so non-traced exports (benches) keep their exact shape.
    const auto exemplars = h.Exemplars();
    if (!exemplars.empty()) {
        body += ",\"exemplars\":[";
        for (size_t i = 0; i < exemplars.size(); ++i) {
            if (i > 0) body += ",";
            body += StrFormat(
                "{\"bucket\":%d,\"value\":%s,\"trace_id\":%llu,"
                "\"t_s\":%s}",
                exemplars[i].bucket, Num(exemplars[i].value).c_str(),
                static_cast<unsigned long long>(
                    exemplars[i].trace_id),
                Num(exemplars[i].t_s).c_str());
        }
        body += "]";
    }
    return body;
}

}  // namespace

std::string
MetricsToJson(const MetricsRegistry& registry)
{
    const auto entries = registry.Snapshot();
    std::string counters;
    std::string gauges;
    std::string histograms;
    for (const auto& entry : entries) {
        const std::string head =
            "    {\"name\":" + JsonQuote(entry.name) +
            ",\"labels\":" + LabelsToJsonObject(entry.labels) + ",";
        switch (entry.type) {
          case MetricType::kCounter:
            if (!counters.empty()) counters += ",\n";
            counters += head + StrFormat(
                "\"value\":%lld}",
                static_cast<long long>(entry.counter->value()));
            break;
          case MetricType::kGauge:
            if (!gauges.empty()) gauges += ",\n";
            gauges += head +
                      "\"value\":" + Num(entry.gauge->value()) + "}";
            break;
          case MetricType::kHistogram:
            if (!histograms.empty()) histograms += ",\n";
            histograms +=
                head + HistogramJsonBody(*entry.histogram) + "}";
            break;
        }
    }
    std::string out = "{\n  \"version\": 1,\n";
    out += "  \"counters\": [\n" + counters + "\n  ],\n";
    out += "  \"gauges\": [\n" + gauges + "\n  ],\n";
    out += "  \"histograms\": [\n" + histograms + "\n  ]\n}\n";
    return out;
}

std::string
MetricsToCsv(const MetricsRegistry& registry)
{
    std::string out =
        "type,name,labels,value,count,mean,min,max,p50,p95,p99\n";
    for (const auto& entry : registry.Snapshot()) {
        std::vector<std::string> label_parts;
        for (const auto& [k, v] : entry.labels) {
            label_parts.push_back(k + "=" + v);
        }
        const std::string labels = StrJoin(label_parts, ";");
        switch (entry.type) {
          case MetricType::kCounter:
            out += StrFormat("counter,%s,%s,%lld,,,,,,,\n",
                             entry.name.c_str(), labels.c_str(),
                             static_cast<long long>(
                                 entry.counter->value()));
            break;
          case MetricType::kGauge:
            out += StrFormat("gauge,%s,%s,%s,,,,,,,\n",
                             entry.name.c_str(), labels.c_str(),
                             Num(entry.gauge->value()).c_str());
            break;
          case MetricType::kHistogram: {
            const HistogramMetric& h = *entry.histogram;
            out += StrFormat(
                "histogram,%s,%s,,%lld,%s,%s,%s,%s,%s,%s\n",
                entry.name.c_str(), labels.c_str(),
                static_cast<long long>(h.count()),
                Num(h.mean()).c_str(), Num(h.min()).c_str(),
                Num(h.max()).c_str(),
                Num(h.Percentile(50.0)).c_str(),
                Num(h.Percentile(95.0)).c_str(),
                Num(h.Percentile(99.0)).c_str());
            break;
          }
        }
    }
    return out;
}

std::string
MetricsToBenchJsonLine(const std::string& bench_id,
                       const MetricsRegistry& registry)
{
    std::string counters;
    std::string gauges;
    std::string histograms;
    for (const auto& entry : registry.Snapshot()) {
        const std::string key = JsonQuote(FlatKey(entry)) + ":";
        switch (entry.type) {
          case MetricType::kCounter:
            if (!counters.empty()) counters += ",";
            counters += key + StrFormat(
                "%lld",
                static_cast<long long>(entry.counter->value()));
            break;
          case MetricType::kGauge:
            if (!gauges.empty()) gauges += ",";
            gauges += key + Num(entry.gauge->value());
            break;
          case MetricType::kHistogram:
            if (!histograms.empty()) histograms += ",";
            histograms +=
                key + "{" + HistogramJsonBody(*entry.histogram) + "}";
            break;
        }
    }
    return "{\"bench\":" + JsonQuote(bench_id) +
           ",\"counters\":{" + counters + "},\"gauges\":{" + gauges +
           "},\"histograms\":{" + histograms + "}}";
}

Status
WriteTextFile(const std::string& content, const std::string& path)
{
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        return Status::InvalidArgument("cannot open " + path);
    }
    std::fwrite(content.data(), 1, content.size(), f);
    std::fclose(f);
    return Status::Ok();
}

StatusOr<std::string>
ReadTextFile(const std::string& path)
{
    std::FILE* f = std::fopen(path.c_str(), "r");
    if (f == nullptr) {
        return Status::InvalidArgument("cannot open " + path);
    }
    std::string content;
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
        content.append(buf, n);
    }
    std::fclose(f);
    return content;
}

Status
WriteMetricsJson(const MetricsRegistry& registry, const std::string& path)
{
    return WriteTextFile(MetricsToJson(registry), path);
}

Status
WriteMetricsCsv(const MetricsRegistry& registry, const std::string& path)
{
    return WriteTextFile(MetricsToCsv(registry), path);
}

}  // namespace obs
}  // namespace t4i
