#include "src/obs/timeseries.h"

#include <algorithm>
#include <cmath>

#include "src/common/strings.h"

namespace t4i {
namespace obs {
namespace {

/** Canonical key, mirroring the registry: name + sorted k=v pairs. */
std::string
SeriesKey(const std::string& name, const Labels& labels)
{
    std::string key = name;
    Labels sorted = labels;
    std::sort(sorted.begin(), sorted.end());
    for (const auto& [k, v] : sorted) {
        key += '\x1f';
        key += k;
        key += '=';
        key += v;
    }
    return key;
}

/** Exact percentile of a sorted slice, PercentileTracker's
 *  interpolation (linear between order statistics). */
double
SlicePercentile(const std::vector<double>& sorted, double q)
{
    if (sorted.empty()) return 0.0;
    const double rank =
        q / 100.0 * static_cast<double>(sorted.size() - 1);
    const size_t lo = static_cast<size_t>(std::floor(rank));
    const size_t hi = static_cast<size_t>(std::ceil(rank));
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace

const char*
SeriesKindName(SeriesKind kind)
{
    switch (kind) {
      case SeriesKind::kCounter: return "counter";
      case SeriesKind::kGauge: return "gauge";
      case SeriesKind::kHistogram: return "histogram";
    }
    return "?";
}

TimeSeriesCollector::TimeSeriesCollector(TimeSeriesOptions options)
    : options_(options)
{
    if (!(options_.window_s > 0.0)) options_.window_s = 0.05;
    if (options_.max_windows < 1) options_.max_windows = 1;
}

void
TimeSeriesCollector::BindRegistry(MetricsRegistry* registry)
{
    registry_ = registry;
    if (registry_ == nullptr) {
        windows_gauge_ = series_gauge_ = width_gauge_ = nullptr;
        return;
    }
    // Eager meta gauges: exports carry the windowing shape even for a
    // run with no closed windows yet.
    windows_gauge_ = registry_->GetGauge("obs.ts.windows");
    series_gauge_ = registry_->GetGauge("obs.ts.series");
    width_gauge_ = registry_->GetGauge("obs.ts.window_seconds");
    if (width_gauge_ != nullptr) width_gauge_->Set(options_.window_s);
    UpdateMetaGauges();
}

void
TimeSeriesCollector::BindAlerts(AlertEngine* alerts)
{
    alerts_ = alerts;
}

bool
TimeSeriesCollector::Skipped(const std::string& name) const
{
    // The collector's own meta gauges change on every close and would
    // feed back into themselves.
    if (name.rfind("obs.ts.", 0) == 0) return true;
    for (const std::string& prefix : options_.skip_prefixes) {
        if (name.rfind(prefix, 0) == 0) return true;
    }
    return false;
}

void
TimeSeriesCollector::ObserveGauges()
{
    if (registry_ == nullptr) return;
    for (const auto& entry : registry_->Snapshot()) {
        if (entry.type != MetricType::kGauge || Skipped(entry.name)) {
            continue;
        }
        const std::string key = SeriesKey(entry.name, entry.labels);
        auto it = state_.find(key);
        if (it == state_.end()) {
            SeriesState st;
            st.series_index = series_.size();
            series_.push_back(
                TimeSeries{entry.name, entry.labels,
                           SeriesKind::kGauge, {}});
            it = state_.emplace(key, st).first;
        }
        SeriesState& st = it->second;
        const double v = entry.gauge->value();
        if (!st.gauge_seen) {
            st.gauge_seen = true;
            st.gauge_last = st.gauge_min = st.gauge_max = v;
        } else {
            st.gauge_last = v;
            st.gauge_min = std::min(st.gauge_min, v);
            st.gauge_max = std::max(st.gauge_max, v);
        }
    }
}

void
TimeSeriesCollector::CloseWindow(double boundary_s)
{
    if (registry_ == nullptr) return;
    // The boundary itself is an observation point for gauges.
    ObserveGauges();
    const double t0 = window_start_s_;
    const double t1 = boundary_s;
    const double width = t1 - t0;
    for (const auto& entry : registry_->Snapshot()) {
        if (Skipped(entry.name)) continue;
        const std::string key = SeriesKey(entry.name, entry.labels);
        auto it = state_.find(key);
        if (it == state_.end()) {
            // First seen now: its whole history to date lands in this
            // window (baseline zero keeps counter conservation exact).
            SeriesState st;
            st.series_index = series_.size();
            SeriesKind kind = SeriesKind::kCounter;
            if (entry.type == MetricType::kGauge) {
                kind = SeriesKind::kGauge;
            } else if (entry.type == MetricType::kHistogram) {
                kind = SeriesKind::kHistogram;
            }
            series_.push_back(
                TimeSeries{entry.name, entry.labels, kind, {}});
            it = state_.emplace(key, st).first;
        }
        SeriesState& st = it->second;
        WindowPoint point;
        point.t0_s = t0;
        point.t1_s = t1;
        switch (entry.type) {
          case MetricType::kCounter: {
            const int64_t value = entry.counter->value();
            point.delta = value - st.last_counter;
            point.rate_per_s =
                width > 0.0
                    ? static_cast<double>(point.delta) / width
                    : 0.0;
            st.last_counter = value;
            break;
          }
          case MetricType::kGauge: {
            if (!st.gauge_seen) {
                const double v = entry.gauge->value();
                st.gauge_last = st.gauge_min = st.gauge_max = v;
            }
            point.last = st.gauge_last;
            point.min = st.gauge_min;
            point.max = st.gauge_max;
            // Next window starts from the value at this boundary.
            st.gauge_seen = true;
            st.gauge_min = st.gauge_max = st.gauge_last;
            break;
          }
          case MetricType::kHistogram: {
            std::vector<double> slice =
                entry.histogram->SamplesSince(st.samples_consumed);
            st.samples_consumed +=
                static_cast<int64_t>(slice.size());
            point.count = static_cast<int64_t>(slice.size());
            if (!slice.empty()) {
                std::sort(slice.begin(), slice.end());
                point.min = slice.front();
                point.max = slice.back();
                for (double x : slice) point.sum += x;
                point.p50 = SlicePercentile(slice, 50.0);
                point.p95 = SlicePercentile(slice, 95.0);
                point.p99 = SlicePercentile(slice, 99.0);
            }
            break;
          }
        }
        series_[st.series_index].points.push_back(point);
    }
    window_start_s_ = boundary_s;
    ++windows_closed_;
    UpdateMetaGauges();
    // Windowed alert evaluation: one evaluation per closed window at
    // the window's end time, so for-durations count whole windows.
    if (alerts_ != nullptr) {
        alerts_->Evaluate(*registry_, boundary_s);
    }
}

void
TimeSeriesCollector::Tick(double t_s)
{
    if (finished_ || registry_ == nullptr) return;
    ObserveGauges();
    while (window_start_s_ + options_.window_s <= t_s &&
           windows_closed_ < options_.max_windows) {
        CloseWindow(window_start_s_ + options_.window_s);
    }
}

void
TimeSeriesCollector::Finish(double end_s)
{
    if (finished_) return;
    finished_ = true;
    if (registry_ == nullptr) return;
    if (end_s < window_start_s_) end_s = window_start_s_;
    // Close every full window first (each close may evaluate alerts).
    ObserveGauges();
    while (window_start_s_ + options_.window_s <= end_s &&
           windows_closed_ < options_.max_windows) {
        CloseWindow(window_start_s_ + options_.window_s);
    }
    // One final evaluation at the very end (mirrors the engines' own
    // "once more at run end" contract), *before* the trailing window
    // closes so its own obs.alert.* increments stay conserved.
    if (alerts_ != nullptr) {
        alerts_->Evaluate(*registry_, end_s);
    }
    // Trailing partial window: anything after the last boundary —
    // including the evaluation above — must land somewhere for the
    // conservation invariant to hold.
    bool residual = end_s > window_start_s_;
    if (!residual) {
        for (const auto& entry : registry_->Snapshot()) {
            if (Skipped(entry.name)) continue;
            auto it = state_.find(SeriesKey(entry.name, entry.labels));
            const bool known = it != state_.end();
            if (entry.type == MetricType::kCounter) {
                const int64_t last =
                    known ? it->second.last_counter : 0;
                if (entry.counter->value() != last) residual = true;
            } else if (entry.type == MetricType::kHistogram) {
                const int64_t seen =
                    known ? it->second.samples_consumed : 0;
                if (entry.histogram->count() != seen) residual = true;
            } else if (!known) {
                residual = true;
            }
            if (residual) break;
        }
    }
    if (residual) {
        AlertEngine* saved = alerts_;
        alerts_ = nullptr;  // the final evaluation already ran
        CloseWindow(end_s);
        alerts_ = saved;
    }
    UpdateMetaGauges();
}

const TimeSeries*
TimeSeriesCollector::Find(const std::string& name,
                          const Labels& labels) const
{
    auto it = state_.find(SeriesKey(name, labels));
    if (it == state_.end()) return nullptr;
    return &series_[it->second.series_index];
}

Status
TimeSeriesCollector::CheckConservation() const
{
    if (registry_ == nullptr) return Status::Ok();
    for (const auto& entry : registry_->Snapshot()) {
        if (entry.type != MetricType::kCounter || Skipped(entry.name)) {
            continue;
        }
        const int64_t value = entry.counter->value();
        auto it = state_.find(SeriesKey(entry.name, entry.labels));
        int64_t windowed = 0;
        if (it != state_.end()) {
            for (const WindowPoint& p :
                 series_[it->second.series_index].points) {
                windowed += p.delta;
            }
        }
        if (windowed != value) {
            return Status::Internal(StrFormat(
                "time-series conservation violated for %s: windowed "
                "deltas sum to %lld but the aggregate register reads "
                "%lld (post-Finish increment or collector bug)",
                entry.name.c_str(),
                static_cast<long long>(windowed),
                static_cast<long long>(value)));
        }
    }
    return Status::Ok();
}

std::string
TimeSeriesCollector::Summary() const
{
    std::string out = StrFormat(
        "time series: %zu series, %lld windows of %.4g s\n",
        series_.size(), static_cast<long long>(windows_closed_),
        options_.window_s);
    for (const TimeSeries& s : series_) {
        double total = 0.0;
        for (const WindowPoint& p : s.points) {
            total += s.kind == SeriesKind::kCounter
                         ? static_cast<double>(p.delta)
                         : (s.kind == SeriesKind::kHistogram
                                ? static_cast<double>(p.count)
                                : p.last);
        }
        std::string labels;
        for (const auto& [k, v] : s.labels) {
            labels += labels.empty() ? "" : ",";
            labels += k + "=" + v;
        }
        out += StrFormat("  %s{%s} %s %zu points total %.6g\n",
                         s.name.c_str(), labels.c_str(),
                         SeriesKindName(s.kind), s.points.size(),
                         total);
    }
    return out;
}

void
TimeSeriesCollector::UpdateMetaGauges()
{
    if (windows_gauge_ != nullptr) {
        windows_gauge_->Set(static_cast<double>(windows_closed_));
    }
    if (series_gauge_ != nullptr) {
        series_gauge_->Set(static_cast<double>(series_.size()));
    }
}

}  // namespace obs
}  // namespace t4i
