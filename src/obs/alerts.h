/**
 * @file
 * Declarative SLO alert rules evaluated against the metrics registry.
 *
 * A rule is `metric selector + comparator + threshold + for-duration`:
 * the condition must hold continuously for the for-duration (in sim
 * time) before the rule fires, and a single false evaluation resets it
 * (hysteresis, Prometheus-style `for:`). Rules are evaluated
 * periodically *during* a serving run (histograms and counters update
 * live) and once more at run end (run-summary gauges such as
 * `serving.slo_burn_rate` land then — use `for 0` for those).
 *
 * Firing alerts are recorded as trace instants, mirrored into the
 * flight recorder (optionally triggering its black-box dump), counted
 * in `obs.alert.*` instruments so they surface in `--metrics-json`,
 * and drive the nonzero exit of `t4sim_cli check`.
 *
 * Rule file grammar (one rule per line, '#' comments):
 *   alert NAME SELECTOR CMP THRESHOLD [for SECONDS]
 * where SELECTOR is `metric`, `metric{k=v,...}`, with an optional
 * `:field` suffix (`value` for counters/gauges — the default — or
 * `count|sum|mean|min|max|pNN` for histograms), and CMP is one of
 * > >= < <=. Example:
 *   alert burn serving.slo_burn_rate{tenant=BERT0} > 1.0 for 0
 *   alert p99 serving.latency_seconds:p99 > 0.050 for 0.5
 */
#ifndef T4I_OBS_ALERTS_H
#define T4I_OBS_ALERTS_H

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/obs/registry.h"
#include "src/obs/trace_builder.h"

namespace t4i {
namespace obs {

class FlightRecorder;  // src/obs/flight_recorder.h

enum class AlertComparator { kGt, kGe, kLt, kLe };

const char* AlertComparatorName(AlertComparator cmp);

/** One declarative rule. */
struct AlertRule {
    std::string name;
    /** Instrument name to match. */
    std::string metric;
    /** Label subset to match; empty matches every label set. */
    Labels label_filter;
    /** value | count | sum | mean | min | max | pNN. */
    std::string field = "value";
    AlertComparator cmp = AlertComparator::kGt;
    double threshold = 0.0;
    /** Condition must hold this long (sim s) before firing; 0 fires
     *  on the first true evaluation. */
    double for_s = 0.0;
};

enum class AlertState { kInactive, kPending, kFiring };

const char* AlertStateName(AlertState state);

/** Evaluation status of one rule. */
struct AlertStatus {
    AlertRule rule;
    AlertState state = AlertState::kInactive;
    /** When the condition first became (and stayed) true. */
    double pending_since_s = 0.0;
    /** Last transition to firing. */
    double fired_at_s = 0.0;
    /** Most recent observed value (worst-case over matches). */
    double last_value = 0.0;
    /** False when no instrument matched on the last evaluation. */
    bool have_value = false;
    /** Count of inactive/pending -> firing transitions. */
    int64_t fire_count = 0;
};

/**
 * Parses the rule-file grammar above. Returns InvalidArgument with a
 * line number on the first malformed rule.
 */
StatusOr<std::vector<AlertRule>> ParseAlertRules(
    const std::string& text);

class AlertEngine {
  public:
    /**
     * Eagerly creates the `obs.alert.*` instruments (rules gauge,
     * evaluations counter, firing counter) so exports have a stable
     * shape even with no rules loaded. Null detaches.
     */
    void BindRegistry(MetricsRegistry* registry);
    /** Firing/resolve transitions become instants on @p trace. */
    void BindTrace(TraceBuilder* trace, int pid);
    /** Transitions mirror into @p recorder (which may dump). */
    void BindRecorder(FlightRecorder* recorder);

    Status AddRule(const AlertRule& rule);
    /** ParseAlertRules + AddRule for each. */
    Status AddRulesFromText(const std::string& text);

    /**
     * Evaluates every rule against @p registry at sim time @p t_s.
     * Transitions: false -> inactive (resets pending); true ->
     * pending until it has held for for_s, then firing.
     */
    void Evaluate(const MetricsRegistry& registry, double t_s);

    size_t rule_count() const { return statuses_.size(); }
    const std::vector<AlertStatus>& statuses() const
    {
        return statuses_;
    }
    bool AnyFiring() const;
    size_t firing_count() const;
    int64_t evaluations() const { return evaluations_; }

    /** One line per rule: state, value vs threshold, fire count. */
    std::string Summary() const;

  private:
    void SetActiveGauge(const AlertStatus& status);

    std::vector<AlertStatus> statuses_;
    int64_t evaluations_ = 0;

    MetricsRegistry* registry_ = nullptr;
    Counter* eval_counter_ = nullptr;
    Counter* firing_counter_ = nullptr;
    Gauge* rules_gauge_ = nullptr;
    TraceBuilder* trace_ = nullptr;
    int trace_pid_ = 0;
    FlightRecorder* recorder_ = nullptr;
};

}  // namespace obs
}  // namespace t4i

#endif  // T4I_OBS_ALERTS_H
