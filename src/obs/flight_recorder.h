/**
 * @file
 * Black-box flight recorder: a fixed-capacity ring buffer of
 * structured events that is always on at negligible cost, plus a
 * one-shot post-mortem dump.
 *
 * Production cells rarely fail while someone is watching. The recorder
 * keeps the last N structured events — span opens/closes, fault
 * transitions, queue-depth samples, log messages routed from
 * src/common/log.h, alert transitions — in a ring buffer, and on a
 * configurable trigger (device failure, deadline drop, a firing alert)
 * writes a "black box" JSON snapshot: the buffered events, the metrics
 * registry, per-device fault state, and the spans still in flight at
 * dump time. The dump happens once per run (the first trigger wins);
 * later triggers are recorded as ordinary events so the post-mortem
 * file reflects the state at the *start* of the incident.
 */
#ifndef T4I_OBS_FLIGHT_RECORDER_H
#define T4I_OBS_FLIGHT_RECORDER_H

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/obs/registry.h"

namespace t4i {
namespace obs {

class SpanCollector;  // src/obs/spans.h

enum class FlightEventKind {
    kSpanOpen,
    kSpanClose,
    kFault,
    kQueueDepth,
    kLog,
    kAlert,
    kDrop,
    kTrigger,
    kNote,
};

const char* FlightEventKindName(FlightEventKind kind);

/** One ring-buffer entry. */
struct FlightEvent {
    double t_s = 0.0;
    FlightEventKind kind = FlightEventKind::kNote;
    std::string message;
    /** Kind-specific scalar (queue depth, alert value, ...). */
    double value = 0.0;
};

struct FlightRecorderConfig {
    /** Ring capacity in events; older events are overwritten. */
    size_t capacity = 4096;
    /** Post-mortem file; empty means triggers record but never dump. */
    std::string dump_path;
    /** Dump when a device fails mid-batch / goes down. */
    bool dump_on_fault = true;
    /** Dump on the first per-request deadline drop. */
    bool dump_on_deadline_drop = false;
    /** Dump when an alert rule transitions to firing. */
    bool dump_on_alert = false;
};

class FlightRecorder {
  public:
    explicit FlightRecorder(FlightRecorderConfig config = {});
    ~FlightRecorder();

    FlightRecorder(const FlightRecorder&) = delete;
    FlightRecorder& operator=(const FlightRecorder&) = delete;

    /** Appends one event (thread-safe; overwrites the oldest). */
    void Record(FlightEventKind kind, double t_s, std::string message,
                double value = 0.0);

    // Dump context (all optional; missing parts render as null/[]). --
    void BindRegistry(const MetricsRegistry* registry);
    void BindSpans(const SpanCollector* spans);
    /**
     * Per-device fault state at time t as a JSON array (the serving
     * loop installs this for the run's duration and clears it before
     * returning — the provider captures loop-local state).
     */
    void SetDeviceStateProvider(std::function<std::string(double)>
                                    provider);
    /**
     * Tail-forensics summary (kept trace ids + exemplar refs) as a
     * JSON object — typically ForensicsJson over a read-only
     * BuildForensics pass at dump time. Renders as `forensics: null`
     * when unset.
     */
    void SetForensicsProvider(std::function<std::string()> provider);

    // Trigger entry points. ------------------------------------------
    /** Records a fault event; dumps when config.dump_on_fault. */
    void OnFault(double t_s, const std::string& detail);
    /** Records a drop event; dumps when config.dump_on_deadline_drop. */
    void OnDeadlineDrop(double t_s, const std::string& detail);
    /** Records an alert event; dumps when config.dump_on_alert. */
    void OnAlert(double t_s, const std::string& detail, double value);
    /** Unconditional trigger: records and dumps (once per run). */
    Status Trigger(const std::string& reason, double t_s);

    /**
     * Routes t4i::LogMessage output (at or above the global log
     * threshold) into the ring as kLog events, stamped with the time
     * of the most recently recorded event (logs carry no sim time).
     * Uninstalled automatically on destruction.
     */
    void InstallLogSink();
    void UninstallLogSink();

    /** The full snapshot JSON a trigger would write. */
    std::string DumpJson(const std::string& reason, double t_s) const;

    // Introspection (tests, CLI summaries). --------------------------
    size_t capacity() const { return config_.capacity; }
    size_t size() const;
    int64_t total_recorded() const;
    /** Buffered events, oldest first. */
    std::vector<FlightEvent> Events() const;
    bool dumped() const;
    const std::string& dump_reason() const { return dump_reason_; }
    const FlightRecorderConfig& config() const { return config_; }

  private:
    Status DumpOnce(const std::string& reason, double t_s);

    FlightRecorderConfig config_;
    mutable std::mutex mu_;
    std::vector<FlightEvent> ring_;
    size_t next_ = 0;          ///< next write position
    int64_t total_ = 0;        ///< events ever recorded
    double last_t_s_ = 0.0;    ///< timestamp hint for log events
    bool dumped_ = false;
    std::string dump_reason_;
    bool sink_installed_ = false;

    const MetricsRegistry* registry_ = nullptr;
    const SpanCollector* spans_ = nullptr;
    std::function<std::string(double)> device_state_;
    std::function<std::string()> forensics_;
};

}  // namespace obs
}  // namespace t4i

#endif  // T4I_OBS_FLIGHT_RECORDER_H
