#include "src/obs/report.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "src/common/strings.h"
#include "src/obs/export.h"
#include "src/obs/json.h"

namespace t4i {
namespace obs {
namespace {

/** Stable numeric formatting shared with the exporters: %.9g, with
 *  non-finite values clamped so the JSON stays parseable. */
std::string
Num(double v)
{
    if (!std::isfinite(v)) return "0";
    return StrFormat("%.9g", v);
}

std::string
Int(int64_t v)
{
    return StrFormat("%lld", static_cast<long long>(v));
}

/** `{k=v,...}` suffix; empty labels render as no suffix (the
 *  BENCH_JSON / perf_gate flat-key convention). */
std::string
FlatLabels(const Labels& labels)
{
    if (labels.empty()) return "";
    std::string out = "{";
    for (size_t i = 0; i < labels.size(); ++i) {
        if (i > 0) out += ",";
        out += labels[i].first + "=" + labels[i].second;
    }
    return out + "}";
}

std::string
LabelsJson(const Labels& labels)
{
    std::string out = "{";
    for (size_t i = 0; i < labels.size(); ++i) {
        if (i > 0) out += ",";
        out += JsonQuote(labels[i].first) + ":" +
               JsonQuote(labels[i].second);
    }
    return out + "}";
}

const char* kHistFields[] = {"count", "sum",  "mean", "min",
                             "max",   "p50", "p95",  "p99"};

double
HistField(const HistogramMetric& h, const std::string& field)
{
    if (field == "count") return static_cast<double>(h.count());
    if (field == "sum") return h.sum();
    if (field == "mean") return h.mean();
    if (field == "min") return h.min();
    if (field == "max") return h.max();
    if (field == "p50") return h.Percentile(50.0);
    if (field == "p95") return h.Percentile(95.0);
    return h.Percentile(99.0);
}

// --- JSON parsing helpers ---------------------------------------------

double
NumField(const JsonValue& obj, const std::string& key,
         double fallback = 0.0)
{
    const JsonValue* v = obj.Find(key);
    return v != nullptr && v->is_number() ? v->number_value
                                          : fallback;
}

int64_t
IntField(const JsonValue& obj, const std::string& key,
         int64_t fallback = 0)
{
    const JsonValue* v = obj.Find(key);
    return v != nullptr && v->is_number()
               ? static_cast<int64_t>(v->number_value)
               : fallback;
}

std::string
StrField(const JsonValue& obj, const std::string& key)
{
    const JsonValue* v = obj.Find(key);
    return v != nullptr && v->is_string() ? v->string_value : "";
}

bool
BoolField(const JsonValue& obj, const std::string& key)
{
    const JsonValue* v = obj.Find(key);
    return v != nullptr && v->is_bool() && v->bool_value;
}

Labels
LabelsField(const JsonValue& obj)
{
    Labels labels;
    const JsonValue* v = obj.Find("labels");
    if (v != nullptr && v->is_object()) {
        for (const auto& [k, val] : v->object) {
            labels.emplace_back(
                k, val.is_string() ? val.string_value : "");
        }
    }
    return labels;
}

/** Alert state as a comparable rank for the diff. */
double
StateRank(const std::string& state)
{
    if (state == "firing") return 2.0;
    if (state == "pending") return 1.0;
    return 0.0;
}

// --- diff flattening --------------------------------------------------

/** Key -> value, insertion-ordered for stable reporting. */
struct FlatView {
    std::vector<std::pair<std::string, double>> entries;
    std::map<std::string, double> index;

    void Add(const std::string& key, double value)
    {
        if (index.emplace(key, value).second) {
            entries.emplace_back(key, value);
        }
    }
};

void
FlattenReport(const RunReport& report, FlatView* out)
{
    for (const auto& [key, value] : report.metrics) {
        out->Add("metric:" + key, value);
    }
    for (const TimeSeries& s : report.series) {
        const std::string base = s.name + FlatLabels(s.labels);
        for (size_t i = 0; i < s.points.size(); ++i) {
            const WindowPoint& p = s.points[i];
            const std::string at =
                StrFormat("series:%s[%zu].", base.c_str(), i);
            out->Add(at + "t1", p.t1_s);
            switch (s.kind) {
              case SeriesKind::kCounter:
                out->Add(at + "delta",
                         static_cast<double>(p.delta));
                break;
              case SeriesKind::kGauge:
                out->Add(at + "last", p.last);
                out->Add(at + "min", p.min);
                out->Add(at + "max", p.max);
                break;
              case SeriesKind::kHistogram:
                out->Add(at + "count",
                         static_cast<double>(p.count));
                out->Add(at + "sum", p.sum);
                out->Add(at + "p50", p.p50);
                out->Add(at + "p95", p.p95);
                out->Add(at + "p99", p.p99);
                break;
            }
        }
    }
    for (const SloStatus& s : report.slos) {
        const std::string base = "slo:" + s.objective.name;
        out->Add(base + ".good", static_cast<double>(s.good));
        out->Add(base + ".bad", static_cast<double>(s.bad));
        out->Add(base + ".pages", static_cast<double>(s.pages));
        out->Add(base + ".min_budget_remaining",
                 s.min_budget_remaining);
        out->Add(base + ".peak_burn_fast", s.peak_burn_fast);
        out->Add(base + ".peak_burn_slow", s.peak_burn_slow);
        out->Add(base + ".total_energy_j", s.total_energy_j);
        out->Add(base + ".total_cost_usd", s.total_cost_usd);
        for (size_t i = 0; i < s.timeline.size(); ++i) {
            const SloBudgetPoint& p = s.timeline[i];
            const std::string at =
                StrFormat("%s[%zu].", base.c_str(), i);
            out->Add(at + "burn_fast", p.burn_fast);
            out->Add(at + "burn_slow", p.burn_slow);
            out->Add(at + "budget_remaining", p.budget_remaining);
            out->Add(at + "latency_q_s", p.latency_q_s);
            out->Add(at + "energy_per_request_j",
                     p.energy_per_request_j);
            out->Add(at + "cost_per_request_usd",
                     p.cost_per_request_usd);
        }
    }
    for (const ReportAlert& a : report.alerts) {
        out->Add("alert:" + a.name + ".fire_count",
                 static_cast<double>(a.fire_count));
        out->Add("alert:" + a.name + ".state",
                 StateRank(a.state));
        out->Add("alert:" + a.name + ".last_value", a.last_value);
    }
    const ReportCriticalPath& cp = report.critical_path;
    if (cp.traces > 0 || !cp.kept_trace_ids.empty()) {
        out->Add("critical_path:traces",
                 static_cast<double>(cp.traces));
        out->Add("critical_path:kept",
                 static_cast<double>(cp.kept));
        out->Add("critical_path:tiled",
                 static_cast<double>(cp.tiled));
        out->Add("critical_path:untiled",
                 static_cast<double>(cp.untiled));
        for (size_t i = 0; i < cp.kept_trace_ids.size(); ++i) {
            out->Add(StrFormat("critical_path:kept[%zu]", i),
                     static_cast<double>(cp.kept_trace_ids[i]));
        }
        for (const ReportPathBand& b : cp.bands) {
            const std::string at =
                "critical_path:band." + b.tenant + "." + b.band;
            out->Add(at + ".traces",
                     static_cast<double>(b.traces));
            out->Add(at + ".total_s", b.total_s);
            for (const ReportComponentShare& s : b.shares) {
                out->Add(at + "." + s.component, s.fraction);
            }
        }
        for (const ReportPathDifferential& d : cp.differential) {
            const std::string at = "critical_path:diff." +
                                   d.tenant + "." + d.component;
            out->Add(at + ".p50", d.p50_fraction);
            out->Add(at + ".p99", d.p99_fraction);
            out->Add(at + ".delta", d.delta);
        }
    }
    for (const ReportExemplar& e : report.exemplars) {
        const std::string at = StrFormat(
            "exemplar:%s[%d]", e.metric.c_str(), e.bucket);
        out->Add(at + ".value", e.value);
        out->Add(at + ".trace_id",
                 static_cast<double>(e.trace_id));
        out->Add(at + ".t", e.t_s);
    }
}

/** The metric-name part used for tolerance/ignore prefix matching:
 *  the section marker is stripped and labels/field suffixes kept, the
 *  same contract perf_gate applies to its flat keys. */
std::string
DiffKeyName(const std::string& key)
{
    const size_t colon = key.find(':');
    std::string name =
        colon == std::string::npos ? key : key.substr(colon + 1);
    const size_t brace = name.find('{');
    if (brace != std::string::npos) name = name.substr(0, brace);
    return name;
}

bool
PrefixMatch(const std::string& key, const std::string& name,
            const std::string& prefix)
{
    return name.rfind(prefix, 0) == 0 || key.rfind(prefix, 0) == 0;
}

ReportTolerance
ToleranceFor(const std::string& key,
             const ReportDiffOptions& options)
{
    const std::string name = DiffKeyName(key);
    ReportTolerance best = options.default_tolerance;
    size_t best_len = 0;
    bool found = false;
    for (const auto& [prefix, tol] : options.tolerances) {
        if (PrefixMatch(key, name, prefix) &&
            (!found || prefix.size() > best_len)) {
            best = tol;
            best_len = prefix.size();
            found = true;
        }
    }
    return best;
}

bool
Ignored(const std::string& key, const ReportDiffOptions& options)
{
    const std::string name = DiffKeyName(key);
    for (const std::string& prefix : options.ignore_prefixes) {
        if (PrefixMatch(key, name, prefix)) return true;
    }
    return false;
}

}  // namespace

RunReport
BuildRunReport(const ReportMeta& meta,
               const MetricsRegistry* registry,
               const TimeSeriesCollector* timeseries,
               const SloTracker* slo, const AlertEngine* alerts)
{
    RunReport report;
    report.meta = meta;
    if (timeseries != nullptr) {
        report.series = timeseries->series();
        if (report.meta.window_s == 0.0) {
            report.meta.window_s = timeseries->window_s();
        }
    }
    if (slo != nullptr) report.slos = slo->statuses();
    if (alerts != nullptr) {
        for (const AlertStatus& s : alerts->statuses()) {
            ReportAlert a;
            a.name = s.rule.name;
            a.state = AlertStateName(s.state);
            a.fire_count = s.fire_count;
            a.last_value = s.last_value;
            a.fired_at_s = s.fired_at_s;
            report.alerts.push_back(std::move(a));
        }
    }
    if (registry != nullptr) {
        for (const auto& entry : registry->Snapshot()) {
            const std::string key =
                entry.name + FlatLabels(entry.labels);
            switch (entry.type) {
              case MetricType::kCounter:
                report.metrics.emplace_back(
                    key,
                    static_cast<double>(entry.counter->value()));
                break;
              case MetricType::kGauge:
                report.metrics.emplace_back(
                    key, entry.gauge->value());
                break;
              case MetricType::kHistogram:
                for (const char* field : kHistFields) {
                    report.metrics.emplace_back(
                        key + "." + field,
                        HistField(*entry.histogram, field));
                }
                break;
            }
        }
    }
    return report;
}

std::string
RunReportToJson(const RunReport& report)
{
    std::string out = "{\n";
    out += StrFormat(" \"schema_version\":%d,\n",
                     report.schema_version);
    const ReportMeta& m = report.meta;
    out += " \"meta\":{";
    out += "\"tool\":" + JsonQuote(m.tool);
    out += ",\"command\":" + JsonQuote(m.command);
    out += ",\"app\":" + JsonQuote(m.app);
    out += ",\"chip\":" + JsonQuote(m.chip);
    out += ",\"duration_s\":" + Num(m.duration_s);
    out += ",\"seed\":" + Int(m.seed);
    out += ",\"window_s\":" + Num(m.window_s);
    out += "},\n";

    out += " \"series\":[";
    for (size_t i = 0; i < report.series.size(); ++i) {
        const TimeSeries& s = report.series[i];
        out += i > 0 ? ",\n  " : "\n  ";
        out += "{\"name\":" + JsonQuote(s.name);
        out += ",\"labels\":" + LabelsJson(s.labels);
        out += ",\"kind\":";
        out += JsonQuote(SeriesKindName(s.kind));
        out += ",\"points\":[";
        for (size_t j = 0; j < s.points.size(); ++j) {
            const WindowPoint& p = s.points[j];
            out += j > 0 ? "," : "";
            out += "{\"t0\":" + Num(p.t0_s);
            out += ",\"t1\":" + Num(p.t1_s);
            switch (s.kind) {
              case SeriesKind::kCounter:
                out += ",\"delta\":" + Int(p.delta);
                out += ",\"rate\":" + Num(p.rate_per_s);
                break;
              case SeriesKind::kGauge:
                out += ",\"last\":" + Num(p.last);
                out += ",\"min\":" + Num(p.min);
                out += ",\"max\":" + Num(p.max);
                break;
              case SeriesKind::kHistogram:
                out += ",\"count\":" + Int(p.count);
                out += ",\"sum\":" + Num(p.sum);
                out += ",\"min\":" + Num(p.min);
                out += ",\"max\":" + Num(p.max);
                out += ",\"p50\":" + Num(p.p50);
                out += ",\"p95\":" + Num(p.p95);
                out += ",\"p99\":" + Num(p.p99);
                break;
            }
            out += "}";
        }
        out += "]}";
    }
    out += "],\n";

    out += " \"slos\":[";
    for (size_t i = 0; i < report.slos.size(); ++i) {
        const SloStatus& s = report.slos[i];
        const SloObjective& o = s.objective;
        out += i > 0 ? ",\n  " : "\n  ";
        out += "{\"objective\":{";
        out += "\"name\":" + JsonQuote(o.name);
        out += ",\"tenant\":" + JsonQuote(o.tenant);
        out += ",\"availability_target\":" +
               Num(o.availability_target);
        out += ",\"latency_target_s\":" + Num(o.latency_target_s);
        out += ",\"latency_quantile\":" + Num(o.latency_quantile);
        out += ",\"horizon_s\":" + Num(o.horizon_s);
        out += ",\"fast_window_s\":" + Num(o.fast_window_s);
        out += ",\"slow_window_s\":" + Num(o.slow_window_s);
        out += ",\"page_burn\":" + Num(o.page_burn);
        out += "},\"final\":{";
        out += "\"good\":" + Int(s.good);
        out += ",\"bad\":" + Int(s.bad);
        out += ",\"total\":" + Int(s.total);
        out += ",\"peak_burn_fast\":" + Num(s.peak_burn_fast);
        out += ",\"peak_burn_slow\":" + Num(s.peak_burn_slow);
        out += ",\"min_budget_remaining\":" +
               Num(s.min_budget_remaining);
        out += ",\"pages\":" + Int(s.pages);
        out += ",\"page_seconds\":" + Num(s.page_seconds);
        out += ",\"total_energy_j\":" + Num(s.total_energy_j);
        out += ",\"total_cost_usd\":" + Num(s.total_cost_usd);
        out += "},\"timeline\":[";
        for (size_t j = 0; j < s.timeline.size(); ++j) {
            const SloBudgetPoint& p = s.timeline[j];
            out += j > 0 ? "," : "";
            out += "{\"t\":" + Num(p.t_s);
            out += ",\"good\":" + Int(p.good);
            out += ",\"bad\":" + Int(p.bad);
            out += ",\"total\":" + Int(p.total);
            out += ",\"burn_fast\":" + Num(p.burn_fast);
            out += ",\"burn_slow\":" + Num(p.burn_slow);
            out += ",\"budget_remaining\":" +
                   Num(p.budget_remaining);
            out += ",\"latency_q_s\":" + Num(p.latency_q_s);
            out += ",\"energy_per_request_j\":" +
                   Num(p.energy_per_request_j);
            out += ",\"cost_per_request_usd\":" +
                   Num(p.cost_per_request_usd);
            out += ",\"paging\":";
            out += p.paging ? "true" : "false";
            out += "}";
        }
        out += "]}";
    }
    out += "],\n";

    out += " \"alerts\":[";
    for (size_t i = 0; i < report.alerts.size(); ++i) {
        const ReportAlert& a = report.alerts[i];
        out += i > 0 ? "," : "";
        out += "{\"name\":" + JsonQuote(a.name);
        out += ",\"state\":" + JsonQuote(a.state);
        out += ",\"fire_count\":" + Int(a.fire_count);
        out += ",\"last_value\":" + Num(a.last_value);
        out += ",\"fired_at_s\":" + Num(a.fired_at_s);
        out += "}";
    }
    out += "],\n";

    const ReportCriticalPath& cp = report.critical_path;
    out += " \"critical_path\":{";
    out += "\"traces\":" + Int(cp.traces);
    out += ",\"kept\":" + Int(cp.kept);
    out += ",\"tiled\":" + Int(cp.tiled);
    out += ",\"untiled\":" + Int(cp.untiled);
    out += ",\"kept_trace_ids\":[";
    for (size_t i = 0; i < cp.kept_trace_ids.size(); ++i) {
        out += i > 0 ? "," : "";
        out += Int(static_cast<int64_t>(cp.kept_trace_ids[i]));
    }
    out += "],\"bands\":[";
    for (size_t i = 0; i < cp.bands.size(); ++i) {
        const ReportPathBand& b = cp.bands[i];
        out += i > 0 ? ",\n  " : "\n  ";
        out += "{\"tenant\":" + JsonQuote(b.tenant);
        out += ",\"band\":" + JsonQuote(b.band);
        out += ",\"traces\":" + Int(b.traces);
        out += ",\"total_s\":" + Num(b.total_s);
        out += ",\"shares\":[";
        for (size_t j = 0; j < b.shares.size(); ++j) {
            const ReportComponentShare& s = b.shares[j];
            out += j > 0 ? "," : "";
            out += "{\"component\":" + JsonQuote(s.component);
            out += ",\"seconds\":" + Num(s.seconds);
            out += ",\"fraction\":" + Num(s.fraction);
            out += "}";
        }
        out += "]}";
    }
    out += "],\"differential\":[";
    for (size_t i = 0; i < cp.differential.size(); ++i) {
        const ReportPathDifferential& d = cp.differential[i];
        out += i > 0 ? ",\n  " : "\n  ";
        out += "{\"tenant\":" + JsonQuote(d.tenant);
        out += ",\"component\":" + JsonQuote(d.component);
        out += ",\"p50_fraction\":" + Num(d.p50_fraction);
        out += ",\"p99_fraction\":" + Num(d.p99_fraction);
        out += ",\"delta\":" + Num(d.delta);
        out += "}";
    }
    out += "],\"dominant\":[";
    for (size_t i = 0; i < cp.dominant.size(); ++i) {
        out += i > 0 ? "," : "";
        out += "{\"tenant\":" + JsonQuote(cp.dominant[i].first);
        out += ",\"component\":" +
               JsonQuote(cp.dominant[i].second);
        out += "}";
    }
    out += "]},\n";

    out += " \"exemplars\":[";
    for (size_t i = 0; i < report.exemplars.size(); ++i) {
        const ReportExemplar& e = report.exemplars[i];
        out += i > 0 ? ",\n  " : "\n  ";
        out += "{\"metric\":" + JsonQuote(e.metric);
        out += StrFormat(",\"bucket\":%d", e.bucket);
        out += ",\"value\":" + Num(e.value);
        out += ",\"trace_id\":" +
               Int(static_cast<int64_t>(e.trace_id));
        out += ",\"t_s\":" + Num(e.t_s);
        out += ",\"reason\":" + JsonQuote(e.reason);
        out += "}";
    }
    out += "],\n";

    out += " \"metrics\":{";
    for (size_t i = 0; i < report.metrics.size(); ++i) {
        out += i > 0 ? ",\n  " : "\n  ";
        out += JsonQuote(report.metrics[i].first) + ":" +
               Num(report.metrics[i].second);
    }
    out += "}\n}\n";
    return out;
}

Status
WriteRunReport(const RunReport& report, const std::string& path)
{
    return WriteTextFile(RunReportToJson(report), path);
}

StatusOr<RunReport>
ReadRunReport(const std::string& path)
{
    auto text = ReadTextFile(path);
    T4I_RETURN_IF_ERROR(text.status());
    auto doc = ParseJson(text.value());
    if (!doc.ok()) {
        return Status::InvalidArgument(
            path + ": " + doc.status().ToString());
    }
    const JsonValue& root = doc.value();
    if (!root.is_object()) {
        return Status::InvalidArgument(path +
                                       ": report is not an object");
    }
    RunReport report;
    report.schema_version =
        static_cast<int>(IntField(root, "schema_version", -1));
    if (report.schema_version < kMinRunReportSchemaVersion ||
        report.schema_version > kRunReportSchemaVersion) {
        return Status::InvalidArgument(StrFormat(
            "%s: schema_version %d (this build reads %d..%d)",
            path.c_str(), report.schema_version,
            kMinRunReportSchemaVersion, kRunReportSchemaVersion));
    }
    if (const JsonValue* meta = root.Find("meta")) {
        report.meta.tool = StrField(*meta, "tool");
        report.meta.command = StrField(*meta, "command");
        report.meta.app = StrField(*meta, "app");
        report.meta.chip = StrField(*meta, "chip");
        report.meta.duration_s = NumField(*meta, "duration_s");
        report.meta.seed = IntField(*meta, "seed");
        report.meta.window_s = NumField(*meta, "window_s");
    }
    if (const JsonValue* series = root.Find("series")) {
        for (const JsonValue& sv : series->array) {
            TimeSeries s;
            s.name = StrField(sv, "name");
            s.labels = LabelsField(sv);
            const std::string kind = StrField(sv, "kind");
            s.kind = kind == "gauge"
                         ? SeriesKind::kGauge
                         : (kind == "histogram"
                                ? SeriesKind::kHistogram
                                : SeriesKind::kCounter);
            if (const JsonValue* points = sv.Find("points")) {
                for (const JsonValue& pv : points->array) {
                    WindowPoint p;
                    p.t0_s = NumField(pv, "t0");
                    p.t1_s = NumField(pv, "t1");
                    p.delta = IntField(pv, "delta");
                    p.rate_per_s = NumField(pv, "rate");
                    p.last = NumField(pv, "last");
                    p.min = NumField(pv, "min");
                    p.max = NumField(pv, "max");
                    p.count = IntField(pv, "count");
                    p.sum = NumField(pv, "sum");
                    p.p50 = NumField(pv, "p50");
                    p.p95 = NumField(pv, "p95");
                    p.p99 = NumField(pv, "p99");
                    s.points.push_back(p);
                }
            }
            report.series.push_back(std::move(s));
        }
    }
    if (const JsonValue* slos = root.Find("slos")) {
        for (const JsonValue& sv : slos->array) {
            SloStatus s;
            if (const JsonValue* obj = sv.Find("objective")) {
                s.objective.name = StrField(*obj, "name");
                s.objective.tenant = StrField(*obj, "tenant");
                s.objective.availability_target =
                    NumField(*obj, "availability_target");
                s.objective.latency_target_s =
                    NumField(*obj, "latency_target_s");
                s.objective.latency_quantile =
                    NumField(*obj, "latency_quantile", 95.0);
                s.objective.horizon_s = NumField(*obj, "horizon_s");
                s.objective.fast_window_s =
                    NumField(*obj, "fast_window_s");
                s.objective.slow_window_s =
                    NumField(*obj, "slow_window_s");
                s.objective.page_burn =
                    NumField(*obj, "page_burn", 1.0);
            }
            if (const JsonValue* fin = sv.Find("final")) {
                s.good = IntField(*fin, "good");
                s.bad = IntField(*fin, "bad");
                s.total = IntField(*fin, "total");
                s.peak_burn_fast =
                    NumField(*fin, "peak_burn_fast");
                s.peak_burn_slow =
                    NumField(*fin, "peak_burn_slow");
                s.min_budget_remaining =
                    NumField(*fin, "min_budget_remaining", 1.0);
                s.pages = IntField(*fin, "pages");
                s.page_seconds = NumField(*fin, "page_seconds");
                s.total_energy_j =
                    NumField(*fin, "total_energy_j");
                s.total_cost_usd =
                    NumField(*fin, "total_cost_usd");
            }
            if (const JsonValue* timeline = sv.Find("timeline")) {
                for (const JsonValue& pv : timeline->array) {
                    SloBudgetPoint p;
                    p.t_s = NumField(pv, "t");
                    p.good = IntField(pv, "good");
                    p.bad = IntField(pv, "bad");
                    p.total = IntField(pv, "total");
                    p.burn_fast = NumField(pv, "burn_fast");
                    p.burn_slow = NumField(pv, "burn_slow");
                    p.budget_remaining =
                        NumField(pv, "budget_remaining", 1.0);
                    p.latency_q_s = NumField(pv, "latency_q_s");
                    p.energy_per_request_j =
                        NumField(pv, "energy_per_request_j");
                    p.cost_per_request_usd =
                        NumField(pv, "cost_per_request_usd");
                    p.paging = BoolField(pv, "paging");
                    s.timeline.push_back(p);
                }
            }
            report.slos.push_back(std::move(s));
        }
    }
    if (const JsonValue* alerts = root.Find("alerts")) {
        for (const JsonValue& av : alerts->array) {
            ReportAlert a;
            a.name = StrField(av, "name");
            a.state = StrField(av, "state");
            a.fire_count = IntField(av, "fire_count");
            a.last_value = NumField(av, "last_value");
            a.fired_at_s = NumField(av, "fired_at_s");
            report.alerts.push_back(std::move(a));
        }
    }
    if (const JsonValue* cp = root.Find("critical_path")) {
        ReportCriticalPath& c = report.critical_path;
        c.traces = IntField(*cp, "traces");
        c.kept = IntField(*cp, "kept");
        c.tiled = IntField(*cp, "tiled");
        c.untiled = IntField(*cp, "untiled");
        if (const JsonValue* ids = cp->Find("kept_trace_ids")) {
            for (const JsonValue& idv : ids->array) {
                if (idv.is_number()) {
                    c.kept_trace_ids.push_back(
                        static_cast<uint64_t>(idv.number_value));
                }
            }
        }
        if (const JsonValue* bands = cp->Find("bands")) {
            for (const JsonValue& bv : bands->array) {
                ReportPathBand b;
                b.tenant = StrField(bv, "tenant");
                b.band = StrField(bv, "band");
                b.traces = IntField(bv, "traces");
                b.total_s = NumField(bv, "total_s");
                if (const JsonValue* shares = bv.Find("shares")) {
                    for (const JsonValue& sv : shares->array) {
                        ReportComponentShare s;
                        s.component = StrField(sv, "component");
                        s.seconds = NumField(sv, "seconds");
                        s.fraction = NumField(sv, "fraction");
                        b.shares.push_back(std::move(s));
                    }
                }
                c.bands.push_back(std::move(b));
            }
        }
        if (const JsonValue* diff = cp->Find("differential")) {
            for (const JsonValue& dv : diff->array) {
                ReportPathDifferential d;
                d.tenant = StrField(dv, "tenant");
                d.component = StrField(dv, "component");
                d.p50_fraction = NumField(dv, "p50_fraction");
                d.p99_fraction = NumField(dv, "p99_fraction");
                d.delta = NumField(dv, "delta");
                c.differential.push_back(std::move(d));
            }
        }
        if (const JsonValue* dom = cp->Find("dominant")) {
            for (const JsonValue& dv : dom->array) {
                c.dominant.emplace_back(StrField(dv, "tenant"),
                                        StrField(dv, "component"));
            }
        }
    }
    if (const JsonValue* exemplars = root.Find("exemplars")) {
        for (const JsonValue& ev : exemplars->array) {
            ReportExemplar e;
            e.metric = StrField(ev, "metric");
            e.bucket = static_cast<int>(IntField(ev, "bucket"));
            e.value = NumField(ev, "value");
            e.trace_id =
                static_cast<uint64_t>(IntField(ev, "trace_id"));
            e.t_s = NumField(ev, "t_s");
            e.reason = StrField(ev, "reason");
            report.exemplars.push_back(std::move(e));
        }
    }
    if (const JsonValue* metrics = root.Find("metrics")) {
        for (const auto& [key, value] : metrics->object) {
            if (value.is_number()) {
                report.metrics.emplace_back(key,
                                            value.number_value);
            }
        }
    }
    return report;
}

std::string
RenderRunReportMarkdown(const RunReport& report)
{
    const ReportMeta& m = report.meta;
    std::string out = StrFormat(
        "# Run report: %s %s\n\n"
        "| field | value |\n|---|---|\n"
        "| tool | %s |\n| command | %s |\n| app | %s |\n"
        "| chip | %s |\n| duration_s | %s |\n| seed | %lld |\n"
        "| window_s | %s |\n| schema_version | %d |\n",
        m.command.c_str(), m.app.c_str(), m.tool.c_str(),
        m.command.c_str(), m.app.c_str(), m.chip.c_str(),
        Num(m.duration_s).c_str(), static_cast<long long>(m.seed),
        Num(m.window_s).c_str(), report.schema_version);

    if (!report.slos.empty()) {
        out += "\n## SLO error budgets\n\n"
               "| objective | tenant | target | budget left | "
               "min left | peak fast | peak slow | pages | "
               "good/bad | J/req (last) | $/req (last) |\n"
               "|---|---|---|---|---|---|---|---|---|---|---|\n";
        for (const SloStatus& s : report.slos) {
            const SloBudgetPoint* last =
                s.timeline.empty() ? nullptr : &s.timeline.back();
            out += StrFormat(
                "| %s | %s | %.4g | %.1f%% | %.1f%% | %.2f | "
                "%.2f | %lld | %lld/%lld | %.4g | %.6g |\n",
                s.objective.name.c_str(),
                s.objective.tenant.c_str(),
                s.objective.availability_target,
                100.0 * (last != nullptr ? last->budget_remaining
                                         : 1.0),
                100.0 * s.min_budget_remaining, s.peak_burn_fast,
                s.peak_burn_slow, static_cast<long long>(s.pages),
                static_cast<long long>(s.good),
                static_cast<long long>(s.bad),
                last != nullptr ? last->energy_per_request_j : 0.0,
                last != nullptr ? last->cost_per_request_usd
                                : 0.0);
        }
    }
    if (!report.alerts.empty()) {
        out += "\n## Alerts\n\n"
               "| rule | state | fires | last value |\n"
               "|---|---|---|---|\n";
        for (const ReportAlert& a : report.alerts) {
            out += StrFormat(
                "| %s | %s | %lld | %.6g |\n", a.name.c_str(),
                a.state.c_str(),
                static_cast<long long>(a.fire_count),
                a.last_value);
        }
    }
    if (!report.series.empty()) {
        out += "\n## Windowed series\n\n"
               "| series | kind | points | total |\n"
               "|---|---|---|---|\n";
        for (const TimeSeries& s : report.series) {
            double total = 0.0;
            for (const WindowPoint& p : s.points) {
                total +=
                    s.kind == SeriesKind::kCounter
                        ? static_cast<double>(p.delta)
                        : (s.kind == SeriesKind::kHistogram
                               ? static_cast<double>(p.count)
                               : 0.0);
            }
            out += StrFormat(
                "| %s%s | %s | %zu | %.6g |\n", s.name.c_str(),
                FlatLabels(s.labels).c_str(),
                SeriesKindName(s.kind), s.points.size(), total);
        }
    }
    const ReportCriticalPath& cp = report.critical_path;
    if (cp.traces > 0) {
        out += StrFormat(
            "\n## Critical path\n\n%lld traces classified, %lld "
            "kept (%lld tiled, %lld untiled).\n",
            static_cast<long long>(cp.traces),
            static_cast<long long>(cp.kept),
            static_cast<long long>(cp.tiled),
            static_cast<long long>(cp.untiled));
        if (!cp.bands.empty()) {
            out += "\n| tenant | band | traces | total s | "
                   "top component |\n|---|---|---|---|---|\n";
            for (const ReportPathBand& b : cp.bands) {
                const ReportComponentShare* top = nullptr;
                for (const ReportComponentShare& s : b.shares) {
                    if (top == nullptr ||
                        s.fraction > top->fraction) {
                        top = &s;
                    }
                }
                out += StrFormat(
                    "| %s | %s | %lld | %.6g | %s %.1f%% |\n",
                    b.tenant.empty() ? "(all)" : b.tenant.c_str(),
                    b.band.c_str(),
                    static_cast<long long>(b.traces), b.total_s,
                    top != nullptr ? top->component.c_str() : "-",
                    top != nullptr ? 100.0 * top->fraction : 0.0);
            }
        }
        if (!cp.differential.empty()) {
            out += "\n| tenant | component | p50 share | p99 share "
                   "| delta |\n|---|---|---|---|---|\n";
            for (const ReportPathDifferential& d :
                 cp.differential) {
                out += StrFormat(
                    "| %s | %s | %.1f%% | %.1f%% | %+.1f%% |\n",
                    d.tenant.empty() ? "(all)" : d.tenant.c_str(),
                    d.component.c_str(), 100.0 * d.p50_fraction,
                    100.0 * d.p99_fraction, 100.0 * d.delta);
            }
        }
    }
    if (!report.exemplars.empty()) {
        out += StrFormat(
            "\n%zu histogram exemplars link metric cells to kept "
            "traces.\n",
            report.exemplars.size());
    }
    out += StrFormat("\n%zu final metrics in the snapshot.\n",
                     report.metrics.size());
    return out;
}

std::string
RenderRunReportCsv(const RunReport& report)
{
    std::string out = "record,key,t0,t1,value\n";
    auto row = [&out](const std::string& record,
                      const std::string& key, const std::string& t0,
                      const std::string& t1, double value) {
        out += record + "," + key + "," + t0 + "," + t1 + "," +
               Num(value) + "\n";
    };
    row("meta", "duration_s", "", "", report.meta.duration_s);
    row("meta", "window_s", "", "", report.meta.window_s);
    row("meta", "seed", "", "",
        static_cast<double>(report.meta.seed));
    for (const auto& [key, value] : report.metrics) {
        row("metric", key, "", "", value);
    }
    for (const TimeSeries& s : report.series) {
        const std::string base = s.name + FlatLabels(s.labels);
        for (const WindowPoint& p : s.points) {
            const std::string t0 = Num(p.t0_s);
            const std::string t1 = Num(p.t1_s);
            switch (s.kind) {
              case SeriesKind::kCounter:
                row("series", base + ".delta", t0, t1,
                    static_cast<double>(p.delta));
                row("series", base + ".rate", t0, t1,
                    p.rate_per_s);
                break;
              case SeriesKind::kGauge:
                row("series", base + ".last", t0, t1, p.last);
                row("series", base + ".min", t0, t1, p.min);
                row("series", base + ".max", t0, t1, p.max);
                break;
              case SeriesKind::kHistogram:
                row("series", base + ".count", t0, t1,
                    static_cast<double>(p.count));
                row("series", base + ".sum", t0, t1, p.sum);
                row("series", base + ".p50", t0, t1, p.p50);
                row("series", base + ".p95", t0, t1, p.p95);
                row("series", base + ".p99", t0, t1, p.p99);
                break;
            }
        }
    }
    for (const SloStatus& s : report.slos) {
        for (const SloBudgetPoint& p : s.timeline) {
            const std::string t = Num(p.t_s);
            row("slo", s.objective.name + ".burn_fast", t, t,
                p.burn_fast);
            row("slo", s.objective.name + ".burn_slow", t, t,
                p.burn_slow);
            row("slo", s.objective.name + ".budget_remaining", t,
                t, p.budget_remaining);
            row("slo", s.objective.name + ".latency_q_s", t, t,
                p.latency_q_s);
            row("slo", s.objective.name + ".energy_per_request_j",
                t, t, p.energy_per_request_j);
            row("slo", s.objective.name + ".cost_per_request_usd",
                t, t, p.cost_per_request_usd);
        }
    }
    for (const ReportAlert& a : report.alerts) {
        row("alert", a.name + ".fire_count", "", "",
            static_cast<double>(a.fire_count));
        row("alert", a.name + ".last_value", "", "", a.last_value);
    }
    const ReportCriticalPath& cp = report.critical_path;
    for (const ReportPathBand& b : cp.bands) {
        const std::string base =
            (b.tenant.empty() ? std::string("all") : b.tenant) +
            "." + b.band;
        row("critical_path", base + ".traces", "", "",
            static_cast<double>(b.traces));
        for (const ReportComponentShare& s : b.shares) {
            row("critical_path", base + "." + s.component, "", "",
                s.fraction);
        }
    }
    for (const ReportExemplar& e : report.exemplars) {
        row("exemplar",
            StrFormat("%s[%d]", e.metric.c_str(), e.bucket), "", "",
            e.value);
    }
    return out;
}

ReportDiffResult
DiffRunReports(const RunReport& base, const RunReport& current,
               const ReportDiffOptions& options)
{
    FlatView a, b;
    FlattenReport(base, &a);
    FlattenReport(current, &b);
    ReportDiffResult result;
    for (const auto& [key, base_value] : a.entries) {
        if (Ignored(key, options)) continue;
        auto it = b.index.find(key);
        if (it == b.index.end()) {
            result.missing.push_back(key);
            continue;
        }
        ++result.compared;
        const ReportTolerance tol = ToleranceFor(key, options);
        const double band =
            tol.abs + tol.rel * std::fabs(base_value);
        if (std::fabs(it->second - base_value) > band) {
            result.regressions.push_back(ReportDiffEntry{
                key, base_value, it->second, band});
        }
    }
    for (const auto& [key, value] : b.entries) {
        (void)value;
        if (Ignored(key, options)) continue;
        if (a.index.find(key) == a.index.end()) {
            result.added.push_back(key);
        }
    }
    return result;
}

std::string
RenderReportDiff(const ReportDiffResult& result)
{
    std::string out;
    if (result.ok()) {
        out = StrFormat(
            "diff: ok (%lld values compared, %zu new keys)\n",
            static_cast<long long>(result.compared),
            result.added.size());
        return out;
    }
    out = StrFormat(
        "diff: FAIL — %zu value(s) out of band, %zu key(s) "
        "missing (%lld compared)\n",
        result.regressions.size(), result.missing.size(),
        static_cast<long long>(result.compared));
    for (const ReportDiffEntry& e : result.regressions) {
        out += StrFormat("  %s: %.6g -> %.6g (band +/-%.4g)\n",
                         e.key.c_str(), e.base, e.current, e.band);
    }
    for (const std::string& key : result.missing) {
        out += "  " + key + ": missing from current report\n";
    }
    return out;
}

}  // namespace obs
}  // namespace t4i
