/**
 * @file
 * Machine-readable exporters for the metrics registry.
 *
 * Three formats, all derived from the same Snapshot():
 *   - JSON document: `{"version":1,"counters":[...],"gauges":[...],
 *     "histograms":[...]}` — the `--metrics-json` output the CI schema
 *     check diffs;
 *   - CSV: one row per instrument, for spreadsheets / pandas;
 *   - BENCH_JSON line: a single-line JSON object every bench prints so
 *     tools/run_all.sh can collect perf trajectories across PRs.
 */
#ifndef T4I_OBS_EXPORT_H
#define T4I_OBS_EXPORT_H

#include <string>

#include "src/common/status.h"
#include "src/obs/registry.h"

namespace t4i {
namespace obs {

/** Renders the registry as a pretty-printed JSON document. */
std::string MetricsToJson(const MetricsRegistry& registry);

/**
 * Renders the registry as CSV with header
 * `type,name,labels,value,count,mean,min,max,p50,p95,p99`.
 * Labels are `k=v` pairs joined with ';'.
 */
std::string MetricsToCsv(const MetricsRegistry& registry);

/**
 * Renders a single-line JSON object
 * `{"bench":ID,"counters":{...},"gauges":{...},"histograms":{...}}`
 * where labeled instruments key as `name{k=v,...}`.
 */
std::string MetricsToBenchJsonLine(const std::string& bench_id,
                                   const MetricsRegistry& registry);

Status WriteMetricsJson(const MetricsRegistry& registry,
                        const std::string& path);
Status WriteMetricsCsv(const MetricsRegistry& registry,
                       const std::string& path);

/** Writes @p content to @p path (shared by all file exporters). */
Status WriteTextFile(const std::string& content, const std::string& path);

/** Reads @p path whole (e.g. an alert-rule file for AlertEngine). */
StatusOr<std::string> ReadTextFile(const std::string& path);

}  // namespace obs
}  // namespace t4i

#endif  // T4I_OBS_EXPORT_H
