#include "src/obs/trace_builder.h"

#include <algorithm>

#include "src/common/strings.h"
#include "src/obs/json.h"

namespace t4i {
namespace obs {
namespace {

double
ClampTs(double ts_us)
{
    return std::max(ts_us, 0.0);
}

}  // namespace

void
TraceBuilder::SetProcessName(int pid, const std::string& name)
{
    events_.push_back(StrFormat(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,"
        "\"args\":{\"name\":%s}}",
        pid, JsonQuote(name).c_str()));
}

void
TraceBuilder::SetThreadName(int pid, int tid, const std::string& name)
{
    events_.push_back(StrFormat(
        "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,"
        "\"args\":{\"name\":%s}}",
        pid, tid, JsonQuote(name).c_str()));
}

void
TraceBuilder::AddComplete(int pid, int tid, const std::string& name,
                          const std::string& category, double ts_us,
                          double dur_us, const std::string& args_json)
{
    std::string event = StrFormat(
        "{\"name\":%s,\"cat\":%s,\"ph\":\"X\",\"ts\":%.3f,"
        "\"dur\":%.3f,\"pid\":%d,\"tid\":%d",
        JsonQuote(name).c_str(), JsonQuote(category).c_str(),
        ClampTs(ts_us), std::max(dur_us, 0.0), pid, tid);
    if (!args_json.empty()) {
        event += ",\"args\":" + args_json;
    }
    event += "}";
    events_.push_back(std::move(event));
}

void
TraceBuilder::AddCounter(int pid, const std::string& name, double ts_us,
                         double value)
{
    events_.push_back(StrFormat(
        "{\"name\":%s,\"ph\":\"C\",\"ts\":%.3f,\"pid\":%d,\"tid\":0,"
        "\"args\":{\"value\":%.6g}}",
        JsonQuote(name).c_str(), ClampTs(ts_us), pid, value));
}

void
TraceBuilder::AddInstant(int pid, int tid, const std::string& name,
                         double ts_us)
{
    events_.push_back(StrFormat(
        "{\"name\":%s,\"ph\":\"i\",\"s\":\"t\",\"ts\":%.3f,"
        "\"pid\":%d,\"tid\":%d}",
        JsonQuote(name).c_str(), ClampTs(ts_us), pid, tid));
}

void
TraceBuilder::AddFlow(char phase, int pid, int tid,
                      const std::string& name, uint64_t flow_id,
                      double ts_us)
{
    std::string event = StrFormat(
        "{\"name\":%s,\"cat\":\"flow\",\"ph\":\"%c\",\"id\":%llu,"
        "\"ts\":%.3f,\"pid\":%d,\"tid\":%d",
        JsonQuote(name).c_str(), phase,
        static_cast<unsigned long long>(flow_id), ClampTs(ts_us), pid,
        tid);
    // Binding point: terminate on the enclosing slice, the usual
    // convention for "this work finished here".
    if (phase == 'f') event += ",\"bp\":\"e\"";
    event += "}";
    events_.push_back(std::move(event));
}

void
TraceBuilder::AddFlowStart(int pid, int tid, const std::string& name,
                           uint64_t flow_id, double ts_us)
{
    AddFlow('s', pid, tid, name, flow_id, ts_us);
}

void
TraceBuilder::AddFlowStep(int pid, int tid, const std::string& name,
                          uint64_t flow_id, double ts_us)
{
    AddFlow('t', pid, tid, name, flow_id, ts_us);
}

void
TraceBuilder::AddFlowEnd(int pid, int tid, const std::string& name,
                         uint64_t flow_id, double ts_us)
{
    AddFlow('f', pid, tid, name, flow_id, ts_us);
}

std::string
TraceBuilder::Render() const
{
    std::string out = "[\n";
    for (size_t i = 0; i < events_.size(); ++i) {
        out += events_[i];
        if (i + 1 < events_.size()) out += ",";
        out += "\n";
    }
    out += "]\n";
    return out;
}

}  // namespace obs
}  // namespace t4i
