/**
 * @file
 * Windowed time-series aggregation over the metrics registry.
 *
 * The registry (src/obs/registry.h) aggregates everything into one
 * end-of-run snapshot; fleet questions — "when did the burn rate
 * spike", "did p99 degrade before or after the outage" — need values
 * *over sim time*. The TimeSeriesCollector turns registry instruments
 * into fixed-width windows on the simulation clock, driven by the
 * serving/cluster control ticks that already exist:
 *
 *   - counters  -> per-window int64 deltas (and rates/s), with a hard
 *     conservation invariant: the sum of a counter's window deltas
 *     equals its final aggregate register bit for bit (the same bar
 *     the sampled perf-counter series meets, src/sim/perfcounters.h);
 *   - gauges    -> per-window last/min/max over the tick observations;
 *   - histograms -> per-window *exact* quantiles (p50/p95/p99) plus
 *     count/sum/min/max over only the samples observed in that window
 *     (via HistogramMetric's insertion-ordered sample log).
 *
 * Windows are aligned to multiples of window_s from t=0. A tick that
 * jumps several boundaries closes every elapsed window; activity in
 * the gap lands in the first window closed after it (the honest
 * semantics of sparse ticking — conservation still holds). Finish()
 * closes the trailing partial window so nothing is dropped.
 *
 * When an AlertEngine is bound, rules are evaluated once per *closed
 * window* at the window's end time instead of at irregular event
 * times, so `for X` hysteresis means X simulated seconds of
 * consecutive windows (see docs/OBSERVABILITY.md).
 */
#ifndef T4I_OBS_TIMESERIES_H
#define T4I_OBS_TIMESERIES_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/obs/alerts.h"
#include "src/obs/registry.h"

namespace t4i {
namespace obs {

/** What a windowed series was derived from. */
enum class SeriesKind { kCounter, kGauge, kHistogram };

const char* SeriesKindName(SeriesKind kind);

/** One closed window of one series. Fields used depend on the kind. */
struct WindowPoint {
    double t0_s = 0.0;  ///< window start (inclusive)
    double t1_s = 0.0;  ///< window end (exclusive; == next t0)
    // Counter windows.
    int64_t delta = 0;        ///< increment inside the window
    double rate_per_s = 0.0;  ///< delta / (t1 - t0)
    // Gauge windows (over tick observations) and histogram windows
    // (over samples observed inside the window).
    double last = 0.0;
    double min = 0.0;
    double max = 0.0;
    // Histogram windows: exact stats over the window's sample slice.
    int64_t count = 0;
    double sum = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
};

/** One instrument's windowed history. */
struct TimeSeries {
    std::string name;
    Labels labels;  ///< sorted, as in the registry
    SeriesKind kind = SeriesKind::kCounter;
    std::vector<WindowPoint> points;
};

struct TimeSeriesOptions {
    /** Window width on the sim clock (seconds). */
    double window_s = 0.05;
    /**
     * Instrument-name prefixes excluded from windowing. The
     * collector's own `obs.ts.*` meta gauges are always skipped (they
     * change on every window close and would feed back).
     */
    std::vector<std::string> skip_prefixes;
    /** Hard cap on closed windows (runaway-tick backstop). */
    int64_t max_windows = 1 << 20;
};

/**
 * Collects fixed-window series from a registry as sim time advances.
 * Single-threaded, like the discrete-event loops that drive it.
 */
class TimeSeriesCollector {
  public:
    explicit TimeSeriesCollector(TimeSeriesOptions options = {});

    /**
     * Attaches the registry to window (and eagerly creates the
     * `obs.ts.*` meta gauges so exports have a stable shape).
     */
    void BindRegistry(MetricsRegistry* registry);

    /**
     * Routes alert evaluation through window closes: every closed
     * window triggers one Evaluate(registry, window_end). Callers that
     * bind an engine here should stop evaluating it on their own
     * cadence (ServeCell and RunCluster do).
     */
    void BindAlerts(AlertEngine* alerts);

    /** True when a bound AlertEngine is driven by window closes. */
    bool routes_alerts() const { return alerts_ != nullptr; }

    /**
     * Advances the window clock to @p t_s, closing every window that
     * ends at or before it. Monotonic; earlier times are ignored.
     * Safe to call at any cadence — ticks are when gauges are read, so
     * tick at least once per window for faithful gauge min/max.
     */
    void Tick(double t_s);

    /**
     * Closes the trailing partial window at @p end_s (when anything
     * happened after the last boundary) and freezes the collector;
     * later Tick()s are no-ops. Call once, after the driving loop
     * drains, before CheckConservation()/export.
     */
    void Finish(double end_s);

    bool finished() const { return finished_; }
    double window_s() const { return options_.window_s; }
    int64_t windows_closed() const { return windows_closed_; }

    /** Stable-ordered (registry order) windowed series. */
    const std::vector<TimeSeries>& series() const { return series_; }

    /** Series for (name, labels), or nullptr. Labels need not be
     *  sorted. */
    const TimeSeries* Find(const std::string& name,
                           const Labels& labels = {}) const;

    /**
     * The conservation invariant: for every windowed counter, the sum
     * of its per-window deltas equals the live aggregate register bit
     * for bit. Returns the first violation as Internal (this is a
     * collector bug or a post-Finish increment, never noise — deltas
     * are exact int64 arithmetic).
     */
    Status CheckConservation() const;

    /** One line per series: name{labels} kind points total. */
    std::string Summary() const;

  private:
    struct SeriesState {
        size_t series_index = 0;
        // Counter: register value at the last window close.
        int64_t last_counter = 0;
        // Histogram: insertion-ordered samples consumed so far.
        int64_t samples_consumed = 0;
        // Gauge: observations since the last close (from ticks).
        bool gauge_seen = false;
        double gauge_last = 0.0;
        double gauge_min = 0.0;
        double gauge_max = 0.0;
        bool touched_this_close = false;
    };

    bool Skipped(const std::string& name) const;
    /** Reads current instrument values into per-series pending state
     *  (gauge observations); called on every tick. */
    void ObserveGauges();
    /** Closes the window ending at @p boundary_s. */
    void CloseWindow(double boundary_s);
    void UpdateMetaGauges();

    TimeSeriesOptions options_;
    MetricsRegistry* registry_ = nullptr;
    AlertEngine* alerts_ = nullptr;

    /** Keyed like the registry: name + '\x1f' + sorted labels. */
    std::map<std::string, SeriesState> state_;
    std::vector<TimeSeries> series_;
    double window_start_s_ = 0.0;
    int64_t windows_closed_ = 0;
    bool finished_ = false;

    Gauge* windows_gauge_ = nullptr;
    Gauge* series_gauge_ = nullptr;
    Gauge* width_gauge_ = nullptr;
};

}  // namespace obs
}  // namespace t4i

#endif  // T4I_OBS_TIMESERIES_H
