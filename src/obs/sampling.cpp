#include "src/obs/sampling.h"

#include <algorithm>

#include "src/common/rng.h"

namespace t4i {
namespace obs {

namespace {

/** Per-trace involvement flags gathered in one pass over the spans. */
struct TraceFlags {
    bool retry = false;
    bool hedge = false;
};

constexpr KeepReason kAllReasons[] = {
    KeepReason::kOutcome,   KeepReason::kSlo,
    KeepReason::kRetry,     KeepReason::kHedge,
    KeepReason::kLatency,   KeepReason::kAlert,
    KeepReason::kReservoir, KeepReason::kExemplar,
};

}  // namespace

const char*
KeepReasonName(KeepReason reason)
{
    switch (reason) {
        case KeepReason::kNone: return "none";
        case KeepReason::kOutcome: return "outcome";
        case KeepReason::kSlo: return "slo";
        case KeepReason::kRetry: return "retry";
        case KeepReason::kHedge: return "hedge";
        case KeepReason::kLatency: return "latency";
        case KeepReason::kAlert: return "alert";
        case KeepReason::kReservoir: return "reservoir";
        case KeepReason::kExemplar: return "exemplar";
    }
    return "none";
}

TailSampler::TailSampler(TailSamplerOptions options)
    : options_(options)
{
}

void
TailSampler::BindRegistry(MetricsRegistry* registry)
{
    registry_ = registry;
}

void
TailSampler::AddAlertWindow(double start_s, double end_s)
{
    alert_windows_.emplace_back(start_s, end_s);
}

void
TailSampler::Classify(const SpanCollector& spans)
{
    if (classified_) return;
    classified_ = true;

    // One pass over the spans: retry/hedge involvement per trace.
    // (ChildrenOf is a linear scan; walking every tree through it
    // would be quadratic in the span count.)
    std::unordered_map<uint64_t, TraceFlags> flags;
    for (const Span& span : spans.spans()) {
        TraceFlags& f = flags[span.trace_id];
        if (span.link_id != 0) f.hedge = true;
        for (const auto& kv : span.attributes) {
            if (kv.first == "hedge" && kv.second == "1") {
                f.hedge = true;
            } else if (kv.first == "retry") {
                f.retry = true;
            } else if (kv.first == "outcome" &&
                       span.parent_id != 0 &&
                       (kv.second == "aborted" ||
                        kv.second == "transient_error")) {
                f.retry = true;
            }
        }
    }

    Rng reservoir_rng =
        Substream(options_.seed, "obs.sample.reservoir");
    int64_t baseline_seen = 0;
    int64_t rolling_count = 0;

    for (const Span* root : spans.Roots()) {
        TraceVerdict v;
        v.trace_id = root->trace_id;
        v.start_s = root->start_s;
        v.end_s = root->open ? root->start_s : root->end_s;
        v.latency_s = v.end_s - v.start_s;
        v.tenant = root->Attribute("tenant");
        v.outcome = root->Attribute("outcome");
        v.slo_miss = root->Attribute("slo_miss") == "1";
        ++seen_;

        const TraceFlags f = flags[root->trace_id];
        const bool completed = !root->open && v.outcome == "completed";
        if (!completed) {
            v.reason = KeepReason::kOutcome;
        } else if (v.slo_miss) {
            v.reason = KeepReason::kSlo;
        } else if (f.retry) {
            v.reason = KeepReason::kRetry;
        } else if (f.hedge) {
            v.reason = KeepReason::kHedge;
        } else {
            // Rolling tail threshold over the completions seen so far
            // (this root excluded, so the first tall one still trips).
            if (rolling_count >= options_.warmup) {
                threshold_s_ =
                    rolling_.Percentile(options_.latency_percentile);
                if (v.latency_s >= threshold_s_) {
                    v.reason = KeepReason::kLatency;
                }
            }
            if (v.reason == KeepReason::kNone) {
                for (const auto& w : alert_windows_) {
                    if (v.start_s <= w.second && v.end_s >= w.first) {
                        v.reason = KeepReason::kAlert;
                        break;
                    }
                }
            }
        }
        if (completed) {
            rolling_.Add(v.latency_s);
            ++rolling_count;
        }

        v.kept = v.reason != KeepReason::kNone;
        const size_t index = verdicts_.size();
        if (!v.kept && options_.reservoir > 0) {
            // Algorithm R over the boring traces: every baseline
            // trace has an equal, seed-reproducible chance.
            ++baseline_seen;
            const auto capacity =
                static_cast<size_t>(options_.reservoir);
            if (reservoir_slots_.size() < capacity) {
                v.kept = true;
                v.reason = KeepReason::kReservoir;
                reservoir_slots_.push_back(index);
            } else {
                const uint64_t j = reservoir_rng.NextBounded(
                    static_cast<uint64_t>(baseline_seen));
                if (j < capacity) {
                    TraceVerdict& evicted =
                        verdicts_[reservoir_slots_[j]];
                    evicted.kept = false;
                    evicted.reason = KeepReason::kNone;
                    v.kept = true;
                    v.reason = KeepReason::kReservoir;
                    reservoir_slots_[static_cast<size_t>(j)] = index;
                }
            }
        }
        by_trace_[v.trace_id] = index;
        verdicts_.push_back(std::move(v));
    }
    if (rolling_count >= options_.warmup) {
        threshold_s_ =
            rolling_.Percentile(options_.latency_percentile);
    }
}

bool
TailSampler::ForceKeep(uint64_t trace_id, KeepReason reason)
{
    auto it = by_trace_.find(trace_id);
    if (it == by_trace_.end()) return false;
    TraceVerdict& v = verdicts_[it->second];
    if (!v.kept) {
        v.kept = true;
        v.reason = reason;
    }
    return true;
}

bool
TailSampler::IsKept(uint64_t trace_id) const
{
    const TraceVerdict* v = Verdict(trace_id);
    return v != nullptr && v->kept;
}

const TraceVerdict*
TailSampler::Verdict(uint64_t trace_id) const
{
    auto it = by_trace_.find(trace_id);
    if (it == by_trace_.end()) return nullptr;
    return &verdicts_[it->second];
}

std::vector<uint64_t>
TailSampler::KeptTraceIds() const
{
    std::vector<uint64_t> ids;
    for (const TraceVerdict& v : verdicts_) {
        if (v.kept) ids.push_back(v.trace_id);
    }
    std::sort(ids.begin(), ids.end());
    return ids;
}

int64_t
TailSampler::kept() const
{
    int64_t n = 0;
    for (const TraceVerdict& v : verdicts_) {
        if (v.kept) ++n;
    }
    return n;
}

void
TailSampler::ExportMetrics()
{
    if (registry_ == nullptr || exported_) return;
    exported_ = true;
    registry_->GetCounter("obs.sample.seen")->Increment(seen_);
    registry_->GetCounter("obs.sample.kept")->Increment(kept());
    registry_->GetGauge("obs.sample.threshold_s")->Set(threshold_s_);
    for (KeepReason reason : kAllReasons) {
        int64_t n = 0;
        for (const TraceVerdict& v : verdicts_) {
            if (v.kept && v.reason == reason) ++n;
        }
        registry_
            ->GetCounter("obs.sample.kept_reason",
                         {{"reason", KeepReasonName(reason)}})
            ->Increment(n);
    }
}

}  // namespace obs
}  // namespace t4i
