/**
 * @file
 * Minimal JSON document parser.
 *
 * Exists so the repo can *validate* its own machine-readable exports
 * (metrics JSON, Chrome traces, BENCH_JSON lines) without an external
 * dependency: the round-trip tests parse what the exporters emit and
 * assert structure. Covers the full JSON grammar the exporters use;
 * \uXXXX escapes are accepted but decoded only for ASCII code points.
 */
#ifndef T4I_OBS_JSON_H
#define T4I_OBS_JSON_H

#include <string>
#include <utility>
#include <vector>

#include "src/common/status.h"

namespace t4i {
namespace obs {

/** One parsed JSON value (a small DOM). */
struct JsonValue {
    enum class Type {
        kNull,
        kBool,
        kNumber,
        kString,
        kArray,
        kObject,
    };

    Type type = Type::kNull;
    bool bool_value = false;
    double number_value = 0.0;
    std::string string_value;
    std::vector<JsonValue> array;
    /** Insertion-ordered members (duplicates preserved for checking). */
    std::vector<std::pair<std::string, JsonValue>> object;

    bool is_null() const { return type == Type::kNull; }
    bool is_bool() const { return type == Type::kBool; }
    bool is_number() const { return type == Type::kNumber; }
    bool is_string() const { return type == Type::kString; }
    bool is_array() const { return type == Type::kArray; }
    bool is_object() const { return type == Type::kObject; }

    /** First member named @p key, or nullptr. Object values only. */
    const JsonValue* Find(const std::string& key) const;
};

/**
 * Parses @p text as one JSON document. Fails on syntax errors and on
 * trailing non-whitespace.
 */
StatusOr<JsonValue> ParseJson(const std::string& text);

/** Quotes + escapes @p raw as a JSON string literal (with quotes). */
std::string JsonQuote(const std::string& raw);

}  // namespace obs
}  // namespace t4i

#endif  // T4I_OBS_JSON_H
