/**
 * @file
 * Tail-based trace sampling: keep the traces worth explaining.
 *
 * The span pipeline (src/obs/spans.h) records every traced request;
 * at fleet load that is untenable — either nothing is traced or the
 * JSONL drowns the analyst. The TailSampler looks at each *completed*
 * span tree and keeps it iff it is interesting:
 *
 *   - terminal outcome other than a clean completion (drops, shed,
 *     retries exhausted, dead cells),
 *   - SLO / deadline violation (`slo_miss` on the root),
 *   - retry or fault involvement (failed dispatch attempts, retry
 *     re-queues),
 *   - hedge involvement (hedged attempts / loser->winner links),
 *   - latency at or above a rolling quantile threshold of the
 *     latencies seen so far (the tail proper),
 *   - overlap with a firing alert window, or
 *   - membership in a small seeded reservoir of baseline traces so
 *     "normal" always has exemplars too.
 *
 * Decisions are classification, not mutation: the sampler never edits
 * the collector, it produces a verdict per trace. The reservoir draws
 * from the run seed via the named substream "obs.sample.reservoir"
 * (src/common/rng.h), so the kept-trace-id set is bit-reproducible
 * for a given seed.
 *
 * Metrics (`obs.sample.*`) are created when Classify runs — after the
 * serving loop and the time-series conservation check — so windowed
 * collection never sees instruments appear mid-run.
 */
#ifndef T4I_OBS_SAMPLING_H
#define T4I_OBS_SAMPLING_H

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/stats.h"
#include "src/obs/registry.h"
#include "src/obs/spans.h"

namespace t4i {
namespace obs {

/** Why a trace was kept (priority order, highest first). */
enum class KeepReason {
    kNone = 0,    ///< not kept
    kOutcome,     ///< terminal outcome was not a clean completion
    kSlo,         ///< root carries slo_miss
    kRetry,       ///< failed attempts / retry re-queues in the tree
    kHedge,       ///< hedged attempts or loser->winner links
    kLatency,     ///< latency >= rolling quantile threshold
    kAlert,       ///< overlaps a firing alert window
    kReservoir,   ///< seeded baseline reservoir
    kExemplar,    ///< force-kept: a histogram exemplar references it
};

const char* KeepReasonName(KeepReason reason);

struct TailSamplerOptions {
    /** Run seed; the reservoir derives from its named substream. */
    uint64_t seed = 42;
    /** Rolling latency threshold quantile (percent). */
    double latency_percentile = 95.0;
    /** Roots classified before the latency rule arms. */
    int64_t warmup = 16;
    /** Baseline reservoir capacity (Algorithm R). */
    int64_t reservoir = 8;
};

/** The sampler's decision for one trace. */
struct TraceVerdict {
    uint64_t trace_id = 0;
    bool kept = false;
    KeepReason reason = KeepReason::kNone;
    double latency_s = 0.0;
    double start_s = 0.0;
    double end_s = 0.0;
    std::string tenant;
    std::string outcome;
    bool slo_miss = false;
};

class TailSampler {
  public:
    explicit TailSampler(TailSamplerOptions options = {});

    /**
     * Instruments are created lazily in Classify() (not here) so a
     * windowed TimeSeriesCollector finished before classification
     * never sees them. Null detaches.
     */
    void BindRegistry(MetricsRegistry* registry);

    /**
     * Declares [start_s, end_s] as a firing-alert window; traces
     * overlapping any window are kept with reason kAlert. Pass a huge
     * end for still-firing-at-run-end alerts.
     */
    void AddAlertWindow(double start_s, double end_s);

    /**
     * Classifies every root span in @p spans, in StartSpan order (the
     * rolling latency threshold sees roots in that order, so the
     * verdict set is deterministic). Idempotent per sampler: call
     * once; later ForceKeep() may still upgrade verdicts.
     */
    void Classify(const SpanCollector& spans);

    /**
     * Upgrades @p trace_id to kept (e.g. a histogram exemplar
     * references it). Returns false for an unknown trace.
     */
    bool ForceKeep(uint64_t trace_id, KeepReason reason);

    bool IsKept(uint64_t trace_id) const;
    /** Verdict for @p trace_id, or nullptr. */
    const TraceVerdict* Verdict(uint64_t trace_id) const;
    /** All verdicts, classification order. */
    const std::vector<TraceVerdict>& verdicts() const
    {
        return verdicts_;
    }
    /** Kept trace ids, ascending. */
    std::vector<uint64_t> KeptTraceIds() const;

    int64_t seen() const { return seen_; }
    int64_t kept() const;
    /** Final rolling latency threshold (0 before warmup). */
    double threshold_s() const { return threshold_s_; }

    const TailSamplerOptions& options() const { return options_; }

    /**
     * Writes the `obs.sample.*` instruments (seen/kept counters, the
     * per-reason kept_reason family — every reason label eagerly so
     * the export schema is stable — and the threshold gauge) into the
     * bound registry. Call once, after Classify and any ForceKeep
     * upgrades; repeat calls are no-ops.
     */
    void ExportMetrics();

  private:
    TailSamplerOptions options_;
    MetricsRegistry* registry_ = nullptr;

    std::vector<std::pair<double, double>> alert_windows_;
    std::vector<TraceVerdict> verdicts_;
    std::unordered_map<uint64_t, size_t> by_trace_;
    /** Verdict indexes currently holding reservoir slots. */
    std::vector<size_t> reservoir_slots_;
    PercentileTracker rolling_;
    int64_t seen_ = 0;
    double threshold_s_ = 0.0;
    bool classified_ = false;
    bool exported_ = false;
};

}  // namespace obs
}  // namespace t4i

#endif  // T4I_OBS_SAMPLING_H
