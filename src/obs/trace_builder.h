/**
 * @file
 * Generic Chrome-trace (Perfetto) event builder.
 *
 * The legacy exporter in src/sim/trace.h only emits complete ('X')
 * events. Production-style observability needs more of the format:
 *   - counter tracks ('C') — queue depth, CMEM occupancy, achieved HBM
 *     bandwidth as time series under the timeline;
 *   - flow events ('s'/'t'/'f') — arrows linking one request's journey
 *     across tracks (arrival -> batch formation -> device completion);
 *   - instant events ('i') and process/thread metadata ('M').
 *
 * The builder is deliberately dumb: callers append events (timestamps
 * in microseconds, as the format expects; negatives clamp to zero) and
 * Render() serializes a strict-JSON array that chrome://tracing and
 * ui.perfetto.dev both load. It knows nothing about Programs or
 * serving cells, so every layer can target it without dependency
 * cycles.
 */
#ifndef T4I_OBS_TRACE_BUILDER_H
#define T4I_OBS_TRACE_BUILDER_H

#include <cstdint>
#include <string>
#include <vector>

namespace t4i {
namespace obs {

class TraceBuilder {
  public:
    /** Names the process / thread tracks (metadata events). */
    void SetProcessName(int pid, const std::string& name);
    void SetThreadName(int pid, int tid, const std::string& name);

    /**
     * Complete ('X') event. @p args_json, when non-empty, must be a
     * JSON object literal (e.g. `{"batch":4}`) spliced in verbatim.
     */
    void AddComplete(int pid, int tid, const std::string& name,
                     const std::string& category, double ts_us,
                     double dur_us, const std::string& args_json = "");

    /** Counter ('C') sample: one point of the series @p name. */
    void AddCounter(int pid, const std::string& name, double ts_us,
                    double value);

    /** Instant ('i') event, thread-scoped. */
    void AddInstant(int pid, int tid, const std::string& name,
                    double ts_us);

    /**
     * Flow events: one arrow per @p flow_id from Start through any
     * Steps to End. Name/category must match across the three phases
     * (the viewers key on them).
     */
    void AddFlowStart(int pid, int tid, const std::string& name,
                      uint64_t flow_id, double ts_us);
    void AddFlowStep(int pid, int tid, const std::string& name,
                     uint64_t flow_id, double ts_us);
    void AddFlowEnd(int pid, int tid, const std::string& name,
                    uint64_t flow_id, double ts_us);

    size_t event_count() const { return events_.size(); }

    /** Serializes all events as a strict JSON array. */
    std::string Render() const;

  private:
    void AddFlow(char phase, int pid, int tid, const std::string& name,
                 uint64_t flow_id, double ts_us);

    std::vector<std::string> events_;
};

}  // namespace obs
}  // namespace t4i

#endif  // T4I_OBS_TRACE_BUILDER_H
