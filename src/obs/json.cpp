#include "src/obs/json.h"

#include <cctype>
#include <cstdlib>

#include "src/common/strings.h"

namespace t4i {
namespace obs {
namespace {

class Parser {
  public:
    explicit Parser(const std::string& text) : text_(text) {}

    StatusOr<JsonValue>
    Parse()
    {
        JsonValue value;
        T4I_RETURN_IF_ERROR(ParseValue(&value));
        SkipWhitespace();
        if (pos_ != text_.size()) {
            return Error("trailing characters after document");
        }
        return value;
    }

  private:
    Status
    Error(const std::string& what) const
    {
        return Status::InvalidArgument(StrFormat(
            "json: %s at offset %zu", what.c_str(), pos_));
    }

    void
    SkipWhitespace()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r')) {
            ++pos_;
        }
    }

    bool
    Consume(char c)
    {
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    Status
    ParseValue(JsonValue* out)
    {
        SkipWhitespace();
        if (pos_ >= text_.size()) return Error("unexpected end");
        const char c = text_[pos_];
        switch (c) {
          case '{': return ParseObject(out);
          case '[': return ParseArray(out);
          case '"':
            out->type = JsonValue::Type::kString;
            return ParseString(&out->string_value);
          case 't':
          case 'f': return ParseKeyword(out);
          case 'n': return ParseKeyword(out);
          default: return ParseNumber(out);
        }
    }

    Status
    ParseKeyword(JsonValue* out)
    {
        auto match = [this](const char* kw) {
            const size_t len = std::string(kw).size();
            if (text_.compare(pos_, len, kw) != 0) return false;
            pos_ += len;
            return true;
        };
        if (match("true")) {
            out->type = JsonValue::Type::kBool;
            out->bool_value = true;
            return Status::Ok();
        }
        if (match("false")) {
            out->type = JsonValue::Type::kBool;
            out->bool_value = false;
            return Status::Ok();
        }
        if (match("null")) {
            out->type = JsonValue::Type::kNull;
            return Status::Ok();
        }
        return Error("unknown keyword");
    }

    Status
    ParseNumber(JsonValue* out)
    {
        const char* begin = text_.c_str() + pos_;
        char* end = nullptr;
        const double v = std::strtod(begin, &end);
        if (end == begin) return Error("invalid number");
        pos_ += static_cast<size_t>(end - begin);
        out->type = JsonValue::Type::kNumber;
        out->number_value = v;
        return Status::Ok();
    }

    Status
    ParseString(std::string* out)
    {
        if (!Consume('"')) return Error("expected '\"'");
        out->clear();
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"') return Status::Ok();
            if (c != '\\') {
                out->push_back(c);
                continue;
            }
            if (pos_ >= text_.size()) break;
            const char esc = text_[pos_++];
            switch (esc) {
              case '"': out->push_back('"'); break;
              case '\\': out->push_back('\\'); break;
              case '/': out->push_back('/'); break;
              case 'b': out->push_back('\b'); break;
              case 'f': out->push_back('\f'); break;
              case 'n': out->push_back('\n'); break;
              case 'r': out->push_back('\r'); break;
              case 't': out->push_back('\t'); break;
              case 'u': {
                if (pos_ + 4 > text_.size()) {
                    return Error("truncated \\u escape");
                }
                int code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text_[pos_++];
                    if (!std::isxdigit(static_cast<unsigned char>(h))) {
                        return Error("bad \\u escape");
                    }
                    code = code * 16 +
                           (std::isdigit(static_cast<unsigned char>(h))
                                ? h - '0'
                                : (std::tolower(h) - 'a' + 10));
                }
                // ASCII decodes exactly; anything else becomes '?'
                // (exporters only emit ASCII).
                out->push_back(code < 0x80 ? static_cast<char>(code)
                                           : '?');
                break;
              }
              default: return Error("bad escape");
            }
        }
        return Error("unterminated string");
    }

    Status
    ParseArray(JsonValue* out)
    {
        Consume('[');
        out->type = JsonValue::Type::kArray;
        SkipWhitespace();
        if (Consume(']')) return Status::Ok();
        while (true) {
            JsonValue element;
            T4I_RETURN_IF_ERROR(ParseValue(&element));
            out->array.push_back(std::move(element));
            SkipWhitespace();
            if (Consume(']')) return Status::Ok();
            if (!Consume(',')) return Error("expected ',' or ']'");
        }
    }

    Status
    ParseObject(JsonValue* out)
    {
        Consume('{');
        out->type = JsonValue::Type::kObject;
        SkipWhitespace();
        if (Consume('}')) return Status::Ok();
        while (true) {
            SkipWhitespace();
            std::string key;
            T4I_RETURN_IF_ERROR(ParseString(&key));
            SkipWhitespace();
            if (!Consume(':')) return Error("expected ':'");
            JsonValue value;
            T4I_RETURN_IF_ERROR(ParseValue(&value));
            out->object.emplace_back(std::move(key), std::move(value));
            SkipWhitespace();
            if (Consume('}')) return Status::Ok();
            if (!Consume(',')) return Error("expected ',' or '}'");
        }
    }

    const std::string& text_;
    size_t pos_ = 0;
};

}  // namespace

const JsonValue*
JsonValue::Find(const std::string& key) const
{
    for (const auto& [k, v] : object) {
        if (k == key) return &v;
    }
    return nullptr;
}

StatusOr<JsonValue>
ParseJson(const std::string& text)
{
    return Parser(text).Parse();
}

std::string
JsonQuote(const std::string& raw)
{
    std::string out = "\"";
    for (char c : raw) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                out += StrFormat("\\u%04x", c);
            } else {
                out.push_back(c);
            }
        }
    }
    out.push_back('"');
    return out;
}

}  // namespace obs
}  // namespace t4i
