#include "src/obs/flight_recorder.h"

#include <utility>

#include "src/common/log.h"
#include "src/common/strings.h"
#include "src/obs/export.h"
#include "src/obs/json.h"
#include "src/obs/spans.h"

namespace t4i {
namespace obs {

const char*
FlightEventKindName(FlightEventKind kind)
{
    switch (kind) {
      case FlightEventKind::kSpanOpen: return "span_open";
      case FlightEventKind::kSpanClose: return "span_close";
      case FlightEventKind::kFault: return "fault";
      case FlightEventKind::kQueueDepth: return "queue_depth";
      case FlightEventKind::kLog: return "log";
      case FlightEventKind::kAlert: return "alert";
      case FlightEventKind::kDrop: return "drop";
      case FlightEventKind::kTrigger: return "trigger";
      case FlightEventKind::kNote: return "note";
    }
    return "?";
}

FlightRecorder::FlightRecorder(FlightRecorderConfig config)
    : config_(std::move(config))
{
    if (config_.capacity == 0) config_.capacity = 1;
    ring_.reserve(config_.capacity);
}

FlightRecorder::~FlightRecorder() { UninstallLogSink(); }

void
FlightRecorder::Record(FlightEventKind kind, double t_s,
                       std::string message, double value)
{
    std::lock_guard<std::mutex> lock(mu_);
    FlightEvent event{t_s, kind, std::move(message), value};
    if (ring_.size() < config_.capacity) {
        ring_.push_back(std::move(event));
    } else {
        ring_[next_] = std::move(event);
    }
    next_ = (next_ + 1) % config_.capacity;
    ++total_;
    last_t_s_ = t_s;
}

void
FlightRecorder::BindRegistry(const MetricsRegistry* registry)
{
    registry_ = registry;
}

void
FlightRecorder::BindSpans(const SpanCollector* spans)
{
    spans_ = spans;
}

void
FlightRecorder::SetDeviceStateProvider(
    std::function<std::string(double)> provider)
{
    device_state_ = std::move(provider);
}

void
FlightRecorder::SetForensicsProvider(
    std::function<std::string()> provider)
{
    forensics_ = std::move(provider);
}

void
FlightRecorder::OnFault(double t_s, const std::string& detail)
{
    Record(FlightEventKind::kFault, t_s, detail);
    if (config_.dump_on_fault) DumpOnce("fault: " + detail, t_s);
}

void
FlightRecorder::OnDeadlineDrop(double t_s, const std::string& detail)
{
    Record(FlightEventKind::kDrop, t_s, detail);
    if (config_.dump_on_deadline_drop) {
        DumpOnce("deadline drop: " + detail, t_s);
    }
}

void
FlightRecorder::OnAlert(double t_s, const std::string& detail,
                        double value)
{
    Record(FlightEventKind::kAlert, t_s, detail, value);
    if (config_.dump_on_alert) DumpOnce("alert: " + detail, t_s);
}

Status
FlightRecorder::Trigger(const std::string& reason, double t_s)
{
    Record(FlightEventKind::kTrigger, t_s, reason);
    return DumpOnce(reason, t_s);
}

Status
FlightRecorder::DumpOnce(const std::string& reason, double t_s)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (dumped_ || config_.dump_path.empty()) {
            return Status::Ok();
        }
        dumped_ = true;
        dump_reason_ = reason;
    }
    return WriteTextFile(DumpJson(reason, t_s), config_.dump_path);
}

std::string
FlightRecorder::DumpJson(const std::string& reason, double t_s) const
{
    std::string events;
    int64_t total;
    {
        std::lock_guard<std::mutex> lock(mu_);
        total = total_;
        // Oldest-first: when the ring has wrapped, the oldest entry
        // sits at the next write position.
        const size_t n = ring_.size();
        const size_t start = n < config_.capacity ? 0 : next_;
        for (size_t i = 0; i < n; ++i) {
            const FlightEvent& e = ring_[(start + i) % n];
            if (!events.empty()) events += ",\n    ";
            events += StrFormat(
                          "{\"t_s\":%.12g,\"kind\":", e.t_s) +
                      JsonQuote(FlightEventKindName(e.kind)) +
                      ",\"message\":" + JsonQuote(e.message) +
                      StrFormat(",\"value\":%.12g}", e.value);
        }
    }
    std::string out = "{\n  \"version\": 1,\n";
    out += "  \"reason\": " + JsonQuote(reason) + ",\n";
    out += StrFormat("  \"t_s\": %.12g,\n", t_s);
    out += StrFormat("  \"total_events\": %lld,\n",
                     static_cast<long long>(total));
    out += "  \"events\": [\n    " + events + "\n  ],\n";
    out += "  \"open_spans\": " +
           (spans_ != nullptr ? spans_->OpenSpansJson() : "[]") + ",\n";
    out += "  \"devices\": " +
           (device_state_ ? device_state_(t_s) : "[]") + ",\n";
    out += "  \"forensics\": " +
           (forensics_ ? forensics_() : std::string("null")) + ",\n";
    if (registry_ != nullptr) {
        std::string metrics = MetricsToJson(*registry_);
        while (!metrics.empty() &&
               (metrics.back() == '\n' || metrics.back() == ' ')) {
            metrics.pop_back();
        }
        out += "  \"metrics\": " + metrics + "\n";
    } else {
        out += "  \"metrics\": null\n";
    }
    out += "}\n";
    return out;
}

void
FlightRecorder::InstallLogSink()
{
    if (sink_installed_) return;
    sink_installed_ = true;
    SetLogSink([this](LogLevel level, const std::string& message) {
        double t;
        {
            std::lock_guard<std::mutex> lock(mu_);
            t = last_t_s_;
        }
        Record(FlightEventKind::kLog, t,
               std::string(LogLevelName(level)) + ": " + message,
               static_cast<double>(level));
    });
}

void
FlightRecorder::UninstallLogSink()
{
    if (!sink_installed_) return;
    sink_installed_ = false;
    SetLogSink(nullptr);
}

size_t
FlightRecorder::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return ring_.size();
}

int64_t
FlightRecorder::total_recorded() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return total_;
}

std::vector<FlightEvent>
FlightRecorder::Events() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<FlightEvent> out;
    const size_t n = ring_.size();
    out.reserve(n);
    const size_t start = n < config_.capacity ? 0 : next_;
    for (size_t i = 0; i < n; ++i) {
        out.push_back(ring_[(start + i) % n]);
    }
    return out;
}

bool
FlightRecorder::dumped() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return dumped_;
}

}  // namespace obs
}  // namespace t4i
