#include "src/obs/slo.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "src/common/strings.h"

namespace t4i {
namespace obs {
namespace {

/** Error budget as a fraction; clamped so burn math never divides by
 *  zero on a 100% target. */
double
BudgetFraction(double target)
{
    return std::max(1e-9, 1.0 - target);
}

/** Exact percentile of a sorted vector (PercentileTracker's linear
 *  interpolation between order statistics). */
double
SortedPercentile(const std::vector<double>& sorted, double q)
{
    if (sorted.empty()) return 0.0;
    const double rank =
        q / 100.0 * static_cast<double>(sorted.size() - 1);
    const size_t lo = static_cast<size_t>(std::floor(rank));
    const size_t hi = static_cast<size_t>(std::ceil(rank));
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

bool
HasLabel(const Labels& labels, const std::string& key,
         const std::string& value)
{
    for (const auto& [k, v] : labels) {
        if (k == key) return v == value;
    }
    return false;
}

const std::string*
LabelValue(const Labels& labels, const std::string& key)
{
    for (const auto& [k, v] : labels) {
        if (k == key) return &v;
    }
    return nullptr;
}

/** Unique per-instrument key for the consumed-samples bookkeeping. */
std::string
InstrumentKey(const std::string& name, const Labels& labels)
{
    std::string key = name;
    for (const auto& [k, v] : labels) {
        key += '\x1f';
        key += k;
        key += '=';
        key += v;
    }
    return key;
}

}  // namespace

StatusOr<std::vector<SloObjective>>
ParseSloObjectives(const std::string& text)
{
    std::vector<SloObjective> objectives;
    int line_no = 0;
    for (const std::string& raw : SplitString(text, '\n')) {
        ++line_no;
        std::string line = raw;
        const size_t hash = line.find('#');
        if (hash != std::string::npos) line = line.substr(0, hash);
        std::vector<std::string> tokens;
        for (const std::string& tok : SplitString(line, ' ')) {
            if (!tok.empty()) tokens.push_back(tok);
        }
        if (tokens.empty()) continue;
        auto fail = [&](const std::string& why) {
            return Status::InvalidArgument(StrFormat(
                "slo line %d: %s", line_no, why.c_str()));
        };
        if (tokens[0] != "slo" || tokens.size() < 2) {
            return fail("want: slo NAME tenant=T [avail=F] "
                        "[latency_pNN=S] [horizon=S] [fast=S] "
                        "[slow=S] [page=BURN]");
        }
        SloObjective obj;
        obj.name = tokens[1];
        for (size_t i = 2; i < tokens.size(); ++i) {
            const size_t eq = tokens[i].find('=');
            if (eq == std::string::npos) {
                return fail("token '" + tokens[i] +
                            "' is not key=value");
            }
            const std::string key = tokens[i].substr(0, eq);
            const std::string value = tokens[i].substr(eq + 1);
            if (key == "tenant") {
                obj.tenant = value;
            } else if (key == "avail") {
                obj.availability_target = std::atof(value.c_str());
            } else if (key == "horizon") {
                obj.horizon_s = std::atof(value.c_str());
            } else if (key == "fast") {
                obj.fast_window_s = std::atof(value.c_str());
            } else if (key == "slow") {
                obj.slow_window_s = std::atof(value.c_str());
            } else if (key == "page") {
                obj.page_burn = std::atof(value.c_str());
            } else if (key.rfind("latency_p", 0) == 0) {
                obj.latency_quantile =
                    std::atof(key.c_str() + strlen("latency_p"));
                obj.latency_target_s = std::atof(value.c_str());
                if (obj.latency_quantile <= 0.0 ||
                    obj.latency_quantile >= 100.0) {
                    return fail("latency quantile must be in (0,100)");
                }
                if (obj.latency_target_s <= 0.0) {
                    return fail("latency target must be > 0");
                }
            } else {
                return fail("unknown key '" + key + "'");
            }
        }
        if (obj.tenant.empty()) return fail("tenant= is required");
        if (obj.availability_target <= 0.0 ||
            obj.availability_target >= 1.0) {
            return fail("avail must be in (0,1)");
        }
        if (obj.fast_window_s <= 0.0 || obj.slow_window_s <= 0.0 ||
            obj.horizon_s <= 0.0 || obj.page_burn <= 0.0) {
            return fail("windows, horizon and page must be > 0");
        }
        objectives.push_back(std::move(obj));
    }
    return objectives;
}

void
SloTracker::BindRegistry(MetricsRegistry* registry)
{
    registry_ = registry;
    objectives_gauge_ = nullptr;
    if (registry_ == nullptr) return;
    objectives_gauge_ = registry_->GetGauge("slo.objectives");
    objectives_gauge_->Set(static_cast<double>(statuses_.size()));
    for (size_t i = 0; i < statuses_.size(); ++i) {
        CreateInstruments(i);
    }
}

void
SloTracker::CreateInstruments(size_t index)
{
    if (registry_ == nullptr) return;
    const SloObjective& obj = statuses_[index].objective;
    const Labels labels = {{"slo", obj.name}, {"tenant", obj.tenant}};
    Instruments& in = states_[index].instruments;
    in.burn_fast = registry_->GetGauge("slo.burn_rate_fast", labels);
    in.burn_slow = registry_->GetGauge("slo.burn_rate_slow", labels);
    in.budget = registry_->GetGauge("slo.budget_remaining", labels);
    in.page = registry_->GetGauge("slo.page", labels);
    in.latency_q =
        registry_->GetGauge("slo.latency_quantile_seconds", labels);
    in.energy =
        registry_->GetGauge("slo.energy_per_request_j", labels);
    in.cost =
        registry_->GetGauge("slo.cost_per_request_usd", labels);
    in.good = registry_->GetCounter("slo.good_events", labels);
    in.bad = registry_->GetCounter("slo.bad_events", labels);
    if (in.budget != nullptr) in.budget->Set(1.0);
}

Status
SloTracker::AddObjective(const SloObjective& objective)
{
    if (finished_) {
        return Status::FailedPrecondition(
            "SloTracker already finished");
    }
    if (objective.name.empty() || objective.tenant.empty()) {
        return Status::InvalidArgument(
            "slo objective needs a name and a tenant");
    }
    for (const SloStatus& s : statuses_) {
        if (s.objective.name == objective.name) {
            return Status::InvalidArgument(
                "duplicate slo objective '" + objective.name + "'");
        }
    }
    SloStatus status;
    status.objective = objective;
    statuses_.push_back(std::move(status));
    states_.emplace_back();
    if (objectives_gauge_ != nullptr) {
        objectives_gauge_->Set(static_cast<double>(statuses_.size()));
    }
    CreateInstruments(statuses_.size() - 1);
    return Status::Ok();
}

Status
SloTracker::AddObjectivesFromText(const std::string& text)
{
    auto parsed = ParseSloObjectives(text);
    T4I_RETURN_IF_ERROR(parsed.status());
    for (const SloObjective& obj : parsed.value()) {
        T4I_RETURN_IF_ERROR(AddObjective(obj));
    }
    return Status::Ok();
}

void
SloTracker::SetCostModel(const SloCostModel& model)
{
    cost_model_ = model;
}

SloTracker::Cumulative
SloTracker::ReadCumulative(const SloObjective& objective,
                           ObjectiveState& state, double t_s)
{
    Cumulative cur;
    cur.t_s = t_s;
    cur.component_seconds.assign(
        cost_model_.component_watts.size(), 0.0);
    if (registry_ == nullptr) return cur;
    int64_t completed = 0, miss = 0, drops = 0, shed = 0;
    for (const auto& entry : registry_->Snapshot()) {
        if (!HasLabel(entry.labels, "tenant", objective.tenant)) {
            continue;
        }
        if (entry.type == MetricType::kCounter) {
            const int64_t v = entry.counter->value();
            if (entry.name == "serving.completed") completed += v;
            else if (entry.name == "serving.slo_miss") miss += v;
            else if (entry.name == "serving.deadline_drops") drops += v;
            else if (entry.name == "serving.shed") shed += v;
        } else if (entry.type == MetricType::kHistogram) {
            if (entry.name == "serving.latency_seconds") {
                const std::string key =
                    InstrumentKey(entry.name, entry.labels);
                int64_t& seen = state.consumed[key];
                for (double x :
                     entry.histogram->SamplesSince(seen)) {
                    state.latency_samples.emplace_back(t_s, x);
                    ++seen;
                }
            } else if (entry.name == "serving.attribution.seconds") {
                const std::string* component =
                    LabelValue(entry.labels, "component");
                if (component == nullptr) continue;
                for (size_t c = 0;
                     c < cost_model_.component_watts.size(); ++c) {
                    if (cost_model_.component_watts[c].first ==
                        *component) {
                        cur.component_seconds[c] +=
                            entry.histogram->sum();
                    }
                }
            }
        }
    }
    cur.completed = completed;
    cur.total = completed + drops + shed;
    cur.bad = miss + drops + shed;
    cur.good = cur.total - cur.bad;  // == completed - miss
    return cur;
}

const SloTracker::Cumulative*
SloTracker::At(const std::deque<Cumulative>& history,
               double t_s) const
{
    const Cumulative* best = nullptr;
    for (const Cumulative& c : history) {
        if (c.t_s <= t_s) best = &c;
        else break;
    }
    return best;
}

void
SloTracker::Tick(double t_s)
{
    if (finished_ || registry_ == nullptr) return;
    if (last_tick_s_ >= 0.0 && t_s <= last_tick_s_) return;
    for (size_t i = 0; i < statuses_.size(); ++i) {
        SloStatus& status = statuses_[i];
        ObjectiveState& state = states_[i];
        const SloObjective& obj = status.objective;
        const double widest =
            std::max({obj.fast_window_s, obj.slow_window_s,
                      obj.horizon_s});

        const Cumulative prev =
            state.history.empty() ? Cumulative{}
                                  : state.history.back();
        Cumulative cur = ReadCumulative(obj, state, t_s);
        state.history.push_back(cur);
        // Keep one entry at or before every window baseline.
        while (state.history.size() >= 2 &&
               state.history[1].t_s <= t_s - widest) {
            state.history.pop_front();
        }
        while (!state.latency_samples.empty() &&
               state.latency_samples.front().first < t_s - widest) {
            state.latency_samples.pop_front();
        }

        // Burn over a trailing window: bad fraction of the window's
        // events over the budget, joined with the latency objective's
        // over-target fraction over its own budget.
        auto burn_over = [&](double window_s) {
            const Cumulative* base_ptr =
                At(state.history, t_s - window_s);
            const Cumulative zero;
            const Cumulative& base =
                base_ptr != nullptr ? *base_ptr : zero;
            const int64_t bad_delta = cur.bad - base.bad;
            const int64_t total_delta = cur.total - base.total;
            double burn = 0.0;
            if (total_delta > 0) {
                burn = (static_cast<double>(bad_delta) /
                        static_cast<double>(total_delta)) /
                       BudgetFraction(obj.availability_target);
            }
            if (obj.latency_target_s > 0.0) {
                int64_t n = 0, over = 0;
                for (const auto& [ts, x] : state.latency_samples) {
                    if (ts <= t_s - window_s) continue;
                    ++n;
                    if (x > obj.latency_target_s) ++over;
                }
                if (n > 0) {
                    const double lat_burn =
                        (static_cast<double>(over) /
                         static_cast<double>(n)) /
                        BudgetFraction(obj.latency_quantile / 100.0);
                    burn = std::max(burn, lat_burn);
                }
            }
            return burn;
        };

        SloBudgetPoint point;
        point.t_s = t_s;
        point.good = cur.good;
        point.bad = cur.bad;
        point.total = cur.total;
        point.burn_fast = burn_over(obj.fast_window_s);
        point.burn_slow = burn_over(obj.slow_window_s);
        point.budget_remaining = 1.0 - burn_over(obj.horizon_s);
        point.paging = point.burn_fast > obj.page_burn &&
                       point.burn_slow > obj.page_burn;

        // Fast-window exact latency quantile.
        std::vector<double> window_samples;
        for (const auto& [ts, x] : state.latency_samples) {
            if (ts > t_s - obj.fast_window_s) {
                window_samples.push_back(x);
            }
        }
        std::sort(window_samples.begin(), window_samples.end());
        point.latency_q_s =
            SortedPercentile(window_samples, obj.latency_quantile);

        // Attribution x power/TCO join: the fast window's attributed
        // device-seconds priced per completed request.
        if (!cost_model_.component_watts.empty()) {
            const Cumulative* base_ptr =
                At(state.history, t_s - obj.fast_window_s);
            const Cumulative zero;
            const Cumulative& base =
                base_ptr != nullptr ? *base_ptr : zero;
            double energy_j = 0.0, device_s = 0.0;
            double total_energy = 0.0, total_device_s = 0.0;
            for (size_t c = 0;
                 c < cost_model_.component_watts.size(); ++c) {
                const double base_sec =
                    c < base.component_seconds.size()
                        ? base.component_seconds[c]
                        : 0.0;
                const double delta_sec =
                    cur.component_seconds[c] - base_sec;
                const double watts =
                    cost_model_.component_watts[c].second;
                energy_j += watts * delta_sec;
                device_s += delta_sec;
                total_energy +=
                    watts * cur.component_seconds[c];
                total_device_s += cur.component_seconds[c];
            }
            const int64_t completed_delta =
                cur.completed - base.completed;
            if (completed_delta > 0) {
                point.energy_per_request_j =
                    energy_j / static_cast<double>(completed_delta);
                point.cost_per_request_usd =
                    (energy_j * cost_model_.usd_per_joule +
                     device_s *
                         cost_model_.usd_per_device_second) /
                    static_cast<double>(completed_delta);
            }
            status.total_energy_j = total_energy;
            status.total_cost_usd =
                total_energy * cost_model_.usd_per_joule +
                total_device_s * cost_model_.usd_per_device_second;
        }

        // Paging bookkeeping over the elapsed interval.
        if (state.paging && state.last_t_s >= 0.0) {
            status.page_seconds += t_s - state.last_t_s;
        }
        if (point.paging && !state.paging) ++status.pages;
        state.paging = point.paging;
        state.last_t_s = t_s;

        status.good = cur.good;
        status.bad = cur.bad;
        status.total = cur.total;
        status.peak_burn_fast =
            std::max(status.peak_burn_fast, point.burn_fast);
        status.peak_burn_slow =
            std::max(status.peak_burn_slow, point.burn_slow);
        status.min_budget_remaining = std::min(
            status.min_budget_remaining, point.budget_remaining);
        status.timeline.push_back(point);

        const Instruments& in = state.instruments;
        if (in.burn_fast != nullptr) {
            in.burn_fast->Set(point.burn_fast);
            in.burn_slow->Set(point.burn_slow);
            in.budget->Set(point.budget_remaining);
            in.page->Set(point.paging ? 1.0 : 0.0);
            in.latency_q->Set(point.latency_q_s);
            in.energy->Set(point.energy_per_request_j);
            in.cost->Set(point.cost_per_request_usd);
            if (cur.good > prev.good) {
                in.good->Increment(cur.good - prev.good);
            }
            if (cur.bad > prev.bad) {
                in.bad->Increment(cur.bad - prev.bad);
            }
        }
    }
    last_tick_s_ = t_s;
}

void
SloTracker::Finish(double end_s)
{
    if (finished_) return;
    Tick(end_s);
    finished_ = true;
}

const SloStatus*
SloTracker::Find(const std::string& name) const
{
    for (const SloStatus& s : statuses_) {
        if (s.objective.name == name) return &s;
    }
    return nullptr;
}

std::string
SloTracker::Summary() const
{
    std::string out;
    for (const SloStatus& s : statuses_) {
        out += StrFormat(
            "  %-16s tenant=%s budget left %6.1f%% (min %6.1f%%) | "
            "burn fast peak %.2f slow peak %.2f | pages %lld "
            "(%.2f s) | %lld good / %lld bad",
            s.objective.name.c_str(), s.objective.tenant.c_str(),
            100.0 * (s.timeline.empty()
                         ? 1.0
                         : s.timeline.back().budget_remaining),
            100.0 * s.min_budget_remaining, s.peak_burn_fast,
            s.peak_burn_slow, static_cast<long long>(s.pages),
            s.page_seconds, static_cast<long long>(s.good),
            static_cast<long long>(s.bad));
        if (s.total_energy_j > 0.0) {
            out += StrFormat(" | %.1f J, $%.6f total",
                             s.total_energy_j, s.total_cost_usd);
        }
        out += "\n";
    }
    return out;
}

}  // namespace obs
}  // namespace t4i
