#include "src/obs/critical_path.h"

#include <algorithm>
#include <array>
#include <map>
#include <unordered_map>

#include "src/common/strings.h"
#include "src/obs/json.h"

namespace t4i {
namespace obs {
namespace {

/** One clipped candidate interval competing for path time. */
struct Candidate {
    std::string component;
    double start_s = 0.0;
    double end_s = 0.0;
    int priority = 0;
    bool won = false;
    SpanId span_id = 0;
};

/** More specific work beats its containers: route < queue < batch <
 *  execute < engine sub-span. */
void
ClassifySpan(const Span& span, std::string* component, int* priority)
{
    if (span.name == "queue") {
        *component = "queue";
        *priority = 1;
    } else if (span.name == "kv_wait") {
        // LLM admission stalled on KV-cache residency.
        *component = "kv_wait";
        *priority = 1;
    } else if (span.name == "batch") {
        *component = "batch";
        *priority = 2;
    } else if (span.name == "prefill" || span.name == "decode") {
        // The two LLM execution phases: whole-prompt prefill
        // (compute-bound) and per-token decode (memory-bound).
        *component = span.name;
        *priority = 3;
    } else if (span.name == "execute") {
        const std::string outcome = span.Attribute("outcome");
        *component = (outcome == "aborted" ||
                      outcome == "transient_error")
                         ? "retry"
                         : "execute";
        *priority = 3;
    } else if (span.name.rfind("execute/", 0) == 0) {
        *component = span.name.substr(8);
        *priority = 4;
    } else {
        // Containers (route attempts, cell hand-offs): routing time
        // until a more specific child claims the interval.
        *component = "route";
        *priority = 0;
    }
}

bool
Beats(const Candidate& a, const Candidate& b)
{
    if (a.priority != b.priority) return a.priority > b.priority;
    if (a.won != b.won) return a.won;
    if (a.start_s != b.start_s) return a.start_s > b.start_s;
    return a.span_id > b.span_id;
}

/** `{k=v,...}` flat-key suffix, the report/perf_gate convention. */
std::string
FlatLabels(const Labels& labels)
{
    if (labels.empty()) return "";
    std::string out = "{";
    for (size_t i = 0; i < labels.size(); ++i) {
        if (i > 0) out += ",";
        out += labels[i].first + "=" + labels[i].second;
    }
    return out + "}";
}

constexpr const char* kBandNames[] = {"p50", "mid", "p99"};

}  // namespace

TracePath
ExtractCriticalPath(const std::vector<const Span*>& trace_spans,
                    const Span& root)
{
    TracePath path;
    path.trace_id = root.trace_id;
    path.tenant = root.Attribute("tenant");
    path.outcome = root.Attribute("outcome");
    path.slo_miss = root.Attribute("slo_miss") == "1";
    if (root.open) return path;  // no story ending: untiled
    path.latency_s = root.end_s - root.start_s;
    if (root.end_s == root.start_s) {
        // Zero-duration request (e.g. an immediate shed): nothing to
        // attribute, and nothing violated.
        path.tiled = true;
        return path;
    }
    if (root.end_s < root.start_s) return path;

    bool escaped = false;
    std::vector<Candidate> candidates;
    for (const Span* span : trace_spans) {
        if (span == nullptr || span->trace_id != root.trace_id ||
            span->span_id == root.span_id || span->open) {
            continue;
        }
        if (span->start_s < root.start_s) escaped = true;
        Candidate c;
        ClassifySpan(*span, &c.component, &c.priority);
        c.start_s = std::max(span->start_s, root.start_s);
        c.end_s = std::min(span->end_s, root.end_s);
        if (c.end_s <= c.start_s) continue;
        c.won = span->Attribute("won") == "1";
        c.span_id = span->span_id;
        candidates.push_back(std::move(c));
    }

    // Elementary-interval sweep: boundaries are the original span
    // times, so segment edges are exact doubles — the tiling is bit
    // for bit by construction, and verified below anyway.
    std::vector<double> bounds;
    bounds.push_back(root.start_s);
    bounds.push_back(root.end_s);
    for (const Candidate& c : candidates) {
        bounds.push_back(c.start_s);
        bounds.push_back(c.end_s);
    }
    std::sort(bounds.begin(), bounds.end());
    bounds.erase(std::unique(bounds.begin(), bounds.end()),
                 bounds.end());

    for (size_t i = 0; i + 1 < bounds.size(); ++i) {
        const double lo = bounds[i];
        const double hi = bounds[i + 1];
        const Candidate* best = nullptr;
        for (const Candidate& c : candidates) {
            if (c.start_s > lo || c.end_s < hi) continue;
            if (best == nullptr || Beats(c, *best)) best = &c;
        }
        const std::string& component =
            best != nullptr ? best->component : "backoff";
        if (!path.segments.empty() &&
            path.segments.back().component == component) {
            path.segments.back().end_s = hi;
        } else {
            path.segments.push_back(PathSegment{component, lo, hi});
        }
    }

    // The conservation bar, checked rather than assumed.
    bool tiled = !escaped && !path.segments.empty() &&
                 path.segments.front().start_s == root.start_s &&
                 path.segments.back().end_s == root.end_s;
    for (size_t i = 0; tiled && i + 1 < path.segments.size(); ++i) {
        if (path.segments[i].end_s !=
            path.segments[i + 1].start_s) {
            tiled = false;
        }
    }
    path.tiled = tiled;
    return path;
}

TracePath
ExtractCriticalPath(const SpanCollector& spans, const Span& root)
{
    std::vector<const Span*> trace_spans;
    for (const Span& span : spans.spans()) {
        if (span.trace_id == root.trace_id) {
            trace_spans.push_back(&span);
        }
    }
    return ExtractCriticalPath(trace_spans, root);
}

ReportCriticalPath
SummarizeCriticalPaths(const std::vector<TracePath>& paths,
                       const std::vector<TraceVerdict>& verdicts)
{
    ReportCriticalPath section;

    // Band thresholds come from *every* classified completion — kept
    // or not — so the bands describe the true latency distribution,
    // not the sampler's biased keep set. Tenant "" aggregates.
    std::map<std::string, PercentileTracker> latencies;
    std::map<std::string, int64_t> latency_counts;
    for (const TraceVerdict& v : verdicts) {
        if (v.outcome != "completed") continue;
        latencies[std::string()].Add(v.latency_s);
        ++latency_counts[std::string()];
        if (!v.tenant.empty()) {
            latencies[v.tenant].Add(v.latency_s);
            ++latency_counts[v.tenant];
        }
    }

    struct BandAcc {
        int64_t traces = 0;
        double total_s = 0.0;
        std::map<std::string, double> seconds;
    };
    std::map<std::string, std::array<BandAcc, 3>> acc;

    auto band_index = [&](const std::string& tenant,
                          double latency) {
        auto it = latencies.find(tenant);
        if (it == latencies.end() ||
            latency_counts[tenant] == 0) {
            return 1;  // mid: no distribution to band against
        }
        if (latency >= it->second.Percentile(99.0)) return 2;
        if (latency <= it->second.Percentile(50.0)) return 0;
        return 1;
    };

    for (const TracePath& path : paths) {
        std::vector<std::string> tenants{std::string()};
        if (!path.tenant.empty()) tenants.push_back(path.tenant);
        for (const std::string& tenant : tenants) {
            BandAcc& b =
                acc[tenant][static_cast<size_t>(
                    band_index(tenant, path.latency_s))];
            ++b.traces;
            for (const PathSegment& seg : path.segments) {
                b.total_s += seg.duration_s();
                b.seconds[seg.component] += seg.duration_s();
            }
        }
    }

    for (const auto& [tenant, bands] : acc) {
        for (size_t i = 0; i < 3; ++i) {
            const BandAcc& b = bands[i];
            if (b.traces == 0) continue;
            ReportPathBand out;
            out.tenant = tenant;
            out.band = kBandNames[i];
            out.traces = b.traces;
            out.total_s = b.total_s;
            for (const auto& [component, seconds] : b.seconds) {
                ReportComponentShare share;
                share.component = component;
                share.seconds = seconds;
                share.fraction =
                    b.total_s > 0.0 ? seconds / b.total_s : 0.0;
                out.shares.push_back(std::move(share));
            }
            section.bands.push_back(std::move(out));
        }

        // Tail differential needs both ends of the distribution.
        const BandAcc& lo = bands[0];
        const BandAcc& hi = bands[2];
        if (lo.traces > 0 && hi.traces > 0) {
            std::map<std::string, ReportPathDifferential> rows;
            for (const auto& [component, seconds] : lo.seconds) {
                ReportPathDifferential& d = rows[component];
                d.tenant = tenant;
                d.component = component;
                d.p50_fraction = lo.total_s > 0.0
                                     ? seconds / lo.total_s
                                     : 0.0;
            }
            for (const auto& [component, seconds] : hi.seconds) {
                ReportPathDifferential& d = rows[component];
                d.tenant = tenant;
                d.component = component;
                d.p99_fraction = hi.total_s > 0.0
                                     ? seconds / hi.total_s
                                     : 0.0;
            }
            for (auto& [component, d] : rows) {
                d.delta = d.p99_fraction - d.p50_fraction;
                section.differential.push_back(std::move(d));
            }
        }

        // Dominant tail component: the deepest non-empty band.
        for (int i = 2; i >= 0; --i) {
            const BandAcc& b = bands[static_cast<size_t>(i)];
            if (b.traces == 0) continue;
            const std::string* top = nullptr;
            double top_seconds = 0.0;
            for (const auto& [component, seconds] : b.seconds) {
                if (top == nullptr || seconds > top_seconds) {
                    top = &component;
                    top_seconds = seconds;
                }
            }
            if (top != nullptr) {
                section.dominant.emplace_back(tenant, *top);
            }
            break;
        }
    }
    return section;
}

ForensicsResult
BuildForensics(const SpanCollector& spans, TailSampler& sampler,
               const MetricsRegistry* exemplar_source,
               MetricsRegistry* export_registry)
{
    ForensicsResult result;
    sampler.Classify(spans);

    // Exemplar join first: a histogram cell must always resolve to a
    // kept trace, so referenced traces are force-kept before the
    // kept set (and its paths) are frozen.
    int64_t attached = 0;
    int64_t exported = 0;
    if (exemplar_source != nullptr) {
        for (const auto& entry : exemplar_source->Snapshot()) {
            if (entry.type != MetricType::kHistogram) continue;
            for (const HistogramExemplar& ex :
                 entry.histogram->Exemplars()) {
                ++attached;
                if (!sampler.ForceKeep(ex.trace_id,
                                       KeepReason::kExemplar)) {
                    continue;  // trace unknown to the collector
                }
                ++exported;
                ReportExemplar e;
                e.metric = entry.name + FlatLabels(entry.labels);
                e.bucket = ex.bucket;
                e.value = ex.value;
                e.trace_id = ex.trace_id;
                e.t_s = ex.t_s;
                e.reason = KeepReasonName(
                    sampler.Verdict(ex.trace_id)->reason);
                result.exemplars.push_back(std::move(e));
            }
        }
    }

    // One pass groups spans by trace (ChildrenOf would be quadratic).
    std::unordered_map<uint64_t, std::vector<const Span*>> by_trace;
    std::unordered_map<uint64_t, const Span*> roots;
    for (const Span& span : spans.spans()) {
        by_trace[span.trace_id].push_back(&span);
        if (span.parent_id == 0) roots[span.trace_id] = &span;
    }

    ReportCriticalPath& cp = result.critical_path;
    cp.kept_trace_ids = sampler.KeptTraceIds();
    for (uint64_t trace_id : cp.kept_trace_ids) {
        auto root = roots.find(trace_id);
        if (root == roots.end()) continue;
        TracePath path = ExtractCriticalPath(by_trace[trace_id],
                                             *root->second);
        if (path.tiled) {
            ++cp.tiled;
        } else {
            ++cp.untiled;
        }
        result.paths.push_back(std::move(path));
    }
    result.verdicts = sampler.verdicts();
    const ReportCriticalPath bands =
        SummarizeCriticalPaths(result.paths, result.verdicts);
    cp.bands = bands.bands;
    cp.differential = bands.differential;
    cp.dominant = bands.dominant;
    cp.traces = sampler.seen();
    cp.kept = sampler.kept();

    if (export_registry != nullptr) {
        sampler.BindRegistry(export_registry);
        sampler.ExportMetrics();
    }
    if (export_registry != nullptr) {
        export_registry->GetCounter("obs.exemplar.attached")
            ->Increment(attached);
        export_registry->GetCounter("obs.exemplar.exported")
            ->Increment(exported);
    }
    return result;
}

void
AttachForensics(const ForensicsResult& forensics, RunReport* report)
{
    report->critical_path = forensics.critical_path;
    report->exemplars = forensics.exemplars;
}

std::string
ForensicsJson(const ForensicsResult& forensics)
{
    const ReportCriticalPath& cp = forensics.critical_path;
    std::string out = "{";
    out += StrFormat("\"traces\":%lld,\"kept\":%lld,",
                     static_cast<long long>(cp.traces),
                     static_cast<long long>(cp.kept));
    out += StrFormat("\"tiled\":%lld,\"untiled\":%lld,",
                     static_cast<long long>(cp.tiled),
                     static_cast<long long>(cp.untiled));
    out += "\"kept_trace_ids\":[";
    for (size_t i = 0; i < cp.kept_trace_ids.size(); ++i) {
        out += i > 0 ? "," : "";
        out += StrFormat(
            "%llu",
            static_cast<unsigned long long>(cp.kept_trace_ids[i]));
    }
    out += "],\"exemplars\":[";
    for (size_t i = 0; i < forensics.exemplars.size(); ++i) {
        const ReportExemplar& e = forensics.exemplars[i];
        out += i > 0 ? "," : "";
        out += "{\"metric\":" + JsonQuote(e.metric);
        out += StrFormat(",\"bucket\":%d", e.bucket);
        out += StrFormat(",\"value\":%.12g", e.value);
        out += StrFormat(
            ",\"trace_id\":%llu",
            static_cast<unsigned long long>(e.trace_id));
        out += StrFormat(",\"t_s\":%.12g", e.t_s);
        out += ",\"reason\":" + JsonQuote(e.reason);
        out += "}";
    }
    out += "]}";
    return out;
}

}  // namespace obs
}  // namespace t4i
