/**
 * @file
 * Critical-path attribution over kept span trees.
 *
 * A kept trace answers "this request was slow"; the critical path
 * answers *where*. ExtractCriticalPath walks one request's span tree
 * and produces a sequence of component segments — queue wait, batch
 * formation, the winning execute attempt (split into engine groups
 * when `execute/<component>` sub-spans exist), failed attempts as
 * "retry", routing/handoff time as "route", and anything no child
 * accounts for as "backoff" — that tiles the root span's duration bit
 * for bit (the same conservation bar tests/test_spans.cpp holds the
 * serving spans to: segment boundaries are the original span-time
 * doubles, so first.start == root.start, adjacent segments share
 * their boundary exactly, and last.end == root.end).
 *
 * SummarizeCriticalPaths aggregates kept paths into per-tenant,
 * per-latency-band component-share profiles (bands p50 / mid / p99,
 * thresholds from every classified trace so bands are unbiased by the
 * keep decision) and a p50-vs-p99 differential per component: what
 * grows in the tail. BuildForensics is the one-call glue the CLI and
 * scenario runner use: classify (if needed), join histogram
 * exemplars, force-keep exemplar-referenced traces, extract paths,
 * summarize, and export the `obs.sample.*` / `obs.exemplar.*`
 * instruments.
 */
#ifndef T4I_OBS_CRITICAL_PATH_H
#define T4I_OBS_CRITICAL_PATH_H

#include <cstdint>
#include <string>
#include <vector>

#include "src/obs/registry.h"
#include "src/obs/report.h"
#include "src/obs/sampling.h"
#include "src/obs/spans.h"

namespace t4i {
namespace obs {

/** One critical-path segment: [start_s, end_s) spent in component. */
struct PathSegment {
    std::string component;
    double start_s = 0.0;
    double end_s = 0.0;

    double duration_s() const { return end_s - start_s; }
};

/** One kept trace's critical path. */
struct TracePath {
    uint64_t trace_id = 0;
    std::string tenant;
    std::string outcome;
    double latency_s = 0.0;
    bool slo_miss = false;
    /**
     * True iff the segments tile the closed root exactly: first
     * segment starts at root.start_s, every boundary is shared, the
     * last ends at root.end_s (all compared as exact doubles), and no
     * closed descendant escaped the root's bounds.
     */
    bool tiled = false;
    std::vector<PathSegment> segments;
};

/**
 * Extracts the critical path of @p root from @p trace_spans (every
 * span of the trace; non-members are ignored). Deterministic.
 */
TracePath ExtractCriticalPath(
    const std::vector<const Span*>& trace_spans, const Span& root);

/** Convenience: filters @p spans for the root's trace first. */
TracePath ExtractCriticalPath(const SpanCollector& spans,
                              const Span& root);

/**
 * Aggregates kept paths into band profiles + tail differential.
 * @p verdicts (every classified trace, kept or not) provides the
 * per-tenant p50/p99 latency thresholds; only fills bands /
 * differential / dominant of the returned section.
 */
ReportCriticalPath SummarizeCriticalPaths(
    const std::vector<TracePath>& paths,
    const std::vector<TraceVerdict>& verdicts);

/** Everything the forensics pass produced. */
struct ForensicsResult {
    std::vector<TracePath> paths;  ///< kept traces, id order
    /** Sampler verdicts for every classified trace (kept or not). */
    std::vector<TraceVerdict> verdicts;
    ReportCriticalPath critical_path;
    std::vector<ReportExemplar> exemplars;
};

/**
 * The full forensics pass. Classifies @p spans through @p sampler
 * (no-op when already classified), joins histogram exemplars read
 * from @p exemplar_source (nullable), force-keeps every resolvable
 * exemplar trace so exported exemplars always point at kept traces,
 * extracts + summarizes critical paths, and exports the sampler's
 * metrics plus `obs.exemplar.attached` / `obs.exemplar.exported`
 * into @p export_registry (nullable — pass null for a read-only
 * pass, e.g. a mid-run flight-recorder dump).
 */
ForensicsResult BuildForensics(const SpanCollector& spans,
                               TailSampler& sampler,
                               const MetricsRegistry* exemplar_source,
                               MetricsRegistry* export_registry);

/** Copies the forensic sections into @p report. */
void AttachForensics(const ForensicsResult& forensics,
                     RunReport* report);

/**
 * Compact JSON summary (kept ids, path counts, exemplar refs) for
 * the flight recorder's black-box `forensics` field.
 */
std::string ForensicsJson(const ForensicsResult& forensics);

}  // namespace obs
}  // namespace t4i

#endif  // T4I_OBS_CRITICAL_PATH_H
