/**
 * @file
 * Request-scoped tracing: a trace_id/span_id/parent_id span tree.
 *
 * The metrics registry answers "how is the cell doing on average"; a
 * span tree answers "where did *this* request spend its time". Each
 * request gets a trace: a root span covering arrival -> completion,
 * child spans for queue wait, batch formation, and every dispatch
 * attempt (retries and hedges become sibling children linked to the
 * winning copy), and engine-group sub-spans under the winning
 * execution derived from the modeled performance counters
 * (src/sim/perfcounters.h). The serving simulator records spans in
 * simulated time, so for a no-fault run a root span's duration equals
 * the request latency the simulator reports, bit for bit, and child
 * spans partition it — an invariant tests/test_spans.cpp enforces.
 *
 * Exports: JSONL (one span object per line) for offline analysis, and
 * Chrome-trace slices (one track per trace, flow arrows between linked
 * sibling attempts) via the existing TraceBuilder.
 */
#ifndef T4I_OBS_SPANS_H
#define T4I_OBS_SPANS_H

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/obs/registry.h"
#include "src/obs/trace_builder.h"

namespace t4i {
namespace obs {

class FlightRecorder;  // src/obs/flight_recorder.h

/** Span identifier; 0 means "no span". Assigned sequentially from 1. */
using SpanId = uint64_t;

/** Point-in-time annotation attached to a span. */
struct SpanEvent {
    double t_s = 0.0;
    std::string name;
};

/** One node of a trace's span tree. Times are seconds (sim time). */
struct Span {
    uint64_t trace_id = 0;
    SpanId span_id = 0;
    /** 0 for a trace's root span. */
    SpanId parent_id = 0;
    /**
     * Cross-sibling link, e.g. a losing dispatch attempt (retry copy
     * or hedge) pointing at the winning attempt. 0 = no link.
     */
    SpanId link_id = 0;
    std::string name;
    double start_s = 0.0;
    double end_s = 0.0;
    bool open = true;
    /** Key/value annotations (tenant, device, outcome, ...). */
    Labels attributes;
    std::vector<SpanEvent> events;

    double duration_s() const { return end_s - start_s; }
    /** First attribute named @p key, or "" when absent. */
    std::string Attribute(const std::string& key) const;
};

/**
 * Collects spans for one run. Not thread-safe (the simulators are
 * single-threaded); all mutation goes through the collector so that
 * every close matches an open by construction.
 */
class SpanCollector {
  public:
    /**
     * Eagerly creates the `obs.span.*` instruments (started / closed /
     * events / links) so exports have a stable shape even before the
     * first span. Null detaches.
     */
    void BindRegistry(MetricsRegistry* registry);

    /** Mirrors span open/close events into the flight recorder ring. */
    void BindRecorder(FlightRecorder* recorder);

    /** Allocates the next trace id (sequential from 1). */
    uint64_t NewTrace();

    /**
     * Opens a span. @p parent 0 makes it the trace's root. Returns the
     * new span's id.
     */
    SpanId StartSpan(uint64_t trace_id, SpanId parent,
                     const std::string& name, double start_s);

    /** Closes @p id at @p end_s. Unknown/already-closed ids are
     *  counted in errors() and otherwise ignored. */
    void EndSpan(SpanId id, double end_s);

    void SetAttribute(SpanId id, const std::string& key,
                      const std::string& value);
    void AddEvent(SpanId id, const std::string& name, double t_s);
    /** Links @p id to a sibling @p winner (losing attempt -> winner). */
    void Link(SpanId id, SpanId winner);

    /** All spans in StartSpan order. */
    const std::vector<Span>& spans() const { return spans_; }
    const Span* Find(SpanId id) const;
    std::vector<const Span*> Roots() const;
    std::vector<const Span*> ChildrenOf(SpanId parent) const;
    std::vector<const Span*> OpenSpans() const;
    size_t open_count() const { return open_count_; }
    /** Invalid EndSpan/attribute calls observed (0 in a correct run). */
    int64_t errors() const { return errors_; }

    /**
     * Structural integrity: every closed span has end >= start, every
     * non-root parent exists in the same trace, and closed children
     * start no earlier than their parent. (Children may *end* after
     * their parent: a losing hedge copy keeps a device busy past the
     * request's completion.)
     */
    Status CheckIntegrity() const;

    /** One JSON object per line, StartSpan order. */
    std::string ToJsonl() const;
    /** JSON array of the currently-open spans (flight-recorder dump). */
    std::string OpenSpansJson() const;

    /**
     * Renders spans as Chrome-trace slices under @p pid: one thread
     * track per trace (first @p max_traces traces), one 'X' slice per
     * closed span, and a flow arrow from every linked span to its
     * winner.
     */
    Status AppendToTrace(TraceBuilder* builder, int pid = 3,
                         size_t max_traces = 256) const;

  private:
    Span* Mutable(SpanId id);

    std::vector<Span> spans_;  ///< index == span_id - 1
    friend StatusOr<SpanCollector> SpanCollectorFromJsonl(
        const std::string& jsonl);
    uint64_t next_trace_ = 1;
    size_t open_count_ = 0;
    int64_t errors_ = 0;

    MetricsRegistry* registry_ = nullptr;
    Counter* started_ = nullptr;
    Counter* closed_ = nullptr;
    Counter* event_counter_ = nullptr;
    Counter* link_counter_ = nullptr;
    FlightRecorder* recorder_ = nullptr;
};

/**
 * Rebuilds a collector from its ToJsonl() output (offline forensics:
 * `t4sim_cli explain --spans FILE`). Spans must appear in span_id
 * order (the export order); times, attributes, events, links, and
 * open flags round-trip. Fails with line context on malformed input.
 */
StatusOr<SpanCollector> SpanCollectorFromJsonl(
    const std::string& jsonl);

}  // namespace obs
}  // namespace t4i

#endif  // T4I_OBS_SPANS_H
