/**
 * @file
 * Fleet capacity planner: how many accelerators (and how many dollars)
 * does it take to serve a given traffic mix within every app's SLO?
 *
 * This is the level at which Lesson 3 actually operates: nobody buys
 * one chip — the fleet bill is chips x TCO, and chips per app is set
 * by throughput *under the latency SLO* (Lesson 10), derated for tail
 * headroom. The planner profiles each app on the chip, sizes the
 * per-app sub-fleet, and prices it with the TCO model.
 */
#ifndef T4I_FLEET_PLANNER_H
#define T4I_FLEET_PLANNER_H

#include <string>
#include <vector>

#include "src/arch/chip.h"
#include "src/common/status.h"
#include "src/models/zoo.h"
#include "src/tco/tco.h"

namespace t4i {

/** Traffic target for one application. */
struct AppDemand {
    App app;
    double qps = 0.0;  ///< inferences per second to serve
};

/** Planner knobs. */
struct FleetParams {
    /** Fraction of a chip's SLO-batch throughput usable in steady
     *  state (headroom for tails, maintenance, load imbalance). */
    double utilization_headroom = 0.6;
    /** dtype used for serving (bf16 unless the chip lacks it). */
    DType preferred_dtype = DType::kBf16;
    TcoParams tco;
};

/** Sizing of one app's sub-fleet. */
struct AppFleet {
    std::string app_name;
    double qps = 0.0;
    /** Per-chip serving capacity under the SLO, after headroom. */
    double capacity_per_chip = 0.0;
    int64_t chips = 0;
    /** True if the app cannot meet its SLO on this chip at any batch. */
    bool infeasible = false;
};

/** Whole-fleet plan. */
struct FleetPlan {
    std::string chip_name;
    std::vector<AppFleet> apps;
    int64_t total_chips = 0;
    double capex_usd = 0.0;
    double tco_usd = 0.0;
    double fleet_power_w = 0.0;   ///< TDP sum (provisioned power)
    bool feasible = true;
};

/**
 * Plans a fleet of @p chip serving @p demands. Apps whose SLO the chip
 * cannot meet at any batch are marked infeasible (and the plan
 * overall).
 */
StatusOr<FleetPlan> PlanFleet(const std::vector<AppDemand>& demands,
                              const ChipConfig& chip,
                              const FleetParams& params);

/**
 * A reference traffic mix: the QPS each production app receives when a
 * baseline fleet of @p baseline_chips TPUv4i is split by fleet_share.
 */
StatusOr<std::vector<AppDemand>> ReferenceTraffic(
    int64_t baseline_chips);

}  // namespace t4i

#endif  // T4I_FLEET_PLANNER_H
